// Disaster recovery: continuously mirror a production bucket across
// clouds, then drill a regional outage and measure what a failover to the
// replica would lose (the effective RPO).
//
//	go run ./examples/disaster-recovery
//
// The scenario follows the paper's motivating use case (§1): region-wide
// outages are not rare, and cross-cloud replication guards against a
// provider-wide incident too.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

const (
	primary       = "gcp:us-east1"
	standby       = "aws:us-east-1" // a different *cloud*, not just region
	primaryBucket = "orders"
	standbyBucket = "orders-dr"
	slo           = 15 * time.Second
)

func main() {
	sim := areplica.NewSim()
	sim.MustCreateBucket(primary, primaryBucket)
	sim.MustCreateBucket(standby, standbyBucket)

	rep, err := sim.Deploy(areplica.Rule{
		SrcRegion: primary, SrcBucket: primaryBucket,
		DstRegion: standby, DstBucket: standbyBucket,
		SLO: slo, Percentile: 0.99,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Production traffic: order snapshots written every few seconds, plus
	// occasional deletions of cancelled orders.
	written := map[string]string{} // key -> latest ETag at the primary
	sim.Go(func() {
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("order-%04d.json", i%12)
			info, err := sim.PutObject(primary, primaryBucket, key, int64(64<<10+(i*7919)%(4<<20)))
			if err != nil {
				log.Fatal(err)
			}
			written[key] = info.ETag
			if i%9 == 8 { // a cancellation
				del := fmt.Sprintf("order-%04d.json", (i-4)%12)
				if err := sim.DeleteObject(primary, primaryBucket, del); err != nil {
					log.Fatal(err)
				}
				delete(written, del)
			}
			sim.Sleep(2 * time.Second)
		}
	})

	// 50 seconds into the workload: the primary region "goes dark". At
	// that instant, how far behind is the standby?
	sim.Sleep(50 * time.Second)
	behind := rep.Pending()
	outageAt := sim.Now()
	fmt.Printf("OUTAGE DRILL at t+50s: %d write(s) not yet replicated (RPO exposure)\n", behind)

	// Let the remaining traffic and replication drain.
	sim.Wait()

	// Failover check: every surviving order must exist at the standby with
	// the primary's exact content.
	var missing, stale int
	for key, etag := range written {
		obj, err := sim.HeadObject(standby, standbyBucket, key)
		switch {
		case err != nil:
			missing++
		case obj.ETag != etag:
			stale++
		}
	}
	fmt.Printf("failover audit: %d orders checked, %d missing, %d stale\n", len(written), missing, stale)
	if missing+stale > 0 {
		log.Fatal("standby diverged from primary")
	}

	// Replication-lag report for the whole run.
	var worst time.Duration
	var sloMisses int
	for _, r := range rep.Records() {
		if r.Delay > worst {
			worst = r.Delay
		}
		if r.Delay > slo {
			sloMisses++
		}
	}
	fmt.Printf("writes replicated: %d, worst lag %.1fs, SLO misses %d\n",
		len(rep.Records()), worst.Seconds(), sloMisses)
	fmt.Printf("drill timestamp: %s (virtual)\n", outageAt.Format(time.RFC3339))
	fmt.Printf("cross-cloud DR spend: $%.4f\n", sim.CostTotal())
}
