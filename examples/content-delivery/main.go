// Content delivery: replicate a media library toward the regions where
// users actually are, then compare user-visible read latency and repeated
// egress cost against serving everything from the origin — the paper's §2
// motivation for cross-cloud/region bucket replication.
//
//	go run ./examples/content-delivery
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

const origin = "aws:us-east-1"

// Edge sites on other clouds/continents, each with its local user base.
var edges = []struct {
	region string
	bucket string
	users  string
}{
	{"aws:eu-west-1", "media-eu", "Dublin"},
	{"gcp:asia-northeast1", "media-asia", "Tokyo"},
	{"azure:westus2", "media-west", "Seattle"},
}

func main() {
	sim := areplica.NewSim()
	sim.MustCreateBucket(origin, "media")

	// Deploy one replication rule per edge, sharing profiling work.
	for _, e := range edges {
		sim.MustCreateBucket(e.region, e.bucket)
		if _, err := sim.Deploy(areplica.Rule{
			SrcRegion: origin, SrcBucket: "media",
			DstRegion: e.region, DstBucket: e.bucket,
			SLO: 30 * time.Second,
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Publish the library: a handful of 4-32 MB assets.
	assets := []string{"trailer.mp4", "keyart.png", "episode-01.m4s", "episode-02.m4s"}
	for i, key := range assets {
		if _, err := sim.PutObject(origin, "media", key, int64(4+(i*9)%28)<<20); err != nil {
			log.Fatal(err)
		}
	}
	sim.Wait() // replicas converge

	// Each edge's users fetch every asset twice — once from the origin
	// (the pre-replication world) and once from their local replica.
	fmt.Printf("%-10s %-22s %14s %14s %9s\n", "users", "nearest replica", "origin read", "local read", "speedup")
	costBefore := sim.CostTotal()
	var originEgress float64
	for _, e := range edges {
		var fromOrigin, fromEdge time.Duration
		for _, key := range assets {
			d, err := sim.ReadObject(e.region, origin, "media", key)
			if err != nil {
				log.Fatal(err)
			}
			fromOrigin += d
		}
		originEgress += sim.CostTotal() - costBefore - originEgress
		for _, key := range assets {
			d, err := sim.ReadObject(e.region, e.region, e.bucket, key)
			if err != nil {
				log.Fatal(err)
			}
			fromEdge += d
		}
		fmt.Printf("%-10s %-22s %13.2fs %13.2fs %8.1fx\n",
			e.users, e.region, fromOrigin.Seconds(), fromEdge.Seconds(),
			float64(fromOrigin)/float64(fromEdge))
	}

	// Repeated origin reads keep paying egress; local reads are free.
	fmt.Printf("\negress paid for one origin-read round: $%.4f; local reads: $0 per round thereafter\n", originEgress)
	fmt.Printf("one-time replication spend (incl. profiling): $%.4f\n", costBefore)
}
