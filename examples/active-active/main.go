// Active-active: two regions both accept writes and mirror each other.
// Replica writes carry an origin tag, so the opposite rule never
// re-replicates them — no ping-pong — while application writes from either
// side converge everywhere (the multi-region active-active architecture
// the paper's introduction cites as a replication use case).
//
//	go run ./examples/active-active
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

const (
	east, eastBucket = "aws:us-east-1", "sessions-east"
	west, westBucket = "gcp:us-west1", "sessions-west"
)

func main() {
	sim := areplica.NewSim()
	sim.MustCreateBucket(east, eastBucket)
	sim.MustCreateBucket(west, westBucket)

	deploy := func(srcR, srcB, dstR, dstB string) *areplica.Replication {
		rep, err := sim.Deploy(areplica.Rule{
			SrcRegion: srcR, SrcBucket: srcB,
			DstRegion: dstR, DstBucket: dstB,
			SLO: 15 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}
	e2w := deploy(east, eastBucket, west, westBucket)
	w2e := deploy(west, westBucket, east, eastBucket)

	// Two independent writer populations, sharded by key prefix so writes
	// never conflict (the standard active-active discipline).
	writes := 0
	sim.Go(func() {
		for i := 0; i < 12; i++ {
			key := fmt.Sprintf("us/session-%03d.json", i)
			if _, err := sim.PutObject(east, eastBucket, key, 256<<10); err != nil {
				log.Fatal(err)
			}
			writes++
			sim.Sleep(2 * time.Second)
		}
	})
	sim.Go(func() {
		for i := 0; i < 12; i++ {
			key := fmt.Sprintf("eu/session-%03d.json", i)
			if _, err := sim.PutObject(west, westBucket, key, 256<<10); err != nil {
				log.Fatal(err)
			}
			writes++
			sim.Sleep(2 * time.Second)
		}
	})
	sim.Wait()

	// Audit: both sides hold all 24 sessions, and neither rule replicated
	// more than its side's 12 application writes (no loops).
	for _, side := range []struct{ region, bucket string }{
		{east, eastBucket}, {west, westBucket},
	} {
		count := 0
		for i := 0; i < 12; i++ {
			for _, prefix := range []string{"us", "eu"} {
				key := fmt.Sprintf("%s/session-%03d.json", prefix, i)
				if _, err := sim.HeadObject(side.region, side.bucket, key); err == nil {
					count++
				}
			}
		}
		fmt.Printf("%-22s holds %d/24 sessions\n", side.region, count)
	}
	fmt.Printf("east->west: %s\n", e2w.Summary())
	fmt.Printf("west->east: %s\n", w2e.Summary())
	fmt.Printf("replicated writes: %d + %d (application writes: %d; replica writes were not re-replicated)\n",
		len(e2w.Records()), len(w2e.Records()), writes)
}
