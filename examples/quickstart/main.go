// Quickstart: replicate a handful of objects from AWS to Azure with
// AReplica and print their replication delays and the dollars spent.
//
//	go run ./examples/quickstart
//
// Everything runs on a virtual clock inside the process: the "30 seconds"
// of simulated replication finish in milliseconds of wall time.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A simulated three-cloud world (13 regions across AWS, Azure, GCP).
	sim := areplica.NewSim()

	// Buckets on both sides.
	sim.MustCreateBucket("aws:us-east-1", "photos")
	sim.MustCreateBucket("azure:eastus", "photos-replica")

	// Deploy AReplica: this profiles the path (startup parameters,
	// per-chunk transfer distributions, notification delay) and wires the
	// replication engine to the source bucket's notifications.
	rep, err := sim.Deploy(areplica.Rule{
		SrcRegion: "aws:us-east-1", SrcBucket: "photos",
		DstRegion: "azure:eastus", DstBucket: "photos-replica",
		SLO: 30 * time.Second, // plans must meet this at p99
	})
	if err != nil {
		log.Fatal(err)
	}

	// Write some objects: a small one, a medium one, and a large one that
	// will be replicated by many cooperating function instances.
	for _, obj := range []struct {
		key  string
		size int64
	}{
		{"cat.jpg", 2 << 20},     // 2 MB
		{"video.mp4", 200 << 20}, // 200 MB
		{"dataset.tar", 1 << 30}, // 1 GB
	} {
		if _, err := sim.PutObject("aws:us-east-1", "photos", obj.key, obj.size); err != nil {
			log.Fatal(err)
		}
	}

	// Run the simulation until all replication has drained.
	sim.Wait()

	fmt.Println("replication delays (from source PUT to destination availability):")
	for _, r := range rep.Records() {
		ok := "within SLO"
		if r.Delay > 30*time.Second {
			ok = "SLO MISS"
		}
		fmt.Printf("  %-14s %8.1f MB  %6.2fs  %s\n",
			r.Key, float64(r.Size)/(1<<20), r.Delay.Seconds(), ok)
	}

	// Verify the replicas are byte-identical (ETags match).
	for _, key := range []string{"cat.jpg", "video.mp4", "dataset.tar"} {
		src, _ := sim.HeadObject("aws:us-east-1", "photos", key)
		dst, err := sim.HeadObject("azure:eastus", "photos-replica", key)
		if err != nil || src.ETag != dst.ETag {
			log.Fatalf("replica of %s does not match: %v", key, err)
		}
	}
	fmt.Println("all replicas verified (ETags match)")
	fmt.Printf("total simulated cloud spend: $%.4f\n", sim.CostTotal())
}
