// Trace replay: drive AReplica with a bursty, production-like object
// storage workload (the synthetic stand-in for the IBM COS traces) and
// report tail replication delay against the SLO — a small-scale version of
// the paper's Figure 23 experiment.
//
//	go run ./examples/trace-replay
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	const (
		src, dst = "aws:us-east-1", "aws:us-east-2"
		slo      = 10 * time.Second
	)
	sim := areplica.NewSim()
	sim.MustCreateBucket(src, "tenant")
	sim.MustCreateBucket(dst, "tenant-replica")

	rep, err := sim.Deploy(areplica.Rule{
		SrcRegion: src, SrcBucket: "tenant",
		DstRegion: dst, DstBucket: "tenant-replica",
		SLO: slo, Percentile: 0.99,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A 15-minute busy-tenant trace: skewed sizes, bursty minute rates.
	ops := trace.Generate(trace.DefaultConfig(15*time.Minute, 120))
	st := trace.Summarize(ops)
	fmt.Printf("replaying %d ops (%d PUT / %d DELETE, %.2f GB, %.0f%% PUTs <= 1MB)\n",
		st.Ops, st.Puts, st.Deletes, float64(st.Bytes)/(1<<30),
		100*float64(st.PutsLE1MB)/float64(st.Puts))

	w := sim.World()
	trace.Replay(w.Clock, ops, func(op trace.Op) {
		if op.Type == trace.OpDelete {
			_ = sim.DeleteObject(src, "tenant", op.Key)
			return
		}
		if _, err := sim.PutObject(src, "tenant", op.Key, op.Size); err != nil {
			log.Fatal(err)
		}
	})
	sim.Wait()

	records := rep.Records()
	delays := make([]float64, len(records))
	within := 0
	for i, r := range records {
		delays[i] = r.Delay.Seconds()
		if r.Delay <= slo {
			within++
		}
	}
	fmt.Printf("resolved %d replications (pending %d)\n", len(records), rep.Pending())
	fmt.Printf("delay: p50 %.2fs  p99 %.2fs  p99.99 %.2fs  max %.2fs\n",
		stats.Percentile(delays, 50), stats.Percentile(delays, 99),
		stats.Percentile(delays, 99.99), stats.Percentile(delays, 100))
	fmt.Printf("SLO %s attainment: %.2f%%\n", slo, 100*float64(within)/float64(len(records)))
	fmt.Printf("total spend: $%.4f\n", sim.CostTotal())
}
