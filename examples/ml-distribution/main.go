// ML model distribution: push a multi-gigabyte model artifact from a
// training region to serving regions on three clouds at once — the
// emerging use case of §6 (global distribution of ML artifacts), where
// AReplica's burst parallelism shines.
//
//	go run ./examples/ml-distribution
//
// A changelog hint also shows the near-zero-cost path: promoting the
// evaluated candidate to "production" is a COPY, so only the hint crosses
// the wide area.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

const (
	trainRegion = "aws:us-east-1"
	modelBucket = "models"
	modelSize   = int64(20) << 30 // a 20 GB checkpoint
)

var serving = []struct{ region, bucket string }{
	{"aws:ap-northeast-1", "models-tokyo"},
	{"azure:uksouth", "models-london"},
	{"gcp:us-west1", "models-oregon"},
}

func main() {
	sim := areplica.NewSim()
	sim.MustCreateBucket(trainRegion, modelBucket)

	// One replication rule per serving region; they share one performance
	// model, so the source region is profiled once.
	reps := make([]*areplica.Replication, len(serving))
	for i, s := range serving {
		sim.MustCreateBucket(s.region, s.bucket)
		rep, err := sim.Deploy(areplica.Rule{
			SrcRegion: trainRegion, SrcBucket: modelBucket,
			DstRegion: s.region, DstBucket: s.bucket,
			SLO:       0, // fastest plan: deployment time is what matters
			Changelog: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		reps[i] = rep
	}
	deployCostBase := sim.CostTotal() // profiling, excluded below

	// Training finishes: publish the candidate checkpoint.
	fmt.Printf("publishing %d GB checkpoint to %d regions on 3 clouds...\n",
		modelSize>>30, len(serving))
	published := sim.Now()
	candidate, err := sim.PutObject(trainRegion, modelBucket, "resnet-v42-candidate.bin", modelSize)
	if err != nil {
		log.Fatal(err)
	}
	sim.Wait()

	var slowest time.Duration
	for i, s := range serving {
		recs := reps[i].Records()
		d := recs[len(recs)-1].Delay
		if d > slowest {
			slowest = d
		}
		fmt.Printf("  %-22s available after %6.1fs\n", s.region, d.Seconds())
	}
	fmt.Printf("global rollout complete in %.1fs (worst region)\n", slowest.Seconds())
	fmt.Printf("distribution cost: $%.2f\n", sim.CostTotal()-deployCostBase)

	// Promotion: production points at the same bytes. Register the COPY
	// changelog with each rule so no region re-downloads 20 GB.
	preCost := sim.CostTotal()
	promoted, err := sim.CopyObject(trainRegion, modelBucket, "resnet-v42-candidate.bin", "resnet-production.bin")
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range reps {
		err := rep.RegisterCopy("resnet-production.bin", promoted.ETag,
			"resnet-v42-candidate.bin", candidate.ETag)
		if err != nil {
			log.Fatal(err)
		}
	}
	sim.Wait()

	for _, s := range serving {
		obj, err := sim.HeadObject(s.region, s.bucket, "resnet-production.bin")
		if err != nil || obj.ETag != promoted.ETag {
			log.Fatalf("promotion missing at %s: %v", s.region, err)
		}
	}
	fmt.Printf("promotion propagated via changelogs for $%.6f (vs $%.2f for full copies)\n",
		sim.CostTotal()-preCost, preCost-deployCostBase)
	_ = published
}
