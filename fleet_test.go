package areplica

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/objstore"
)

// putWatcher counts destination PUT events per bucket and flags duplicate
// final writes: a later version whose ETag equals the one already
// durable. Zero duplicates is the fleet's exactly-once-effect bar.
type putWatcher struct {
	mu       sync.Mutex
	puts     int
	dups     int
	lastSeq  map[string]uint64
	lastETag map[string]string
}

func watchPuts(sim *Sim, region, bucket string) *putWatcher {
	w := &putWatcher{lastSeq: map[string]uint64{}, lastETag: map[string]string{}}
	rid, err := sim.region(region)
	if err != nil {
		panic(err)
	}
	sim.World().Region(rid).Obj.Subscribe(bucket, func(ev objstore.Event) {
		if ev.Type != objstore.EventPut {
			return
		}
		w.mu.Lock()
		w.puts++
		if ev.Seq > w.lastSeq[ev.Key] {
			if ev.ETag != "" && w.lastETag[ev.Key] == ev.ETag {
				w.dups++
			}
			w.lastSeq[ev.Key] = ev.Seq
			w.lastETag[ev.Key] = ev.ETag
		}
		w.mu.Unlock()
	})
	return w
}

func (w *putWatcher) stats() (puts, dups int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.puts, w.dups
}

// TestFleetChainTerminates is the chained-topology acceptance test: a
// write at the chain's head propagates A→B→C — exactly one write lands at
// each downstream hop — and the simulation drains (no re-notification
// loop keeps the chain live).
func TestFleetChainTerminates(t *testing.T) {
	sim := NewSim()
	rules, err := Chain(
		FleetHop{Region: "aws:us-east-1", Bucket: "ch-a"},
		FleetHop{Region: "azure:eastus", Bucket: "ch-b"},
		FleetHop{Region: "gcp:us-east1", Bucket: "ch-c"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("3-hop chain built %d rules, want 2", len(rules))
	}
	if got, want := rules[1].AcceptOrigins, OriginOf("aws:us-east-1", "ch-a", "azure:eastus", "ch-b"); len(got) != 1 || got[0] != want {
		t.Fatalf("B→C AcceptOrigins = %v, want [%s]", got, want)
	}
	fl, err := sim.DeployFleet(rules, FleetOptions{ProfileRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	wb := watchPuts(sim, "azure:eastus", "ch-b")
	wc := watchPuts(sim, "gcp:us-east1", "ch-c")

	info, err := sim.PutObject("aws:us-east-1", "ch-a", "doc.bin", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	sim.Wait() // returning at all proves the chain terminated

	for _, reg := range []struct{ region, bucket string }{
		{"azure:eastus", "ch-b"}, {"gcp:us-east1", "ch-c"},
	} {
		got, err := sim.HeadObject(reg.region, reg.bucket, "doc.bin")
		if err != nil {
			t.Fatalf("%s/%s: %v", reg.region, reg.bucket, err)
		}
		if got.ETag != info.ETag {
			t.Fatalf("%s/%s ETag = %s, want %s", reg.region, reg.bucket, got.ETag, info.ETag)
		}
	}
	if puts, dups := wb.stats(); puts != 1 || dups != 0 {
		t.Fatalf("hop B saw %d puts (%d dup), want exactly 1", puts, dups)
	}
	if puts, dups := wc.stats(); puts != 1 || dups != 0 {
		t.Fatalf("hop C saw %d puts (%d dup), want exactly 1", puts, dups)
	}
	if d, total, err := fl.Diverged(); err != nil || d != 0 || total == 0 {
		t.Fatalf("Diverged() = %d/%d, %v; want 0 diverged", d, total, err)
	}
}

func TestFleetChainRejectsCycle(t *testing.T) {
	_, err := Chain(
		FleetHop{Region: "aws:us-east-1", Bucket: "x"},
		FleetHop{Region: "azure:eastus", Bucket: "x"},
		FleetHop{Region: "aws:us-east-1", Bucket: "x"},
	)
	if err == nil || !strings.Contains(err.Error(), "revisits") {
		t.Fatalf("cyclic chain error = %v, want revisit rejection", err)
	}
}

// TestFleetMeshTerminates checks the full-mesh topology: writes at any
// member reach every other member exactly once, and the origin-skip rule
// keeps the mesh from looping.
func TestFleetMeshTerminates(t *testing.T) {
	sim := NewSim()
	regions := []string{"aws:us-east-1", "azure:eastus", "gcp:us-east1"}
	rules, err := FullMesh("mesh", regions...)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 6 {
		t.Fatalf("3-region mesh built %d rules, want 6", len(rules))
	}
	fl, err := sim.DeployFleet(rules, FleetOptions{ProfileRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	watchers := make([]*putWatcher, len(regions))
	for i, r := range regions {
		watchers[i] = watchPuts(sim, r, "mesh")
	}
	// Each member writes its own key (per-site keyspaces, the usual
	// active-active discipline).
	for i, r := range regions {
		if _, err := sim.PutObject(r, "mesh", "site-"+r+".bin", int64(256<<10*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	sim.Wait()

	// Every member holds all three keys; each saw 1 local put + 2 replica
	// writes, no duplicates.
	for i, r := range regions {
		for _, other := range regions {
			if _, err := sim.HeadObject(r, "mesh", "site-"+other+".bin"); err != nil {
				t.Fatalf("member %s missing key of %s: %v", r, other, err)
			}
		}
		if puts, dups := watchers[i].stats(); puts != 3 || dups != 0 {
			t.Fatalf("member %s saw %d puts (%d dup), want 3 with 0 dup", r, puts, dups)
		}
	}
	// 6 rules × 3 keys: once converged, every member's source listing
	// carries all three keys, and each rule audits them all.
	if d, total, err := fl.Diverged(); err != nil || d != 0 || total != 18 {
		t.Fatalf("Diverged() = %d/%d, %v; want 0/18", d, total, err)
	}
}

func TestFleetFanOutConverges(t *testing.T) {
	sim := NewSim()
	rules, err := FanOut("aws:us-east-1", "fan-src",
		FleetDst{Region: "azure:eastus", Bucket: "fan-d1"},
		FleetDst{Region: "gcp:us-east1", Bucket: "fan-d2"},
		FleetDst{Region: "azure:eastus", Bucket: "fan-d3"},
	)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := sim.DeployFleet(rules, FleetOptions{ProfileRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sim.PutObject("aws:us-east-1", "fan-src", "obj-"+string(rune('a'+i)), 512<<10); err != nil {
			t.Fatal(err)
		}
		sim.Sleep(2 * time.Second)
	}
	sim.Wait()
	if d, total, err := fl.Diverged(); err != nil || d != 0 || total != 9 {
		t.Fatalf("fan-out Diverged() = %d/%d, %v; want 0/9", d, total, err)
	}
	if fl.PendingTotal() != 0 || fl.DLQTotal() != 0 {
		t.Fatalf("pending=%d dlq=%d after Wait, want 0/0", fl.PendingTotal(), fl.DLQTotal())
	}
}

func TestFleetRejectsDuplicateRule(t *testing.T) {
	sim := NewSim()
	r := FleetRule{
		SrcRegion: "aws:us-east-1", SrcBucket: "s",
		DstRegion: "azure:eastus", DstBucket: "d",
	}
	if _, err := sim.DeployFleet([]FleetRule{r, r}, FleetOptions{ProfileRounds: 4}); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate rule error = %v, want admission rejection", err)
	}
}

func TestLoadFleetTopology(t *testing.T) {
	spec := `{
	  "quota": {"faas_concurrency": 8, "kv_ops_per_sec": 100},
	  "sched": {"lane_slots": 4, "batch_window_ms": 25, "starve_after_s": 20, "lag_target_s": 45},
	  "rules": [{"src": "aws:us-east-1", "src_bucket": "a", "dst": "gcp:us-east1", "dst_bucket": "b", "weight": 2, "priority": 1}],
	  "chains": [{"hops": [
	    {"region": "aws:us-east-1", "bucket": "c1"},
	    {"region": "azure:eastus", "bucket": "c2"},
	    {"region": "gcp:us-east1", "bucket": "c3"}
	  ]}]
	}`
	rules, opts, err := LoadFleetTopology(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("loaded %d rules, want 3 (1 direct + 2 chain)", len(rules))
	}
	if rules[0].Weight != 2 || rules[0].Priority != 1 {
		t.Fatalf("direct rule weight/priority = %v/%d", rules[0].Weight, rules[0].Priority)
	}
	if len(rules[2].AcceptOrigins) != 1 {
		t.Fatalf("chain tail AcceptOrigins = %v", rules[2].AcceptOrigins)
	}
	if opts.FaaSConcurrency != 8 || opts.KVOpsPerSec != 100 || opts.LaneSlots != 4 {
		t.Fatalf("opts = %+v", opts)
	}
	if opts.BatchWindow != 25*time.Millisecond || opts.StarveAfter != 20*time.Second || opts.LagTarget != 45*time.Second {
		t.Fatalf("durations = %v %v %v", opts.BatchWindow, opts.StarveAfter, opts.LagTarget)
	}

	if _, _, err := LoadFleetTopology(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Fatal("unknown field should be rejected")
	}
	if _, _, err := LoadFleetTopology(strings.NewReader(`{}`)); err == nil {
		t.Fatal("empty topology should be rejected")
	}
}

// runSharedLaneChaosFleet deploys two rules sharing the aws:us-east-1
// source lane under kv-throttle@1 + crashy@1 chaos, drives a bursty
// workload, and returns the fleet plus the destination watchers and the
// metrics dump. One scenario run — the quota-under-chaos satellite calls
// it twice to assert byte-identical metrics.
func runSharedLaneChaosFleet(t *testing.T) (*Fleet, *putWatcher, *putWatcher, []byte) {
	t.Helper()
	sim := NewSim()
	rules := []FleetRule{
		{SrcRegion: "aws:us-east-1", SrcBucket: "qa-src-1", DstRegion: "azure:eastus", DstBucket: "qa-dst-1"},
		{SrcRegion: "aws:us-east-1", SrcBucket: "qa-src-2", DstRegion: "gcp:us-east1", DstBucket: "qa-dst-2", Weight: 2},
	}
	fl, err := sim.DeployFleet(rules, FleetOptions{
		FaaSConcurrency: 6,
		KVOpsPerSec:     200,
		LaneSlots:       4,
		ProfileRounds:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	w1 := watchPuts(sim, "azure:eastus", "qa-dst-1")
	w2 := watchPuts(sim, "gcp:us-east1", "qa-dst-2")

	// Chaos arms after deployment (clean profiling), exactly like the
	// single-rule chaos experiments.
	for _, spec := range []string{"kv-throttle@1", "crashy@1"} {
		prof, err := chaos.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		sim.World().SetChaos(prof)
	}

	// A burst per rule with no inter-put spacing: both rules slam the
	// shared lane at once.
	for i := 0; i < 10; i++ {
		if _, err := sim.PutObject("aws:us-east-1", "qa-src-1", "k1-"+string(rune('a'+i)), 768<<10); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.PutObject("aws:us-east-1", "qa-src-2", "k2-"+string(rune('a'+i)), 512<<10); err != nil {
			t.Fatal(err)
		}
	}
	sim.Wait()
	if fl.DLQTotal() > 0 {
		fl.RedriveAll()
		sim.Wait()
	}
	fl.PollMonitors()

	var metrics bytes.Buffer
	if err := sim.WriteMetricsProm(&metrics); err != nil {
		t.Fatal(err)
	}
	return fl, w1, w2, metrics.Bytes()
}

// TestFleetQuotaUnderChaos is the quota-accounting satellite: two rules
// share one provider lane under KV throttling and crashy functions. The
// ledger must never over-admit beyond the cap (crashed instances release
// their slots), both rules must converge completely with zero duplicate
// final writes, and the run must be deterministic — metrics byte-identical
// across same-seed reruns.
func TestFleetQuotaUnderChaos(t *testing.T) {
	fl, w1, w2, metrics := runSharedLaneChaosFleet(t)

	lanes := fl.QuotaStats()
	if len(lanes) == 0 {
		t.Fatal("no quota lanes recorded")
	}
	for _, ln := range lanes {
		if ln.Cap > 0 && ln.MaxInflight > ln.Cap {
			t.Fatalf("lane %s/%s over-admitted: max inflight %d > cap %d",
				ln.Provider, ln.Region, ln.MaxInflight, ln.Cap)
		}
		if ln.Forced != 0 {
			t.Fatalf("lane %s/%s took %d forced admissions; the stall guard must stay cold",
				ln.Provider, ln.Region, ln.Forced)
		}
	}
	var aws FleetLaneStats
	for _, ln := range lanes {
		if ln.Region == "aws:us-east-1" {
			aws = ln
		}
	}
	if aws.MaxInflight == 0 {
		t.Fatal("shared aws lane never admitted anything")
	}

	if fl.PendingTotal() != 0 {
		t.Fatalf("pending = %d after redrive+Wait, want 0", fl.PendingTotal())
	}
	if d, total, err := fl.Diverged(); err != nil || d != 0 || total != 20 {
		t.Fatalf("Diverged() = %d/%d, %v; want 0/20", d, total, err)
	}
	if _, dups := w1.stats(); dups != 0 {
		t.Fatalf("rule 1 destination saw %d duplicate final writes", dups)
	}
	if _, dups := w2.stats(); dups != 0 {
		t.Fatalf("rule 2 destination saw %d duplicate final writes", dups)
	}

	// The clock's single-runnable actor discipline makes same-seed reruns
	// byte-identical even under race instrumentation.
	_, _, _, again := runSharedLaneChaosFleet(t)
	if !bytes.Equal(metrics, again) {
		t.Fatal("same-seed reruns diverged: metrics dumps are not byte-identical")
	}
}

// TestFleetSchedulerFairShare drives two same-lane rules through a
// constrained scheduler and checks the weighted fair-share accounting:
// both rules get admitted, the weight-2 rule is never starved behind the
// weight-1 rule's burst, and cross-rule batches form.
func TestFleetSchedulerFairShare(t *testing.T) {
	sim := NewSim()
	rules := []FleetRule{
		{SrcRegion: "aws:us-east-1", SrcBucket: "fs-src-1", DstRegion: "azure:eastus", DstBucket: "fs-dst-1"},
		{SrcRegion: "aws:us-east-1", SrcBucket: "fs-src-2", DstRegion: "azure:eastus", DstBucket: "fs-dst-2", Weight: 2},
	}
	fl, err := sim.DeployFleet(rules, FleetOptions{LaneSlots: 2, ProfileRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := sim.PutObject("aws:us-east-1", "fs-src-1", "a-"+string(rune('a'+i)), 256<<10); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.PutObject("aws:us-east-1", "fs-src-2", "b-"+string(rune('a'+i)), 256<<10); err != nil {
			t.Fatal(err)
		}
	}
	sim.Wait()

	st := fl.SchedStats()
	if len(st) != 2 {
		t.Fatalf("SchedStats rules = %d, want 2", len(st))
	}
	for _, rs := range st {
		if rs.Admits != 8 {
			t.Fatalf("rule %s admits = %d, want 8", rs.Rule, rs.Admits)
		}
		if rs.Queued != 0 {
			t.Fatalf("rule %s still queued %d after Wait", rs.Rule, rs.Queued)
		}
	}
	bs := fl.BatchStats()
	if bs.Admitted != 16 || bs.Batches == 0 {
		t.Fatalf("batch stats = %+v, want 16 admitted over >0 batches", bs)
	}
	if bs.Batches < 1 || bs.MeanSize <= 0 {
		t.Fatalf("batch stats = %+v", bs)
	}
	if d, total, err := fl.Diverged(); err != nil || d != 0 || total != 16 {
		t.Fatalf("Diverged() = %d/%d, %v; want 0/16", d, total, err)
	}
}
