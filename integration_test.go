package areplica

// Integration tests exercising the whole stack through the public API:
// profiling, planning, distributed replication, consistency under churn,
// changelog propagation, batching, and fault tolerance, in one world.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
)

// TestPaperWorkflowEndToEnd walks the paper's full lifecycle in a single
// simulated world: deploy two rules (fan-out), push a mixed workload with
// overwrites and deletes, promote an object by changelog, and audit that
// both destinations converge to the source byte-for-byte.
func TestPaperWorkflowEndToEnd(t *testing.T) {
	sim := NewSim()
	sim.MustCreateBucket("aws:us-east-1", "prod")
	sim.MustCreateBucket("azure:eastus", "prod-az")
	sim.MustCreateBucket("gcp:europe-west6", "prod-gcp")

	repAz, err := sim.Deploy(Rule{
		SrcRegion: "aws:us-east-1", SrcBucket: "prod",
		DstRegion: "azure:eastus", DstBucket: "prod-az",
		SLO: 20 * time.Second, Changelog: true, ProfileRounds: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	repGcp, err := sim.Deploy(Rule{
		SrcRegion: "aws:us-east-1", SrcBucket: "prod",
		DstRegion: "gcp:europe-west6", DstBucket: "prod-gcp",
		SLO: 20 * time.Second, Changelog: true, ProfileRounds: 6,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Mixed workload: small objects, one large object, overwrites, a
	// delete — issued over a couple of virtual minutes by two concurrent
	// writers.
	var mu sync.Mutex
	expect := map[string]string{}
	setExpect := func(k, v string) { mu.Lock(); expect[k] = v; mu.Unlock() }
	sim.Go(func() {
		for i := 0; i < 10; i++ {
			key := fmt.Sprintf("doc-%02d", i)
			info, err := sim.PutObject("aws:us-east-1", "prod", key, int64(256<<10*(i+1)))
			if err != nil {
				t.Error(err)
				return
			}
			setExpect(key, info.ETag)
			sim.Sleep(3 * time.Second)
		}
	})
	sim.Go(func() {
		info, err := sim.PutObject("aws:us-east-1", "prod", "archive.tar", 768<<20)
		if err != nil {
			t.Error(err)
			return
		}
		setExpect("archive.tar", info.ETag)
		sim.Sleep(8 * time.Second)
		// Overwrite a small doc twice in quick succession (lock race).
		for v := 0; v < 2; v++ {
			info, err := sim.PutObject("aws:us-east-1", "prod", "doc-00", 512<<10)
			if err != nil {
				t.Error(err)
				return
			}
			setExpect("doc-00", info.ETag)
		}
		// Delete another.
		sim.Sleep(2 * time.Second)
		if err := sim.DeleteObject("aws:us-east-1", "prod", "doc-01"); err != nil {
			t.Error(err)
		}
		mu.Lock()
		delete(expect, "doc-01")
		mu.Unlock()
	})
	sim.Wait()

	// Changelog promotion of the big artifact.
	promoted, err := sim.CopyObject("aws:us-east-1", "prod", "archive.tar", "archive-release.tar")
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range []*Replication{repAz, repGcp} {
		if err := rep.RegisterCopy("archive-release.tar", promoted.ETag, "archive.tar", expect["archive.tar"]); err != nil {
			t.Fatal(err)
		}
	}
	expect["archive-release.tar"] = promoted.ETag
	sim.Wait()

	// Audit both destinations.
	for _, dst := range []struct{ region, bucket string }{
		{"azure:eastus", "prod-az"}, {"gcp:europe-west6", "prod-gcp"},
	} {
		for key, etag := range expect {
			obj, err := sim.HeadObject(dst.region, dst.bucket, key)
			if err != nil {
				t.Errorf("%s: %s missing: %v", dst.region, key, err)
				continue
			}
			if obj.ETag != etag {
				t.Errorf("%s: %s stale", dst.region, key)
			}
		}
		if _, err := sim.HeadObject(dst.region, dst.bucket, "doc-01"); err == nil {
			t.Errorf("%s: deleted doc-01 survived", dst.region)
		}
	}
	for _, rep := range []*Replication{repAz, repGcp} {
		if rep.Pending() != 0 {
			t.Errorf("%v: %d writes unresolved", rep, rep.Pending())
		}
		for _, r := range rep.Records() {
			if r.Delay > 25*time.Second {
				t.Errorf("%v: %s delayed %v (SLO 20s)", rep, r.Key, r.Delay)
			}
		}
	}
}

// TestSLOAttainmentUnderBurst drives a write burst through a batched
// deployment and checks tail behaviour through the public API.
func TestSLOAttainmentUnderBurst(t *testing.T) {
	sim := NewSim()
	sim.MustCreateBucket("aws:us-east-1", "b")
	sim.MustCreateBucket("aws:us-east-2", "b2")
	rep, err := sim.Deploy(Rule{
		SrcRegion: "aws:us-east-1", SrcBucket: "b",
		DstRegion: "aws:us-east-2", DstBucket: "b2",
		SLO: 15 * time.Second, Batching: true, ProfileRounds: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 120 writes across 40 keys in 30 seconds.
	for i := 0; i < 120; i++ {
		key := fmt.Sprintf("k-%02d", i%40)
		if _, err := sim.PutObject("aws:us-east-1", "b", key, 1<<20); err != nil {
			t.Fatal(err)
		}
		sim.Sleep(250 * time.Millisecond)
	}
	sim.Wait()

	delays := rep.Delays()
	if len(delays) != 120 {
		t.Fatalf("resolved %d of 120", len(delays))
	}
	var secs []float64
	misses := 0
	for _, d := range delays {
		secs = append(secs, d.Seconds())
		if d > 15*time.Second {
			misses++
		}
	}
	if misses > 2 {
		t.Fatalf("%d SLO misses out of 120", misses)
	}
	if p50 := stats.Percentile(secs, 50); p50 <= 1 {
		t.Fatalf("p50 %.2fs: batching should delay toward the deadline", p50)
	}
}

// TestFanoutUnderFaults combines multi-rule fan-out with transient storage
// failures through the public API.
func TestFanoutUnderFaults(t *testing.T) {
	sim := NewSim()
	sim.MustCreateBucket("gcp:us-east1", "src")
	sim.MustCreateBucket("aws:us-east-1", "d1")
	sim.MustCreateBucket("azure:eastus", "d2")
	var reps []*Replication
	for _, d := range []struct{ r, b string }{{"aws:us-east-1", "d1"}, {"azure:eastus", "d2"}} {
		rep, err := sim.Deploy(Rule{
			SrcRegion: "gcp:us-east1", SrcBucket: "src",
			DstRegion: d.r, DstBucket: d.b, ProfileRounds: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
	}
	sim.World().Region("aws:us-east-1").Obj.SetFailureRate(0.04)
	for i := 0; i < 8; i++ {
		if _, err := sim.PutObject("gcp:us-east1", "src", fmt.Sprintf("o%d", i), 2<<20); err != nil {
			t.Fatal(err)
		}
	}
	sim.Wait()
	sim.World().Region("aws:us-east-1").Obj.SetFailureRate(0)
	for i, rep := range reps {
		if got := len(rep.Records()); got != 8 {
			t.Errorf("rule %d resolved %d of 8", i, got)
		}
	}
}

// TestActiveActiveBidirectional deploys rules in both directions between
// two buckets. Replica writes carry an origin tag and are never
// re-replicated, so the pair converges without ping-ponging objects back
// and forth.
func TestActiveActiveBidirectional(t *testing.T) {
	sim := NewSim()
	sim.MustCreateBucket("aws:us-east-1", "east")
	sim.MustCreateBucket("aws:eu-west-1", "west")
	eastToWest, err := sim.Deploy(Rule{
		SrcRegion: "aws:us-east-1", SrcBucket: "east",
		DstRegion: "aws:eu-west-1", DstBucket: "west",
		ProfileRounds: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	westToEast, err := sim.Deploy(Rule{
		SrcRegion: "aws:eu-west-1", SrcBucket: "west",
		DstRegion: "aws:us-east-1", DstBucket: "east",
		ProfileRounds: 6,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Writers on both sides, touching disjoint keys (last-writer-wins on
	// shared keys is out of scope, as in real active-active setups).
	us, _ := sim.PutObject("aws:us-east-1", "east", "us/orders.json", 4<<20)
	eu, _ := sim.PutObject("aws:eu-west-1", "west", "eu/orders.json", 4<<20)
	sim.Wait()

	// Both buckets hold both objects.
	for _, b := range []struct{ region, bucket string }{
		{"aws:us-east-1", "east"}, {"aws:eu-west-1", "west"},
	} {
		got, err := sim.HeadObject(b.region, b.bucket, "us/orders.json")
		if err != nil || got.ETag != us.ETag {
			t.Fatalf("%s missing us/orders.json: %v", b.region, err)
		}
		got, err = sim.HeadObject(b.region, b.bucket, "eu/orders.json")
		if err != nil || got.ETag != eu.ETag {
			t.Fatalf("%s missing eu/orders.json: %v", b.region, err)
		}
	}
	// No ping-pong: each rule resolved exactly one application write.
	if n := len(eastToWest.Records()); n != 1 {
		t.Fatalf("east->west resolved %d writes, want 1 (loop?)", n)
	}
	if n := len(westToEast.Records()); n != 1 {
		t.Fatalf("west->east resolved %d writes, want 1 (loop?)", n)
	}
	// Deletes propagate one way and stop too.
	sim.DeleteObject("aws:us-east-1", "east", "us/orders.json")
	sim.Wait()
	if _, err := sim.HeadObject("aws:eu-west-1", "west", "us/orders.json"); err == nil {
		t.Fatal("delete did not propagate")
	}
	if n := len(westToEast.Records()); n != 1 {
		t.Fatalf("replica delete bounced back: west->east has %d records", n)
	}
}
