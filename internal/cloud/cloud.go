// Package cloud defines the multi-cloud topology the simulator runs on:
// providers, regions with geographic coordinates, and distance helpers used
// to derive link characteristics. The region set matches the regions the
// paper evaluates on (Tables 1-3).
package cloud

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Provider identifies a cloud platform.
type Provider string

// The three providers the paper evaluates on.
const (
	AWS   Provider = "aws"
	Azure Provider = "azure"
	GCP   Provider = "gcp"
)

// Providers lists all known providers in a stable order.
func Providers() []Provider { return []Provider{AWS, Azure, GCP} }

// Continent is a coarse geographic grouping used for egress pricing tiers.
type Continent string

// Continents relevant to the evaluated regions.
const (
	NorthAmerica Continent = "NA"
	Europe       Continent = "EU"
	Asia         Continent = "AS"
)

// RegionID uniquely names a region as "<provider>:<region-name>".
type RegionID string

// Region describes one cloud region.
type Region struct {
	Provider  Provider
	Name      string
	Continent Continent
	Lat, Lon  float64 // datacenter location, degrees
}

// ID returns the region's unique identifier.
func (r Region) ID() RegionID {
	return RegionID(string(r.Provider) + ":" + r.Name)
}

// String implements fmt.Stringer.
func (r Region) String() string { return string(r.ID()) }

// regions is the registry of evaluated regions, keyed by ID.
var regions = func() map[RegionID]Region {
	list := []Region{
		// AWS
		{AWS, "us-east-1", NorthAmerica, 38.9, -77.4},    // N. Virginia
		{AWS, "us-east-2", NorthAmerica, 40.0, -83.0},    // Ohio
		{AWS, "ca-central-1", NorthAmerica, 45.5, -73.6}, // Montreal
		{AWS, "eu-west-1", Europe, 53.3, -6.3},           // Ireland
		{AWS, "ap-northeast-1", Asia, 35.6, 139.7},       // Tokyo
		// Azure
		{Azure, "eastus", NorthAmerica, 37.4, -79.8},   // Virginia
		{Azure, "westus2", NorthAmerica, 47.2, -119.8}, // Washington
		{Azure, "uksouth", Europe, 51.5, -0.1},         // London
		{Azure, "southeastasia", Asia, 1.35, 103.8},    // Singapore
		// GCP
		{GCP, "us-east1", NorthAmerica, 33.8, -81.0},  // South Carolina
		{GCP, "us-west1", NorthAmerica, 45.6, -121.2}, // Oregon
		{GCP, "europe-west6", Europe, 47.4, 8.5},      // Zurich
		{GCP, "asia-northeast1", Asia, 35.7, 139.7},   // Tokyo
	}
	m := make(map[RegionID]Region, len(list))
	for _, r := range list {
		m[r.ID()] = r
	}
	return m
}()

// Lookup returns the region for id.
func Lookup(id RegionID) (Region, error) {
	r, ok := regions[id]
	if !ok {
		return Region{}, fmt.Errorf("cloud: unknown region %q", id)
	}
	return r, nil
}

// MustLookup is Lookup but panics on unknown regions; for tests and tables.
func MustLookup(id RegionID) Region {
	r, err := Lookup(id)
	if err != nil {
		panic(err)
	}
	return r
}

// ParseRegionID validates and normalizes a "<provider>:<name>" string.
func ParseRegionID(s string) (RegionID, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return "", fmt.Errorf("cloud: region id %q must be <provider>:<name>", s)
	}
	id := RegionID(s)
	if _, ok := regions[id]; !ok {
		return "", fmt.Errorf("cloud: unknown region %q", s)
	}
	return id, nil
}

// AllRegions returns every registered region sorted by ID.
func AllRegions() []Region {
	out := make([]Region, 0, len(regions))
	for _, r := range regions {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// RegionsOf returns the regions of one provider sorted by name.
func RegionsOf(p Provider) []Region {
	var out []Region
	for _, r := range regions {
		if r.Provider == p {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between two regions.
func DistanceKm(a, b Region) float64 {
	if a.ID() == b.ID() {
		return 0
	}
	la1, lo1 := a.Lat*math.Pi/180, a.Lon*math.Pi/180
	la2, lo2 := b.Lat*math.Pi/180, b.Lon*math.Pi/180
	dla, dlo := la2-la1, lo2-lo1
	h := math.Sin(dla/2)*math.Sin(dla/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dlo/2)*math.Sin(dlo/2)
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(h))
}

// RTT estimates the round-trip time in seconds between two regions from
// their distance: speed of light in fiber (~200,000 km/s) with a 2.0 path
// stretch factor, plus a 1 ms floor for local processing.
func RTT(a, b Region) float64 {
	const fiberKmPerSec = 200000.0
	return 0.001 + 2*2.0*DistanceKm(a, b)/fiberKmPerSec
}
