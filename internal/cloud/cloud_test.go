package cloud

import (
	"testing"
	"testing/quick"
)

func TestRegistryHasThirteenRegions(t *testing.T) {
	if got := len(AllRegions()); got != 13 {
		t.Fatalf("registered %d regions, want 13", got)
	}
}

func TestLookupKnownAndUnknown(t *testing.T) {
	r, err := Lookup("aws:us-east-1")
	if err != nil {
		t.Fatalf("Lookup(aws:us-east-1): %v", err)
	}
	if r.Provider != AWS || r.Name != "us-east-1" || r.Continent != NorthAmerica {
		t.Fatalf("unexpected region: %+v", r)
	}
	if _, err := Lookup("aws:mars-north-1"); err == nil {
		t.Fatal("expected error for unknown region")
	}
}

func TestParseRegionID(t *testing.T) {
	if _, err := ParseRegionID("gcp:europe-west6"); err != nil {
		t.Errorf("valid id rejected: %v", err)
	}
	for _, bad := range []string{"", "us-east-1", "ibm:us-east", "aws:"} {
		if _, err := ParseRegionID(bad); err == nil {
			t.Errorf("ParseRegionID(%q) should fail", bad)
		}
	}
}

func TestRegionsOfProvider(t *testing.T) {
	if got := len(RegionsOf(AWS)); got != 5 {
		t.Errorf("AWS regions = %d, want 5", got)
	}
	if got := len(RegionsOf(Azure)); got != 4 {
		t.Errorf("Azure regions = %d, want 4", got)
	}
	if got := len(RegionsOf(GCP)); got != 4 {
		t.Errorf("GCP regions = %d, want 4", got)
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustLookup("aws:nowhere")
}

func TestDistanceProperties(t *testing.T) {
	all := AllRegions()
	// Symmetry and non-negativity over all pairs.
	for _, a := range all {
		for _, b := range all {
			d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
			if d1 != d2 {
				t.Fatalf("distance not symmetric: %v vs %v", d1, d2)
			}
			if d1 < 0 {
				t.Fatalf("negative distance %v", d1)
			}
		}
		if DistanceKm(a, a) != 0 {
			t.Fatalf("self-distance of %v nonzero", a)
		}
	}
}

func TestDistanceSanity(t *testing.T) {
	use1 := MustLookup("aws:us-east-1")
	tokyo := MustLookup("aws:ap-northeast-1")
	ireland := MustLookup("aws:eu-west-1")
	azEast := MustLookup("azure:eastus")

	if d := DistanceKm(use1, tokyo); d < 9000 || d > 13000 {
		t.Errorf("us-east-1 to Tokyo = %.0f km, expected ~11000", d)
	}
	if d := DistanceKm(use1, ireland); d < 4500 || d > 6500 {
		t.Errorf("us-east-1 to Ireland = %.0f km, expected ~5500", d)
	}
	// AWS us-east-1 and Azure eastus are both in Virginia: close together.
	if d := DistanceKm(use1, azEast); d > 400 {
		t.Errorf("us-east-1 to azure eastus = %.0f km, expected < 400", d)
	}
}

func TestRTTIncreasesWithDistance(t *testing.T) {
	use1 := MustLookup("aws:us-east-1")
	use2 := MustLookup("aws:us-east-2")
	tokyo := MustLookup("aws:ap-northeast-1")
	if RTT(use1, use2) >= RTT(use1, tokyo) {
		t.Error("RTT should grow with distance")
	}
	if rtt := RTT(use1, use1); rtt < 0.0009 || rtt > 0.0011 {
		t.Errorf("self RTT = %v, want ~1ms floor", rtt)
	}
	// Transpacific RTT should land in a plausible 100-300ms band.
	if rtt := RTT(use1, tokyo); rtt < 0.1 || rtt > 0.3 {
		t.Errorf("us-east-1 to Tokyo RTT = %v s", rtt)
	}
}

func TestRegionIDRoundTrip(t *testing.T) {
	f := func(idx uint8) bool {
		all := AllRegions()
		r := all[int(idx)%len(all)]
		parsed, err := ParseRegionID(string(r.ID()))
		return err == nil && parsed == r.ID()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
