// Package planner implements AReplica's dynamic replication strategy
// planning (§5.3, Algorithm 3). Given an object and the SLO time remaining
// after notification delivery, the planner sweeps parallelism levels
// exponentially and, at each level, compares executing at the source
// region against the destination region. The first SLO-compliant plan is
// returned immediately — the sweep order makes it the cheapest compliant
// plan — and if none complies, the fastest plan found is returned.
package planner

import (
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/pricing"
)

// Plan is a chosen replication strategy.
type Plan struct {
	N     int            // number of replicator functions
	Loc   cloud.RegionID // execution region (source or destination)
	Local bool           // orchestrator replicates inline (N==1 at source)

	// EstSeconds is the predicted replication time at the requested
	// percentile; EstMean and EstStd are the prediction's moments
	// (consumed by the runtime logger); Compliant reports whether the
	// plan met the SLO budget.
	EstSeconds float64
	EstMean    float64
	EstStd     float64
	// EstCostUSD is a rough per-object cost estimate (egress + compute +
	// invocations + part-pool operations).
	EstCostUSD float64
	Compliant  bool
}

// String implements fmt.Stringer.
func (p Plan) String() string {
	side := "remote"
	if p.Local {
		side = "local"
	}
	return fmt.Sprintf("plan{n=%d loc=%s %s est=%.2fs compliant=%v}", p.N, p.Loc, side, p.EstSeconds, p.Compliant)
}

// Planner generates SLO-compliant replication plans from a fitted model.
type Planner struct {
	M *model.Model

	// MaxParallel caps the parallelism sweep (n_max in Algorithm 3).
	MaxParallel int
	// LocalMaxBytes is the largest object the orchestrator replicates
	// inline instead of invoking a replicator function.
	LocalMaxBytes int64
	// Relays are optional intermediate execution regions (the serverless
	// overlay extension of §6): a function at a relay runs two shorter
	// legs, which can beat the direct long leg on trans-continental paths
	// at the cost of a second egress charge. Relays join the sweep after
	// the source and destination sides.
	Relays []cloud.RegionID
}

// New returns a Planner with the paper's defaults.
func New(m *model.Model) *Planner {
	return &Planner{M: m, MaxParallel: 512, LocalMaxBytes: 32 << 20}
}

// Plan chooses a strategy for replicating size bytes from src to dst.
// sloRemaining is SLO − (now − object timestamp); a non-positive value
// requests the fastest plan. pct is the user-chosen percentile (e.g. 0.99)
// at which the model's prediction must fit the budget.
func (pl *Planner) Plan(src, dst cloud.RegionID, size int64, sloRemaining time.Duration, pct float64) (Plan, error) {
	if pct <= 0 || pct >= 1 {
		pct = 0.99
	}
	budget := sloRemaining.Seconds()

	best := Plan{EstSeconds: -1}
	var firstErr error
	evaluate := func(n int, loc cloud.RegionID) (Plan, bool) {
		local := n == 1 && loc == src && size <= pl.LocalMaxBytes
		d, err := pl.M.ReplTime(src, dst, loc, size, n, local)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return Plan{}, false
		}
		est := d.Quantile(pct)
		cand := Plan{N: n, Loc: loc, Local: local,
			EstSeconds: est, EstMean: d.Mean(), EstStd: d.Std(),
			EstCostUSD: pl.EstimateCostUSD(src, dst, loc, size, n, d.Mean()),
		}
		if best.EstSeconds < 0 || est < best.EstSeconds {
			best = cand
		}
		return cand, true
	}

	// A single function must finish within its platform's execution limit;
	// beyond ~1 chunk/s that bounds the object size a single function may
	// take. The sweep naturally escalates parallelism for large objects.
	for n := 1; n <= pl.MaxParallel; n *= 2 {
		// Algorithm 3 compares the two execution sides at each level and
		// checks compliance on the level's fastest before escalating.
		levelBest := Plan{EstSeconds: -1}
		for _, loc := range []cloud.RegionID{src, dst} {
			if n == 1 && loc == dst && src == dst {
				continue // same-region rule: the two candidates coincide
			}
			if cand, ok := evaluate(n, loc); ok {
				if levelBest.EstSeconds < 0 || cand.EstSeconds < levelBest.EstSeconds {
					levelBest = cand
				}
			}
		}
		if budget > 0 && levelBest.EstSeconds >= 0 && levelBest.EstSeconds <= budget {
			levelBest.Compliant = true
			return levelBest, nil
		}
		// Overlay relays (§6 extension) cost a second egress hop, so they
		// are only considered when neither direct side can comply at this
		// parallelism; among compliant relays the cheapest wins.
		relayBest := Plan{EstSeconds: -1}
		for _, loc := range pl.Relays {
			cand, ok := evaluate(n, loc)
			if !ok || cand.EstSeconds > budget || budget <= 0 {
				continue
			}
			if relayBest.EstSeconds < 0 || cand.EstCostUSD < relayBest.EstCostUSD {
				relayBest = cand
			}
		}
		if relayBest.EstSeconds >= 0 {
			relayBest.Compliant = true
			return relayBest, nil
		}
	}
	if best.EstSeconds < 0 {
		return Plan{}, fmt.Errorf("planner: no usable plan for %s->%s: %w", src, dst, firstErr)
	}
	return best, nil
}

// EstimateCostUSD roughly prices a candidate plan: wide-area egress for
// each cross-region hop, invocation fees, function compute for the
// estimated duration, and the part pool's two KV operations per chunk.
// Algorithm 3 never needs exact costs — the sweep order already encodes
// "cheaper first" — but relays break that ordering, and reports want a
// number.
func (pl *Planner) EstimateCostUSD(src, dst, loc cloud.RegionID, size int64, n int, estSeconds float64) float64 {
	srcR := cloud.MustLookup(src)
	dstR := cloud.MustLookup(dst)
	locR := cloud.MustLookup(loc)
	cost := pricing.EgressCost(srcR, locR, size) + pricing.EgressCost(locR, dstR, size)
	book := pricing.BookFor(locR.Provider)
	memGB := 1.0
	if locR.Provider == cloud.Azure {
		memGB = 2.0
	}
	cost += float64(n) * book.FnInvocation
	cost += float64(n) * book.FnGBSecond * memGB * estSeconds
	if n > 1 {
		chunks := float64(pl.M.Chunks(size))
		cost += 2 * chunks * book.KVWrite
	}
	return cost
}
