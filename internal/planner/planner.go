// Package planner implements AReplica's dynamic replication strategy
// planning (§5.3, Algorithm 3). Given an object and the SLO time remaining
// after notification delivery, the planner sweeps parallelism levels
// exponentially and, at each level, compares executing at the source
// region against the destination region. The first SLO-compliant plan is
// returned immediately — the sweep order makes it the cheapest compliant
// plan — and if none complies, the fastest plan found is returned.
package planner

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/pricing"
)

// DefaultClaimBatch is the number of parts a replicator claims (and
// acknowledges) per part-pool KV increment, amortizing the pool's two KV
// round-trips per part toward 2/B.
const DefaultClaimBatch = 4

// Adaptive part-size bounds: below ~4 MB per-request overhead dominates
// the transfer; above ~64 MB a lost part costs too much rework and
// instance memory.
const (
	minAdaptivePart = 4 << 20
	maxAdaptivePart = 64 << 20
)

// Plan is a chosen replication strategy.
type Plan struct {
	N     int            // number of replicator functions
	Loc   cloud.RegionID // execution region (source or destination)
	Local bool           // orchestrator replicates inline (N==1 at source)
	// PartSize is the part size the distributed data plane should use
	// (0 = the engine's configured default; always 0 for N==1 plans).
	PartSize int64

	// EstSeconds is the predicted replication time at the requested
	// percentile; EstMean and EstStd are the prediction's moments
	// (consumed by the runtime logger); Compliant reports whether the
	// plan met the SLO budget.
	EstSeconds float64
	EstMean    float64
	EstStd     float64
	// EstCostUSD is a rough per-object cost estimate (egress + compute +
	// invocations + part-pool operations).
	EstCostUSD float64
	Compliant  bool
}

// String implements fmt.Stringer.
func (p Plan) String() string {
	side := "remote"
	if p.Local {
		side = "local"
	}
	return fmt.Sprintf("plan{n=%d loc=%s %s est=%.2fs compliant=%v}", p.N, p.Loc, side, p.EstSeconds, p.Compliant)
}

// Planner generates SLO-compliant replication plans from a fitted model.
type Planner struct {
	M *model.Model

	// MaxParallel caps the parallelism sweep (n_max in Algorithm 3).
	MaxParallel int
	// LocalMaxBytes is the largest object the orchestrator replicates
	// inline instead of invoking a replicator function.
	LocalMaxBytes int64
	// Relays are optional intermediate execution regions (the serverless
	// overlay extension of §6): a function at a relay runs two shorter
	// legs, which can beat the direct long leg on trans-continental paths
	// at the cost of a second egress charge. Relays join the sweep after
	// the source and destination sides.
	Relays []cloud.RegionID
	// ExecLimitFor reports the execution time limit of the platform at a
	// region; adaptive part sizing caps part duration against it. Nil
	// falls back to a conservative 10 minutes (the shortest default
	// limit across the three platforms).
	ExecLimitFor func(cloud.RegionID) time.Duration

	// fastMemo caches fastest-plan results. When sloRemaining <= 0 the
	// compliance early-exits never fire, so the chosen plan depends only
	// on (src, dst, size, pct, opts) — all comparable — and rules with no
	// SLO (the common fleet configuration) re-plan identical inputs for
	// every object. The memo is per-Planner so differently configured
	// planners never share entries; mutating MaxParallel/Relays after the
	// first Plan call would serve stale entries, which no caller does.
	fastMu   sync.Mutex
	fastMemo map[fastKey]Plan
}

// fastKey identifies one budget-free planning problem.
type fastKey struct {
	src, dst cloud.RegionID
	size     int64
	pct      float64
	opts     PlanOpts
}

// maxFastMemo bounds the memo; on overflow the map is cleared rather than
// evicted (fleet workloads quantize sizes, so steady state is far below
// the cap and a clear is a rare, cheap reset).
const maxFastMemo = 4096

// PlanOpts carry the engine's data-plane configuration into planning so
// predictions and cost estimates match what the engine will execute.
type PlanOpts struct {
	// FixedPartSize pins the part size for distributed plans instead of
	// letting the planner adapt it per object (0 = adaptive).
	FixedPartSize int64
	// NoPipeline predicts the serial per-part data plane (double
	// buffering disabled).
	NoPipeline bool
	// ClaimBatch is the engine's part-pool claim batch (0 = default).
	ClaimBatch int
}

// New returns a Planner with the paper's defaults.
func New(m *model.Model) *Planner {
	return &Planner{M: m, MaxParallel: 512, LocalMaxBytes: 32 << 20}
}

// Plan chooses a strategy for replicating size bytes from src to dst.
// sloRemaining is SLO − (now − object timestamp); a non-positive value
// requests the fastest plan. pct is the user-chosen percentile (e.g. 0.99)
// at which the model's prediction must fit the budget.
func (pl *Planner) Plan(src, dst cloud.RegionID, size int64, sloRemaining time.Duration, pct float64) (Plan, error) {
	return pl.PlanWith(src, dst, size, sloRemaining, pct, PlanOpts{})
}

// PlanWith is Plan evaluated for a specific data-plane configuration.
func (pl *Planner) PlanWith(src, dst cloud.RegionID, size int64, sloRemaining time.Duration, pct float64, opts PlanOpts) (Plan, error) {
	if pct <= 0 || pct >= 1 {
		pct = 0.99
	}
	if sloRemaining <= 0 {
		k := fastKey{src: src, dst: dst, size: size, pct: pct, opts: opts}
		pl.fastMu.Lock()
		p, ok := pl.fastMemo[k]
		pl.fastMu.Unlock()
		if ok {
			return p, nil
		}
		p, err := pl.planWith(src, dst, size, sloRemaining, pct, opts)
		if err == nil {
			pl.fastMu.Lock()
			if pl.fastMemo == nil {
				pl.fastMemo = make(map[fastKey]Plan)
			} else if len(pl.fastMemo) >= maxFastMemo {
				clear(pl.fastMemo)
			}
			pl.fastMemo[k] = p
			pl.fastMu.Unlock()
		}
		return p, err
	}
	return pl.planWith(src, dst, size, sloRemaining, pct, opts)
}

func (pl *Planner) planWith(src, dst cloud.RegionID, size int64, sloRemaining time.Duration, pct float64, opts PlanOpts) (Plan, error) {
	budget := sloRemaining.Seconds()

	best := Plan{EstSeconds: -1}
	var firstErr error
	evaluate := func(n int, loc cloud.RegionID) (Plan, bool) {
		local := n == 1 && loc == src && size <= pl.LocalMaxBytes
		// Single-function transfers stream whole chunks at the engine's
		// configured part size; only distributed plans pick a part size.
		var ps int64
		var mo model.Opts
		if n > 1 {
			ps = opts.FixedPartSize
			if ps <= 0 {
				ps = pl.PartSizeFor(src, dst, loc, size, n)
			}
			mo = model.Opts{Chunk: ps, Pipelined: !opts.NoPipeline}
		}
		d, err := pl.M.ReplTimeOpts(src, dst, loc, size, n, local, mo)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return Plan{}, false
		}
		est := d.Quantile(pct)
		cand := Plan{N: n, Loc: loc, Local: local, PartSize: ps,
			EstSeconds: est, EstMean: d.Mean(), EstStd: d.Std(),
			EstCostUSD: pl.EstimateCostUSD(src, dst, loc, size, n, d.Mean(), ps, opts.ClaimBatch),
		}
		if best.EstSeconds < 0 || est < best.EstSeconds {
			best = cand
		}
		return cand, true
	}

	// A single function must finish within its platform's execution limit;
	// beyond ~1 chunk/s that bounds the object size a single function may
	// take. The sweep naturally escalates parallelism for large objects.
	for n := 1; n <= pl.MaxParallel; n *= 2 {
		// Algorithm 3 compares the two execution sides at each level and
		// checks compliance on the level's fastest before escalating.
		levelBest := Plan{EstSeconds: -1}
		for _, loc := range []cloud.RegionID{src, dst} {
			if n == 1 && loc == dst && src == dst {
				continue // same-region rule: the two candidates coincide
			}
			if cand, ok := evaluate(n, loc); ok {
				if levelBest.EstSeconds < 0 || cand.EstSeconds < levelBest.EstSeconds {
					levelBest = cand
				}
			}
		}
		if budget > 0 && levelBest.EstSeconds >= 0 && levelBest.EstSeconds <= budget {
			levelBest.Compliant = true
			return levelBest, nil
		}
		// Overlay relays (§6 extension) cost a second egress hop, so they
		// are only considered when neither direct side can comply at this
		// parallelism; among compliant relays the cheapest wins.
		relayBest := Plan{EstSeconds: -1}
		for _, loc := range pl.Relays {
			cand, ok := evaluate(n, loc)
			if !ok || cand.EstSeconds > budget || budget <= 0 {
				continue
			}
			if relayBest.EstSeconds < 0 || cand.EstCostUSD < relayBest.EstCostUSD {
				relayBest = cand
			}
		}
		if relayBest.EstSeconds >= 0 {
			relayBest.Compliant = true
			return relayBest, nil
		}
	}
	if best.EstSeconds < 0 {
		return Plan{}, fmt.Errorf("planner: no usable plan for %s->%s: %w", src, dst, firstErr)
	}
	return best, nil
}

// PartSizeFor picks the part size a distributed plan should use for one
// object: roughly four parts per replicator (so the pool load-balances
// across slow instances) clamped to [4 MB, 64 MB], then capped so the
// mean per-part time stays a small fraction of the execution platform's
// time limit, and rounded down to a whole MiB. Returns 0 (caller keeps
// its configured default) when the path has no usable profile.
func (pl *Planner) PartSizeFor(src, dst, loc cloud.RegionID, size int64, n int) int64 {
	pp, ok := pl.M.Path(model.PathKey{Src: src, Dst: dst, Loc: loc})
	if !ok || pp.Cp.Mu <= 0 || n < 1 || size <= 0 {
		return 0
	}
	ps := min(max(size/(int64(n)*4), int64(minAdaptivePart)), int64(maxAdaptivePart))

	limit := 10 * time.Minute
	if pl.ExecLimitFor != nil {
		if l := pl.ExecLimitFor(loc); l > 0 {
			limit = l
		}
	}
	// Keep the mean part duration under 5% of the execution limit so a
	// replicator survives profile drift and per-instance slowness.
	secPerByte := pp.Cp.Mu / float64(pl.M.Chunk)
	if capBytes := int64(0.05 * limit.Seconds() / secPerByte); capBytes > 0 {
		ps = min(ps, capBytes)
	}
	ps = max(ps, int64(minAdaptivePart))
	return ps - ps%(1<<20)
}

// EstimateCostUSD prices a candidate plan: wide-area egress for each
// cross-region hop; the orchestrator's invocation, compute, lock writes
// and dedupe lookup at the source; the replicators' invocations and
// compute at loc; and the distributed data plane's per-object requests —
// the part pool's init write plus one claim and one completion increment
// per batch of claimBatch parts, a ranged GET per part at the source, and
// the part PUTs with their MPU create/complete pair at the destination.
// Algorithm 3 never needs exact costs — the sweep order already encodes
// "cheaper first" — but relays break that ordering, and reports want a
// number. partSize and claimBatch at <= 0 take the model/engine defaults.
func (pl *Planner) EstimateCostUSD(src, dst, loc cloud.RegionID, size int64, n int, estSeconds float64, partSize int64, claimBatch int) float64 {
	srcR := cloud.MustLookup(src)
	dstR := cloud.MustLookup(dst)
	locR := cloud.MustLookup(loc)
	cost := pricing.EgressCost(srcR, locR, size) + pricing.EgressCost(locR, dstR, size)
	srcBook := pricing.BookFor(srcR.Provider)
	dstBook := pricing.BookFor(dstR.Provider)
	locBook := pricing.BookFor(locR.Provider)
	dur := time.Duration(estSeconds * float64(time.Second))

	// Orchestrator at the source: one invocation held for the task
	// duration, the replication lock's acquire/release writes, and the
	// destination HEAD that dedupes already-replicated versions.
	cost += srcBook.FnInvocation + pricing.FnComputeCost(srcR.Provider, memGB(srcR.Provider), dur)
	cost += 2 * srcBook.KVWrite
	cost += dstBook.ObjGet

	// n replicator functions at loc.
	cost += float64(n) * locBook.FnInvocation
	cost += float64(n) * pricing.FnComputeCost(locR.Provider, memGB(locR.Provider), dur)

	if n > 1 {
		if partSize <= 0 {
			partSize = pl.M.Chunk
		}
		if claimBatch <= 0 {
			claimBatch = DefaultClaimBatch
		}
		chunks := float64((size + partSize - 1) / partSize)
		batches := math.Ceil(chunks / float64(claimBatch))
		cost += (1 + 2*batches) * locBook.KVWrite // pool init + batched claim/done increments
		cost += chunks * srcBook.ObjGet           // ranged GETs
		cost += (chunks + 2) * dstBook.ObjPut     // part PUTs + MPU create/complete
	} else {
		cost += srcBook.ObjGet + dstBook.ObjPut
	}
	return cost
}

// memGB is the replicator's provisioned memory on a platform (Azure
// Functions bills the 2 GB consumption plan band).
func memGB(p cloud.Provider) float64 {
	if p == cloud.Azure {
		return 2.0
	}
	return 1.0
}
