package planner

import (
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/stats"
)

const (
	src = cloud.RegionID("aws:us-east-1")
	dst = cloud.RegionID("azure:eastus")
)

func fitted() *model.Model {
	m := model.New()
	m.SetLoc(src, model.LocParams{I: stats.N(0.008, 0.002), D: stats.N(0.25, 0.08), P: stats.N(0.15, 0.05)})
	m.SetLoc(dst, model.LocParams{I: stats.N(0.012, 0.004), D: stats.N(0.60, 0.20), P: stats.N(2.5, 1.4)})
	m.SetPath(model.PathKey{Src: src, Dst: dst, Loc: src},
		model.PathParams{S: stats.N(0.30, 0.08),
			C:  model.ChunkTime{Mu: 0.12, Between: 0.02, Within: 0.02},
			Cp: model.ChunkTime{Mu: 0.13, Between: 0.022, Within: 0.025}})
	m.SetPath(model.PathKey{Src: src, Dst: dst, Loc: dst},
		model.PathParams{S: stats.N(0.40, 0.15),
			C:  model.ChunkTime{Mu: 0.18, Between: 0.05, Within: 0.05},
			Cp: model.ChunkTime{Mu: 0.19, Between: 0.055, Within: 0.055}})
	return m
}

func TestSmallObjectGetsSingleLocalPlan(t *testing.T) {
	pl := New(fitted())
	p, err := pl.Plan(src, dst, 1<<20, 30*time.Second, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 1 || !p.Local || p.Loc != src {
		t.Fatalf("1MB plan = %v, want single local at source", p)
	}
	if !p.Compliant {
		t.Fatal("a 30s SLO for 1MB must be compliant")
	}
}

func TestLargeObjectGetsParallelPlan(t *testing.T) {
	pl := New(fitted())
	p, err := pl.Plan(src, dst, 1<<30, 5*time.Second, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p.N < 8 {
		t.Fatalf("1GB with 5s SLO needs parallelism, got %v", p)
	}
	if !p.Compliant {
		t.Fatalf("expected a compliant plan, got %v", p)
	}
}

func TestFirstCompliantIsCheapest(t *testing.T) {
	// With a loose SLO the sweep must stop at low parallelism even though
	// higher parallelism would be faster.
	pl := New(fitted())
	loose, _ := pl.Plan(src, dst, 1<<30, 5*time.Minute, 0.99)
	tight, _ := pl.Plan(src, dst, 1<<30, 4*time.Second, 0.99)
	if loose.N >= tight.N {
		t.Fatalf("loose SLO plan n=%d should use fewer functions than tight n=%d", loose.N, tight.N)
	}
}

func TestZeroSLOReturnsFastestPlan(t *testing.T) {
	pl := New(fitted())
	p, err := pl.Plan(src, dst, 1<<30, 0, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p.Compliant {
		t.Fatal("zero SLO cannot be compliant")
	}
	// Verify it really is the fastest over the sweep, evaluating each
	// candidate exactly as PlanWith does (adaptive part size, pipelined)
	// so the comparison is apples-to-apples.
	for n := 1; n <= pl.MaxParallel; n *= 2 {
		for _, loc := range []cloud.RegionID{src, dst} {
			local := n == 1 && loc == src
			var mo model.Opts
			if n > 1 {
				mo = model.Opts{Chunk: pl.PartSizeFor(src, dst, loc, 1<<30, n), Pipelined: true}
			}
			d, err := pl.M.ReplTimeOpts(src, dst, loc, 1<<30, n, local, mo)
			if err != nil {
				t.Fatal(err)
			}
			if q := d.Quantile(0.99); q < p.EstSeconds-1e-9 {
				t.Fatalf("found faster plan n=%d loc=%s (%v) than returned %v", n, loc, q, p)
			}
		}
	}
}

func TestViolatedSLOStillReturnsFastest(t *testing.T) {
	pl := New(fitted())
	// 1 GB in 100 ms is impossible; Algorithm 3 falls back to the fastest.
	p, err := pl.Plan(src, dst, 1<<30, 100*time.Millisecond, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p.Compliant {
		t.Fatal("impossible SLO marked compliant")
	}
	if p.EstSeconds <= 0.1 {
		t.Fatalf("estimate %v below the impossible budget", p.EstSeconds)
	}
}

func TestPercentileTightensPlans(t *testing.T) {
	// Requiring p99.9 rather than p50 within the same budget should demand
	// at least as much parallelism.
	pl := New(fitted())
	p50, _ := pl.Plan(src, dst, 1<<30, 12*time.Second, 0.50)
	p999, _ := pl.Plan(src, dst, 1<<30, 12*time.Second, 0.999)
	if p999.N < p50.N {
		t.Fatalf("p99.9 plan n=%d weaker than p50 plan n=%d", p999.N, p50.N)
	}
	// Invalid percentile falls back to the 0.99 default rather than failing.
	if _, err := pl.Plan(src, dst, 1<<20, time.Second, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSourceSideChosenWhenFaster(t *testing.T) {
	pl := New(fitted())
	p, _ := pl.Plan(src, dst, 1<<30, 0, 0.99)
	if p.Loc != src {
		t.Fatalf("fastest side should be the source here, got %v", p)
	}
}

func TestDestinationSideChosenWhenFaster(t *testing.T) {
	// Invert the path parameters so the destination side wins.
	m := fitted()
	m.SetPath(model.PathKey{Src: src, Dst: dst, Loc: src},
		model.PathParams{S: stats.N(0.40, 0.15),
			C:  model.ChunkTime{Mu: 0.30, Between: 0.05, Within: 0.05},
			Cp: model.ChunkTime{Mu: 0.32, Between: 0.06, Within: 0.06}})
	m.SetPath(model.PathKey{Src: src, Dst: dst, Loc: dst},
		model.PathParams{S: stats.N(0.30, 0.08),
			C:  model.ChunkTime{Mu: 0.10, Between: 0.02, Within: 0.02},
			Cp: model.ChunkTime{Mu: 0.11, Between: 0.025, Within: 0.025}})
	// Make dst startup cheap so it can win outright.
	m.SetLoc(dst, model.LocParams{I: stats.N(0.008, 0.002), D: stats.N(0.25, 0.08), P: stats.N(0.15, 0.05)})
	pl := New(m)
	p, _ := pl.Plan(src, dst, 1<<30, 0, 0.99)
	if p.Loc != dst {
		t.Fatalf("fastest side should be the destination, got %v", p)
	}
}

func TestUnprofiledModelErrors(t *testing.T) {
	pl := New(model.New())
	if _, err := pl.Plan(src, dst, 1<<20, time.Second, 0.99); err == nil {
		t.Fatal("expected error for unprofiled model")
	}
}

func TestLocalMaxBytesBoundary(t *testing.T) {
	pl := New(fitted())
	at, _ := pl.Plan(src, dst, pl.LocalMaxBytes, time.Hour, 0.99)
	over, _ := pl.Plan(src, dst, pl.LocalMaxBytes+1, time.Hour, 0.99)
	if !at.Local {
		t.Errorf("object at the local threshold should be local: %v", at)
	}
	if over.Local {
		t.Errorf("object beyond the threshold must not be local: %v", over)
	}
}

// relayFitted adds a fast relay location to the fitted model.
func relayFitted() (*model.Model, cloud.RegionID) {
	m := fitted()
	relay := cloud.RegionID("aws:us-east-2")
	m.SetLoc(relay, model.LocParams{I: stats.N(0.008, 0.002), D: stats.N(0.25, 0.08), P: stats.N(0.15, 0.05)})
	m.SetPath(model.PathKey{Src: src, Dst: dst, Loc: relay},
		model.PathParams{S: stats.N(0.25, 0.05),
			C:  model.ChunkTime{Mu: 0.05, Between: 0.01, Within: 0.01},
			Cp: model.ChunkTime{Mu: 0.055, Between: 0.012, Within: 0.012}})
	return m, relay
}

func TestRelayIgnoredWhenDirectComplies(t *testing.T) {
	m, relay := relayFitted()
	pl := New(m)
	pl.Relays = []cloud.RegionID{relay}
	// A loose SLO: the direct side complies at n=1, so the (faster but
	// pricier) relay must not be chosen.
	p, err := pl.Plan(src, dst, 128<<20, 2*time.Minute, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p.Loc == relay {
		t.Fatalf("relay chosen despite compliant direct plan: %v", p)
	}
	if !p.Compliant {
		t.Fatalf("plan not compliant: %v", p)
	}
}

func TestRelayChosenWhenDirectCannotComply(t *testing.T) {
	m, relay := relayFitted()
	pl := New(m)
	pl.Relays = []cloud.RegionID{relay}
	pl.MaxParallel = 1 // quota limit: escalation is not an option (§6)
	// 1 GB at n=1: direct ~16s+, relay ~6.7s. A 10s budget forces the relay.
	p, err := pl.Plan(src, dst, 1<<30, 10*time.Second, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p.Loc != relay {
		t.Fatalf("expected relay, got %v", p)
	}
	if !p.Compliant {
		t.Fatalf("relay plan not compliant: %v", p)
	}
}

func TestRelayInFastestFallback(t *testing.T) {
	// With SLO=0 nothing complies; the fastest plan may be a relay.
	m, relay := relayFitted()
	pl := New(m)
	pl.Relays = []cloud.RegionID{relay}
	pl.MaxParallel = 1
	p, err := pl.Plan(src, dst, 1<<30, 0, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p.Loc != relay {
		t.Fatalf("fastest fallback should be the relay here: %v", p)
	}
}

func TestEstimateCostShape(t *testing.T) {
	pl := New(fitted())
	// Direct (loc=src): one cross-cloud hop. Relay through a third region:
	// two hops, strictly more egress.
	direct := pl.EstimateCostUSD(src, dst, src, 1<<30, 8, 5, 0, 0)
	relay := pl.EstimateCostUSD(src, dst, "aws:us-east-2", 1<<30, 8, 5, 0, 0)
	if relay <= direct {
		t.Fatalf("two-hop relay (%v) must cost more than direct (%v)", relay, direct)
	}
	// More functions cost more (invocations + pool ops at same est).
	few := pl.EstimateCostUSD(src, dst, src, 1<<30, 2, 5, 0, 0)
	many := pl.EstimateCostUSD(src, dst, src, 1<<30, 256, 5, 0, 0)
	if many <= few {
		t.Fatalf("n=256 (%v) must cost more than n=2 (%v)", many, few)
	}
	// Single-function plans pay no part-pool operations.
	single := pl.EstimateCostUSD(src, dst, src, 1<<30, 1, 20, 0, 0)
	if single >= many {
		t.Fatalf("single (%v) should undercut massive parallelism (%v)", single, many)
	}
}
