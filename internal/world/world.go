// Package world assembles the simulated multi-cloud environment: for each
// of the 13 evaluated regions it deploys an object store, a serverless KV
// database and a function platform, all sharing one virtual clock, one
// network model and one cost meter. Replication systems (AReplica and the
// baselines) and experiments are built against a World.
package world

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/faas"
	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/objstore"
	"repro/internal/pricing"
	"repro/internal/simclock"
	"repro/internal/simrand"
	"repro/internal/telemetry"
	"repro/internal/workflow"
)

// Services bundles one region's cloud services.
type Services struct {
	Region cloud.Region
	Obj    *objstore.Store
	KV     *kvstore.Store
	Fn     *faas.Platform
	Wf     *workflow.Service
}

// World is the simulated three-cloud environment.
type World struct {
	Clock *simclock.Clock
	Net   *netsim.Net
	Meter *pricing.Meter

	// Tracer collects per-task spans on the virtual clock (disabled until
	// Tracer.Enable); Metrics is the run-wide instrument registry every
	// service reports into.
	Tracer  *telemetry.Tracer
	Metrics *telemetry.Registry

	// Chaos is the armed fault injector (nil until SetChaos; nil injects
	// nothing). Every substrate consults it at operation boundaries.
	Chaos *chaos.Injector

	regions map[cloud.RegionID]*Services
}

// Epoch is the default simulation start time.
var Epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// New builds a world containing every registered region, with each
// platform at its default (paper §8) function configuration.
//
// New must be called from the goroutine that will drive the simulation
// (it creates the virtual clock).
func New() *World {
	clk := simclock.New(Epoch)
	w := &World{
		Clock:   clk,
		Net:     netsim.New(),
		Meter:   pricing.NewMeter(),
		Tracer:  telemetry.NewTracer(clk.Now),
		Metrics: telemetry.NewRegistry(),
		regions: make(map[cloud.RegionID]*Services),
	}
	for _, r := range cloud.AllRegions() {
		s := &Services{
			Region: r,
			Obj:    objstore.New(clk, r, w.Meter),
			KV:     kvstore.New(clk, r, w.Meter),
			Fn:     faas.New(clk, r, w.Net, w.Meter, faas.DefaultConfig(r.Provider)),
			Wf:     workflow.New(clk, r, w.Meter),
		}
		s.Obj.SetTelemetry(w.Metrics)
		s.KV.SetTelemetry(w.Metrics)
		s.Fn.SetTelemetry(w.Metrics)
		w.regions[r.ID()] = s
	}
	return w
}

// Region returns one region's services; it panics on unknown regions,
// which indicates a programming error.
func (w *World) Region(id cloud.RegionID) *Services {
	s, ok := w.regions[id]
	if !ok {
		panic(fmt.Sprintf("world: unknown region %q", id))
	}
	return s
}

// SetFnConfig redeploys one region's function platform with cfg
// (experiments that sweep memory/CPU configurations use this).
func (w *World) SetFnConfig(id cloud.RegionID, cfg faas.Config) {
	s := w.Region(id)
	s.Fn = faas.New(w.Clock, s.Region, w.Net, w.Meter, cfg)
	s.Fn.SetTelemetry(w.Metrics)
	s.Fn.SetChaos(w.Chaos)
}

// SetChaos arms fault profile p across the whole world: every region's
// object store, KV store and function platform consults the returned
// injector, as do inter-region transfer legs (partitions, degradation).
// Partition windows start counting from the arming moment, so arm after
// deployment/profiling to keep model fitting clean. Arming a zero Profile
// disarms chaos.
func (w *World) SetChaos(p chaos.Profile) *chaos.Injector {
	var ij *chaos.Injector
	if p.Enabled() {
		ij = chaos.NewInjector(w.Clock, p, w.Metrics)
	}
	w.Chaos = ij
	for _, s := range w.regions {
		s.Obj.SetChaos(ij)
		s.KV.SetChaos(ij)
		s.Fn.SetChaos(ij)
	}
	return ij
}

// MoveBytes simulates one transfer leg of bytes from region `from` to
// region `to`, executed by a function on platform `exec` whose combined
// bandwidth scale (instance multiplier x configuration) is bwScale. The
// calling actor sleeps for the transfer duration; cross-region legs accrue
// egress cost at the sending provider's rate. It returns the leg duration.
func (w *World) MoveBytes(from, to cloud.Region, exec cloud.Provider, bytes int64, bwScale float64, rng *rand.Rand) time.Duration {
	return w.MoveBytesSpan(nil, "", from, to, exec, bytes, bwScale, rng)
}

// MoveBytesSpan is MoveBytes with trace context: the leg becomes a child
// span of parent named name ("leg-down"/"leg-up"), annotated with
// endpoints, bytes moved and the achieved bandwidth.
func (w *World) MoveBytesSpan(parent *telemetry.Span, name string, from, to cloud.Region, exec cloud.Provider, bytes int64, bwScale float64, rng *rand.Rand) time.Duration {
	mbps := w.Net.FuncLegMBps(from, to, exec).Sample(rng) * bwScale
	if mbps < 0.5 {
		mbps = 0.5
	}
	sp := parent.Child(name)
	stall, netScale := w.Chaos.Net(string(from.ID()), string(to.ID()),
		string(from.Provider), string(to.Provider))
	if stall > 0 {
		// An active inter-region partition: the transfer makes no progress
		// until the window lifts (TCP stalls rather than erroring out).
		ps := sp.Child("partition-stall")
		w.Clock.Sleep(stall)
		ps.End()
		w.Metrics.Histogram("net.partition.stall.seconds").Observe(simclock.ToSeconds(stall))
	}
	if netScale < 1 {
		mbps *= netScale
		if mbps < 0.5 {
			mbps = 0.5
		}
		sp.Set("degraded", netScale)
	}
	d := netsim.TransferTime(bytes, mbps)
	w.Clock.Sleep(d)
	sp.Set("from", string(from.ID())).Set("to", string(to.ID())).
		Set("bytes", bytes).Set("mbps", mbps)
	sp.End()
	w.Metrics.Histogram("net.leg.seconds").Observe(simclock.ToSeconds(d))
	w.Metrics.Counter("net.leg.bytes").Add(bytes)
	if from.ID() != to.ID() {
		w.Meter.Add("net:egress", pricing.EgressCost(from, to, bytes))
	}
	return d
}

// MoveBytesVM is MoveBytes for a VM data plane (Skyplane's overlay hop).
func (w *World) MoveBytesVM(from, to cloud.Region, bytes int64, rng *rand.Rand) time.Duration {
	mbps := w.Net.VMLegMBps(from, to).Sample(rng)
	if mbps < 1 {
		mbps = 1
	}
	stall, netScale := w.Chaos.Net(string(from.ID()), string(to.ID()),
		string(from.Provider), string(to.Provider))
	if stall > 0 {
		w.Clock.Sleep(stall)
	}
	if netScale < 1 {
		mbps *= netScale
		if mbps < 1 {
			mbps = 1
		}
	}
	d := netsim.TransferTime(bytes, mbps)
	w.Clock.Sleep(d)
	w.Metrics.Histogram("net.vmleg.seconds").Observe(simclock.ToSeconds(d))
	w.Metrics.Counter("net.vmleg.bytes").Add(bytes)
	if from.ID() != to.ID() {
		w.Meter.Add("net:egress", pricing.EgressCost(from, to, bytes))
	}
	return d
}

// SetupSleep makes the calling actor pay the client-setup overhead S of a
// (from→to) path once, as a freshly started function's SDK clients warm up.
func (w *World) SetupSleep(from, to cloud.Region, rng *rand.Rand) time.Duration {
	v := w.Net.SetupTime(from, to).Sample(rng)
	if v < 0.05 {
		v = 0.05
	}
	d := simclock.Seconds(v)
	w.Clock.Sleep(d)
	return d
}

// ClientRead simulates an end user near `client` fetching an object from a
// bucket in `from`: one request RTT, the transfer at the client's
// achievable bandwidth, and the egress charge for leaving `from`. It
// returns the user-visible latency. This is the read side of the paper's
// content-delivery motivation (§2): replicas near users cut both latency
// and repeated cross-region egress.
func (w *World) ClientRead(client, from cloud.Region, obj *objstore.Store, bucket, key string) (time.Duration, error) {
	start := w.Clock.Now()
	w.Clock.Sleep(simclock.Seconds(cloud.RTT(client, from)))
	o, err := obj.Get(bucket, key)
	if err != nil {
		return 0, err
	}
	rng := simrand.New("client-read", string(client.ID()), string(from.ID()), key)
	mbps := w.Net.FuncLegMBps(from, client, client.Provider).Sample(rng)
	if mbps < 0.5 {
		mbps = 0.5
	}
	w.Clock.Sleep(netsim.TransferTime(o.Size, mbps))
	if from.ID() != client.ID() {
		w.Meter.Add("net:egress", pricing.EgressCost(from, client, o.Size))
	}
	return w.Clock.Since(start), nil
}
