package world

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/faas"
	"repro/internal/netsim"
	"repro/internal/objstore"
	"repro/internal/simrand"
)

func TestNewWorldHasAllRegions(t *testing.T) {
	w := New()
	for _, r := range cloud.AllRegions() {
		s := w.Region(r.ID())
		if s.Obj == nil || s.KV == nil || s.Fn == nil {
			t.Fatalf("region %s missing services", r.ID())
		}
		if s.Region.ID() != r.ID() {
			t.Fatalf("region %s mislabeled as %s", r.ID(), s.Region.ID())
		}
	}
	if !w.Clock.Now().Equal(Epoch) {
		t.Fatalf("clock starts at %v", w.Clock.Now())
	}
}

func TestRegionPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Region("aws:atlantis-1")
}

func TestMoveBytesSleepsAndMetersEgress(t *testing.T) {
	w := New()
	src := cloud.MustLookup("aws:us-east-1")
	dst := cloud.MustLookup("aws:eu-west-1")
	rng := simrand.New("world-test")
	start := w.Clock.Now()
	d := w.MoveBytes(src, dst, cloud.AWS, 64<<20, 1.0, rng)
	if got := w.Clock.Since(start); got != d {
		t.Fatalf("caller slept %v, transfer reported %v", got, d)
	}
	// 64 MiB at tens of MiB/s: roughly a second.
	if d < 200*time.Millisecond || d > 10*time.Second {
		t.Fatalf("transfer duration %v implausible", d)
	}
	want := 0.02 * 64.0 / 1024 // AWS inter-region $/GB
	if got := w.Meter.Item("net:egress"); got < want*0.99 || got > want*1.01 {
		t.Fatalf("egress = %v, want %v", got, want)
	}
}

func TestMoveBytesIntraRegionFree(t *testing.T) {
	w := New()
	r := cloud.MustLookup("gcp:us-east1")
	rng := simrand.New("world-test2")
	w.MoveBytes(r, r, cloud.GCP, 1<<30, 1.0, rng)
	if got := w.Meter.Item("net:egress"); got != 0 {
		t.Fatalf("intra-region egress = %v", got)
	}
}

func TestMoveBytesScaleSpeedsTransfer(t *testing.T) {
	w := New()
	src := cloud.MustLookup("aws:us-east-1")
	dst := cloud.MustLookup("azure:eastus")
	slow := w.MoveBytes(src, dst, cloud.AWS, 64<<20, 0.5, simrand.New("a"))
	fast := w.MoveBytes(src, dst, cloud.AWS, 64<<20, 2.0, simrand.New("a"))
	if fast >= slow {
		t.Fatalf("scale 2.0 (%v) should beat scale 0.5 (%v)", fast, slow)
	}
}

func TestMoveBytesVMFasterThanFunction(t *testing.T) {
	w := New()
	src := cloud.MustLookup("aws:us-east-1")
	dst := cloud.MustLookup("aws:eu-west-1")
	fn := w.MoveBytes(src, dst, cloud.AWS, 256<<20, 1.0, simrand.New("b"))
	vm := w.MoveBytesVM(src, dst, 256<<20, simrand.New("b"))
	if vm >= fn {
		t.Fatalf("VM leg (%v) should beat function leg (%v)", vm, fn)
	}
}

func TestSetupSleepConsumesTime(t *testing.T) {
	w := New()
	src := cloud.MustLookup("aws:us-east-1")
	dst := cloud.MustLookup("aws:ap-northeast-1")
	start := w.Clock.Now()
	d := w.SetupSleep(src, dst, simrand.New("c"))
	if w.Clock.Since(start) != d || d < 50*time.Millisecond {
		t.Fatalf("setup sleep %v", d)
	}
}

func TestSetFnConfigReplacesPlatform(t *testing.T) {
	w := New()
	id := cloud.RegionID("aws:us-east-1")
	cfg := faas.DefaultConfig(cloud.AWS)
	cfg.MemMB = 512
	w.SetFnConfig(id, cfg)
	if got := w.Region(id).Fn.Config().MemMB; got != 512 {
		t.Fatalf("config not applied: %d", got)
	}
}

func TestEgressChargedAtSenderRates(t *testing.T) {
	// GCP -> AWS must bill at GCP's internet rate, not AWS's.
	w := New()
	src := cloud.MustLookup("gcp:us-east1")
	dst := cloud.MustLookup("aws:us-east-1")
	w.MoveBytes(src, dst, cloud.GCP, 1<<30, 1.0, simrand.New("d"))
	if got := w.Meter.Item("net:egress"); got < 0.119 || got > 0.121 {
		t.Fatalf("GCP internet egress for 1GiB = %v, want ~0.12", got)
	}
	_ = netsim.MiB
}

func TestSnapshotCollectsActivity(t *testing.T) {
	w := New()
	use1 := cloud.RegionID("aws:us-east-1")
	svc := w.Region(use1)
	svc.Obj.CreateBucket("b", false)
	svc.Obj.Put("b", "k", objstoreBlob(1<<20))
	svc.KV.Put("t", "k", map[string]any{"v": int64(1)})
	svc.Fn.Invoke(2, func(ctx *faas.Ctx) { ctx.Clock.Sleep(time.Second) })
	svc.Wf.Delay(time.Second, func() {})
	w.Clock.Quiesce()

	snap := w.Snapshot()
	var found bool
	for _, r := range snap.Regions {
		if r.Region != use1 {
			continue
		}
		found = true
		if r.Fn.Invocations != 2 || r.KV.Writes != 1 || r.Wf.Executions != 1 {
			t.Fatalf("snapshot counters: %+v", r)
		}
		if r.StorageObjects != 1 || r.StorageBytes != 1<<20 {
			t.Fatalf("storage: %+v", r)
		}
	}
	if !found {
		t.Fatal("region missing from snapshot")
	}
	var buf strings.Builder
	snap.Print(&buf)
	if !strings.Contains(buf.String(), "aws:us-east-1") || strings.Contains(buf.String(), "gcp:us-west1") {
		t.Fatalf("print should include active regions only:\n%s", buf.String())
	}
}

// objstoreBlob is a tiny helper for snapshot tests.
func objstoreBlob(size int64) objstore.Blob { return objstore.BlobOfSize(size, 1) }
