package world

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/cloud"
	"repro/internal/faas"
	"repro/internal/kvstore"
	"repro/internal/objstore"
	"repro/internal/workflow"
)

// RegionSnapshot is one region's activity counters.
type RegionSnapshot struct {
	Region cloud.RegionID
	Fn     faas.Stats
	KV     kvstore.OpStats
	Obj    objstore.Stats
	Wf     workflow.Stats

	StorageObjects int64
	StorageBytes   int64
}

// idle reports whether the region saw no activity.
func (r RegionSnapshot) idle() bool {
	return r.Fn.Invocations == 0 && r.KV.Reads == 0 && r.KV.Writes == 0 &&
		r.Wf.Executions == 0 && r.StorageObjects == 0
}

// Snapshot is a point-in-time view of the whole simulated deployment.
type Snapshot struct {
	At      time.Time
	Regions []RegionSnapshot
	Cost    map[string]float64
}

// Snapshot collects activity counters from every region plus the cost
// meter — the "what did this simulation actually do" view for CLIs and
// experiment reports.
func (w *World) Snapshot() Snapshot {
	snap := Snapshot{At: w.Clock.Now(), Cost: w.Meter.Breakdown()}
	for _, r := range cloud.AllRegions() {
		s := w.Region(r.ID())
		usage := s.Obj.TotalUsage()
		snap.Regions = append(snap.Regions, RegionSnapshot{
			Region:         r.ID(),
			Fn:             s.Fn.Stats(),
			KV:             s.KV.Stats(),
			Obj:            s.Obj.Stats(),
			Wf:             s.Wf.Stats(),
			StorageObjects: usage.Objects,
			StorageBytes:   usage.Bytes,
		})
	}
	sort.Slice(snap.Regions, func(i, j int) bool { return snap.Regions[i].Region < snap.Regions[j].Region })
	return snap
}

// BucketListing enumerates a bucket's current objects under prefix through
// the metered, paginated ListPage API — the same listing path real clients
// and the anti-entropy scrubber pay for, as opposed to TotalUsage's free
// accounting shortcut. It returns the metadata in key order plus the
// number of LIST page requests it issued.
func (w *World) BucketListing(region cloud.RegionID, bucket, prefix string) ([]objstore.Meta, int, error) {
	sc := w.BucketScan(region, bucket, prefix, "")
	var out []objstore.Meta
	for m, ok := sc.Next(); ok; m, ok = sc.Next() {
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, sc.Pages(), err
	}
	return out, sc.Pages(), nil
}

// BucketScan streams a bucket's current objects under prefix through the
// metered, paginated LIST API without materializing the listing — the
// path large-bucket consumers (anti-entropy tree builds) use so memory
// and per-page metering both stay proportional to what is consumed.
// startAfter is the resume cursor for retrying a failed scan.
func (w *World) BucketScan(region cloud.RegionID, bucket, prefix, startAfter string) *objstore.Scanner {
	return w.Region(region).Obj.Scan(bucket, prefix, startAfter)
}

// Print writes the snapshot, omitting idle regions.
func (s Snapshot) Print(w io.Writer) {
	fmt.Fprintf(w, "world snapshot at %s (virtual)\n", s.At.Format(time.RFC3339))
	fmt.Fprintf(w, "%-24s %10s %8s %8s %10s %10s %10s %12s\n",
		"region", "fn-invoke", "cold", "peak", "kv-reads", "kv-writes", "wf-execs", "stored")
	for _, r := range s.Regions {
		if r.idle() {
			continue
		}
		fmt.Fprintf(w, "%-24s %10d %8d %8d %10d %10d %10d %12s\n",
			r.Region, r.Fn.Invocations, r.Fn.ColdStarts, r.Fn.MaxConcurrent,
			r.KV.Reads, r.KV.Writes, r.Wf.Executions, byteCount(r.StorageBytes))
	}
	var names []string
	for k := range s.Cost {
		names = append(names, k)
	}
	sort.Strings(names)
	var total float64
	fmt.Fprintf(w, "cost:")
	for _, k := range names {
		fmt.Fprintf(w, " %s=$%.4f", k, s.Cost[k])
		total += s.Cost[k]
	}
	fmt.Fprintf(w, " total=$%.4f\n", total)
}

func byteCount(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
