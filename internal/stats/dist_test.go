package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNormalQuantileStandard(t *testing.T) {
	n := N(0, 1)
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447, 1},       // Phi(1)
		{0.9772499, 2},       // Phi(2)
		{0.0227501, -2},      // Phi(-2)
		{0.99, 2.3263479},    // standard normal 99th percentile
		{0.999, 3.0902323},   // 99.9th
		{0.9999, 3.7190165},  // 99.99th
		{0.95, 1.6448536},    // 95th
		{0.05, -1.6448536},   // 5th
		{0.975, 1.959963985}, // 97.5th
	}
	for _, c := range cases {
		if got := n.Quantile(c.p); !almostEqual(got, c.want, 1e-5) {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileShiftScale(t *testing.T) {
	n := N(10, 2)
	if got := n.Quantile(0.5); !almostEqual(got, 10, 1e-9) {
		t.Errorf("median = %v, want 10", got)
	}
	if got := n.Quantile(0.8413447); !almostEqual(got, 12, 1e-4) {
		t.Errorf("p84 = %v, want 12", got)
	}
}

func TestNormalQuantileCDFRoundTrip(t *testing.T) {
	f := func(mu float64, sigmaRaw float64, pRaw float64) bool {
		sigma := math.Mod(math.Abs(sigmaRaw), 100) + 0.01
		p := math.Mod(math.Abs(pRaw), 0.98) + 0.01
		if math.IsNaN(mu) || math.IsInf(mu, 0) {
			return true
		}
		mu = math.Mod(mu, 1e6)
		n := N(mu, sigma)
		x := n.Quantile(p)
		return almostEqual(n.CDF(x), p, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormalConstantSigmaZero(t *testing.T) {
	n := N(5, 0)
	if n.Quantile(0.01) != 5 || n.Quantile(0.99) != 5 {
		t.Error("constant distribution should always return Mu")
	}
	if n.CDF(4.9) != 0 || n.CDF(5.1) != 1 {
		t.Error("constant CDF is a step at Mu")
	}
}

func TestNormalPlusScale(t *testing.T) {
	a, b := N(1, 3), N(2, 4)
	sum := a.Plus(b)
	if !almostEqual(sum.Mu, 3, 1e-12) || !almostEqual(sum.Sigma, 5, 1e-12) {
		t.Errorf("Plus = %v, want N(3,5)", sum)
	}
	sc := a.Scale(2)
	if !almostEqual(sc.Mu, 2, 1e-12) || !almostEqual(sc.Sigma, 6, 1e-12) {
		t.Errorf("Scale = %v, want N(2,6)", sc)
	}
	sh := a.Shift(10)
	if !almostEqual(sh.Mu, 11, 1e-12) || sh.Sigma != 3 {
		t.Errorf("Shift = %v, want N(11,3)", sh)
	}
}

func TestSumNormals(t *testing.T) {
	got := SumNormals(N(1, 1), N(2, 2), N(3, 2))
	if !almostEqual(got.Mu, 6, 1e-12) || !almostEqual(got.Sigma, 3, 1e-12) {
		t.Errorf("SumNormals = %v, want N(6,3)", got)
	}
}

func TestFitNormalRecoversParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	want := N(42, 7)
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = want.Sample(rng)
	}
	got := FitNormal(samples)
	if !almostEqual(got.Mu, want.Mu, 0.2) || !almostEqual(got.Sigma, want.Sigma, 0.2) {
		t.Errorf("FitNormal = %v, want approx %v", got, want)
	}
}

func TestFitNormalSingleSample(t *testing.T) {
	got := FitNormal([]float64{3})
	if got.Mu != 3 || got.Sigma != 0 {
		t.Errorf("FitNormal([3]) = %v", got)
	}
}

func TestNormalSampleMatchesMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := N(-3, 0.5)
	var samples []float64
	for i := 0; i < 20000; i++ {
		samples = append(samples, n.Sample(rng))
	}
	if m := Mean(samples); !almostEqual(m, -3, 0.02) {
		t.Errorf("sample mean = %v", m)
	}
	if s := StdDev(samples); !almostEqual(s, 0.5, 0.02) {
		t.Errorf("sample std = %v", s)
	}
}

func TestGumbelQuantileMoments(t *testing.T) {
	g := Gumbel{Mu: 1, Beta: 2}
	// Median = mu - beta*ln(ln 2)
	if got, want := g.Quantile(0.5), 1-2*math.Log(math.Log(2)); !almostEqual(got, want, 1e-9) {
		t.Errorf("median = %v, want %v", got, want)
	}
	if got, want := g.Mean(), 1+2*eulerGamma; !almostEqual(got, want, 1e-9) {
		t.Errorf("mean = %v, want %v", got, want)
	}
	if got, want := g.Std(), 2*math.Pi/math.Sqrt(6); !almostEqual(got, want, 1e-9) {
		t.Errorf("std = %v, want %v", got, want)
	}
}

func TestGumbelSampleMatchesQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := Gumbel{Mu: 5, Beta: 1.5}
	samples := make([]float64, 50000)
	for i := range samples {
		samples[i] = g.Sample(rng)
	}
	emp := NewEmpirical(samples)
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got, want := emp.Quantile(p), g.Quantile(p); !almostEqual(got, want, 0.15) {
			t.Errorf("p=%v: empirical %v vs analytic %v", p, got, want)
		}
	}
}

// TestGumbelApproximatesMaxOfNormals is the correctness check behind the
// paper's large-n shortcut: for n=256 instances, the Gumbel approximation's
// high quantiles must track a brute-force Monte-Carlo max of Normals.
func TestGumbelApproximatesMaxOfNormals(t *testing.T) {
	base := N(10, 2)
	const n = 256
	rng := rand.New(rand.NewSource(4))
	mc := MonteCarloMax(rng, n, 4000, func(r *rand.Rand, i int) float64 { return base.Sample(r) })
	g := MaxOfNormals(base, n)
	for _, p := range []float64{0.5, 0.9, 0.99} {
		got, want := g.Quantile(p), mc.Quantile(p)
		if math.Abs(got-want) > 0.5 { // within a quarter sigma
			t.Errorf("p=%v: gumbel %v vs monte-carlo %v", p, got, want)
		}
	}
}

func TestMaxOfNormalsDegenerateN1(t *testing.T) {
	base := N(10, 2)
	g := MaxOfNormals(base, 1)
	if !almostEqual(g.Mean(), 10, 1e-9) || !almostEqual(g.Std(), 2, 1e-9) {
		t.Errorf("n=1 max should match base moments, got mean %v std %v", g.Mean(), g.Std())
	}
}

func TestEmpiricalQuantiles(t *testing.T) {
	e := NewEmpirical([]float64{4, 1, 3, 2, 5})
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := e.Quantile(c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestEmpiricalQuantileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	samples := make([]float64, 101)
	for i := range samples {
		samples[i] = rng.NormFloat64() * 10
	}
	e := NewEmpirical(samples)
	f := func(p1, p2 float64) bool {
		p1 = math.Mod(math.Abs(p1), 1)
		p2 = math.Mod(math.Abs(p2), 1)
		lo, hi := math.Min(p1, p2), math.Max(p1, p2)
		return e.Quantile(lo) <= e.Quantile(hi)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalSingleSample(t *testing.T) {
	e := NewEmpirical([]float64{7})
	if e.Quantile(0.3) != 7 || e.Mean() != 7 || e.Std() != 0 {
		t.Error("single-sample empirical should be constant")
	}
}

func TestMonteCarloMaxIncreasesWithN(t *testing.T) {
	base := N(1, 0.3)
	rng := rand.New(rand.NewSource(6))
	prev := math.Inf(-1)
	for _, n := range []int{1, 4, 16, 64} {
		e := MonteCarloMax(rng, n, 2000, func(r *rand.Rand, i int) float64 { return base.Sample(r) })
		if e.Mean() <= prev {
			t.Errorf("mean of max over %d did not increase: %v <= %v", n, e.Mean(), prev)
		}
		prev = e.Mean()
	}
}

func TestPercentileHelpers(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(vals, 50); !almostEqual(got, 5.5, 1e-9) {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(vals, 100); got != 10 {
		t.Errorf("p100 = %v", got)
	}
	if got := Mean(vals); !almostEqual(got, 5.5, 1e-9) {
		t.Errorf("mean = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) || !math.IsNaN(Mean(nil)) {
		t.Error("empty input should yield NaN")
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of one value should be 0")
	}
}

func TestErfinvRoundTrip(t *testing.T) {
	for x := -0.999; x < 1; x += 0.0501 {
		if got := math.Erf(erfinv(x)); !almostEqual(got, x, 1e-8) {
			t.Errorf("erf(erfinv(%v)) = %v", x, got)
		}
	}
	if !math.IsInf(erfinv(1), 1) || !math.IsInf(erfinv(-1), -1) {
		t.Error("erfinv at +-1 should be infinite")
	}
}

func TestLogNormalMoments(t *testing.T) {
	l := LogNormalFromMedian(1.0, 0.4)
	if !almostEqual(l.Median(), 1.0, 1e-12) {
		t.Errorf("median = %v", l.Median())
	}
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, 50000)
	for i := range samples {
		samples[i] = l.Sample(rng)
		if samples[i] <= 0 {
			t.Fatal("lognormal sample must be positive")
		}
	}
	if got := Mean(samples); !almostEqual(got, l.Mean(), 0.02) {
		t.Errorf("sample mean %v vs analytic %v", got, l.Mean())
	}
	if got := StdDev(samples); !almostEqual(got, l.Std(), 0.05) {
		t.Errorf("sample std %v vs analytic %v", got, l.Std())
	}
	if got := Percentile(samples, 50); !almostEqual(got, 1.0, 0.02) {
		t.Errorf("sample median %v", got)
	}
}

func TestLogNormalQuantile(t *testing.T) {
	l := LogNormalFromMedian(2, 0.5)
	if got := l.Quantile(0.5); !almostEqual(got, 2, 1e-9) {
		t.Errorf("median quantile = %v", got)
	}
	if l.Quantile(0.9) <= l.Quantile(0.1) {
		t.Error("quantiles must be increasing")
	}
}
