package stats

import (
	"math"
	"math/rand"
)

// LogNormal is the distribution of exp(N(MuLog, SigmaLog)). The simulator
// uses it for per-instance bandwidth multipliers, which are strictly
// positive and right-skewed (a few instances are much slower than the
// median, per Figure 9 of the paper).
type LogNormal struct {
	MuLog    float64
	SigmaLog float64
}

// LogNormalFromMedian returns a LogNormal with the given median and
// sigma of the underlying normal.
func LogNormalFromMedian(median, sigmaLog float64) LogNormal {
	return LogNormal{MuLog: math.Log(median), SigmaLog: sigmaLog}
}

// Mean returns exp(mu + sigma^2/2).
func (l LogNormal) Mean() float64 {
	return math.Exp(l.MuLog + l.SigmaLog*l.SigmaLog/2)
}

// Std returns the standard deviation.
func (l LogNormal) Std() float64 {
	s2 := l.SigmaLog * l.SigmaLog
	return math.Sqrt((math.Exp(s2) - 1)) * l.Mean()
}

// Median returns exp(mu).
func (l LogNormal) Median() float64 { return math.Exp(l.MuLog) }

// Quantile returns the p-quantile.
func (l LogNormal) Quantile(p float64) float64 {
	return math.Exp(Normal{Mu: l.MuLog, Sigma: l.SigmaLog}.Quantile(p))
}

// Sample draws one value.
func (l LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.MuLog + l.SigmaLog*rng.NormFloat64())
}
