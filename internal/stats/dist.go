// Package stats implements the probability machinery behind AReplica's
// distribution-aware performance model (§5.3 of the paper): Normal
// distributions with quantiles, sums and scaling, empirical distributions
// produced by Monte-Carlo simulation, and the Gumbel extreme-value
// approximation for the maximum of many i.i.d. Normals.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dist is a one-dimensional probability distribution.
type Dist interface {
	// Mean returns the expected value.
	Mean() float64
	// Std returns the standard deviation.
	Std() float64
	// Quantile returns x such that P(X <= x) = p, for p in (0, 1).
	Quantile(p float64) float64
	// Sample draws one value using rng.
	Sample(rng *rand.Rand) float64
}

// Normal is a Gaussian distribution with mean Mu and standard deviation
// Sigma. Sigma must be non-negative; Sigma == 0 describes a constant.
type Normal struct {
	Mu    float64
	Sigma float64
}

// N is shorthand for Normal{mu, sigma}.
func N(mu, sigma float64) Normal { return Normal{Mu: mu, Sigma: sigma} }

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// Std returns Sigma.
func (n Normal) Std() float64 { return n.Sigma }

// Quantile returns the p-quantile of the distribution.
func (n Normal) Quantile(p float64) float64 {
	if n.Sigma == 0 {
		return n.Mu
	}
	return n.Mu + n.Sigma*math.Sqrt2*erfinv(2*p-1)
}

// Sample draws one value.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	if n.Sigma == 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-n.Mu)/(n.Sigma*math.Sqrt2)))
}

// Plus returns the distribution of the sum of two independent Normals.
func (n Normal) Plus(o Normal) Normal {
	return Normal{Mu: n.Mu + o.Mu, Sigma: math.Hypot(n.Sigma, o.Sigma)}
}

// Scale returns the distribution of k*X for k >= 0.
func (n Normal) Scale(k float64) Normal {
	return Normal{Mu: k * n.Mu, Sigma: math.Abs(k) * n.Sigma}
}

// Shift returns the distribution of X + c.
func (n Normal) Shift(c float64) Normal {
	return Normal{Mu: n.Mu + c, Sigma: n.Sigma}
}

// String implements fmt.Stringer.
func (n Normal) String() string {
	return fmt.Sprintf("N(%.4g, %.4g)", n.Mu, n.Sigma)
}

// SumNormals returns the distribution of the sum of independent Normals.
func SumNormals(ds ...Normal) Normal {
	var mu, varSum float64
	for _, d := range ds {
		mu += d.Mu
		varSum += d.Sigma * d.Sigma
	}
	return Normal{Mu: mu, Sigma: math.Sqrt(varSum)}
}

// FitNormal estimates a Normal from samples using the sample mean and the
// unbiased sample standard deviation. It panics on an empty slice.
func FitNormal(samples []float64) Normal {
	if len(samples) == 0 {
		panic("stats: FitNormal with no samples")
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mu := sum / float64(len(samples))
	if len(samples) == 1 {
		return Normal{Mu: mu}
	}
	var ss float64
	for _, s := range samples {
		d := s - mu
		ss += d * d
	}
	return Normal{Mu: mu, Sigma: math.Sqrt(ss / float64(len(samples)-1))}
}

// Gumbel is a Gumbel (type-I extreme value) distribution with location Mu
// and scale Beta. It approximates the maximum of many i.i.d. variables.
type Gumbel struct {
	Mu   float64
	Beta float64
}

const eulerGamma = 0.57721566490153286

// Mean returns the expected value Mu + gamma*Beta.
func (g Gumbel) Mean() float64 { return g.Mu + eulerGamma*g.Beta }

// Std returns Beta*pi/sqrt(6).
func (g Gumbel) Std() float64 { return g.Beta * math.Pi / math.Sqrt(6) }

// Quantile returns the p-quantile Mu - Beta*ln(-ln p).
func (g Gumbel) Quantile(p float64) float64 {
	return g.Mu - g.Beta*math.Log(-math.Log(p))
}

// Sample draws one value by inverse transform.
func (g Gumbel) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 { // avoid log(0)
		u = rng.Float64()
	}
	return g.Quantile(u)
}

// MaxOfNormals approximates the distribution of the maximum of n i.i.d.
// samples of base using extreme value theory: for large n the maximum of n
// standard normals converges to Gumbel(a_n, b_n) with
//
//	a_n = sqrt(2 ln n) - (ln ln n + ln 4π) / (2 sqrt(2 ln n))
//	b_n = 1 / sqrt(2 ln n)
//
// The paper uses this for large replicator counts where Monte-Carlo
// resampling is too slow (§5.3).
func MaxOfNormals(base Normal, n int) Gumbel {
	if n < 2 {
		// Degenerate: the "maximum" of one draw. Use a Gumbel matching the
		// base's mean/std so callers can treat the result uniformly.
		return Gumbel{Mu: base.Mu - eulerGamma*base.Sigma*math.Sqrt(6)/math.Pi, Beta: base.Sigma * math.Sqrt(6) / math.Pi}
	}
	ln := math.Log(float64(n))
	s := math.Sqrt(2 * ln)
	an := s - (math.Log(ln)+math.Log(4*math.Pi))/(2*s)
	bn := 1 / s
	return Gumbel{Mu: base.Mu + base.Sigma*an, Beta: base.Sigma * bn}
}

// Empirical is a distribution backed by sorted samples, typically produced
// by Monte-Carlo simulation.
type Empirical struct {
	sorted []float64
	mean   float64
	std    float64
}

// NewEmpirical builds an Empirical distribution from samples. The slice is
// copied. It panics on an empty slice.
func NewEmpirical(samples []float64) *Empirical {
	if len(samples) == 0 {
		panic("stats: NewEmpirical with no samples")
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	fit := FitNormal(s)
	return &Empirical{sorted: s, mean: fit.Mu, std: fit.Sigma}
}

// Mean returns the sample mean.
func (e *Empirical) Mean() float64 { return e.mean }

// Std returns the sample standard deviation.
func (e *Empirical) Std() float64 { return e.std }

// Quantile returns the p-quantile using linear interpolation between order
// statistics.
func (e *Empirical) Quantile(p float64) float64 {
	n := len(e.sorted)
	if n == 1 {
		return e.sorted[0]
	}
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[n-1]
	}
	pos := p * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i >= n-1 {
		return e.sorted[n-1]
	}
	return e.sorted[i]*(1-frac) + e.sorted[i+1]*frac
}

// Sample draws a random element (bootstrap sampling).
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	return e.sorted[rng.Intn(len(e.sorted))]
}

// MonteCarloMax estimates the distribution of max_{i=1..n} draw(i) with
// rounds independent trials. draw receives the trial's rng and the
// instance index i.
func MonteCarloMax(rng *rand.Rand, n, rounds int, draw func(rng *rand.Rand, i int) float64) *Empirical {
	samples := make([]float64, rounds)
	for r := 0; r < rounds; r++ {
		maxV := math.Inf(-1)
		for i := 0; i < n; i++ {
			if v := draw(rng, i); v > maxV {
				maxV = v
			}
		}
		samples[r] = maxV
	}
	return NewEmpirical(samples)
}

// erfinv computes the inverse error function using the rational
// approximation of Giles (2012), accurate to ~1e-9 over (-1, 1).
func erfinv(x float64) float64 {
	if x <= -1 {
		return math.Inf(-1)
	}
	if x >= 1 {
		return math.Inf(1)
	}
	w := -math.Log((1 - x) * (1 + x))
	var p float64
	if w < 6.25 {
		w -= 3.125
		p = -3.6444120640178196996e-21
		p = -1.685059138182016589e-19 + p*w
		p = 1.2858480715256400167e-18 + p*w
		p = 1.115787767802518096e-17 + p*w
		p = -1.333171662854620906e-16 + p*w
		p = 2.0972767875968561637e-17 + p*w
		p = 6.6376381343583238325e-15 + p*w
		p = -4.0545662729752068639e-14 + p*w
		p = -8.1519341976054721522e-14 + p*w
		p = 2.6335093153082322977e-12 + p*w
		p = -1.2975133253453532498e-11 + p*w
		p = -5.4154120542946279317e-11 + p*w
		p = 1.051212273321532285e-09 + p*w
		p = -4.1126339803469836976e-09 + p*w
		p = -2.9070369957882005086e-08 + p*w
		p = 4.2347877827932403518e-07 + p*w
		p = -1.3654692000834678645e-06 + p*w
		p = -1.3882523362786468719e-05 + p*w
		p = 0.0001867342080340571352 + p*w
		p = -0.00074070253416626697512 + p*w
		p = -0.0060336708714301490533 + p*w
		p = 0.24015818242558961693 + p*w
		p = 1.6536545626831027356 + p*w
	} else if w < 16 {
		w = math.Sqrt(w) - 3.25
		p = 2.2137376921775787049e-09
		p = 9.0756561938885390979e-08 + p*w
		p = -2.7517406297064545428e-07 + p*w
		p = 1.8239629214389227755e-08 + p*w
		p = 1.5027403968909827627e-06 + p*w
		p = -4.013867526981545969e-06 + p*w
		p = 2.9234449089955446044e-06 + p*w
		p = 1.2475304481671778723e-05 + p*w
		p = -4.7318229009055733981e-05 + p*w
		p = 6.8284851459573175448e-05 + p*w
		p = 2.4031110387097893999e-05 + p*w
		p = -0.0003550375203628474796 + p*w
		p = 0.00095328937973738049703 + p*w
		p = -0.0016882755560235047313 + p*w
		p = 0.0024914420961078508066 + p*w
		p = -0.0037512085075692412107 + p*w
		p = 0.005370914553590063617 + p*w
		p = 1.0052589676941592334 + p*w
		p = 3.0838856104922207635 + p*w
	} else {
		w = math.Sqrt(w) - 5
		p = -2.7109920616438573243e-11
		p = -2.5556418169965252055e-10 + p*w
		p = 1.5076572693500548083e-09 + p*w
		p = -3.7894654401267369937e-09 + p*w
		p = 7.6157012080783393804e-09 + p*w
		p = -1.4960026627149240478e-08 + p*w
		p = 2.9147953450901080826e-08 + p*w
		p = -6.7711997758452339498e-08 + p*w
		p = 2.2900482228026654717e-07 + p*w
		p = -9.9298272942317002539e-07 + p*w
		p = 4.5260625972231537039e-06 + p*w
		p = -1.9681778105531670567e-05 + p*w
		p = 7.5995277030017761139e-05 + p*w
		p = -0.00021503011930044477347 + p*w
		p = -0.00013871931833623122026 + p*w
		p = 1.0103004648645343977 + p*w
		p = 4.8499064014085844221 + p*w
	}
	return p * x
}

// Percentile returns the q-th percentile (0-100) of values using the same
// interpolation as Empirical.Quantile. It copies and sorts values.
func Percentile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	return NewEmpirical(values).Quantile(q / 100)
}

// Mean returns the arithmetic mean of values, or NaN if empty.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// StdDev returns the unbiased sample standard deviation of values.
func StdDev(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	return FitNormal(values).Sigma
}
