package antientropy_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/objstore"
	"repro/internal/world"
)

const (
	srcID = cloud.RegionID("aws:us-east-1")
	dstID = cloud.RegionID("azure:eastus")

	srcBucket = "scrub-src"
	dstBucket = "scrub-dst"
)

// deployScrubbed stands up a world with a scrub-enabled rule.
func deployScrubbed(t *testing.T, mutate func(*core.Options)) (*world.World, *core.Service) {
	t.Helper()
	w := world.New()
	for _, b := range []struct {
		r cloud.RegionID
		n string
	}{{srcID, srcBucket}, {dstID, dstBucket}} {
		if err := w.Region(b.r).Obj.CreateBucket(b.n, false); err != nil {
			t.Fatal(err)
		}
	}
	opts := core.Options{
		Rule:          engine.Rule{Src: srcID, Dst: dstID, SrcBucket: srcBucket, DstBucket: dstBucket},
		EnableScrub:   true,
		ScrubCadence:  30 * time.Second,
		ProfileRounds: 6,
	}
	if mutate != nil {
		mutate(&opts)
	}
	svc, err := core.Deploy(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w, svc
}

func put(t *testing.T, w *world.World, region cloud.RegionID, bucket, key string, size int64, seed uint64) objstore.PutResult {
	t.Helper()
	res, err := w.Region(region).Obj.Put(bucket, key, objstore.BlobOfSize(size, seed))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// putRetrying survives chaos-injected PUT refusals like any SDK client.
func putRetrying(t *testing.T, w *world.World, region cloud.RegionID, bucket, key string, size int64, seed uint64) objstore.PutResult {
	t.Helper()
	var err error
	for attempt := 0; attempt < 10; attempt++ {
		if attempt > 0 {
			w.Clock.Sleep(250 * time.Millisecond << uint(attempt-1))
		}
		var res objstore.PutResult
		if res, err = w.Region(region).Obj.Put(bucket, key, objstore.BlobOfSize(size, seed)); err == nil {
			return res
		}
	}
	t.Fatalf("put %s never succeeded: %v", key, err)
	return objstore.PutResult{}
}

// dupWatcher counts duplicate final writes at the destination: distinct
// store sequences whose content equals the version already current.
type dupWatcher struct {
	mu       sync.Mutex
	dups     int
	lastSeq  map[string]uint64
	lastETag map[string]string
}

func watchDups(t *testing.T, w *world.World, region cloud.RegionID, bucket string) *dupWatcher {
	t.Helper()
	c := &dupWatcher{lastSeq: map[string]uint64{}, lastETag: map[string]string{}}
	err := w.Region(region).Obj.Subscribe(bucket, func(ev objstore.Event) {
		if ev.Type != objstore.EventPut {
			return
		}
		c.mu.Lock()
		if ev.Seq > c.lastSeq[ev.Key] {
			if ev.ETag != "" && c.lastETag[ev.Key] == ev.ETag {
				c.dups++
			}
			c.lastSeq[ev.Key] = ev.Seq
			c.lastETag[ev.Key] = ev.ETag
		}
		c.mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func (c *dupWatcher) duplicates() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dups
}

// audit verifies every source object exists at the destination with a
// matching ETag and returns the number of divergent keys.
func audit(t *testing.T, w *world.World) int {
	t.Helper()
	metas, err := w.Region(srcID).Obj.List(srcBucket)
	if err != nil {
		t.Fatal(err)
	}
	divergent := 0
	for _, m := range metas {
		cur, err := w.Region(dstID).Obj.Head(dstBucket, m.Key)
		if err != nil || cur.ETag != m.ETag {
			divergent++
		}
	}
	return divergent
}

// TestScrubRepairsAllDivergenceClasses seeds one divergence of each class
// — a lost replica (missing), a corrupted replica (stale ETag), and a
// destination-only key (orphan) — and verifies one scrub round repairs all
// three through the engine.
func TestScrubRepairsAllDivergenceClasses(t *testing.T) {
	w, svc := deployScrubbed(t, nil)

	want := map[string]string{}
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("obj-%d", i)
		want[key] = put(t, w, srcID, srcBucket, key, 1<<20, uint64(i)+1).ETag
	}
	w.Clock.Quiesce()
	if n := audit(t, w); n != 0 {
		t.Fatalf("baseline replication left %d divergent", n)
	}

	// Missing: the destination loses a replica after convergence.
	if err := w.Region(dstID).Obj.Delete(dstBucket, "obj-0"); err != nil {
		t.Fatal(err)
	}
	// Stale: the replica is overwritten with foreign content.
	put(t, w, dstID, dstBucket, "obj-1", 1<<20, 999)
	// Orphan: a key that never existed at the source.
	put(t, w, dstID, dstBucket, "ghost", 1<<20, 777)
	// Age the orphan past the grace window so the scrubber may delete it.
	w.Clock.Sleep(45 * time.Second)

	rep, err := svc.Scrubber.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missing != 1 || rep.Stale != 1 || rep.Orphans != 1 {
		t.Fatalf("divergence classes = %d/%d/%d, want 1/1/1 (report %+v)",
			rep.Missing, rep.Stale, rep.Orphans, rep)
	}
	if rep.RepairsDispatched != 3 {
		t.Fatalf("dispatched %d repairs, want 3", rep.RepairsDispatched)
	}
	w.Clock.Quiesce()

	if n := audit(t, w); n != 0 {
		t.Fatalf("%d keys still divergent after repair", n)
	}
	if _, err := w.Region(dstID).Obj.Head(dstBucket, "ghost"); err == nil {
		t.Fatal("orphan survived the scrub")
	}
	rep2, err := svc.Scrubber.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean || rep2.Divergent != 0 {
		t.Fatalf("follow-up round not clean: %+v", rep2)
	}
	// A clean round ships only the root digest across the wide area.
	if rep2.DigestBytes != 8 {
		t.Fatalf("clean round shipped %d digest bytes, want 8", rep2.DigestBytes)
	}
}

// TestScrubOrphanGraceProtectsFreshReplicas: a destination key younger
// than the grace window must not be deleted — it may be a replica of a
// source write that happened after the source listing.
func TestScrubOrphanGraceProtectsFreshReplicas(t *testing.T) {
	w, svc := deployScrubbed(t, nil)
	put(t, w, dstID, dstBucket, "fresh", 1<<20, 5)
	rep, err := svc.Scrubber.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orphans != 0 {
		t.Fatalf("fresh destination key counted as orphan: %+v", rep)
	}
	if _, err := w.Region(dstID).Obj.Head(dstBucket, "fresh"); err != nil {
		t.Fatal("fresh replica was deleted inside the grace window")
	}
}

// TestScrubRepairsDroppedNotifications is the subsystem's reason to exist:
// with every notification dropped, notification-driven replication moves
// nothing, and the scrubber alone converges the pair.
func TestScrubRepairsDroppedNotifications(t *testing.T) {
	w, svc := deployScrubbed(t, nil)
	w.SetChaos(chaos.Profile{Name: "drop-all", NotifyLossRate: 1})
	want := map[string]string{}
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("lost-%d", i)
		want[key] = putRetrying(t, w, srcID, srcBucket, key, 512<<10, uint64(i)+1).ETag
	}
	w.Clock.Quiesce()
	if n := audit(t, w); n != len(want) {
		t.Fatalf("expected %d divergent before scrubbing, got %d", len(want), n)
	}
	rounds, last, err := svc.Scrubber.RunUntilClean()
	if err != nil {
		t.Fatal(err)
	}
	w.SetChaos(chaos.Profile{})
	if n := audit(t, w); n != 0 {
		t.Fatalf("%d divergent after %d scrub rounds (last %+v)", n, rounds, last)
	}
	if v := w.Metrics.Counter("antientropy.divergent_keys").Value(); v < int64(len(want)) {
		t.Fatalf("divergent_keys metric = %d, want >= %d", v, len(want))
	}
}

// TestScrubDLQRedriveRaceNoDuplicates (PR 2 zero-dup bar, extended): an
// operator redrive of the DLQ racing an independent scrub repair of the
// same key must not produce duplicate final writes.
func TestScrubDLQRedriveRaceNoDuplicates(t *testing.T) {
	w, svc := deployScrubbed(t, nil)
	dups := watchDups(t, w, dstID, dstBucket)

	w.Region(dstID).Obj.SetFailureRate(1.0) // destination hard down
	res := put(t, w, srcID, srcBucket, "victim", 2<<20, 1)
	w.Clock.Quiesce() // burns retries, auto-redrives, then parks in the DLQ
	if n := len(svc.Engine.DLQ()); n != 1 {
		t.Fatalf("DLQ depth = %d, want 1", n)
	}
	w.Region(dstID).Obj.SetFailureRate(0) // destination heals

	// Operator redrive and scrub repair race each other.
	w.Clock.Go(func() { svc.Engine.RedriveDLQ() })
	rep, err := svc.Scrubber.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	w.Clock.Quiesce()

	cur, err := w.Region(dstID).Obj.Head(dstBucket, "victim")
	if err != nil || cur.ETag != res.ETag {
		t.Fatalf("victim did not converge: %v", err)
	}
	if d := dups.duplicates(); d != 0 {
		t.Fatalf("%d duplicate final writes (scrub report %+v)", d, rep)
	}

	// Same race the other way: the scrubber finds the parked key first and
	// redrives it itself.
	w.Region(dstID).Obj.SetFailureRate(1.0)
	put(t, w, srcID, srcBucket, "victim2", 2<<20, 2)
	w.Clock.Quiesce()
	if n := len(svc.Engine.DLQ()); n != 1 {
		t.Fatalf("DLQ depth = %d, want 1", n)
	}
	w.Region(dstID).Obj.SetFailureRate(0)
	rep2, err := svc.Scrubber.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.RepairsRedriven != 1 {
		t.Fatalf("scrub redrove %d parked keys, want 1 (%+v)", rep2.RepairsRedriven, rep2)
	}
	w.Clock.Quiesce()
	if n := audit(t, w); n != 0 {
		t.Fatalf("%d divergent after scrub-initiated redrive", n)
	}
	if d := dups.duplicates(); d != 0 {
		t.Fatalf("%d duplicate final writes after scrub-initiated redrive", d)
	}
}

// TestScrubAllProfilesFullConvergence is the acceptance bar: under every
// builtin chaos profile a scrub-enabled run reaches 100% convergence with
// zero duplicate final writes.
func TestScrubAllProfilesFullConvergence(t *testing.T) {
	for _, name := range chaos.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			prof, err := chaos.Parse(name + "@11")
			if err != nil {
				t.Fatal(err)
			}
			w, svc := deployScrubbed(t, nil)
			dups := watchDups(t, w, dstID, dstBucket)
			w.SetChaos(prof)

			want := 10
			sizes := []int64{512 << 10, 2 << 20, 8 << 20}
			for i := 0; i < want; i++ {
				putRetrying(t, w, srcID, srcBucket, fmt.Sprintf("obj-%02d", i),
					sizes[i%len(sizes)], uint64(i)+1)
				w.Clock.Sleep(2 * time.Second)
			}
			w.Clock.Quiesce()

			// Scrub runs under the same chaos the workload saw.
			rounds, last, err := svc.Scrubber.RunUntilClean()
			if err != nil {
				t.Fatalf("scrub never converged: %v", err)
			}
			w.SetChaos(chaos.Profile{})

			if n := audit(t, w); n != 0 {
				t.Fatalf("%d of %d keys divergent after %d scrub rounds (last %+v)",
					n, want, rounds, last)
			}
			if d := dups.duplicates(); d != 0 {
				t.Fatalf("%d duplicate final writes under %s", d, name)
			}
		})
	}
}

// TestScrubDeterminism: identical seeds must produce byte-identical
// metrics, including every antientropy counter.
func TestScrubDeterminism(t *testing.T) {
	run := func() string {
		w, svc := deployScrubbed(t, nil)
		prof, _ := chaos.Parse("notify-flaky@3")
		w.SetChaos(prof)
		for i := 0; i < 8; i++ {
			putRetrying(t, w, srcID, srcBucket, fmt.Sprintf("d-%d", i), 1<<20, uint64(i)+1)
			w.Clock.Sleep(2 * time.Second)
		}
		w.Clock.Quiesce()
		if _, _, err := svc.Scrubber.RunUntilClean(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := w.Metrics.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("scrub runs with identical seeds diverged:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestScrubStartLoopTerminates: the periodic loop self-stops after
// consecutive clean rounds, so Quiesce returns.
func TestScrubStartLoopTerminates(t *testing.T) {
	w, svc := deployScrubbed(t, nil)
	svc.Scrubber.Start()
	for i := 0; i < 3; i++ {
		put(t, w, srcID, srcBucket, fmt.Sprintf("s-%d", i), 1<<20, uint64(i)+1)
		w.Clock.Sleep(time.Second)
	}
	// If the loop failed to self-stop this would hang until the test
	// timeout — termination is the property under test.
	w.Clock.Quiesce()
	if n := audit(t, w); n != 0 {
		t.Fatalf("%d divergent after loop exit", n)
	}
	if v := w.Metrics.Counter("antientropy.rounds").Value(); v < 2 {
		t.Fatalf("loop ran %d rounds, want >= 2", v)
	}
}
