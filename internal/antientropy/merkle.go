// Merkle-tree construction and diffing for the anti-entropy scrubber.
//
// A bucket listing is partitioned into L leaves by the high bits of each
// key's 64-bit FNV-1a hash — contiguous prefix ranges of the hash keyspace,
// so the partition is deterministic, independent of object count, and
// tolerant of key skew. Leaves roll up through one internal level of
// fan-out F into a single root, giving the three-level tree the paper-era
// anti-entropy literature (Dynamo, Cassandra) uses: root comparison is one
// 8-byte digest, and a divergent pair descends into at most
// F + F·(L/F) + |mismatched leaves| digest transfers.
package antientropy

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"repro/internal/objstore"
)

// member is one object version a leaf covers. The digest is keyed on
// (key, ETag): the ETag pins exact content, and source/destination
// sequence numbers are store-local so they cannot be compared directly —
// the ETag *is* the portable version identifier.
type member struct {
	Key  string
	ETag string
	Size int64
	Seq  uint64
	Age  float64 // seconds since the version was created, at listing time
}

// memberBytes is the wire size of one member record in a leaf exchange:
// key and ETag strings plus size/seq framing.
func (m member) wireBytes() int64 { return int64(len(m.Key)+len(m.ETag)) + 16 }

// digestBytes is the wire size of one tree digest.
const digestBytes = 8

// keyHash places a key in the hash keyspace.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// tree is one side's Merkle tree over a bucket listing.
type tree struct {
	fanout int
	leaves []uint64 // digest per leaf
	groups []uint64 // digest per internal node (len = len(leaves)/fanout)
	root   uint64
	member [][]member // members per leaf, sorted by key
}

// leafIndex maps a key hash to its leaf: the hash keyspace is split into
// len(leaves) equal prefix ranges.
func leafIndex(h uint64, leaves int) int {
	width := ^uint64(0)/uint64(leaves) + 1
	return int(h / width)
}

// treeBuilder accumulates a listing into leaf partitions incrementally,
// so a streaming consumer (one LIST page at a time) never materializes
// the full []Meta — only the per-leaf member sets the tree needs anyway.
type treeBuilder struct {
	fanout int
	member [][]member
	ageAt  func(objstore.Meta) float64
	count  int
}

func newTreeBuilder(leaves, fanout int, ageAt func(objstore.Meta) float64) *treeBuilder {
	return &treeBuilder{fanout: fanout, member: make([][]member, leaves), ageAt: ageAt}
}

// add places one listed object in its leaf. Ages are evaluated at add
// time — for a streaming listing, the page's fetch instant.
func (b *treeBuilder) add(m objstore.Meta) {
	i := leafIndex(keyHash(m.Key), len(b.member))
	b.member[i] = append(b.member[i], member{
		Key: m.Key, ETag: m.ETag, Size: m.Size, Seq: m.Seq, Age: b.ageAt(m),
	})
	b.count++
}

// finish computes the digest hierarchy over the accumulated members.
func (b *treeBuilder) finish() *tree {
	leaves := len(b.member)
	t := &tree{
		fanout: b.fanout,
		leaves: make([]uint64, leaves),
		groups: make([]uint64, leaves/b.fanout),
		member: b.member,
	}
	var buf [digestBytes]byte
	for i, ms := range t.member {
		sort.Slice(ms, func(a, b int) bool { return ms[a].Key < ms[b].Key })
		h := fnv.New64a()
		for _, m := range ms {
			h.Write([]byte(m.Key))
			h.Write([]byte{0})
			h.Write([]byte(m.ETag))
			h.Write([]byte{0})
		}
		t.leaves[i] = h.Sum64()
	}
	for g := range t.groups {
		h := fnv.New64a()
		for _, d := range t.leaves[g*b.fanout : (g+1)*b.fanout] {
			binary.BigEndian.PutUint64(buf[:], d)
			h.Write(buf[:])
		}
		t.groups[g] = h.Sum64()
	}
	h := fnv.New64a()
	for _, d := range t.groups {
		binary.BigEndian.PutUint64(buf[:], d)
		h.Write(buf[:])
	}
	t.root = h.Sum64()
	return t
}

// buildTree partitions a listing (already key-sorted, as ListPage returns
// it) into leaves and computes the digest hierarchy.
func buildTree(metas []objstore.Meta, leaves, fanout int, ageAt func(objstore.Meta) float64) *tree {
	b := newTreeBuilder(leaves, fanout, ageAt)
	for _, m := range metas {
		b.add(m)
	}
	return b.finish()
}

// divergence is the repair set one tree comparison yields.
type divergence struct {
	Missing []member // at source, absent at destination
	Stale   []member // present on both sides with differing ETags (source version)
	Orphan  []member // at destination, absent at source (destination metadata)
}

func (d divergence) total() int { return len(d.Missing) + len(d.Stale) + len(d.Orphan) }

// descend compares two trees top-down and returns the divergence plus the
// digest/member bytes a real exchange would ship from the destination to
// the comparing side, and how many leaves were actually compared.
func descend(src, dst *tree) (d divergence, xferBytes int64, leavesCompared, leavesMismatched int) {
	xferBytes = digestBytes // root digest always crosses
	if src.root == dst.root {
		return d, xferBytes, 0, 0
	}
	xferBytes += int64(len(dst.groups)) * digestBytes
	for g := range src.groups {
		if src.groups[g] == dst.groups[g] {
			continue
		}
		xferBytes += int64(src.fanout) * digestBytes
		for i := g * src.fanout; i < (g+1)*src.fanout; i++ {
			leavesCompared++
			if src.leaves[i] == dst.leaves[i] {
				continue
			}
			leavesMismatched++
			for _, m := range dst.member[i] {
				xferBytes += m.wireBytes()
			}
			diffLeaf(src.member[i], dst.member[i], &d)
		}
	}
	return d, xferBytes, leavesCompared, leavesMismatched
}

// diffLeaf merges two key-sorted member lists into the divergence set.
func diffLeaf(src, dst []member, d *divergence) {
	i, j := 0, 0
	for i < len(src) && j < len(dst) {
		switch {
		case src[i].Key < dst[j].Key:
			d.Missing = append(d.Missing, src[i])
			i++
		case src[i].Key > dst[j].Key:
			d.Orphan = append(d.Orphan, dst[j])
			j++
		default:
			if src[i].ETag != dst[j].ETag {
				d.Stale = append(d.Stale, src[i])
			}
			i, j = i+1, j+1
		}
	}
	for ; i < len(src); i++ {
		d.Missing = append(d.Missing, src[i])
	}
	for ; j < len(dst); j++ {
		d.Orphan = append(d.Orphan, dst[j])
	}
}
