// Package antientropy implements AReplica's background reconciliation
// subsystem: a virtual-clock-driven scrubber that periodically compares
// prefix-partitioned Merkle trees of the source and destination bucket
// listings, descends only into mismatching subtrees, and repairs the
// divergence — missing keys, stale ETags, orphan deletes — through the
// regular replication engine (retries, breaker and DLQ included).
//
// Event notifications are at-most-once in practice (the chaos notify-flaky
// profile drops 5% of them), so notification-driven replication alone
// converges to less than 100%. The scrubber closes that gap and turns
// "eventually consistent" into a divergence SLO: with a scrub cadence of
// SLO/2, any divergence older than the SLO has been seen by at least one
// full tree exchange and repaired or escalated.
//
// Every scrub round is metered serverless work: bucket listings are paid
// LIST pages, tree digests live in per-rule KV tables, the digest exchange
// crosses the wide area on simulated network legs, and the comparison runs
// as function invocations in both regions.
package antientropy

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/engine"
	"repro/internal/faas"
	"repro/internal/kvstore"
	"repro/internal/objstore"
	"repro/internal/simrand"
	"repro/internal/telemetry"
	"repro/internal/world"
)

// Defaults.
const (
	DefaultCadence        = 60 * time.Second
	DefaultFanout         = 16
	DefaultOrphanGrace    = 30 * time.Second
	DefaultStopAfterClean = 2
	DefaultMaxRounds      = 32
	DefaultMPUGrace       = 15 * time.Minute
)

// Config tunes one rule's scrubber.
type Config struct {
	// Cadence is the virtual-time interval between scrub rounds. Zero
	// derives it from DivergenceSLO (SLO/2), or DefaultCadence.
	Cadence time.Duration
	// DivergenceSLO is the declared bound on how long a divergent key may
	// stay unrepaired. It is a reporting target, not an enforcement knob:
	// Report.SLOViolations counts repairs whose source version was already
	// older than the SLO when the scrubber found it.
	DivergenceSLO time.Duration
	// Fanout is the internal-node fan-out F; the tree has F*F leaves
	// (default 16 -> 256 leaves).
	Fanout int
	// OrphanGrace protects freshly replicated objects from the orphan-
	// delete race: a destination key missing at the source is only deleted
	// once its destination version is older than the grace (default 30s).
	OrphanGrace time.Duration
	// StopAfterClean ends the Start loop after this many consecutive clean
	// rounds with an idle engine, so Quiesce can drain the simulation
	// (default 2; the loop would otherwise re-arm its timer forever).
	StopAfterClean int
	// MaxRounds bounds RunUntilClean (default 32).
	MaxRounds int
	// MPUGrace is the minimum age before an in-progress multipart upload
	// with no live checkpoint is considered orphaned and aborted (default
	// 15 minutes — comfortably past any live task's create-MPU →
	// checkpoint window and the engine's retry/redrive horizon). Negative
	// disables the MPU garbage collector.
	MPUGrace time.Duration
}

func (c Config) withDefaults() Config {
	if c.Cadence <= 0 {
		if c.DivergenceSLO > 0 {
			c.Cadence = c.DivergenceSLO / 2
		} else {
			c.Cadence = DefaultCadence
		}
	}
	if c.Fanout <= 1 {
		c.Fanout = DefaultFanout
	}
	if c.OrphanGrace <= 0 {
		c.OrphanGrace = DefaultOrphanGrace
	}
	if c.StopAfterClean <= 0 {
		c.StopAfterClean = DefaultStopAfterClean
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = DefaultMaxRounds
	}
	if c.MPUGrace == 0 {
		c.MPUGrace = DefaultMPUGrace
	}
	return c
}

// Report summarizes one scrub round.
type Report struct {
	Round             int
	SourceObjects     int
	DestObjects       int
	Missing           int // at source, absent at destination
	Stale             int // differing ETags
	Orphans           int // at destination only (past the grace window)
	Divergent         int // Missing + Stale + Orphans
	RepairsDispatched int
	RepairsRedriven   int // divergent keys parked in the DLQ, redriven
	RepairsDeduped    int // repairs already covered by in-flight tasks
	SLOViolations     int // repaired versions older than the divergence SLO
	DigestBytes       int64
	ListPages         int
	LeavesCompared    int
	LeavesMismatched  int
	MPUsAborted       int   // orphaned multipart uploads garbage-collected
	MPUBytesReclaimed int64 // part bytes those uploads were holding
	Clean             bool  // trees matched and the engine had no pending work
}

// Scrubber runs anti-entropy rounds for one deployed replication rule.
type Scrubber struct {
	eng *engine.Engine
	w   *world.World
	cfg Config

	table string // per-rule KV digest table

	// Instruments dual-write the historical run-wide aggregate and a
	// {rule}-labelled family child.
	rounds        telemetry.MirrorCounter
	divergentKeys telemetry.MirrorCounter
	repDispatched telemetry.MirrorCounter
	repRedriven   telemetry.MirrorCounter
	repDeduped    telemetry.MirrorCounter
	sloViolations telemetry.MirrorCounter
	digBytes      telemetry.MirrorCounter
	lastDivergent telemetry.MirrorGauge
	ageHist       telemetry.MirrorHistogram

	mu      chanMutex
	round   int
	stopped bool
}

// chanMutex is a tiny mutex that does not show up in race profiles of the
// virtual clock (a plain sync.Mutex would work too; this keeps Lock sites
// explicit and non-blocking in practice).
type chanMutex chan struct{}

func (m chanMutex) lock()   { m <- struct{}{} }
func (m chanMutex) unlock() { <-m }

// New returns a scrubber for the rule eng replicates. The scrubber shares
// the engine's world, tracker and DLQ, so repairs flow through the same
// dedupe and failure machinery as notification-driven tasks.
func New(eng *engine.Engine, cfg Config) *Scrubber {
	w := eng.W
	m := w.Metrics
	dims := []telemetry.Label{telemetry.L("rule", eng.RuleID())}
	counter := func(name string) telemetry.MirrorCounter {
		return m.CounterVec(name).Mirror(m.Counter(name), dims...)
	}
	return &Scrubber{
		eng:   eng,
		w:     w,
		cfg:   cfg.withDefaults(),
		table: "areplica-scrub:" + eng.RuleID(),

		rounds:        counter("antientropy.rounds"),
		divergentKeys: counter("antientropy.divergent_keys"),
		repDispatched: counter("antientropy.repair.dispatched"),
		repRedriven:   counter("antientropy.repair.redriven"),
		repDeduped:    counter("antientropy.repair.deduped"),
		sloViolations: counter("antientropy.slo_violations"),
		digBytes:      counter("antientropy.digest.bytes"),
		lastDivergent: m.GaugeVec("antientropy.last_divergent").Mirror(m.Gauge("antientropy.last_divergent"), dims...),
		ageHist:       m.HistogramVec("antientropy.divergence.age.seconds").Mirror(m.Histogram("antientropy.divergence.age.seconds"), dims...),

		mu: make(chanMutex, 1),
	}
}

// SLOViolationCount returns this rule's divergence-SLO violation count
// (the labelled child, not the run-wide aggregate) — the burn-rate
// monitor's divergence signal.
func (s *Scrubber) SLOViolationCount() int64 { return s.sloViolations.Child.Value() }

// Config returns the effective (defaulted) configuration.
func (s *Scrubber) Config() Config { return s.cfg }

// Cadence returns the effective scrub interval.
func (s *Scrubber) Cadence() time.Duration { return s.cfg.Cadence }

// Stop makes a running Start loop exit after its current round.
func (s *Scrubber) Stop() {
	s.mu.lock()
	s.stopped = true
	s.mu.unlock()
}

func (s *Scrubber) isStopped() bool {
	s.mu.lock()
	defer s.mu.unlock()
	return s.stopped
}

// Start launches the periodic scrub loop as a clock actor: every Cadence it
// runs one round, and it exits after StopAfterClean consecutive clean
// rounds (or Stop). Self-termination keeps Quiesce well-defined — a loop
// that re-armed its timer forever would hold the virtual clock open.
func (s *Scrubber) Start() {
	s.mu.lock()
	s.stopped = false
	s.mu.unlock()
	s.w.Clock.Go(func() {
		clean := 0
		for {
			s.w.Clock.Sleep(s.cfg.Cadence)
			if s.isStopped() {
				return
			}
			rep, err := s.RunOnce()
			if err == nil && rep.Clean {
				clean++
			} else {
				clean = 0
			}
			if clean >= s.cfg.StopAfterClean {
				return
			}
		}
	})
}

// RunUntilClean runs scrub rounds Cadence apart until StopAfterClean
// consecutive rounds are clean (or MaxRounds is hit), returning the rounds
// run and the last report. The caller must be a clock actor (the main
// driver goroutine qualifies).
func (s *Scrubber) RunUntilClean() (int, Report, error) {
	clean, ran := 0, 0
	var last Report
	for ran < s.cfg.MaxRounds {
		rep, err := s.RunOnce()
		ran++
		if err != nil {
			clean = 0
		} else {
			last = rep
			if rep.Clean {
				clean++
			} else {
				clean = 0
			}
		}
		if clean >= s.cfg.StopAfterClean {
			return ran, last, nil
		}
		s.w.Clock.Sleep(s.cfg.Cadence)
	}
	return ran, last, fmt.Errorf("antientropy: not clean after %d rounds (%d divergent)",
		ran, last.Divergent)
}

// RunOnce executes one scrub round: build both trees as function
// invocations, exchange digests top-down, and repair the divergence.
func (s *Scrubber) RunOnce() (Report, error) {
	s.mu.lock()
	s.round++
	round := s.round
	s.mu.unlock()
	s.rounds.Inc()

	rule := s.eng.Rule
	src := s.w.Region(rule.Src)
	dst := s.w.Region(rule.Dst)
	clock := s.w.Clock

	root := s.w.Tracer.StartTraceAt(
		fmt.Sprintf("scrub %s round-%d", s.eng.RuleID(), round), "scrub", clock.Now())
	root.Set(telemetry.CatAttr, string(telemetry.CatScrub)).Set("round", round)
	defer root.End()

	rep := Report{Round: round}

	// Both sides list their bucket and publish tree digests concurrently,
	// each as a metered function invocation in its own region.
	var srcTree, dstTree *tree
	var srcPages, dstPages int
	var srcErr, dstErr error
	group := clock.NewGroup(2)
	src.Fn.InvokeSpan(root, 1, func(ctx *faas.Ctx) {
		defer group.Done()
		srcTree, srcPages, srcErr = s.buildSide(ctx, rule.Src, rule.SrcBucket, "src")
	})
	dst.Fn.InvokeSpan(root, 1, func(ctx *faas.Ctx) {
		defer group.Done()
		dstTree, dstPages, dstErr = s.buildSide(ctx, rule.Dst, rule.DstBucket, "dst")
	})
	group.Wait()
	rep.ListPages = srcPages + dstPages
	if srcErr != nil || dstErr != nil {
		if srcErr == nil {
			srcErr = dstErr
		}
		return rep, fmt.Errorf("antientropy: round %d listing: %w", round, srcErr)
	}
	for _, ms := range srcTree.member {
		rep.SourceObjects += len(ms)
	}
	for _, ms := range dstTree.member {
		rep.DestObjects += len(ms)
	}

	// The comparison runs as one more source-side invocation: it reads the
	// local digest table, pulls the destination's digests level by level
	// over the wide area, and enqueues repairs for what differs.
	cgroup := clock.NewGroup(1)
	src.Fn.InvokeSpan(root, 1, func(ctx *faas.Ctx) {
		defer cgroup.Done()
		s.compareAndRepair(ctx, round, srcTree, dstTree, &rep)
	})
	cgroup.Wait()

	// Orphaned-MPU garbage collection rides the scrub cadence as one more
	// destination-side invocation — the serverless stand-in for a bucket
	// lifecycle rule. Uploads a live checkpoint references are left alone;
	// everything older than the grace is aborted and its bytes reclaimed.
	if s.cfg.MPUGrace >= 0 {
		ggroup := clock.NewGroup(1)
		dst.Fn.InvokeSpan(root, 1, func(ctx *faas.Ctx) {
			defer ggroup.Done()
			gsp := ctx.Span.Child("scrub-gc-mpus")
			rep.MPUsAborted, rep.MPUBytesReclaimed = s.eng.GCOrphanedMPUs(s.cfg.MPUGrace)
			gsp.Set("aborted", rep.MPUsAborted).Set("bytes", rep.MPUBytesReclaimed)
			gsp.End()
		})
		ggroup.Wait()
	}

	rep.Divergent = rep.Missing + rep.Stale + rep.Orphans
	rep.Clean = rep.Divergent == 0 && s.eng.Tracker.PendingCount() == 0
	s.divergentKeys.Add(int64(rep.Divergent))
	s.lastDivergent.Set(int64(rep.Divergent))
	s.digBytes.Add(rep.DigestBytes)
	root.Set("divergent", rep.Divergent).Set("clean", rep.Clean)
	return rep, nil
}

// buildSide lists one bucket through the paginated LIST API, streaming
// each page straight into the Merkle tree builder (the listing is never
// materialized whole), and stores the digests in the region's KV digest
// table. A transient page failure retries from the last key consumed —
// the continuation-token resume any SDK client performs — rather than
// re-listing the bucket from the start.
func (s *Scrubber) buildSide(ctx *faas.Ctx, region cloud.RegionID, bucket, label string) (*tree, int, error) {
	clock := s.w.Clock
	lsp := ctx.Span.Child("scrub-list-" + label)
	leaves := s.cfg.Fanout * s.cfg.Fanout
	bld := newTreeBuilder(leaves, s.cfg.Fanout, func(m objstore.Meta) float64 {
		return clock.Now().Sub(m.Created).Seconds()
	})
	var pages int
	var err error
	cursor := ""
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			clock.Sleep(500 * time.Millisecond << uint(attempt-1))
		}
		if !ctx.Alive() {
			lsp.Set("crashed", true).End()
			return nil, pages, fmt.Errorf("scrub %s: instance crashed", label)
		}
		sc := s.w.BucketScan(region, bucket, s.eng.Rule.KeyPrefix, cursor)
		for m, ok := sc.Next(); ok; m, ok = sc.Next() {
			bld.add(m)
		}
		pages += sc.Pages()
		if err = sc.Err(); err == nil {
			break
		}
		cursor = sc.LastKey()
	}
	lsp.Set("objects", bld.count).Set("pages", pages)
	lsp.End()
	if err != nil {
		return nil, pages, fmt.Errorf("scrub %s listing: %w", label, err)
	}

	t := bld.finish()

	// Publish the digest hierarchy to the regional digest table: the root,
	// the internal level, and per-group leaf digests — 2+F writes, each a
	// metered KV request.
	ssp := ctx.Span.Child("scrub-store-digests")
	kv := s.w.Region(region).KV
	kv.Put(s.table, label+":root", kvstore.Item{"d": hexDigest(t.root)})
	kv.Put(s.table, label+":groups", kvstore.Item{"d": hexDigests(t.groups)})
	for g := 0; g < len(t.groups); g++ {
		kv.Put(s.table, fmt.Sprintf("%s:leaves-%d", label, g),
			kvstore.Item{"d": hexDigests(t.leaves[g*s.cfg.Fanout : (g+1)*s.cfg.Fanout])})
	}
	ssp.End()
	return t, pages, nil
}

// compareAndRepair runs inside the source-side comparison invocation.
func (s *Scrubber) compareAndRepair(ctx *faas.Ctx, round int, srcTree, dstTree *tree, rep *Report) {
	rule := s.eng.Rule
	src := s.w.Region(rule.Src)
	dst := s.w.Region(rule.Dst)
	clock := s.w.Clock
	rng := simrand.New("scrub", s.eng.RuleID(), fmt.Sprint(round))

	// Digest exchange: read the local table, then pull the destination's
	// digests level by level across the wide area. The KV reads bill both
	// digest tables; the transfer rides a simulated network leg sized by
	// how deep the comparison actually descended.
	xsp := ctx.Span.Child("scrub-digest-exchange")
	src.KV.Get(s.table, "src:root")
	dst.KV.Get(s.table, "dst:root")
	div, xferBytes, leavesCompared, leavesMismatched := descend(srcTree, dstTree)
	if srcTree.root != dstTree.root {
		src.KV.Get(s.table, "src:groups")
		dst.KV.Get(s.table, "dst:groups")
	}
	s.w.MoveBytesSpan(xsp, "scrub-xfer", dst.Region, src.Region, src.Region.Provider,
		xferBytes, 1.0, rng)
	xsp.Set("bytes", xferBytes).Set("leaves", leavesCompared).Set("mismatched", leavesMismatched)
	xsp.End()
	rep.DigestBytes = xferBytes
	rep.LeavesCompared = leavesCompared
	rep.LeavesMismatched = leavesMismatched

	// Repair: every divergent key re-enters the normal replication path.
	rsp := ctx.Span.Child("scrub-repair")
	now := clock.Now()
	record := func(outcome engine.RepairOutcome) {
		switch outcome {
		case engine.RepairDispatched:
			rep.RepairsDispatched++
			s.repDispatched.Inc()
		case engine.RepairRedriven:
			rep.RepairsRedriven++
			s.repRedriven.Inc()
		case engine.RepairInflight:
			rep.RepairsDeduped++
			s.repDeduped.Inc()
		}
	}
	repairPut := func(m member) {
		s.ageHist.Observe(m.Age)
		if s.cfg.DivergenceSLO > 0 && m.Age > s.cfg.DivergenceSLO.Seconds() {
			rep.SLOViolations++
			s.sloViolations.Inc()
		}
		record(s.eng.Repair(objstore.Event{
			Type: objstore.EventPut, Bucket: rule.SrcBucket, Key: m.Key,
			Size: m.Size, ETag: m.ETag, Seq: m.Seq, Time: now,
		}))
	}
	for _, m := range div.Missing {
		rep.Missing++
		repairPut(m)
	}
	for _, m := range div.Stale {
		rep.Stale++
		repairPut(m)
	}
	for _, m := range div.Orphan {
		// The orphan-delete race: a key PUT after the source listing can
		// already be replicated when the comparison runs. Only versions
		// older than the grace window are really orphans.
		if m.Age < s.cfg.OrphanGrace.Seconds() {
			continue
		}
		rep.Orphans++
		record(s.eng.Repair(objstore.Event{
			Type: objstore.EventDelete, Bucket: rule.SrcBucket, Key: m.Key, Time: now,
		}))
	}
	rsp.Set("missing", rep.Missing).Set("stale", rep.Stale).Set("orphans", rep.Orphans)
	rsp.End()
}

func hexDigest(d uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], d)
	return hex.EncodeToString(b[:])
}

func hexDigests(ds []uint64) string {
	out := make([]byte, 0, len(ds)*16)
	for _, d := range ds {
		out = append(out, hexDigest(d)...)
	}
	return string(out)
}
