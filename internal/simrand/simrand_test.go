package simrand

import (
	"testing"
	"testing/quick"
)

func TestSeedDeterministic(t *testing.T) {
	if Seed("a", "b") != Seed("a", "b") {
		t.Fatal("same labels must give the same seed")
	}
	if Seed("a", "b") == Seed("b", "a") {
		t.Fatal("label order must matter")
	}
	// The separator prevents concatenation collisions.
	if Seed("ab", "c") == Seed("a", "bc") {
		t.Fatal("label boundaries must matter")
	}
}

func TestNewStreamsIndependent(t *testing.T) {
	a, b := New("x"), New("y")
	same := 0
	for i := 0; i < 32; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws from different seeds", same)
	}
	// Same label: identical streams.
	c, d := New("x"), New("x")
	for i := 0; i < 32; i++ {
		if c.Int63() != d.Int63() {
			t.Fatal("same seed must replay the same stream")
		}
	}
}

func TestNewIndexed(t *testing.T) {
	if NewIndexed(1, "a").Int63() == NewIndexed(2, "a").Int63() {
		t.Fatal("indices must vary the stream")
	}
}

func TestSeedPropertyNoTrivialCollisions(t *testing.T) {
	seen := map[int64]string{}
	f := func(a, b string) bool {
		s := Seed(a, b)
		key := a + "\x00" + b
		if prev, ok := seen[s]; ok && prev != key {
			return false
		}
		seen[s] = key
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
