// Package simrand derives deterministic math/rand sources from string
// labels. Every simulated entity (function instance, link, trace stream)
// seeds its own generator from its identity, so random draws are stable
// regardless of goroutine interleaving — a prerequisite for reproducible
// experiments on the virtual clock.
package simrand

import (
	"hash/fnv"
	"math/rand"
	"strconv"
)

// Seed hashes the labels into a 64-bit seed with FNV-1a.
func Seed(labels ...string) int64 {
	h := fnv.New64a()
	for _, l := range labels {
		h.Write([]byte(l))
		h.Write([]byte{0})
	}
	return int64(h.Sum64())
}

// source is a splitmix64 generator. The simulator creates a fresh
// generator per entity (often per task or per transfer leg), so seeding
// cost is on the hot path: math/rand's default lagged-Fibonacci source
// runs a 607-round warm-up per Seed, which profiled as ~a third of a
// fleet replay's CPU. Splitmix64 seeds in O(1), passes BigCrush, and its
// stream is a pure function of the 64-bit seed — determinism is
// unchanged, only the draw values differ from the old source (baselines
// were regenerated when it landed).
type source struct{ state uint64 }

func (s *source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *source) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *source) Seed(seed int64) { s.state = uint64(seed) }

// New returns a rand.Rand seeded from the labels.
func New(labels ...string) *rand.Rand {
	return rand.New(&source{state: uint64(Seed(labels...))})
}

// NewIndexed returns a rand.Rand seeded from the labels plus an integer
// index, convenient for per-instance or per-round generators.
func NewIndexed(i int, labels ...string) *rand.Rand {
	return New(append(labels, strconv.Itoa(i))...)
}
