// Package simrand derives deterministic math/rand sources from string
// labels. Every simulated entity (function instance, link, trace stream)
// seeds its own generator from its identity, so random draws are stable
// regardless of goroutine interleaving — a prerequisite for reproducible
// experiments on the virtual clock.
package simrand

import (
	"hash/fnv"
	"math/rand"
	"strconv"
)

// Seed hashes the labels into a 64-bit seed with FNV-1a.
func Seed(labels ...string) int64 {
	h := fnv.New64a()
	for _, l := range labels {
		h.Write([]byte(l))
		h.Write([]byte{0})
	}
	return int64(h.Sum64())
}

// New returns a rand.Rand seeded from the labels.
func New(labels ...string) *rand.Rand {
	return rand.New(rand.NewSource(Seed(labels...)))
}

// NewIndexed returns a rand.Rand seeded from the labels plus an integer
// index, convenient for per-instance or per-round generators.
func NewIndexed(i int, labels ...string) *rand.Rand {
	return New(append(labels, strconv.Itoa(i))...)
}
