package kvstore

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Lease is an ownership claim on a shared resource (a part-pool claim, a
// rule lock): who holds it, under which fencing epoch, and when it stops
// counting. Leases are stored as a single string attribute inside an Item
// so stamping one rides along with the atomic Update that takes the claim
// — no extra KV operation.
type Lease struct {
	Owner   string
	Epoch   int64
	Expires time.Time
}

// Expired reports whether the lease has lapsed at the given instant. A
// zero lease is expired.
func (l Lease) Expired(now time.Time) bool {
	return !now.Before(l.Expires)
}

// Encode renders the lease as a flat "owner|epoch|expiresUnixNano" string.
func (l Lease) Encode() string {
	return fmt.Sprintf("%s|%d|%d", l.Owner, l.Epoch, l.Expires.UnixNano())
}

// ParseLease decodes an Encode'd lease. A missing or malformed value
// yields the zero lease (expired at any instant), so stale schema reads
// degrade to "reclaimable" rather than erroring.
func ParseLease(s string) Lease {
	parts := strings.SplitN(s, "|", 3)
	if len(parts) != 3 {
		return Lease{}
	}
	epoch, err1 := strconv.ParseInt(parts[1], 10, 64)
	nanos, err2 := strconv.ParseInt(parts[2], 10, 64)
	if err1 != nil || err2 != nil {
		return Lease{}
	}
	return Lease{Owner: parts[0], Epoch: epoch, Expires: time.Unix(0, nanos)}
}
