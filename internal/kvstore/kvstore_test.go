package kvstore

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/pricing"
	"repro/internal/simclock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newStore() (*simclock.Clock, *Store, *pricing.Meter) {
	clk := simclock.New(epoch)
	meter := pricing.NewMeter()
	s := New(clk, cloud.MustLookup("aws:us-east-1"), meter)
	return clk, s, meter
}

func TestPutGetDelete(t *testing.T) {
	_, s, _ := newStore()
	if _, ok := s.Get("t", "k"); ok {
		t.Fatal("unexpected item before put")
	}
	s.Put("t", "k", Item{"a": "x", "n": int64(3)})
	it, ok := s.Get("t", "k")
	if !ok || it.Str("a") != "x" || it.Int("n") != 3 {
		t.Fatalf("got %v, %v", it, ok)
	}
	s.Delete("t", "k")
	if _, ok := s.Get("t", "k"); ok {
		t.Fatal("item survived delete")
	}
	s.Delete("t", "k") // idempotent
}

func TestItemsAreCopied(t *testing.T) {
	_, s, _ := newStore()
	orig := Item{"a": "x"}
	s.Put("t", "k", orig)
	orig["a"] = "mutated"
	it, _ := s.Get("t", "k")
	if it.Str("a") != "x" {
		t.Fatal("store shared memory with caller on Put")
	}
	it["a"] = "mutated2"
	it2, _ := s.Get("t", "k")
	if it2.Str("a") != "x" {
		t.Fatal("store shared memory with caller on Get")
	}
}

func TestConditionalPut(t *testing.T) {
	_, s, _ := newStore()
	err := s.ConditionalPut("t", "k", Item{"v": int64(1)}, func(_ Item, exists bool) bool { return !exists })
	if err != nil {
		t.Fatalf("first put: %v", err)
	}
	err = s.ConditionalPut("t", "k", Item{"v": int64(2)}, func(_ Item, exists bool) bool { return !exists })
	if !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("second put: %v, want ErrConditionFailed", err)
	}
	it, _ := s.Get("t", "k")
	if it.Int("v") != 1 {
		t.Fatalf("failed conditional put overwrote the item: %v", it)
	}
	// Condition reading current state.
	err = s.ConditionalPut("t", "k", Item{"v": int64(2)}, func(cur Item, _ bool) bool { return cur.Int("v") == 1 })
	if err != nil {
		t.Fatalf("cas: %v", err)
	}
}

func TestPutIfAbsent(t *testing.T) {
	_, s, _ := newStore()
	if err := s.PutIfAbsent("t", "k", Item{}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutIfAbsent("t", "k", Item{}); !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("got %v", err)
	}
}

func TestUpdateAndDeleteViaUpdate(t *testing.T) {
	_, s, _ := newStore()
	got := s.Update("t", "k", func(cur Item, exists bool) (Item, bool) {
		if exists {
			t.Error("item should not exist yet")
		}
		return Item{"v": int64(10)}, true
	})
	if got.Int("v") != 10 {
		t.Fatalf("update returned %v", got)
	}
	s.Update("t", "k", func(cur Item, exists bool) (Item, bool) { return nil, false })
	if _, ok := s.Get("t", "k"); ok {
		t.Fatal("update-delete left the item")
	}
}

func TestIncrementConcurrent(t *testing.T) {
	clk, s, _ := newStore()
	const actors, perActor = 20, 25
	var last atomic.Int64
	for i := 0; i < actors; i++ {
		clk.Go(func() {
			for j := 0; j < perActor; j++ {
				last.Store(s.Increment("t", "ctr", "n", 1))
			}
		})
	}
	clk.Quiesce()
	it, _ := s.Get("t", "ctr")
	if it.Int("n") != actors*perActor {
		t.Fatalf("counter = %d, want %d", it.Int("n"), actors*perActor)
	}
	if last.Load() != actors*perActor {
		t.Fatalf("some increment observed %d as the final value", last.Load())
	}
}

func TestLatencyIsMilliseconds(t *testing.T) {
	clk, s, _ := newStore()
	start := clk.Now()
	for i := 0; i < 100; i++ {
		s.Put("t", "k", Item{})
	}
	elapsed := clk.Since(start)
	per := elapsed / 100
	if per < 500*time.Microsecond || per > 10*time.Millisecond {
		t.Fatalf("per-op latency %v, want single-digit ms", per)
	}
}

func TestMetering(t *testing.T) {
	_, s, m := newStore()
	s.Put("t", "a", Item{})
	s.Get("t", "a")
	s.Increment("t", "a", "n", 1)
	st := s.Stats()
	if st.Writes != 2 || st.Reads != 1 {
		t.Fatalf("stats = %+v", st)
	}
	wantWrites := 2 * pricing.BookFor(cloud.AWS).KVWrite
	if got := m.Item("kv:write"); got != wantWrites {
		t.Fatalf("write cost = %v, want %v", got, wantWrites)
	}
	if m.Item("kv:read") != pricing.BookFor(cloud.AWS).KVRead {
		t.Fatalf("read cost = %v", m.Item("kv:read"))
	}
}

func TestTablesAreIsolated(t *testing.T) {
	_, s, _ := newStore()
	s.Put("t1", "k", Item{"v": int64(1)})
	if _, ok := s.Get("t2", "k"); ok {
		t.Fatal("tables leaked into each other")
	}
	if s.Len("t1") != 1 || s.Len("t2") != 0 {
		t.Fatalf("lens: %d, %d", s.Len("t1"), s.Len("t2"))
	}
}

func TestConditionalPutRace(t *testing.T) {
	// Many actors race PutIfAbsent on the same key; exactly one must win.
	clk, s, _ := newStore()
	var wins atomic.Int32
	for i := 0; i < 32; i++ {
		i := i
		clk.Go(func() {
			if err := s.PutIfAbsent("t", "lock", Item{"owner": int64(i)}); err == nil {
				wins.Add(1)
			}
		})
	}
	clk.Quiesce()
	if wins.Load() != 1 {
		t.Fatalf("%d winners, want exactly 1", wins.Load())
	}
}

func TestTTLExpiry(t *testing.T) {
	clk, s, _ := newStore()
	s.PutWithTTL("t", "lease", Item{"owner": "a"}, 10*time.Second)
	if _, ok := s.Get("t", "lease"); !ok {
		t.Fatal("item missing before expiry")
	}
	clk.Sleep(11 * time.Second)
	if _, ok := s.Get("t", "lease"); ok {
		t.Fatal("item survived its TTL")
	}
	// An expired key can be re-acquired conditionally.
	if err := s.PutIfAbsent("t", "lease", Item{"owner": "b"}); err != nil {
		t.Fatalf("expired key blocked a fresh acquire: %v", err)
	}
}

func TestTTLClearedByPlainWrite(t *testing.T) {
	clk, s, _ := newStore()
	s.PutWithTTL("t", "k", Item{"v": int64(1)}, 5*time.Second)
	// A conditional overwrite makes the item durable again.
	if err := s.ConditionalPut("t", "k", Item{"v": int64(2)}, func(cur Item, ok bool) bool { return ok }); err != nil {
		t.Fatal(err)
	}
	clk.Sleep(time.Minute)
	if it, ok := s.Get("t", "k"); !ok || it.Int("v") != 2 {
		t.Fatal("durable overwrite expired")
	}
}

func TestTTLVisibleInUpdate(t *testing.T) {
	clk, s, _ := newStore()
	s.PutWithTTL("t", "k", Item{"v": int64(1)}, time.Second)
	clk.Sleep(2 * time.Second)
	s.Update("t", "k", func(cur Item, exists bool) (Item, bool) {
		if exists {
			t.Error("expired item visible in Update")
		}
		return Item{"v": int64(9)}, true
	})
}
