// Package kvstore simulates the serverless NoSQL databases AReplica keeps
// its replication state in (DynamoDB, Cosmos DB, Firestore): a regional
// key-value store with conditional writes, atomic read-modify-write
// updates and counters, single-digit-millisecond operation latency on the
// virtual clock, and per-operation metering at the provider's list price.
package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/pricing"
	"repro/internal/simclock"
	"repro/internal/simrand"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// ErrConditionFailed is returned when a conditional write's predicate
// rejects the current item state.
var ErrConditionFailed = errors.New("kvstore: condition failed")

// Item is one record: a flat attribute map. Values should be comparable
// scalars (string, int64, float64, bool). Items are copied on read and
// write, so callers can mutate their copies freely.
type Item map[string]any

// clone returns a shallow copy of the item.
func (it Item) clone() Item {
	if it == nil {
		return nil
	}
	out := make(Item, len(it))
	for k, v := range it {
		out[k] = v
	}
	return out
}

// Int returns the attribute as int64, or 0 when absent/mistyped.
func (it Item) Int(attr string) int64 {
	v, _ := it[attr].(int64)
	return v
}

// Str returns the attribute as string, or "" when absent/mistyped.
func (it Item) Str(attr string) string {
	v, _ := it[attr].(string)
	return v
}

// Store is a regional serverless KV database.
type Store struct {
	clock   *simclock.Clock
	region  cloud.Region
	book    pricing.Book
	meter   *pricing.Meter
	latency stats.Normal

	mu      sync.Mutex
	rng     latencyRNG
	chaos   *chaos.Injector
	quota   Quota
	tables  map[string]map[string]Item
	expires map[string]map[string]time.Time // table -> key -> expiry

	reads     telemetry.Counter
	writes    telemetry.Counter
	throttled telemetry.Counter

	// Optional run-wide registry instruments (nil no-ops until SetTelemetry).
	regReads     *telemetry.Counter
	regWrites    *telemetry.Counter
	regThrottled *telemetry.Counter
	opHist       *telemetry.Histogram
}

// OpStats is a snapshot of operation counters, for tests and cost sanity
// checks.
type OpStats struct {
	Reads     int64
	Writes    int64
	Throttled int64 // operations delayed by injected throttling
}

type latencyRNG struct {
	mu  sync.Mutex
	rng interface{ NormFloat64() float64 }
}

// New returns a Store for the given region, billing operations to meter.
func New(clock *simclock.Clock, region cloud.Region, meter *pricing.Meter) *Store {
	s := &Store{
		clock:   clock,
		region:  region,
		book:    pricing.BookFor(region.Provider),
		meter:   meter,
		latency: stats.N(0.003, 0.001), // single-digit ms, as the paper notes
		tables:  make(map[string]map[string]Item),
		expires: make(map[string]map[string]time.Time),
	}
	s.rng.rng = simrand.New("kvstore", string(region.ID()))
	return s
}

// Region returns the store's region.
func (s *Store) Region() cloud.Region { return s.region }

// Stats returns a snapshot of the operation counters.
func (s *Store) Stats() OpStats {
	return OpStats{Reads: s.reads.Value(), Writes: s.writes.Value(), Throttled: s.throttled.Value()}
}

// SetChaos points the store at an armed chaos injector (nil disables).
func (s *Store) SetChaos(ij *chaos.Injector) {
	s.mu.Lock()
	s.chaos = ij
	s.mu.Unlock()
}

// Quota is an account-level throughput gate shared across stores — the
// fleet control plane's per-(provider,region) KV budget. WaitOp may sleep
// on the virtual clock before the operation's own latency is simulated,
// modelling account-wide provisioned-throughput limits the way injected
// throttling models transient ones: as added latency, never an error.
type Quota interface {
	WaitOp(write bool)
}

// SetQuota installs a shared throughput gate (nil removes it).
func (s *Store) SetQuota(q Quota) {
	s.mu.Lock()
	s.quota = q
	s.mu.Unlock()
}

// SetTelemetry mirrors the store's activity into run-wide registry
// instruments: aggregate read/write counters and an operation-latency
// histogram shared across regions.
func (s *Store) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.regReads = reg.Counter("kvstore.reads")
	s.regWrites = reg.Counter("kvstore.writes")
	s.regThrottled = reg.Counter("kvstore.throttled")
	s.opHist = reg.Histogram("kvstore.op.seconds")
}

// simulateOp sleeps one KV operation latency and meters its cost. Injected
// throttling shows up as added latency rather than an error: real SDKs
// retry ProvisionedThroughputExceeded internally, so callers of DynamoDB
// and its kin mostly experience throttling as slowness.
func (s *Store) simulateOp(write bool) {
	s.mu.Lock()
	q := s.quota
	s.mu.Unlock()
	if q != nil {
		q.WaitOp(write)
	}
	s.rng.mu.Lock()
	d := s.latency.Mu + s.latency.Sigma*s.rng.rng.NormFloat64()
	s.rng.mu.Unlock()
	if d < 0.0005 {
		d = 0.0005
	}
	s.mu.Lock()
	ij := s.chaos
	s.mu.Unlock()
	if extra := ij.KVThrottle(string(s.region.ID())); extra > 0 {
		s.throttled.Inc()
		s.regThrottled.Inc()
		d += simclock.ToSeconds(extra)
	}
	s.clock.Sleep(simclock.Seconds(d))
	s.opHist.Observe(d)
	if write {
		s.writes.Inc()
		s.regWrites.Inc()
		s.meter.Add("kv:write", s.book.KVWrite)
	} else {
		s.reads.Inc()
		s.regReads.Inc()
		s.meter.Add("kv:read", s.book.KVRead)
	}
}

func (s *Store) table(name string) map[string]Item {
	t, ok := s.tables[name]
	if !ok {
		t = make(map[string]Item)
		s.tables[name] = t
	}
	return t
}

// reapLocked lazily evicts an expired item, DynamoDB-TTL style. Caller
// holds s.mu.
func (s *Store) reapLocked(table, key string) {
	if exp, ok := s.expires[table]; ok {
		if at, ok := exp[key]; ok && !s.clock.Now().Before(at) {
			delete(exp, key)
			delete(s.tables[table], key)
		}
	}
}

// setTTLLocked installs or clears a key's expiry. Caller holds s.mu.
func (s *Store) setTTLLocked(table, key string, ttl time.Duration) {
	exp, ok := s.expires[table]
	if !ok {
		exp = make(map[string]time.Time)
		s.expires[table] = exp
	}
	if ttl <= 0 {
		delete(exp, key)
		return
	}
	exp[key] = s.clock.Now().Add(ttl)
}

// PutWithTTL writes an item that expires (and reads as absent) after ttl —
// the lease primitive real lock tables rely on so a crashed holder cannot
// wedge a key forever.
func (s *Store) PutWithTTL(table, key string, item Item, ttl time.Duration) {
	s.simulateOp(true)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.table(table)[key] = item.clone()
	s.setTTLLocked(table, key, ttl)
}

// Get reads one item. The boolean reports whether the item exists.
func (s *Store) Get(table, key string) (Item, bool) {
	s.simulateOp(false)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked(table, key)
	it, ok := s.table(table)[key]
	return it.clone(), ok
}

// Put writes an item unconditionally.
func (s *Store) Put(table, key string, item Item) {
	s.simulateOp(true)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.table(table)[key] = item.clone()
}

// Delete removes an item; deleting a missing item is a no-op.
func (s *Store) Delete(table, key string) {
	s.simulateOp(true)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.table(table), key)
}

// ConditionalPut writes item if cond accepts the current state. cond
// receives the existing item (nil-safe copy) and whether it exists. Chaos
// contention storms make a fraction of conditional writes lose a spurious
// race and fail their precondition without touching the item.
func (s *Store) ConditionalPut(table, key string, item Item, cond func(cur Item, exists bool) bool) error {
	s.simulateOp(true)
	s.mu.Lock()
	if ij := s.chaos; ij.KVContention(string(s.region.ID())) {
		s.mu.Unlock()
		return ErrConditionFailed
	}
	defer s.mu.Unlock()
	s.reapLocked(table, key)
	cur, exists := s.table(table)[key]
	if !cond(cur.clone(), exists) {
		return ErrConditionFailed
	}
	s.table(table)[key] = item.clone()
	s.setTTLLocked(table, key, 0)
	return nil
}

// PutIfAbsent writes item only when the key does not exist.
func (s *Store) PutIfAbsent(table, key string, item Item) error {
	return s.ConditionalPut(table, key, item, func(_ Item, exists bool) bool { return !exists })
}

// Update applies fn atomically to the current item. fn receives a copy of
// the current item (nil if absent) and the existence flag, and returns the
// new item and whether to keep it (false deletes the key). Update returns
// the stored item. Any existing TTL is preserved.
func (s *Store) Update(table, key string, fn func(cur Item, exists bool) (Item, bool)) Item {
	return s.UpdateWithTTL(table, key, 0, fn)
}

// UpdateWithTTL is Update that additionally refreshes the item's lease
// when ttl > 0 (ttl == 0 preserves any existing expiry). Lock tables use
// it so a crashed holder's lock expires instead of wedging the key.
func (s *Store) UpdateWithTTL(table, key string, ttl time.Duration, fn func(cur Item, exists bool) (Item, bool)) Item {
	return s.UpdateTTL(table, key, func(cur Item, exists bool) (Item, bool, time.Duration) {
		next, keep := fn(cur, exists)
		return next, keep, ttl
	})
}

// UpdateTTL is Update where fn also decides the lease of the stored item:
// a returned ttl > 0 (re)installs the expiry, 0 preserves whatever expiry
// exists. Lock acquisition needs this — only the call that actually takes
// the lock may refresh its lease; a contender recording itself as pending
// must not keep a crashed holder's lock alive.
func (s *Store) UpdateTTL(table, key string, fn func(cur Item, exists bool) (Item, bool, time.Duration)) Item {
	s.simulateOp(true)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked(table, key)
	cur, exists := s.table(table)[key]
	next, keep, ttl := fn(cur.clone(), exists)
	if !keep {
		delete(s.table(table), key)
		s.setTTLLocked(table, key, 0)
		return nil
	}
	s.table(table)[key] = next.clone()
	if ttl > 0 {
		s.setTTLLocked(table, key, ttl)
	}
	return next.clone()
}

// Increment atomically adds delta to an integer attribute (creating the
// item or attribute at zero) and returns the new value.
func (s *Store) Increment(table, key, attr string, delta int64) int64 {
	var out int64
	s.Update(table, key, func(cur Item, exists bool) (Item, bool) {
		if cur == nil {
			cur = Item{}
		}
		out = cur.Int(attr) + delta
		cur[attr] = out
		return cur, true
	})
	return out
}

// Len reports the number of items in a table (no latency; test helper).
func (s *Store) Len(table string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tables[table])
}

// Dump returns a formatted listing of a table for debugging.
func (s *Store) Dump(table string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := ""
	for k, v := range s.tables[table] {
		out += fmt.Sprintf("%s: %v\n", k, v)
	}
	return out
}
