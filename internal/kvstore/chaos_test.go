package kvstore

import (
	"errors"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/telemetry"
)

// TestChaosThrottleAddsLatencyNotErrors: KV throttling models the SDK's
// internal retries after a ProvisionedThroughputExceeded rejection — the
// caller sees added virtual-clock latency, never an error.
func TestChaosThrottleAddsLatencyNotErrors(t *testing.T) {
	clk, s, _ := newStore()
	reg := telemetry.NewRegistry()
	s.SetTelemetry(reg)
	s.SetChaos(chaos.NewInjector(clk, chaos.Profile{
		Name: "t", KVThrottleRate: 1, KVThrottleMax: 250 * time.Millisecond,
	}, reg))

	var throttled time.Duration
	clk.Go(func() {
		start := clk.Now()
		for i := 0; i < 20; i++ {
			s.Put("t", "k", Item{"n": int64(i)})
		}
		throttled = clk.Now().Sub(start)
	})
	clk.Quiesce()

	clk2, s2, _ := newStore()
	var base time.Duration
	clk2.Go(func() {
		start := clk2.Now()
		for i := 0; i < 20; i++ {
			s2.Put("t", "k", Item{"n": int64(i)})
		}
		base = clk2.Now().Sub(start)
	})
	clk2.Quiesce()

	if throttled <= base {
		t.Fatalf("throttled run (%v) not slower than baseline (%v)", throttled, base)
	}
	if got := s.Stats().Throttled; got != 20 {
		t.Fatalf("Stats().Throttled = %d, want 20", got)
	}
	if got := reg.Counter("kvstore.throttled").Value(); got != 20 {
		t.Fatalf("kvstore.throttled = %d, want 20", got)
	}
	if it, ok := s.Get("t", "k"); !ok || it.Int("n") != 19 {
		t.Fatalf("throttled writes lost data: %v, %v", it, ok)
	}
}

// TestChaosContentionFailsConditionalPuts: contention chaos makes a
// conditional write lose a (spurious) race even though its predicate
// holds; plain writes are unaffected.
func TestChaosContentionFailsConditionalPuts(t *testing.T) {
	clk, s, _ := newStore()
	s.SetChaos(chaos.NewInjector(clk, chaos.Profile{Name: "t", KVContentionRate: 1}, nil))

	always := func(Item, bool) bool { return true }
	if err := s.ConditionalPut("t", "k", Item{"a": "x"}, always); !errors.Is(err, ErrConditionFailed) {
		t.Fatalf("ConditionalPut under rate-1 contention = %v, want ErrConditionFailed", err)
	}
	if _, ok := s.Get("t", "k"); ok {
		t.Fatal("contended conditional write still applied")
	}
	s.Put("t", "k", Item{"a": "y"}) // unconditional writes never contend
	if it, ok := s.Get("t", "k"); !ok || it.Str("a") != "y" {
		t.Fatalf("plain put affected by contention chaos: %v, %v", it, ok)
	}
}
