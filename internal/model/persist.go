package model

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/cloud"
	"repro/internal/stats"
)

// The profiler is expensive to re-run on every deployment, so fitted
// parameters can be exported and re-imported (a real deployment would keep
// them in the same cloud database that holds replication state).

type persistedNormal struct {
	Mu    float64 `json:"mu"`
	Sigma float64 `json:"sigma"`
}

type persistedChunk struct {
	Mu      float64 `json:"mu"`
	Between float64 `json:"between"`
	Within  float64 `json:"within"`
}

type persistedLoc struct {
	Region string          `json:"region"`
	I      persistedNormal `json:"i"`
	D      persistedNormal `json:"d"`
	P      persistedNormal `json:"p"`
}

type persistedPath struct {
	Src string          `json:"src"`
	Dst string          `json:"dst"`
	Loc string          `json:"loc"`
	S   persistedNormal `json:"s"`
	C   persistedChunk  `json:"c"`
	Cp  persistedChunk  `json:"cp"`
}

type persistedNotify struct {
	Region string          `json:"region"`
	Tn     persistedNormal `json:"tn"`
}

type persistedModel struct {
	Chunk    int64             `json:"chunk_bytes"`
	Locs     []persistedLoc    `json:"locs"`
	Paths    []persistedPath   `json:"paths"`
	Notifies []persistedNotify `json:"notifies"`
}

func toPN(n stats.Normal) persistedNormal   { return persistedNormal{Mu: n.Mu, Sigma: n.Sigma} }
func fromPN(p persistedNormal) stats.Normal { return stats.N(p.Mu, p.Sigma) }
func toPC(c ChunkTime) persistedChunk {
	return persistedChunk{Mu: c.Mu, Between: c.Between, Within: c.Within}
}
func fromPC(p persistedChunk) ChunkTime {
	return ChunkTime{Mu: p.Mu, Between: p.Between, Within: p.Within}
}

// Export writes the model's fitted parameters as JSON.
func (m *Model) Export(w io.Writer) error {
	m.mu.Lock()
	pm := persistedModel{Chunk: m.Chunk}
	for loc, lp := range m.loc {
		pm.Locs = append(pm.Locs, persistedLoc{
			Region: string(loc), I: toPN(lp.I), D: toPN(lp.D), P: toPN(lp.P),
		})
	}
	for k, pp := range m.path {
		pm.Paths = append(pm.Paths, persistedPath{
			Src: string(k.Src), Dst: string(k.Dst), Loc: string(k.Loc),
			S: toPN(pp.S), C: toPC(pp.C), Cp: toPC(pp.Cp),
		})
	}
	for r, tn := range m.notify {
		pm.Notifies = append(pm.Notifies, persistedNotify{Region: string(r), Tn: toPN(tn)})
	}
	m.mu.Unlock()
	// Stable output order for diffable profiles.
	sort.Slice(pm.Locs, func(i, j int) bool { return pm.Locs[i].Region < pm.Locs[j].Region })
	sort.Slice(pm.Paths, func(i, j int) bool {
		a, b := pm.Paths[i], pm.Paths[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Loc < b.Loc
	})
	sort.Slice(pm.Notifies, func(i, j int) bool { return pm.Notifies[i].Region < pm.Notifies[j].Region })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pm)
}

// Import merges parameters exported by Export into the model, validating
// region identifiers. Existing entries for the same keys are replaced and
// affected Monte-Carlo caches dropped.
func (m *Model) Import(r io.Reader) error {
	var pm persistedModel
	if err := json.NewDecoder(r).Decode(&pm); err != nil {
		return fmt.Errorf("model: decoding profile: %w", err)
	}
	if pm.Chunk > 0 && pm.Chunk != m.Chunk {
		return fmt.Errorf("model: profile chunk size %d differs from model's %d", pm.Chunk, m.Chunk)
	}
	parse := func(s string) (cloud.RegionID, error) { return cloud.ParseRegionID(s) }
	for _, l := range pm.Locs {
		id, err := parse(l.Region)
		if err != nil {
			return err
		}
		m.SetLoc(id, LocParams{I: fromPN(l.I), D: fromPN(l.D), P: fromPN(l.P)})
	}
	for _, p := range pm.Paths {
		src, err := parse(p.Src)
		if err != nil {
			return err
		}
		dst, err := parse(p.Dst)
		if err != nil {
			return err
		}
		loc, err := parse(p.Loc)
		if err != nil {
			return err
		}
		m.SetPath(PathKey{Src: src, Dst: dst, Loc: loc},
			PathParams{S: fromPN(p.S), C: fromPC(p.C), Cp: fromPC(p.Cp)})
	}
	for _, n := range pm.Notifies {
		id, err := parse(n.Region)
		if err != nil {
			return err
		}
		m.SetNotify(id, fromPN(n.Tn))
	}
	return nil
}
