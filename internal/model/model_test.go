package model

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/stats"
)

const (
	src = cloud.RegionID("aws:us-east-1")
	dst = cloud.RegionID("azure:eastus")
)

// fitted returns a model with hand-set parameters resembling a profiled
// AWS→Azure path executed at the source.
func fitted() *Model {
	m := New()
	m.SetLoc(src, LocParams{
		I: stats.N(0.008, 0.002),
		D: stats.N(0.25, 0.08),
		P: stats.N(0.15, 0.05),
	})
	m.SetLoc(dst, LocParams{
		I: stats.N(0.012, 0.004),
		D: stats.N(0.60, 0.20),
		P: stats.N(2.5, 1.4),
	})
	m.SetPath(PathKey{src, dst, src}, PathParams{
		S:  stats.N(0.30, 0.08),
		C:  ChunkTime{Mu: 0.12, Between: 0.02, Within: 0.02}, // seconds per 8 MB chunk
		Cp: ChunkTime{Mu: 0.13, Between: 0.022, Within: 0.025},
	})
	m.SetPath(PathKey{src, dst, dst}, PathParams{
		S:  stats.N(0.40, 0.15),
		C:  ChunkTime{Mu: 0.18, Between: 0.05, Within: 0.05},
		Cp: ChunkTime{Mu: 0.19, Between: 0.055, Within: 0.055},
	})
	return m
}

func TestChunks(t *testing.T) {
	m := New()
	cases := []struct {
		size int64
		want int64
	}{
		{0, 0}, {1, 1}, {DefaultChunk, 1}, {DefaultChunk + 1, 2}, {1 << 30, 128},
	}
	for _, c := range cases {
		if got := m.Chunks(c.size); got != c.want {
			t.Errorf("Chunks(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestSingleLocalOmitsStartup(t *testing.T) {
	m := fitted()
	local, err := m.ReplTime(src, dst, src, 1<<20, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := m.ReplTime(src, dst, src, 1<<20, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	// Local skips I+D (~0.26 s).
	diff := remote.Mean() - local.Mean()
	if diff < 0.2 || diff > 0.4 {
		t.Errorf("remote-local mean gap = %v, want ~0.26", diff)
	}
}

func TestSingleFunctionScalesWithSize(t *testing.T) {
	m := fitted()
	small, _ := m.ReplTime(src, dst, src, 8<<20, 1, true)
	big, _ := m.ReplTime(src, dst, src, 128<<20, 1, true)
	// 16x the chunks: transfer-dominated times should grow roughly 16x
	// minus the shared setup.
	if big.Mean() <= small.Mean()*4 {
		t.Errorf("scaling too weak: 8MB=%v 128MB=%v", small.Mean(), big.Mean())
	}
	// 1 GB single function ~ 128 chunks * 0.12 + 0.3 ≈ 15.7 s.
	gb, _ := m.ReplTime(src, dst, src, 1<<30, 1, true)
	if gb.Mean() < 10 || gb.Mean() > 25 {
		t.Errorf("1GB single mean = %v", gb.Mean())
	}
}

func TestParallelismReducesTime(t *testing.T) {
	m := fitted()
	prev := 1e18
	for _, n := range []int{1, 4, 16, 64} {
		d, err := m.ReplTime(src, dst, src, 1<<30, n, false)
		if err != nil {
			t.Fatal(err)
		}
		q := d.Quantile(0.9)
		if q >= prev {
			t.Errorf("n=%d p90=%v did not improve on %v", n, q, prev)
		}
		prev = q
	}
}

func TestDiminishingReturnsFromInvocationCost(t *testing.T) {
	// For a small object, huge parallelism hurts: I·n dominates.
	m := fitted()
	few, _ := m.ReplTime(src, dst, src, 8<<20, 2, false)
	many, _ := m.ReplTime(src, dst, src, 8<<20, 512, false)
	if many.Quantile(0.9) <= few.Quantile(0.9) {
		t.Errorf("512 functions for 8MB should be slower: few=%v many=%v",
			few.Quantile(0.9), many.Quantile(0.9))
	}
}

func TestParallelQuantileIsConservative(t *testing.T) {
	// sumDist quantile (sum of component quantiles) must be >= the
	// quantile of a proper convolution, i.e. an overestimate.
	m := fitted()
	d, _ := m.ReplTime(src, dst, src, 1<<30, 32, false)
	if d.Quantile(0.99) < d.Mean() {
		t.Error("p99 below the mean")
	}
	if d.Quantile(0.99) <= d.Quantile(0.5) {
		t.Error("quantiles must increase")
	}
}

func TestGumbelKicksInForLargeN(t *testing.T) {
	m := fitted()
	m.GumbelMinN = 64
	// Same inputs, n just below and at the Gumbel threshold: results must
	// be close (the approximation is validated in stats tests).
	below, _ := m.ReplTime(src, dst, src, 4<<30, 63, false)
	at, _ := m.ReplTime(src, dst, src, 4<<30, 64, false)
	if ratio := at.Quantile(0.9) / below.Quantile(0.9); ratio < 0.7 || ratio > 1.4 {
		t.Errorf("Gumbel/MC discontinuity: %v vs %v", at.Quantile(0.9), below.Quantile(0.9))
	}
}

func TestMonteCarloCaching(t *testing.T) {
	m := fitted()
	d1, _ := m.ReplTime(src, dst, src, 1<<30, 32, false)
	d2, _ := m.ReplTime(src, dst, src, 1<<30, 32, false)
	if d1.Quantile(0.9) != d2.Quantile(0.9) {
		t.Error("cached MC result should be identical")
	}
	m.mu.Lock()
	cached := len(m.mcCache)
	m.mu.Unlock()
	if cached != 1 {
		t.Errorf("cache has %d entries, want 1", cached)
	}
	// SetPath invalidates.
	pp, _ := m.Path(PathKey{src, dst, src})
	m.SetPath(PathKey{src, dst, src}, pp)
	m.mu.Lock()
	cached = len(m.mcCache)
	m.mu.Unlock()
	if cached != 0 {
		t.Error("SetPath should drop cached MC results")
	}
}

func TestInvalidatePath(t *testing.T) {
	m := fitted()
	m.ReplTime(src, dst, src, 1<<30, 32, false)
	m.InvalidatePath(src, dst)
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.mcCache) != 0 {
		t.Error("InvalidatePath left cache entries")
	}
}

func TestUnprofiledErrors(t *testing.T) {
	m := New()
	if _, err := m.ReplTime(src, dst, src, 1, 1, true); err == nil {
		t.Error("unprofiled region should error")
	}
	m.SetLoc(src, LocParams{})
	if _, err := m.ReplTime(src, dst, src, 1, 1, true); err == nil {
		t.Error("unprofiled path should error")
	}
	if _, err := m.ReplTime(src, dst, src, 1, 0, true); err == nil {
		t.Error("n=0 should error")
	}
}

func TestNotifyRoundTrip(t *testing.T) {
	m := New()
	want := stats.N(0.35, 0.1)
	m.SetNotify(src, want)
	if got := m.Notify(src); got != want {
		t.Errorf("Notify = %v", got)
	}
	if got := m.Notify(dst); got.Mu != 0 {
		t.Errorf("unprofiled notify = %v, want zero", got)
	}
}

func TestDestinationSideSlower(t *testing.T) {
	// With these parameters the Azure side is slower and more variable;
	// the model must preserve that ordering (basis of Fig. 20).
	m := fitted()
	atSrc, _ := m.ReplTime(src, dst, src, 128<<20, 8, false)
	atDst, _ := m.ReplTime(src, dst, dst, 128<<20, 8, false)
	if atSrc.Quantile(0.9) >= atDst.Quantile(0.9) {
		t.Errorf("src-side should win here: src=%v dst=%v", atSrc.Quantile(0.9), atDst.Quantile(0.9))
	}
}
