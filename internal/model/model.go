// Package model implements AReplica's distribution-aware performance model
// (§5.3). The model predicts the replication time of a candidate plan —
// how many replicator functions n, executing at which region loc — as a
// probability distribution, so the planner can reason about percentiles
// rather than means.
//
// Single replicator:
//
//	T_rep = T_func + T_transfer
//	T_func = 0                      (orchestrator-local)
//	       = I(loc) + D(loc)        (one remote replicator)
//	T_transfer = S(src,dst,loc) + C(src,dst,loc) · ceil(size/c)
//
// Parallel replicators:
//
//	T_func = I(loc)·n + D(loc) + P(loc)
//	T_transfer = max_{1..n} ( S + C'·ceil(size/(c·n)) )
//
// All parameters are Normal distributions fitted by the profiler. Sums of
// Normals stay Normal; the max over n instances is estimated by Monte
// Carlo for moderate n and by the Gumbel extreme-value approximation for
// large n, with Monte Carlo results cached per (path, n, chunks) — the
// paper's on-demand resampling.
package model

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/cloud"
	"repro/internal/simrand"
	"repro/internal/stats"
)

// DefaultChunk is the paper's empirically chosen 8 MB part size (§5.1).
const DefaultChunk = 8 << 20

// LocParams are the function-startup parameters of one execution region.
type LocParams struct {
	I stats.Normal // async invocation API latency, per call
	D stats.Normal // instance startup delay
	P stats.Normal // platform scheduler postponement on scale-out
}

// ChunkTime is the per-chunk replication time with its variance split
// into a *between-instance* component (a slow instance is slow for every
// chunk it handles: instance multiplier, peering path) and a
// *within-instance* component (per-transfer jitter). The split matters
// when extrapolating one instance's time over k chunks: the between part
// scales linearly with k while the within part averages out as sqrt(k).
// Treating the pooled sigma as fully correlated (a plain Normal scaled by
// k) overestimates high-variance paths severalfold.
type ChunkTime struct {
	Mu      float64 // mean seconds per chunk
	Between float64 // std of per-instance mean chunk times
	Within  float64 // std of chunk times within one instance
}

// OverK returns the distribution of the total time one instance needs for
// k chunks: N(k·mu, sqrt(k²·between² + k·within²)).
func (c ChunkTime) OverK(k float64) stats.Normal {
	return stats.N(k*c.Mu, math.Sqrt(k*k*c.Between*c.Between+k*c.Within*c.Within))
}

// Scale multiplies all components (used by the runtime logger's refresh).
func (c ChunkTime) Scale(f float64) ChunkTime {
	return ChunkTime{Mu: f * c.Mu, Between: f * c.Between, Within: f * c.Within}
}

// FitChunkTime estimates a ChunkTime from per-instance sample groups.
func FitChunkTime(groups [][]float64) ChunkTime {
	var all []float64
	var means []float64
	var withinSS float64
	var withinN int
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		all = append(all, g...)
		m := stats.Mean(g)
		means = append(means, m)
		for _, v := range g {
			withinSS += (v - m) * (v - m)
			withinN++
		}
	}
	if len(all) == 0 {
		panic("model: FitChunkTime with no samples")
	}
	ct := ChunkTime{Mu: stats.Mean(all)}
	if len(means) > 1 {
		ct.Between = stats.StdDev(means)
	}
	if withinN > len(means) {
		ct.Within = math.Sqrt(withinSS / float64(withinN-len(means)))
	}
	return ct
}

// PathParams are the transfer parameters of one (src,dst,loc) path.
//
// CpDown and CpUp split C' into its two stages — claim + range-GET +
// src→loc leg versus loc→dst leg + part upload + completion — so the
// model can predict the pipelined data plane, where a replicator
// overlaps part i+1's download with part i's upload and each
// steady-state part costs max(down, up) instead of down+up. Zero-valued
// stages (profiles fitted before the split existed) fall back to the
// serial Cp prediction.
type PathParams struct {
	S      stats.Normal // client setup overhead before the first byte moves
	C      ChunkTime    // per-chunk replication time, single function
	Cp     ChunkTime    // per-chunk time under pool scheduling (C' in the paper)
	CpDown ChunkTime    // download stage of C': claim + range-GET + src→loc leg
	CpUp   ChunkTime    // upload stage of C': loc→dst leg + upload-part + done
}

// PathKey identifies a replication path with its execution side.
type PathKey struct {
	Src, Dst, Loc cloud.RegionID
}

// Model stores fitted parameters and answers replication-time queries.
type Model struct {
	Chunk int64 // part size c

	// MCRounds is the Monte-Carlo sample count; GumbelMinN is the
	// parallelism at which the Gumbel approximation replaces Monte Carlo.
	MCRounds   int
	GumbelMinN int

	mu      sync.Mutex
	loc     map[cloud.RegionID]LocParams
	path    map[PathKey]PathParams
	notify  map[cloud.RegionID]stats.Normal
	mcCache map[mcKey]*stats.Empirical
}

type mcKey struct {
	path      PathKey
	n         int
	chunks    int64
	chunk     int64 // part size the prediction was evaluated at (0 = model default)
	pipelined bool
}

// New returns an empty model with the default chunk size.
func New() *Model {
	return &Model{
		Chunk:      DefaultChunk,
		MCRounds:   1500,
		GumbelMinN: 128,
		loc:        make(map[cloud.RegionID]LocParams),
		path:       make(map[PathKey]PathParams),
		notify:     make(map[cloud.RegionID]stats.Normal),
		mcCache:    make(map[mcKey]*stats.Empirical),
	}
}

// SetLoc installs the startup parameters of an execution region.
func (m *Model) SetLoc(loc cloud.RegionID, p LocParams) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.loc[loc] = p
}

// Loc returns the startup parameters of a region.
func (m *Model) Loc(loc cloud.RegionID) (LocParams, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.loc[loc]
	return p, ok
}

// SetPath installs the transfer parameters of a path and invalidates any
// cached Monte-Carlo distributions that used the old values.
func (m *Model) SetPath(k PathKey, p PathParams) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.path[k] = p
	for ck := range m.mcCache {
		if ck.path == k {
			delete(m.mcCache, ck)
		}
	}
}

// Path returns the transfer parameters of a path.
func (m *Model) Path(k PathKey) (PathParams, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.path[k]
	return p, ok
}

// SetNotify installs the notification-delay distribution T_n of a source
// region.
func (m *Model) SetNotify(src cloud.RegionID, d stats.Normal) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.notify[src] = d
}

// Notify returns T_n for a source region (zero Normal if unprofiled).
func (m *Model) Notify(src cloud.RegionID) stats.Normal {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.notify[src]
}

// Chunks returns ceil(size/chunk) for the model's part size.
func (m *Model) Chunks(size int64) int64 { return chunksOf(size, m.Chunk) }

func chunksOf(size, chunk int64) int64 {
	if size <= 0 || chunk <= 0 {
		return 0
	}
	return (size + chunk - 1) / chunk
}

// sumDist combines two independent positive components. Its Quantile is
// the sum of the components' quantiles — an upper bound, which the paper
// explicitly permits ("the model is allowed to overestimate").
type sumDist struct {
	a, b stats.Dist
}

func (s sumDist) Mean() float64 { return s.a.Mean() + s.b.Mean() }
func (s sumDist) Std() float64  { return math.Hypot(s.a.Std(), s.b.Std()) }
func (s sumDist) Quantile(p float64) float64 {
	return s.a.Quantile(p) + s.b.Quantile(p)
}

// Dist is the model's prediction: a distribution over replication seconds.
type Dist interface {
	Mean() float64
	Std() float64
	Quantile(p float64) float64
}

// Opts select the data-plane variant a prediction is evaluated for.
type Opts struct {
	// Chunk overrides the model's default part size (0 keeps m.Chunk).
	// Per-chunk times are scaled linearly with the part size — transfer
	// time dominates each chunk, so seconds/chunk ∝ bytes/chunk.
	Chunk int64
	// Pipelined predicts the double-buffered data plane: each
	// steady-state chunk costs max(CpDown, CpUp) instead of CpDown+CpUp,
	// with one non-overlapped stage paid once at the pipeline boundary.
	// Ignored for n == 1 and on profiles without the stage split.
	Pipelined bool
}

// ReplTime returns the predicted distribution of T_rep for replicating an
// object of size bytes with n parallel functions executing at loc. When
// local is true (n must be 1 and loc the source region) the orchestrator
// replicates inline and T_func is zero.
func (m *Model) ReplTime(src, dst, loc cloud.RegionID, size int64, n int, local bool) (Dist, error) {
	return m.ReplTimeOpts(src, dst, loc, size, n, local, Opts{})
}

// ReplTimeOpts is ReplTime for a specific data-plane configuration.
func (m *Model) ReplTimeOpts(src, dst, loc cloud.RegionID, size int64, n int, local bool, o Opts) (Dist, error) {
	if n < 1 {
		return nil, fmt.Errorf("model: parallelism %d < 1", n)
	}
	lp, ok := m.Loc(loc)
	if !ok {
		return nil, fmt.Errorf("model: region %s not profiled", loc)
	}
	pk := PathKey{Src: src, Dst: dst, Loc: loc}
	pp, ok := m.Path(pk)
	if !ok {
		return nil, fmt.Errorf("model: path %v not profiled", pk)
	}
	chunk := o.Chunk
	if chunk <= 0 {
		chunk = m.Chunk
	}
	f := float64(chunk) / float64(m.Chunk)
	chunks := chunksOf(size, chunk)
	if chunks == 0 {
		chunks = 1
	}

	if n == 1 {
		transfer := pp.S.Plus(pp.C.Scale(f).OverK(float64(chunks)))
		if local {
			return transfer, nil
		}
		return stats.SumNormals(lp.I, lp.D, transfer), nil
	}

	tfunc := stats.SumNormals(lp.I.Scale(float64(n)), lp.D, lp.P)
	perInst := (chunks + int64(n) - 1) / int64(n)
	ttransfer := m.maxTransfer(pk, pp, n, perInst, chunk, f, o.Pipelined)
	return sumDist{a: tfunc, b: ttransfer}, nil
}

// perInstTransfer is one instance's transfer-time distribution for
// perInst chunks: serial S + C'·k, or — pipelined with a profiled stage
// split — S plus the smaller stage once plus the dominant stage over all
// k chunks (the steady state overlaps the other stage entirely).
func perInstTransfer(pp PathParams, perInst int64, f float64, pipelined bool) stats.Normal {
	if pipelined && pp.CpDown.Mu > 0 && pp.CpUp.Mu > 0 {
		down, up := pp.CpDown.Scale(f), pp.CpUp.Scale(f)
		dominant, other := down, up
		if up.Mu > down.Mu {
			dominant, other = up, down
		}
		return stats.SumNormals(pp.S, other.OverK(1), dominant.OverK(float64(perInst)))
	}
	return pp.S.Plus(pp.Cp.Scale(f).OverK(float64(perInst)))
}

// maxTransfer returns the distribution of max over n instances of the
// per-instance transfer time, via cached Monte Carlo or the Gumbel
// approximation.
func (m *Model) maxTransfer(pk PathKey, pp PathParams, n int, perInst, chunk int64, f float64, pipelined bool) stats.Dist {
	base := perInstTransfer(pp, perInst, f, pipelined)
	if n >= m.GumbelMinN {
		return stats.MaxOfNormals(base, n)
	}
	key := mcKey{path: pk, n: n, chunks: perInst, chunk: chunk, pipelined: pipelined}
	m.mu.Lock()
	if e, ok := m.mcCache[key]; ok {
		m.mu.Unlock()
		return e
	}
	rounds := m.MCRounds
	m.mu.Unlock()

	rng := simrand.New("model-mc", string(pk.Src), string(pk.Dst), string(pk.Loc), fmt.Sprint(n, perInst, chunk, pipelined))
	e := stats.MonteCarloMax(rng, n, rounds, func(r *rand.Rand, i int) float64 {
		return base.Sample(r)
	})
	m.mu.Lock()
	m.mcCache[key] = e
	m.mu.Unlock()
	return e
}

// InvalidatePath drops cached Monte-Carlo results for every path touching
// the given source/destination pair (the logger calls this after refitting
// parameters).
func (m *Model) InvalidatePath(src, dst cloud.RegionID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for ck := range m.mcCache {
		if ck.path.Src == src && ck.path.Dst == dst {
			delete(m.mcCache, ck)
		}
	}
}
