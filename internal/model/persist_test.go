package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	m := fitted()
	var buf bytes.Buffer
	if err := m.Export(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New()
	if err := m2.Import(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Both models must answer identically.
	for _, n := range []int{1, 8, 32} {
		d1, err1 := m.ReplTime(src, dst, src, 1<<30, n, false)
		d2, err2 := m2.ReplTime(src, dst, src, 1<<30, n, false)
		if err1 != nil || err2 != nil {
			t.Fatalf("errs: %v %v", err1, err2)
		}
		if d1.Mean() != d2.Mean() || d1.Quantile(0.99) != d2.Quantile(0.99) {
			t.Fatalf("n=%d: %v/%v vs %v/%v", n, d1.Mean(), d1.Quantile(0.99), d2.Mean(), d2.Quantile(0.99))
		}
	}
	if m2.Notify(src) != m.Notify(src) {
		t.Fatal("notify lost")
	}
}

func TestExportIsStable(t *testing.T) {
	m := fitted()
	var a, b bytes.Buffer
	m.Export(&a)
	m.Export(&b)
	if a.String() != b.String() {
		t.Fatal("export output not deterministic")
	}
}

func TestImportRejectsBadInput(t *testing.T) {
	m := New()
	if err := m.Import(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := m.Import(strings.NewReader(`{"locs":[{"region":"mars:olympus"}]}`)); err == nil {
		t.Fatal("unknown region accepted")
	}
	if err := m.Import(strings.NewReader(`{"chunk_bytes": 1234}`)); err == nil {
		t.Fatal("mismatched chunk size accepted")
	}
	// Empty profile is a valid no-op.
	if err := m.Import(strings.NewReader(`{}`)); err != nil {
		t.Fatal(err)
	}
}

func TestImportReplacesAndInvalidates(t *testing.T) {
	m := fitted()
	// Warm the MC cache.
	m.ReplTime(src, dst, src, 1<<30, 32, false)

	// Build a profile with doubled C and import it.
	m2 := fitted()
	pp, _ := m2.Path(PathKey{src, dst, src})
	pp.C = pp.C.Scale(2)
	pp.Cp = pp.Cp.Scale(2)
	m2.SetPath(PathKey{src, dst, src}, pp)
	var buf bytes.Buffer
	m2.Export(&buf)
	if err := m.Import(&buf); err != nil {
		t.Fatal(err)
	}
	d, _ := m.ReplTime(src, dst, src, 1<<30, 32, false)
	dOrig, _ := fitted().ReplTime(src, dst, src, 1<<30, 32, false)
	if d.Mean() <= dOrig.Mean()*1.2 {
		t.Fatalf("import did not take effect: %v vs %v", d.Mean(), dOrig.Mean())
	}
}
