package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/cloud"
)

// Property: over all region pairs and execution providers, bandwidth is
// positive and bounded, setup time is positive, and the per-instance path
// factor is deterministic per (instance, exec, remote).
func TestLinkModelInvariants(t *testing.T) {
	n := New()
	all := cloud.AllRegions()
	f := func(ai, bi, ei uint8, inst uint16) bool {
		a := all[int(ai)%len(all)]
		b := all[int(bi)%len(all)]
		exec := cloud.Providers()[int(ei)%3]

		link := n.FuncLegMBps(a, b, exec)
		if link.Mu <= 0 || link.Mu > 500 || link.Sigma < 0 {
			return false
		}
		if vm := n.VMLegMBps(a, b); vm.Mu <= link.Mu {
			return false // VM NICs always beat one function
		}
		if s := n.SetupTime(a, b); s.Mu <= 0 {
			return false
		}
		id := string(rune('a'+inst%26)) + "-inst"
		f1 := PathInstanceFactor(id, exec, a.Provider)
		f2 := PathInstanceFactor(id, exec, a.Provider)
		if f1 != f2 || f1 <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: bandwidth never increases with distance within one provider
// and execution side (monotone decay), comparing same-provider pairs.
func TestBandwidthMonotoneInDistance(t *testing.T) {
	n := New()
	use1 := cloud.MustLookup("aws:us-east-1")
	targets := []cloud.Region{
		cloud.MustLookup("aws:us-east-2"),
		cloud.MustLookup("aws:ca-central-1"),
		cloud.MustLookup("aws:eu-west-1"),
		cloud.MustLookup("aws:ap-northeast-1"),
	}
	prevBW := 1e18
	prevD := -1.0
	for _, tgt := range targets {
		d := cloud.DistanceKm(use1, tgt)
		bw := n.FuncLegMBps(use1, tgt, cloud.AWS).Mean()
		if d < prevD {
			t.Fatalf("targets not distance-ordered: %v", tgt)
		}
		if bw > prevBW {
			t.Fatalf("bandwidth rose with distance at %v: %v > %v", tgt, bw, prevBW)
		}
		prevBW, prevD = bw, d
	}
}

// Property: ConfigScale is non-decreasing in memory and capped at the
// sweet-spot value.
func TestConfigScaleMonotone(t *testing.T) {
	f := func(m1, m2 uint16, pi uint8) bool {
		p := cloud.Providers()[int(pi)%3]
		lo, hi := int(m1)%8192+64, int(m2)%8192+64
		if lo > hi {
			lo, hi = hi, lo
		}
		a, b := ConfigScale(p, lo, 0), ConfigScale(p, hi, 0)
		return a <= b+1e-12 && b <= 1.0+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
