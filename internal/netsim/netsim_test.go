package netsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/simrand"
)

func region(id string) cloud.Region { return cloud.MustLookup(cloud.RegionID(id)) }

func TestBaseBandwidthDecaysWithDistance(t *testing.T) {
	n := New()
	use1 := region("aws:us-east-1")
	near := region("aws:ca-central-1")
	far := region("aws:ap-northeast-1")
	bwNear := n.FuncLegMBps(use1, near, cloud.AWS).Mean()
	bwFar := n.FuncLegMBps(use1, far, cloud.AWS).Mean()
	if bwNear <= bwFar {
		t.Errorf("near link %v MBps should beat far link %v MBps", bwNear, bwFar)
	}
	// Paper: a few hundred Mbps per function, i.e. tens of MiB/s cross-region.
	if bwFar < 8 || bwNear > 250 {
		t.Errorf("bandwidths out of plausible range: near=%v far=%v", bwNear, bwFar)
	}
}

func TestIntraRegionIsFastest(t *testing.T) {
	n := New()
	use1 := region("aws:us-east-1")
	intra := n.FuncLegMBps(use1, use1, cloud.AWS).Mean()
	for _, r := range cloud.AllRegions() {
		if r.ID() == use1.ID() {
			continue
		}
		if cross := n.FuncLegMBps(use1, r, cloud.AWS).Mean(); cross >= intra {
			t.Errorf("cross link to %v (%v) >= intra (%v)", r, cross, intra)
		}
	}
}

func TestExecutionSideAsymmetry(t *testing.T) {
	n := New()
	use1 := region("aws:us-east-1")
	azEast := region("azure:eastus")
	onAWS := n.FuncLegMBps(use1, azEast, cloud.AWS)
	onAzure := n.FuncLegMBps(use1, azEast, cloud.Azure)
	if onAWS.Mean() <= onAzure.Mean() {
		t.Errorf("AWS-side execution should be faster: aws=%v azure=%v", onAWS.Mean(), onAzure.Mean())
	}
	// Azure execution is also more variable (relative sigma).
	if onAWS.Sigma/onAWS.Mu >= onAzure.Sigma/onAzure.Mu {
		t.Error("Azure-side execution should have higher relative variance")
	}
}

func TestCrossCloudPenalty(t *testing.T) {
	n := New()
	use1 := region("aws:us-east-1")
	use2 := region("aws:us-east-2")
	azEast := region("azure:eastus")
	sameCloud := n.FuncLegMBps(use1, use2, cloud.AWS).Mean()
	crossCloud := n.FuncLegMBps(use1, azEast, cloud.AWS).Mean()
	// azure:eastus is geographically closer to us-east-1 than us-east-2 is,
	// so any deficit must come from the cross-cloud penalty.
	if crossCloud >= sameCloud {
		t.Errorf("cross-cloud leg (%v) should be slower than same-cloud (%v)", crossCloud, sameCloud)
	}
}

func TestVMFasterThanFunction(t *testing.T) {
	n := New()
	a, b := region("aws:us-east-1"), region("aws:eu-west-1")
	if n.VMLegMBps(a, b).Mean() <= n.FuncLegMBps(a, b, cloud.AWS).Mean() {
		t.Error("VM NIC should outrun a single function instance")
	}
}

func TestInstanceMultiplierSpread(t *testing.T) {
	n := New()
	rng := simrand.New("test", "mult")
	for _, p := range cloud.Providers() {
		dist := n.InstanceMultiplier(p)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 2000; i++ {
			m := dist.Sample(rng)
			if m <= 0 {
				t.Fatalf("non-positive multiplier on %v", p)
			}
			lo, hi = math.Min(lo, m), math.Max(hi, m)
		}
		if hi/lo < 1.5 {
			t.Errorf("%v instance spread %.2fx, want noticeable variability", p, hi/lo)
		}
	}
	// Azure shows the widest spread (paper: its links are least stable).
	if DefaultTraits(cloud.Azure).InstanceSigmaLog <= DefaultTraits(cloud.AWS).InstanceSigmaLog {
		t.Error("Azure should have larger instance sigma than AWS")
	}
}

func TestConfigScaleSweetSpot(t *testing.T) {
	// Below the sweet spot bandwidth scales with memory; beyond it, flat.
	half := ConfigScale(cloud.AWS, 512, 0)
	full := ConfigScale(cloud.AWS, 1024, 0)
	beyond := ConfigScale(cloud.AWS, 8192, 0)
	if !(half < full) {
		t.Errorf("512MB (%v) should be slower than 1024MB (%v)", half, full)
	}
	if full != beyond {
		t.Errorf("beyond sweet spot should be flat: %v vs %v", full, beyond)
	}
	if full != 1.0 {
		t.Errorf("default config scale should be 1.0, got %v", full)
	}
	// GCP: second vCPU helps a little, then saturates.
	one := ConfigScale(cloud.GCP, 1024, 1)
	two := ConfigScale(cloud.GCP, 1024, 2)
	four := ConfigScale(cloud.GCP, 1024, 4)
	if !(two > one) || four > 1.16*one {
		t.Errorf("GCP cpu scaling: 1cpu=%v 2cpu=%v 4cpu=%v", one, two, four)
	}
	// Zero memory means the platform default.
	if got := ConfigScale(cloud.Azure, 0, 0); got != 1.0 {
		t.Errorf("default-memory scale = %v", got)
	}
}

func TestSetupTimeGrowsWithRTT(t *testing.T) {
	n := New()
	use1 := region("aws:us-east-1")
	near := region("aws:us-east-2")
	far := region("aws:ap-northeast-1")
	if n.SetupTime(use1, near).Mean() >= n.SetupTime(use1, far).Mean() {
		t.Error("setup overhead should grow with RTT")
	}
	if s := n.SetupTime(use1, near).Mean(); s < 0.1 || s > 2 {
		t.Errorf("near setup time %v s out of range", s)
	}
}

func TestTransferTime(t *testing.T) {
	// 100 MiB at 50 MiB/s = 2 s.
	if got := TransferTime(100*MiB, 50); got != 2*time.Second {
		t.Errorf("TransferTime = %v, want 2s", got)
	}
	if got := TransferTime(0, 50); got != 0 {
		t.Errorf("zero bytes should take no time, got %v", got)
	}
	// Guard against division blow-ups on absurdly slow links.
	if got := TransferTime(MiB, 0); got <= 0 || got > 2*time.Minute {
		t.Errorf("clamped slow link transfer = %v", got)
	}
}

func TestNearLinearAggregateScaling(t *testing.T) {
	// The model has no shared-bottleneck term, so aggregate bandwidth over
	// k instances is exactly k times the per-instance mean — the paper's
	// Fig. 7 near-linearity. Verify by sampling.
	n := New()
	link := n.FuncLegMBps(region("aws:us-east-1"), region("gcp:us-east1"), cloud.AWS)
	rng := simrand.New("agg")
	for _, k := range []int{1, 8, 64} {
		var agg float64
		const rounds = 400
		for r := 0; r < rounds; r++ {
			for i := 0; i < k; i++ {
				agg += link.Sample(rng)
			}
		}
		got := agg / rounds
		want := float64(k) * link.Mean()
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("aggregate over %d instances = %v, want ~%v", k, got, want)
		}
	}
}
