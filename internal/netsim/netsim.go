// Package netsim models wide-area bandwidth between cloud regions as seen
// from serverless functions and VMs. It reproduces the three phenomena the
// paper measures in §3:
//
//   - Opportunity #1/#2: each function instance gets a few hundred Mbps and
//     aggregate bandwidth scales near-linearly with instance count (Figs. 6-7).
//   - Challenge #1: performance is asymmetric — it depends not only on the
//     (source, destination) pair but also on which platform executes the
//     transfer (Fig. 8).
//   - Challenge #2: effective bandwidth varies between instances of the same
//     configuration with no predictable pattern (Fig. 9).
//
// Bandwidth values are in MiB/s. A transfer leg's throughput is
//
//	base(from→to) × execFactor(platform) × quirk(exec, remote) ×
//	configScale(mem, cpu) × instanceMultiplier × temporalJitter
//
// where the instance multiplier is a per-instance lognormal draw that
// persists for the instance's lifetime, and temporal jitter is drawn per
// transfer.
package netsim

import (
	"math"
	"time"

	"repro/internal/cloud"
	"repro/internal/simclock"
	"repro/internal/simrand"
	"repro/internal/stats"
)

// MiB is one mebibyte in bytes.
const MiB = 1 << 20

// Traits captures how a platform's serverless runtime behaves as a network
// endpoint.
type Traits struct {
	// ExecFactor scales link bandwidth when the transfer runs on this
	// platform's functions (AWS Lambda's network path is the fastest and
	// most stable of the three, per Fig. 8).
	ExecFactor float64
	// TemporalSigma is the per-transfer jitter (fraction of the mean).
	TemporalSigma float64
	// InstanceSigmaLog is the sigma of the per-instance lognormal
	// multiplier; larger values yield the >2x inter-instance spread of
	// Fig. 9.
	InstanceSigmaLog float64
	// SweetMemMB is the memory size beyond which bandwidth stops scaling
	// (Fig. 6's sweet spot).
	SweetMemMB int
	// DefaultMemMB is the configuration the paper's evaluation uses.
	DefaultMemMB int
}

// DefaultTraits returns the calibrated traits of a platform.
func DefaultTraits(p cloud.Provider) Traits {
	switch p {
	case cloud.AWS:
		return Traits{ExecFactor: 1.0, TemporalSigma: 0.08, InstanceSigmaLog: 0.15, SweetMemMB: 1024, DefaultMemMB: 1024}
	case cloud.Azure:
		return Traits{ExecFactor: 0.78, TemporalSigma: 0.22, InstanceSigmaLog: 0.35, SweetMemMB: 2048, DefaultMemMB: 2048}
	case cloud.GCP:
		return Traits{ExecFactor: 0.85, TemporalSigma: 0.18, InstanceSigmaLog: 0.30, SweetMemMB: 1024, DefaultMemMB: 1024}
	}
	return Traits{ExecFactor: 1, TemporalSigma: 0.1, InstanceSigmaLog: 0.2, SweetMemMB: 1024, DefaultMemMB: 1024}
}

// Net is the link bank. The zero value is not usable; create one with New.
type Net struct {
	// PeakMBps is the per-instance bandwidth of a zero-distance link.
	PeakMBps float64
	// IntraRegionMBps is the bandwidth between a function and object
	// storage in its own region.
	IntraRegionMBps float64
	// HalfDistanceKm controls how bandwidth decays with distance: at this
	// distance the base bandwidth halves.
	HalfDistanceKm float64
	// CrossCloudFactor penalizes legs that traverse two providers.
	CrossCloudFactor float64
	// VMFactor is how much faster a VM NIC is than one function instance.
	VMFactor float64
}

// New returns a Net with the calibrated defaults.
func New() *Net {
	return &Net{
		PeakMBps:         150,
		IntraRegionMBps:  200,
		HalfDistanceKm:   2500,
		CrossCloudFactor: 0.82,
		VMFactor:         8,
	}
}

// quirk returns platform-pair asymmetries beyond the generic cross-cloud
// penalty: measured oddities like GCP functions being slow toward Azure
// endpoints (Fig. 8's per-platform spreads).
func quirk(exec cloud.Provider, remote cloud.Provider) float64 {
	switch {
	case exec == cloud.GCP && remote == cloud.Azure:
		return 0.70
	case exec == cloud.Azure && remote == cloud.GCP:
		return 0.75
	case exec == cloud.Azure && remote == cloud.AWS:
		return 0.92
	default:
		return 1.0
	}
}

// baseMBps returns the distance-decayed base bandwidth of a leg.
func (n *Net) baseMBps(from, to cloud.Region) float64 {
	if from.ID() == to.ID() {
		return n.IntraRegionMBps
	}
	d := cloud.DistanceKm(from, to)
	bw := n.PeakMBps / (1 + d/n.HalfDistanceKm)
	if from.Provider != to.Provider {
		bw *= n.CrossCloudFactor
	}
	return math.Max(bw, 8)
}

// FuncLegMBps returns the throughput distribution of one transfer leg
// (from→to) executed by a function on platform exec, for an instance with
// multiplier 1 at the default configuration. The caller multiplies in the
// instance multiplier and configuration scale.
func (n *Net) FuncLegMBps(from, to cloud.Region, exec cloud.Provider) stats.Normal {
	tr := DefaultTraits(exec)
	remote := from.Provider
	if remote == exec {
		remote = to.Provider
	}
	mean := n.baseMBps(from, to) * tr.ExecFactor * quirk(exec, remote)
	return stats.N(mean, mean*tr.TemporalSigma)
}

// VMLegMBps returns the throughput distribution of a VM-to-VM or VM-to-
// storage leg (Skyplane's data plane).
func (n *Net) VMLegMBps(from, to cloud.Region) stats.Normal {
	mean := n.baseMBps(from, to) * n.VMFactor
	return stats.N(mean, mean*0.10)
}

// InstanceMultiplier returns the per-instance lognormal bandwidth
// multiplier distribution for functions on platform p. The draw is made
// once per instance and persists for its lifetime.
func (n *Net) InstanceMultiplier(p cloud.Provider) stats.LogNormal {
	return stats.LogNormalFromMedian(1.0, DefaultTraits(p).InstanceSigmaLog)
}

// PathInstanceFactor returns a persistent per-instance bandwidth factor
// for legs toward a remote provider. Cross-cloud legs traverse diverse
// peering paths, so which path an instance's flows land on adds a second
// source of instance-to-instance spread — the >2x differences of Fig. 9
// were measured on the AWS→Azure path. The factor is deterministic per
// (instance, remote) and close to 1 within one cloud.
func PathInstanceFactor(instanceID string, exec, remote cloud.Provider) float64 {
	sigma := 0.05
	if exec != remote {
		sigma = 0.25
	}
	rng := simrand.New("path-inst", instanceID, string(exec), string(remote))
	return stats.LogNormalFromMedian(1, sigma).Sample(rng)
}

// ConfigScale returns the bandwidth factor of a function configured with
// memMB of memory and vcpu virtual CPUs, relative to the platform's
// default configuration. Bandwidth scales with memory up to the platform's
// sweet spot and is flat beyond it (Fig. 6); on GCP a second vCPU helps
// uploads slightly.
func ConfigScale(p cloud.Provider, memMB int, vcpu float64) float64 {
	tr := DefaultTraits(p)
	if memMB <= 0 {
		memMB = tr.DefaultMemMB
	}
	scale := func(mem int) float64 {
		return math.Min(float64(mem), float64(tr.SweetMemMB)) / float64(tr.SweetMemMB)
	}
	s := scale(memMB) / scale(tr.DefaultMemMB)
	if p == cloud.GCP && vcpu > 1 {
		s *= math.Min(1.15, 1+0.15*(vcpu-1))
	}
	return s
}

// SetupTime returns the distribution of the client-ready overhead S of the
// paper's model: the time for a function's cloud SDK clients to become
// ready to move data on the (from→to) path. It grows with path RTT
// (connection handshakes) and is noisier on cross-cloud paths.
func (n *Net) SetupTime(from, to cloud.Region) stats.Normal {
	rtt := cloud.RTT(from, to)
	mean := 0.20 + 6*rtt
	sigma := 0.05 + 2*rtt
	if from.Provider != to.Provider {
		mean += 0.08
		sigma += 0.02
	}
	return stats.N(mean, sigma)
}

// TransferTime converts bytes at mbps (MiB/s) into a duration.
func TransferTime(bytes int64, mbps float64) time.Duration {
	if mbps <= 0.01 {
		mbps = 0.01
	}
	return simclock.Seconds(float64(bytes) / (mbps * MiB))
}
