// Package fleetobs is the fleet observability layer: per-rule SLOs
// evaluated as multi-window burn rates on the virtual clock, structured
// alert events appended to a deterministic JSONL log, and a per-rule
// health table. It consumes the engine's replication-lag watermarks and
// the dimensional telemetry families, and is the substrate the
// fleet-scale control plane (ROADMAP item 1) will steer by.
package fleetobs

import (
	"encoding/json"
	"io"
	"sync"
)

// Severity levels and evaluation states, ordered ok < warn < page.
const (
	StateOK   = "ok"
	StateWarn = "warn"
	StatePage = "page"
)

// Event is one structured observability event. AtSeconds is virtual time
// since the emitting monitor's epoch, so same-seed runs produce
// byte-identical logs.
type Event struct {
	AtSeconds float64 `json:"at_s"`
	Scope     string  `json:"scope,omitempty"` // e.g. bench scenario
	Rule      string  `json:"rule"`
	Dest      string  `json:"dest,omitempty"`
	Kind      string  `json:"kind"`     // lag-burn | dlq | divergence
	Severity  string  `json:"severity"` // info | warn | page
	State     string  `json:"state"`    // state entered by this transition
	BurnShort float64 `json:"burn_short,omitempty"`
	BurnLong  float64 `json:"burn_long,omitempty"`
	Detail    string  `json:"detail,omitempty"`
	// Trace links the alert to a retained trace: the exemplar from the
	// highest occupied lag-histogram bucket at transition time, so a
	// paging burn alert resolves directly to a kept span tree.
	Trace string `json:"trace,omitempty"`
}

// EventLog is an append-only alert sink shared by one or more monitors.
// A nil *EventLog drops appends.
type EventLog struct {
	mu     sync.Mutex
	scope  string
	events []Event
}

// NewEventLog returns an empty log.
func NewEventLog() *EventLog { return &EventLog{} }

// SetScope stamps every subsequently appended event that has no scope of
// its own (bench runs tag events with their scenario this way).
func (l *EventLog) SetScope(scope string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.scope = scope
	l.mu.Unlock()
}

// Append records one event.
func (l *EventLog) Append(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if ev.Scope == "" {
		ev.Scope = l.scope
	}
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

// Events returns a copy of the recorded events in append order.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Len returns the number of recorded events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// CountSeverity returns how many events carry the given severity.
func (l *EventLog) CountSeverity(sev string) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.events {
		if ev.Severity == sev {
			n++
		}
	}
	return n
}

// WriteJSONL writes the log as one compact JSON object per line, in
// append order — deterministic for a deterministic run (struct field
// order fixes key order; virtual timestamps fix values).
func (l *EventLog) WriteJSONL(w io.Writer) error {
	for _, ev := range l.Events() {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}
