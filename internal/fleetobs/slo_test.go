package fleetobs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/objstore"
	"repro/internal/telemetry"
)

// fixedClock is a hand-advanced stand-in for the virtual clock.
type fixedClock struct{ t time.Time }

func (c *fixedClock) now() time.Time               { return c.t }
func (c *fixedClock) advance(d time.Duration)      { c.t = c.t.Add(d) }
func at(base time.Time, d time.Duration) time.Time { return base.Add(d) }

func newHarness(slo SLO) (*fixedClock, *engine.Tracker, *Monitor, *EventLog) {
	clk := &fixedClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	tr := engine.NewTracker()
	log := NewEventLog()
	mon := NewMonitor(MonitorConfig{
		Rule:    "aws:us-east-1/src->azure:eastus/dst",
		Dest:    "azure:eastus",
		Now:     clk.now,
		SLO:     slo,
		Log:     log,
		Tracker: tr,
		LagHist: telemetry.NewHistogram(nil),
	})
	return clk, tr, mon, log
}

func put(tr *engine.Tracker, key string, seq uint64, t time.Time) {
	tr.OnSource(objstore.Event{Type: objstore.EventPut, Key: key, Seq: seq, Size: 1, Time: t})
}

// TestBurnRateOverduePending is the fault-window case: events arrive and
// nothing resolves. Once the pending events outlive the lag target, both
// windows burn and the monitor pages; after resolution it recovers.
func TestBurnRateOverduePending(t *testing.T) {
	slo := SLO{LagTarget: 5 * time.Second, Objective: 0.99, ShortWindow: time.Minute, LongWindow: 5 * time.Minute}
	clk, tr, mon, log := newHarness(slo)
	base := clk.t

	put(tr, "a", 1, base)
	put(tr, "b", 2, base)
	mon.Poll() // fresh pending, not yet overdue
	if log.Len() != 0 {
		t.Fatalf("alert before target exceeded: %+v", log.Events())
	}

	clk.advance(30 * time.Second) // both pending events now 30s old, target 5s
	mon.Poll()
	if got := log.Len(); got != 1 {
		t.Fatalf("events after overdue poll = %d, want 1 (page)", got)
	}
	ev := log.Events()[0]
	if ev.Kind != "lag-burn" || ev.State != StatePage || ev.Severity != StatePage {
		t.Fatalf("unexpected event %+v", ev)
	}
	if ev.BurnShort < slo.PageBurn || ev.BurnLong < slo.PageBurn {
		t.Fatalf("burns %.1f/%.1f below page threshold", ev.BurnShort, ev.BurnLong)
	}
	if mon.AlertCount() != 1 {
		t.Fatalf("AlertCount = %d, want 1", mon.AlertCount())
	}
	if h := mon.Health(); h.State != StatePage || h.Backlog != 2 || h.OldestAgeS != 30 {
		t.Fatalf("health during fault = %+v", h)
	}

	// Repeated polls in the same state must not re-alert.
	clk.advance(time.Second)
	mon.Poll()
	if log.Len() != 1 {
		t.Fatalf("duplicate alert on unchanged state: %+v", log.Events())
	}

	// Resolution drains the backlog; the bad records age out of both
	// windows and the monitor emits a recovery event.
	tr.Resolve("a", 1, clk.t)
	tr.Resolve("b", 2, clk.t)
	clk.advance(10 * time.Minute)
	mon.Poll()
	evs := log.Events()
	last := evs[len(evs)-1]
	if last.State != StateOK || last.Severity != "info" {
		t.Fatalf("expected recovery event, got %+v", last)
	}
	if mon.AlertCount() != 1 {
		t.Fatalf("recovery should not count as an alert: %d", mon.AlertCount())
	}
}

// TestBurnRateResolvedBad covers slow-but-completing replication: enough
// resolved records over target within both windows trips the warn and
// page thresholds via the resolved path, no overdue pending needed.
func TestBurnRateResolvedBad(t *testing.T) {
	slo := SLO{LagTarget: time.Second, Objective: 0.9, ShortWindow: time.Minute, LongWindow: 2 * time.Minute,
		WarnBurn: 2, PageBurn: 8}
	clk, tr, mon, _ := newHarness(slo)
	base := clk.t

	// 10 events, all resolving in 5s (> 1s target): bad fraction 1.0,
	// budget 0.1 → burn 10 in both windows → page.
	for i := 0; i < 10; i++ {
		put(tr, key(i), uint64(i+1), at(base, time.Duration(i)*time.Second))
	}
	clk.advance(15 * time.Second)
	for i := 0; i < 10; i++ {
		tr.Resolve(key(i), uint64(i+1), at(base, time.Duration(i+5)*time.Second).Add(5*time.Second))
	}
	mon.Poll()
	if h := mon.Health(); h.State != StatePage {
		t.Fatalf("state = %s, want page (burns %.1f/%.1f)", h.State, h.BurnShort, h.BurnLong)
	}
}

func key(i int) string { return string(rune('a' + i)) }

func TestDLQAndDivergenceSignals(t *testing.T) {
	clk, tr, _, _ := newHarness(SLO{})
	_ = tr
	depth := 0
	var violations int64
	log := NewEventLog()
	mon := NewMonitor(MonitorConfig{
		Rule:       "r",
		Now:        clk.now,
		Log:        log,
		Tracker:    engine.NewTracker(),
		LagHist:    telemetry.NewHistogram(nil),
		DLQDepth:   func() int { return depth },
		Divergence: func() int64 { return violations },
	})
	mon.Poll()
	if log.Len() != 0 {
		t.Fatalf("clean poll emitted events: %+v", log.Events())
	}
	depth = 2
	mon.Poll()
	if log.Len() != 1 || log.Events()[0].Kind != "dlq" || log.Events()[0].State != StatePage {
		t.Fatalf("want one dlq page, got %+v", log.Events())
	}
	depth = 0
	violations = 1
	mon.Poll()
	evs := log.Events()
	if len(evs) != 3 {
		t.Fatalf("want dlq recovery + divergence page, got %+v", evs)
	}
	kinds := map[string]bool{}
	for _, ev := range evs[1:] {
		kinds[ev.Kind] = true
	}
	if !kinds["dlq"] || !kinds["divergence"] {
		t.Fatalf("missing signal kinds in %+v", evs[1:])
	}
	// Unchanged divergence count must not re-fire.
	mon.Poll()
	if log.Len() != 3 {
		t.Fatalf("divergence re-fired without growth: %+v", log.Events())
	}
	if mon.AlertCount() != 2 {
		t.Fatalf("AlertCount = %d, want 2 (dlq page + divergence)", mon.AlertCount())
	}
}

// TestEventLogJSONLDeterministic replays the same schedule twice and
// requires byte-identical JSONL.
func TestEventLogJSONLDeterministic(t *testing.T) {
	run := func() string {
		slo := SLO{LagTarget: 2 * time.Second}
		clk, tr, mon, log := newHarness(slo)
		base := clk.t
		put(tr, "x", 1, base)
		clk.advance(10 * time.Second)
		mon.Poll()
		tr.Resolve("x", 1, clk.t)
		clk.advance(10 * time.Minute)
		mon.Poll()
		var buf bytes.Buffer
		if err := log.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("JSONL not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `"kind":"lag-burn"`) || !strings.Contains(a, `"state":"page"`) {
		t.Fatalf("unexpected JSONL content:\n%s", a)
	}
	for _, line := range strings.Split(strings.TrimSpace(a), "\n") {
		if !strings.HasPrefix(line, `{"at_s":`) {
			t.Fatalf("line does not lead with at_s: %s", line)
		}
	}
}

func TestWriteHealthTable(t *testing.T) {
	rows := []Health{
		{Rule: "b->c", Dest: "gcp:eu-west1", State: "ok", LagP50S: 0.5, LagP99S: 1.25, Alerts: 0},
		{Rule: "a->b", Dest: "azure:eastus", State: "page", LagP50S: 2, LagP99S: 31.5, Backlog: 4, OldestAgeS: 62.1, DLQ: 1, BurnShort: 100, BurnLong: 42, Alerts: 3},
	}
	var buf bytes.Buffer
	if err := WriteHealthTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], "a->b") || !strings.HasPrefix(lines[2], "b->c") {
		t.Fatalf("rows not sorted by rule:\n%s", out)
	}
	if !strings.Contains(lines[1], "page") || !strings.Contains(lines[1], "31.500s") {
		t.Fatalf("row content missing:\n%s", out)
	}
}
