package fleetobs

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// SLO declares one rule's objectives. The lag objective is RTC-style:
// a fraction Objective of source events must be durable on the replica
// within LagTarget. Burn rate is the error-budget spend speed (1.0 =
// exactly on budget); alerts fire only when both the short and the long
// window burn, so a single slow object cannot page while a sustained
// fault still pages within ShortWindow.
type SLO struct {
	LagTarget   time.Duration // lag objective per event (default 30s)
	Objective   float64       // in-target fraction, in (0,1) (default 0.99)
	ShortWindow time.Duration // fast burn window (default 1m)
	LongWindow  time.Duration // slow burn window (default 5m)
	WarnBurn    float64       // warn when both windows burn >= this (default 2)
	PageBurn    float64       // page when both windows burn >= this (default 10)
	MaxDLQ      int           // page when DLQ depth exceeds this (default 0)
}

// WithDefaults fills zero fields with the defaults above.
func (s SLO) WithDefaults() SLO {
	if s.LagTarget <= 0 {
		s.LagTarget = 30 * time.Second
	}
	if s.Objective <= 0 || s.Objective >= 1 {
		s.Objective = 0.99
	}
	if s.ShortWindow <= 0 {
		s.ShortWindow = time.Minute
	}
	if s.LongWindow <= 0 {
		s.LongWindow = 5 * time.Minute
	}
	if s.WarnBurn <= 0 {
		s.WarnBurn = 2
	}
	if s.PageBurn <= 0 {
		s.PageBurn = 10
	}
	return s
}

// MonitorConfig wires one rule's monitor to its signal sources. Tracker
// and Now are required; the rest are optional.
type MonitorConfig struct {
	Rule string
	Dest string
	Now  func() time.Time // the virtual clock (simclock.Clock.Now)
	SLO  SLO
	Log  *EventLog

	Tracker    *engine.Tracker      // lag/backlog/oldest-age source
	LagHist    *telemetry.Histogram // per-destination lag percentiles
	DLQDepth   func() int           // current dead-letter depth
	Divergence func() int64         // cumulative divergence-SLO violations
}

// Health is one rule's current health row.
type Health struct {
	Rule       string  `json:"rule"`
	Dest       string  `json:"dest"`
	State      string  `json:"state"` // worst of the rule's signal states
	LagP50S    float64 `json:"lag_p50_s"`
	LagP99S    float64 `json:"lag_p99_s"`
	Backlog    int     `json:"backlog"`
	OldestAgeS float64 `json:"oldest_age_s"`
	DLQ        int     `json:"dlq"`
	BurnShort  float64 `json:"burn_short"`
	BurnLong   float64 `json:"burn_long"`
	Alerts     int     `json:"alerts"`
}

// Monitor evaluates one rule's SLOs. Like telemetry.Sampler it never
// self-schedules on the virtual clock: the driver calls Poll at its
// natural loop points (the core wires Poll into the engine's OnTaskDone
// hook, so every completed task re-evaluates the rule), and each Poll
// also refreshes the tracker's oldest-age watermark gauge.
type Monitor struct {
	cfg   MonitorConfig
	epoch time.Time

	mu             sync.Mutex
	lagState       string
	dlqState       string
	lastDivergence int64
	alerts         int
}

// NewMonitor returns a monitor with cfg's SLO defaults applied. The
// epoch for event timestamps is the current virtual instant.
func NewMonitor(cfg MonitorConfig) *Monitor {
	cfg.SLO = cfg.SLO.WithDefaults()
	return &Monitor{
		cfg:      cfg,
		epoch:    cfg.Now(),
		lagState: StateOK,
		dlqState: StateOK,
	}
}

// SLO returns the effective (defaulted) objectives.
func (m *Monitor) SLO() SLO { return m.cfg.SLO }

// AlertCount returns how many warn/page transitions fired so far.
func (m *Monitor) AlertCount() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alerts
}

// burns computes the short- and long-window burn rates at now. Pending
// events already older than the lag target count as bad in both windows:
// during a fault nothing resolves, and a window over resolved records
// alone would read a clean 100%.
func (m *Monitor) burns(now time.Time) (short, long float64) {
	slo := m.cfg.SLO
	overdue := m.cfg.Tracker.OverdueCount(now, slo.LagTarget)
	budget := 1 - slo.Objective
	one := func(win time.Duration) float64 {
		cut := now.Add(-win)
		if cut.Before(m.epoch) {
			cut = m.epoch
		}
		total, bad := m.cfg.Tracker.ResolvedStats(cut, slo.LagTarget)
		total += overdue
		bad += overdue
		if total == 0 {
			return 0
		}
		return float64(bad) / float64(total) / budget
	}
	return one(slo.ShortWindow), one(slo.LongWindow)
}

func burnState(short, long float64, slo SLO) string {
	switch {
	case short >= slo.PageBurn && long >= slo.PageBurn:
		return StatePage
	case short >= slo.WarnBurn && long >= slo.WarnBurn:
		return StateWarn
	default:
		return StateOK
	}
}

// severityFor maps a state transition to an event severity: entering ok
// is informational (recovery), anything else carries its state.
func severityFor(state string) string {
	if state == StateOK {
		return "info"
	}
	return state
}

// Poll re-evaluates every declared objective at the current virtual
// instant, refreshes the oldest-age watermark, and appends an event to
// the log for each state transition.
func (m *Monitor) Poll() {
	if m == nil {
		return
	}
	now := m.cfg.Now()
	m.cfg.Tracker.SampleWatermarks(now)
	short, long := m.burns(now)
	slo := m.cfg.SLO

	m.mu.Lock()
	defer m.mu.Unlock()
	at := simclock.ToSeconds(now.Sub(m.epoch))

	if st := burnState(short, long, slo); st != m.lagState {
		m.lagState = st
		var trace string
		if st != StateOK {
			m.alerts++
			// Attach the worst retained lag exemplar so the alert links to
			// a concrete kept trace of the badness being paged on.
			if ex := m.cfg.LagHist.WorstExemplar(); ex != nil {
				trace = ex.TraceID
			}
		}
		m.cfg.Log.Append(Event{
			AtSeconds: at,
			Rule:      m.cfg.Rule,
			Dest:      m.cfg.Dest,
			Kind:      "lag-burn",
			Severity:  severityFor(st),
			State:     st,
			BurnShort: short,
			BurnLong:  long,
			Detail: fmt.Sprintf("lag target %s objective %.4g",
				slo.LagTarget, slo.Objective),
			Trace: trace,
		})
	}

	if m.cfg.DLQDepth != nil {
		depth := m.cfg.DLQDepth()
		st := StateOK
		if depth > slo.MaxDLQ {
			st = StatePage
		}
		if st != m.dlqState {
			m.dlqState = st
			if st != StateOK {
				m.alerts++
			}
			m.cfg.Log.Append(Event{
				AtSeconds: at,
				Rule:      m.cfg.Rule,
				Dest:      m.cfg.Dest,
				Kind:      "dlq",
				Severity:  severityFor(st),
				State:     st,
				Detail:    fmt.Sprintf("depth %d max %d", depth, slo.MaxDLQ),
			})
		}
	}

	if m.cfg.Divergence != nil {
		if v := m.cfg.Divergence(); v > m.lastDivergence {
			m.alerts++
			m.cfg.Log.Append(Event{
				AtSeconds: at,
				Rule:      m.cfg.Rule,
				Dest:      m.cfg.Dest,
				Kind:      "divergence",
				Severity:  StatePage,
				State:     StatePage,
				Detail:    fmt.Sprintf("violations %d (was %d)", v, m.lastDivergence),
			})
			m.lastDivergence = v
		}
	}
}

// Health snapshots the rule's current health row at the virtual instant.
func (m *Monitor) Health() Health {
	if m == nil {
		return Health{}
	}
	now := m.cfg.Now()
	short, long := m.burns(now)
	m.mu.Lock()
	state := m.lagState
	if m.dlqState == StatePage || state == StatePage {
		state = StatePage
	} else if m.dlqState == StateWarn && state == StateOK {
		state = StateWarn
	}
	alerts := m.alerts
	m.mu.Unlock()
	h := Health{
		Rule:       m.cfg.Rule,
		Dest:       m.cfg.Dest,
		State:      state,
		LagP50S:    m.cfg.LagHist.Quantile(0.50),
		LagP99S:    m.cfg.LagHist.Quantile(0.99),
		Backlog:    m.cfg.Tracker.BacklogDepth(),
		OldestAgeS: simclock.ToSeconds(m.cfg.Tracker.OldestPending(now)),
		BurnShort:  short,
		BurnLong:   long,
		Alerts:     alerts,
	}
	if m.cfg.DLQDepth != nil {
		h.DLQ = m.cfg.DLQDepth()
	}
	return h
}
