package fleetobs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// healthRows is a small fleet's health snapshot, deliberately listed out
// of order: the table must sort by (rule, dest) regardless of
// registration or deploy order.
func healthRows() []Health {
	return []Health{
		{
			Rule: "gcp:us-east1/logs->aws:us-east-1/logs-replica", Dest: "aws:us-east-1",
			State: "warn", LagP50S: 1.204, LagP99S: 9.881, Backlog: 4, OldestAgeS: 12.5,
			DLQ: 0, BurnShort: 2.1, BurnLong: 0.9, Alerts: 1,
		},
		{
			Rule: "aws:us-east-1/photos->azure:eastus/photos-replica", Dest: "azure:eastus",
			State: "ok", LagP50S: 0.742, LagP99S: 2.310, Backlog: 0, OldestAgeS: 0,
			DLQ: 0, BurnShort: 0.2, BurnLong: 0.1, Alerts: 0,
		},
		{
			Rule: "aws:us-east-1/photos->gcp:us-east1/photos-replica", Dest: "gcp:us-east1",
			State: "page", LagP50S: 3.050, LagP99S: 31.007, Backlog: 17, OldestAgeS: 45.25,
			DLQ: 2, BurnShort: 14.8, BurnLong: 6.2, Alerts: 3,
		},
		{
			Rule: "azure:eastus/media->gcp:us-east1/media-replica", Dest: "gcp:us-east1",
			State: "ok", LagP50S: 0.511, LagP99S: 1.102, Backlog: 0, OldestAgeS: 0,
			DLQ: 0, BurnShort: 0, BurnLong: 0, Alerts: 0,
		},
	}
}

// TestHealthTableGolden pins the table's exact rendering — alignment,
// headers and the deterministic (rule, dest) sort of rows fed in
// shuffled order.
func TestHealthTableGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHealthTable(&buf, healthRows()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "health_table.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("table differs from golden file:\n%s", buf.String())
	}
}

// TestHealthTableOrderInvariant feeds the same rows in two different
// orders and requires byte-identical output.
func TestHealthTableOrderInvariant(t *testing.T) {
	rows := healthRows()
	var a, b bytes.Buffer
	if err := WriteHealthTable(&a, rows); err != nil {
		t.Fatal(err)
	}
	reversed := make([]Health, len(rows))
	for i, h := range rows {
		reversed[len(rows)-1-i] = h
	}
	if err := WriteHealthTable(&b, reversed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("row order leaked into output:\n%s\nvs\n%s", a.String(), b.String())
	}
}
