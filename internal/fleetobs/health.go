package fleetobs

import (
	"fmt"
	"io"
	"sort"
)

// WriteHealthTable renders per-rule health rows as an aligned text
// table, sorted by (rule, dest) for deterministic output.
func WriteHealthTable(w io.Writer, rows []Health) error {
	sorted := append([]Health(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Rule != sorted[j].Rule {
			return sorted[i].Rule < sorted[j].Rule
		}
		return sorted[i].Dest < sorted[j].Dest
	})
	ruleW, destW := len("RULE"), len("DEST")
	for _, h := range sorted {
		if len(h.Rule) > ruleW {
			ruleW = len(h.Rule)
		}
		if len(h.Dest) > destW {
			destW = len(h.Dest)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %-*s  %-5s  %9s  %9s  %7s  %9s  %4s  %11s  %6s\n",
		ruleW, "RULE", destW, "DEST", "STATE", "LAG P50", "LAG P99",
		"BACKLOG", "OLDEST", "DLQ", "BURN S/L", "ALERTS"); err != nil {
		return err
	}
	for _, h := range sorted {
		if _, err := fmt.Fprintf(w, "%-*s  %-*s  %-5s  %8.3fs  %8.3fs  %7d  %8.3fs  %4d  %5.1f/%5.1f  %6d\n",
			ruleW, h.Rule, destW, h.Dest, h.State, h.LagP50S, h.LagP99S,
			h.Backlog, h.OldestAgeS, h.DLQ, h.BurnShort, h.BurnLong, h.Alerts); err != nil {
			return err
		}
	}
	return nil
}
