// Package racedetect exposes whether the race detector is compiled in.
//
// Same-seed byte-identity is a property of the normal scheduler: race
// instrumentation perturbs which goroutine wins when several actors wake
// at the same virtual instant, which reorders shared-RNG draws and FIFO
// quota tickets. Determinism tests consult Enabled to keep their
// behavioral assertions under -race while skipping cross-run
// byte-comparison, which only the uninstrumented scheduler guarantees.
package racedetect
