//go:build race

package racedetect

// Enabled reports whether the binary was built with the race detector.
const Enabled = true
