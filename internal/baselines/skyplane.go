// Package baselines implements the systems the paper compares AReplica
// against (§8): Skyplane — the open-source VM-based cross-cloud replicator
// — and the proprietary services AWS S3 Replication Time Control and Azure
// object replication.
package baselines

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cloud"
	"repro/internal/engine"
	"repro/internal/objstore"
	"repro/internal/simclock"
	"repro/internal/simrand"
	"repro/internal/stats"
	"repro/internal/vmsim"
	"repro/internal/world"
)

// Skyplane models the v0.3.2 open-source release's behaviour: for each
// transfer it provisions a VM in the source and destination regions (tens
// of seconds each, Figure 4), deploys containers, relays the object
// through the VM pair, and shuts the VMs down — optionally after a
// keep-alive idle window (Figure 5's 5 min / 1 min / 20 s policies).
type Skyplane struct {
	W                    *world.World
	Src, Dst             cloud.RegionID
	SrcBucket, DstBucket string

	// VMsPerRegion bounds concurrent transfers (1 by default; the paper
	// uses 8 for the 100 GB bulk experiment).
	VMsPerRegion int
	// IdleTimeout keeps VMs alive after a transfer; zero shuts them down
	// immediately.
	IdleTimeout time.Duration

	// ColdOverhead is Skyplane's per-job coordination time when VMs are
	// freshly provisioned ("Others" in Figure 4); WarmOverhead applies on
	// reused VMs.
	ColdOverhead stats.Normal
	WarmOverhead stats.Normal

	Tracker *engine.Tracker

	srcVMs *vmsim.Manager
	dstVMs *vmsim.Manager
	slots  *sem
}

// NewSkyplane returns a Skyplane deployment for one bucket pair.
func NewSkyplane(w *world.World, src, dst cloud.RegionID, srcBucket, dstBucket string, vmsPerRegion int, idle time.Duration) *Skyplane {
	if vmsPerRegion <= 0 {
		vmsPerRegion = 1
	}
	return &Skyplane{
		W: w, Src: src, Dst: dst,
		SrcBucket: srcBucket, DstBucket: dstBucket,
		VMsPerRegion: vmsPerRegion,
		IdleTimeout:  idle,
		ColdOverhead: stats.N(18.3, 3.0),
		WarmOverhead: stats.N(1.5, 0.3),
		Tracker:      engine.NewTracker(),
		srcVMs:       vmsim.New(w.Clock, cloud.MustLookup(src), w.Meter, idle),
		dstVMs:       vmsim.New(w.Clock, cloud.MustLookup(dst), w.Meter, idle),
		slots:        newSem(w.Clock, vmsPerRegion),
	}
}

// HandleEvent consumes a source-bucket notification; wire it via
// objstore.Subscribe. The transfer queues until a VM pair is free.
func (s *Skyplane) HandleEvent(ev objstore.Event) {
	s.Tracker.OnSource(ev)
	s.W.Clock.Go(func() {
		s.slots.acquire()
		defer s.slots.release()
		if ev.Type == objstore.EventDelete {
			s.W.Region(s.Dst).Obj.Delete(s.DstBucket, ev.Key)
			s.Tracker.Resolve(ev.Key, ev.Seq, s.W.Clock.Now())
			return
		}
		if s.transferOnce(ev.Key, fmt.Sprint(ev.Seq), ev.Size, 0, 1) {
			s.Tracker.Resolve(ev.Key, ev.Seq, s.W.Clock.Now())
		}
	})
}

// Breakdown itemizes one cold transfer, for Figure 4.
type Breakdown struct {
	Provisioning time.Duration // VM provisioning
	Container    time.Duration // container deployment on the VMs
	Transfer     time.Duration // actual data movement
	Others       time.Duration // Skyplane job coordination
}

// Total returns the end-to-end time.
func (b Breakdown) Total() time.Duration {
	return b.Provisioning + b.Container + b.Transfer + b.Others
}

// ReplicateMeasured runs one transfer synchronously and returns its phase
// breakdown (the caller must hold no slot).
func (s *Skyplane) ReplicateMeasured(key string, size int64) (Breakdown, error) {
	s.slots.acquire()
	defer s.slots.release()
	var bd Breakdown
	if !s.transferMeasured(key, "measured", size, 0, 1, &bd) {
		return bd, fmt.Errorf("skyplane: transfer of %q failed", key)
	}
	return bd, nil
}

// ReplicateBulk moves one large object striped across every VM pair
// concurrently (the paper's 100 GB configuration) and returns the
// end-to-end time.
func (s *Skyplane) ReplicateBulk(key string, size int64) (time.Duration, error) {
	clock := s.W.Clock
	start := clock.Now()
	stripes := s.VMsPerRegion
	stripe := (size + int64(stripes) - 1) / int64(stripes)
	group := clock.NewGroup(stripes)
	var failed atomic.Bool
	for i := 0; i < stripes; i++ {
		i := i
		clock.Go(func() {
			defer group.Done()
			s.slots.acquire()
			defer s.slots.release()
			off := int64(i) * stripe
			n := stripe
			if off+n > size {
				n = size - off
			}
			if n <= 0 {
				return
			}
			if !s.transferOnce(key, fmt.Sprintf("stripe-%d", i), size, off, stripes) {
				failed.Store(true)
			}
		})
	}
	group.Wait()
	if failed.Load() {
		return 0, fmt.Errorf("skyplane: bulk transfer of %q failed", key)
	}
	// Assemble the striped parts into the destination object (modelled as
	// the final multipart completion; the stripes uploaded parts already).
	src := s.W.Region(s.Src)
	obj, err := src.Obj.Get(s.SrcBucket, key)
	if err != nil {
		return 0, err
	}
	if _, err := s.W.Region(s.Dst).Obj.Put(s.DstBucket, key, obj.Blob); err != nil {
		return 0, err
	}
	return clock.Since(start), nil
}

// transferOnce relays one stripe of an object through a VM pair.
func (s *Skyplane) transferOnce(key, salt string, size, off int64, stripes int) bool {
	var bd Breakdown
	return s.transferMeasured(key, salt, size, off, stripes, &bd)
}

func (s *Skyplane) transferMeasured(key, salt string, size, off int64, stripes int, bd *Breakdown) bool {
	clock := s.W.Clock
	srcRegion := cloud.MustLookup(s.Src)
	dstRegion := cloud.MustLookup(s.Dst)
	rng := simrand.New("skyplane", string(s.Src), string(s.Dst), key, salt)

	// Provision the VM pair concurrently; both must be ready.
	t0 := clock.Now()
	var srcVM, dstVM *vmsim.VM
	var coldSrc, coldDst bool
	group := clock.NewGroup(2)
	clock.Go(func() { defer group.Done(); srcVM, coldSrc = s.srcVMs.Acquire() })
	clock.Go(func() { defer group.Done(); dstVM, coldDst = s.dstVMs.Acquire() })
	group.Wait()
	cold := coldSrc || coldDst
	startup := clock.Since(t0)
	// Split startup into its provisioning and container phases by the
	// managers' calibrated means (they are simulated as one sleep).
	if cold {
		provMean := s.srcVMs.ProvisionTime.Mu
		contMean := s.srcVMs.ContainerTime.Mu
		frac := provMean / (provMean + contMean)
		bd.Provisioning += time.Duration(float64(startup) * frac)
		bd.Container += startup - time.Duration(float64(startup)*frac)
	}

	// Job coordination overhead.
	over := s.ColdOverhead
	if !cold {
		over = s.WarmOverhead
	}
	ov := simclock.Seconds(over.Sample(rng))
	clock.Sleep(ov)
	bd.Others += ov

	// Relay: source VM reads from the source bucket, streams to the
	// destination VM, which writes to the destination bucket.
	t1 := clock.Now()
	n := size - off
	stripe := (size + int64(stripes) - 1) / int64(stripes)
	if stripes > 1 && n > stripe {
		n = stripe
	}
	blob, _, err := s.W.Region(s.Src).Obj.GetRange(s.SrcBucket, key, off, n)
	if err != nil {
		s.srcVMs.Release(srcVM)
		s.dstVMs.Release(dstVM)
		return false
	}
	s.W.MoveBytesVM(srcRegion, dstRegion, n, rng)
	if stripes == 1 {
		if _, err := s.W.Region(s.Dst).Obj.Put(s.DstBucket, key, blob); err != nil {
			s.srcVMs.Release(srcVM)
			s.dstVMs.Release(dstVM)
			return false
		}
	}
	bd.Transfer += clock.Since(t1)

	s.srcVMs.Release(srcVM)
	s.dstVMs.Release(dstVM)
	return true
}

// Shutdown terminates all idle VMs (end of an experiment).
func (s *Skyplane) Shutdown() {
	s.srcVMs.TerminateAll()
	s.dstVMs.TerminateAll()
}
