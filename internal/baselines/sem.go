package baselines

import (
	"sync"

	"repro/internal/simclock"
)

// sem is a FIFO counting semaphore on the virtual clock, used to queue
// replication requests on a bounded VM fleet.
type sem struct {
	clock *simclock.Clock

	mu      sync.Mutex
	avail   int
	waiters []*simclock.Event
}

func newSem(clock *simclock.Clock, n int) *sem {
	return &sem{clock: clock, avail: n}
}

// acquire blocks (in virtual time) until a slot is available.
func (s *sem) acquire() {
	s.mu.Lock()
	if s.avail > 0 {
		s.avail--
		s.mu.Unlock()
		return
	}
	ev := s.clock.NewEvent()
	s.waiters = append(s.waiters, ev)
	s.mu.Unlock()
	ev.Wait()
}

// release frees a slot, handing it to the oldest waiter if any.
func (s *sem) release() {
	s.mu.Lock()
	if len(s.waiters) > 0 {
		ev := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.mu.Unlock()
		ev.Trigger()
		return
	}
	s.avail++
	s.mu.Unlock()
}
