package baselines

import (
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/objstore"
	"repro/internal/stats"
	"repro/internal/world"
)

const (
	use1 = cloud.RegionID("aws:us-east-1")
	use2 = cloud.RegionID("aws:us-east-2")
	azE  = cloud.RegionID("azure:eastus")
	azW  = cloud.RegionID("azure:westus2")
)

func setupBuckets(t *testing.T, w *world.World, src, dst cloud.RegionID) {
	t.Helper()
	if err := w.Region(src).Obj.CreateBucket("src", true); err != nil {
		t.Fatal(err)
	}
	if err := w.Region(dst).Obj.CreateBucket("dst", true); err != nil {
		t.Fatal(err)
	}
}

func TestSkyplaneColdTransferBreakdown(t *testing.T) {
	w := world.New()
	setupBuckets(t, w, use1, use2)
	sp := NewSkyplane(w, use1, use2, "src", "dst", 1, 0)
	blob := objstore.BlobOfSize(10<<20, 1)
	if _, err := w.Region(use1).Obj.Put("src", "obj", blob); err != nil {
		t.Fatal(err)
	}
	bd, err := sp.ReplicateMeasured("obj", 10<<20)
	if err != nil {
		t.Fatal(err)
	}
	w.Clock.Quiesce()
	// Figure 4's shape: provisioning+container dominates; transfer is a
	// tiny fraction.
	if bd.Provisioning < 20*time.Second || bd.Container < 15*time.Second {
		t.Fatalf("startup too fast: %+v", bd)
	}
	if bd.Transfer > bd.Total()/10 {
		t.Fatalf("transfer (%v) should be <10%% of total (%v)", bd.Transfer, bd.Total())
	}
	if bd.Total() < time.Minute || bd.Total() > 3*time.Minute {
		t.Fatalf("total = %v, want ~76s", bd.Total())
	}
	// VM cost dominates the money too.
	vm := w.Meter.Item("vm:compute")
	egress := w.Meter.Item("net:egress")
	if vm < egress*10 {
		t.Fatalf("vm cost %v should dwarf egress %v", vm, egress)
	}
}

func TestSkyplaneEventDrivenWithKeepAlive(t *testing.T) {
	w := world.New()
	setupBuckets(t, w, use1, use2)
	sp := NewSkyplane(w, use1, use2, "src", "dst", 1, 5*time.Minute)
	if err := w.Region(use1).Obj.Subscribe("src", sp.HandleEvent); err != nil {
		t.Fatal(err)
	}
	// First PUT: cold path. The second PUT lands two minutes later, inside
	// the keep-alive window, so it takes the warm path. (A Quiesce here
	// would drain the idle reaper and kill the warm VMs.)
	w.Region(use1).Obj.Put("src", "a", objstore.BlobOfSize(1<<20, 1))
	w.Clock.Sleep(2 * time.Minute)
	w.Region(use1).Obj.Put("src", "b", objstore.BlobOfSize(1<<20, 2))
	w.Clock.Quiesce()
	sp.Shutdown()
	w.Clock.Quiesce()

	recs := sp.Tracker.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	var cold, warm time.Duration
	for _, r := range recs {
		switch r.Key {
		case "a":
			cold = r.Delay
		case "b":
			warm = r.Delay
		}
	}
	if cold < time.Minute {
		t.Fatalf("cold delay %v, want >1min (provisioning)", cold)
	}
	if warm > 15*time.Second || warm >= cold {
		t.Fatalf("warm delay %v should be a few seconds (cold %v)", warm, cold)
	}
	// Both objects landed.
	if _, err := w.Region(use2).Obj.Get("dst", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Region(use2).Obj.Get("dst", "b"); err != nil {
		t.Fatal(err)
	}
}

func TestSkyplaneQueueingUnderBurst(t *testing.T) {
	// One VM pair, several simultaneous objects: later transfers queue, so
	// max delay grows well past a single transfer's time.
	w := world.New()
	setupBuckets(t, w, use1, use2)
	sp := NewSkyplane(w, use1, use2, "src", "dst", 1, 5*time.Minute)
	w.Region(use1).Obj.Subscribe("src", sp.HandleEvent)
	for i := 0; i < 5; i++ {
		w.Region(use1).Obj.Put("src", key(i), objstore.BlobOfSize(1<<20, uint64(i)+1))
	}
	w.Clock.Quiesce()
	sp.Shutdown()
	w.Clock.Quiesce()
	delays := sp.Tracker.DelaysSeconds()
	if len(delays) != 5 {
		t.Fatalf("%d records", len(delays))
	}
	if mx := stats.Percentile(delays, 100); mx < 65 {
		t.Fatalf("max delay %v s; queueing on one VM pair should push it past the cold start", mx)
	}
}

func TestSkyplaneBulkStriping(t *testing.T) {
	w := world.New()
	setupBuckets(t, w, use1, use2)
	sp := NewSkyplane(w, use1, use2, "src", "dst", 8, time.Minute)
	size := int64(10) << 30 // 10 GB (keeps the test quick; same path as 100 GB)
	blob := objstore.BlobOfSize(size, 3)
	w.Region(use1).Obj.Put("src", "big", blob)
	dur, err := sp.ReplicateBulk("big", size)
	if err != nil {
		t.Fatal(err)
	}
	sp.Shutdown()
	w.Clock.Quiesce()
	obj, err := w.Region(use2).Obj.Get("dst", "big")
	if err != nil || obj.ETag != blob.ETag() {
		t.Fatalf("bulk object wrong: %v", err)
	}
	// 8 parallel VM stripes: the transfer itself is fast but provisioning
	// still dominates; total must be minutes-scale, not hours.
	if dur < 30*time.Second || dur > 5*time.Minute {
		t.Fatalf("bulk duration = %v", dur)
	}
}

func TestS3RTCTypicalDelay(t *testing.T) {
	w := world.New()
	setupBuckets(t, w, use1, use2)
	rtc, err := NewS3RTC(w, use1, use2, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	w.Region(use1).Obj.Subscribe("src", rtc.HandleEvent)
	for i := 0; i < 10; i++ {
		w.Region(use1).Obj.Put("src", key(i), objstore.BlobOfSize(1<<20, uint64(i)+1))
	}
	w.Clock.Quiesce()
	delays := rtc.Tracker.DelaysSeconds()
	if len(delays) != 10 {
		t.Fatalf("%d records", len(delays))
	}
	mean := stats.Mean(delays)
	if mean < 12 || mean > 30 {
		t.Fatalf("mean delay %v s, want ~20 s", mean)
	}
}

func TestS3RTCRejectsNonAWS(t *testing.T) {
	w := world.New()
	if _, err := NewS3RTC(w, use1, azE, "s", "d"); err == nil {
		t.Fatal("cross-cloud S3 RTC must be rejected")
	}
}

func TestS3RTCQueueingUnderSustainedBurst(t *testing.T) {
	w := world.New()
	setupBuckets(t, w, use1, use2)
	rtc, _ := NewS3RTC(w, use1, use2, "src", "dst")
	rtc.RatePerSec, rtc.Burst = 50, 100 // small service for a small test
	rtc.tokens = newTokenBucket(w.Clock, 50, 100)
	w.Region(use1).Obj.Subscribe("src", rtc.HandleEvent)
	// 600 objects at once: 100 burst tokens, then 50/s: ~10s extra queueing.
	for i := 0; i < 600; i++ {
		w.Region(use1).Obj.Put("src", key(i), objstore.BlobOfSize(1<<10, uint64(i)+1))
	}
	w.Clock.Quiesce()
	delays := rtc.Tracker.DelaysSeconds()
	p50 := stats.Percentile(delays, 50)
	p100 := stats.Percentile(delays, 100)
	if p100 < p50+5 {
		t.Fatalf("tail (%v) should exceed median (%v) by queueing", p100, p50)
	}
}

func TestAZRepDelayAboveMinute(t *testing.T) {
	w := world.New()
	setupBuckets(t, w, azE, azW)
	az, err := NewAZRep(w, azE, azW, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	w.Region(azE).Obj.Subscribe("src", az.HandleEvent)
	for i := 0; i < 5; i++ {
		w.Region(azE).Obj.Put("src", key(i), objstore.BlobOfSize(1<<20, uint64(i)+1))
	}
	w.Clock.Quiesce()
	delays := az.Tracker.DelaysSeconds()
	if len(delays) != 5 {
		t.Fatalf("%d records", len(delays))
	}
	if mn := stats.Percentile(delays, 0); mn < 50 {
		t.Fatalf("min delay %v s, want >50 s (no SLO service)", mn)
	}
	// Free service: no rtc fee, only egress.
	if w.Meter.Item("rtc:fee") != 0 {
		t.Fatal("azrep should have no replication fee")
	}
	if w.Meter.Item("net:egress") <= 0 {
		t.Fatal("egress must accrue")
	}
}

func TestAZRepRejectsNonAzure(t *testing.T) {
	w := world.New()
	if _, err := NewAZRep(w, use1, azE, "s", "d"); err == nil {
		t.Fatal("non-Azure AZRep must be rejected")
	}
}

func TestTokenBucketRate(t *testing.T) {
	w := world.New()
	tb := newTokenBucket(w.Clock, 10, 10)
	start := w.Clock.Now()
	// 10 burst + 40 at 10/s: last token at ~4s.
	for i := 0; i < 50; i++ {
		tb.take()
	}
	elapsed := w.Clock.Since(start).Seconds()
	if elapsed < 3.5 || elapsed > 5 {
		t.Fatalf("50 tokens took %v s, want ~4 s", elapsed)
	}
}

func TestSemFIFO(t *testing.T) {
	w := world.New()
	s := newSem(w.Clock, 1)
	var order []int
	s.acquire()
	for i := 0; i < 3; i++ {
		i := i
		w.Clock.Delay(time.Duration(i+1)*time.Millisecond, func() {
			s.acquire()
			order = append(order, i)
			w.Clock.Sleep(time.Millisecond)
			s.release()
		})
	}
	w.Clock.Delay(10*time.Millisecond, s.release)
	w.Clock.Quiesce()
	for i, got := range order {
		if got != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func key(i int) string { return "obj-" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }
