package baselines

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/engine"
	"repro/internal/objstore"
	"repro/internal/pricing"
	"repro/internal/simclock"
	"repro/internal/simrand"
	"repro/internal/stats"
	"repro/internal/world"
)

// S3RTC models AWS S3 Replication Time Control: managed asynchronous
// replication between two AWS buckets with a 15-minute SLA. Typical delay
// is ~15-26 seconds (Tables 1-2), but the service's internal replication
// capacity is bounded, so sustained bursts queue and push the p99.99
// delay past 30 seconds (Figure 23). Versioning must be enabled on both
// buckets; the fee is $0.015/GB on top of inter-region egress.
type S3RTC struct {
	W                    *world.World
	Src, Dst             cloud.RegionID
	SrcBucket, DstBucket string

	// BaseDelay is the service's internal processing time; SizeDelayPerGB
	// adds the size-dependent component.
	BaseDelay      stats.Normal
	SizeDelayPerGB float64

	// RatePerSec is the service's sustained replication capacity for this
	// bucket pair; Burst is the token bucket depth.
	RatePerSec float64
	Burst      float64

	Tracker *engine.Tracker

	tokens *tokenBucket
}

// NewS3RTC returns an S3 RTC deployment. Both regions must be AWS.
func NewS3RTC(w *world.World, src, dst cloud.RegionID, srcBucket, dstBucket string) (*S3RTC, error) {
	if cloud.MustLookup(src).Provider != cloud.AWS || cloud.MustLookup(dst).Provider != cloud.AWS {
		return nil, fmt.Errorf("s3rtc: both regions must be AWS, got %s -> %s", src, dst)
	}
	r := &S3RTC{
		W: w, Src: src, Dst: dst,
		SrcBucket: srcBucket, DstBucket: dstBucket,
		BaseDelay:      stats.N(19.5, 2.8),
		SizeDelayPerGB: 4.0,
		RatePerSec:     400,
		Burst:          1200,
		Tracker:        engine.NewTracker(),
	}
	r.tokens = newTokenBucket(w.Clock, r.RatePerSec, r.Burst)
	return r, nil
}

// SetCapacity reconfigures the service's sustained replication rate and
// burst depth (experiments scale it alongside scaled-down traces).
func (r *S3RTC) SetCapacity(ratePerSec, burst float64) {
	r.RatePerSec, r.Burst = ratePerSec, burst
	r.tokens = newTokenBucket(r.W.Clock, ratePerSec, burst)
}

// HandleEvent consumes a source notification.
func (r *S3RTC) HandleEvent(ev objstore.Event) {
	r.Tracker.OnSource(ev)
	r.W.Clock.Go(func() {
		// Queue on the service's replication capacity.
		r.tokens.take()
		if ev.Type == objstore.EventDelete {
			r.W.Region(r.Dst).Obj.Delete(r.DstBucket, ev.Key)
			r.Tracker.Resolve(ev.Key, ev.Seq, r.W.Clock.Now())
			return
		}
		rng := simrand.New("s3rtc", ev.Key, fmt.Sprint(ev.Seq))
		d := r.BaseDelay.Sample(rng) + r.SizeDelayPerGB*float64(ev.Size)/(1<<30)
		if d < 5 {
			d = 5
		}
		r.W.Clock.Sleep(simclock.Seconds(d))
		src := r.W.Region(r.Src)
		obj, err := src.Obj.Get(r.SrcBucket, ev.Key)
		if err != nil {
			return // superseded or deleted; a newer event resolves the key
		}
		if _, err := r.W.Region(r.Dst).Obj.Put(r.DstBucket, ev.Key, obj.Blob); err != nil {
			return
		}
		// Egress plus the RTC fee, billed by AWS.
		r.W.Meter.Add("net:egress", pricing.EgressCost(cloud.MustLookup(r.Src), cloud.MustLookup(r.Dst), obj.Size))
		r.W.Meter.Add("rtc:fee", pricing.BookFor(cloud.AWS).RTCPerGB*float64(obj.Size)/(1<<30))
		r.Tracker.Resolve(ev.Key, obj.Seq, r.W.Clock.Now())
	})
}

// AZRep models Azure object replication for block blobs: free of charge
// (beyond egress) but with no SLO — measured delays sit above a minute
// (Table 2) regardless of object size class.
type AZRep struct {
	W                    *world.World
	Src, Dst             cloud.RegionID
	SrcBucket, DstBucket string

	BaseDelay      stats.Normal
	SizeDelayPerGB float64

	Tracker *engine.Tracker
}

// NewAZRep returns an Azure object replication deployment. Both regions
// must be Azure.
func NewAZRep(w *world.World, src, dst cloud.RegionID, srcBucket, dstBucket string) (*AZRep, error) {
	if cloud.MustLookup(src).Provider != cloud.Azure || cloud.MustLookup(dst).Provider != cloud.Azure {
		return nil, fmt.Errorf("azrep: both regions must be Azure, got %s -> %s", src, dst)
	}
	return &AZRep{
		W: w, Src: src, Dst: dst,
		SrcBucket: srcBucket, DstBucket: dstBucket,
		BaseDelay:      stats.N(62.0, 4.5),
		SizeDelayPerGB: 2.0,
		Tracker:        engine.NewTracker(),
	}, nil
}

// HandleEvent consumes a source notification.
func (a *AZRep) HandleEvent(ev objstore.Event) {
	a.Tracker.OnSource(ev)
	a.W.Clock.Go(func() {
		if ev.Type == objstore.EventDelete {
			a.W.Region(a.Dst).Obj.Delete(a.DstBucket, ev.Key)
			a.Tracker.Resolve(ev.Key, ev.Seq, a.W.Clock.Now())
			return
		}
		rng := simrand.New("azrep", ev.Key, fmt.Sprint(ev.Seq))
		d := a.BaseDelay.Sample(rng) + a.SizeDelayPerGB*float64(ev.Size)/(1<<30)
		if d < 30 {
			d = 30
		}
		a.W.Clock.Sleep(simclock.Seconds(d))
		src := a.W.Region(a.Src)
		obj, err := src.Obj.Get(a.SrcBucket, ev.Key)
		if err != nil {
			return
		}
		if _, err := a.W.Region(a.Dst).Obj.Put(a.DstBucket, ev.Key, obj.Blob); err != nil {
			return
		}
		a.W.Meter.Add("net:egress", pricing.EgressCost(cloud.MustLookup(a.Src), cloud.MustLookup(a.Dst), obj.Size))
		a.Tracker.Resolve(ev.Key, obj.Seq, a.W.Clock.Now())
	})
}

// tokenBucket rate-limits a service on the virtual clock.
type tokenBucket struct {
	clock *simclock.Clock
	rate  float64 // tokens per second
	burst float64

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func newTokenBucket(clock *simclock.Clock, rate, burst float64) *tokenBucket {
	return &tokenBucket{clock: clock, rate: rate, burst: burst, tokens: burst, last: clock.Now()}
}

// take blocks until one token is available. Instead of polling, a caller
// arriving at an empty bucket *reserves* the next slot by driving the
// balance negative and sleeping exactly once until its slot matures —
// FIFO service in O(1) wakeups per caller, which matters when tens of
// thousands of trace operations queue at once.
func (tb *tokenBucket) take() {
	tb.mu.Lock()
	now := tb.clock.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	tb.last = now
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.tokens--
	deficit := -tb.tokens / tb.rate
	tb.mu.Unlock()
	if deficit > 0 {
		tb.clock.Sleep(simclock.Seconds(deficit))
	}
}
