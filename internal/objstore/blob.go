package objstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Blob is object content. To let the simulator move terabytes without
// materializing them, a blob is usually *synthetic*: its content is defined
// as a pure function of (Seed, absolute offset), so slices and
// concatenations can be reasoned about without bytes. Small blobs may carry
// literal bytes instead (examples and tests).
//
// The content model gives the simulator real consistency semantics: a
// range-read of a blob is a slice sharing its seed; reassembling
// *contiguous slices of the same seed starting at offset zero* yields a
// blob with the original ETag, while mixing slices of different versions
// (different seeds) yields a different ETag — exactly the corruption the
// paper's Figure 14 race produces.
type Blob struct {
	Size    int64
	Seed    uint64 // content identity for synthetic blobs
	Off     int64  // offset of this blob within the seed's content stream
	Literal []byte // non-nil for literal blobs; Seed/Off are then ignored
}

// BlobOfSize returns a synthetic blob of the given size and content seed.
func BlobOfSize(size int64, seed uint64) Blob {
	if size < 0 {
		panic("objstore: negative blob size")
	}
	return Blob{Size: size, Seed: seed}
}

// BlobFromBytes returns a literal blob holding b (not copied).
func BlobFromBytes(b []byte) Blob {
	return Blob{Size: int64(len(b)), Literal: b}
}

// IsLiteral reports whether the blob carries literal bytes.
func (b Blob) IsLiteral() bool { return b.Literal != nil }

// ETag returns the platform content hash of the blob, in the quoted form
// object stores use.
func (b Blob) ETag() string {
	h := sha256.New()
	if b.IsLiteral() {
		h.Write(b.Literal)
	} else {
		var buf [24]byte
		binary.BigEndian.PutUint64(buf[0:], b.Seed)
		binary.BigEndian.PutUint64(buf[8:], uint64(b.Off))
		binary.BigEndian.PutUint64(buf[16:], uint64(b.Size))
		h.Write(buf[:])
	}
	return `"` + hex.EncodeToString(h.Sum(nil))[:32] + `"`
}

// Slice returns the sub-blob [off, off+length). It panics if the range
// falls outside the blob.
func (b Blob) Slice(off, length int64) Blob {
	if off < 0 || length < 0 || off+length > b.Size {
		panic(fmt.Sprintf("objstore: slice [%d,%d) out of blob of size %d", off, off+length, b.Size))
	}
	if b.IsLiteral() {
		return BlobFromBytes(b.Literal[off : off+length])
	}
	return Blob{Size: length, Seed: b.Seed, Off: b.Off + off}
}

// ConcatBlobs assembles parts in order into one blob. Contiguous synthetic
// slices of the same seed merge losslessly (the result has the ETag the
// unsliced stream would have); anything else produces a new synthetic blob
// whose seed is derived from the parts' ETags, so its ETag differs from
// every input. Literal parts concatenate bytewise when all parts are
// literal.
func ConcatBlobs(parts ...Blob) Blob {
	if len(parts) == 0 {
		return Blob{Literal: []byte{}}
	}
	if len(parts) == 1 {
		return parts[0]
	}

	allLiteral := true
	for _, p := range parts {
		if !p.IsLiteral() {
			allLiteral = false
			break
		}
	}
	if allLiteral {
		var out []byte
		for _, p := range parts {
			out = append(out, p.Literal...)
		}
		return BlobFromBytes(out)
	}

	// Try a lossless merge of contiguous synthetic slices of one seed.
	mergeable := !parts[0].IsLiteral()
	if mergeable {
		seed, off := parts[0].Seed, parts[0].Off
		end := parts[0].Off + parts[0].Size
		for _, p := range parts[1:] {
			if p.IsLiteral() || p.Seed != seed || p.Off != end {
				mergeable = false
				break
			}
			end += p.Size
		}
		if mergeable {
			return Blob{Size: end - off, Seed: seed, Off: off}
		}
	}

	// Derived content: hash the parts' identities into a fresh seed.
	h := sha256.New()
	var total int64
	for _, p := range parts {
		h.Write([]byte(p.ETag()))
		total += p.Size
	}
	sum := h.Sum(nil)
	return Blob{Size: total, Seed: binary.BigEndian.Uint64(sum[:8]), Off: int64(binary.BigEndian.Uint32(sum[8:12]))}
}

// Equal reports whether two blobs have identical content (same ETag and
// size).
func (b Blob) Equal(o Blob) bool {
	return b.Size == o.Size && b.ETag() == o.ETag()
}
