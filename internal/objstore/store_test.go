package objstore

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cloud"
	"repro/internal/pricing"
	"repro/internal/simclock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newStore(t *testing.T) (*simclock.Clock, *Store, *pricing.Meter) {
	t.Helper()
	clk := simclock.New(epoch)
	meter := pricing.NewMeter()
	s := New(clk, cloud.MustLookup("aws:us-east-1"), meter)
	if err := s.CreateBucket("b", false); err != nil {
		t.Fatal(err)
	}
	return clk, s, meter
}

func TestBlobETagStability(t *testing.T) {
	b := BlobOfSize(1000, 42)
	if b.ETag() != BlobOfSize(1000, 42).ETag() {
		t.Error("identical blobs must share an ETag")
	}
	if b.ETag() == BlobOfSize(1000, 43).ETag() {
		t.Error("different seeds must differ")
	}
	if b.ETag() == BlobOfSize(1001, 42).ETag() {
		t.Error("different sizes must differ")
	}
}

func TestBlobSliceConcatRoundTrip(t *testing.T) {
	// Contiguous slices reassemble into the original content.
	f := func(sizeRaw uint16, cutRaw uint16) bool {
		size := int64(sizeRaw)%10000 + 2
		cut := int64(cutRaw) % (size - 1)
		if cut == 0 {
			cut = 1
		}
		b := BlobOfSize(size, 7)
		merged := ConcatBlobs(b.Slice(0, cut), b.Slice(cut, size-cut))
		return merged.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBlobConcatInconsistentVersionsDiffers(t *testing.T) {
	// Mixing slices of two versions (the Figure 14 race) yields content
	// that matches neither version.
	v1, v2 := BlobOfSize(100, 1), BlobOfSize(100, 2)
	mixed := ConcatBlobs(v1.Slice(0, 50), v2.Slice(50, 50))
	if mixed.Equal(v1) || mixed.Equal(v2) {
		t.Error("inconsistent assembly must not equal either version")
	}
	if mixed.Size != 100 {
		t.Errorf("mixed size = %d", mixed.Size)
	}
}

func TestBlobNonZeroStartSliceDiffers(t *testing.T) {
	b := BlobOfSize(100, 5)
	tail := b.Slice(10, 90)
	if tail.Equal(b) {
		t.Error("a tail slice must differ from the whole")
	}
	// Reassembling from a non-zero start keeps slice identity.
	if !ConcatBlobs(b.Slice(10, 40), b.Slice(50, 50)).Equal(tail) {
		t.Error("contiguous tail slices should merge to the tail")
	}
}

func TestLiteralBlobs(t *testing.T) {
	lit := BlobFromBytes([]byte("hello world"))
	if lit.Size != 11 || !lit.IsLiteral() {
		t.Fatalf("literal blob: %+v", lit)
	}
	if !ConcatBlobs(lit.Slice(0, 5), lit.Slice(5, 6)).Equal(lit) {
		t.Error("literal slice+concat should round-trip")
	}
	if lit.ETag() == BlobFromBytes([]byte("hello worle")).ETag() {
		t.Error("literal content must drive the ETag")
	}
}

func TestBlobSliceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BlobOfSize(10, 1).Slice(5, 6)
}

func TestConcatEdgeCases(t *testing.T) {
	if got := ConcatBlobs(); got.Size != 0 {
		t.Errorf("empty concat size = %d", got.Size)
	}
	one := BlobOfSize(5, 9)
	if !ConcatBlobs(one).Equal(one) {
		t.Error("single-part concat should be identity")
	}
}

func TestPutGetHeadDelete(t *testing.T) {
	_, s, _ := newStore(t)
	blob := BlobOfSize(1<<20, 99)
	res, err := s.Put("b", "k", blob)
	if err != nil {
		t.Fatal(err)
	}
	if res.ETag != blob.ETag() {
		t.Error("put result ETag mismatch")
	}
	obj, err := s.Get("b", "k")
	if err != nil || !obj.Blob.Equal(blob) || obj.Size != 1<<20 {
		t.Fatalf("get: %v %+v", err, obj)
	}
	meta, err := s.Head("b", "k")
	if err != nil || meta.ETag != blob.ETag() {
		t.Fatalf("head: %v %+v", err, meta)
	}
	if err := s.Delete("b", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("b", "k"); !errors.Is(err, ErrNoSuchKey) {
		t.Fatalf("get after delete: %v", err)
	}
	if err := s.Delete("b", "missing"); err != nil {
		t.Fatalf("deleting a missing key should succeed: %v", err)
	}
}

func TestGetRange(t *testing.T) {
	_, s, _ := newStore(t)
	blob := BlobOfSize(1000, 3)
	if _, err := s.Put("b", "k", blob); err != nil {
		t.Fatal(err)
	}
	part, etag, err := s.GetRange("b", "k", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if etag != blob.ETag() {
		t.Error("range GET should report the full object's ETag")
	}
	if !part.Equal(blob.Slice(100, 200)) {
		t.Error("range content mismatch")
	}
	if _, _, err := s.GetRange("b", "k", 900, 200); err == nil {
		t.Error("out-of-range read should fail")
	}
}

func TestMissingBucketErrors(t *testing.T) {
	_, s, _ := newStore(t)
	if _, err := s.Put("nope", "k", BlobOfSize(1, 1)); !errors.Is(err, ErrNoSuchBucket) {
		t.Errorf("put: %v", err)
	}
	if _, err := s.Get("nope", "k"); !errors.Is(err, ErrNoSuchBucket) {
		t.Errorf("get: %v", err)
	}
	if err := s.Subscribe("nope", func(Event) {}); !errors.Is(err, ErrNoSuchBucket) {
		t.Errorf("subscribe: %v", err)
	}
	if err := s.CreateBucket("b", false); err == nil {
		t.Error("duplicate bucket create should fail")
	}
}

func TestCopyWithPrecondition(t *testing.T) {
	_, s, _ := newStore(t)
	blob := BlobOfSize(100, 1)
	res, _ := s.Put("b", "src", blob)
	if _, err := s.Copy("b", "src", "b", "dst", res.ETag); err != nil {
		t.Fatal(err)
	}
	obj, _ := s.Get("b", "dst")
	if !obj.Blob.Equal(blob) {
		t.Error("copy content mismatch")
	}
	if _, err := s.Copy("b", "src", "b", "dst2", `"stale"`); !errors.Is(err, ErrPreconditionFailed) {
		t.Errorf("stale precondition: %v", err)
	}
	if _, err := s.Copy("b", "missing", "b", "x", ""); !errors.Is(err, ErrNoSuchKey) {
		t.Errorf("missing source: %v", err)
	}
}

func TestCompose(t *testing.T) {
	_, s, _ := newStore(t)
	whole := BlobOfSize(300, 8)
	s.Put("b", "p0", whole.Slice(0, 100))
	s.Put("b", "p1", whole.Slice(100, 100))
	s.Put("b", "p2", whole.Slice(200, 100))
	res, err := s.Compose("b", "joined", []string{"p0", "p1", "p2"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ETag != whole.ETag() {
		t.Error("composing contiguous slices should recreate the original")
	}
	// Precondition failure on one source.
	_, err = s.Compose("b", "x", []string{"p0", "p1"}, []string{`"bad"`, ""})
	if !errors.Is(err, ErrPreconditionFailed) {
		t.Errorf("compose precondition: %v", err)
	}
}

func TestMultipartAssemblesInPartOrder(t *testing.T) {
	_, s, _ := newStore(t)
	whole := BlobOfSize(256, 12)
	id, err := s.CreateMultipart("b", "big")
	if err != nil {
		t.Fatal(err)
	}
	// Upload out of order; completion must sort by part number.
	if _, err := s.UploadPart(id, 2, whole.Slice(128, 128)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.UploadPart(id, 1, whole.Slice(0, 128)); err != nil {
		t.Fatal(err)
	}
	res, err := s.CompleteMultipart(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.ETag != whole.ETag() {
		t.Error("multipart assembly should reproduce the source content")
	}
	if _, err := s.CompleteMultipart(id); !errors.Is(err, ErrNoSuchUpload) {
		t.Error("upload should be gone after completion")
	}
}

func TestMultipartAbort(t *testing.T) {
	_, s, _ := newStore(t)
	id, _ := s.CreateMultipart("b", "k")
	s.AbortMultipart(id)
	if _, err := s.UploadPart(id, 1, BlobOfSize(1, 1)); !errors.Is(err, ErrNoSuchUpload) {
		t.Errorf("upload after abort: %v", err)
	}
}

func TestEventsDeliveredWithDelay(t *testing.T) {
	clk, s, _ := newStore(t)
	var mu sync.Mutex
	var events []Event
	var deliveredAt time.Time
	s.Subscribe("b", func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		deliveredAt = clk.Now()
		mu.Unlock()
	})
	res, _ := s.Put("b", "k", BlobOfSize(10, 1))
	putDone := clk.Now()
	clk.Quiesce()
	if len(events) != 1 {
		t.Fatalf("got %d events", len(events))
	}
	ev := events[0]
	if ev.Type != EventPut || ev.Key != "k" || ev.ETag != res.ETag || ev.Size != 10 {
		t.Fatalf("event = %+v", ev)
	}
	if d := deliveredAt.Sub(putDone); d < 50*time.Millisecond || d > 2*time.Second {
		t.Errorf("notification delay = %v, want sub-second but nonzero", d)
	}
	// Delete also notifies.
	s.Delete("b", "k")
	clk.Quiesce()
	if len(events) != 2 || events[1].Type != EventDelete {
		t.Fatalf("delete event missing: %+v", events)
	}
}

func TestEventSeqOrdersVersions(t *testing.T) {
	clk, s, _ := newStore(t)
	var mu sync.Mutex
	seqs := map[string]uint64{}
	s.Subscribe("b", func(ev Event) {
		mu.Lock()
		seqs[ev.ETag] = ev.Seq
		mu.Unlock()
	})
	r1, _ := s.Put("b", "k", BlobOfSize(10, 1))
	r2, _ := s.Put("b", "k", BlobOfSize(10, 2))
	clk.Quiesce()
	if !(seqs[r1.ETag] < seqs[r2.ETag]) {
		t.Errorf("version order lost: %v", seqs)
	}
}

func TestVersioningTracksNoncurrent(t *testing.T) {
	_, s, _ := newStore(t)
	s.CreateBucket("v", true)
	s.Put("v", "k", BlobOfSize(100, 1))
	s.Put("v", "k", BlobOfSize(200, 2))
	s.Delete("v", "k")
	u, err := s.BucketUsage("v")
	if err != nil {
		t.Fatal(err)
	}
	if u.Objects != 0 || u.NoncurrentCount != 2 || u.NoncurrentBytes != 300 {
		t.Errorf("usage = %+v", u)
	}
	// Unversioned bucket retains nothing.
	s.Put("b", "k", BlobOfSize(100, 1))
	s.Put("b", "k", BlobOfSize(100, 2))
	u2, _ := s.BucketUsage("b")
	if u2.NoncurrentCount != 0 {
		t.Errorf("unversioned usage = %+v", u2)
	}
}

func TestRequestFeesMetered(t *testing.T) {
	_, s, m := newStore(t)
	s.Put("b", "k", BlobOfSize(1, 1))
	s.Get("b", "k")
	book := pricing.BookFor(cloud.AWS)
	if got := m.Item("obj:put"); got != book.ObjPut {
		t.Errorf("put fee = %v", got)
	}
	if got := m.Item("obj:get"); got != book.ObjGet {
		t.Errorf("get fee = %v", got)
	}
}

func TestRequestLatencyRealistic(t *testing.T) {
	clk, s, _ := newStore(t)
	start := clk.Now()
	for i := 0; i < 50; i++ {
		s.Put("b", "k", BlobOfSize(1, uint64(i)))
	}
	per := clk.Since(start) / 50
	if per < 2*time.Millisecond || per > 200*time.Millisecond {
		t.Errorf("per-PUT latency %v out of range", per)
	}
}

func TestKeysListing(t *testing.T) {
	_, s, _ := newStore(t)
	s.Put("b", "zebra", BlobOfSize(1, 1))
	s.Put("b", "apple", BlobOfSize(1, 2))
	got := s.Keys("b")
	if len(got) != 2 || got[0] != "apple" || got[1] != "zebra" {
		t.Errorf("keys = %v", got)
	}
	if s.Keys("nope") != nil {
		t.Error("missing bucket should list nil")
	}
}

func TestConcurrentPutsLastWriterWins(t *testing.T) {
	clk, s, _ := newStore(t)
	for i := 0; i < 10; i++ {
		seed := uint64(i)
		clk.Go(func() { s.Put("b", "k", BlobOfSize(10, seed)) })
	}
	clk.Quiesce()
	obj, err := s.Get("b", "k")
	if err != nil {
		t.Fatal(err)
	}
	// Some version won; the object must be internally consistent.
	if obj.Size != 10 || obj.ETag != obj.Blob.ETag() {
		t.Errorf("final object inconsistent: %+v", obj)
	}
}
