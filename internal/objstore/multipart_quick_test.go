package objstore

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cloud"
	"repro/internal/pricing"
	"repro/internal/simclock"
)

// Property: splitting an object into random contiguous parts, uploading
// them in a random order, and completing the multipart upload always
// recreates the exact original content.
func TestMultipartRandomSplitsRoundTrip(t *testing.T) {
	f := func(seed int64, sizeRaw uint16, cutsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int64(sizeRaw)%100000 + 2
		nCuts := int(cutsRaw)%8 + 1

		clk := simclock.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
		s := New(clk, cloud.MustLookup("aws:us-east-1"), pricing.NewMeter())
		if err := s.CreateBucket("b", false); err != nil {
			return false
		}
		whole := BlobOfSize(size, uint64(seed)+1)

		// Random cut points define contiguous parts.
		cutSet := map[int64]bool{}
		for i := 0; i < nCuts; i++ {
			c := rng.Int63n(size-1) + 1
			cutSet[c] = true
		}
		cuts := []int64{0}
		for c := int64(1); c < size; c++ {
			if cutSet[c] {
				cuts = append(cuts, c)
			}
		}
		cuts = append(cuts, size)

		id, err := s.CreateMultipart("b", "obj")
		if err != nil {
			return false
		}
		// Upload in a random permutation of part numbers.
		order := rng.Perm(len(cuts) - 1)
		for _, i := range order {
			part := whole.Slice(cuts[i], cuts[i+1]-cuts[i])
			if _, err := s.UploadPart(id, i+1, part); err != nil {
				return false
			}
		}
		res, err := s.CompleteMultipart(id)
		if err != nil {
			return false
		}
		return res.ETag == whole.ETag()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: omitting any interior part, or uploading a part from a
// different version, never reproduces the original ETag.
func TestMultipartCorruptionAlwaysDetectable(t *testing.T) {
	f := func(seed int64, swapRaw uint8) bool {
		clk := simclock.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
		s := New(clk, cloud.MustLookup("aws:us-east-1"), pricing.NewMeter())
		s.CreateBucket("b", false)
		const size = 4096
		v1 := BlobOfSize(size, uint64(seed)*2+1)
		v2 := BlobOfSize(size, uint64(seed)*2+2)

		id, _ := s.CreateMultipart("b", "obj")
		swap := int(swapRaw) % 4
		for i := 0; i < 4; i++ {
			src := v1
			if i == swap {
				src = v2 // one part from the "wrong" version (Figure 14)
			}
			s.UploadPart(id, i+1, src.Slice(int64(i)*1024, 1024))
		}
		res, err := s.CompleteMultipart(id)
		if err != nil {
			return false
		}
		return res.ETag != v1.ETag() && res.ETag != v2.ETag()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
