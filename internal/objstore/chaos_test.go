package objstore

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/pricing"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// chaosStore builds a store with the given profile armed and telemetry on.
func chaosStore(t *testing.T, p chaos.Profile) (*simclock.Clock, *Store, *telemetry.Registry) {
	t.Helper()
	clk := simclock.New(epoch)
	reg := telemetry.NewRegistry()
	s := New(clk, cloud.MustLookup("aws:us-east-1"), pricing.NewMeter())
	s.SetTelemetry(reg)
	s.SetChaos(chaos.NewInjector(clk, p, reg))
	if err := s.CreateBucket("b", false); err != nil {
		t.Fatal(err)
	}
	return clk, s, reg
}

// TestChaosFailsEveryOpWithTelemetry: a rate-1 fail profile must refuse
// every operation class with ErrUnavailable and count each under its
// per-op failure counter (satellite: maybeFail covers all ops).
func TestChaosFailsEveryOpWithTelemetry(t *testing.T) {
	_, s, reg := chaosStore(t, chaos.Profile{Name: "t", ObjFailRate: 1})

	calls := map[string]func() error{
		OpPut:       func() error { _, err := s.Put("b", "k", BlobOfSize(100, 1)); return err },
		OpGet:       func() error { _, err := s.Get("b", "k"); return err },
		OpGetRange:  func() error { _, _, err := s.GetRange("b", "k", 0, 10); return err },
		OpDelete:    func() error { return s.Delete("b", "k") },
		OpCopy:      func() error { _, err := s.Copy("b", "k", "b", "k2", ""); return err },
		OpList:      func() error { _, err := s.List("b"); return err },
		OpMpuCreate: func() error { _, err := s.CreateMultipart("b", "k"); return err },
	}
	for op, call := range calls {
		if err := call(); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("%s under rate-1 chaos returned %v, want ErrUnavailable", op, err)
		}
		if got := reg.Counter("objstore.failures." + op).Value(); got < 1 {
			t.Fatalf("objstore.failures.%s = %d, want >= 1", op, got)
		}
	}
	if s.Stats().Failures < int64(len(calls)) {
		t.Fatalf("Stats().Failures = %d, want >= %d", s.Stats().Failures, len(calls))
	}
}

// TestChaosSlowRequestsConsumeClock: slow-request injection adds latency
// on the virtual clock without failing the request.
func TestChaosSlowRequestsConsumeClock(t *testing.T) {
	clk, s, _ := chaosStore(t, chaos.Profile{
		Name: "t", ObjSlowRate: 1, ObjSlowMax: 800 * time.Millisecond,
	})
	_, base, _ := chaosStore(t, chaos.Profile{})

	var slow, fast time.Duration
	clk.Go(func() {
		start := clk.Now()
		if _, err := s.Put("b", "k", BlobOfSize(100, 1)); err != nil {
			t.Errorf("slow put failed: %v", err)
		}
		slow = clk.Now().Sub(start)
	})
	clk.Quiesce()
	bclk := base.clock
	bclk.Go(func() {
		start := bclk.Now()
		if _, err := base.Put("b", "k", BlobOfSize(100, 1)); err != nil {
			t.Errorf("baseline put failed: %v", err)
		}
		fast = bclk.Now().Sub(start)
	})
	bclk.Quiesce()
	if slow <= fast {
		t.Fatalf("slow-injected put (%v) not slower than baseline (%v)", slow, fast)
	}
}

// TestChaosMultipartVanishes: a vanished upload surfaces as
// ErrNoSuchUpload on the next part operation, like a lifecycle abort.
func TestChaosMultipartVanishes(t *testing.T) {
	_, s, _ := chaosStore(t, chaos.Profile{Name: "t", ObjMpuVanishRate: 1})
	id, err := s.CreateMultipart("b", "k")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.UploadPart(id, 1, BlobOfSize(100, 1)); !errors.Is(err, ErrNoSuchUpload) {
		t.Fatalf("UploadPart on vanished MPU = %v, want ErrNoSuchUpload", err)
	}
}

// TestChaosNotificationLossAndDuplication exercises delivery chaos at the
// store level: loss drops the event entirely, duplication delivers it
// twice, both counted.
func TestChaosNotificationLossAndDuplication(t *testing.T) {
	clk, s, reg := chaosStore(t, chaos.Profile{Name: "t", NotifyLossRate: 1})
	var mu sync.Mutex
	got := 0
	if err := s.Subscribe("b", func(Event) { mu.Lock(); got++; mu.Unlock() }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("b", "k", BlobOfSize(100, 1)); err != nil {
		t.Fatal(err)
	}
	clk.Quiesce()
	if got != 0 {
		t.Fatalf("%d notifications delivered under rate-1 loss, want 0", got)
	}
	if s.Stats().NotifyDropped != 1 || reg.Counter("objstore.notify.dropped").Value() != 1 {
		t.Fatalf("dropped stats = %d, want 1", s.Stats().NotifyDropped)
	}

	clk2, s2, reg2 := chaosStore(t, chaos.Profile{Name: "t", NotifyDupRate: 1})
	got2 := 0
	if err := s2.Subscribe("b", func(Event) { mu.Lock(); got2++; mu.Unlock() }); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Put("b", "k", BlobOfSize(100, 1)); err != nil {
		t.Fatal(err)
	}
	clk2.Quiesce()
	if got2 != 2 {
		t.Fatalf("%d deliveries under rate-1 duplication, want 2", got2)
	}
	if s2.Stats().NotifyDuped != 1 || reg2.Counter("objstore.notify.duplicated").Value() != 1 {
		t.Fatalf("duplicated stats = %d, want 1", s2.Stats().NotifyDuped)
	}
}
