package objstore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cloud"
	"repro/internal/pricing"
	"repro/internal/simclock"
)

// benchBucket seeds one bucket with n tiny objects, bypassing the metered
// Put path (request latency and fees are irrelevant here) but going
// through the same internal state so the sorted-key cache behaves as in
// production. Shared across benchmark runs — listings never mutate it.
var benchBucket struct {
	once sync.Once
	s    *Store
}

const benchKeys = 1_000_000

func seededStore(b *testing.B) *Store {
	b.Helper()
	benchBucket.once.Do(func() {
		s := New(simclock.New(epoch), cloud.MustLookup("aws:us-east-1"), pricing.NewMeter())
		if err := s.CreateBucket("b", false); err != nil {
			b.Fatal(err)
		}
		s.mu.Lock()
		bk := s.buckets["b"]
		for i := 0; i < benchKeys; i++ {
			key := fmt.Sprintf("k-%08d", i)
			bk.objects[key] = &Object{Meta: Meta{Key: key, Size: 1, ETag: key, Seq: uint64(i) + 1}}
		}
		bk.sortedOK = false
		s.mu.Unlock()
		benchBucket.s = s
	})
	return benchBucket.s
}

// BenchmarkScanMillionKeys streams the full listing without materializing
// it: memory stays one page regardless of bucket size.
func BenchmarkScanMillionKeys(b *testing.B) {
	s := seededStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := s.Scan("b", "", "")
		n := 0
		for _, ok := sc.Next(); ok; _, ok = sc.Next() {
			n++
		}
		if n != benchKeys || sc.Err() != nil {
			b.Fatalf("scanned %d keys, err %v", n, sc.Err())
		}
	}
}

// BenchmarkListMillionKeys drains the same listing into one slice — the
// convenience wrapper's cost ceiling over Scan.
func BenchmarkListMillionKeys(b *testing.B) {
	s := seededStore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metas, err := s.List("b")
		if err != nil || len(metas) != benchKeys {
			b.Fatalf("listed %d keys, err %v", len(metas), err)
		}
	}
}
