// Package objstore simulates a cloud object storage service (S3, Blob
// Storage, GCS): buckets of immutable objects with PUT/GET/range-GET/
// DELETE, multipart upload, server-side copy and compose, optional
// versioning, per-request latency and fees, and event notifications
// delivered after a platform-dependent delay.
//
// The store models request round-trips only; wide-area data transfer time
// is the caller's concern (see internal/netsim), mirroring how a real
// client experiences the two separately.
package objstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/pricing"
	"repro/internal/simclock"
	"repro/internal/simrand"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Operation classes, used to scope fault injection and per-op failure
// telemetry (objstore.failures.<op>).
const (
	OpPut         = "put"
	OpGet         = "get"
	OpGetRange    = "get_range"
	OpDelete      = "delete"
	OpCopy        = "copy"
	OpList        = "list"
	OpMpuCreate   = "mpu_create"
	OpMpuUpload   = "mpu_upload"
	OpMpuComplete = "mpu_complete"
	OpMpuAbort    = "mpu_abort"
	OpMpuList     = "mpu_list"
)

// Ops lists every injectable operation class.
var Ops = []string{OpPut, OpGet, OpGetRange, OpDelete, OpCopy, OpList, OpMpuCreate, OpMpuUpload, OpMpuComplete, OpMpuAbort, OpMpuList}

// Errors returned by store operations.
var (
	ErrNoSuchBucket       = errors.New("objstore: no such bucket")
	ErrNoSuchKey          = errors.New("objstore: no such key")
	ErrNoSuchUpload       = errors.New("objstore: no such multipart upload")
	ErrPreconditionFailed = errors.New("objstore: precondition failed")
)

// EventType distinguishes object notifications.
type EventType string

// Notification types emitted by the store.
const (
	EventPut    EventType = "put"
	EventDelete EventType = "delete"
)

// Event is the JSON-like notification a cloud platform generates when an
// object is created or deleted (§5.1 stage 1).
type Event struct {
	Type   EventType
	Bucket string
	Key    string
	Size   int64
	ETag   string
	Seq    uint64    // monotonically increasing per store; orders versions
	Time   time.Time // when the triggering operation completed
	// Origin tags writes made by a replication system (the metadata real
	// services attach as x-amz-replication-status and the like), so
	// sibling rules can avoid re-replicating replica writes — the loop
	// breaker for active-active topologies.
	Origin string
}

// Meta is object metadata returned by Head.
type Meta struct {
	Key     string
	Size    int64
	ETag    string
	Seq     uint64
	Created time.Time
}

// Object is a stored object version.
type Object struct {
	Meta
	Blob Blob
}

// PutResult reports the outcome of a write.
type PutResult struct {
	ETag string
	Seq  uint64
}

type bucket struct {
	name       string
	versioning bool
	objects    map[string]*Object
	// sorted caches the bucket's key set in order; sortedOK goes false when
	// a key is created or deleted (overwrites keep the set) and the cache is
	// rebuilt lazily on the next listing. Without it every LIST page
	// re-collects and re-sorts the whole bucket — O(n log n) per page, which
	// at million-key buckets turns one full listing into an n²logn scan.
	sorted      []string
	sortedOK    bool
	subscribers []func(Event)
	// noncurrent counts retained non-current versions and their bytes when
	// versioning is enabled (for storage-cost estimates).
	noncurrentCount int64
	noncurrentBytes int64
}

// sortedKeysLocked returns the bucket's key set in order, rebuilding the
// cache if mutations invalidated it. Caller holds s.mu.
func (b *bucket) sortedKeysLocked() []string {
	if !b.sortedOK {
		b.sorted = b.sorted[:0]
		for k := range b.objects {
			b.sorted = append(b.sorted, k)
		}
		sort.Strings(b.sorted)
		b.sortedOK = true
	}
	return b.sorted
}

// Store is one region's object storage service.
type Store struct {
	clock  *simclock.Clock
	region cloud.Region
	book   pricing.Book
	meter  *pricing.Meter

	putLatency  stats.Normal
	getLatency  stats.Normal
	copyLatency stats.Normal
	notifyDelay stats.Normal

	mu          sync.Mutex
	rng         interface{ NormFloat64() float64 }
	failRng     interface{ Float64() float64 }
	failureRate float64
	chaos       *chaos.Injector
	buckets     map[string]*bucket
	uploads     map[string]*multipart
	seq         uint64

	failures      telemetry.Counter
	notifyDropped telemetry.Counter
	notifyDuped   telemetry.Counter

	// Optional run-wide registry instruments (nil no-ops until SetTelemetry).
	regFailures   *telemetry.Counter
	regFailByOp   map[string]*telemetry.Counter
	regNotifyDrop *telemetry.Counter
	regNotifyDup  *telemetry.Counter
	putHist       *telemetry.Histogram
	getHist       *telemetry.Histogram
	copyHist      *telemetry.Histogram
	notifyHist    *telemetry.Histogram
}

type multipart struct {
	bucket  string
	key     string
	origin  string
	created time.Time
	parts   map[int]Blob
}

// New returns a Store for region, metering request fees to meter.
// Notification delay defaults to the platform's calibrated value.
func New(clock *simclock.Clock, region cloud.Region, meter *pricing.Meter) *Store {
	nd := notifyDelayFor(region.Provider)
	return &Store{
		clock:       clock,
		region:      region,
		book:        pricing.BookFor(region.Provider),
		meter:       meter,
		putLatency:  stats.N(0.030, 0.010),
		getLatency:  stats.N(0.020, 0.008),
		copyLatency: stats.N(0.060, 0.020),
		notifyDelay: nd,
		rng:         simrand.New("objstore", string(region.ID())),
		failRng:     simrand.New("objstore-fail", string(region.ID())),
		buckets:     make(map[string]*bucket),
		uploads:     make(map[string]*multipart),
	}
}

// notifyDelayFor returns the calibrated notification delivery delay T_n.
func notifyDelayFor(p cloud.Provider) stats.Normal {
	switch p {
	case cloud.AWS:
		return stats.N(0.35, 0.10)
	case cloud.Azure:
		return stats.N(0.50, 0.15)
	case cloud.GCP:
		return stats.N(0.45, 0.12)
	}
	return stats.N(0.4, 0.1)
}

// NotifyDelay exposes the store's notification delay distribution (the
// profiler and planner reason about it as T_n).
func (s *Store) NotifyDelay() stats.Normal { return s.notifyDelay }

// ErrUnavailable is the transient "503 Slow Down" class of failure
// injected by SetFailureRate.
var ErrUnavailable = errors.New("objstore: service unavailable (injected)")

// SetFailureRate makes a fraction of subsequent requests fail with
// ErrUnavailable after consuming their latency, for fault-tolerance
// testing (§6: AReplica retries on transient faults because PUT is
// idempotent).
func (s *Store) SetFailureRate(rate float64) {
	s.mu.Lock()
	s.failureRate = rate
	s.mu.Unlock()
}

// SetChaos points the store at an armed chaos injector (nil disables).
// Chaos faults compose with the legacy uniform SetFailureRate.
func (s *Store) SetChaos(ij *chaos.Injector) {
	s.mu.Lock()
	s.chaos = ij
	s.mu.Unlock()
}

// maybeFail decides one request's fate: first the legacy uniform failure
// rate, then the chaos injector's per-op verdict (which may also add a
// slow-request delay before succeeding or failing).
func (s *Store) maybeFail(op string) error {
	s.mu.Lock()
	fail := s.failureRate > 0 && s.failRng.Float64() < s.failureRate
	ij := s.chaos
	s.mu.Unlock()
	if !fail {
		v := ij.Obj(string(s.region.ID()), op)
		if v.Delay > 0 {
			s.clock.Sleep(v.Delay)
		}
		fail = v.Fail
	}
	if fail {
		s.failures.Inc()
		s.regFailures.Inc()
		s.regFailByOp[op].Inc()
		return ErrUnavailable
	}
	return nil
}

// mpuVanished consults chaos on whether an in-progress multipart upload
// was reclaimed under the caller; if so the upload is discarded and the
// request fails with ErrNoSuchUpload, as S3 answers after a lifecycle
// abort. Callers must not hold s.mu.
func (s *Store) mpuVanished(uploadID, op string) bool {
	s.mu.Lock()
	ij := s.chaos
	s.mu.Unlock()
	if !ij.ObjMpuVanish(string(s.region.ID())) {
		return false
	}
	s.mu.Lock()
	delete(s.uploads, uploadID)
	s.mu.Unlock()
	s.failures.Inc()
	s.regFailures.Inc()
	s.regFailByOp[op].Inc()
	return true
}

// Stats reports request counters.
type Stats struct {
	Failures      int64 // injected failures served
	NotifyDropped int64 // notifications lost to chaos
	NotifyDuped   int64 // duplicate notification deliveries injected
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Failures:      s.failures.Value(),
		NotifyDropped: s.notifyDropped.Value(),
		NotifyDuped:   s.notifyDuped.Value(),
	}
}

// SetTelemetry mirrors the store's activity into run-wide registry
// instruments: request-latency histograms per operation class, injected
// failures per operation, and the notification delivery delay T_n.
func (s *Store) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.regFailures = reg.Counter("objstore.failures")
	s.regFailByOp = make(map[string]*telemetry.Counter, len(Ops))
	for _, op := range Ops {
		s.regFailByOp[op] = reg.Counter("objstore.failures." + op)
	}
	s.regNotifyDrop = reg.Counter("objstore.notify.dropped")
	s.regNotifyDup = reg.Counter("objstore.notify.duplicated")
	s.putHist = reg.Histogram("objstore.put.seconds")
	s.getHist = reg.Histogram("objstore.get.seconds")
	s.copyHist = reg.Histogram("objstore.copy.seconds")
	s.notifyHist = reg.Histogram("objstore.notify.seconds")
}

// Region returns the store's region.
func (s *Store) Region() cloud.Region { return s.region }

func (s *Store) sleep(d stats.Normal, h *telemetry.Histogram) {
	s.mu.Lock()
	v := d.Mu + d.Sigma*s.rng.NormFloat64()
	s.mu.Unlock()
	if v < 0.002 {
		v = 0.002
	}
	s.clock.Sleep(simclock.Seconds(v))
	h.Observe(v)
}

// CreateBucket creates a bucket; versioning retains non-current versions.
// Creating an existing bucket is an error.
func (s *Store) CreateBucket(name string, versioning bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; ok {
		return fmt.Errorf("objstore: bucket %q already exists", name)
	}
	s.buckets[name] = &bucket{name: name, versioning: versioning, objects: make(map[string]*Object)}
	return nil
}

// Subscribe registers fn to receive the bucket's object notifications.
func (s *Store) Subscribe(bucketName string, fn func(Event)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return ErrNoSuchBucket
	}
	b.subscribers = append(b.subscribers, fn)
	return nil
}

// emitLocked schedules delivery of ev to the bucket's subscribers after the
// notification delay. Chaos may drop the delivery entirely, stretch its
// delay (reordering it past later events), or schedule a duplicate copy —
// the at-least-once, unordered contract real bucket notifications carry.
// Caller holds s.mu.
func (s *Store) emitLocked(b *bucket, ev Event) {
	var subs []func(Event)
	subs = append(subs, b.subscribers...)
	if len(subs) == 0 {
		return
	}
	v := s.chaos.Notify(string(s.region.ID()))
	if v.Drop {
		s.notifyDropped.Inc()
		s.regNotifyDrop.Inc()
		return
	}
	delay := s.notifyDelay.Mu + s.notifyDelay.Sigma*s.rng.NormFloat64()
	if delay < 0.05 {
		delay = 0.05
	}
	s.notifyHist.Observe(delay)
	deliver := func() {
		for _, fn := range subs {
			fn(ev)
		}
	}
	s.clock.DelayCall(simclock.Seconds(delay)+v.Extra, deliver)
	if v.Duplicate {
		s.notifyDuped.Inc()
		s.regNotifyDup.Inc()
		s.clock.DelayCall(simclock.Seconds(delay)+v.Extra+v.DupExtra, deliver)
	}
}

// storeLocked installs blob as the new current version of key.
func (s *Store) storeLocked(b *bucket, key string, blob Blob) PutResult {
	return s.storeOriginLocked(b, key, blob, "")
}

// storeOriginLocked is storeLocked with an origin tag on the notification.
func (s *Store) storeOriginLocked(b *bucket, key string, blob Blob, origin string) PutResult {
	s.seq++
	old, existed := b.objects[key]
	if existed && b.versioning {
		b.noncurrentCount++
		b.noncurrentBytes += old.Size
	}
	if !existed {
		b.sortedOK = false
	}
	obj := &Object{
		Meta: Meta{Key: key, Size: blob.Size, ETag: blob.ETag(), Seq: s.seq, Created: s.clock.Now()},
		Blob: blob,
	}
	b.objects[key] = obj
	s.emitLocked(b, Event{Type: EventPut, Bucket: b.name, Key: key, Size: blob.Size,
		ETag: obj.ETag, Seq: obj.Seq, Time: obj.Created, Origin: origin})
	return PutResult{ETag: obj.ETag, Seq: obj.Seq}
}

// Put writes blob as the new version of key.
func (s *Store) Put(bucketName, key string, blob Blob) (PutResult, error) {
	return s.PutWithOrigin(bucketName, key, blob, "")
}

// PutWithOrigin is Put with an origin tag on the resulting notification;
// replication engines use it so their own writes are distinguishable from
// application writes.
func (s *Store) PutWithOrigin(bucketName, key string, blob Blob, origin string) (PutResult, error) {
	s.sleep(s.putLatency, s.putHist)
	s.meter.Add("obj:put", s.book.ObjPut)
	if err := s.maybeFail(OpPut); err != nil {
		return PutResult{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return PutResult{}, ErrNoSuchBucket
	}
	return s.storeOriginLocked(b, key, blob, origin), nil
}

// get is the shared read path; op scopes the fault-injection decision so
// ranged reads fail independently of whole-object reads.
func (s *Store) get(op, bucketName, key string) (Object, error) {
	s.sleep(s.getLatency, s.getHist)
	s.meter.Add("obj:get", s.book.ObjGet)
	if err := s.maybeFail(op); err != nil {
		return Object{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return Object{}, ErrNoSuchBucket
	}
	obj, ok := b.objects[key]
	if !ok {
		return Object{}, ErrNoSuchKey
	}
	return *obj, nil
}

// Get returns the current version of key.
func (s *Store) Get(bucketName, key string) (Object, error) {
	return s.get(OpGet, bucketName, key)
}

// Head returns the current metadata of key (same fee class as GET).
func (s *Store) Head(bucketName, key string) (Meta, error) {
	obj, err := s.get(OpGet, bucketName, key)
	return obj.Meta, err
}

// GetRange returns the slice [off, off+n) of the current version along
// with the full object's ETag, mirroring a ranged GET with its response
// headers.
func (s *Store) GetRange(bucketName, key string, off, n int64) (Blob, string, error) {
	obj, err := s.get(OpGetRange, bucketName, key)
	if err != nil {
		return Blob{}, "", err
	}
	if off < 0 || off+n > obj.Size {
		return Blob{}, "", fmt.Errorf("objstore: range [%d,%d) outside object of size %d", off, off+n, obj.Size)
	}
	return obj.Blob.Slice(off, n), obj.ETag, nil
}

// Delete removes key's current version. Deleting a missing key succeeds,
// as in S3.
func (s *Store) Delete(bucketName, key string) error {
	return s.DeleteWithOrigin(bucketName, key, "")
}

// DeleteWithOrigin is Delete with an origin tag on the notification.
func (s *Store) DeleteWithOrigin(bucketName, key string, origin string) error {
	s.sleep(s.putLatency, s.putHist)
	s.meter.Add("obj:put", s.book.ObjPut)
	if err := s.maybeFail(OpDelete); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return ErrNoSuchBucket
	}
	obj, existed := b.objects[key]
	if existed {
		if b.versioning {
			b.noncurrentCount++
			b.noncurrentBytes += obj.Size
		}
		delete(b.objects, key)
		b.sortedOK = false
		s.seq++
		s.emitLocked(b, Event{Type: EventDelete, Bucket: b.name, Key: key, Seq: s.seq,
			Time: s.clock.Now(), Origin: origin})
	}
	return nil
}

// Copy performs an intra-region server-side copy. If ifMatch is non-empty
// the copy only proceeds when the source's current ETag matches.
func (s *Store) Copy(srcBucket, srcKey, dstBucket, dstKey, ifMatch string) (PutResult, error) {
	return s.CopyWithOrigin(srcBucket, srcKey, dstBucket, dstKey, ifMatch, "")
}

// CopyWithOrigin is Copy with an origin tag on the notification.
func (s *Store) CopyWithOrigin(srcBucket, srcKey, dstBucket, dstKey, ifMatch, origin string) (PutResult, error) {
	s.sleep(s.copyLatency, s.copyHist)
	s.meter.Add("obj:put", s.book.ObjPut)
	if err := s.maybeFail(OpCopy); err != nil {
		return PutResult{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sb, ok := s.buckets[srcBucket]
	if !ok {
		return PutResult{}, ErrNoSuchBucket
	}
	db, ok := s.buckets[dstBucket]
	if !ok {
		return PutResult{}, ErrNoSuchBucket
	}
	obj, ok := sb.objects[srcKey]
	if !ok {
		return PutResult{}, ErrNoSuchKey
	}
	if ifMatch != "" && obj.ETag != ifMatch {
		return PutResult{}, ErrPreconditionFailed
	}
	return s.storeOriginLocked(db, dstKey, obj.Blob, origin), nil
}

// Compose concatenates the current versions of srcKeys into dstKey
// server-side (GCS compose / S3 multipart-copy idiom). srcETags, when
// non-nil, are per-source preconditions.
func (s *Store) Compose(bucketName, dstKey string, srcKeys []string, srcETags []string) (PutResult, error) {
	return s.ComposeWithOrigin(bucketName, dstKey, srcKeys, srcETags, "")
}

// ComposeWithOrigin is Compose with an origin tag on the notification.
func (s *Store) ComposeWithOrigin(bucketName, dstKey string, srcKeys []string, srcETags []string, origin string) (PutResult, error) {
	s.sleep(s.copyLatency, s.copyHist)
	s.meter.Add("obj:put", s.book.ObjPut)
	if err := s.maybeFail(OpCopy); err != nil {
		return PutResult{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return PutResult{}, ErrNoSuchBucket
	}
	parts := make([]Blob, 0, len(srcKeys))
	for i, k := range srcKeys {
		obj, ok := b.objects[k]
		if !ok {
			return PutResult{}, fmt.Errorf("%w: %s", ErrNoSuchKey, k)
		}
		if srcETags != nil && srcETags[i] != "" && obj.ETag != srcETags[i] {
			return PutResult{}, ErrPreconditionFailed
		}
		parts = append(parts, obj.Blob)
	}
	return s.storeOriginLocked(b, dstKey, ConcatBlobs(parts...), origin), nil
}

// CreateMultipart starts a multipart upload for key and returns its id.
func (s *Store) CreateMultipart(bucketName, key string) (string, error) {
	return s.CreateMultipartWithOrigin(bucketName, key, "")
}

// CreateMultipartWithOrigin is CreateMultipart with an origin tag carried
// through to the completion notification.
func (s *Store) CreateMultipartWithOrigin(bucketName, key, origin string) (string, error) {
	s.sleep(s.putLatency, s.putHist)
	s.meter.Add("obj:put", s.book.ObjPut)
	if err := s.maybeFail(OpMpuCreate); err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[bucketName]; !ok {
		return "", ErrNoSuchBucket
	}
	s.seq++
	id := fmt.Sprintf("mpu-%d", s.seq)
	s.uploads[id] = &multipart{bucket: bucketName, key: key, origin: origin,
		created: s.clock.Now(), parts: make(map[int]Blob)}
	return id, nil
}

// UploadPart stores one part of a multipart upload. Parts may arrive in
// any order and re-uploading a part number overwrites it.
func (s *Store) UploadPart(uploadID string, partNum int, blob Blob) (string, error) {
	s.sleep(s.putLatency, s.putHist)
	s.meter.Add("obj:put", s.book.ObjPut)
	if err := s.maybeFail(OpMpuUpload); err != nil {
		return "", err
	}
	if s.mpuVanished(uploadID, OpMpuUpload) {
		return "", ErrNoSuchUpload
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	up, ok := s.uploads[uploadID]
	if !ok {
		return "", ErrNoSuchUpload
	}
	up.parts[partNum] = blob
	return blob.ETag(), nil
}

// CompleteMultipart assembles the uploaded parts in part-number order into
// the target object and finishes the upload.
func (s *Store) CompleteMultipart(uploadID string) (PutResult, error) {
	s.sleep(s.putLatency, s.putHist)
	s.meter.Add("obj:put", s.book.ObjPut)
	if err := s.maybeFail(OpMpuComplete); err != nil {
		return PutResult{}, err
	}
	if s.mpuVanished(uploadID, OpMpuComplete) {
		return PutResult{}, ErrNoSuchUpload
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	up, ok := s.uploads[uploadID]
	if !ok {
		return PutResult{}, ErrNoSuchUpload
	}
	nums := make([]int, 0, len(up.parts))
	for n := range up.parts {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	parts := make([]Blob, len(nums))
	for i, n := range nums {
		parts[i] = up.parts[n]
	}
	b := s.buckets[up.bucket]
	delete(s.uploads, uploadID)
	return s.storeOriginLocked(b, up.key, ConcatBlobs(parts...), up.origin), nil
}

// AbortMultipart discards an in-progress upload: a metered request
// (S3 aborts are free; Azure and GCS bill it write-class) that can fail
// transiently like any other. Aborting an unknown upload succeeds
// silently, as in S3 — recovery paths abort defensively.
func (s *Store) AbortMultipart(uploadID string) error {
	s.sleep(s.putLatency, s.putHist)
	s.meter.Add("obj:abort", s.book.ObjAbort)
	if err := s.maybeFail(OpMpuAbort); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.uploads, uploadID)
	return nil
}

// MultipartInfo describes one in-progress multipart upload, as the
// ListMultipartUploads APIs report it (part count and byte footprint are
// what lifecycle/GC policies bill and reclaim).
type MultipartInfo struct {
	ID      string
	Bucket  string
	Key     string
	Origin  string
	Created time.Time
	Parts   int
	Bytes   int64
}

// HeadMultipart reports an in-progress upload's state (a ListParts-class
// request at GET latency). It returns ErrNoSuchUpload after completion or
// abort, which is how a resuming task learns whether its checkpointed MPU
// still exists.
func (s *Store) HeadMultipart(uploadID string) (MultipartInfo, error) {
	s.sleep(s.getLatency, s.getHist)
	s.meter.Add("obj:get", s.book.ObjGet)
	if err := s.maybeFail(OpMpuList); err != nil {
		return MultipartInfo{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	up, ok := s.uploads[uploadID]
	if !ok {
		return MultipartInfo{}, ErrNoSuchUpload
	}
	return s.mpuInfoLocked(uploadID, up), nil
}

// ListMultipartsPage returns up to MaxListPage in-progress uploads for the
// bucket whose ids sort strictly after startAfter, in id order — one
// metered LIST request, as S3's paginated ListMultipartUploads.
func (s *Store) ListMultipartsPage(bucketName, startAfter string) (page []MultipartInfo, truncated bool, err error) {
	s.sleep(s.getLatency, s.getHist)
	if err := s.maybeFail(OpMpuList); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[bucketName]; !ok {
		return nil, false, ErrNoSuchBucket
	}
	s.meter.Add("obj:list", s.book.ObjList)
	ids := make([]string, 0, len(s.uploads))
	for id, up := range s.uploads {
		if up.bucket == bucketName && id > startAfter {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	if len(ids) > MaxListPage {
		ids, truncated = ids[:MaxListPage], true
	}
	page = make([]MultipartInfo, len(ids))
	for i, id := range ids {
		page[i] = s.mpuInfoLocked(id, s.uploads[id])
	}
	return page, truncated, nil
}

// MultipartScanner streams a bucket's in-progress uploads page by page,
// mirroring Scanner for object listings.
type MultipartScanner struct {
	s      *Store
	bucket string
	after  string
	page   []MultipartInfo
	i      int
	done   bool
	err    error
}

// ScanMultiparts starts a streaming listing of the bucket's in-progress
// multipart uploads in id order.
func (s *Store) ScanMultiparts(bucketName string) *MultipartScanner {
	return &MultipartScanner{s: s, bucket: bucketName}
}

// Next returns the next in-progress upload, fetching pages as needed.
func (sc *MultipartScanner) Next() (MultipartInfo, bool) {
	for sc.i >= len(sc.page) {
		if sc.done || sc.err != nil {
			return MultipartInfo{}, false
		}
		page, truncated, err := sc.s.ListMultipartsPage(sc.bucket, sc.after)
		if err != nil {
			sc.err = err
			return MultipartInfo{}, false
		}
		sc.page, sc.i, sc.done = page, 0, !truncated
		if len(page) > 0 {
			sc.after = page[len(page)-1].ID
		}
	}
	info := sc.page[sc.i]
	sc.i++
	return info, true
}

// Err returns the error that ended the scan, if any.
func (sc *MultipartScanner) Err() error { return sc.err }

// ListMultiparts enumerates the bucket's in-progress multipart uploads,
// sorted by id: a thin wrapper draining ScanMultiparts, one metered LIST
// request per page.
func (s *Store) ListMultiparts(bucketName string) ([]MultipartInfo, error) {
	var out []MultipartInfo
	sc := s.ScanMultiparts(bucketName)
	for info, ok := sc.Next(); ok; info, ok = sc.Next() {
		out = append(out, info)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// mpuInfoLocked snapshots one upload's info. Caller holds s.mu.
func (s *Store) mpuInfoLocked(id string, up *multipart) MultipartInfo {
	info := MultipartInfo{ID: id, Bucket: up.bucket, Key: up.key,
		Origin: up.origin, Created: up.created, Parts: len(up.parts)}
	for _, b := range up.parts {
		info.Bytes += b.Size
	}
	return info
}

// Usage reports a bucket's current and non-current storage footprint.
type Usage struct {
	Objects         int64
	Bytes           int64
	NoncurrentCount int64
	NoncurrentBytes int64
}

// BucketUsage returns storage statistics for a bucket (no request latency;
// an accounting helper).
func (s *Store) BucketUsage(bucketName string) (Usage, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return Usage{}, ErrNoSuchBucket
	}
	u := Usage{NoncurrentCount: b.noncurrentCount, NoncurrentBytes: b.noncurrentBytes}
	for _, o := range b.objects {
		u.Objects++
		u.Bytes += o.Size
	}
	return u, nil
}

// MaxListPage is the largest number of keys one LIST request returns,
// mirroring the 1000-key page caps of S3, Blob Storage and GCS.
const MaxListPage = 1000

// ListPage returns up to max metadata entries, in key order, for objects
// whose keys start with prefix and sort strictly after startAfter. Each
// call is one metered LIST request (ObjList pricing) with GET-class
// latency; truncated reports whether further pages remain. max values
// outside (0, MaxListPage] are clamped to MaxListPage.
func (s *Store) ListPage(bucketName, prefix, startAfter string, max int) (page []Meta, truncated bool, err error) {
	s.sleep(s.getLatency, s.getHist)
	if err := s.maybeFail(OpList); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return nil, false, ErrNoSuchBucket
	}
	s.meter.Add("obj:list", s.book.ObjList)
	if max <= 0 || max > MaxListPage {
		max = MaxListPage
	}
	keys := b.sortedKeysLocked()
	// The page starts at the first key both inside the prefix range and
	// strictly after the cursor — two binary searches on the cached order.
	lo := sort.SearchStrings(keys, prefix)
	if startAfter != "" {
		if after := sort.Search(len(keys), func(i int) bool { return keys[i] > startAfter }); after > lo {
			lo = after
		}
	}
	hi := lo
	for hi < len(keys) && hi-lo < max && strings.HasPrefix(keys[hi], prefix) {
		hi++
	}
	truncated = hi < len(keys) && strings.HasPrefix(keys[hi], prefix)
	page = make([]Meta, hi-lo)
	for i, k := range keys[lo:hi] {
		page[i] = b.objects[k].Meta
	}
	return page, truncated, nil
}

// Scanner streams a bucket listing page by page: each page fetch is one
// metered LIST request, but the caller consumes entries one at a time and
// the full listing is never materialized. A transient page failure ends
// the scan with Err; LastKey is the resume cursor for a fresh Scan.
type Scanner struct {
	s              *Store
	bucket, prefix string
	after          string
	page           []Meta
	i              int
	pages          int
	done           bool
	err            error
}

// Scan starts a streaming listing of keys under prefix sorting strictly
// after startAfter. No request is issued until the first Next call.
func (s *Store) Scan(bucketName, prefix, startAfter string) *Scanner {
	return &Scanner{s: s, bucket: bucketName, prefix: prefix, after: startAfter}
}

// Next returns the next entry in key order, fetching the next page when
// the current one is exhausted. It returns false at the end of the
// listing or on error (check Err).
func (sc *Scanner) Next() (Meta, bool) {
	for sc.i >= len(sc.page) {
		if sc.done || sc.err != nil {
			return Meta{}, false
		}
		page, truncated, err := sc.s.ListPage(sc.bucket, sc.prefix, sc.after, MaxListPage)
		sc.pages++
		if err != nil {
			sc.err = err
			return Meta{}, false
		}
		sc.page, sc.i, sc.done = page, 0, !truncated
		if len(page) > 0 {
			sc.after = page[len(page)-1].Key
		}
	}
	m := sc.page[sc.i]
	sc.i++
	return m, true
}

// Err returns the error that ended the scan, if any.
func (sc *Scanner) Err() error { return sc.err }

// Pages returns how many LIST requests the scan has issued.
func (sc *Scanner) Pages() int { return sc.pages }

// LastKey returns the last key handed out by Next — the startAfter cursor
// a caller resumes from after a transient failure.
func (sc *Scanner) LastKey() string {
	if sc.i > 0 && sc.i <= len(sc.page) {
		return sc.page[sc.i-1].Key
	}
	return sc.after
}

// List returns the current metadata of every object in a bucket, sorted by
// key: a thin wrapper draining the Scan iterator, costing one LIST request
// per MaxListPage keys. Callers that can process entries incrementally
// should Scan instead.
func (s *Store) List(bucketName string) ([]Meta, error) {
	var out []Meta
	sc := s.Scan(bucketName, "", "")
	for m, ok := sc.Next(); ok; m, ok = sc.Next() {
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// TotalUsage sums storage across all buckets (accounting helper).
func (s *Store) TotalUsage() Usage {
	s.mu.Lock()
	defer s.mu.Unlock()
	var u Usage
	for _, b := range s.buckets {
		u.NoncurrentCount += b.noncurrentCount
		u.NoncurrentBytes += b.noncurrentBytes
		for _, o := range b.objects {
			u.Objects++
			u.Bytes += o.Size
		}
	}
	return u
}

// Keys returns the bucket's current keys, sorted (test helper; no latency).
func (s *Store) Keys(bucketName string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return nil
	}
	keys := make([]string, 0, len(b.objects))
	for k := range b.objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
