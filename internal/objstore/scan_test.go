package objstore

import (
	"fmt"
	"testing"
)

func TestScanEmptyBucket(t *testing.T) {
	_, s, _ := newStore(t)
	sc := s.Scan("b", "", "")
	if _, ok := sc.Next(); ok {
		t.Fatal("empty bucket yielded an entry")
	}
	if sc.Err() != nil {
		t.Fatalf("err = %v", sc.Err())
	}
	if sc.Pages() != 1 {
		t.Fatalf("pages = %d, want 1 (one LIST confirming emptiness)", sc.Pages())
	}
	got, err := s.List("b")
	if err != nil || len(got) != 0 {
		t.Fatalf("List = %v entries, err %v", len(got), err)
	}
}

func TestScanExactlyOnePage(t *testing.T) {
	_, s, _ := newStore(t)
	for i := 0; i < MaxListPage; i++ {
		s.Put("b", fmt.Sprintf("k-%06d", i), BlobOfSize(1, uint64(i)))
	}
	sc := s.Scan("b", "", "")
	n := 0
	last := ""
	for m, ok := sc.Next(); ok; m, ok = sc.Next() {
		if m.Key <= last {
			t.Fatalf("out of order: %q after %q", m.Key, last)
		}
		last = m.Key
		n++
	}
	if sc.Err() != nil {
		t.Fatalf("err = %v", sc.Err())
	}
	if n != MaxListPage {
		t.Fatalf("scanned %d entries, want %d", n, MaxListPage)
	}
	// A listing of exactly MaxListPage keys must not be reported as
	// truncated: one full page suffices, no empty trailing fetch.
	if sc.Pages() != 1 {
		t.Fatalf("pages = %d, want 1 for an exactly-full page", sc.Pages())
	}

	// One key past the boundary costs exactly one more page.
	s.Put("b", "k-zzzzzz", BlobOfSize(1, 9))
	sc = s.Scan("b", "", "")
	n = 0
	for _, ok := sc.Next(); ok; _, ok = sc.Next() {
		n++
	}
	if n != MaxListPage+1 || sc.Pages() != 2 {
		t.Fatalf("scanned %d entries over %d pages, want %d over 2", n, sc.Pages(), MaxListPage+1)
	}
}

func TestScanStartAfterLastKey(t *testing.T) {
	_, s, _ := newStore(t)
	keys := []string{"a", "b", "c"}
	for i, k := range keys {
		s.Put("b", k, BlobOfSize(1, uint64(i)))
	}
	// startAfter strictly past every key: the scan is empty, and the
	// page-level call agrees (no entries, not truncated).
	page, truncated, err := s.ListPage("b", "", "c", 0)
	if err != nil || truncated || len(page) != 0 {
		t.Fatalf("ListPage after last key = %d entries truncated=%v err=%v", len(page), truncated, err)
	}
	sc := s.Scan("b", "", "c")
	if _, ok := sc.Next(); ok {
		t.Fatal("scan after last key yielded an entry")
	}
	if sc.Err() != nil {
		t.Fatalf("err = %v", sc.Err())
	}
	// Resuming from LastKey mid-scan skips exactly the consumed prefix.
	sc = s.Scan("b", "", "")
	if m, ok := sc.Next(); !ok || m.Key != "a" {
		t.Fatalf("first = %v ok=%v", m.Key, ok)
	}
	resumed := s.Scan("b", "", sc.LastKey())
	var rest []string
	for m, ok := resumed.Next(); ok; m, ok = resumed.Next() {
		rest = append(rest, m.Key)
	}
	if len(rest) != 2 || rest[0] != "b" || rest[1] != "c" {
		t.Fatalf("resumed scan = %v, want [b c]", rest)
	}
}
