package trace

import (
	"sort"
	"time"

	"repro/internal/simclock"
)

// Replay drives a trace against a system under test on the virtual clock:
// each operation's apply callback runs as its own actor at the operation's
// trace time. Replay returns once every operation has been *issued*; the
// caller quiesces the clock to drain in-flight replication.
func Replay(clock *simclock.Clock, ops []Op, apply func(Op)) {
	start := clock.Now()
	for _, op := range ops {
		target := start.Add(op.At)
		if d := target.Sub(clock.Now()); d > 0 {
			clock.Sleep(d)
		}
		op := op
		clock.GoCall(func() { apply(op) })
	}
}

// WindowedPercentile computes a per-window percentile over (time, delay)
// samples — the paper's per-minute p99.99 replication delay (Figure 23).
// Windows with no samples carry the previous window's value.
func WindowedPercentile(times []time.Time, delays []float64, start time.Time, window time.Duration, pct float64) []float64 {
	if len(times) != len(delays) || len(times) == 0 {
		return nil
	}
	type sample struct {
		w int
		v float64
	}
	var maxW int
	samples := make([]sample, 0, len(times))
	for i, tm := range times {
		w := int(tm.Sub(start) / window)
		if w < 0 {
			w = 0
		}
		if w > maxW {
			maxW = w
		}
		samples = append(samples, sample{w: w, v: delays[i]})
	}
	byWindow := make([][]float64, maxW+1)
	for _, s := range samples {
		byWindow[s.w] = append(byWindow[s.w], s.v)
	}
	out := make([]float64, maxW+1)
	prev := 0.0
	for w, vs := range byWindow {
		if len(vs) == 0 {
			out[w] = prev
			continue
		}
		sort.Float64s(vs)
		pos := pct / 100 * float64(len(vs)-1)
		i := int(pos)
		frac := pos - float64(i)
		v := vs[i]
		if i+1 < len(vs) {
			v = vs[i]*(1-frac) + vs[i+1]*frac
		}
		out[w] = v
		prev = v
	}
	return out
}
