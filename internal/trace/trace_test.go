package trace

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/simrand"
)

func TestSampleSizeDistributionShape(t *testing.T) {
	rng := simrand.New("size-test")
	const n = 100000
	var le1MB, le1GB, total int
	for i := 0; i < n; i++ {
		s := SampleSize(rng)
		if s <= 0 {
			t.Fatal("non-positive size")
		}
		if s <= 1<<20 {
			le1MB++
		}
		if s < 1<<30 {
			le1GB++
		}
		total++
	}
	// ~80% of PUTs at or below 1MB (Figure 2).
	if f := float64(le1MB) / float64(total); f < 0.75 || f < 0.70 || f > 0.85 {
		t.Fatalf("fraction <=1MB = %v, want ~0.80", f)
	}
	// >99.9% below 1GB.
	if f := float64(le1GB) / float64(total); f < 0.999 {
		t.Fatalf("fraction <1GB = %v, want >0.999", f)
	}
}

func TestGenerateBasicProperties(t *testing.T) {
	cfg := DefaultConfig(30*time.Minute, 200)
	ops := Generate(cfg)
	if len(ops) == 0 {
		t.Fatal("empty trace")
	}
	// Time-ordered and within the duration.
	for i := 1; i < len(ops); i++ {
		if ops[i].At < ops[i-1].At {
			t.Fatal("trace not time-ordered")
		}
	}
	if last := ops[len(ops)-1].At; last > cfg.Duration {
		t.Fatalf("op beyond duration: %v", last)
	}
	st := Summarize(ops)
	// Total volume near rate*duration.
	if st.Ops < 3000 || st.Ops > 20000 {
		t.Fatalf("ops = %d for 30min@200/min", st.Ops)
	}
	if st.Deletes == 0 || st.Puts == 0 {
		t.Fatalf("mix missing: %+v", st)
	}
	if f := float64(st.PutsLE1MB) / float64(st.Puts); f < 0.7 || f > 0.9 {
		t.Fatalf("small-object fraction = %v", f)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(10*time.Minute, 100)
	a, b := Generate(cfg), Generate(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = "other"
	c := Generate(cfg2)
	if len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestRatesFluctuate(t *testing.T) {
	ops := Generate(DefaultConfig(60*time.Minute, 300))
	perMin := make([]int, 61)
	for _, op := range ops {
		perMin[int(op.At.Minutes())]++
	}
	lo, hi := perMin[0], perMin[0]
	for _, n := range perMin[:60] {
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if hi < 2*lo+1 {
		t.Fatalf("per-minute rates too flat: min %d max %d", lo, hi)
	}
}

func TestSizeHistogramCapacityInTail(t *testing.T) {
	ops := Generate(DefaultConfig(60*time.Minute, 500))
	labels, counts, capacity := SizeHistogram(ops)
	if len(labels) != len(counts) || len(labels) != len(capacity) {
		t.Fatal("histogram shape mismatch")
	}
	var smallCount, totalCount, smallCap, totalCap int64
	for i := range labels {
		totalCount += counts[i]
		totalCap += capacity[i]
		if i <= 4 { // up to 1MB
			smallCount += counts[i]
			smallCap += capacity[i]
		}
	}
	if f := float64(smallCount) / float64(totalCount); f < 0.7 {
		t.Fatalf("count mass below 1MB = %v", f)
	}
	// Capacity concentrates in large objects even though counts do not.
	if f := float64(smallCap) / float64(totalCap); f > 0.2 {
		t.Fatalf("capacity mass below 1MB = %v, want tail-heavy", f)
	}
}

func TestThroughputSeries(t *testing.T) {
	ops := Generate(DefaultConfig(30*time.Minute, 300))
	series := ThroughputSeries(ops)
	if len(series) < 29 {
		t.Fatalf("series too short: %d", len(series))
	}
	var nonzero int
	for _, v := range series {
		if v < 0 {
			t.Fatal("negative throughput")
		}
		if v > 0 {
			nonzero++
		}
	}
	if nonzero < len(series)/2 {
		t.Fatal("throughput mostly zero")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ops := Generate(DefaultConfig(5*time.Minute, 100))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("%d != %d ops", len(got), len(ops))
	}
	for i := range got {
		// Millisecond truncation in the CSV format.
		if got[i].Key != ops[i].Key || got[i].Size != ops[i].Size || got[i].Type != ops[i].Type {
			t.Fatalf("op %d mismatch: %+v vs %+v", i, got[i], ops[i])
		}
	}
	if _, err := ReadCSV(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty csv should error")
	}
}

func TestReplayTiming(t *testing.T) {
	clock := simclock.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	ops := []Op{
		{At: 0, Type: OpPut, Key: "a", Size: 1},
		{At: 2 * time.Second, Type: OpPut, Key: "b", Size: 1},
		{At: 5 * time.Second, Type: OpDelete, Key: "a"},
	}
	var mu sync.Mutex
	issued := map[string]time.Duration{}
	start := clock.Now()
	Replay(clock, ops, func(op Op) {
		mu.Lock()
		issued[op.Key+string(op.Type)] = clock.Since(start)
		mu.Unlock()
	})
	clock.Quiesce()
	if issued["aPUT"] != 0 || issued["bPUT"] != 2*time.Second || issued["aDELETE"] != 5*time.Second {
		t.Fatalf("issue times: %v", issued)
	}
}

func TestWindowedPercentile(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var times []time.Time
	var delays []float64
	// Minute 0: delays 1..10; minute 2: delays all 5. Minute 1: empty.
	for i := 1; i <= 10; i++ {
		times = append(times, start.Add(time.Duration(i)*time.Second))
		delays = append(delays, float64(i))
	}
	for i := 0; i < 4; i++ {
		times = append(times, start.Add(2*time.Minute+time.Duration(i)*time.Second))
		delays = append(delays, 5)
	}
	out := WindowedPercentile(times, delays, start, time.Minute, 100)
	if len(out) != 3 {
		t.Fatalf("windows = %d", len(out))
	}
	if out[0] != 10 {
		t.Fatalf("w0 max = %v", out[0])
	}
	if out[1] != 10 { // empty window carries previous
		t.Fatalf("w1 = %v", out[1])
	}
	if out[2] != 5 {
		t.Fatalf("w2 = %v", out[2])
	}
	// p50 of minute 0 is 5.5.
	p50 := WindowedPercentile(times, delays, start, time.Minute, 50)
	if p50[0] != 5.5 {
		t.Fatalf("p50 = %v", p50[0])
	}
	if WindowedPercentile(nil, nil, start, time.Minute, 50) != nil {
		t.Fatal("empty input should return nil")
	}
}
