// Package trace generates and replays IBM-COS-like object storage
// workloads. The paper's analysis of the public IBM Cloud Object Storage
// traces (§2) drives the generator's two defining properties:
//
//   - Object sizes are highly skewed: ~80% of PUT requests are ≤ 1 MB, over
//     99.99% are below 1 GB, yet most bytes live in the large tail (Fig. 2).
//   - Request rates swing sharply minute to minute, with transient bursts
//     several times the base rate (Fig. 3).
//
// The real traces are proprietary downloads (SNIA IOTTA); this generator
// reproduces their published distributional shape so replay exercises the
// same system behaviour.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/simclock"
	"repro/internal/simrand"
)

// OpType is a trace operation kind.
type OpType string

// Operation kinds.
const (
	OpPut    OpType = "PUT"
	OpDelete OpType = "DELETE"
)

// Op is one trace record.
type Op struct {
	At   time.Duration // offset from trace start
	Type OpType
	Key  string
	Size int64 // PUT payload size; zero for DELETE
}

// sizeBucket is one band of the PUT size distribution.
type sizeBucket struct {
	lo, hi int64   // [lo, hi) bytes
	weight float64 // fraction of PUT requests
}

// sizeBuckets approximates Figure 2's count distribution: ~80% of PUTs at
// or below 1 MB, a heavy-capacity tail above, and a trace-wide maximum
// below 10 GB (99.99% of objects are < 1 GB).
var sizeBuckets = []sizeBucket{
	{1, 128, 0.04},
	{128, 1 << 10, 0.14},
	{1 << 10, 10 << 10, 0.22},
	{10 << 10, 100 << 10, 0.24},
	{100 << 10, 1 << 20, 0.16},
	{1 << 20, 10 << 20, 0.10},
	{10 << 20, 100 << 20, 0.06},
	{100 << 20, 1 << 30, 0.0399},
	{1 << 30, 10 << 30, 0.0001},
}

// SampleSize draws one PUT size from the calibrated distribution
// (log-uniform within the chosen bucket).
func SampleSize(rng *rand.Rand) int64 {
	u := rng.Float64()
	for _, b := range sizeBuckets {
		if u < b.weight {
			lo, hi := math.Log(float64(b.lo)), math.Log(float64(b.hi))
			return int64(math.Exp(lo + rng.Float64()*(hi-lo)))
		}
		u -= b.weight
	}
	last := sizeBuckets[len(sizeBuckets)-1]
	return last.lo
}

// Config parameterizes trace generation.
type Config struct {
	Duration       time.Duration
	BaseRatePerMin float64 // long-run average operations per minute
	// BurstFactor is the peak-to-base rate ratio during bursts; BurstProb
	// is the per-minute probability a burst starts.
	BurstFactor float64
	BurstProb   float64
	// Keys is the working-set size; key popularity is Zipf-like.
	Keys int
	// DeleteFraction of operations are DELETEs of previously PUT keys.
	DeleteFraction float64
	Seed           string
}

// DefaultConfig returns a busy-hour configuration resembling the paper's
// 60-minute IBM COS segment, scaled by rate.
func DefaultConfig(duration time.Duration, ratePerMin float64) Config {
	return Config{
		Duration:       duration,
		BaseRatePerMin: ratePerMin,
		BurstFactor:    4.0,
		BurstProb:      0.08,
		Keys:           5000,
		DeleteFraction: 0.04,
		Seed:           "ibm-cos",
	}
}

// Generate produces a trace: a time-ordered sequence of PUT/DELETE
// operations with bursty per-minute rates and skewed sizes. Key popularity
// is Zipf-like, and each key has a *sticky* characteristic size — an
// object is rewritten at roughly its previous size, as in real object
// stores — with the hottest keys biased small (frequently-rewritten
// objects are manifests, indexes and counters, not gigabyte archives).
func Generate(cfg Config) []Op {
	rng := simrand.New("trace", cfg.Seed)
	if cfg.Keys <= 0 {
		cfg.Keys = 1000
	}
	// Popularity is Zipf-like with a flattened head (v=50): even the
	// hottest object of a busy tenant sees well under 1% of all requests,
	// as in multi-tenant production traces.
	zipf := rand.NewZipf(rng, 1.1, 50, uint64(cfg.Keys-1))
	hotCutoff := uint64(cfg.Keys / 100)
	if hotCutoff < 16 {
		hotCutoff = 16
	}
	baseSize := make(map[uint64]int64)
	sizeFor := func(rank uint64) int64 {
		base, ok := baseSize[rank]
		if !ok {
			base = SampleSize(rng)
			if rank < hotCutoff {
				// Frequently-rewritten objects are manifest/index-sized,
				// not gigabyte archives.
				for base > 32<<20 {
					base = SampleSize(rng)
				}
			}
			baseSize[rank] = base
		}
		// Rewrites land near the previous size.
		size := int64(float64(base) * (0.8 + 0.45*rng.Float64()))
		if size < 1 {
			size = 1
		}
		return size
	}

	var ops []Op
	minutes := int(cfg.Duration.Minutes() + 0.5)
	burstLeft := 0
	// A slow random walk modulates the base rate (Fig. 3's drift).
	walk := 1.0
	for m := 0; m < minutes; m++ {
		walk *= 1 + 0.2*(rng.Float64()-0.5)
		if walk < 0.4 {
			walk = 0.4
		}
		if walk > 2.0 {
			walk = 2.0
		}
		rate := cfg.BaseRatePerMin * walk
		if burstLeft > 0 {
			rate *= cfg.BurstFactor
			burstLeft--
		} else if rng.Float64() < cfg.BurstProb {
			burstLeft = 1 + rng.Intn(3)
		}
		n := poisson(rng, rate)
		for i := 0; i < n; i++ {
			at := time.Duration(m)*time.Minute + simclock.Scale(time.Minute, rng.Float64())
			rank := zipf.Uint64()
			key := fmt.Sprintf("obj-%05d", rank)
			if rng.Float64() < cfg.DeleteFraction {
				ops = append(ops, Op{At: at, Type: OpDelete, Key: key})
			} else {
				ops = append(ops, Op{At: at, Type: OpPut, Key: key, Size: sizeFor(rank)})
			}
		}
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].At < ops[j].At })
	return ops
}

// poisson draws a Poisson variate (Knuth's method for small lambda, normal
// approximation for large).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 500 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for p > l {
		k++
		p *= rng.Float64()
	}
	return k - 1
}

// Stats summarizes a trace.
type Stats struct {
	Ops       int
	Puts      int
	Deletes   int
	Bytes     int64
	PutsLE1MB int
}

// Summarize computes aggregate statistics.
func Summarize(ops []Op) Stats {
	var st Stats
	st.Ops = len(ops)
	for _, op := range ops {
		if op.Type == OpPut {
			st.Puts++
			st.Bytes += op.Size
			if op.Size <= 1<<20 {
				st.PutsLE1MB++
			}
		} else {
			st.Deletes++
		}
	}
	return st
}

// SizeHistogram buckets PUT requests by size for Figure 2, returning
// per-bucket request counts and capacity (bytes).
func SizeHistogram(ops []Op) (labels []string, counts []int64, capacity []int64) {
	edges := []int64{128, 1 << 10, 10 << 10, 100 << 10, 1 << 20, 10 << 20, 100 << 20, 1 << 30, 10 << 30}
	labels = []string{"<128B", "128B-1K", "1K-10K", "10K-100K", "100K-1M", "1M-10M", "10M-100M", "100M-1G", "1G-10G"}
	counts = make([]int64, len(labels))
	capacity = make([]int64, len(labels))
	for _, op := range ops {
		if op.Type != OpPut {
			continue
		}
		i := sort.Search(len(edges), func(i int) bool { return op.Size < edges[i] })
		if i >= len(labels) {
			i = len(labels) - 1
		}
		counts[i]++
		capacity[i] += op.Size
	}
	return labels, counts, capacity
}

// ThroughputSeries returns per-minute written MB/s for Figure 3.
func ThroughputSeries(ops []Op) []float64 {
	var maxMin int
	for _, op := range ops {
		if m := int(op.At.Minutes()); m > maxMin {
			maxMin = m
		}
	}
	series := make([]float64, maxMin+1)
	for _, op := range ops {
		if op.Type == OpPut {
			series[int(op.At.Minutes())] += float64(op.Size)
		}
	}
	for i := range series {
		series[i] /= 60 * 1e6 // bytes/min -> MB/s
	}
	return series
}

// WriteCSV serializes a trace as "at_ms,op,key,size" rows.
func WriteCSV(w io.Writer, ops []Op) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_ms", "op", "key", "size"}); err != nil {
		return err
	}
	for _, op := range ops {
		err := cw.Write([]string{
			strconv.FormatInt(op.At.Milliseconds(), 10),
			string(op.Type), op.Key, strconv.FormatInt(op.Size, 10),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) ([]Op, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	var ops []Op
	for i, row := range rows[1:] {
		if len(row) != 4 {
			return nil, fmt.Errorf("trace: row %d has %d fields", i+2, len(row))
		}
		ms, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d at_ms: %w", i+2, err)
		}
		size, err := strconv.ParseInt(row[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d size: %w", i+2, err)
		}
		ops = append(ops, Op{
			At: time.Duration(ms) * time.Millisecond, Type: OpType(row[1]),
			Key: row[2], Size: size,
		})
	}
	return ops, nil
}
