package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestSamplerBackfill(t *testing.T) {
	now := time.Unix(0, 0)
	s := NewSampler(func() time.Time { return now }, time.Second)
	g := &Gauge{}
	s.TrackGauge("g", g)

	g.Set(3)
	s.Poll() // epoch sample (index 0)
	g.Set(7)
	now = now.Add(2500 * time.Millisecond)
	s.Poll() // boundaries 1s and 2s crossed: back-fill two samples of 7

	series := s.Series()
	if len(series) != 1 {
		t.Fatalf("got %d series, want 1", len(series))
	}
	ser := series[0]
	if ser.Name != "g" || ser.IntervalSeconds != 1 {
		t.Fatalf("series meta wrong: %+v", ser)
	}
	want := []Sample{{0, 3}, {1, 7}, {2, 7}}
	if len(ser.Samples) != len(want) {
		t.Fatalf("got %d samples, want %d: %+v", len(ser.Samples), len(want), ser.Samples)
	}
	for i, w := range want {
		if ser.Samples[i] != w {
			t.Errorf("sample %d = %+v, want %+v", i, ser.Samples[i], w)
		}
	}

	// Polling again without time advancing records nothing new.
	s.Poll()
	if n := len(s.Series()[0].Samples); n != 3 {
		t.Errorf("redundant Poll added samples: %d", n)
	}
}

func TestSamplerLateRegistrationPadsZero(t *testing.T) {
	now := time.Unix(0, 0)
	s := NewSampler(func() time.Time { return now }, time.Second)
	c := &Counter{}
	s.TrackCounter("early", c)
	s.Poll()
	now = now.Add(time.Second)
	s.Poll() // two samples recorded

	g := &Gauge{}
	g.Set(9)
	s.TrackGauge("late", g)
	now = now.Add(time.Second)
	s.Poll()

	series := s.Series()
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2", len(series))
	}
	late := series[1]
	if late.Name != "late" {
		t.Fatalf("registration order not preserved: %+v", series)
	}
	want := []float64{0, 0, 9}
	for i, w := range want {
		if late.Samples[i].Value != w {
			t.Errorf("late sample %d = %v, want %v", i, late.Samples[i].Value, w)
		}
	}
}

func TestSamplerDefaultsAndNilSafety(t *testing.T) {
	s := NewSampler(nil, -time.Second)
	if s.interval != time.Second {
		t.Errorf("non-positive interval not defaulted: %v", s.interval)
	}
	var nilS *Sampler
	nilS.Poll()
	nilS.Track("x", func() float64 { return 0 })
	if got := nilS.Series(); got != nil {
		t.Errorf("nil sampler Series = %v, want nil", got)
	}
	s.Track("skipped", nil) // nil read func must be ignored
	s.Poll()
	if len(s.Series()) != 0 {
		t.Errorf("nil read func was registered")
	}
}

func TestSeriesDigest(t *testing.T) {
	ser := Series{Name: "g", IntervalSeconds: 2, Samples: []Sample{
		{0, 4}, {2, -1}, {4, 7}, {6, 2},
	}}
	d := ser.Digest()
	if d.Name != "g" || d.IntervalSeconds != 2 || d.Count != 4 {
		t.Fatalf("digest meta wrong: %+v", d)
	}
	if d.Min != -1 || d.Max != 7 || d.Last != 2 {
		t.Errorf("digest extremes wrong: %+v", d)
	}
	if math.Abs(d.Mean-3) > 1e-12 {
		t.Errorf("digest mean = %v, want 3", d.Mean)
	}

	empty := Series{Name: "e", IntervalSeconds: 1}.Digest()
	if empty.Count != 0 || empty.Min != 0 || empty.Max != 0 || empty.Mean != 0 || empty.Last != 0 {
		t.Errorf("empty digest not zero: %+v", empty)
	}
}

func TestSeriesDownsample(t *testing.T) {
	ser := Series{Name: "g", IntervalSeconds: 1}
	for i := 0; i < 10; i++ {
		ser.Samples = append(ser.Samples, Sample{float64(i), float64(i)})
	}
	got := ser.Downsample(4)
	if len(got) > 4 {
		t.Fatalf("downsample returned %d > 4 samples", len(got))
	}
	if got[0] != ser.Samples[0] {
		t.Errorf("downsample dropped the first sample: %+v", got[0])
	}
	if all := ser.Downsample(100); len(all) != 10 {
		t.Errorf("downsample with room returned %d samples, want all 10", len(all))
	}
	// Must be a copy, not an alias.
	all := ser.Downsample(0)
	if len(all) != 10 {
		t.Fatalf("downsample(0) returned %d samples", len(all))
	}
	all[0].Value = 99
	if ser.Samples[0].Value == 99 {
		t.Errorf("downsample aliases the backing array")
	}
}
