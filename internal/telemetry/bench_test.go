package telemetry

import (
	"testing"
	"time"
)

// BenchmarkSpanHotPath measures the per-part span traffic the engine's
// data plane emits on every transfer: a task root, a part child with
// attributes, nested leg/upload children, and End bookkeeping.
func BenchmarkSpanHotPath(b *testing.B) {
	base := time.Unix(0, 0)
	now := base
	tr := NewTracer(func() time.Time { return now })
	tr.Enable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := tr.StartTrace("t", "task")
		part := root.Child("part-0").Set("bytes", int64(8<<20))
		leg := part.Child("leg-down")
		now = now.Add(time.Millisecond)
		leg.End()
		up := part.Child("upload-part").Set(CatAttr, string(CatObjStore))
		now = now.Add(time.Millisecond)
		up.End()
		part.End()
		root.End()
		if i%1024 == 0 {
			tr.Reset() // keep the finished-span buffer from dominating memory
		}
	}
}

// benchRetention runs the span hot path under a retention policy,
// planting an anomaly on every anomalyEvery-th trace (0 = never).
func benchRetention(b *testing.B, pol *RetentionPolicy, anomalyEvery int) {
	base := time.Unix(0, 0)
	now := base
	tr := NewTracer(func() time.Time { return now })
	tr.SetPolicy(pol)
	tr.Enable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := tr.StartTrace("t", "task")
		if anomalyEvery > 0 && i%anomalyEvery == 0 {
			root.Set("error", "boom")
		}
		part := root.Child("part-0").Set("bytes", int64(8<<20))
		leg := part.Child("leg-down")
		now = now.Add(time.Millisecond)
		leg.End()
		up := part.Child("upload-part").Set(CatAttr, string(CatObjStore))
		now = now.Add(time.Millisecond)
		up.End()
		part.End()
		root.End()
		if i%1024 == 0 {
			tr.Reset()
		}
	}
}

// BenchmarkRetentionKeepAll is the legacy always-keep configuration
// (nil policy) — the baseline every retention mode is judged against.
func BenchmarkRetentionKeepAll(b *testing.B) {
	benchRetention(b, nil, 0)
}

// BenchmarkRetentionSampledDrop measures the intended million-object
// steady state: clean traces dropped (1-in-16 head sample) and their
// spans recycled through the free list.
func BenchmarkRetentionSampledDrop(b *testing.B) {
	benchRetention(b, NewSampledPolicy(1, 16), 0)
}

// BenchmarkRetentionAnomalousKeep mixes in an anomalous trace every 8th
// iteration, exercising the classify-and-keep path alongside recycling.
func BenchmarkRetentionAnomalousKeep(b *testing.B) {
	benchRetention(b, NewSampledPolicy(1, 16), 8)
}

// BenchmarkSpanDisabled pins the cost of the disabled-tracer fast path
// the production configuration runs with.
func BenchmarkSpanDisabled(b *testing.B) {
	base := time.Unix(0, 0)
	tr := NewTracer(func() time.Time { return base })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := tr.StartTrace("t", "task")
		part := root.Child("part-0").Set("bytes", int64(8<<20))
		part.End()
		root.End()
	}
}
