package telemetry

import (
	"testing"
	"time"
)

// BenchmarkSpanHotPath measures the per-part span traffic the engine's
// data plane emits on every transfer: a task root, a part child with
// attributes, nested leg/upload children, and End bookkeeping.
func BenchmarkSpanHotPath(b *testing.B) {
	base := time.Unix(0, 0)
	now := base
	tr := NewTracer(func() time.Time { return now })
	tr.Enable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := tr.StartTrace("t", "task")
		part := root.Child("part-0").Set("bytes", int64(8<<20))
		leg := part.Child("leg-down")
		now = now.Add(time.Millisecond)
		leg.End()
		up := part.Child("upload-part").Set(CatAttr, string(CatObjStore))
		now = now.Add(time.Millisecond)
		up.End()
		part.End()
		root.End()
		if i%1024 == 0 {
			tr.Reset() // keep the finished-span buffer from dominating memory
		}
	}
}

// BenchmarkSpanDisabled pins the cost of the disabled-tracer fast path
// the production configuration runs with.
func BenchmarkSpanDisabled(b *testing.B) {
	base := time.Unix(0, 0)
	tr := NewTracer(func() time.Time { return base })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := tr.StartTrace("t", "task")
		part := root.Child("part-0").Set("bytes", int64(8<<20))
		part.End()
		root.End()
	}
}
