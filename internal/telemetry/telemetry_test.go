package telemetry

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock is a deterministic stepping time source for tracer tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(0, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func TestTracerDisabledByDefault(t *testing.T) {
	tr := NewTracer(newFakeClock().now)
	if tr.Enabled() {
		t.Fatal("new tracer should start disabled")
	}
	sp := tr.StartTrace("t", "task")
	if sp != nil {
		t.Fatal("disabled tracer should return nil spans")
	}
	// The nil span's whole method set must no-op.
	sp.Set("k", 1).SetSeconds("d", time.Second)
	sp.Child("c").End()
	sp.Fork("f").EndAt(time.Unix(1, 0))
	sp.End()
	if got := len(tr.Spans()); got != 0 {
		t.Fatalf("disabled tracer recorded %d spans", got)
	}
}

func TestSpanTreePathsAndLanes(t *testing.T) {
	tr := NewTracer(newFakeClock().now)
	tr.Enable()
	root := tr.StartTrace("t", "task")
	a := root.Child("step")
	b := root.Child("step")
	f := root.Fork("fn:1")
	c := f.Child("leg")

	if a.Path != "task/step" || a.Parent != "task" {
		t.Errorf("first child path %q parent %q", a.Path, a.Parent)
	}
	if b.Path != "task/step#1" {
		t.Errorf("duplicate name should get #n suffix, got %q", b.Path)
	}
	if a.Lane != "" || b.Lane != "" {
		t.Errorf("Child must stay on the parent lane, got %q / %q", a.Lane, b.Lane)
	}
	if f.Lane != f.Path {
		t.Errorf("Fork must open its own lane, got lane %q path %q", f.Lane, f.Path)
	}
	if c.Lane != f.Lane {
		t.Errorf("child of a fork stays on the fork's lane, got %q want %q", c.Lane, f.Lane)
	}

	// Only ended spans are recorded, and double-End records once.
	a.End()
	a.End()
	if got := len(tr.Spans()); got != 1 {
		t.Fatalf("recorded %d spans, want 1", got)
	}
	tr.Reset()
	if got := len(tr.Spans()); got != 0 {
		t.Fatalf("Reset left %d spans", got)
	}
}

func TestConcurrentSpanNesting(t *testing.T) {
	tr := NewTracer(newFakeClock().now)
	tr.Enable()
	root := tr.StartTrace("t", "task")

	const workers, depth = 16, 8
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := root.Fork("worker")
			for d := 0; d < depth; d++ {
				c := sp.Child("op").Set("d", int64(d))
				c.End()
			}
			sp.End()
		}()
	}
	wg.Wait()
	root.End()

	spans := tr.Spans()
	if want := workers*(depth+1) + 1; len(spans) != want {
		t.Fatalf("recorded %d spans, want %d", len(spans), want)
	}
	// Every path must be unique within the trace: that is what links
	// children to parents in the export.
	seen := make(map[string]bool)
	for _, s := range spans {
		if seen[s.Path] {
			t.Fatalf("duplicate span path %q", s.Path)
		}
		seen[s.Path] = true
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(3)
	g.Add(-1)
	g.SetMax(10)
	g.SetMax(7) // lower: no effect
	if g.Value() != 10 {
		t.Errorf("gauge = %d, want 10", g.Value())
	}
	// nil instruments no-op.
	var nc *Counter
	var ng *Gauge
	nc.Inc()
	ng.SetMax(1)
	if nc.Value() != 0 || ng.Value() != 0 {
		t.Error("nil instruments must read zero")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// Bucket i is (bounds[i-1], bounds[i]]: a value equal to a bound lands
	// in that bound's bucket; values above the last bound overflow.
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 4.0, 4.1, 100} {
		h.Observe(v)
	}
	bounds, counts := h.BucketCounts()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("bounds/counts sizes %d/%d", len(bounds), len(counts))
	}
	want := []int64{2, 2, 1, 2} // (..1]=0.5,1.0  (1,2]=1.5,2.0  (2,4]=4.0  over=4.1,100
	for i, c := range counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d (all %v)", i, c, want[i], counts)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if got := h.Min(); got != 0.5 {
		t.Errorf("min = %v, want 0.5", got)
	}
	if got := h.Max(); got != 100 {
		t.Errorf("max = %v, want 100", got)
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+4+4.1+100; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100) // 0.01 .. 1.00
	}
	// Quantiles are interpolated within buckets, so allow bucket-width
	// error; the extremes are exact because they clamp to min/max.
	if got := h.Quantile(0); got != 0.01 {
		t.Errorf("p0 = %v, want min 0.01", got)
	}
	if got := h.Quantile(1); got != 1.0 {
		t.Errorf("p100 = %v, want max 1.0", got)
	}
	if got := h.Quantile(0.5); got < 0.256 || got > 0.512 {
		t.Errorf("p50 = %v, outside its bucket (0.256, 0.512]", got)
	}
	if got := h.Quantile(0.99); got < 0.512 || got > 1.0 {
		t.Errorf("p99 = %v, outside (0.512, 1.0]", got)
	}
	// Quantiles are monotone in p.
	prev := math.Inf(-1)
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		q := h.Quantile(p)
		if q < prev {
			t.Errorf("quantile not monotone at p=%v: %v < %v", p, q, prev)
		}
		prev = q
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Add(3)
	r.Counter("unused") // zero: skipped
	r.Gauge("a.peak").SetMax(7)
	h := r.Histogram("m.lat")
	h.Observe(0.5)
	h.Observe(0.5)

	// Same name returns the same instrument.
	if r.Counter("z.count").Value() != 3 {
		t.Error("registry did not return the existing counter")
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a.peak 7\n" +
		"m.lat count=2 sum=1.000000 min=0.500000 max=0.500000 p50=0.500000 p95=0.500000 p99=0.500000\n" +
		"z.count 3\n"
	if buf.String() != want {
		t.Errorf("WriteText:\n%s\nwant:\n%s", buf.String(), want)
	}

	var nr *Registry
	if nr.Counter("x") != nil || nr.Gauge("x") != nil || nr.Histogram("x") != nil {
		t.Error("nil registry must return nil instruments")
	}
	if err := nr.WriteText(&buf); err != nil {
		t.Error("nil registry WriteText must no-op")
	}
}

// buildSampleTrace constructs a small two-task trace with explicit
// timestamps, mimicking the engine's span shapes.
func buildSampleTrace() *Tracer {
	base := time.Unix(0, 0)
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	tr := NewTracer(func() time.Time { return base })
	tr.Enable()

	root := tr.StartTraceAt("rule k@1", "task", at(0)).Set("key", "k").Set("size", int64(1<<20))
	root.ChildAt("notify", at(0)).EndAt(at(5))
	inv := root.ChildAt("invoke", at(5)).Set("i_s", 0.002)
	inv.EndAt(at(7))
	fn := root.ForkAt("fn:inst-1", at(7)).Set("cold", true)
	fn.ChildAt("startup", at(7)).EndAt(at(12))
	part := fn.ChildAt("part-0", at(12)).Set("bytes", int64(1<<20))
	part.ChildAt("leg-down", at(12)).EndAt(at(20))
	part.ChildAt("leg-up", at(20)).EndAt(at(30))
	part.EndAt(at(30))
	fn.EndAt(at(31))
	root.EndAt(at(32))

	root2 := tr.StartTraceAt("rule k@2", "task", at(10))
	root2.ChildAt("notify", at(10)).EndAt(at(14))
	cl := root2.ChildAt("changelog", at(14)).Set("hit", true)
	cl.EndAt(at(15))
	root2.EndAt(at(15))
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSampleTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export differs from golden file:\n%s", buf.String())
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildSampleTrace().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildSampleTrace().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical traces exported different bytes")
	}
	// Repeated export of the same tracer is also stable.
	tr := buildSampleTrace()
	var c, d bytes.Buffer
	if err := tr.WriteChromeTrace(&c); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Bytes(), d.Bytes()) {
		t.Error("re-export of one tracer is not stable")
	}
}

func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").SetMax(int64(i*1000 + j))
				r.Histogram("h").Observe(float64(j) / 1000)
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 7999 {
		t.Errorf("gauge max = %d, want 7999", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	_ = fmt.Sprint(c.Value())
}
