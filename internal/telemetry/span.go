// Package telemetry is the unified observability layer of the replication
// stack: a span tracer driven by the simulated clock and a metrics
// registry of counters, gauges and fixed-bucket latency histograms.
//
// The tracer follows one replication task end-to-end: the engine opens a
// root span per task and every layer the task crosses — FaaS invocation,
// object-store requests, KV accesses, wide-area transfer legs, changelog
// lookups — attaches child spans, linked by the *Span values threaded
// through the call paths. Traces export in Chrome trace_event format
// (chrome://tracing, Perfetto); metrics export as a flat text dump.
//
// Span collection is tail-based: spans accumulate on their trace's tree,
// and only when the root task span ends does the tracer's RetentionPolicy
// decide keep-vs-drop over the whole tree (see retention.go). Kept trees
// land in per-shard buffers — the single collection mutex of the original
// design is gone — and Spans() merges the shards back into the global end
// order, so exports stay byte-deterministic. Dropped trees recycle their
// spans through a free list.
//
// Everything is nil-safe: a nil *Tracer, *Span, *Registry, *Counter,
// *Gauge or *Histogram accepts every call as a no-op, so instrumentation
// points never need to guard against disabled telemetry.
package telemetry

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span. Values should be scalars
// (string, bool, int64, float64) so exports are stable.
type Attr struct {
	Key   string
	Value any
}

// spanShards fixes the shard count for kept-span buffers and live-tree
// tracking; traces hash onto shards by trace ID.
const spanShards = 16

// spanFreeListMax caps the recycled-span free list so a burst of dropped
// trees cannot pin unbounded memory.
const spanFreeListMax = 4096

// spanShard is one slice of the tracer's collection state: the kept spans
// of retained trees plus the set of trees still in flight.
type spanShard struct {
	mu   sync.Mutex
	kept []*Span
	live map[*traceTree]struct{}
}

// traceTree accumulates one trace's ended spans until the tree quiesces —
// the root span has ended and no span of the trace is still open — and
// the retention decision flushes it whole: kept into the shard's buffer
// or dropped into the free list, never half-recorded. Waiting for the
// last span (not just the root) matters because the faas layer ends an
// instance's "fn:" span, and stamps its crash attrs, after the handler
// body (which ends the root via defer) returns.
type traceTree struct {
	t     *Tracer
	gen   uint64 // tracer generation at StartTrace; mismatch at flush = drop
	shard *spanShard
	root  *Span

	mu        sync.Mutex
	spans     []*Span // ended spans of this trace, in end order
	exemplars []exemplarCandidate
	open      int // spans started but not yet ended
	rootEnded bool
	flushed   bool
	kept      bool // retention verdict, once flushed
}

// Tracer collects finished spans. Create one with NewTracer; it starts
// disabled, and while disabled StartTrace returns nil spans whose entire
// method set no-ops, so instrumentation costs nothing.
type Tracer struct {
	now func() time.Time

	enabled atomic.Bool
	// gen is bumped on SetEnabled(false) and Reset. A tree flushing under
	// a generation other than the one it started in drops cleanly: this is
	// what keeps a mid-flight disable from half-recording a trace.
	gen atomic.Uint64
	// endSeq stamps every span End with a global sequence number, the
	// total order Spans() restores after merging the shards.
	endSeq atomic.Int64

	policy atomic.Pointer[RetentionPolicy]

	shards [spanShards]spanShard

	freeMu sync.Mutex
	free   []*Span

	stats tracerCounters

	vmu      sync.Mutex
	verdicts map[Verdict]int64
}

// NewTracer returns a disabled Tracer reading time from now (typically
// simclock.Clock.Now, so spans live on virtual time).
func NewTracer(now func() time.Time) *Tracer {
	if now == nil {
		now = time.Now
	}
	return &Tracer{now: now, verdicts: make(map[Verdict]int64)}
}

// SetEnabled turns span collection on or off. Traces started while
// disabled are not recorded, and traces in flight when collection turns
// off are dropped whole when their root ends — disable mid-task never
// leaves a partial tree behind.
func (t *Tracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	if on {
		t.enabled.Store(true)
		return
	}
	if t.enabled.Swap(false) {
		t.gen.Add(1)
	}
}

// Enable is SetEnabled(true).
func (t *Tracer) Enable() { t.SetEnabled(true) }

// Enabled reports whether spans are being collected.
func (t *Tracer) Enabled() bool {
	return t != nil && t.enabled.Load()
}

// SetPolicy installs the tail-based retention policy consulted when each
// root span ends. A nil policy keeps every trace (the legacy behavior).
func (t *Tracer) SetPolicy(p *RetentionPolicy) {
	if t == nil {
		return
	}
	t.policy.Store(p)
}

// Reset discards every collected span and zeroes the retention stats.
// Traces in flight drop whole when their root ends.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.gen.Add(1)
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		sh.kept = nil
		sh.live = nil
		sh.mu.Unlock()
	}
	t.stats.reset()
	t.vmu.Lock()
	t.verdicts = make(map[Verdict]int64)
	t.vmu.Unlock()
}

// shard maps a trace ID onto its collection shard (FNV-1a).
func (t *Tracer) shard(traceID string) *spanShard {
	h := uint32(2166136261)
	for i := 0; i < len(traceID); i++ {
		h ^= uint32(traceID[i])
		h *= 16777619
	}
	return &t.shards[h%spanShards]
}

// newSpan takes a span off the free list (or allocates one), reusing the
// attr slice and child-counter map capacity of a dropped tree's spans.
func (t *Tracer) newSpan() *Span {
	t.freeMu.Lock()
	n := len(t.free)
	if n == 0 {
		t.freeMu.Unlock()
		return &Span{}
	}
	s := t.free[n-1]
	t.free[n-1] = nil
	t.free = t.free[:n-1]
	t.freeMu.Unlock()
	s.t, s.tree = nil, nil
	s.TraceID, s.Parent, s.Path, s.Name, s.Lane = "", "", "", "", ""
	s.Start, s.Finish = time.Time{}, time.Time{}
	s.attrs = s.attrs[:0]
	clear(s.seq)
	s.ended = false
	s.endSeq = 0
	return s
}

// recycle pushes a dropped tree's spans onto the free list (up to the
// cap) and accounts the drop.
func (t *Tracer) recycle(spans []*Span) {
	t.stats.spansDropped.Add(int64(len(spans)))
	recycled := 0
	t.freeMu.Lock()
	for _, s := range spans {
		if len(t.free) >= spanFreeListMax {
			break
		}
		t.free = append(t.free, s)
		recycled++
	}
	t.freeMu.Unlock()
	t.stats.spansRecycled.Add(int64(recycled))
}

// StartTrace opens a root span for a new trace starting now. It returns
// nil (safe for every Span method) when the tracer is disabled.
func (t *Tracer) StartTrace(traceID, name string) *Span {
	if t == nil {
		return nil
	}
	return t.StartTraceAt(traceID, name, t.now())
}

// StartTraceAt is StartTrace with an explicit start time; the engine uses
// it to anchor a task's root span at the source PUT completion, so the
// notification delay is part of the waterfall.
func (t *Tracer) StartTraceAt(traceID, name string, start time.Time) *Span {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	sh := t.shard(traceID)
	tree := &traceTree{t: t, gen: t.gen.Load(), shard: sh, open: 1}
	s := t.newSpan()
	s.t, s.tree = t, tree
	s.TraceID, s.Name, s.Path = traceID, name, name
	s.Start = start
	tree.root = s
	sh.mu.Lock()
	if sh.live == nil {
		sh.live = make(map[*traceTree]struct{})
	}
	sh.live[tree] = struct{}{}
	sh.mu.Unlock()
	t.stats.treesStarted.Add(1)
	t.stats.spansStarted.Add(1)
	return s
}

// Spans returns a snapshot of the ended spans — retained trees plus the
// ended spans of traces still in flight — in the order they ended.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	gen := t.gen.Load()
	var out []*Span
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		out = append(out, sh.kept...)
		for tree := range sh.live {
			if tree.gen != gen {
				continue // doomed: will drop whole at flush
			}
			tree.mu.Lock()
			out = append(out, tree.spans...)
			tree.mu.Unlock()
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].endSeq < out[j].endSeq })
	return out
}

// flushTree runs the retention decision when a trace quiesces: the whole
// tree is either appended to its shard's kept buffer (with the verdict
// stamped on the root and the tree's exemplar candidates flushed into
// their histograms) or recycled through the free list.
func (t *Tracer) flushTree(tree *traceTree) {
	tree.mu.Lock()
	if tree.flushed {
		tree.mu.Unlock()
		return
	}
	tree.flushed = true
	spans := tree.spans
	cands := tree.exemplars
	tree.spans, tree.exemplars = nil, nil
	tree.mu.Unlock()

	sh := tree.shard
	sh.mu.Lock()
	delete(sh.live, tree)
	sh.mu.Unlock()

	// A tree whose tracer was disabled or reset mid-flight drops whole —
	// all-or-nothing, never a partial trace.
	if !t.enabled.Load() || tree.gen != t.gen.Load() {
		t.stats.treesDropped.Add(1)
		t.recycle(spans)
		return
	}

	pol := t.policy.Load()
	verdict, keep := pol.Decide(tree.root, spans)
	if !keep {
		t.stats.treesDropped.Add(1)
		t.recycle(spans)
		return
	}

	tree.mu.Lock()
	tree.kept = true
	tree.mu.Unlock()
	// Keep-all mode (no policy) leaves roots unstamped so legacy exports
	// stay byte-identical; summaries treat the missing attr as VerdictAll.
	if pol != nil {
		tree.root.Set(RetentionAttr, string(verdict))
	}
	var bytes int64
	for _, s := range spans {
		bytes += spanBytes(s)
	}
	sh.mu.Lock()
	sh.kept = append(sh.kept, spans...)
	sh.mu.Unlock()
	t.stats.treesRetained.Add(1)
	t.stats.spansRetained.Add(int64(len(spans)))
	t.stats.retainedBytes.Add(bytes)
	t.vmu.Lock()
	t.verdicts[verdict]++
	t.vmu.Unlock()
	for _, c := range cands {
		c.hist.setExemplar(c.value, tree.root.TraceID, c.labels)
	}
}

// Span is one timed operation within a trace. Spans form a tree: children
// reference their parent by Path, which is unique within the trace. A
// span's Lane groups it with its serial ancestors for display; Fork opens
// a new lane for a concurrent branch (one per function instance, say).
//
// All methods are safe on a nil receiver.
type Span struct {
	t    *Tracer
	tree *traceTree

	TraceID string
	Parent  string // parent span's Path; "" for the root
	Path    string // unique within the trace
	Name    string
	Lane    string // display lane; "" is the trace's main lane
	Start   time.Time
	Finish  time.Time

	endSeq int64 // global end-order stamp (set once, on End)

	mu    sync.Mutex
	attrs []Attr
	seq   map[string]int // per-name child counter for Path uniqueness
	ended bool
}

// Child opens a sub-span starting now on the same lane.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.child(name, s.t.now(), false)
}

// ChildAt is Child with an explicit start time.
func (s *Span) ChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	return s.child(name, start, false)
}

// Fork opens a sub-span on a lane of its own, for work that runs
// concurrently with its siblings (a replicator function instance).
func (s *Span) Fork(name string) *Span {
	if s == nil {
		return nil
	}
	return s.child(name, s.t.now(), true)
}

// ForkAt is Fork with an explicit start time.
func (s *Span) ForkAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	return s.child(name, start, true)
}

func (s *Span) child(name string, start time.Time, fork bool) *Span {
	s.mu.Lock()
	if s.seq == nil {
		s.seq = make(map[string]int)
	}
	n := s.seq[name]
	s.seq[name]++
	s.mu.Unlock()
	path := s.Path + "/" + name
	if n > 0 {
		path += "#" + strconv.Itoa(n)
	}
	lane := s.Lane
	if fork {
		lane = path
	}
	c := s.t.newSpan()
	c.t, c.tree = s.t, s.tree
	c.TraceID, c.Parent, c.Path, c.Name, c.Lane = s.TraceID, s.Path, path, name, lane
	c.Start = start
	tree := s.tree
	tree.mu.Lock()
	tree.open++
	tree.mu.Unlock()
	s.t.stats.spansStarted.Add(1)
	return c
}

// Set attaches an annotation and returns the span for chaining. Setting a
// key twice keeps both entries; exports use the last value.
func (s *Span) Set(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
	return s
}

// SetSeconds attaches a duration annotation in seconds.
func (s *Span) SetSeconds(key string, d time.Duration) *Span {
	return s.Set(key, d.Seconds())
}

// Attrs returns a copy of the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Exemplar nominates v as an exemplar for h's bucket, linked to this
// span's trace. The candidate is held on the trace tree and flushed into
// the histogram only if the tree is retained, so exposed exemplars always
// reference traces that exist in the export.
func (s *Span) Exemplar(h *Histogram, v float64, labels ...Label) {
	if s == nil || h == nil {
		return
	}
	tree := s.tree
	tree.mu.Lock()
	flushed, kept := tree.flushed, tree.kept
	if !flushed {
		tree.exemplars = append(tree.exemplars, exemplarCandidate{hist: h, value: v, labels: labels})
	}
	tree.mu.Unlock()
	if flushed && kept {
		h.setExemplar(v, s.TraceID, labels)
	}
}

// End closes the span now and records it with the tracer. Ending twice is
// a no-op; spans that are never ended are not exported.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.t.now())
}

// EndAt is End with an explicit finish time. When the trace quiesces —
// its root has ended and no other span of the tree remains open — the
// tree's retention decision runs.
func (s *Span) EndAt(at time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.Finish = at
	s.mu.Unlock()
	t := s.t
	tree := s.tree
	tree.mu.Lock()
	if tree.flushed {
		// A straggler ending after the tree's retention decision follows
		// its tree's fate: appended to the kept buffer, or dropped —
		// all-or-nothing either way.
		kept := tree.kept
		tree.mu.Unlock()
		t.stats.spansLate.Add(1)
		if kept {
			s.endSeq = t.endSeq.Add(1)
			sh := tree.shard
			sh.mu.Lock()
			sh.kept = append(sh.kept, s)
			sh.mu.Unlock()
			t.stats.spansRetained.Add(1)
			t.stats.retainedBytes.Add(spanBytes(s))
		} else {
			t.stats.spansDropped.Add(1)
		}
		return
	}
	s.endSeq = t.endSeq.Add(1)
	tree.spans = append(tree.spans, s)
	tree.open--
	if s == tree.root {
		tree.rootEnded = true
	}
	quiesced := tree.rootEnded && tree.open == 0
	tree.mu.Unlock()
	if quiesced {
		t.flushTree(tree)
	}
}

// Duration is the span's recorded length (zero until ended).
func (s *Span) Duration() time.Duration {
	if s == nil || s.Finish.IsZero() {
		return 0
	}
	return s.Finish.Sub(s.Start)
}
