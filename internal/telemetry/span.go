// Package telemetry is the unified observability layer of the replication
// stack: a span tracer driven by the simulated clock and a metrics
// registry of counters, gauges and fixed-bucket latency histograms.
//
// The tracer follows one replication task end-to-end: the engine opens a
// root span per task and every layer the task crosses — FaaS invocation,
// object-store requests, KV accesses, wide-area transfer legs, changelog
// lookups — attaches child spans, linked by the *Span values threaded
// through the call paths. Traces export in Chrome trace_event format
// (chrome://tracing, Perfetto); metrics export as a flat text dump.
//
// Everything is nil-safe: a nil *Tracer, *Span, *Registry, *Counter,
// *Gauge or *Histogram accepts every call as a no-op, so instrumentation
// points never need to guard against disabled telemetry.
package telemetry

import (
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values should be scalars
// (string, bool, int64, float64) so exports are stable.
type Attr struct {
	Key   string
	Value any
}

// Tracer collects finished spans. Create one with NewTracer; it starts
// disabled, and while disabled StartTrace returns nil spans whose entire
// method set no-ops, so instrumentation costs nothing.
type Tracer struct {
	now func() time.Time

	mu      sync.Mutex
	enabled bool
	spans   []*Span // ended spans, in End order
}

// NewTracer returns a disabled Tracer reading time from now (typically
// simclock.Clock.Now, so spans live on virtual time).
func NewTracer(now func() time.Time) *Tracer {
	if now == nil {
		now = time.Now
	}
	return &Tracer{now: now}
}

// SetEnabled turns span collection on or off. Traces started while
// disabled are not recorded.
func (t *Tracer) SetEnabled(on bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.enabled = on
	t.mu.Unlock()
}

// Enable is SetEnabled(true).
func (t *Tracer) Enable() { t.SetEnabled(true) }

// Enabled reports whether spans are being collected.
func (t *Tracer) Enabled() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enabled
}

// Reset discards every collected span.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = nil
	t.mu.Unlock()
}

// StartTrace opens a root span for a new trace starting now. It returns
// nil (safe for every Span method) when the tracer is disabled.
func (t *Tracer) StartTrace(traceID, name string) *Span {
	if t == nil {
		return nil
	}
	return t.StartTraceAt(traceID, name, t.now())
}

// StartTraceAt is StartTrace with an explicit start time; the engine uses
// it to anchor a task's root span at the source PUT completion, so the
// notification delay is part of the waterfall.
func (t *Tracer) StartTraceAt(traceID, name string, start time.Time) *Span {
	if t == nil || !t.Enabled() {
		return nil
	}
	return &Span{t: t, TraceID: traceID, Name: name, Path: name, Start: start}
}

// Spans returns a snapshot of the ended spans, in the order they ended.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans...)
}

// Span is one timed operation within a trace. Spans form a tree: children
// reference their parent by Path, which is unique within the trace. A
// span's Lane groups it with its serial ancestors for display; Fork opens
// a new lane for a concurrent branch (one per function instance, say).
//
// All methods are safe on a nil receiver.
type Span struct {
	t *Tracer

	TraceID string
	Parent  string // parent span's Path; "" for the root
	Path    string // unique within the trace
	Name    string
	Lane    string // display lane; "" is the trace's main lane
	Start   time.Time
	Finish  time.Time

	mu    sync.Mutex
	attrs []Attr
	seq   map[string]int // per-name child counter for Path uniqueness
	ended bool
}

// Child opens a sub-span starting now on the same lane.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.child(name, s.t.now(), false)
}

// ChildAt is Child with an explicit start time.
func (s *Span) ChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	return s.child(name, start, false)
}

// Fork opens a sub-span on a lane of its own, for work that runs
// concurrently with its siblings (a replicator function instance).
func (s *Span) Fork(name string) *Span {
	if s == nil {
		return nil
	}
	return s.child(name, s.t.now(), true)
}

// ForkAt is Fork with an explicit start time.
func (s *Span) ForkAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	return s.child(name, start, true)
}

func (s *Span) child(name string, start time.Time, fork bool) *Span {
	s.mu.Lock()
	if s.seq == nil {
		s.seq = make(map[string]int)
	}
	n := s.seq[name]
	s.seq[name]++
	s.mu.Unlock()
	path := s.Path + "/" + name
	if n > 0 {
		path += "#" + strconv.Itoa(n)
	}
	lane := s.Lane
	if fork {
		lane = path
	}
	return &Span{t: s.t, TraceID: s.TraceID, Parent: s.Path, Path: path, Name: name, Lane: lane, Start: start}
}

// Set attaches an annotation and returns the span for chaining. Setting a
// key twice keeps both entries; exports use the last value.
func (s *Span) Set(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
	return s
}

// SetSeconds attaches a duration annotation in seconds.
func (s *Span) SetSeconds(key string, d time.Duration) *Span {
	return s.Set(key, d.Seconds())
}

// Attrs returns a copy of the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// End closes the span now and records it with the tracer. Ending twice is
// a no-op; spans that are never ended are not exported.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.t.now())
}

// EndAt is End with an explicit finish time.
func (s *Span) EndAt(at time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.Finish = at
	s.mu.Unlock()
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, s)
	s.t.mu.Unlock()
}

// Duration is the span's recorded length (zero until ended).
func (s *Span) Duration() time.Duration {
	if s == nil || s.Finish.IsZero() {
		return 0
	}
	return s.Finish.Sub(s.Start)
}
