package telemetry

import "testing"

// TestGaugeTable pins down the Gauge level/high-water contract,
// including the negative-Set semantics watermark readers depend on:
// levels may go negative, Max only rises and is floored at zero.
func TestGaugeTable(t *testing.T) {
	cases := []struct {
		name    string
		ops     func(g *Gauge)
		wantVal int64
		wantMax int64
	}{
		{"zero value", func(g *Gauge) {}, 0, 0},
		{"set positive", func(g *Gauge) { g.Set(7) }, 7, 7},
		{"set then lower", func(g *Gauge) { g.Set(7); g.Set(3) }, 3, 7},
		{"set negative stores as-is", func(g *Gauge) { g.Set(-5) }, -5, 0},
		{"negative then positive", func(g *Gauge) { g.Set(-5); g.Set(2) }, 2, 2},
		{"add below zero", func(g *Gauge) { g.Add(3); g.Add(-10) }, -7, 3},
		{"add tracks peak not sum", func(g *Gauge) { g.Add(2); g.Add(2); g.Add(-3); g.Add(1) }, 2, 4},
		{"setmax raises", func(g *Gauge) { g.Set(2); g.SetMax(9) }, 9, 9},
		{"setmax ignores lower", func(g *Gauge) { g.Set(5); g.SetMax(1) }, 5, 5},
		{"setmax negative on zero", func(g *Gauge) { g.SetMax(-1) }, 0, 0},
		{"max survives round trip", func(g *Gauge) { g.Set(10); g.Set(0) }, 0, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var g Gauge
			tc.ops(&g)
			if got := g.Value(); got != tc.wantVal {
				t.Errorf("Value() = %d, want %d", got, tc.wantVal)
			}
			if got := g.Max(); got != tc.wantMax {
				t.Errorf("Max() = %d, want %d", got, tc.wantMax)
			}
		})
	}
	t.Run("nil gauge no-ops", func(t *testing.T) {
		var g *Gauge
		g.Set(1)
		g.Add(1)
		g.SetMax(1)
		if g.Value() != 0 || g.Max() != 0 {
			t.Fatal("nil gauge should read zero")
		}
	})
}
