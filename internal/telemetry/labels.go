package telemetry

import (
	"sort"
	"strings"
	"sync"
)

// Label is one key=value dimension attached to a metric family. Families
// are keyed on the canonical sorted form of their label pairs, so the
// order labels are passed in never matters.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for Label{Key: k, Value: v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// escapeLabelValue escapes a label value for text exposition: backslash,
// double quote and newline, matching the Prometheus text format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// canonicalLabels renders labels as `{k1="v1",k2="v2"}` with keys sorted,
// the canonical child key used for both lookup and text output. Empty
// label sets render as "".
func canonicalLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// labelInterner caches canonical strings for the 1- and 2-label sets that
// dominate instrument lookups ({rule}, {rule,dest}, {provider,region}).
// Label is comparable, so small fixed-size arrays key the cache directly
// and a hit costs two map probes with zero allocations — at fleet scale
// (a thousand rules × a dozen families) the same label sets recur across
// every family, and re-sorting + re-rendering them per With call was the
// registry's dominant allocation source. Larger sets fall through to
// canonicalLabels; the process-wide cache is safe because the canonical
// form depends only on the labels themselves.
type labelInterner struct {
	mu  sync.Mutex
	one map[[1]Label]string
	two map[[2]Label]string
}

var interned = labelInterner{
	one: make(map[[1]Label]string),
	two: make(map[[2]Label]string),
}

// key returns the canonical child key for labels, interning small sets.
func (in *labelInterner) key(labels []Label) string {
	switch len(labels) {
	case 0:
		return ""
	case 1:
		k := [1]Label{labels[0]}
		in.mu.Lock()
		s, ok := in.one[k]
		if !ok {
			s = canonicalLabels(labels)
			in.one[k] = s
		}
		in.mu.Unlock()
		return s
	case 2:
		k := [2]Label{labels[0], labels[1]}
		in.mu.Lock()
		s, ok := in.two[k]
		if !ok {
			s = canonicalLabels(labels)
			in.two[k] = s
		}
		in.mu.Unlock()
		return s
	}
	return canonicalLabels(labels)
}

// CounterVec is a family of counters sharing one name, distinguished by
// labels. With returns an ordinary *Counter, so hot paths hold the child
// once and pay the same allocation-free cost as an unlabelled counter. A
// nil *CounterVec returns nil children, which no-op.
type CounterVec struct {
	name     string
	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child for the given labels, creating it on first use.
func (v *CounterVec) With(labels ...Label) *Counter {
	if v == nil {
		return nil
	}
	key := interned.key(labels)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &Counter{}
		v.children[key] = c
	}
	return c
}

// GaugeVec is a family of gauges sharing one name, distinguished by
// labels. A nil *GaugeVec returns nil children, which no-op.
type GaugeVec struct {
	name     string
	mu       sync.Mutex
	children map[string]*Gauge
}

// With returns the child for the given labels, creating it on first use.
func (v *GaugeVec) With(labels ...Label) *Gauge {
	if v == nil {
		return nil
	}
	key := interned.key(labels)
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.children[key]
	if !ok {
		g = &Gauge{}
		v.children[key] = g
	}
	return g
}

// HistogramVec is a family of histograms sharing one name and bucket
// layout, distinguished by labels. A nil *HistogramVec returns nil
// children, which no-op.
type HistogramVec struct {
	name     string
	bounds   []float64
	mu       sync.Mutex
	children map[string]*Histogram
}

// With returns the child for the given labels, creating it on first use.
func (v *HistogramVec) With(labels ...Label) *Histogram {
	if v == nil {
		return nil
	}
	key := interned.key(labels)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[key]
	if !ok {
		h = NewHistogram(v.bounds)
		v.children[key] = h
	}
	return h
}

// CounterVec returns the named counter family, creating it on first use.
// The family shares its name with the unlabelled Counter of the same
// name, if any: by convention the unlabelled instrument is the aggregate
// and the family carries the per-dimension breakdown.
func (r *Registry) CounterVec(name string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counterVecs[name]
	if !ok {
		v = &CounterVec{name: name, children: make(map[string]*Counter)}
		r.counterVecs[name] = v
	}
	return v
}

// GaugeVec returns the named gauge family, creating it on first use.
func (r *Registry) GaugeVec(name string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gaugeVecs[name]
	if !ok {
		v = &GaugeVec{name: name, children: make(map[string]*Gauge)}
		r.gaugeVecs[name] = v
	}
	return v
}

// HistogramVec returns the named histogram family with the default
// latency buckets, creating it on first use.
func (r *Registry) HistogramVec(name string) *HistogramVec {
	return r.HistogramVecBuckets(name, nil)
}

// HistogramVecBuckets is HistogramVec with explicit bucket bounds
// (applied only on first creation).
func (r *Registry) HistogramVecBuckets(name string, bounds []float64) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.histVecs[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DefaultLatencyBuckets()
		}
		v = &HistogramVec{name: name, bounds: append([]float64(nil), bounds...), children: make(map[string]*Histogram)}
		r.histVecs[name] = v
	}
	return v
}

// MirrorCounter fans every Add out to an aggregate counter and a labelled
// child, so existing readers of the global name keep working while the
// dimensional family fills in. The zero value no-ops.
type MirrorCounter struct {
	Agg   *Counter
	Child *Counter
}

// Mirror pairs the aggregate with the family child for the given labels.
func (v *CounterVec) Mirror(agg *Counter, labels ...Label) MirrorCounter {
	return MirrorCounter{Agg: agg, Child: v.With(labels...)}
}

// Add increments both the aggregate and the labelled child.
func (m MirrorCounter) Add(n int64) {
	m.Agg.Add(n)
	m.Child.Add(n)
}

// Inc is Add(1).
func (m MirrorCounter) Inc() { m.Add(1) }

// Value returns the aggregate count.
func (m MirrorCounter) Value() int64 { return m.Agg.Value() }

// MirrorGauge fans every update out to an aggregate gauge and a labelled
// child. The aggregate keeps the historical last-writer-wins semantics
// on Set; the labelled child is the authoritative per-dimension level.
// The zero value no-ops.
type MirrorGauge struct {
	Agg   *Gauge
	Child *Gauge
}

// Mirror pairs the aggregate with the family child for the given labels.
func (v *GaugeVec) Mirror(agg *Gauge, labels ...Label) MirrorGauge {
	return MirrorGauge{Agg: agg, Child: v.With(labels...)}
}

// Set stores n on both the aggregate and the labelled child.
func (m MirrorGauge) Set(n int64) {
	m.Agg.Set(n)
	m.Child.Set(n)
}

// Add moves both gauges by delta.
func (m MirrorGauge) Add(delta int64) {
	m.Agg.Add(delta)
	m.Child.Add(delta)
}

// SetMax raises both gauges to n if it exceeds their current values.
func (m MirrorGauge) SetMax(n int64) {
	m.Agg.SetMax(n)
	m.Child.SetMax(n)
}

// Value returns the aggregate level.
func (m MirrorGauge) Value() int64 { return m.Agg.Value() }

// MirrorHistogram fans every observation out to an aggregate histogram
// and a labelled child. The zero value no-ops.
type MirrorHistogram struct {
	Agg   *Histogram
	Child *Histogram
}

// Mirror pairs the aggregate with the family child for the given labels.
func (v *HistogramVec) Mirror(agg *Histogram, labels ...Label) MirrorHistogram {
	return MirrorHistogram{Agg: agg, Child: v.With(labels...)}
}

// Observe records v on both the aggregate and the labelled child.
func (m MirrorHistogram) Observe(v float64) {
	m.Agg.Observe(v)
	m.Child.Observe(v)
}
