package telemetry

import (
	"sync"
	"time"
)

// Sample is one point of a virtual-time series.
type Sample struct {
	AtSeconds float64 // virtual seconds since the sampler epoch
	Value     float64
}

// Series is one tracked signal sampled at fixed virtual intervals.
type Series struct {
	Name            string
	IntervalSeconds float64
	Samples         []Sample
}

// Digest summarizes a series for compact machine-readable reports.
type Digest struct {
	Name            string  `json:"name"`
	IntervalSeconds float64 `json:"interval_s"`
	Count           int     `json:"count"`
	Min             float64 `json:"min"`
	Max             float64 `json:"max"`
	Mean            float64 `json:"mean"`
	Last            float64 `json:"last"`
}

// Digest computes the series' summary (zero value when empty).
func (s Series) Digest() Digest {
	d := Digest{Name: s.Name, IntervalSeconds: s.IntervalSeconds, Count: len(s.Samples)}
	if len(s.Samples) == 0 {
		return d
	}
	d.Min = s.Samples[0].Value
	d.Max = s.Samples[0].Value
	sum := 0.0
	for _, p := range s.Samples {
		if p.Value < d.Min {
			d.Min = p.Value
		}
		if p.Value > d.Max {
			d.Max = p.Value
		}
		sum += p.Value
	}
	d.Mean = sum / float64(len(s.Samples))
	d.Last = s.Samples[len(s.Samples)-1].Value
	return d
}

// Downsample returns at most max evenly-strided samples (always keeping
// the first of each stride), for compact sparklines in reports.
func (s Series) Downsample(max int) []Sample {
	if max <= 0 || len(s.Samples) <= max {
		return append([]Sample(nil), s.Samples...)
	}
	stride := (len(s.Samples) + max - 1) / max
	out := make([]Sample, 0, max)
	for i := 0; i < len(s.Samples); i += stride {
		out = append(out, s.Samples[i])
	}
	return out
}

// Sampler snapshots a set of signals — typically registry counters and
// gauges — at fixed virtual intervals, producing deterministic series on
// the simulated clock.
//
// The simulator's clock only advances while actors sleep, so the sampler
// does not self-schedule (a free-running periodic timer would keep
// Clock.Quiesce from ever draining). Instead the workload driver calls
// Poll at its natural loop points; Poll back-fills one sample per
// interval boundary crossed since the previous call, each carrying the
// signal's current value. Sample k therefore sits at exactly
// epoch + k*interval of virtual time and holds the value observed at the
// first Poll at or after that boundary — deterministic for a
// deterministic workload, regardless of wall-clock scheduling.
type Sampler struct {
	mu       sync.Mutex
	now      func() time.Time
	epoch    time.Time
	interval time.Duration
	next     int // next sample index to record
	sources  []*tsSource
}

type tsSource struct {
	name string
	read func() float64
	vals []float64
}

// NewSampler returns a sampler whose epoch is now() (typically
// simclock.Clock.Now) and whose boundaries are interval apart. A
// non-positive interval defaults to one second.
func NewSampler(now func() time.Time, interval time.Duration) *Sampler {
	if now == nil {
		now = time.Now
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &Sampler{now: now, epoch: now(), interval: interval}
}

// Track registers a named signal; read is called once per recorded
// sample. Registration order fixes the order of Series.
func (s *Sampler) Track(name string, read func() float64) {
	if s == nil || read == nil {
		return
	}
	s.mu.Lock()
	s.sources = append(s.sources, &tsSource{name: name, read: read, vals: make([]float64, s.next)})
	s.mu.Unlock()
}

// TrackCounter tracks a counter's running value.
func (s *Sampler) TrackCounter(name string, c *Counter) {
	s.Track(name, func() float64 { return float64(c.Value()) })
}

// TrackGauge tracks a gauge's current level.
func (s *Sampler) TrackGauge(name string, g *Gauge) {
	s.Track(name, func() float64 { return float64(g.Value()) })
}

// Poll records one sample per interval boundary crossed since the last
// call (including the epoch itself on the first call). Signals that were
// registered after earlier boundaries hold zero for them.
func (s *Sampler) Poll() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	elapsed := s.now().Sub(s.epoch)
	if elapsed < 0 {
		return
	}
	last := int(elapsed / s.interval) // sample indices 0..last are due
	for s.next <= last {
		for _, src := range s.sources {
			src.vals = append(src.vals, src.read())
		}
		s.next++
	}
}

// Series returns the recorded series in registration order.
func (s *Sampler) Series() []Series {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Series, 0, len(s.sources))
	ivs := s.interval.Seconds()
	for _, src := range s.sources {
		ser := Series{Name: src.name, IntervalSeconds: ivs, Samples: make([]Sample, len(src.vals))}
		for i, v := range src.vals {
			ser.Samples[i] = Sample{AtSeconds: float64(i) * ivs, Value: v}
		}
		out = append(out, ser)
	}
	return out
}
