package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// chromeEvent is one entry of the Chrome trace_event JSON array. Complete
// spans use ph "X"; process/thread naming metadata uses ph "M".
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports every ended span in Chrome trace_event format
// (load the file in chrome://tracing or https://ui.perfetto.dev). Each
// trace becomes a process whose name is the trace ID; each lane becomes a
// named thread, so a replication task renders as a waterfall: notify →
// invoke → startup → per-part transfers → finalize, with concurrent
// function instances on parallel rows.
//
// The output is deterministic: spans are ordered by trace start, then
// start time, then path, and timestamps are virtual-clock microseconds
// from the earliest recorded span. Two identical seeded runs therefore
// produce byte-identical exports.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()

	// Group spans into traces, ordered by first span start then trace ID.
	type traceGroup struct {
		id    string
		first time.Time
		spans []*Span
	}
	byID := make(map[string]*traceGroup)
	var groups []*traceGroup
	var epoch time.Time
	for _, s := range spans {
		g, ok := byID[s.TraceID]
		if !ok {
			g = &traceGroup{id: s.TraceID, first: s.Start}
			byID[s.TraceID] = g
			groups = append(groups, g)
		}
		if s.Start.Before(g.first) {
			g.first = s.Start
		}
		g.spans = append(g.spans, s)
		if epoch.IsZero() || s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	sort.Slice(groups, func(i, j int) bool {
		if !groups[i].first.Equal(groups[j].first) {
			return groups[i].first.Before(groups[j].first)
		}
		return groups[i].id < groups[j].id
	})

	var events []chromeEvent
	for pid, g := range groups {
		pid++ // pids start at 1
		sort.Slice(g.spans, func(i, j int) bool {
			a, b := g.spans[i], g.spans[j]
			if !a.Start.Equal(b.Start) {
				return a.Start.Before(b.Start)
			}
			return a.Path < b.Path
		})
		// Lanes become tids: the main lane ("") first, then by first use.
		laneTid := make(map[string]int)
		laneOrder := []string{}
		for _, s := range g.spans {
			if _, ok := laneTid[s.Lane]; !ok {
				laneTid[s.Lane] = len(laneOrder)
				laneOrder = append(laneOrder, s.Lane)
			}
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": g.id},
		})
		for tid, lane := range laneOrder {
			name := lane
			if name == "" {
				name = "main"
			}
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": name},
			})
		}
		for _, s := range g.spans {
			ev := chromeEvent{
				Name: s.Name,
				Cat:  spanCat(s),
				Ph:   "X",
				Ts:   s.Start.Sub(epoch).Microseconds(),
				Dur:  s.Finish.Sub(s.Start).Microseconds(),
				Pid:  pid,
				Tid:  laneTid[s.Lane],
			}
			if attrs := s.Attrs(); len(attrs) > 0 {
				args := make(map[string]any, len(attrs))
				for _, a := range attrs {
					args[a.Key] = a.Value
				}
				ev.Args = args
			}
			events = append(events, ev)
		}
	}

	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", b, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// spanCat buckets span names into trace_event categories so viewers can
// filter by layer.
func spanCat(s *Span) string {
	switch {
	case s.Parent == "":
		return "task"
	case strings.HasPrefix(s.Name, "kv:"):
		return "kvstore"
	case strings.HasPrefix(s.Name, "fn:") || s.Name == "invoke" || s.Name == "startup" || s.Name == "queued":
		return "faas"
	case strings.HasPrefix(s.Name, "leg-") || s.Name == "setup":
		return "netsim"
	case strings.HasPrefix(s.Name, "part-") || strings.HasPrefix(s.Name, "chunk-") || s.Name == "transfer":
		return "transfer"
	case strings.HasPrefix(s.Name, "mpu-") || s.Name == "src-get" || s.Name == "dst-put" ||
		s.Name == "dst-delete" || s.Name == "get-range" || s.Name == "upload-part":
		return "objstore"
	case s.Name == "attempt":
		return "engine"
	case s.Name == "notify":
		return "notify"
	case s.Name == "changelog":
		return "changelog"
	default:
		return "span"
	}
}
