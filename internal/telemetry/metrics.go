package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use; a nil *Counter no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable integer level. The zero value is ready to use; a
// nil *Gauge no-ops.
//
// Set stores any int64, including negative values — a gauge is a level,
// not a count, and levels such as clock skew or budget headroom can be
// negative. The high-water mark (Max) only ever rises and starts at
// zero, so a gauge that never goes positive reports Max() == 0.
type Gauge struct {
	v  atomic.Int64
	hw atomic.Int64 // monotonic high-water mark of v, floored at 0
}

func (g *Gauge) raiseHW(n int64) {
	for {
		cur := g.hw.Load()
		if n <= cur || g.hw.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Set stores n (negative values included; see the type comment).
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
		g.raiseHW(n)
	}
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.raiseHW(g.v.Add(delta))
	}
}

// SetMax raises the gauge to n if n exceeds the current value (peak
// tracking, e.g. maximum concurrent function instances).
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	g.raiseHW(n)
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the monotonic high-water mark: the largest level the gauge
// has held since creation (or the last Registry.Reset), never below 0.
// Watermark readers use this to report peaks — e.g. maximum backlog
// depth — without sampling every transition.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.hw.Load()
}

// atomicFloat is a float64 with atomic add/min/max via CAS on its bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) storeMin(v float64) {
	for {
		old := f.bits.Load()
		if v >= math.Float64frombits(old) || f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if v <= math.Float64frombits(old) || f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// DefaultLatencyBuckets are the histogram bounds used for latencies, in
// seconds: 1 ms doubling up to ~35 simulated minutes.
func DefaultLatencyBuckets() []float64 {
	bounds := make([]float64, 22)
	v := 0.001
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// Histogram is a fixed-bucket histogram with lock-free observation.
// Bucket i counts observations in (bounds[i-1], bounds[i]]; an implicit
// overflow bucket catches values above the last bound. The zero value is
// not usable; create one with NewHistogram or Registry.Histogram. A nil
// *Histogram no-ops.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	count  atomic.Int64
	sum    atomicFloat
	min    atomicFloat
	max    atomicFloat
	// exemplars holds one retained-trace exemplar per bucket (incl. the
	// overflow bucket), set by the tracer's retention pipeline — never by
	// Observe — so every exposed exemplar references a kept trace.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one histogram bucket to a concrete retained trace: the
// observed value, the trace ID it came from, and optional extra labels
// (rule, destination). Rendered in WritePromText's OpenMetrics-style
// exemplar syntax.
type Exemplar struct {
	Value   float64
	TraceID string
	Labels  []Label
}

// exemplarCandidate is a deferred exemplar: instrumentation nominates it
// via Span.Exemplar, and the tracer flushes it into the histogram only if
// the span's trace survives retention.
type exemplarCandidate struct {
	hist   *Histogram
	value  float64
	labels []Label
}

// NewHistogram returns a histogram over the given ascending upper bounds
// (nil means DefaultLatencyBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	h := &Histogram{
		bounds:    append([]float64(nil), bounds...),
		counts:    make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// reset zeroes all observations in place, keeping the bucket layout.
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.store(0)
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	for i := range h.exemplars {
		h.exemplars[i].Store(nil)
	}
}

// setExemplar records a retained-trace exemplar in v's bucket, replacing
// any previous one (last retained wins, which keeps output deterministic
// given the tracer's deterministic flush order).
func (h *Histogram) setExemplar(v float64, traceID string, labels []Label) {
	if h == nil || len(h.exemplars) == 0 {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[idx].Store(&Exemplar{Value: v, TraceID: traceID, Labels: labels})
}

// Exemplars returns the per-bucket exemplars (nil entries for buckets
// without one), aligned with BucketCounts: one per bound plus overflow.
func (h *Histogram) Exemplars() []*Exemplar {
	if h == nil {
		return nil
	}
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// WorstExemplar returns the exemplar from the highest occupied bucket
// (nil when none): the retained trace behind the worst observed latency,
// which alert events link to.
func (h *Histogram) WorstExemplar() *Exemplar {
	if h == nil {
		return nil
	}
	for i := len(h.exemplars) - 1; i >= 0; i-- {
		if e := h.exemplars[i].Load(); e != nil {
			return e
		}
	}
	return nil
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.storeMin(v)
	h.max.storeMax(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count() == 0 {
		return 0
	}
	return h.Sum() / float64(h.Count())
}

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() float64 {
	if h.Count() == 0 {
		return 0
	}
	return h.min.load()
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h.Count() == 0 {
		return 0
	}
	return h.max.load()
}

// BucketCounts returns the per-bucket counts including the overflow
// bucket, and the bucket bounds.
func (h *Histogram) BucketCounts() (bounds []float64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return append([]float64(nil), h.bounds...), counts
}

// Quantile estimates the p-quantile (p in [0,1]) by linear interpolation
// within the containing bucket, clamped to the observed min/max. An
// empty (or nil) histogram returns 0 for every p; p <= 0 (or NaN)
// returns the observed minimum and p >= 1 the observed maximum, so the
// estimate never leaves the observed range — including observations
// below the first bound or in the overflow bucket.
func (h *Histogram) Quantile(p float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if !(p > 0) { // p <= 0 and NaN
		return h.Min()
	}
	if p >= 1 {
		return h.Max()
	}
	target := p * float64(n)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			// Interpolate within [lo, hi]: the bucket's bounds tightened to
			// the observed extremes. The first bucket has no lower bound and
			// the overflow bucket no upper one — without the min/max clamp a
			// single sample there would interpolate against ±infinity (or,
			// for negative observations, against a bogus 0 floor).
			lo := math.Inf(-1)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.max.load()
			if i < len(h.bounds) && h.bounds[i] < hi {
				hi = h.bounds[i]
			}
			if mn := h.min.load(); lo < mn {
				lo = mn
			}
			if hi < lo {
				hi = lo
			}
			frac := (target - float64(cum)) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return h.Max()
}

// Registry is a named collection of counters, gauges and histograms.
// Lookups get-or-create, so independent packages can share instruments by
// name. A nil *Registry returns nil instruments, which no-op.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	hists       map[string]*Histogram
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		hists:       make(map[string]*Histogram),
		counterVecs: make(map[string]*CounterVec),
		gaugeVecs:   make(map[string]*GaugeVec),
		histVecs:    make(map[string]*HistogramVec),
	}
}

// Reset zeroes every registered instrument in place — counters, gauges
// (level and high-water mark), histograms, and every labelled family
// child — while keeping instrument identities, so pointers held by
// long-lived services stay valid. Back-to-back experiment runs sharing
// one process use this for snapshot isolation: without it, level gauges
// such as engine.dlq.depth or faas.running leak their final value into
// the next run's report.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
		g.hw.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
	for _, v := range r.counterVecs {
		v.mu.Lock()
		for _, c := range v.children {
			c.v.Store(0)
		}
		v.mu.Unlock()
	}
	for _, v := range r.gaugeVecs {
		v.mu.Lock()
		for _, g := range v.children {
			g.v.Store(0)
			g.hw.Store(0)
		}
		v.mu.Unlock()
	}
	for _, v := range r.histVecs {
		v.mu.Lock()
		for _, h := range v.children {
			h.reset()
		}
		v.mu.Unlock()
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the default latency buckets,
// creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramBuckets(name, nil)
}

// HistogramBuckets is Histogram with explicit bucket bounds (applied only
// on first creation).
func (r *Registry) HistogramBuckets(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// WriteText dumps every non-empty instrument as sorted plain text:
// counters and gauges as "name value", histograms with count, sum,
// extremes and interpolated p50/p95/p99. Labelled family children are
// emitted as `name{k1="v1",k2="v2"} ...` with keys in sorted order, and
// lines sort on (name, canonical labels) — the output is byte-identical
// across runs regardless of registration or goroutine interleaving.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	type line struct{ key, text string }
	var lines []line
	addCounter := func(name, labels string, c *Counter) {
		if v := c.Value(); v != 0 {
			lines = append(lines, line{name + labels, fmt.Sprintf("%s%s %d\n", name, labels, v)})
		}
	}
	addGauge := func(name, labels string, g *Gauge) {
		if v := g.Value(); v != 0 {
			lines = append(lines, line{name + labels, fmt.Sprintf("%s%s %d\n", name, labels, v)})
		}
	}
	addHist := func(name, labels string, h *Histogram) {
		if h.Count() == 0 {
			return
		}
		lines = append(lines, line{name + labels, fmt.Sprintf(
			"%s%s count=%d sum=%.6f min=%.6f max=%.6f p50=%.6f p95=%.6f p99=%.6f\n",
			name, labels, h.Count(), h.Sum(), h.Min(), h.Max(),
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))})
	}
	r.mu.Lock()
	for name, c := range r.counters {
		addCounter(name, "", c)
	}
	for name, g := range r.gauges {
		addGauge(name, "", g)
	}
	for name, h := range r.hists {
		addHist(name, "", h)
	}
	for name, v := range r.counterVecs {
		v.mu.Lock()
		for labels, c := range v.children {
			addCounter(name, labels, c)
		}
		v.mu.Unlock()
	}
	for name, v := range r.gaugeVecs {
		v.mu.Lock()
		for labels, g := range v.children {
			addGauge(name, labels, g)
		}
		v.mu.Unlock()
	}
	for name, v := range r.histVecs {
		v.mu.Lock()
		for labels, h := range v.children {
			addHist(name, labels, h)
		}
		v.mu.Unlock()
	}
	r.mu.Unlock()
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].key != lines[j].key {
			return lines[i].key < lines[j].key
		}
		return lines[i].text < lines[j].text // name shared across kinds: break ties on content
	})
	for _, l := range lines {
		if _, err := io.WriteString(w, l.text); err != nil {
			return err
		}
	}
	return nil
}
