package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramQuantileEdgeCases pins the boundary behaviour the bench
// harness depends on: an estimate must never leave the observed range,
// whatever p or however sparse the histogram.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	bounds := []float64{1, 2, 4}
	cases := []struct {
		name    string
		observe []float64
		p       float64
		want    float64
	}{
		{"empty p50", nil, 0.5, 0},
		{"empty p0", nil, 0, 0},
		{"empty p1", nil, 1, 0},
		{"p0 returns min", []float64{1.5, 3, 3.5}, 0, 1.5},
		{"negative p returns min", []float64{1.5, 3}, -0.3, 1.5},
		{"NaN p returns min", []float64{1.5, 3}, math.NaN(), 1.5},
		{"p1 returns max", []float64{1.5, 3, 3.5}, 1, 3.5},
		{"p above 1 returns max", []float64{1.5, 3}, 1.7, 3},
		{"single overflow sample", []float64{100}, 0.5, 100},
		{"single overflow sample p99", []float64{100}, 0.99, 100},
		{"single first-bucket sample", []float64{0.5}, 0.5, 0.5},
		{"negative observation", []float64{-3}, 0.5, -3},
		// Bucket (2,4] tightened to the observed [2.5, 3.5]; target 0.02 of
		// 2 samples interpolates to 2.5 + 0.01*(3.5-2.5).
		{"interpolates within tightened bucket", []float64{2.5, 3.5}, 0.01, 2.51},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(bounds)
			for _, v := range tc.observe {
				h.Observe(v)
			}
			got := h.Quantile(tc.p)
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
}

// TestHistogramQuantileWithinObservedRange fuzzes p over a mixed histogram
// (underflow region, interior buckets, overflow) and asserts the estimate
// stays inside [Min, Max] and is monotone in p.
func TestHistogramQuantileWithinObservedRange(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{-2, 0.1, 1.5, 3, 3, 6, 20, 50} {
		h.Observe(v)
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.01 {
		q := h.Quantile(p)
		if q < h.Min()-1e-9 || q > h.Max()+1e-9 {
			t.Fatalf("Quantile(%v) = %v outside observed [%v, %v]", p, q, h.Min(), h.Max())
		}
		if q < prev-1e-9 {
			t.Fatalf("Quantile not monotone: p=%v gave %v after %v", p, q, prev)
		}
		prev = q
	}
}

func TestNilHistogramQuantile(t *testing.T) {
	var h *Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram Quantile = %v, want 0", got)
	}
}

// TestWriteTextDeterministicUnderConcurrentRegistration registers and
// bumps instruments from many goroutines, then checks WriteText emits the
// same sorted byte stream every time — the property the BENCH harness and
// golden files rely on.
func TestWriteTextDeterministicUnderConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				r.Counter(fmt.Sprintf("c.%02d", i)).Add(int64(i + 1))
				r.Gauge(fmt.Sprintf("g.%02d", i)).Set(int64(i + 1))
				r.Histogram(fmt.Sprintf("h.%02d", i)).Observe(float64(i + 1))
			}
		}(g)
	}
	wg.Wait()

	var first bytes.Buffer
	if err := r.WriteText(&first); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	for i := 0; i < 5; i++ {
		var again bytes.Buffer
		if err := r.WriteText(&again); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("WriteText not deterministic:\n--- first\n%s--- again\n%s", first.String(), again.String())
		}
	}

	lines := strings.Split(strings.TrimRight(first.String(), "\n"), "\n")
	if len(lines) != 60 {
		t.Fatalf("got %d lines, want 60", len(lines))
	}
	for i := 1; i < len(lines); i++ {
		a := strings.SplitN(lines[i-1], " ", 2)[0]
		b := strings.SplitN(lines[i], " ", 2)[0]
		if a >= b {
			t.Fatalf("output not name-sorted: %q before %q", lines[i-1], lines[i])
		}
	}
}
