package telemetry

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// endTrace builds one small task-shaped trace (root, a child, a fork with
// a leg) and ends every span, root last. extra mutates the root before
// anything ends (to plant anomaly attrs).
func endTrace(tr *Tracer, id string, extra func(root *Span)) {
	root := tr.StartTrace(id, "task")
	if extra != nil {
		extra(root)
	}
	c := root.Child("notify")
	c.End()
	f := root.Fork("fn:i")
	leg := f.Child("leg-up")
	leg.End()
	root.End()
	f.End() // the faas layer ends the instance span after the handler returns
}

// spansPerTrace groups a snapshot by trace ID.
func spansPerTrace(spans []*Span) map[string]int {
	out := make(map[string]int)
	for _, s := range spans {
		out[s.TraceID]++
	}
	return out
}

func TestSetEnabledMidFlightDropsTreeWhole(t *testing.T) {
	tr := NewTracer(newFakeClock().now)
	tr.Enable()

	root := tr.StartTrace("t", "task")
	root.Child("notify").End()
	if got := len(tr.Spans()); got != 1 {
		t.Fatalf("ended child of a live trace should be visible, got %d spans", got)
	}

	// Disable mid-flight: the already-ended child must not survive as a
	// half-recorded tree once the root ends.
	tr.SetEnabled(false)
	root.End()
	if got := len(tr.Spans()); got != 0 {
		t.Fatalf("tree disabled mid-flight half-recorded %d spans", got)
	}
	st := tr.Stats()
	if st.TreesDropped != 1 || st.SpansRetained != 0 {
		t.Fatalf("stats = %+v, want 1 dropped tree and 0 retained spans", st)
	}

	// Re-enabling records fresh traces normally.
	tr.SetEnabled(true)
	endTrace(tr, "t2", nil)
	if got := spansPerTrace(tr.Spans())["t2"]; got != 4 {
		t.Fatalf("post-re-enable trace recorded %d spans, want 4", got)
	}
}

// TestSetEnabledRaceInFlight hammers SetEnabled toggles against live
// trace trees under -race. The invariant is all-or-nothing per trace:
// every trace ID present in the snapshot carries all 4 of its spans.
func TestSetEnabledRaceInFlight(t *testing.T) {
	tr := NewTracer(newFakeClock().now)
	tr.Enable()

	const workers, iters = 8, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				endTrace(tr, fmt.Sprintf("w%d-%d", w, i), nil)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			tr.SetEnabled(false)
			tr.SetEnabled(true)
		}
	}()
	wg.Wait()
	<-done
	tr.SetEnabled(true)

	for id, n := range spansPerTrace(tr.Spans()) {
		if n != 4 {
			t.Fatalf("trace %s half-recorded: %d of 4 spans", id, n)
		}
	}
	st := tr.Stats()
	if st.SpansStarted != st.SpansRetained+st.SpansDropped {
		t.Fatalf("span accounting leak: %+v", st)
	}
}

func TestClassifySpansVerdicts(t *testing.T) {
	tr := NewTracer(newFakeClock().now)
	tr.Enable()
	build := func(f func(root *Span)) []*Span {
		tr.Reset()
		endTrace(tr, "t", f)
		return tr.Spans()
	}
	cases := []struct {
		name string
		f    func(root *Span)
		want Verdict
	}{
		{"clean", nil, ""},
		{"dlq attr", func(r *Span) { r.Set("dlq", true) }, VerdictDLQ},
		{"redrive cause", func(r *Span) { r.Set("cause", "redrive") }, VerdictDLQ},
		{"crashed", func(r *Span) { r.Set("crashed", true) }, VerdictCrashRecovery},
		{"resumed", func(r *Span) { r.Set("resumed", int64(1)) }, VerdictCrashRecovery},
		{"lock recovery cause", func(r *Span) { r.Set("cause", "lock-recovery") }, VerdictCrashRecovery},
		{"repair cause", func(r *Span) { r.Set("cause", "repair") }, VerdictRepair},
		{"breaker degraded", func(r *Span) { r.Child("attempt").Set("degraded", true).End() }, VerdictBreakerDegraded},
		{"netsim float degraded is benign", func(r *Span) { r.Child("leg-down").Set("degraded", 2.5).End() }, ""},
		{"hedge span", func(r *Span) { r.Child("hedge-claim").End() }, VerdictHedge},
		{"hedged attr", func(r *Span) { r.Set("hedged", true) }, VerdictHedge},
		{"retry backoff", func(r *Span) { r.Child("backoff").End() }, VerdictRetry},
		{"req backoff", func(r *Span) { r.Child("req-backoff").End() }, VerdictRetry},
		{"error attr", func(r *Span) { r.Set("error", "boom") }, VerdictError},
		{"deadline", func(r *Span) { r.Set("deadline_exceeded", true) }, VerdictError},
		{"deduped is benign", func(r *Span) { r.Set("deduped", true) }, ""},
		// Priority: dlq outranks everything else present.
		{"dlq beats retry", func(r *Span) { r.Set("dlq", true); r.Child("backoff").End() }, VerdictDLQ},
		{"crash beats error", func(r *Span) { r.Set("crashed", true).Set("error", "x") }, VerdictCrashRecovery},
	}
	for _, tc := range cases {
		if got := ClassifySpans(build(tc.f)); got != tc.want {
			t.Errorf("%s: verdict %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestRetentionHeadSamplingExact(t *testing.T) {
	const n, traces = 4, 100
	keptBySeed := make(map[uint64][]string)
	for _, seed := range []uint64{0, 1, 7} {
		tr := NewTracer(newFakeClock().now)
		tr.SetPolicy(&RetentionPolicy{Seed: seed, HeadSampleN: n})
		tr.Enable()
		for i := 0; i < traces; i++ {
			endTrace(tr, fmt.Sprintf("t%03d", i), nil)
		}
		var ids []string
		seen := map[string]bool{}
		for _, s := range tr.Spans() {
			if !seen[s.TraceID] {
				seen[s.TraceID] = true
				ids = append(ids, s.TraceID)
			}
		}
		if len(ids) != traces/n {
			t.Fatalf("seed %d: kept %d of %d clean traces, want exactly %d", seed, len(ids), traces, traces/n)
		}
		if vc := tr.VerdictCounts(); vc[VerdictSample] != int64(traces/n) {
			t.Fatalf("seed %d: verdict counts %v", seed, vc)
		}
		keptBySeed[seed] = ids
	}
	if fmt.Sprint(keptBySeed[0]) == fmt.Sprint(keptBySeed[1]) {
		t.Fatal("different seeds kept the identical head sample (seed not phasing the counter)")
	}
}

// TestRetentionAnomaliesAlwaysKept interleaves anomalous and clean
// traces: every anomalous trace must be kept in full regardless of seed,
// and only clean traces consume the head-sample counter.
func TestRetentionAnomaliesAlwaysKept(t *testing.T) {
	tr := NewTracer(newFakeClock().now)
	tr.SetPolicy(&RetentionPolicy{Seed: 3, HeadSampleN: 8})
	tr.Enable()
	for i := 0; i < 64; i++ {
		if i%4 == 0 {
			endTrace(tr, fmt.Sprintf("anom-%02d", i), func(r *Span) { r.Child("backoff").End() })
		} else {
			endTrace(tr, fmt.Sprintf("clean-%02d", i), nil)
		}
	}
	counts := spansPerTrace(tr.Spans())
	anom := 0
	for id, n := range counts {
		if n != 4 && !(id[:4] == "anom" && n == 5) { // anomalous traces carry the extra backoff span
			t.Fatalf("trace %s retained %d spans (partial tree)", id, n)
		}
		if id[:4] == "anom" {
			anom++
		}
	}
	if anom != 16 {
		t.Fatalf("kept %d of 16 anomalous traces", anom)
	}
	vc := tr.VerdictCounts()
	if vc[VerdictRetry] != 16 {
		t.Fatalf("retry verdicts %d, want 16", vc[VerdictRetry])
	}
	if vc[VerdictSample] != 6 { // 48 clean traces, 1-in-8
		t.Fatalf("sample verdicts %d, want 6", vc[VerdictSample])
	}
}

func TestRetentionSlowThresholdAndQuantile(t *testing.T) {
	// Absolute threshold: a root longer than SlowThreshold is kept.
	pol := &RetentionPolicy{SlowThreshold: 50 * time.Millisecond}
	fast := &Span{Start: time.Unix(0, 0), Finish: time.Unix(0, int64(10*time.Millisecond)), ended: true}
	slow := &Span{Start: time.Unix(0, 0), Finish: time.Unix(0, int64(200*time.Millisecond)), ended: true}
	if v, keep := pol.Decide(fast, []*Span{fast}); keep {
		t.Fatalf("fast trace kept as %q", v)
	}
	if v, keep := pol.Decide(slow, []*Span{slow}); !keep || v != VerdictSlow {
		t.Fatalf("slow trace verdict %q keep=%v", v, keep)
	}

	// Trailing quantile: after a warmup of ~10ms roots, a 10x outlier is
	// kept — and the estimate uses only its predecessors.
	pol = &RetentionPolicy{SlowQuantile: 0.95, SlowFactor: 4, SlowWarmup: 16}
	mk := func(d time.Duration) *Span {
		return &Span{Start: time.Unix(0, 0), Finish: time.Unix(0, int64(d)), ended: true}
	}
	for i := 0; i < 32; i++ {
		s := mk(10 * time.Millisecond)
		if v, keep := pol.Decide(s, []*Span{s}); keep {
			t.Fatalf("warmup trace %d kept as %q", i, v)
		}
	}
	out := mk(100 * time.Millisecond)
	if v, keep := pol.Decide(out, []*Span{out}); !keep || v != VerdictSlow {
		t.Fatalf("outlier verdict %q keep=%v", v, keep)
	}
	// The outlier is now in the stream but does not dominate: a normal
	// trace right after still drops.
	s := mk(10 * time.Millisecond)
	if v, keep := pol.Decide(s, []*Span{s}); keep {
		t.Fatalf("post-outlier normal trace kept as %q", v)
	}
}

// TestExemplarOnlyOnRetained verifies the deferred-exemplar contract:
// histograms expose exemplars only from traces that survived retention.
func TestExemplarOnlyOnRetained(t *testing.T) {
	tr := NewTracer(newFakeClock().now)
	tr.SetPolicy(&RetentionPolicy{HeadSampleN: 0}) // drop every clean trace
	tr.Enable()
	h := NewHistogram([]float64{0.1, 1, 10})

	// Dropped clean trace: its exemplar must never surface.
	root := tr.StartTrace("dropped", "task")
	root.Exemplar(h, 0.5)
	root.End()
	for i, e := range h.Exemplars() {
		if e != nil {
			t.Fatalf("bucket %d has exemplar %+v from a dropped trace", i, e)
		}
	}

	// Kept anomalous trace: exemplar lands in the right bucket.
	root = tr.StartTrace("kept", "task")
	root.Set("error", "boom")
	root.Exemplar(h, 0.5, L("rule", "a->b"))
	root.End()
	ex := h.Exemplars()
	if ex[1] == nil || ex[1].TraceID != "kept" || ex[1].Value != 0.5 {
		t.Fatalf("kept trace exemplar missing or wrong: %+v", ex[1])
	}
	if got := h.WorstExemplar(); got == nil || got.TraceID != "kept" {
		t.Fatalf("WorstExemplar = %+v", got)
	}

	// A span ending after its tree flushed (the faas "fn:" pattern) can
	// still attach exemplars when the tree was kept.
	root = tr.StartTrace("late", "task")
	root.Set("error", "late boom")
	f := root.Fork("fn:i")
	root.End()
	f.Exemplar(h, 20)
	f.End()
	if got := h.WorstExemplar(); got == nil || got.TraceID != "late" {
		t.Fatalf("late exemplar not attached: %+v", got)
	}
}

func TestRetentionSummaryDeterministic(t *testing.T) {
	render := func() string {
		tr := NewTracer(newFakeClock().now)
		tr.SetPolicy(&RetentionPolicy{Seed: 1, HeadSampleN: 2})
		tr.Enable()
		endTrace(tr, "a", func(r *Span) { r.Set("dlq", true) })
		endTrace(tr, "b", func(r *Span) { r.Child("backoff").End() })
		for i := 0; i < 4; i++ {
			endTrace(tr, fmt.Sprintf("c%d", i), nil)
		}
		var buf bytes.Buffer
		if err := tr.WriteRetentionSummary(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("summary not deterministic:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{"dlq", "retry", "sample", "verdict"} {
		if !bytes.Contains([]byte(a), []byte(want)) {
			t.Fatalf("summary missing %q:\n%s", want, a)
		}
	}
}

func TestPromExemplarGolden(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		h := r.HistogramBuckets("engine.task.seconds", []float64{0.5, 1, 2})
		lag := r.HistogramVecBuckets("engine.lag.seconds", []float64{1, 10}).
			With(L("dest", "aws:us-east-1"), L("rule", "a->b"))

		tr := NewTracer(newFakeClock().now)
		tr.SetPolicy(&RetentionPolicy{HeadSampleN: 0})
		tr.Enable()

		// Retained anomalous trace contributes exemplars to both families.
		root := tr.StartTrace("rule a->b k@1", "task")
		root.Set("dlq", true)
		h.Observe(0.7)
		root.Exemplar(h, 0.7, L("rule", "a->b"))
		lag.Observe(12)
		root.Exemplar(lag, 12)
		root.End()

		// Dropped clean trace: observations count, exemplars do not.
		root = tr.StartTrace("rule a->b k@2", "task")
		h.Observe(3)
		root.Exemplar(h, 3)
		root.End()
		return r
	}
	var a, b bytes.Buffer
	if err := build().WritePromText(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePromText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two identical builds differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	checkGolden(t, "metrics_prom_exemplar.golden", a.Bytes())
}
