package telemetry

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Category names one cause of replication delay on a task's critical
// path, mirroring the paper's model parameters: invocation latency I,
// startup delay D, scheduler postponement P, client setup S, transfer
// legs, KV accesses, object-store requests, retry/backoff waits,
// partition stalls, and residual idle/orchestration time.
type Category string

// Critical-path delay categories.
const (
	CatNotify    Category = "notify"    // T_n: source notification delivery (plus batching hold)
	CatInvoke    Category = "invoke"    // I: async invocation API latency
	CatQueued    Category = "queued"    // concurrency throttling before an instance is granted
	CatStartup   Category = "startup"   // D: cold-start delay
	CatPostpone  Category = "postpone"  // P: scheduler postponement
	CatSetup     Category = "setup"     // S: SDK client setup
	CatTransfer  Category = "transfer"  // wide-area transfer legs
	CatStall     Category = "stall"     // inter-region partition stalls
	CatObjStore  Category = "objstore"  // object-store requests (GET/PUT/multipart)
	CatKV        Category = "kv"        // KV accesses (lock, part pool, completion)
	CatChangelog Category = "changelog" // changelog lookup/apply
	CatBackoff   Category = "backoff"   // retry backoff waits (task- and request-level)
	CatHedge     Category = "hedge"     // speculative tail-part duplication (hedged claims/transfers)
	CatScrub     Category = "scrub"     // anti-entropy listing, digest exchange and diffing
	CatIdle      Category = "idle"      // orchestration gaps and handler time outside any child span
)

// CatAttr is the span attribute key an instrumentation point may set to
// pin the span's critical-path category explicitly; it wins over the
// name-based inference below.
const CatAttr = "cat"

// categoryOf maps one span to its delay category: an explicit CatAttr
// tag first, then the span-name conventions of the replication stack.
func categoryOf(s *Span) Category {
	attrs := s.Attrs()
	for i := len(attrs) - 1; i >= 0; i-- {
		if attrs[i].Key == CatAttr {
			if c, ok := attrs[i].Value.(string); ok {
				return Category(c)
			}
		}
	}
	switch name := s.Name; {
	case name == "notify":
		return CatNotify
	case name == "invoke":
		return CatInvoke
	case name == "queued":
		return CatQueued
	case name == "startup":
		return CatStartup
	case name == "setup":
		return CatSetup
	case name == "backoff" || name == "req-backoff":
		return CatBackoff
	case name == "partition-stall":
		return CatStall
	case name == "leg-down" || name == "leg-up":
		return CatTransfer
	case hasPrefix(name, "hedge-"):
		return CatHedge
	case name == "changelog":
		return CatChangelog
	case hasPrefix(name, "kv:"):
		return CatKV
	case hasPrefix(name, "scrub"):
		return CatScrub
	case name == "src-get" || name == "dst-put" || name == "dst-delete" ||
		name == "get-range" || name == "upload-part" || hasPrefix(name, "mpu-"):
		return CatObjStore
	default:
		// Structural spans: the task root, attempts, fn:<instance>
		// executions, part-/chunk- containers. Their own uncovered time is
		// orchestration/idle.
		return CatIdle
	}
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// CategoryShare is one category's attributed slice of a critical path.
type CategoryShare struct {
	Category Category
	Duration time.Duration
	Seconds  float64
	Fraction float64 // of the root span duration (0 when the root is zero-length)
}

// Breakdown attributes one trace's end-to-end duration to delay
// categories along its critical path. The category durations partition
// the root span exactly: summed as Durations they equal Total, and
// summed as Seconds they match TotalSeconds to within float rounding
// (well under 1e-9 s for any simulated task).
type Breakdown struct {
	TraceID string
	Root    *Span
	Total   time.Duration
	// TotalSeconds is Total in seconds (the root span duration).
	TotalSeconds float64
	// Shares is the ranked attribution, largest first (ties by name).
	Shares []CategoryShare
	// Degraded is the critical-path time spent inside attempts the
	// circuit breaker degraded to the single-function path.
	Degraded time.Duration
}

// Seconds returns the named category's attributed seconds (0 when absent).
func (b *Breakdown) Seconds(c Category) float64 {
	for _, s := range b.Shares {
		if s.Category == c {
			return s.Seconds
		}
	}
	return 0
}

// Dominant returns the category holding the largest share ("" for an
// empty breakdown).
func (b *Breakdown) Dominant() Category {
	if len(b.Shares) == 0 {
		return ""
	}
	return b.Shares[0].Category
}

// cpNode is one span in the reconstructed tree, with its interval
// clamped to its parent's.
type cpNode struct {
	s             *Span
	start, finish time.Time
	kids          []*cpNode
}

// CriticalPaths reconstructs every trace among spans and returns one
// Breakdown per trace, ordered by root start time then trace ID. A
// trace contributes only if its root span (Parent == "") ended; spans
// whose parent never ended are not attributed.
func CriticalPaths(spans []*Span) []*Breakdown {
	byTrace := make(map[string][]*Span)
	var order []string
	for _, s := range spans {
		if _, ok := byTrace[s.TraceID]; !ok {
			order = append(order, s.TraceID)
		}
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}

	var out []*Breakdown
	for _, id := range order {
		if b := breakdownOf(id, byTrace[id]); b != nil {
			out = append(out, b)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Root.Start.Equal(out[j].Root.Start) {
			return out[i].Root.Start.Before(out[j].Root.Start)
		}
		return out[i].TraceID < out[j].TraceID
	})
	return out
}

// CriticalPaths is the tracer-level convenience: one Breakdown per
// collected trace.
func (t *Tracer) CriticalPaths() []*Breakdown {
	return CriticalPaths(t.Spans())
}

// breakdownOf builds the span tree of one trace and walks its critical
// path.
func breakdownOf(traceID string, spans []*Span) *Breakdown {
	byPath := make(map[string]*cpNode, len(spans))
	var root *cpNode
	for _, s := range spans {
		n := &cpNode{s: s, start: s.Start, finish: s.Finish}
		byPath[s.Path] = n
		if s.Parent == "" && root == nil {
			root = n
		}
	}
	if root == nil {
		return nil
	}
	for _, n := range byPath {
		if n == root {
			continue
		}
		if p, ok := byPath[n.s.Parent]; ok {
			p.kids = append(p.kids, n)
		}
	}
	// Clamp every node to its parent's window (top-down) and order
	// children deterministically by finish, then start, then path — the
	// backward walk scans this order from the end.
	var prepare func(n *cpNode)
	prepare = func(n *cpNode) {
		sort.Slice(n.kids, func(i, j int) bool {
			a, b := n.kids[i], n.kids[j]
			if !a.finish.Equal(b.finish) {
				return a.finish.Before(b.finish)
			}
			if !a.start.Equal(b.start) {
				return a.start.Before(b.start)
			}
			return a.s.Path < b.s.Path
		})
		for _, k := range n.kids {
			if k.start.Before(n.start) {
				k.start = n.start
			}
			if k.finish.After(n.finish) {
				k.finish = n.finish
			}
			if k.finish.Before(k.start) {
				k.finish = k.start
			}
			prepare(k)
		}
	}
	prepare(root)

	b := &Breakdown{TraceID: traceID, Root: root.s, Total: root.finish.Sub(root.start)}
	cats := make(map[Category]time.Duration)
	emit := func(n *cpNode, lo, hi time.Time, degraded bool) {
		seg := hi.Sub(lo)
		if seg <= 0 {
			return
		}
		if degraded {
			b.Degraded += seg
		}
		cat := categoryOf(n.s)
		if cat == CatStartup {
			// The startup span covers D + P in one sleep; its p_s attribute
			// carries the scheduler postponement to split out.
			if p := attrSeconds(n.s, "p_s"); p > 0 {
				pd := time.Duration(p * float64(time.Second))
				if pd > seg {
					pd = seg
				}
				cats[CatPostpone] += pd
				seg -= pd
			}
		}
		cats[cat] += seg
	}
	walkCritical(root, false, emit)

	for c, d := range cats {
		s := CategoryShare{Category: c, Duration: d, Seconds: d.Seconds()}
		if b.Total > 0 {
			s.Fraction = float64(d) / float64(b.Total)
		}
		b.Shares = append(b.Shares, s)
	}
	sort.Slice(b.Shares, func(i, j int) bool {
		if b.Shares[i].Duration != b.Shares[j].Duration {
			return b.Shares[i].Duration > b.Shares[j].Duration
		}
		return b.Shares[i].Category < b.Shares[j].Category
	})
	b.TotalSeconds = b.Total.Seconds()
	return b
}

// walkCritical walks n's critical path backward from its finish: the
// child that finished last is the one the parent waited on; before that
// child started, the enabling predecessor is the last sibling to finish
// before that start, and gaps no child covers belong to the parent
// itself. Concurrent forks off the critical path (siblings still running
// when the critical child finished) contribute nothing — exactly the
// paper's question of which lane gated the task. emit receives disjoint
// segments that partition [n.start, n.finish].
func walkCritical(n *cpNode, degraded bool, emit func(*cpNode, time.Time, time.Time, bool)) {
	degraded = degraded || isDegradedAttempt(n.s)
	cur := n.finish
	i := len(n.kids) - 1
	for cur.After(n.start) {
		for i >= 0 && n.kids[i].finish.After(cur) {
			i--
		}
		if i < 0 || !n.kids[i].finish.After(n.start) {
			emit(n, n.start, cur, degraded)
			return
		}
		k := n.kids[i]
		if k.finish.Before(cur) {
			emit(n, k.finish, cur, degraded)
		}
		walkCritical(k, degraded, emit)
		cur = k.start
		i--
	}
}

// isDegradedAttempt reports whether s is an engine attempt the circuit
// breaker degraded to the single-function path.
func isDegradedAttempt(s *Span) bool {
	if s.Name != "attempt" {
		return false
	}
	for _, a := range s.Attrs() {
		if a.Key == "degraded" {
			if v, ok := a.Value.(bool); ok && v {
				return true
			}
		}
	}
	return false
}

// attrSeconds returns the last float64 value of the named attribute (0
// when absent).
func attrSeconds(s *Span, key string) float64 {
	attrs := s.Attrs()
	for i := len(attrs) - 1; i >= 0; i-- {
		if attrs[i].Key == key {
			if v, ok := attrs[i].Value.(float64); ok {
				return v
			}
		}
	}
	return 0
}

// Attribution aggregates critical-path breakdowns across many tasks.
type Attribution struct {
	Tasks        int
	Total        time.Duration
	TotalSeconds float64
	Shares       []CategoryShare // ranked, fractions of the summed total
	Degraded     time.Duration
}

// Aggregate sums per-task breakdowns into one ranked attribution.
func Aggregate(bds []*Breakdown) Attribution {
	cats := make(map[Category]time.Duration)
	a := Attribution{}
	for _, b := range bds {
		a.Tasks++
		a.Total += b.Total
		a.Degraded += b.Degraded
		for _, s := range b.Shares {
			cats[s.Category] += s.Duration
		}
	}
	for c, d := range cats {
		s := CategoryShare{Category: c, Duration: d, Seconds: d.Seconds()}
		if a.Total > 0 {
			s.Fraction = float64(d) / float64(a.Total)
		}
		a.Shares = append(a.Shares, s)
	}
	sort.Slice(a.Shares, func(i, j int) bool {
		if a.Shares[i].Duration != a.Shares[j].Duration {
			return a.Shares[i].Duration > a.Shares[j].Duration
		}
		return a.Shares[i].Category < a.Shares[j].Category
	})
	a.TotalSeconds = a.Total.Seconds()
	return a
}

// Seconds returns the named category's aggregate seconds (0 when absent).
func (a Attribution) Seconds(c Category) float64 {
	for _, s := range a.Shares {
		if s.Category == c {
			return s.Seconds
		}
	}
	return 0
}

// Dominant returns the category holding the largest aggregate share
// ("" when no tasks were attributed).
func (a Attribution) Dominant() Category {
	if len(a.Shares) == 0 {
		return ""
	}
	return a.Shares[0].Category
}

// WriteText renders the attribution as a ranked table.
func (a Attribution) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-10s %12s %8s\n", "category", "seconds", "share"); err != nil {
		return err
	}
	for _, s := range a.Shares {
		if _, err := fmt.Fprintf(w, "%-10s %12.3f %7.1f%%\n", s.Category, s.Seconds, 100*s.Fraction); err != nil {
			return err
		}
	}
	if a.Degraded > 0 {
		if _, err := fmt.Fprintf(w, "(%0.3fs of the critical path ran on breaker-degraded attempts)\n",
			a.Degraded.Seconds()); err != nil {
			return err
		}
	}
	return nil
}
