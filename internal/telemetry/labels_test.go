package telemetry

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// fixtureRegistry builds a deterministic registry mixing unlabelled
// aggregates with labelled families, exercising every instrument kind.
func fixtureRegistry() *Registry {
	r := NewRegistry()
	r.Counter("engine.tasks.ok").Add(40)
	r.Gauge("engine.dlq.depth").Set(3)
	h := r.HistogramBuckets("engine.task.seconds", []float64{0.5, 1, 2, 4})
	for _, v := range []float64{0.2, 0.7, 0.9, 1.5, 3.0, 9.0} {
		h.Observe(v)
	}
	tasks := r.CounterVec("engine.tasks.ok")
	tasks.With(L("rule", "a->b"), L("dest", "aws:us-east-1")).Add(25)
	tasks.With(L("rule", "a->c"), L("dest", "gcp:eu-west1")).Add(15)
	lagv := r.HistogramVecBuckets("engine.lag.seconds", []float64{1, 10})
	lagv.With(L("dest", "aws:us-east-1")).Observe(0.4)
	lagv.With(L("dest", "aws:us-east-1")).Observe(12.0)
	lagv.With(L("dest", "gcp:eu-west1")).Observe(2.5)
	bk := r.GaugeVec("engine.lag.backlog")
	bk.With(L("dest", "aws:us-east-1")).Set(2)
	bk.With(L("dest", "gcp:eu-west1")).Set(-1) // negative levels are legal
	r.CounterVec("quoted").With(L("k", `va"l\ue`+"\n")).Inc()
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWriteTextGoldenLabelled(t *testing.T) {
	var a, b bytes.Buffer
	if err := fixtureRegistry().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := fixtureRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two same-seed runs differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	checkGolden(t, "metrics_text.golden", a.Bytes())
}

func TestWritePromTextGolden(t *testing.T) {
	var a, b bytes.Buffer
	if err := fixtureRegistry().WritePromText(&a); err != nil {
		t.Fatal(err)
	}
	if err := fixtureRegistry().WritePromText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two same-seed runs differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	checkGolden(t, "metrics_prom.golden", a.Bytes())
}

// TestLabelOrderingConcurrent registers the same families from many
// goroutines in scrambled label orders; output must not depend on which
// goroutine created a child first, and label pairs must canonicalize to
// one sorted key regardless of argument order.
func TestLabelOrderingConcurrent(t *testing.T) {
	render := func(shift int) string {
		r := NewRegistry()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 16; i++ {
					n := (i + g + shift) % 16
					rule := fmt.Sprintf("rule-%02d", n)
					if n%2 == 0 {
						r.CounterVec("x.tasks").With(L("rule", rule), L("dest", "d1")).Inc()
					} else {
						r.CounterVec("x.tasks").With(L("dest", "d1"), L("rule", rule)).Inc()
					}
					r.GaugeVec("x.backlog").With(L("rule", rule)).Set(int64(n))
					r.HistogramVec("x.lag").With(L("rule", rule)).Observe(float64(n) + 0.5)
				}
			}(g)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		var pb bytes.Buffer
		if err := r.WritePromText(&pb); err != nil {
			t.Fatal(err)
		}
		return buf.String() + "\n===\n" + pb.String()
	}
	base := render(0)
	for shift := 1; shift < 4; shift++ {
		if got := render(shift); got != base {
			t.Fatalf("output depends on registration order (shift %d):\n%s\nvs\n%s", shift, got, base)
		}
	}
}

func TestCanonicalLabelsSorted(t *testing.T) {
	a := canonicalLabels([]Label{{"z", "1"}, {"a", "2"}})
	b := canonicalLabels([]Label{{"a", "2"}, {"z", "1"}})
	want := `{a="2",z="1"}`
	if a != want || b != want {
		t.Fatalf("canonicalLabels not order-independent: %q vs %q (want %q)", a, b, want)
	}
}

// TestRegistryReset is the regression test for gauge state leaking
// between back-to-back runs that share one registry: after Reset every
// instrument — including high-water marks and labelled children — must
// read zero while previously handed-out pointers stay usable.
func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("engine.retries")
	g := r.Gauge("engine.dlq.depth")
	h := r.Histogram("engine.task.seconds")
	vc := r.CounterVec("engine.retries").With(L("rule", "a->b"))
	vg := r.GaugeVec("faas.running").With(L("region", "aws:us-east-1"))
	c.Add(7)
	g.Set(5)
	g.Set(2) // Max stays 5
	h.Observe(1.5)
	vc.Add(3)
	vg.Add(4)
	if g.Max() != 5 {
		t.Fatalf("Gauge.Max before reset = %d, want 5", g.Max())
	}
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 ||
		vc.Value() != 0 || vg.Value() != 0 || vg.Max() != 0 {
		t.Fatalf("Reset left state: c=%d g=%d g.max=%d h=%d vc=%d vg=%d",
			c.Value(), g.Value(), g.Max(), h.Count(), vc.Value(), vg.Value())
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("WriteText after Reset not empty:\n%s", buf.String())
	}
	// Old pointers must still feed the registry's instruments.
	c.Inc()
	g.Set(9)
	h.Observe(0.25)
	if r.Counter("engine.retries").Value() != 1 {
		t.Fatal("counter identity lost across Reset")
	}
	if r.Gauge("engine.dlq.depth").Value() != 9 || r.Gauge("engine.dlq.depth").Max() != 9 {
		t.Fatal("gauge identity lost across Reset")
	}
	if r.Histogram("engine.task.seconds").Count() != 1 {
		t.Fatal("histogram identity lost across Reset")
	}
	// Second run's dump reflects only post-Reset activity.
	buf.Reset()
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "engine.dlq.depth 9\nengine.retries 1\nengine.task.seconds count=1 sum=0.250000 min=0.250000 max=0.250000 p50=0.250000 p95=0.250000 p99=0.250000\n"
	if buf.String() != want {
		t.Fatalf("post-Reset dump:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestMirrorInstruments(t *testing.T) {
	r := NewRegistry()
	mc := r.CounterVec("m.ok").Mirror(r.Counter("m.ok"), L("rule", "r1"))
	mc.Add(2)
	mc.Inc()
	if mc.Value() != 3 || r.CounterVec("m.ok").With(L("rule", "r1")).Value() != 3 {
		t.Fatalf("mirror counter agg=%d child=%d", mc.Value(), r.CounterVec("m.ok").With(L("rule", "r1")).Value())
	}
	mg := r.GaugeVec("m.depth").Mirror(r.Gauge("m.depth"), L("rule", "r1"))
	mg.Set(4)
	mg.Add(-1)
	if mg.Value() != 3 || r.GaugeVec("m.depth").With(L("rule", "r1")).Value() != 3 {
		t.Fatal("mirror gauge diverged")
	}
	if r.GaugeVec("m.depth").With(L("rule", "r1")).Max() != 4 {
		t.Fatal("mirror gauge child high-water missed")
	}
	mh := r.HistogramVec("m.lag").Mirror(r.Histogram("m.lag"), L("rule", "r1"))
	mh.Observe(1.5)
	if r.Histogram("m.lag").Count() != 1 || r.HistogramVec("m.lag").With(L("rule", "r1")).Count() != 1 {
		t.Fatal("mirror histogram diverged")
	}
	// Zero values must no-op without panicking.
	var zc MirrorCounter
	var zg MirrorGauge
	var zh MirrorHistogram
	zc.Inc()
	zg.Set(1)
	zh.Observe(1)
	// Nil vecs hand out nil children that no-op too.
	var nv *CounterVec
	nv.With(L("a", "b")).Inc()
}
