package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Verdict names why a trace was retained. Verdicts form a priority order
// — when several signals are present the strongest one wins — so kept
// traces carry a single, stable classification.
type Verdict string

// Retention verdicts, strongest first. VerdictAll marks traces kept by a
// nil (keep-everything) policy; VerdictSample marks the seeded head
// sample of otherwise clean traffic.
const (
	VerdictDLQ             Verdict = "dlq"
	VerdictCrashRecovery   Verdict = "crash-recovery"
	VerdictRepair          Verdict = "repair"
	VerdictBreakerDegraded Verdict = "breaker-degraded"
	VerdictHedge           Verdict = "hedge"
	VerdictRetry           Verdict = "retry"
	VerdictError           Verdict = "error"
	VerdictSlow            Verdict = "slow"
	VerdictSample          Verdict = "sample"
	VerdictAll             Verdict = "all"
)

// RetentionAttr is the attribute stamped on a retained trace's root span
// carrying the verdict, so exports (Chrome trace args, critical-path
// summaries) can group by retention reason.
const RetentionAttr = "retention"

// verdictRank orders verdicts for summaries (strongest first).
var verdictRank = map[Verdict]int{
	VerdictDLQ: 0, VerdictCrashRecovery: 1, VerdictRepair: 2,
	VerdictBreakerDegraded: 3, VerdictHedge: 4, VerdictRetry: 5,
	VerdictError: 6, VerdictSlow: 7, VerdictSample: 8, VerdictAll: 9,
}

// RetentionPolicy is the seeded, deterministic tail-based keep/drop rule
// consulted when a trace's root span ends. Anomalous trees (any DLQ,
// crash-recovery, repair, breaker-degraded, hedge, retry or error signal
// — see ClassifySpans) are always kept; slow trees (root duration over
// SlowThreshold, or over SlowFactor times the trailing SlowQuantile of
// all prior root durations) are kept; of the remaining clean trees,
// exactly 1 in HeadSampleN is kept by a seeded counter.
//
// Determinism: the slow-duration stream observes every root duration,
// kept or dropped, and the clean counter advances only on clean trees —
// so for a fixed workload the set of anomaly- and slow-kept traces is
// identical across seeds, and Seed only phases which clean trees land in
// the head sample.
type RetentionPolicy struct {
	// Seed phases the head-sample counter: clean tree k is kept when
	// (k+Seed) % HeadSampleN == 0.
	Seed uint64
	// HeadSampleN keeps 1 in N clean trees. N <= 0 drops every clean
	// tree; N == 1 keeps them all.
	HeadSampleN int
	// SlowThreshold, when positive, is an absolute per-scenario bound on
	// the root duration above which a tree is kept as slow.
	SlowThreshold time.Duration
	// SlowQuantile/SlowFactor keep a tree whose root duration exceeds
	// SlowFactor times the trailing SlowQuantile estimate of prior root
	// durations (both must be positive; the estimator warms up over
	// SlowWarmup observations — default 32 — before it fires).
	SlowQuantile float64
	SlowFactor   float64
	SlowWarmup   int

	mu    sync.Mutex
	durs  *Histogram
	seen  int
	clean uint64
}

// NewSampledPolicy returns a policy keeping anomalies plus a seeded
// 1-in-n head sample, with trailing-quantile slow detection at 4x p95.
func NewSampledPolicy(seed uint64, n int) *RetentionPolicy {
	return &RetentionPolicy{Seed: seed, HeadSampleN: n, SlowQuantile: 0.95, SlowFactor: 4}
}

// Decide classifies one ended trace (root plus its whole span tree) and
// reports whether to keep it. A nil policy keeps everything under
// VerdictAll.
func (p *RetentionPolicy) Decide(root *Span, spans []*Span) (Verdict, bool) {
	if p == nil {
		return VerdictAll, true
	}
	slow := p.observeSlow(root.Duration())
	if v := ClassifySpans(spans); v != "" {
		return v, true
	}
	if slow {
		return VerdictSlow, true
	}
	p.mu.Lock()
	k := p.clean
	p.clean++
	p.mu.Unlock()
	if p.HeadSampleN > 0 && (k+p.Seed)%uint64(p.HeadSampleN) == 0 {
		return VerdictSample, true
	}
	return "", false
}

// observeSlow evaluates the slow verdict against the trailing estimate
// built from durations seen so far — before folding d in, so a trace is
// judged only against its predecessors — then records d. Every root
// duration is recorded regardless of the eventual verdict, which keeps
// the estimator (and hence the slow-kept set) independent of Seed.
func (p *RetentionPolicy) observeSlow(d time.Duration) bool {
	slow := p.SlowThreshold > 0 && d > p.SlowThreshold
	if p.SlowQuantile <= 0 || p.SlowFactor <= 0 {
		return slow
	}
	warmup := p.SlowWarmup
	if warmup <= 0 {
		warmup = 32
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.durs == nil {
		p.durs = NewHistogram(nil)
	}
	if !slow && p.seen >= warmup {
		if q := p.durs.Quantile(p.SlowQuantile); q > 0 && d.Seconds() > p.SlowFactor*q {
			slow = true
		}
	}
	p.durs.Observe(d.Seconds())
	p.seen++
	return slow
}

// ClassifySpans scans one trace's spans for anomaly signals and returns
// the strongest matching verdict ("" when the trace is clean). Signals,
// in priority order:
//
//   - dlq: a span carrying a truthy "dlq" attr, or a root whose "cause"
//     attr is "redrive" (the task is a DLQ redrive re-dispatch);
//   - crash-recovery: truthy "crashed"/"resumed"/"resumed_converged"
//     attrs, or cause "lock-recovery";
//   - repair: cause "repair" (anti-entropy re-dispatch);
//   - breaker-degraded: a "degraded" attr that is boolean true (netsim
//     emits a numeric "degraded" factor, which is not a breaker signal);
//   - hedge: a "hedge-" span, a truthy "hedged" attr, or cat=hedge;
//   - retry: a backoff / req-backoff span;
//   - error: truthy "error"/"aborted"/"deadline_exceeded" attrs.
func ClassifySpans(spans []*Span) Verdict {
	const (
		fDLQ = 1 << iota
		fCrash
		fRepair
		fDegraded
		fHedge
		fRetry
		fError
	)
	var flags int
	for _, s := range spans {
		switch s.Name {
		case "backoff", "req-backoff":
			flags |= fRetry
		}
		if hasPrefix(s.Name, "hedge-") {
			flags |= fHedge
		}
		for _, a := range s.Attrs() {
			switch a.Key {
			case "dlq":
				if attrTruthy(a.Value) {
					flags |= fDLQ
				}
			case "cause":
				switch a.Value {
				case "redrive":
					flags |= fDLQ
				case "repair":
					flags |= fRepair
				case "lock-recovery":
					flags |= fCrash
				}
			case "crashed", "resumed", "resumed_converged":
				if attrTruthy(a.Value) {
					flags |= fCrash
				}
			case "degraded":
				if b, ok := a.Value.(bool); ok && b {
					flags |= fDegraded
				}
			case "hedged":
				if attrTruthy(a.Value) {
					flags |= fHedge
				}
			case CatAttr:
				if a.Value == string(CatHedge) {
					flags |= fHedge
				}
			case "error", "aborted", "deadline_exceeded":
				if attrTruthy(a.Value) {
					flags |= fError
				}
			}
		}
	}
	switch {
	case flags&fDLQ != 0:
		return VerdictDLQ
	case flags&fCrash != 0:
		return VerdictCrashRecovery
	case flags&fRepair != 0:
		return VerdictRepair
	case flags&fDegraded != 0:
		return VerdictBreakerDegraded
	case flags&fHedge != 0:
		return VerdictHedge
	case flags&fRetry != 0:
		return VerdictRetry
	case flags&fError != 0:
		return VerdictError
	}
	return ""
}

// attrTruthy reports whether an anomaly attr value is "set": boolean
// true, a non-empty string, or a nonzero number.
func attrTruthy(v any) bool {
	switch x := v.(type) {
	case bool:
		return x
	case string:
		return x != ""
	case int:
		return x != 0
	case int64:
		return x != 0
	case float64:
		return x != 0
	}
	return v != nil
}

// tracerCounters is the tracer's self-overhead meter: every field is a
// monotonic count maintained on the span hot path with single atomics.
type tracerCounters struct {
	treesStarted  atomic.Int64
	treesRetained atomic.Int64
	treesDropped  atomic.Int64
	spansStarted  atomic.Int64
	spansRetained atomic.Int64
	spansDropped  atomic.Int64
	spansRecycled atomic.Int64
	spansLate     atomic.Int64
	retainedBytes atomic.Int64
}

func (c *tracerCounters) reset() {
	c.treesStarted.Store(0)
	c.treesRetained.Store(0)
	c.treesDropped.Store(0)
	c.spansStarted.Store(0)
	c.spansRetained.Store(0)
	c.spansDropped.Store(0)
	c.spansRecycled.Store(0)
	c.spansLate.Store(0)
	c.retainedBytes.Store(0)
}

// TracerStats is a snapshot of the telemetry layer's own overhead: trace
// and span volumes through the retention pipeline and an estimate of the
// bytes held by retained spans.
type TracerStats struct {
	TreesStarted  int64 `json:"trees_started"`
	TreesRetained int64 `json:"trees_retained"`
	TreesDropped  int64 `json:"trees_dropped"`
	SpansStarted  int64 `json:"spans_started"`
	SpansRetained int64 `json:"spans_retained"`
	SpansDropped  int64 `json:"spans_dropped"`
	SpansRecycled int64 `json:"spans_recycled"`
	SpansLate     int64 `json:"spans_late"`
	RetainedBytes int64 `json:"retained_bytes"`
}

// Stats snapshots the tracer's self-overhead counters.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	return TracerStats{
		TreesStarted:  t.stats.treesStarted.Load(),
		TreesRetained: t.stats.treesRetained.Load(),
		TreesDropped:  t.stats.treesDropped.Load(),
		SpansStarted:  t.stats.spansStarted.Load(),
		SpansRetained: t.stats.spansRetained.Load(),
		SpansDropped:  t.stats.spansDropped.Load(),
		SpansRecycled: t.stats.spansRecycled.Load(),
		SpansLate:     t.stats.spansLate.Load(),
		RetainedBytes: t.stats.retainedBytes.Load(),
	}
}

// VerdictCounts returns the number of retained traces per verdict.
func (t *Tracer) VerdictCounts() map[Verdict]int64 {
	if t == nil {
		return nil
	}
	t.vmu.Lock()
	defer t.vmu.Unlock()
	out := make(map[Verdict]int64, len(t.verdicts))
	for v, n := range t.verdicts {
		out[v] = n
	}
	return out
}

// spanBytes estimates the resident size of one retained span: struct
// overhead plus its strings and attrs. An accounting estimate, not an
// exact heap measurement.
func spanBytes(s *Span) int64 {
	n := int64(160) // struct, slice/map headers, padding
	n += int64(len(s.TraceID) + len(s.Parent) + len(s.Path) + len(s.Name) + len(s.Lane))
	s.mu.Lock()
	for _, a := range s.attrs {
		n += int64(32 + len(a.Key))
		if v, ok := a.Value.(string); ok {
			n += int64(len(v))
		}
	}
	s.mu.Unlock()
	return n
}

// WriteRetentionSummary renders the retention outcome of the collected
// spans: pipeline totals, then one row per verdict with kept trace/span
// counts and the dominant critical-path category of those traces — the
// "what kind of anomalies did we keep, and what gated them" view used by
// areplica -trace and profile.
func (t *Tracer) WriteRetentionSummary(w io.Writer) error {
	if t == nil {
		return nil
	}
	st := t.Stats()
	if _, err := fmt.Fprintf(w,
		"traces: %d started, %d retained, %d dropped · spans: %d started, %d retained, %d dropped (%d recycled) · retained ≈ %s\n",
		st.TreesStarted, st.TreesRetained, st.TreesDropped,
		st.SpansStarted, st.SpansRetained, st.SpansDropped, st.SpansRecycled,
		fmtBytes(st.RetainedBytes)); err != nil {
		return err
	}

	type row struct {
		verdict Verdict
		traces  int
		spans   int
		agg     []*Breakdown
	}
	spans := t.Spans()
	byTrace := make(map[string][]*Span)
	verdictOf := make(map[string]Verdict)
	for _, s := range spans {
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
		if s.Parent == "" {
			for _, a := range s.Attrs() {
				if a.Key == RetentionAttr {
					if v, ok := a.Value.(string); ok {
						verdictOf[s.TraceID] = Verdict(v)
					}
				}
			}
		}
	}
	rows := make(map[Verdict]*row)
	for id, ss := range byTrace {
		v, ok := verdictOf[id]
		if !ok {
			v = VerdictAll // in-flight or pre-retention spans
		}
		r := rows[v]
		if r == nil {
			r = &row{verdict: v}
			rows[v] = r
		}
		r.traces++
		r.spans += len(ss)
		if b := CriticalPaths(ss); len(b) > 0 {
			r.agg = append(r.agg, b...)
		}
	}
	ordered := make([]*row, 0, len(rows))
	for _, r := range rows {
		ordered = append(ordered, r)
	}
	sort.Slice(ordered, func(i, j int) bool {
		ri, oki := verdictRank[ordered[i].verdict]
		rj, okj := verdictRank[ordered[j].verdict]
		if oki != okj {
			return oki
		}
		if ri != rj {
			return ri < rj
		}
		return ordered[i].verdict < ordered[j].verdict
	})
	if len(ordered) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%-17s %7s %7s  %s\n", "verdict", "traces", "spans", "dominant"); err != nil {
		return err
	}
	for _, r := range ordered {
		dom := Aggregate(r.agg).Dominant()
		if dom == "" {
			dom = "-"
		}
		if _, err := fmt.Fprintf(w, "%-17s %7d %7d  %s\n", r.verdict, r.traces, r.spans, dom); err != nil {
			return err
		}
	}
	return nil
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
