package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"
)

// cpTracer returns an enabled tracer with a fixed now (tests set explicit
// span times) and the base instant spans hang off.
func cpTracer() (*Tracer, time.Time) {
	base := time.Unix(0, 0)
	tr := NewTracer(func() time.Time { return base })
	tr.Enable()
	return tr, base
}

func at(base time.Time, sec float64) time.Time {
	return base.Add(time.Duration(sec * float64(time.Second)))
}

// checkPartition asserts the breakdown's category durations partition the
// root span exactly (the ISSUE's 1e-9 s acceptance bound — here exact, in
// integer nanoseconds).
func checkPartition(t *testing.T, b *Breakdown) {
	t.Helper()
	var sum time.Duration
	var frac float64
	for _, s := range b.Shares {
		sum += s.Duration
		frac += s.Fraction
	}
	if sum != b.Total {
		t.Fatalf("share durations sum to %v, root span is %v", sum, b.Total)
	}
	var secs float64
	for _, s := range b.Shares {
		secs += s.Seconds
	}
	if math.Abs(secs-b.TotalSeconds) > 1e-9 {
		t.Fatalf("share seconds sum to %v, want %v (diff %g)", secs, b.TotalSeconds, secs-b.TotalSeconds)
	}
	if b.Total > 0 && math.Abs(frac-1) > 1e-12 {
		t.Fatalf("fractions sum to %v, want 1", frac)
	}
}

func TestCriticalPathSerial(t *testing.T) {
	tr, base := cpTracer()
	root := tr.StartTraceAt("t1", "task", at(base, 0))
	root.ChildAt("notify", at(base, 0)).EndAt(at(base, 1))
	root.ChildAt("invoke", at(base, 1)).EndAt(at(base, 2))
	root.ChildAt("kv:lock", at(base, 2)).EndAt(at(base, 3))
	root.ChildAt("src-get", at(base, 3)).EndAt(at(base, 6))
	root.ChildAt("dst-put", at(base, 6)).EndAt(at(base, 9))
	root.EndAt(at(base, 10)) // 9..10 uncovered -> idle

	bds := tr.CriticalPaths()
	if len(bds) != 1 {
		t.Fatalf("got %d breakdowns, want 1", len(bds))
	}
	b := bds[0]
	checkPartition(t, b)
	want := map[Category]float64{
		CatObjStore: 6, CatNotify: 1, CatInvoke: 1, CatKV: 1, CatIdle: 1,
	}
	for c, sec := range want {
		if got := b.Seconds(c); math.Abs(got-sec) > 1e-12 {
			t.Errorf("category %s = %vs, want %vs", c, got, sec)
		}
	}
	if b.Dominant() != CatObjStore {
		t.Errorf("dominant = %s, want %s", b.Dominant(), CatObjStore)
	}
}

func TestCriticalPathConcurrentLanes(t *testing.T) {
	tr, base := cpTracer()
	root := tr.StartTraceAt("t1", "task", at(base, 0))
	// Fast lane finishes early: entirely off the critical path.
	fast := root.ForkAt("fn:a", at(base, 1))
	fast.ChildAt("leg-down", at(base, 1)).EndAt(at(base, 4))
	fast.EndAt(at(base, 5))
	// Slow lane gates the task.
	slow := root.ForkAt("fn:b", at(base, 1))
	slow.ChildAt("leg-up", at(base, 2)).EndAt(at(base, 7))
	slow.EndAt(at(base, 8))
	root.EndAt(at(base, 10))

	b := tr.CriticalPaths()[0]
	checkPartition(t, b)
	// Critical path: root idle 0-1 and 8-10, fn:b idle 1-2 and 7-8,
	// leg-up 2-7. fn:a's leg-down must contribute nothing.
	if got := b.Seconds(CatTransfer); math.Abs(got-5) > 1e-12 {
		t.Errorf("transfer = %vs, want 5 (off-path lane leaked in?)", got)
	}
	if got := b.Seconds(CatIdle); math.Abs(got-5) > 1e-12 {
		t.Errorf("idle = %vs, want 5", got)
	}
}

func TestCriticalPathStartupSplit(t *testing.T) {
	tr, base := cpTracer()
	root := tr.StartTraceAt("t1", "task", at(base, 0))
	fn := root.ForkAt("fn:x", at(base, 0))
	// D+P sleep covered by one startup span: 3s total, 2s of it postponement.
	fn.ChildAt("startup", at(base, 0)).Set("d_s", 1.0).Set("p_s", 2.0).EndAt(at(base, 3))
	fn.ChildAt("leg-up", at(base, 3)).EndAt(at(base, 9))
	fn.EndAt(at(base, 9))
	root.EndAt(at(base, 9))

	b := tr.CriticalPaths()[0]
	checkPartition(t, b)
	if got := b.Seconds(CatStartup); math.Abs(got-1) > 1e-12 {
		t.Errorf("startup = %vs, want 1", got)
	}
	if got := b.Seconds(CatPostpone); math.Abs(got-2) > 1e-12 {
		t.Errorf("postpone = %vs, want 2", got)
	}
}

func TestCriticalPathExplicitCategoryAttr(t *testing.T) {
	tr, base := cpTracer()
	root := tr.StartTraceAt("t1", "task", at(base, 0))
	root.ChildAt("mystery-op", at(base, 0)).
		Set(CatAttr, string(CatBackoff)).
		EndAt(at(base, 4))
	root.EndAt(at(base, 4))

	b := tr.CriticalPaths()[0]
	checkPartition(t, b)
	if got := b.Seconds(CatBackoff); math.Abs(got-4) > 1e-12 {
		t.Errorf("backoff = %vs, want 4 (cat attr should win over name)", got)
	}
}

func TestCriticalPathDegradedRollup(t *testing.T) {
	tr, base := cpTracer()
	root := tr.StartTraceAt("t1", "task", at(base, 0))
	att := root.ChildAt("attempt", at(base, 0))
	att.Set("degraded", true)
	att.ChildAt("dst-put", at(base, 1)).EndAt(at(base, 5))
	att.EndAt(at(base, 6))
	root.EndAt(at(base, 8))

	b := tr.CriticalPaths()[0]
	checkPartition(t, b)
	if got := b.Degraded.Seconds(); math.Abs(got-6) > 1e-12 {
		t.Errorf("degraded = %vs, want 6 (entire attempt window)", got)
	}
	// Degradation is a rollup, not a category: the shares still partition.
	if got := b.Seconds(CatObjStore); math.Abs(got-4) > 1e-12 {
		t.Errorf("objstore = %vs, want 4", got)
	}
}

func TestCriticalPathChildClampedToParent(t *testing.T) {
	tr, base := cpTracer()
	root := tr.StartTraceAt("t1", "task", at(base, 0))
	// Child overhangs its parent on both sides; it must be clamped, never
	// pushing attributed time outside the root window.
	root.ChildAt("leg-up", at(base, -2)).EndAt(at(base, 12))
	root.EndAt(at(base, 10))

	b := tr.CriticalPaths()[0]
	checkPartition(t, b)
	if got := b.Seconds(CatTransfer); math.Abs(got-10) > 1e-12 {
		t.Errorf("transfer = %vs, want 10", got)
	}
}

func TestCriticalPathsOrderAndAggregate(t *testing.T) {
	tr, base := cpTracer()
	// Second trace starts earlier: output must be ordered by root start.
	r2 := tr.StartTraceAt("zz", "task", at(base, 5))
	r2.ChildAt("leg-up", at(base, 5)).EndAt(at(base, 8))
	r2.EndAt(at(base, 8))
	r1 := tr.StartTraceAt("aa", "task", at(base, 0))
	r1.ChildAt("src-get", at(base, 0)).EndAt(at(base, 2))
	r1.EndAt(at(base, 2))

	bds := tr.CriticalPaths()
	if len(bds) != 2 || bds[0].TraceID != "aa" || bds[1].TraceID != "zz" {
		t.Fatalf("breakdown order wrong: %+v", []string{bds[0].TraceID, bds[1].TraceID})
	}

	agg := Aggregate(bds)
	if agg.Tasks != 2 {
		t.Fatalf("aggregate tasks = %d, want 2", agg.Tasks)
	}
	if got := agg.Total; got != 5*time.Second {
		t.Fatalf("aggregate total = %v, want 5s", got)
	}
	if agg.Dominant() != CatTransfer {
		t.Errorf("aggregate dominant = %s, want transfer", agg.Dominant())
	}
	var sb strings.Builder
	if err := agg.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(sb.String(), "transfer") || !strings.Contains(sb.String(), "objstore") {
		t.Errorf("WriteText missing categories:\n%s", sb.String())
	}
}

func TestCriticalPathUnendedRootSkipped(t *testing.T) {
	tr, base := cpTracer()
	root := tr.StartTraceAt("t1", "task", at(base, 0))
	root.ChildAt("src-get", at(base, 0)).EndAt(at(base, 2))
	// Root never ends: only the child reaches the tracer, and the trace
	// has no root span -> no breakdown.
	if bds := tr.CriticalPaths(); len(bds) != 0 {
		t.Fatalf("got %d breakdowns for a trace with no ended root, want 0", len(bds))
	}
	_ = root
}

// TestCriticalPathPartitionStress builds a deterministic irregular tree —
// overlapping children, nested forks, gaps, zero-length spans — and checks
// the partition invariant plus run-to-run determinism.
func TestCriticalPathPartitionStress(t *testing.T) {
	build := func() []*Breakdown {
		tr, base := cpTracer()
		root := tr.StartTraceAt("t1", "task", at(base, 0))
		root.ChildAt("notify", at(base, 0)).EndAt(at(base, 0.25))
		for i := 0; i < 3; i++ {
			s := 0.25 + float64(i)*0.1
			fn := root.ForkAt("fn:x", at(base, s))
			fn.ChildAt("startup", at(base, s)).Set("p_s", 0.05).EndAt(at(base, s+0.3))
			leg := fn.ChildAt("leg-up", at(base, s+0.3))
			leg.ChildAt("partition-stall", at(base, s+0.4)).EndAt(at(base, s+0.4)) // zero-length
			leg.EndAt(at(base, s+1.2+float64(i)*0.5))
			fn.ChildAt("kv:done", at(base, s+1.2+float64(i)*0.5)).EndAt(at(base, s+1.3+float64(i)*0.5))
			fn.EndAt(at(base, s+1.3+float64(i)*0.5))
		}
		root.ChildAt("changelog", at(base, 3.1)).EndAt(at(base, 3.4))
		root.EndAt(at(base, 3.5))
		return tr.CriticalPaths()
	}
	a, b := build(), build()
	if len(a) != 1 {
		t.Fatalf("got %d breakdowns, want 1", len(a))
	}
	checkPartition(t, a[0])
	if len(a[0].Shares) != len(b[0].Shares) {
		t.Fatalf("non-deterministic share count: %d vs %d", len(a[0].Shares), len(b[0].Shares))
	}
	for i := range a[0].Shares {
		if a[0].Shares[i] != b[0].Shares[i] {
			t.Fatalf("non-deterministic share %d: %+v vs %+v", i, a[0].Shares[i], b[0].Shares[i])
		}
	}
}

func TestCategoryOfNames(t *testing.T) {
	tr, base := cpTracer()
	root := tr.StartTraceAt("t1", "task", at(base, 0))
	cases := map[string]Category{
		"notify": CatNotify, "invoke": CatInvoke, "queued": CatQueued,
		"startup": CatStartup, "setup": CatSetup, "backoff": CatBackoff,
		"req-backoff": CatBackoff, "partition-stall": CatStall,
		"leg-down": CatTransfer, "leg-up": CatTransfer,
		"changelog": CatChangelog, "kv:claim": CatKV,
		"src-get": CatObjStore, "dst-put": CatObjStore, "dst-delete": CatObjStore,
		"get-range": CatObjStore, "upload-part": CatObjStore, "mpu-create": CatObjStore,
		"attempt": CatIdle, "chunk-0": CatIdle,
	}
	for name, want := range cases {
		sp := root.ChildAt(name, at(base, 0))
		if got := categoryOf(sp); got != want {
			t.Errorf("categoryOf(%q) = %s, want %s", name, got, want)
		}
	}
}
