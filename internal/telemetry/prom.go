package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promName sanitizes an instrument name for the Prometheus text format:
// every rune outside [a-zA-Z0-9_:] becomes '_' (the registry's dotted
// names map onto the conventional underscore hierarchy), and a leading
// digit is prefixed with '_'.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// mergeLabels splices extra `k="v"` pairs into a canonical label string
// (which is either empty or `{...}`), appending after the existing pairs.
func mergeLabels(canonical, extra string) string {
	if extra == "" {
		return canonical
	}
	if canonical == "" {
		return "{" + extra + "}"
	}
	return canonical[:len(canonical)-1] + "," + extra + "}"
}

// promExemplar renders an OpenMetrics exemplar suffix for one bucket
// line — ` # {trace_id="...",k="v"} value` — or "" when the bucket has
// none. The trace ID links the bucket to a trace the retention pipeline
// kept, so it is always resolvable in the matching trace export.
func promExemplar(e *Exemplar) string {
	if e == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(` # {trace_id="`)
	b.WriteString(escapeLabelValue(e.TraceID))
	b.WriteByte('"')
	for _, l := range e.Labels {
		b.WriteByte(',')
		b.WriteString(promName(l.Key))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteString("} ")
	b.WriteString(promFloat(e.Value))
	return b.String()
}

type promFam struct {
	name string // sanitized family name
	kind string // counter | gauge | histogram
	rows []promRow
}

type promRow struct {
	key  string // sort key within the family (canonical labels)
	text string
}

// WritePromText writes every non-empty instrument in the Prometheus text
// exposition format: one `# TYPE` header per family, counters and gauges
// as `name{labels} value`, histograms as cumulative `name_bucket{le=...}`
// series plus `name_sum` and `name_count`. Unlabelled instruments are the
// aggregate series of their family; labelled children follow with their
// canonical sorted label sets. Output is byte-deterministic: families
// sort by name and series by labels, independent of registration order.
func (r *Registry) WritePromText(w io.Writer) error {
	if r == nil {
		return nil
	}
	fams := make(map[string]*promFam)
	fam := func(name, kind string) *promFam {
		pn := promName(name)
		f, ok := fams[pn]
		if !ok {
			f = &promFam{name: pn, kind: kind}
			fams[pn] = f
		}
		return f
	}
	addCounter := func(name, labels string, c *Counter) {
		if v := c.Value(); v != 0 {
			f := fam(name, "counter")
			f.rows = append(f.rows, promRow{labels, fmt.Sprintf("%s%s %d\n", f.name, labels, v)})
		}
	}
	addGauge := func(name, labels string, g *Gauge) {
		if v := g.Value(); v != 0 {
			f := fam(name, "gauge")
			f.rows = append(f.rows, promRow{labels, fmt.Sprintf("%s%s %d\n", f.name, labels, v)})
		}
	}
	addHist := func(name, labels string, h *Histogram) {
		if h.Count() == 0 {
			return
		}
		f := fam(name, "histogram")
		var b strings.Builder
		bounds, counts := h.BucketCounts()
		exemplars := h.Exemplars()
		var cum int64
		for i, bound := range bounds {
			cum += counts[i]
			le := mergeLabels(labels, `le="`+promFloat(bound)+`"`)
			fmt.Fprintf(&b, "%s_bucket%s %d%s\n", f.name, le, cum, promExemplar(exemplars[i]))
		}
		cum += counts[len(counts)-1]
		inf := mergeLabels(labels, `le="+Inf"`)
		fmt.Fprintf(&b, "%s_bucket%s %d%s\n", f.name, inf, cum, promExemplar(exemplars[len(exemplars)-1]))
		fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labels, promFloat(h.Sum()))
		fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labels, h.Count())
		f.rows = append(f.rows, promRow{labels, b.String()})
	}
	r.mu.Lock()
	for name, c := range r.counters {
		addCounter(name, "", c)
	}
	for name, g := range r.gauges {
		addGauge(name, "", g)
	}
	for name, h := range r.hists {
		addHist(name, "", h)
	}
	for name, v := range r.counterVecs {
		v.mu.Lock()
		for labels, c := range v.children {
			addCounter(name, labels, c)
		}
		v.mu.Unlock()
	}
	for name, v := range r.gaugeVecs {
		v.mu.Lock()
		for labels, g := range v.children {
			addGauge(name, labels, g)
		}
		v.mu.Unlock()
	}
	for name, v := range r.histVecs {
		v.mu.Lock()
		for labels, h := range v.children {
			addHist(name, labels, h)
		}
		v.mu.Unlock()
	}
	r.mu.Unlock()
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		sort.Slice(f.rows, func(i, j int) bool {
			if f.rows[i].key != f.rows[j].key {
				return f.rows[i].key < f.rows[j].key
			}
			return f.rows[i].text < f.rows[j].text
		})
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, row := range f.rows {
			if _, err := io.WriteString(w, row.text); err != nil {
				return err
			}
		}
	}
	return nil
}
