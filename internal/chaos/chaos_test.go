package chaos

import (
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/telemetry"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// TestChaosDeterministicStreams verifies the core reproducibility
// contract: two injectors armed with the same profile and seed draw
// identical fault schedules, and a different seed draws a different one.
func TestChaosDeterministicStreams(t *testing.T) {
	draw := func(seed string) []ObjVerdict {
		p, _ := Lookup("storage-flaky")
		p.Seed = seed
		ij := NewInjector(simclock.New(epoch), p, telemetry.NewRegistry())
		out := make([]ObjVerdict, 200)
		for i := range out {
			out[i] = ij.Obj("aws:us-east-1", "put")
		}
		return out
	}
	a, b, c := draw("7"), draw("7"), draw("8")
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs between identically-seeded injectors: %+v vs %+v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seed 7 and seed 8 drew identical fault schedules")
	}
}

// TestChaosStreamsIndependentPerScope verifies per-(kind, scope) decision
// streams: faults drawn for one region do not perturb another region's
// schedule, which keeps multi-region runs reproducible under refactors.
func TestChaosStreamsIndependentPerScope(t *testing.T) {
	p, _ := Lookup("storage-flaky")
	mk := func() *Injector { return NewInjector(simclock.New(epoch), p, telemetry.NewRegistry()) }

	solo := mk()
	var want []ObjVerdict
	for i := 0; i < 50; i++ {
		want = append(want, solo.Obj("aws:us-east-1", "put"))
	}

	mixed := mk()
	for i := 0; i < 50; i++ {
		mixed.Obj("azure:eastus", "put") // interleaved other-region traffic
		if got := mixed.Obj("aws:us-east-1", "put"); got != want[i] {
			t.Fatalf("verdict %d perturbed by other-region draws: %+v vs %+v", i, got, want[i])
		}
	}
}

// TestChaosNilInjectorInjectsNothing covers the nil-safety contract the
// substrates rely on to carry the pointer unconditionally.
func TestChaosNilInjectorInjectsNothing(t *testing.T) {
	var ij *Injector
	if v := ij.Obj("r", "put"); v.Fail || v.Delay != 0 {
		t.Fatal("nil injector failed an object request")
	}
	if ij.ObjMpuVanish("r") || ij.KVContention("r") || ij.FnColdStorm("r") {
		t.Fatal("nil injector injected a fault")
	}
	if d := ij.KVThrottle("r"); d != 0 {
		t.Fatal("nil injector throttled")
	}
	if _, crashed := ij.FnCrash("r"); crashed {
		t.Fatal("nil injector crashed an instance")
	}
	if f := ij.FnStraggler("r"); f != 1 {
		t.Fatal("nil injector degraded an instance")
	}
	if stall, bw := ij.Net("a", "b", "p", "q"); stall != 0 || bw != 1 {
		t.Fatal("nil injector touched the network")
	}
	if v := ij.Notify("r"); v.Drop || v.Duplicate || v.Extra != 0 {
		t.Fatal("nil injector touched a notification")
	}
	if ij.Profile().Enabled() {
		t.Fatal("nil injector reports an enabled profile")
	}
}

// TestChaosPartitionWindow exercises the scheduled-partition fault: legs
// entering the window stall for its remainder, intra-region legs are
// exempt, and outside the window nothing stalls.
func TestChaosPartitionWindow(t *testing.T) {
	clk := simclock.New(epoch)
	p := Profile{Name: "t", Partitions: []Partition{
		{A: "aws", B: "azure:eastus", Start: 10 * time.Second, Duration: 30 * time.Second},
	}}
	ij := NewInjector(clk, p, nil)

	if stall, _ := ij.Net("aws:us-east-1", "azure:eastus", "aws", "azure"); stall != 0 {
		t.Fatalf("stall before the window: %v", stall)
	}
	clk.Go(func() { clk.Sleep(20 * time.Second) })
	clk.Quiesce()

	stall, _ := ij.Net("aws:us-east-1", "azure:eastus", "aws", "azure")
	if stall != 20*time.Second {
		t.Fatalf("mid-window stall = %v, want the remaining 20s", stall)
	}
	// Symmetric: the reverse direction is equally partitioned.
	if s2, _ := ij.Net("azure:eastus", "aws:us-east-1", "azure", "aws"); s2 != stall {
		t.Fatalf("partition is not symmetric: %v vs %v", s2, stall)
	}
	// Unmatched pair and intra-region legs are unaffected.
	if s3, _ := ij.Net("gcp:us-east1", "azure:westus2", "gcp", "azure"); s3 != 0 {
		t.Fatal("partition leaked onto an unmatched pair")
	}
	if s4, _ := ij.Net("aws:us-east-1", "aws:us-east-1", "aws", "aws"); s4 != 0 {
		t.Fatal("partition applied to intra-region traffic")
	}

	clk.Go(func() { clk.Sleep(25 * time.Second) })
	clk.Quiesce()
	if s5, _ := ij.Net("aws:us-east-1", "azure:eastus", "aws", "azure"); s5 != 0 {
		t.Fatalf("stall after the window lifted: %v", s5)
	}
}

// TestChaosParse covers CLI profile specs.
func TestChaosParse(t *testing.T) {
	p, err := Parse("mixed@7")
	if err != nil || p.Name != "mixed" || p.Seed != "7" {
		t.Fatalf("Parse(mixed@7) = %+v, %v", p, err)
	}
	if !p.Enabled() {
		t.Fatal("mixed profile must be enabled")
	}
	if _, err := Parse("no-such-profile"); err == nil {
		t.Fatal("unknown profile must error")
	}
	none, err := Parse("none")
	if err != nil || none.Enabled() {
		t.Fatalf("none profile must parse and stay disabled: %+v, %v", none, err)
	}
	names := Names()
	found := false
	for _, n := range names {
		if n == "mixed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v, missing mixed", names)
	}
}

// TestChaosInjectionCounted verifies the chaos.injected telemetry.
func TestChaosInjectionCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := Profile{Name: "t", ObjFailRate: 1}
	ij := NewInjector(simclock.New(epoch), p, reg)
	for i := 0; i < 5; i++ {
		if v := ij.Obj("r", "put"); !v.Fail {
			t.Fatal("rate-1 profile must fail every request")
		}
	}
	if got := reg.Counter("chaos.injected").Value(); got != 5 {
		t.Fatalf("chaos.injected = %d, want 5", got)
	}
	if got := reg.Counter("chaos.injected." + KindObjFail).Value(); got != 5 {
		t.Fatalf("chaos.injected.%s = %d, want 5", KindObjFail, got)
	}
}
