// Package chaos is a seeded, virtual-clock-driven fault-injection
// framework. One Injector is armed per world (world.SetChaos) and every
// substrate consults it at its operation boundaries: the object store for
// transient 503s / slow requests / vanished multipart uploads, the KV
// store for throttling and contention storms, the FaaS platform for
// instance crashes, cold-start storms and straggler bandwidth collapse,
// the network for link degradation and scheduled inter-region partitions,
// and notification delivery for loss, duplication and reordering.
//
// Every decision is drawn from a per-(fault-kind, region) generator seeded
// by the profile's identity, so identically-seeded runs inject identical
// fault schedules and stay byte-for-byte reproducible. All Injector
// methods are nil-safe: a nil *Injector injects nothing, so substrates
// carry the pointer unconditionally.
package chaos

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/simclock"
	"repro/internal/simrand"
	"repro/internal/telemetry"
)

// Fault kinds, used for telemetry counter names (chaos.injected.<kind>).
const (
	KindObjFail      = "obj_fail"
	KindObjSlow      = "obj_slow"
	KindObjMpuVanish = "obj_mpu_vanish"
	KindKVThrottle   = "kv_throttle"
	KindKVContention = "kv_contention"
	KindFnCrash      = "fn_crash"
	KindFnColdStorm  = "fn_cold_storm"
	KindFnStraggler  = "fn_straggler"
	KindNetDegrade   = "net_degrade"
	KindNetPartition = "net_partition"
	KindNotifyLoss   = "notify_loss"
	KindNotifyDup    = "notify_dup"
	KindNotifyDelay  = "notify_delay"
	KindCrashPoint   = "crash_point"
)

var kinds = []string{
	KindObjFail, KindObjSlow, KindObjMpuVanish,
	KindKVThrottle, KindKVContention,
	KindFnCrash, KindFnColdStorm, KindFnStraggler,
	KindNetDegrade, KindNetPartition,
	KindNotifyLoss, KindNotifyDup, KindNotifyDelay,
	KindCrashPoint,
}

// ObjVerdict is the fate of one object-store request: an optional extra
// delay (slow request) and whether the request fails transiently.
type ObjVerdict struct {
	Fail  bool
	Delay time.Duration
}

// NotifyVerdict is the fate of one notification delivery.
type NotifyVerdict struct {
	Drop      bool
	Duplicate bool          // deliver a second copy DupExtra after the first
	Extra     time.Duration // extra delivery delay (reordering)
	DupExtra  time.Duration
}

// Injector draws fault decisions for one armed profile. Create one with
// NewInjector; a nil Injector never injects.
type Injector struct {
	clock *simclock.Clock
	prof  Profile
	epoch time.Time // arming time; partition windows are relative to it

	mu    sync.Mutex
	rngs  map[string]*rand.Rand
	fired map[string]bool // crash points already taken this run

	injected *telemetry.Counter
	byKind   map[string]*telemetry.Counter
}

// NewInjector arms profile p on clock, counting injected faults into reg
// as chaos.injected and chaos.injected.<kind>. Partition windows start
// counting from the arming moment.
func NewInjector(clock *simclock.Clock, p Profile, reg *telemetry.Registry) *Injector {
	ij := &Injector{
		clock:    clock,
		prof:     p,
		epoch:    clock.Now(),
		rngs:     make(map[string]*rand.Rand),
		fired:    make(map[string]bool),
		injected: reg.Counter("chaos.injected"),
		byKind:   make(map[string]*telemetry.Counter, len(kinds)),
	}
	for _, k := range kinds {
		ij.byKind[k] = reg.Counter("chaos.injected." + k)
	}
	return ij
}

// Profile returns the armed profile.
func (ij *Injector) Profile() Profile {
	if ij == nil {
		return Profile{}
	}
	return ij.prof
}

// count records one injected fault of the given kind.
func (ij *Injector) count(kind string) {
	ij.injected.Inc()
	ij.byKind[kind].Inc()
}

// roll draws a uniform [0,1) float from the (kind, scope) stream. Each
// stream is seeded by the profile identity plus its labels, so decision
// sequences are independent per substrate and region and stable across
// runs.
func (ij *Injector) roll(kind, scope string) float64 {
	ij.mu.Lock()
	defer ij.mu.Unlock()
	key := kind + "|" + scope
	rng, ok := ij.rngs[key]
	if !ok {
		rng = simrand.New("chaos", ij.prof.Name, ij.prof.Seed, key)
		ij.rngs[key] = rng
	}
	return rng.Float64()
}

// scaled returns a duration drawn uniformly from (0, max].
func (ij *Injector) scaled(kind, scope string, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	d := simclock.Scale(max, ij.roll(kind+"-d", scope))
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

// Obj decides the fate of one object-store request identified by its
// operation class ("put", "get_range", "mpu_upload", ...).
func (ij *Injector) Obj(region, op string) ObjVerdict {
	if ij == nil {
		return ObjVerdict{}
	}
	var v ObjVerdict
	if ij.prof.ObjSlowRate > 0 && ij.roll(KindObjSlow, region) < ij.prof.ObjSlowRate {
		v.Delay = ij.scaled(KindObjSlow, region, ij.prof.ObjSlowMax)
		ij.count(KindObjSlow)
	}
	if ij.prof.ObjFailRate > 0 && ij.roll(KindObjFail, region+"|"+op) < ij.prof.ObjFailRate {
		v.Fail = true
		ij.count(KindObjFail)
	}
	return v
}

// ObjMpuVanish decides whether an in-progress multipart upload has
// vanished under the caller (aborted by lifecycle cleanup).
func (ij *Injector) ObjMpuVanish(region string) bool {
	if ij == nil || ij.prof.ObjMpuVanishRate <= 0 {
		return false
	}
	if ij.roll(KindObjMpuVanish, region) < ij.prof.ObjMpuVanishRate {
		ij.count(KindObjMpuVanish)
		return true
	}
	return false
}

// CrashPoint reports whether the caller has reached the profile's armed
// crash point and should kill its instance. Unlike the probabilistic
// faults, a crash point is a deterministic tripwire: it fires exactly
// once per armed injector, for the first caller that reaches the named
// step — the crash-point sweep harness enumerates the replication state
// machine one step per run, so one kill per run is the model.
func (ij *Injector) CrashPoint(step string) bool {
	if ij == nil || ij.prof.CrashPoint == "" || step != ij.prof.CrashPoint {
		return false
	}
	ij.mu.Lock()
	fired := ij.fired[step]
	if !fired {
		ij.fired[step] = true
	}
	ij.mu.Unlock()
	if fired {
		return false
	}
	ij.count(KindCrashPoint)
	return true
}

// KVThrottle returns the extra latency of a throttled KV operation (zero
// when not throttled). The delay models the SDK's internal retries after
// a ProvisionedThroughputExceeded-class rejection.
func (ij *Injector) KVThrottle(region string) time.Duration {
	if ij == nil || ij.prof.KVThrottleRate <= 0 {
		return 0
	}
	if ij.roll(KindKVThrottle, region) < ij.prof.KVThrottleRate {
		ij.count(KindKVThrottle)
		return ij.scaled(KindKVThrottle, region, ij.prof.KVThrottleMax)
	}
	return 0
}

// KVContention decides whether a conditional write loses a (spurious)
// contention race and fails its precondition.
func (ij *Injector) KVContention(region string) bool {
	if ij == nil || ij.prof.KVContentionRate <= 0 {
		return false
	}
	if ij.roll(KindKVContention, region) < ij.prof.KVContentionRate {
		ij.count(KindKVContention)
		return true
	}
	return false
}

// FnCrash decides whether a function invocation's instance crashes, and
// if so how far into the execution it stops making progress.
func (ij *Injector) FnCrash(region string) (after time.Duration, crashed bool) {
	if ij == nil || ij.prof.FnCrashRate <= 0 {
		return 0, false
	}
	if ij.roll(KindFnCrash, region) < ij.prof.FnCrashRate {
		ij.count(KindFnCrash)
		max := ij.prof.FnCrashMax
		if max <= 0 {
			max = 30 * time.Second
		}
		return ij.scaled(KindFnCrash, region, max), true
	}
	return 0, false
}

// FnColdStorm decides whether the platform reclaimed the warm instance an
// invocation was about to reuse, forcing a cold start.
func (ij *Injector) FnColdStorm(region string) bool {
	if ij == nil || ij.prof.FnColdStormRate <= 0 {
		return false
	}
	if ij.roll(KindFnColdStorm, region) < ij.prof.FnColdStormRate {
		ij.count(KindFnColdStorm)
		return true
	}
	return false
}

// FnStraggler returns the bandwidth collapse factor of a freshly started
// instance (1 when the instance is healthy).
func (ij *Injector) FnStraggler(region string) float64 {
	if ij == nil || ij.prof.FnStragglerRate <= 0 {
		return 1
	}
	if ij.roll(KindFnStraggler, region) < ij.prof.FnStragglerRate {
		ij.count(KindFnStraggler)
		f := ij.prof.FnStragglerFactor
		if f <= 0 || f >= 1 {
			f = 0.2
		}
		return f
	}
	return 1
}

// Net decides the fate of one inter-region transfer leg: a stall (the
// remaining time of an active partition window covering the pair) and a
// bandwidth scale factor (link degradation; 1 when healthy). Regions and
// providers are plain strings so the package stays substrate-agnostic.
func (ij *Injector) Net(fromID, toID, fromProvider, toProvider string) (stall time.Duration, bwScale float64) {
	if ij == nil {
		return 0, 1
	}
	bwScale = 1
	if fromID == toID {
		return 0, 1 // intra-region traffic never partitions or degrades
	}
	now := ij.clock.Now()
	for _, p := range ij.prof.Partitions {
		if !p.matches(fromID, toID, fromProvider, toProvider) {
			continue
		}
		start := ij.epoch.Add(p.Start)
		end := start.Add(p.Duration)
		if !now.Before(start) && now.Before(end) {
			if s := end.Sub(now); s > stall {
				stall = s
			}
		}
	}
	if stall > 0 {
		ij.count(KindNetPartition)
	}
	if ij.prof.NetDegradeRate > 0 && ij.roll(KindNetDegrade, fromID+">"+toID) < ij.prof.NetDegradeRate {
		f := ij.prof.NetDegradeFactor
		if f <= 0 || f >= 1 {
			f = 0.3
		}
		bwScale = f
		ij.count(KindNetDegrade)
	}
	return stall, bwScale
}

// matches reports whether the partition covers the leg (symmetric).
func (p Partition) matches(fromID, toID, fromProvider, toProvider string) bool {
	side := func(sel, id, provider string) bool {
		return sel == "*" || sel == id || sel == provider
	}
	return (side(p.A, fromID, fromProvider) && side(p.B, toID, toProvider)) ||
		(side(p.A, toID, toProvider) && side(p.B, fromID, fromProvider))
}

// NotifyChangelog decides the fate of one changelog-hint delivery (§5.4):
// the changelog propagates piggybacked on its own notification copy, so it
// shares the notify-flaky rates but draws from an independent per-region
// stream, keeping object-event schedules unchanged when changelogs are off.
func (ij *Injector) NotifyChangelog(region string) NotifyVerdict {
	return ij.Notify(region + "|changelog")
}

// Notify decides the fate of one notification delivery.
func (ij *Injector) Notify(region string) NotifyVerdict {
	if ij == nil {
		return NotifyVerdict{}
	}
	var v NotifyVerdict
	if ij.prof.NotifyLossRate > 0 && ij.roll(KindNotifyLoss, region) < ij.prof.NotifyLossRate {
		ij.count(KindNotifyLoss)
		v.Drop = true
		return v
	}
	if ij.prof.NotifyDelayRate > 0 && ij.roll(KindNotifyDelay, region) < ij.prof.NotifyDelayRate {
		ij.count(KindNotifyDelay)
		v.Extra = ij.scaled(KindNotifyDelay, region, ij.prof.NotifyDelayMax)
	}
	if ij.prof.NotifyDupRate > 0 && ij.roll(KindNotifyDup, region) < ij.prof.NotifyDupRate {
		ij.count(KindNotifyDup)
		v.Duplicate = true
		max := ij.prof.NotifyDelayMax
		if max <= 0 {
			max = 2 * time.Second
		}
		v.DupExtra = ij.scaled(KindNotifyDup, region, max)
	}
	return v
}
