package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Profile is a typed fault configuration covering every substrate. Rates
// are per-decision probabilities in [0,1]; a zero Profile injects nothing.
// Profiles are plain data so experiments can construct scenario sweeps and
// CLIs can look built-in ones up by name.
type Profile struct {
	Name string
	// Seed salts every random decision stream; two runs with the same
	// profile (name and seed) and the same workload draw identical faults.
	Seed string

	// Object store: transient 503-class failures, slow requests, and
	// multipart uploads vanishing mid-stream (lifecycle abort / cleanup).
	ObjFailRate      float64
	ObjSlowRate      float64
	ObjSlowMax       time.Duration
	ObjMpuVanishRate float64

	// KV store: throttling (the SDK retries internally, so the caller sees
	// added latency) and spurious conditional-write contention.
	KVThrottleRate   float64
	KVThrottleMax    time.Duration
	KVContentionRate float64

	// FaaS: instance crash mid-invocation (the instance stops making
	// progress some time into the execution), cold-start storms (warm
	// instances reclaimed under the invoker), and stragglers whose
	// bandwidth collapses for their whole lifetime.
	FnCrashRate       float64
	FnCrashMax        time.Duration
	FnColdStormRate   float64
	FnStragglerRate   float64
	FnStragglerFactor float64

	// Network: per-leg bandwidth degradation and scheduled inter-region
	// partitions (transfers entering the window stall until it lifts).
	NetDegradeRate   float64
	NetDegradeFactor float64
	Partitions       []Partition

	// Notification delivery: loss, duplication, and reordering via a
	// bounded extra delay.
	NotifyLossRate  float64
	NotifyDupRate   float64
	NotifyDelayRate float64
	NotifyDelayMax  time.Duration

	// CrashPoint names one step of the replication state machine (e.g.
	// "after-create-mpu", "after-part-3"); the first instance to reach it
	// is killed on the spot, exactly once per run. Deterministic by
	// construction — no random stream involved — so the crash-point sweep
	// can visit every step of the machine one run at a time.
	CrashPoint string
}

// Partition is one scheduled inter-region connectivity outage. A and B
// match a region ID ("aws:us-east-1"), a provider ("aws"), or "*"; the
// match is symmetric and only ever applies to inter-region legs. Start is
// measured from the moment the injector is armed (world.SetChaos).
type Partition struct {
	A, B     string
	Start    time.Duration
	Duration time.Duration
}

// Enabled reports whether the profile injects any fault at all.
func (p Profile) Enabled() bool {
	return p.ObjFailRate > 0 || p.ObjSlowRate > 0 || p.ObjMpuVanishRate > 0 ||
		p.KVThrottleRate > 0 || p.KVContentionRate > 0 ||
		p.FnCrashRate > 0 || p.FnColdStormRate > 0 || p.FnStragglerRate > 0 ||
		p.NetDegradeRate > 0 || len(p.Partitions) > 0 ||
		p.NotifyLossRate > 0 || p.NotifyDupRate > 0 || p.NotifyDelayRate > 0 ||
		p.CrashPoint != ""
}

// builtin chaos profiles, each mimicking one class of real-cloud failure
// (see DESIGN.md "Fault model" for the mapping).
var builtins = map[string]Profile{
	"none": {Name: "none"},
	"storage-flaky": {
		Name:        "storage-flaky",
		ObjFailRate: 0.05, ObjSlowRate: 0.02, ObjSlowMax: 800 * time.Millisecond,
		ObjMpuVanishRate: 0.005,
	},
	"kv-throttle": {
		Name:           "kv-throttle",
		KVThrottleRate: 0.10, KVThrottleMax: 250 * time.Millisecond,
		KVContentionRate: 0.02,
	},
	"crashy": {
		Name:        "crashy",
		FnCrashRate: 0.03, FnCrashMax: 30 * time.Second,
		FnColdStormRate: 0.10,
		FnStragglerRate: 0.05, FnStragglerFactor: 0.2,
	},
	"partition": {
		Name:       "partition",
		Partitions: []Partition{{A: "*", B: "*", Start: 20 * time.Second, Duration: 30 * time.Second}},
	},
	"net-degraded": {
		Name:           "net-degraded",
		NetDegradeRate: 0.20, NetDegradeFactor: 0.3,
	},
	"notify-flaky": {
		Name:           "notify-flaky",
		NotifyLossRate: 0.05, NotifyDupRate: 0.05,
		NotifyDelayRate: 0.15, NotifyDelayMax: 5 * time.Second,
	},
	// mixed is the acceptance scenario: 5% object-store faults, 2% FaaS
	// instance crashes, and one 30-second inter-region partition.
	"mixed": {
		Name:        "mixed",
		ObjFailRate: 0.05,
		FnCrashRate: 0.02, FnCrashMax: 30 * time.Second,
		Partitions: []Partition{{A: "*", B: "*", Start: 20 * time.Second, Duration: 30 * time.Second}},
	},
}

// Names lists the built-in profile names, sorted.
func Names() []string {
	out := make([]string, 0, len(builtins))
	for n := range builtins {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns a built-in profile by name.
func Lookup(name string) (Profile, bool) {
	p, ok := builtins[name]
	return p, ok
}

// Parse resolves a CLI profile spec of the form "name" or "name@seed"
// (e.g. "mixed@7"); the seed reseeds every fault stream, giving a
// different — but equally deterministic — fault schedule.
func Parse(spec string) (Profile, error) {
	name, seed := spec, ""
	if i := strings.IndexByte(spec, '@'); i >= 0 {
		name, seed = spec[:i], spec[i+1:]
	}
	p, ok := Lookup(name)
	if !ok {
		return Profile{}, fmt.Errorf("chaos: unknown profile %q (available: %s)", name, strings.Join(Names(), ", "))
	}
	p.Seed = seed
	return p, nil
}
