package simclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestNowStartsAtEpoch(t *testing.T) {
	c := New(epoch)
	if got := c.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	c := New(epoch)
	start := time.Now()
	c.Sleep(10 * time.Hour)
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("virtual sleep took %v of wall time", wall)
	}
	if got, want := c.Now(), epoch.Add(10*time.Hour); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSleepNonPositiveReturnsImmediately(t *testing.T) {
	c := New(epoch)
	c.Sleep(0)
	c.Sleep(-time.Second)
	if !c.Now().Equal(epoch) {
		t.Fatalf("time moved on non-positive sleep: %v", c.Now())
	}
}

func TestGoOrdersWakeupsByTime(t *testing.T) {
	c := New(epoch)
	var mu sync.Mutex
	var order []int
	for i, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		i, d := i, d
		c.Go(func() {
			c.Sleep(d)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	c.Quiesce()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestConcurrentSleepersShareTimeline(t *testing.T) {
	c := New(epoch)
	const n = 100
	var total atomic.Int64
	for i := 0; i < n; i++ {
		i := i
		c.Go(func() {
			c.Sleep(time.Duration(i+1) * time.Second)
			total.Add(int64(c.Now().Sub(epoch) / time.Second))
		})
	}
	c.Quiesce()
	// Each goroutine observes its own wake time: sum = 1+2+...+n.
	if got, want := total.Load(), int64(n*(n+1)/2); got != want {
		t.Fatalf("sum of wake seconds = %d, want %d", got, want)
	}
	if got, want := c.Now(), epoch.Add(n*time.Second); !got.Equal(want) {
		t.Fatalf("final time = %v, want %v", got, want)
	}
}

func TestSimultaneousTimersAllWake(t *testing.T) {
	c := New(epoch)
	var n atomic.Int32
	for i := 0; i < 10; i++ {
		c.Go(func() {
			c.Sleep(time.Second)
			n.Add(1)
		})
	}
	c.Quiesce()
	if n.Load() != 10 {
		t.Fatalf("woke %d of 10 simultaneous sleepers", n.Load())
	}
}

func TestEventWaitTrigger(t *testing.T) {
	c := New(epoch)
	ev := c.NewEvent()
	var woke atomic.Bool
	c.Go(func() {
		ev.Wait()
		woke.Store(true)
	})
	c.Go(func() {
		c.Sleep(5 * time.Second)
		ev.Trigger()
	})
	c.Quiesce()
	if !woke.Load() {
		t.Fatal("waiter never woke")
	}
	if got, want := c.Now(), epoch.Add(5*time.Second); !got.Equal(want) {
		t.Fatalf("time = %v, want %v", got, want)
	}
}

func TestEventWaitAfterTrigger(t *testing.T) {
	c := New(epoch)
	ev := c.NewEvent()
	ev.Trigger()
	ev.Wait() // must not block
	if !ev.Triggered() {
		t.Fatal("Triggered() = false after Trigger")
	}
}

func TestEventDoubleTriggerIsNoop(t *testing.T) {
	c := New(epoch)
	ev := c.NewEvent()
	ev.Trigger()
	ev.Trigger()
}

func TestEventManyWaiters(t *testing.T) {
	c := New(epoch)
	ev := c.NewEvent()
	var n atomic.Int32
	for i := 0; i < 50; i++ {
		c.Go(func() {
			ev.Wait()
			n.Add(1)
		})
	}
	c.Delay(time.Second, ev.Trigger)
	c.Quiesce()
	if n.Load() != 50 {
		t.Fatalf("%d of 50 waiters woke", n.Load())
	}
}

func TestGroup(t *testing.T) {
	c := New(epoch)
	g := c.NewGroup(3)
	for i := 1; i <= 3; i++ {
		i := i
		c.Go(func() {
			c.Sleep(time.Duration(i) * time.Second)
			g.Done()
		})
	}
	g.Wait()
	if got, want := c.Now(), epoch.Add(3*time.Second); !got.Equal(want) {
		t.Fatalf("group released at %v, want %v", got, want)
	}
	c.Quiesce()
}

func TestGroupZeroCountIsDone(t *testing.T) {
	c := New(epoch)
	g := c.NewGroup(0)
	g.Wait() // must not block
}

func TestDelayRunsAtScheduledTime(t *testing.T) {
	c := New(epoch)
	var at time.Time
	c.Delay(42*time.Second, func() { at = c.Now() })
	c.Quiesce()
	if want := epoch.Add(42 * time.Second); !at.Equal(want) {
		t.Fatalf("ran at %v, want %v", at, want)
	}
}

func TestQuiesceOnIdleClockReturns(t *testing.T) {
	c := New(epoch)
	c.Quiesce()
	c.Quiesce()
}

func TestNestedSpawns(t *testing.T) {
	c := New(epoch)
	var count atomic.Int32
	var spawn func(depth int)
	spawn = func(depth int) {
		count.Add(1)
		c.Sleep(time.Millisecond)
		if depth < 5 {
			for i := 0; i < 2; i++ {
				d := depth + 1
				c.Go(func() { spawn(d) })
			}
		}
	}
	c.Go(func() { spawn(0) })
	c.Quiesce()
	// 1 + 2 + 4 + 8 + 16 + 32 = 63 actors.
	if count.Load() != 63 {
		t.Fatalf("ran %d actors, want 63", count.Load())
	}
}

func TestDeadlockPanics(t *testing.T) {
	panicked := make(chan bool, 1)
	// The clock is created inside a fresh goroutine so that goroutine is the
	// tracked driver; the deadlock panic fires in whichever actor blocks last.
	go func() {
		defer func() { panicked <- recover() != nil }()
		c := New(epoch)
		c.Go(func() { c.NewEvent().Wait() }) // nobody will ever trigger this
		c.Sleep(time.Millisecond)
		c.NewEvent().Wait() // both actors now blocked, no timers: deadlock
	}()
	select {
	case got := <-panicked:
		if !got {
			t.Fatal("driver returned without panicking")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock was not detected")
	}
}

func TestStatsCounters(t *testing.T) {
	c := New(epoch)
	c.Go(func() { c.Sleep(time.Second) })
	c.Quiesce()
	s := c.Stats()
	if s.Spawned != 1 || s.Sleeps != 1 || s.Advances == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestManyActorsStress(t *testing.T) {
	c := New(epoch)
	const n = 2000
	var sum atomic.Int64
	for i := 0; i < n; i++ {
		i := i
		c.Go(func() {
			for j := 0; j < 5; j++ {
				c.Sleep(time.Duration(1+(i+j)%7) * time.Millisecond)
			}
			sum.Add(1)
		})
	}
	c.Quiesce()
	if sum.Load() != n {
		t.Fatalf("%d of %d actors completed", sum.Load(), n)
	}
}
