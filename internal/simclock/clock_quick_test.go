package simclock

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// Property: for any set of sleepers, every actor wakes exactly at its
// scheduled virtual time and the clock ends at the maximum wake time.
func TestSleepersWakeExactly(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		ok := true
		var mu sync.Mutex
		done := make(chan bool, 1)
		go func() {
			c := New(epoch)
			var maxD time.Duration
			for i := 0; i < n; i++ {
				d := time.Duration(rng.Intn(10000)+1) * time.Millisecond
				if d > maxD {
					maxD = d
				}
				c.Go(func() {
					c.Sleep(d)
					if !c.Now().Equal(epoch.Add(d)) {
						// Another sleeper may share the timestamp; Now() must
						// be at least our wake time and could be later only
						// if we were descheduled — on the virtual clock both
						// observations happen while we are runnable, so it
						// must be exact or a tied wake.
						mu.Lock()
						ok = ok && !c.Now().Before(epoch.Add(d))
						mu.Unlock()
					}
				})
			}
			c.Quiesce()
			mu.Lock()
			ok = ok && c.Now().Equal(epoch.Add(maxD))
			mu.Unlock()
			done <- ok
		}()
		return <-done
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: nested Delay chains preserve cumulative offsets.
func TestDelayChainsAccumulate(t *testing.T) {
	f := func(aRaw, bRaw, cRaw uint8) bool {
		a := time.Duration(aRaw%100+1) * time.Millisecond
		b := time.Duration(bRaw%100+1) * time.Millisecond
		cc := time.Duration(cRaw%100+1) * time.Millisecond
		result := make(chan time.Time, 1)
		go func() {
			clk := New(epoch)
			clk.Delay(a, func() {
				clk.Delay(b, func() {
					clk.Delay(cc, func() {
						result <- clk.Now()
					})
				})
			})
			clk.Quiesce()
		}()
		return (<-result).Equal(epoch.Add(a + b + cc))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
