package simclock

// Event is a one-shot synchronization point on a virtual clock, analogous
// to a channel that is closed exactly once. Waiting on an Event does not
// consume virtual time.
type Event struct {
	c       *Clock
	done    bool
	waiters []chan struct{}
}

// NewEvent returns an untriggered Event bound to the clock.
func (c *Clock) NewEvent() *Event {
	return &Event{c: c}
}

// Wait blocks the calling actor until the event is triggered. If the event
// has already been triggered, Wait returns immediately.
func (e *Event) Wait() {
	c := e.c
	c.mu.Lock()
	if e.done {
		c.mu.Unlock()
		return
	}
	ch := c.getWakeLocked()
	e.waiters = append(e.waiters, ch)
	c.blocked++
	c.yieldLocked()
	c.mu.Unlock()
	<-ch
	c.putWake(ch)
}

// Triggered reports whether the event has been triggered.
func (e *Event) Triggered() bool {
	e.c.mu.Lock()
	defer e.c.mu.Unlock()
	return e.done
}

// Trigger fires the event and queues all waiters, in the order they began
// waiting, behind the actors already in the ready queue. Triggering an
// already triggered event is a no-op.
func (e *Event) Trigger() {
	c := e.c
	c.mu.Lock()
	if !e.done {
		e.done = true
		for _, ch := range e.waiters {
			c.blocked--
			c.ready = append(c.ready, readyEnt{ch: ch})
		}
		e.waiters = nil
		if !c.running {
			c.dispatchLocked()
		}
	}
	c.mu.Unlock()
}

// Group is a counting barrier on a virtual clock, analogous to
// sync.WaitGroup. The zero Group is not usable; create one with NewGroup.
type Group struct {
	c     *Clock
	n     int
	event *Event
}

// NewGroup returns a Group with an initial count of n. A Group whose count
// is already zero is immediately done.
func (c *Clock) NewGroup(n int) *Group {
	g := &Group{c: c, n: n, event: c.NewEvent()}
	if n <= 0 {
		g.event.Trigger()
	}
	return g
}

// Done decrements the count, triggering the group's event at zero.
func (g *Group) Done() {
	g.c.mu.Lock()
	g.n--
	fire := g.n <= 0
	g.c.mu.Unlock()
	if fire {
		g.event.Trigger()
	}
}

// Wait blocks the calling actor until the count reaches zero.
func (g *Group) Wait() { g.event.Wait() }
