package simclock

import "time"

// Seconds converts a floating-point number of seconds into a Duration,
// clamping negative values to zero. Simulated latencies are drawn from
// continuous distributions, so this conversion appears throughout the
// simulator.
func Seconds(s float64) time.Duration {
	if s <= 0 {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}

// ToSeconds is the inverse of Seconds: a Duration as floating-point
// seconds. Use it (rather than ad-hoc float64(d)/float64(time.Second)
// arithmetic) wherever the simulator crosses back into the model's
// continuous-time domain, so the conversion is done one way everywhere.
func ToSeconds(d time.Duration) float64 {
	return d.Seconds()
}

// Scale multiplies a Duration by a float factor (e.g. a uniform draw of a
// fraction of a scheduler round), clamping negative results to zero.
func Scale(d time.Duration, f float64) time.Duration {
	return Seconds(ToSeconds(d) * f)
}
