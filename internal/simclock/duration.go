package simclock

import "time"

// Seconds converts a floating-point number of seconds into a Duration,
// clamping negative values to zero. Simulated latencies are drawn from
// continuous distributions, so this conversion appears throughout the
// simulator.
func Seconds(s float64) time.Duration {
	if s <= 0 {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}
