// Package simclock provides a deterministic virtual clock for
// discrete-event simulation of distributed systems.
//
// The clock tracks a set of goroutines ("actors"). Virtual time advances
// only when every tracked actor is blocked in Sleep or Event.Wait; at that
// moment the clock jumps to the earliest pending timer and wakes the actors
// scheduled there. Hours of simulated activity therefore execute in
// milliseconds of wall time, and timing behaviour is independent of host
// load.
//
// Rules for actors:
//
//   - Spawn concurrent simulated work with Clock.Go (never the go statement),
//     so the clock can account for runnable actors.
//   - Block only via Clock.Sleep, Event.Wait, or Group.Wait. Short critical
//     sections guarded by sync.Mutex are fine: the holder remains runnable.
//   - The goroutine that calls New is itself tracked and may drive the
//     simulation directly.
//
// If every tracked actor is blocked on an Event that can no longer be
// triggered, the clock panics with a deadlock report rather than hanging.
package simclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock is a virtual clock. Create one with New.
type Clock struct {
	mu      sync.Mutex
	now     time.Time
	active  int // tracked goroutines that are currently runnable
	blocked int // tracked goroutines blocked on events (not timers)
	timers  timerHeap
	seq     uint64
	idlers  []chan struct{} // Quiesce waiters
	stats   Stats
}

// Stats reports counters about clock activity, useful in tests.
type Stats struct {
	Sleeps   uint64 // number of Sleep calls with positive duration
	Advances uint64 // number of times virtual time moved forward
	Spawned  uint64 // number of goroutines started via Go
}

// New returns a virtual clock whose time starts at start. The calling
// goroutine is tracked as the first actor.
func New(start time.Time) *Clock {
	return &Clock{now: start, active: 1}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since returns the virtual time elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Stats returns a snapshot of the clock's activity counters.
func (c *Clock) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Sleep blocks the calling actor for d of virtual time. A non-positive d
// returns immediately without yielding.
func (c *Clock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan struct{})
	c.mu.Lock()
	c.stats.Sleeps++
	c.seq++
	heap.Push(&c.timers, &timer{at: c.now.Add(d), seq: c.seq, ch: ch})
	c.blockLocked()
	c.mu.Unlock()
	<-ch
}

// Go starts fn as a tracked actor. fn may freely call Sleep and wait on
// events; the actor is untracked automatically when fn returns.
func (c *Clock) Go(fn func()) {
	c.mu.Lock()
	c.active++
	c.stats.Spawned++
	c.mu.Unlock()
	go func() {
		defer c.exit()
		fn()
	}()
}

// Delay runs fn as a tracked actor after d of virtual time.
func (c *Clock) Delay(d time.Duration, fn func()) {
	c.Go(func() {
		c.Sleep(d)
		fn()
	})
}

// Quiesce blocks the calling actor until every other tracked actor has
// finished and no timers remain; virtual time advances as needed. It is the
// usual way for a test or driver to run the simulation to completion.
func (c *Clock) Quiesce() {
	c.mu.Lock()
	if c.active == 1 && c.timers.Len() == 0 && c.blocked == 0 {
		c.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	c.idlers = append(c.idlers, ch)
	c.blockLocked()
	c.mu.Unlock()
	<-ch
}

func (c *Clock) exit() {
	c.mu.Lock()
	c.active--
	if c.active == 0 {
		c.advanceLocked()
	}
	c.mu.Unlock()
}

// blockLocked marks the caller as no longer runnable and, if it was the
// last runnable actor, advances virtual time. The caller must hold c.mu and
// must block on its wake channel after releasing it.
func (c *Clock) blockLocked() {
	c.active--
	if c.active == 0 {
		c.advanceLocked()
	}
}

// unblockLocked marks one actor runnable again (used by Event.Trigger).
func (c *Clock) unblockLocked() {
	c.active++
}

// advanceLocked is called with zero runnable actors. It advances time to
// the next timer, or wakes Quiesce waiters when the simulation is fully
// drained, or panics on deadlock.
func (c *Clock) advanceLocked() {
	if c.timers.Len() > 0 {
		c.stats.Advances++
		c.now = c.timers[0].at
		for c.timers.Len() > 0 && !c.timers[0].at.After(c.now) {
			t := heap.Pop(&c.timers).(*timer)
			c.active++
			close(t.ch)
		}
		return
	}
	if c.blocked > 0 && len(c.idlers) == 0 {
		panic(fmt.Sprintf("simclock: deadlock at %s: %d actor(s) blocked on events with no pending timers",
			c.now.Format(time.RFC3339), c.blocked))
	}
	if len(c.idlers) > 0 {
		// Fully drained (aside from event waiters that can only be woken by
		// the idlers themselves): resume the Quiesce callers.
		for _, ch := range c.idlers {
			c.active++
			close(ch)
		}
		c.idlers = nil
	}
}

type timer struct {
	at  time.Time
	seq uint64
	ch  chan struct{}
}

// timerHeap orders timers by wake time, breaking ties by creation order so
// wake-ups are deterministic.
type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
