// Package simclock provides a deterministic virtual clock for
// discrete-event simulation of distributed systems.
//
// The clock tracks a set of goroutines ("actors") and runs them under a
// cooperative single-runnable discipline: exactly one actor executes at a
// time, and the rest wait in a FIFO ready queue or sleep on the timer
// heap. Virtual time advances only when the ready queue is empty and the
// running actor has blocked in Sleep or Event.Wait; at that moment the
// clock jumps to the earliest pending timer and queues the actors
// scheduled there in creation order. Hours of simulated activity
// therefore execute in milliseconds of wall time, and — because the
// interleaving is chosen by the clock, never by the Go runtime — two
// identically-seeded simulations take byte-identical trajectories
// regardless of host load, GC pauses, preemption, or GOMAXPROCS.
//
// Rules for actors:
//
//   - Spawn concurrent simulated work with Clock.Go (never the go statement),
//     so the clock can account for runnable actors.
//   - Block only via Clock.Sleep, Event.Wait, or Group.Wait. Short critical
//     sections guarded by sync.Mutex are fine: the holder keeps the run
//     token and nothing else executes until it blocks on the clock.
//   - The goroutine that calls New is itself tracked and may drive the
//     simulation directly.
//
// If every tracked actor is blocked on an Event that can no longer be
// triggered, the clock panics with a deadlock report rather than hanging.
package simclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock is a virtual clock. Create one with New.
type Clock struct {
	mu        sync.Mutex
	now       time.Time
	running   bool // one tracked actor currently holds the run token
	ready     []readyEnt
	readyHead int // ready[:readyHead] already granted; pop-front without shifting
	blocked   int // tracked actors blocked on events (not timers)
	timers    timerHeap
	seq       uint64
	idlers    []chan struct{} // Quiesce waiters
	stats     Stats

	// workers parks idle pooled actors for GoCall; wakeChs recycles wake
	// channels. Both exist because event-dense simulations (a million
	// replay operations, each a short-lived actor with a handful of sleeps)
	// otherwise spend their wall clock on goroutine spawns and channel
	// allocations. Parked workers and pooled channels are invisible to the
	// accounting above; the pool is drained whenever the simulation fully
	// quiesces so idle clocks hold no goroutines.
	workers []*worker
	wakeChs []chan struct{}
}

// readyEnt is one queued turn: either an actor parked on its wake channel
// (Sleep, Event.Wait, Quiesce, a Go start) or a pooled worker waiting to
// be handed a function.
type readyEnt struct {
	ch chan struct{} // actor to grant the run token
	w  *worker       // pooled worker to hand fn
	fn func()
}

// maxWorkers bounds the parked-actor pool; beyond it workers exit instead
// of parking. It caps idle memory, not concurrency — GoCall spawns fresh
// workers whenever the pool runs dry.
const maxWorkers = 256

// Stats reports counters about clock activity, useful in tests.
type Stats struct {
	Sleeps   uint64 // number of Sleep calls with positive duration
	Advances uint64 // number of times virtual time moved forward
	Spawned  uint64 // number of goroutines started via Go
}

// New returns a virtual clock whose time starts at start. The calling
// goroutine is tracked as the first actor and holds the run token.
func New(start time.Time) *Clock {
	return &Clock{now: start, running: true}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since returns the virtual time elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Stats returns a snapshot of the clock's activity counters.
func (c *Clock) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// getWakeLocked returns a pooled buffered wake channel.
func (c *Clock) getWakeLocked() chan struct{} {
	if n := len(c.wakeChs); n > 0 {
		ch := c.wakeChs[n-1]
		c.wakeChs = c.wakeChs[:n-1]
		return ch
	}
	return make(chan struct{}, 1)
}

// putWake recycles a drained wake channel. The grant was a buffered send,
// not a close, so the channel is clean for reuse; no other goroutine holds
// a reference once the waiter has woken.
func (c *Clock) putWake(ch chan struct{}) {
	c.mu.Lock()
	if len(c.wakeChs) < maxWorkers {
		c.wakeChs = append(c.wakeChs, ch)
	}
	c.mu.Unlock()
}

// Sleep blocks the calling actor for d of virtual time. A non-positive d
// returns immediately without yielding.
func (c *Clock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	ch := c.getWakeLocked()
	c.stats.Sleeps++
	c.seq++
	heap.Push(&c.timers, &timer{at: c.now.Add(d), seq: c.seq, ch: ch})
	c.yieldLocked()
	c.mu.Unlock()
	<-ch
	c.putWake(ch)
}

// Go starts fn as a tracked actor. fn may freely call Sleep and wait on
// events; the actor is untracked automatically when fn returns. The new
// actor joins the back of the ready queue — it first runs when the
// actors ahead of it have had their turns.
func (c *Clock) Go(fn func()) {
	c.mu.Lock()
	c.stats.Spawned++
	start := c.getWakeLocked()
	c.ready = append(c.ready, readyEnt{ch: start})
	if !c.running {
		c.dispatchLocked()
	}
	c.mu.Unlock()
	go func() {
		<-start
		c.putWake(start)
		defer c.exit()
		fn()
	}()
}

// Delay runs fn as a tracked actor after d of virtual time.
func (c *Clock) Delay(d time.Duration, fn func()) {
	c.Go(func() {
		c.Sleep(d)
		fn()
	})
}

// worker is one pooled actor goroutine. While parked (blocked receiving
// on ch) it is untracked — invisible to the clock's accounting — and it
// re-enters as a tracked actor when the dispatcher hands it a function.
type worker struct {
	c  *Clock
	ch chan func()
}

func (w *worker) loop() {
	for fn := range w.ch {
		fn()
		c := w.c
		c.mu.Lock()
		park := len(c.workers) < maxWorkers
		if park {
			c.workers = append(c.workers, w)
		}
		// Parking and the token release happen under the same lock, so a
		// GoCall that grabs this worker next simply queues on the buffered
		// channel until the loop comes back around.
		c.yieldLocked()
		c.mu.Unlock()
		if !park {
			return
		}
	}
}

// GoCall runs fn as a tracked actor on a pooled goroutine: semantically
// identical to Go, but per-call cost is a channel send instead of a
// goroutine spawn. Event-dense hot paths (trace replay, notification
// delivery, scheduler batch launches, function executions) route through
// here; Go remains for long-lived or rarely spawned actors.
func (c *Clock) GoCall(fn func()) {
	c.mu.Lock()
	c.stats.Spawned++
	var w *worker
	if n := len(c.workers); n > 0 {
		w = c.workers[n-1]
		c.workers[n-1] = nil
		c.workers = c.workers[:n-1]
	}
	fresh := w == nil
	if fresh {
		w = &worker{c: c, ch: make(chan func(), 1)}
	}
	c.ready = append(c.ready, readyEnt{w: w, fn: fn})
	if !c.running {
		c.dispatchLocked()
	}
	c.mu.Unlock()
	if fresh {
		go w.loop()
	}
}

// DelayCall runs fn as a pooled tracked actor after d of virtual time —
// Delay on the GoCall pool.
func (c *Clock) DelayCall(d time.Duration, fn func()) {
	c.GoCall(func() {
		c.Sleep(d)
		fn()
	})
}

// Quiesce blocks the calling actor until every other tracked actor has
// finished and no timers remain; virtual time advances as needed. It is the
// usual way for a test or driver to run the simulation to completion.
func (c *Clock) Quiesce() {
	c.mu.Lock()
	if len(c.ready) == c.readyHead && c.timers.Len() == 0 && c.blocked == 0 {
		c.mu.Unlock()
		return
	}
	ch := c.getWakeLocked()
	c.idlers = append(c.idlers, ch)
	c.yieldLocked()
	c.mu.Unlock()
	<-ch
	c.putWake(ch)
}

func (c *Clock) exit() {
	c.mu.Lock()
	c.yieldLocked()
	c.mu.Unlock()
}

// yieldLocked releases the run token and hands it to the next actor. The
// caller must hold c.mu and, if it queued itself (timer, event waiter,
// idler), must block on its wake channel after releasing the lock.
func (c *Clock) yieldLocked() {
	c.running = false
	c.dispatchLocked()
}

// popReadyLocked removes and returns the front of the ready queue.
func (c *Clock) popReadyLocked() readyEnt {
	e := c.ready[c.readyHead]
	c.ready[c.readyHead] = readyEnt{}
	c.readyHead++
	if c.readyHead == len(c.ready) {
		c.ready = c.ready[:0]
		c.readyHead = 0
	} else if c.readyHead > 64 && c.readyHead*2 >= len(c.ready) {
		n := copy(c.ready, c.ready[c.readyHead:])
		for i := n; i < len(c.ready); i++ {
			c.ready[i] = readyEnt{}
		}
		c.ready = c.ready[:n]
		c.readyHead = 0
	}
	return e
}

// dispatchLocked hands the run token to the next ready actor. With the
// queue empty it advances virtual time to the next timer, or wakes
// Quiesce waiters when the simulation is fully drained, or panics on
// deadlock. Ready entries are granted strictly FIFO and due timers are
// queued in creation order, so the schedule is a pure function of the
// simulation — never of the Go runtime.
func (c *Clock) dispatchLocked() {
	for {
		if len(c.ready) > c.readyHead {
			e := c.popReadyLocked()
			c.running = true
			if e.w != nil {
				e.w.ch <- e.fn // buffered; the worker is parked on the receive
			} else {
				e.ch <- struct{}{} // buffered; the actor recycles the channel
			}
			return
		}
		if c.timers.Len() > 0 {
			c.stats.Advances++
			c.now = c.timers[0].at
			for c.timers.Len() > 0 && !c.timers[0].at.After(c.now) {
				t := heap.Pop(&c.timers).(*timer)
				c.ready = append(c.ready, readyEnt{ch: t.ch})
			}
			continue
		}
		if c.blocked > 0 && len(c.idlers) == 0 {
			panic(fmt.Sprintf("simclock: deadlock at %s: %d actor(s) blocked on events with no pending timers",
				c.now.Format(time.RFC3339), c.blocked))
		}
		if len(c.idlers) > 0 {
			// Fully drained (aside from event waiters that can only be woken by
			// the idlers themselves): resume the Quiesce callers and release the
			// parked worker pool, so a drained clock pins no goroutines.
			for _, w := range c.workers {
				close(w.ch)
			}
			c.workers = nil
			for _, ch := range c.idlers {
				c.ready = append(c.ready, readyEnt{ch: ch})
			}
			c.idlers = nil
			continue
		}
		return
	}
}

type timer struct {
	at  time.Time
	seq uint64
	ch  chan struct{}
}

// timerHeap orders timers by wake time, breaking ties by creation order so
// wake-ups are deterministic.
type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
