// Package changelog implements AReplica's changelog propagation (§5.4).
// When an application creates a new object *from existing objects* — a
// copy, or a concatenation — it registers a changelog hint in the source
// region's KV store. When the orchestrator sees the new object's PUT
// notification, it looks the changelog up; if all of the changelog's
// source objects already exist at the destination with matching ETags, the
// operation is mirrored with destination-local server-side requests and no
// data ever crosses the wide area — near-zero cost (Figure 21).
package changelog

import (
	"encoding/json"
	"fmt"

	"repro/internal/kvstore"
	"repro/internal/objstore"
)

// Op is a changelog operation kind.
type Op string

// Supported operations.
const (
	// OpCopy creates the new object as an exact copy of one source.
	OpCopy Op = "copy"
	// OpConcat creates the new object by concatenating the sources in
	// order (covers append when the tail is itself an object).
	OpConcat Op = "concat"
)

// Source references an existing object a new version derives from. The
// ETag pins the exact version, so applying against a stale destination
// replica is detected rather than silently producing wrong content.
type Source struct {
	Key  string `json:"key"`
	ETag string `json:"etag"`
}

// Log is one changelog entry: how the object version (Key, ETag) was
// produced from existing objects.
type Log struct {
	Key     string   `json:"key"`
	ETag    string   `json:"etag"`
	Op      Op       `json:"op"`
	Sources []Source `json:"sources"`
}

// Validate checks structural sanity.
func (l Log) Validate() error {
	switch l.Op {
	case OpCopy:
		if len(l.Sources) != 1 {
			return fmt.Errorf("changelog: copy needs exactly 1 source, got %d", len(l.Sources))
		}
	case OpConcat:
		if len(l.Sources) < 2 {
			return fmt.Errorf("changelog: concat needs >= 2 sources, got %d", len(l.Sources))
		}
	default:
		return fmt.Errorf("changelog: unknown op %q", l.Op)
	}
	if l.Key == "" || l.ETag == "" {
		return fmt.Errorf("changelog: key and etag are required")
	}
	return nil
}

// Store keeps changelog entries in a region's KV database, keyed by the
// new object's (key, etag) so the orchestrator can match them to PUT
// notifications.
type Store struct {
	kv    *kvstore.Store
	table string
}

// NewStore returns a Store backed by kv.
func NewStore(kv *kvstore.Store) *Store {
	return &Store{kv: kv, table: "areplica-changelogs"}
}

func entryKey(key, etag string) string { return key + "\x00" + etag }

// Register records a changelog entry. Applications (or program analysis,
// per the paper) call this right after issuing the producing operation.
func (s *Store) Register(l Log) error {
	if err := l.Validate(); err != nil {
		return err
	}
	blob, err := json.Marshal(l)
	if err != nil {
		return err
	}
	s.kv.Put(s.table, entryKey(l.Key, l.ETag), kvstore.Item{"log": string(blob)})
	return nil
}

// Lookup fetches the changelog for an object version, if any.
func (s *Store) Lookup(key, etag string) (Log, bool) {
	it, ok := s.kv.Get(s.table, entryKey(key, etag))
	if !ok {
		return Log{}, false
	}
	var l Log
	if err := json.Unmarshal([]byte(it.Str("log")), &l); err != nil {
		return Log{}, false
	}
	return l, true
}

// Applier mirrors changelog operations at the destination.
type Applier struct {
	Dst       *objstore.Store
	DstBucket string
	// Origin tags the applier's destination writes so sibling rules in an
	// active-active pair do not re-replicate them.
	Origin string
}

// Apply attempts to reproduce the changelog's operation with
// destination-local server-side requests. It returns true only when the
// destination now holds exactly the expected version (ETag match); any
// missing or stale source makes it return false so the caller falls back
// to full replication.
func (a *Applier) Apply(l Log) bool {
	if err := l.Validate(); err != nil {
		return false
	}
	// Idempotence guard: changelog notifications can be delivered twice
	// (chaos notify-dup, DLQ redrives racing the scrubber). If the
	// destination already holds the expected version, re-applying would
	// issue a second final write; one metered HEAD avoids that.
	if cur, err := a.Dst.Head(a.DstBucket, l.Key); err == nil && cur.ETag == l.ETag {
		return true
	}
	switch l.Op {
	case OpCopy:
		src := l.Sources[0]
		res, err := a.Dst.CopyWithOrigin(a.DstBucket, src.Key, a.DstBucket, l.Key, src.ETag, a.Origin)
		if err != nil {
			return false
		}
		if res.ETag != l.ETag {
			// The copy produced unexpected content (the hint was wrong);
			// full replication will overwrite it.
			return false
		}
		return true
	case OpConcat:
		keys := make([]string, len(l.Sources))
		etags := make([]string, len(l.Sources))
		for i, s := range l.Sources {
			keys[i] = s.Key
			etags[i] = s.ETag
		}
		res, err := a.Dst.ComposeWithOrigin(a.DstBucket, l.Key, keys, etags, a.Origin)
		if err != nil {
			return false
		}
		return res.ETag == l.ETag
	}
	return false
}
