package changelog

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/objstore"
	"repro/internal/world"
)

func setup(t *testing.T) (*world.World, *Store, *Applier, *objstore.Store) {
	t.Helper()
	w := world.New()
	src := w.Region(cloud.RegionID("aws:us-east-1"))
	dst := w.Region(cloud.RegionID("azure:eastus"))
	if err := dst.Obj.CreateBucket("dst", false); err != nil {
		t.Fatal(err)
	}
	return w, NewStore(src.KV), &Applier{Dst: dst.Obj, DstBucket: "dst"}, dst.Obj
}

func TestValidate(t *testing.T) {
	good := Log{Key: "k", ETag: "e", Op: OpCopy, Sources: []Source{{Key: "a", ETag: "ea"}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Log{
		{Key: "k", ETag: "e", Op: OpCopy, Sources: nil},
		{Key: "k", ETag: "e", Op: OpCopy, Sources: []Source{{}, {}}},
		{Key: "k", ETag: "e", Op: OpConcat, Sources: []Source{{}}},
		{Key: "k", ETag: "e", Op: "move", Sources: []Source{{}}},
		{Key: "", ETag: "e", Op: OpCopy, Sources: []Source{{}}},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestRegisterLookupRoundTrip(t *testing.T) {
	_, store, _, _ := setup(t)
	l := Log{Key: "new", ETag: "e2", Op: OpConcat,
		Sources: []Source{{Key: "a", ETag: "ea"}, {Key: "b", ETag: "eb"}}}
	if err := store.Register(l); err != nil {
		t.Fatal(err)
	}
	got, ok := store.Lookup("new", "e2")
	if !ok {
		t.Fatal("lookup missed")
	}
	if got.Op != OpConcat || len(got.Sources) != 2 || got.Sources[1].Key != "b" {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, ok := store.Lookup("new", "other-etag"); ok {
		t.Fatal("lookup must match the exact version")
	}
	if err := store.Register(Log{Key: "x", ETag: "e", Op: "bogus"}); err == nil {
		t.Fatal("invalid log registered")
	}
}

func TestApplyCopy(t *testing.T) {
	_, _, applier, dstObj := setup(t)
	orig := objstore.BlobOfSize(1000, 42)
	res, err := dstObj.Put("dst", "orig", orig)
	if err != nil {
		t.Fatal(err)
	}
	ok := applier.Apply(Log{Key: "copy", ETag: orig.ETag(), Op: OpCopy,
		Sources: []Source{{Key: "orig", ETag: res.ETag}}})
	if !ok {
		t.Fatal("apply failed")
	}
	got, err := dstObj.Get("dst", "copy")
	if err != nil || got.ETag != orig.ETag() {
		t.Fatalf("copied object wrong: %v %v", err, got.ETag)
	}
}

func TestApplyCopyStaleSourceFails(t *testing.T) {
	_, _, applier, dstObj := setup(t)
	dstObj.Put("dst", "orig", objstore.BlobOfSize(1000, 1))
	ok := applier.Apply(Log{Key: "copy", ETag: `"whatever"`, Op: OpCopy,
		Sources: []Source{{Key: "orig", ETag: `"stale"`}}})
	if ok {
		t.Fatal("stale source must not apply")
	}
	if _, err := dstObj.Get("dst", "copy"); err == nil {
		t.Fatal("failed apply should not leave an object")
	}
}

func TestApplyCopyMissingSourceFails(t *testing.T) {
	_, _, applier, _ := setup(t)
	if applier.Apply(Log{Key: "copy", ETag: "e", Op: OpCopy,
		Sources: []Source{{Key: "nope", ETag: "e"}}}) {
		t.Fatal("missing source must not apply")
	}
}

func TestApplyConcat(t *testing.T) {
	_, _, applier, dstObj := setup(t)
	whole := objstore.BlobOfSize(300, 7)
	r0, _ := dstObj.Put("dst", "p0", whole.Slice(0, 100))
	r1, _ := dstObj.Put("dst", "p1", whole.Slice(100, 200))
	ok := applier.Apply(Log{Key: "joined", ETag: whole.ETag(), Op: OpConcat,
		Sources: []Source{{Key: "p0", ETag: r0.ETag}, {Key: "p1", ETag: r1.ETag}}})
	if !ok {
		t.Fatal("concat apply failed")
	}
	got, err := dstObj.Get("dst", "joined")
	if err != nil || got.ETag != whole.ETag() {
		t.Fatalf("joined object wrong: %v", err)
	}
}

func TestApplyConcatWrongResultETag(t *testing.T) {
	_, _, applier, dstObj := setup(t)
	r0, _ := dstObj.Put("dst", "a", objstore.BlobOfSize(10, 1))
	r1, _ := dstObj.Put("dst", "b", objstore.BlobOfSize(10, 2))
	// Expected ETag does not match what the concat produces.
	ok := applier.Apply(Log{Key: "j", ETag: `"expected-something-else"`, Op: OpConcat,
		Sources: []Source{{Key: "a", ETag: r0.ETag}, {Key: "b", ETag: r1.ETag}}})
	if ok {
		t.Fatal("mismatched result must report failure")
	}
}

func TestApplyIsCheap(t *testing.T) {
	// A changelog apply must not touch the wide area: no egress accrues.
	w, _, applier, dstObj := setup(t)
	blob := objstore.BlobOfSize(1<<30, 9) // 1 GB copied for free
	res, _ := dstObj.Put("dst", "big", blob)
	before := w.Meter.Item("net:egress")
	if !applier.Apply(Log{Key: "big-copy", ETag: blob.ETag(), Op: OpCopy,
		Sources: []Source{{Key: "big", ETag: res.ETag}}}) {
		t.Fatal("apply failed")
	}
	if after := w.Meter.Item("net:egress"); after != before {
		t.Fatalf("server-side copy accrued egress: %v", after-before)
	}
}
