package engine

import (
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/telemetry"
)

var breakerEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// TestBreakerTripsAtThreshold: consecutive infrastructure failures open
// the breaker; while open, allow() denies the distributed path.
func TestBreakerTripsAtThreshold(t *testing.T) {
	reg := telemetry.NewRegistry()
	clk := simclock.New(breakerEpoch)
	b := newBreaker(clk, 3, time.Minute, reg)

	for i := 0; i < 2; i++ {
		b.failure()
		if !b.allow() {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	b.failure()
	if b.allow() {
		t.Fatal("breaker still closed at the threshold")
	}
	if got := reg.Counter("engine.breaker_open").Value(); got != 1 {
		t.Fatalf("engine.breaker_open = %d, want 1", got)
	}
	if got := reg.Gauge("engine.breaker.is_open").Value(); got != 1 {
		t.Fatalf("engine.breaker.is_open = %v, want 1", got)
	}
}

// TestBreakerSuccessResetsCount: a success between failures clears the
// consecutive-failure count, so sporadic faults never trip it.
func TestBreakerSuccessResetsCount(t *testing.T) {
	b := newBreaker(simclock.New(breakerEpoch), 3, time.Minute, nil)
	for i := 0; i < 10; i++ {
		b.failure()
		b.failure()
		b.success()
	}
	if !b.allow() {
		t.Fatal("breaker opened despite successes resetting the count")
	}
}

// TestBreakerHalfOpenProbe: after the cooldown the first attempt probes;
// a probe failure re-opens immediately, a probe success closes.
func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := simclock.New(breakerEpoch)
	b := newBreaker(clk, 2, time.Minute, nil)
	b.failure()
	b.failure() // open

	clk.Go(func() { clk.Sleep(30 * time.Second) })
	clk.Quiesce()
	if b.allow() {
		t.Fatal("breaker closed before the cooldown elapsed")
	}

	clk.Go(func() { clk.Sleep(31 * time.Second) })
	clk.Quiesce()
	if !b.allow() {
		t.Fatal("breaker denied the half-open probe")
	}
	b.failure() // probe failed: re-open on ONE failure, not the threshold
	if b.allow() {
		t.Fatal("failed probe did not re-open the breaker")
	}

	clk.Go(func() { clk.Sleep(61 * time.Second) })
	clk.Quiesce()
	if !b.allow() {
		t.Fatal("breaker denied the second probe")
	}
	b.success()
	if !b.allow() {
		t.Fatal("successful probe did not close the breaker")
	}
	b.failure() // closed again: single failures tolerated up to threshold
	if !b.allow() {
		t.Fatal("closed breaker opened on a single failure")
	}
}
