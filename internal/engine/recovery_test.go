package engine

import (
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/kvstore"
	"repro/internal/objstore"
	"repro/internal/world"
)

// --- part-pool lease/fencing semantics -------------------------------------

func poolKV(t *testing.T) (*world.World, *kvstore.Store) {
	t.Helper()
	w := world.New()
	return w, w.Region(srcID).KV
}

func TestPoolClaimFlushLifecycle(t *testing.T) {
	w, kv := poolKV(t)
	p := newPool(kv, "task-1", 6)
	p.create("etag-1")

	idxs, rem, fenced := p.claim(4, "inst-a", w.Clock.Now())
	if fenced || len(idxs) != 4 || rem != 2 {
		t.Fatalf("claim = (%v, %d, %v), want 4 parts with 2 remaining", idxs, rem, fenced)
	}
	if done, closed, fenced := p.flush(idxs); fenced || closed || done != 4 {
		t.Fatalf("flush = (%d, %v, %v), want done 4 still open", done, closed, fenced)
	}
	// Duplicate flush (a hedge landing twice) adds nothing.
	if done, closed, _ := p.flush(idxs[:2]); closed || done != 4 {
		t.Fatalf("duplicate flush moved done to %d (closed %v), want idempotent 4", done, closed)
	}
	idxs, rem, _ = p.claim(4, "inst-a", w.Clock.Now())
	if len(idxs) != 2 || rem != 0 {
		t.Fatalf("tail claim = (%v, %d), want the last 2 parts", idxs, rem)
	}
	done, closed, fenced := p.flush(idxs)
	if fenced || !closed || done != 6 {
		t.Fatalf("final flush = (%d, %v, %v), want closed at 6", done, closed, fenced)
	}
	// Only the update that crosses the total reports closed.
	if _, closed, _ := p.flush(idxs); closed {
		t.Fatal("re-flush reported closed again; completion would run twice")
	}
}

// TestPoolZombieWriterFenced is the zombie-writer scenario: a replicator
// whose lease expired keeps executing and reports its part after the pool
// was re-attached (epoch bumped) and the part re-issued. The stale-epoch
// flush must not double-count — the part's new owner is the one that
// counts it — and the final completion must happen exactly once.
func TestPoolZombieWriterFenced(t *testing.T) {
	w, kv := poolKV(t)
	zombie := newPool(kv, "task-z", 2)
	zombie.create("etag-z")
	idxs, _, _ := zombie.claim(2, "inst-old", w.Clock.Now())
	if len(idxs) != 2 {
		t.Fatalf("claimed %v, want both parts", idxs)
	}

	// The task resumes: attach bumps the epoch and reclaims the two
	// claimed-but-uncounted parts from the crashed/stalled instance.
	fresh := newPool(kv, "task-z", 2)
	bitmap, done, reclaimed, ok := fresh.attach()
	if !ok || bitmap != "00" || done != 0 || reclaimed != 2 {
		t.Fatalf("attach = (%q, %d, %d, %v), want both parts reclaimed", bitmap, done, reclaimed, ok)
	}

	// The zombie wakes up and reports both parts under the old epoch.
	if done, closed, fenced := zombie.flush(idxs); !fenced || closed || done != 0 {
		t.Fatalf("zombie flush = (%d, %v, %v), want fenced with no effect", done, closed, fenced)
	}
	if _, _, fenced := zombie.claim(1, "inst-old", w.Clock.Now()); !fenced {
		t.Fatal("zombie claim under the stale epoch was not fenced")
	}

	// The new epoch redoes the parts; its flush is the only completion.
	idxs, _, _ = fresh.claim(2, "inst-new", w.Clock.Now())
	done, closed, fenced := fresh.flush(idxs)
	if fenced || !closed || done != 2 {
		t.Fatalf("new-epoch flush = (%d, %v, %v), want sole completion at 2", done, closed, fenced)
	}
}

// TestPoolReapExpiredLeases: the janitor returns only lapsed claims to the
// pool — live leases keep their parts.
func TestPoolReapExpiredLeases(t *testing.T) {
	w, kv := poolKV(t)
	p := newPool(kv, "task-r", 4)
	p.create("etag-r")
	old, _, _ := p.claim(2, "inst-old", w.Clock.Now())
	w.Clock.Sleep(poolLease + time.Second) // old leases lapse
	live, _, _ := p.claim(1, "inst-live", w.Clock.Now())

	if n := p.reap(w.Clock.Now()); n != int64(len(old)) {
		t.Fatalf("reap returned %d parts, want the %d expired ones", n, len(old))
	}
	// The reclaimed parts come back out of the pool before the cursor; the
	// live claim's part stays owned.
	idxs, rem, _ := p.claim(4, "inst-live", w.Clock.Now())
	if len(idxs) != 3 || rem != 0 {
		t.Fatalf("post-reap claim = (%v, %d), want the 2 reclaimed + 1 fresh part", idxs, rem)
	}
	for _, idx := range idxs {
		for _, l := range live {
			if idx == l {
				t.Fatalf("reap returned live-leased part %d to the pool", idx)
			}
		}
	}
}

// --- crash recovery through the engine -------------------------------------

// distRule pins the distributed path to the crash sweep's deterministic
// shape: four replicators at the source, fixed 8MB parts, per-part claims.
func distRule(r *Rule) {
	r.ForceN = 4
	r.ForceLoc = srcID
	r.PartSize = 8 << 20
	r.DisableAdaptiveParts = true
	r.DisableDoubleBuffer = true
	r.ClaimBatch = 1
	r.HedgeBudget = -1
}

// TestCrashedOrchestratorRecoversViaLockWatchdog: with the default
// 15-minute lock lease, the 30s redrive of a crashed orchestrator's event
// finds the lock still held and can only record itself as pending — state
// that died with the crashed holder before this PR. The contender's
// recovery probe must fire once the lease expires and drive the key to
// convergence.
func TestCrashedOrchestratorRecoversViaLockWatchdog(t *testing.T) {
	f := newFixture(t, distRule)
	f.w.SetChaos(chaos.Profile{Name: "crash-point", CrashPoint: "after-checkpoint"})
	res := f.put(t, "big.bin", 64<<20, 3)
	f.w.Clock.Quiesce()
	f.w.SetChaos(chaos.Profile{})

	obj, err := f.dstObject(t, "big.bin")
	if err != nil || obj.ETag != res.ETag {
		t.Fatalf("destination did not converge after orchestrator crash: %v", err)
	}
	if n := f.w.Metrics.Counter("engine.recovery.locks_recovered").Value(); n != 1 {
		t.Fatalf("lock watchdog recovered %d events, want exactly 1", n)
	}
	if n := f.w.Metrics.Counter("engine.recovery.resumed").Value(); n != 1 {
		t.Fatalf("recovered attempt resumed %d checkpoints, want 1 (a full restart redoes everything)", n)
	}
	recs := f.eng.Tracker.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d delay records, want 1", len(recs))
	}
	// Recovery is lease-bound: the probe cannot fire before the crashed
	// holder's lease expired, and must not dawdle long after it.
	lease := f.eng.Rule.LockLease
	if d := recs[0].Delay; d < lease || d > lease+2*time.Minute {
		t.Fatalf("recovered delay %v, want just past the %v lock lease", d, lease)
	}
}

// TestPermanentFailureAbortsMPU is the MPU-leak regression test: a task
// that parks in the DLQ for good must not leave its multipart upload (or
// its recovery records) behind — before this PR the upload lingered until
// the bucket's lifecycle rules, billing storage the whole time.
func TestPermanentFailureAbortsMPU(t *testing.T) {
	f := newFixture(t, func(r *Rule) {
		distRule(r)
		r.RedriveMax = -1 // park immediately: the task can never resume
	})
	f.w.SetChaos(chaos.Profile{Name: "crash-point", CrashPoint: "after-checkpoint"})
	f.put(t, "doomed.bin", 64<<20, 5)
	f.w.Clock.Quiesce()
	f.w.SetChaos(chaos.Profile{})

	if dlq := f.eng.DLQ(); len(dlq) != 1 || dlq[0].Key != "doomed.bin" {
		t.Fatalf("dlq = %+v, want the crashed task parked", dlq)
	}
	infos, err := f.w.Region(dstID).Obj.ListMultiparts(f.eng.Rule.DstBucket)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("%d in-progress MPUs survived a permanently failed task, want 0", len(infos))
	}
	if n := f.w.Region(srcID).KV.Len(poolTable); n != 0 {
		t.Fatalf("%d pool records survived the final park, want 0", n)
	}
	if n := f.w.Metrics.Counter("engine.recovery.mpus_aborted").Value(); n != 1 {
		t.Fatalf("abandon path aborted %d MPUs, want 1", n)
	}

	// Operator recovery still works: redriving the DLQ replicates fresh.
	if n := f.eng.RedriveDLQ(); n != 1 {
		t.Fatalf("redrove %d events, want 1", n)
	}
	f.w.Clock.Quiesce()
	if _, err := f.dstObject(t, "doomed.bin"); err != nil {
		t.Fatalf("redriven task did not converge: %v", err)
	}
}

// TestGCOrphanedMPUs: the collector aborts only this rule's aged uploads —
// foreign uploads and uploads inside the grace window survive.
func TestGCOrphanedMPUs(t *testing.T) {
	f := newFixture(t, nil)
	dst := f.w.Region(dstID).Obj
	orphan, err := dst.CreateMultipartWithOrigin(f.eng.Rule.DstBucket, "orphan.bin", f.eng.origin())
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := dst.CreateMultipartWithOrigin(f.eng.Rule.DstBucket, "foreign.bin", "someone-else")
	if err != nil {
		t.Fatal(err)
	}
	f.w.Clock.Sleep(10 * time.Minute) // age both past the grace
	young, err := dst.CreateMultipartWithOrigin(f.eng.Rule.DstBucket, "young.bin", f.eng.origin())
	if err != nil {
		t.Fatal(err)
	}

	aborted, _ := f.eng.GCOrphanedMPUs(5 * time.Minute)
	if aborted != 1 {
		t.Fatalf("GC aborted %d uploads, want only the aged orphan", aborted)
	}
	if _, err := dst.HeadMultipart(orphan); err == nil {
		t.Fatal("aged orphan upload survived GC")
	}
	for name, id := range map[string]string{"foreign": foreign, "young": young} {
		if _, err := dst.HeadMultipart(id); err != nil {
			t.Fatalf("GC aborted the %s upload it should have kept", name)
		}
	}
}

// TestCheckpointRecordsClearedOnSuccess: a clean distributed replication
// must retire its own recovery state — lingering checkpoints would make
// every later version look resumable.
func TestCheckpointRecordsClearedOnSuccess(t *testing.T) {
	f := newFixture(t, distRule)
	res := f.put(t, "clean.bin", 64<<20, 9)
	f.w.Clock.Quiesce()

	obj, err := f.dstObject(t, "clean.bin")
	if err != nil || obj.ETag != res.ETag {
		t.Fatalf("replication failed: %v", err)
	}
	kv := f.w.Region(srcID).KV
	if n := kv.Len(poolTable); n != 0 {
		t.Fatalf("%d pool records outlived their task, want 0", n)
	}
	if n := kv.Len("areplica-ckpt:" + f.eng.ruleID); n != 0 {
		t.Fatalf("%d checkpoints outlived their task, want 0", n)
	}
	infos, err := f.w.Region(dstID).Obj.ListMultiparts(f.eng.Rule.DstBucket)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("%d in-progress MPUs left after success, want 0", len(infos))
	}
}

// TestReplicatorCrashResumesFromBitmap: a replicator crash mid-transfer
// resumes from the checkpoint's completion bitmap — the retry inherits the
// delivered parts instead of re-uploading the object.
func TestReplicatorCrashResumesFromBitmap(t *testing.T) {
	f := newFixture(t, distRule)
	legBytes := f.w.Metrics.Counter("net.leg.bytes")
	base := legBytes.Value()
	f.w.SetChaos(chaos.Profile{Name: "crash-point", CrashPoint: "after-part-3"})
	res := f.put(t, "resume.bin", 64<<20, 11)
	f.w.Clock.Quiesce()
	f.w.SetChaos(chaos.Profile{})

	obj, err := f.dstObject(t, "resume.bin")
	if err != nil || obj.ETag != res.ETag {
		t.Fatalf("destination did not converge after replicator crash: %v", err)
	}
	if n := f.w.Metrics.Counter("engine.recovery.resumed").Value(); n != 1 {
		t.Fatalf("resumed %d tasks, want 1", n)
	}
	if n := f.w.Metrics.Counter("engine.recovery.parts_resumed").Value(); n == 0 {
		t.Fatal("resumed attempt inherited no delivered parts; it restarted from scratch")
	}
	// Both network legs move 64MB each on a clean run; the crash may only
	// add a bounded remainder (the in-flight part redone), never a second
	// copy of the object.
	moved := legBytes.Value() - base
	clean := int64(2 * 64 << 20)
	if moved >= clean+(32<<20) {
		t.Fatalf("moved %d bytes (clean run %d): resume is not bounding rework", moved, clean)
	}
}

// sanity-check the objstore's upload accounting used by GC reporting.
func TestMultipartInfoTracksOrigin(t *testing.T) {
	f := newFixture(t, nil)
	if !strings.HasPrefix(f.eng.origin(), OriginPrefix) {
		t.Fatalf("engine origin %q lacks the %q prefix GC filters by", f.eng.origin(), OriginPrefix)
	}
	_ = objstore.MultipartInfo{} // the GC surface this package relies on
}
