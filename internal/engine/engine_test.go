package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/planner"
	"repro/internal/profiler"
	"repro/internal/telemetry"
	"repro/internal/world"
)

const (
	srcID = cloud.RegionID("aws:us-east-1")
	dstID = cloud.RegionID("azure:eastus")
)

type fixture struct {
	w   *world.World
	eng *Engine
}

// newFixture builds a world, profiles the rule's paths, and wires the
// engine to the source bucket's notifications. It takes testing.TB so
// benchmarks share the setup.
func newFixture(t testing.TB, mutate func(*Rule)) *fixture {
	t.Helper()
	w := world.New()
	rule := Rule{
		Src: srcID, Dst: dstID,
		SrcBucket: "src", DstBucket: "dst",
		SLO: 0, Percentile: 0.99,
	}
	if mutate != nil {
		mutate(&rule)
	}
	if err := w.Region(rule.Src).Obj.CreateBucket(rule.SrcBucket, false); err != nil {
		t.Fatal(err)
	}
	if err := w.Region(rule.Dst).Obj.CreateBucket(rule.DstBucket, false); err != nil {
		t.Fatal(err)
	}
	m := model.New()
	if rule.ForceN == 0 {
		// Forced plans never consult the model; skip profiling for them.
		m = newTestModel(w, rule.Src, rule.Dst)
	}
	eng := New(w, planner.New(m), rule)
	if err := w.Region(rule.Src).Obj.Subscribe(rule.SrcBucket, eng.HandleEvent); err != nil {
		t.Fatal(err)
	}
	return &fixture{w: w, eng: eng}
}

// newTestModel profiles src/dst with reduced effort (tests do not need the
// full 12 rounds).
func newTestModel(w *world.World, src, dst cloud.RegionID) *model.Model {
	p := profiler.New(w)
	p.Rounds = 6
	p.ChunksPerRound = 3
	m := model.New()
	p.FitRule(m, src, dst)
	return m
}

func (f *fixture) put(t testing.TB, key string, size int64, seed uint64) objstore.PutResult {
	t.Helper()
	res, err := f.w.Region(f.eng.Rule.Src).Obj.Put(f.eng.Rule.SrcBucket, key, objstore.BlobOfSize(size, seed))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func (f *fixture) dstObject(t testing.TB, key string) (objstore.Object, error) {
	t.Helper()
	return f.w.Region(f.eng.Rule.Dst).Obj.Get(f.eng.Rule.DstBucket, key)
}

func TestSmallObjectReplicates(t *testing.T) {
	f := newFixture(t, nil)
	res := f.put(t, "doc.txt", 1<<20, 7)
	f.w.Clock.Quiesce()

	obj, err := f.dstObject(t, "doc.txt")
	if err != nil {
		t.Fatalf("destination object missing: %v", err)
	}
	if obj.ETag != res.ETag {
		t.Fatalf("destination ETag %s != source %s", obj.ETag, res.ETag)
	}
	recs := f.eng.Tracker.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d delay records", len(recs))
	}
	d := recs[0].Delay
	if d <= 0 || d > 15*time.Second {
		t.Fatalf("1MB replication delay = %v, want single-digit seconds", d)
	}
	if f.eng.Tracker.PendingCount() != 0 {
		t.Fatal("tracker left pending events")
	}
}

func TestLargeObjectDistributedReplication(t *testing.T) {
	f := newFixture(t, nil)
	var results []TaskResult
	var mu sync.Mutex
	f.eng.OnTaskDone = func(r TaskResult) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	}
	res := f.put(t, "model.bin", 256<<20, 9)
	f.w.Clock.Quiesce()

	obj, err := f.dstObject(t, "model.bin")
	if err != nil {
		t.Fatalf("destination object missing: %v", err)
	}
	if obj.ETag != res.ETag {
		t.Fatal("distributed assembly corrupted the object")
	}
	if len(results) != 1 {
		t.Fatalf("got %d task results", len(results))
	}
	r := results[0]
	if r.Plan.N < 2 {
		t.Fatalf("256MB fastest plan should be parallel, got %v", r.Plan)
	}
	if len(r.Instances) != r.Plan.N {
		t.Fatalf("%d instance stats for plan n=%d", len(r.Instances), r.Plan.N)
	}
	total := 0
	for _, st := range r.Instances {
		total += st.Chunks
	}
	ps := r.Plan.PartSize
	if ps <= 0 {
		ps = f.eng.Rule.PartSize
	}
	want := int((int64(256<<20) + ps - 1) / ps)
	hedged := int(f.w.Metrics.Counter("engine.parts.hedged").Value())
	// A hedged part is uploaded by both its owner and the hedger, except
	// when one of the duplicates loses the race against MPU completion
	// and abandons: between want and want+hedged uploads in total.
	if total < want || total > want+hedged {
		t.Fatalf("instances replicated %d chunks, want %d parts (+ up to %d hedged)", total, want, hedged)
	}
}

func TestPartPoolBalancesBetterThanFair(t *testing.T) {
	// The paper's Figure 17 setup: 1 GB from Azure eastus to GCP
	// asia-northeast1 with 32 instances on the high-variance Azure side.
	// Averaged over a few runs, the pool's slowest instance must finish
	// sooner than fair dispatch's.
	slowest := func(mode SchedulingMode) time.Duration {
		f := newFixture(t, func(r *Rule) {
			r.Src, r.Dst = cloud.RegionID("azure:eastus"), cloud.RegionID("gcp:asia-northeast1")
			r.Scheduling = mode
			r.ForceN = 32
			r.ForceLoc = "azure:eastus"
		})
		var results []TaskResult
		var mu sync.Mutex
		f.eng.OnTaskDone = func(r TaskResult) { mu.Lock(); results = append(results, r); mu.Unlock() }
		for i := 0; i < 3; i++ {
			f.put(t, fmt.Sprintf("big-%d.bin", i), 1<<30, uint64(20+i))
			f.w.Clock.Quiesce()
		}
		var total time.Duration
		for _, r := range results {
			var slow time.Duration
			for _, st := range r.Instances {
				if st.Busy > slow {
					slow = st.Busy
				}
			}
			total += slow
		}
		return total / time.Duration(len(results))
	}
	poolSlow := slowest(PartPool)
	fairSlow := slowest(FairDispatch)
	if poolSlow >= fairSlow {
		t.Fatalf("pool slowest %v should beat fair slowest %v", poolSlow, fairSlow)
	}
}

func TestConcurrentVersionsConverge(t *testing.T) {
	f := newFixture(t, nil)
	// Two rapid PUTs: the lock serializes replication; the final
	// destination state must be the latest version (Figure 13's race).
	f.put(t, "hot", 1<<20, 1)
	last := f.put(t, "hot", 1<<20, 2)
	f.w.Clock.Quiesce()

	obj, err := f.dstObject(t, "hot")
	if err != nil {
		t.Fatal(err)
	}
	if obj.ETag != last.ETag {
		t.Fatalf("destination ETag %s is not the latest %s", obj.ETag, last.ETag)
	}
	// Both source versions must be resolved (v1 by v2's replication).
	if got := len(f.eng.Tracker.Records()); got != 2 {
		t.Fatalf("resolved %d events, want 2", got)
	}
	if f.eng.Tracker.PendingCount() != 0 {
		t.Fatal("pending events remain")
	}
}

func TestMidFlightUpdateAbortsAndRetries(t *testing.T) {
	f := newFixture(t, nil)
	var results []TaskResult
	var mu sync.Mutex
	f.eng.OnTaskDone = func(r TaskResult) { mu.Lock(); results = append(results, r); mu.Unlock() }

	f.put(t, "churn", 256<<20, 1)
	// Overwrite while the first distributed replication is likely in
	// flight (~a second in): optimistic validation must abort and the
	// retry must deliver the new version.
	var last objstore.PutResult
	f.w.Clock.Delay(1500*time.Millisecond, func() {
		res, err := f.w.Region(srcID).Obj.Put("src", "churn", objstore.BlobOfSize(256<<20, 2))
		if err != nil {
			t.Error(err)
		}
		mu.Lock()
		last = res
		mu.Unlock()
	})
	f.w.Clock.Quiesce()

	obj, err := f.dstObject(t, "churn")
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if obj.ETag != last.ETag {
		t.Fatalf("destination has %s, want latest %s", obj.ETag, last.ETag)
	}
	if obj.ETag != obj.Blob.ETag() {
		t.Fatal("destination object assembled from inconsistent parts")
	}
	if f.eng.Tracker.PendingCount() != 0 {
		t.Fatal("pending events remain")
	}
}

func TestDeleteReplicates(t *testing.T) {
	f := newFixture(t, nil)
	f.put(t, "temp", 1<<20, 5)
	f.w.Clock.Quiesce()
	if _, err := f.dstObject(t, "temp"); err != nil {
		t.Fatalf("object not replicated before delete: %v", err)
	}
	if err := f.w.Region(srcID).Obj.Delete("src", "temp"); err != nil {
		t.Fatal(err)
	}
	f.w.Clock.Quiesce()
	if _, err := f.dstObject(t, "temp"); err == nil {
		t.Fatal("destination object survived replicated delete")
	}
	if f.eng.Tracker.PendingCount() != 0 {
		t.Fatal("pending events remain")
	}
}

func TestSLOBudgetShrinksParallelism(t *testing.T) {
	run := func(slo time.Duration) planner.Plan {
		f := newFixture(t, func(r *Rule) { r.SLO = slo })
		var plan planner.Plan
		var mu sync.Mutex
		f.eng.OnTaskDone = func(r TaskResult) { mu.Lock(); plan = r.Plan; mu.Unlock() }
		f.put(t, "obj", 256<<20, 3)
		f.w.Clock.Quiesce()
		return plan
	}
	fastest := run(0)
	relaxed := run(2 * time.Minute)
	if relaxed.N >= fastest.N {
		t.Fatalf("relaxed SLO used n=%d, fastest used n=%d; expected fewer functions", relaxed.N, fastest.N)
	}
}

func TestChangelogHookShortCircuits(t *testing.T) {
	f := newFixture(t, nil)
	var hooked []string
	f.eng.TryChangelog = func(_ *telemetry.Span, key, etag string) bool {
		hooked = append(hooked, key)
		return true // pretend the changelog replicated it
	}
	f.put(t, "copied", 64<<20, 6)
	f.w.Clock.Quiesce()
	if len(hooked) != 1 || hooked[0] != "copied" {
		t.Fatalf("changelog hook calls = %v", hooked)
	}
	// No data was moved: destination must not have the object, but the
	// event must be resolved (the hook claimed success).
	if _, err := f.dstObject(t, "copied"); err == nil {
		t.Fatal("hook claimed the transfer; engine should not have copied data")
	}
	if f.eng.Tracker.PendingCount() != 0 {
		t.Fatal("pending events remain")
	}
	recs := f.eng.Tracker.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
}

func TestNoEgressForChangelogPath(t *testing.T) {
	f := newFixture(t, nil)
	f.eng.TryChangelog = func(_ *telemetry.Span, key, etag string) bool { return true }
	before := f.w.Meter.Item("net:egress")
	f.put(t, "x", 128<<20, 2)
	f.w.Clock.Quiesce()
	if after := f.w.Meter.Item("net:egress"); after != before {
		t.Fatalf("changelog path moved %v dollars of egress", after-before)
	}
}

func TestTrackerResolveOrdering(t *testing.T) {
	tr := NewTracker()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	tr.OnSource(objstore.Event{Key: "k", Seq: 1, Time: base})
	tr.OnSource(objstore.Event{Key: "k", Seq: 2, Time: base.Add(time.Second)})
	tr.OnSource(objstore.Event{Key: "k", Seq: 5, Time: base.Add(2 * time.Second)})
	tr.Resolve("k", 2, base.Add(3*time.Second))
	if got := len(tr.Records()); got != 2 {
		t.Fatalf("resolved %d, want 2", got)
	}
	if tr.PendingCount() != 1 {
		t.Fatalf("pending = %d, want 1 (seq 5)", tr.PendingCount())
	}
	tr.Resolve("k", 10, base.Add(4*time.Second))
	if tr.PendingCount() != 0 {
		t.Fatal("seq 5 not resolved")
	}
	recs := tr.Records()
	if recs[0].Delay != 3*time.Second || recs[1].Delay != 2*time.Second {
		t.Fatalf("delays = %v, %v", recs[0].Delay, recs[1].Delay)
	}
	// Other keys are unaffected.
	tr.OnSource(objstore.Event{Key: "other", Seq: 3, Time: base})
	tr.Resolve("k", 99, base)
	if tr.PendingCount() != 1 {
		t.Fatal("resolve leaked across keys")
	}
}

func TestLockPendingRecorded(t *testing.T) {
	w := world.New()
	l := newReplLock(w.Region(srcID).KV, "test-rule", 0, w.Clock.Now)
	tok1, ok, _ := l.acquire("k", "e1", 1)
	if !ok {
		t.Fatal("first acquire failed")
	}
	if _, ok, _ := l.acquire("k", "e2", 2); ok {
		t.Fatal("second acquire should fail")
	}
	if _, ok, _ := l.acquire("k", "e3", 3); ok {
		t.Fatal("third acquire should fail")
	}
	etag, seq, retrigger := l.release("k", tok1, 1)
	if !retrigger || etag != "e3" || seq != 3 {
		t.Fatalf("release = (%s, %d, %v), want (e3, 3, true)", etag, seq, retrigger)
	}
	// Lock is free again.
	tok2, ok, _ := l.acquire("k", "e3", 3)
	if !ok {
		t.Fatal("re-acquire after release failed")
	}
	if _, _, retrigger := l.release("k", tok2, 3); retrigger {
		t.Fatal("no newer version pending; retrigger must be false")
	}
}

func TestRuleDefaults(t *testing.T) {
	r := Rule{}.WithDefaults()
	if r.Percentile != 0.99 || r.PartSize != 8<<20 || r.MaxRetries != 3 {
		t.Fatalf("defaults = %+v", r)
	}
	if PartPool.String() != "part-pool" || FairDispatch.String() != "fair" {
		t.Fatal("scheduling mode strings")
	}
}

func TestDeleteDuringHeldReplicationConverges(t *testing.T) {
	// Regression: a DELETE arriving while a PUT replication holds the
	// object's lock loses the lock race; the holder must re-drive the
	// delete on release instead of dropping it.
	f := newFixture(t, nil)
	f.put(t, "victim", 512<<20, 1) // slow enough to still be in flight
	f.w.Clock.Delay(1200*time.Millisecond, func() {
		if err := f.w.Region(srcID).Obj.Delete("src", "victim"); err != nil {
			t.Error(err)
		}
	})
	f.w.Clock.Quiesce()
	if _, err := f.dstObject(t, "victim"); err == nil {
		t.Fatal("destination still holds a deleted object")
	}
	if got := f.eng.Tracker.PendingCount(); got != 0 {
		t.Fatalf("%d events never resolved", got)
	}
	// The delete's delay must be bounded (not deferred to a later write).
	for _, r := range f.eng.Tracker.Records() {
		if r.Delay > 30*time.Second {
			t.Fatalf("record resolved after %v", r.Delay)
		}
	}
}

func TestKeyPrefixScoping(t *testing.T) {
	f := newFixture(t, func(r *Rule) { r.KeyPrefix = "logs/" })
	f.put(t, "logs/a.bin", 1<<20, 1)
	f.put(t, "images/b.bin", 1<<20, 2)
	f.w.Clock.Quiesce()
	if _, err := f.dstObject(t, "logs/a.bin"); err != nil {
		t.Fatalf("in-scope key not replicated: %v", err)
	}
	if _, err := f.dstObject(t, "images/b.bin"); err == nil {
		t.Fatal("out-of-scope key replicated")
	}
	// Out-of-scope events must not linger in the tracker.
	if got := f.eng.Tracker.PendingCount(); got != 0 {
		t.Fatalf("pending = %d", got)
	}
	if got := len(f.eng.Tracker.Records()); got != 1 {
		t.Fatalf("records = %d, want 1", got)
	}
}

func TestPartBoundaryEdgeCases(t *testing.T) {
	// Objects exactly at, just under, and just over part multiples must
	// all assemble byte-correctly.
	f := newFixture(t, func(r *Rule) {
		r.ForceN = 4
		r.ForceLoc = srcID
	})
	part := f.eng.Rule.PartSize
	for i, size := range []int64{part, 4 * part, 4*part - 1, 4*part + 1, part + 1, 3*part + 7} {
		key := fmt.Sprintf("edge-%d", i)
		res := f.put(t, key, size, uint64(i)+1)
		f.w.Clock.Quiesce()
		obj, err := f.dstObject(t, key)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if obj.ETag != res.ETag || obj.Size != size {
			t.Fatalf("size %d: replica mismatch", size)
		}
	}
}

func TestTinyObjectWithForcedParallelism(t *testing.T) {
	// More replicators than parts: extra instances must drain cleanly.
	f := newFixture(t, func(r *Rule) {
		r.ForceN = 16
		r.ForceLoc = srcID
	})
	res := f.put(t, "tiny", 1<<20, 1) // one part, sixteen replicators
	f.w.Clock.Quiesce()
	obj, err := f.dstObject(t, "tiny")
	if err != nil || obj.ETag != res.ETag {
		t.Fatalf("tiny object failed: %v", err)
	}
	if f.eng.Tracker.PendingCount() != 0 {
		t.Fatal("pending events")
	}
}

func TestTinyPartSize(t *testing.T) {
	// A deliberately small part size exercises long claim chains.
	f := newFixture(t, func(r *Rule) {
		r.ForceN = 8
		r.ForceLoc = srcID
		r.PartSize = 1 << 20
	})
	res := f.put(t, "many-parts", 64<<20, 2) // 64 parts over 8 instances
	f.w.Clock.Quiesce()
	obj, err := f.dstObject(t, "many-parts")
	if err != nil || obj.ETag != res.ETag {
		t.Fatalf("small-part replication failed: %v", err)
	}
}

func TestFairDispatchWithFewerPartsThanInstances(t *testing.T) {
	f := newFixture(t, func(r *Rule) {
		r.ForceN = 16
		r.ForceLoc = srcID
		r.Scheduling = FairDispatch
	})
	res := f.put(t, "sparse", 24<<20, 3) // 3 parts over 16 instances
	f.w.Clock.Quiesce()
	obj, err := f.dstObject(t, "sparse")
	if err != nil || obj.ETag != res.ETag {
		t.Fatalf("sparse fair dispatch failed: %v", err)
	}
}

func TestLockLeaseExpiresAfterCrash(t *testing.T) {
	// A holder that never releases (crashed orchestrator) must not wedge
	// the key forever: the lock's KV lease expires and a later version
	// acquires cleanly.
	w := world.New()
	l := newReplLock(w.Region(srcID).KV, "lease-rule", 0, w.Clock.Now)
	tok1, ok, _ := l.acquire("k", "e1", 1)
	if !ok {
		t.Fatal("first acquire failed")
	}
	// Crash: no release. Before the lease expires, acquires still fail.
	w.Clock.Sleep(time.Minute)
	if _, ok, _ := l.acquire("k", "e2", 2); ok {
		t.Fatal("lease should still be held")
	}
	w.Clock.Sleep(20 * time.Minute) // past the 15-minute lease
	tok2, ok, _ := l.acquire("k", "e3", 3)
	if !ok {
		t.Fatal("expired lease should be acquirable")
	}
	// The crashed holder's late release is fenced by its token: it must
	// not drop the second acquirer's lock or observe its pending state.
	if _, ok, _ := l.acquire("k", "e4", 4); ok {
		t.Fatal("lock should be held by the second acquirer")
	}
	if _, _, retrigger := l.release("k", tok1, 1); retrigger {
		t.Fatal("zombie release must be a no-op")
	}
	if _, ok, _ := l.acquire("k", "e5", 5); ok {
		t.Fatal("zombie release must not free the new holder's lock")
	}
	// The live holder's own release still works and surfaces the pending
	// versions recorded while it held the lock.
	etag, seq, retrigger := l.release("k", tok2, 3)
	if !retrigger || etag != "e5" || seq != 5 {
		t.Fatalf("release = (%s, %d, %v), want (e5, 5, true)", etag, seq, retrigger)
	}
}

func TestLockLeaseConfigurable(t *testing.T) {
	// A short LockLease frees a crashed holder's key on that cadence.
	w := world.New()
	l := newReplLock(w.Region(srcID).KV, "short-lease", 20*time.Second, w.Clock.Now)
	if _, ok, _ := l.acquire("k", "e1", 1); !ok {
		t.Fatal("first acquire failed")
	}
	w.Clock.Sleep(10 * time.Second)
	if _, ok, _ := l.acquire("k", "e2", 2); ok {
		t.Fatal("lease should still be held at 10s")
	}
	w.Clock.Sleep(15 * time.Second) // 25s > 20s lease
	if _, ok, _ := l.acquire("k", "e3", 3); !ok {
		t.Fatal("20s lease should have expired")
	}
}

func TestBackfillSyncsPreexistingObjects(t *testing.T) {
	w := world.New()
	rule := Rule{Src: srcID, Dst: dstID, SrcBucket: "src", DstBucket: "dst"}
	if err := w.Region(srcID).Obj.CreateBucket("src", false); err != nil {
		t.Fatal(err)
	}
	if err := w.Region(dstID).Obj.CreateBucket("dst", false); err != nil {
		t.Fatal(err)
	}
	// Objects exist BEFORE the rule is deployed.
	want := map[string]string{}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("old-%d", i)
		res, err := w.Region(srcID).Obj.Put("src", key, objstore.BlobOfSize(2<<20, uint64(i)+1))
		if err != nil {
			t.Fatal(err)
		}
		want[key] = res.ETag
	}
	w.Clock.Quiesce() // notifications fire into the void (no subscriber yet)

	m := newTestModel(w, srcID, dstID)
	eng := New(w, planner.New(m), rule)
	if err := w.Region(srcID).Obj.Subscribe("src", eng.HandleEvent); err != nil {
		t.Fatal(err)
	}
	n, err := eng.Backfill()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("scheduled %d, want 5", n)
	}
	w.Clock.Quiesce()
	for key, etag := range want {
		obj, err := w.Region(dstID).Obj.Get("dst", key)
		if err != nil || obj.ETag != etag {
			t.Fatalf("%s not backfilled: %v", key, err)
		}
	}
	// Idempotent: a second backfill finds everything converged.
	n, err = eng.Backfill()
	if err != nil || n != 0 {
		t.Fatalf("second backfill scheduled %d (%v), want 0", n, err)
	}
	if eng.Tracker.PendingCount() != 0 {
		t.Fatal("pending events remain")
	}
}

func TestBackfillRespectsPrefixAndStaleness(t *testing.T) {
	w := world.New()
	rule := Rule{Src: srcID, Dst: dstID, SrcBucket: "src", DstBucket: "dst", KeyPrefix: "keep/"}
	w.Region(srcID).Obj.CreateBucket("src", false)
	w.Region(dstID).Obj.CreateBucket("dst", false)
	res, _ := w.Region(srcID).Obj.Put("src", "keep/a", objstore.BlobOfSize(1<<20, 1))
	w.Region(srcID).Obj.Put("src", "skip/b", objstore.BlobOfSize(1<<20, 2))
	// A stale copy of keep/a already sits at the destination.
	w.Region(dstID).Obj.Put("dst", "keep/a", objstore.BlobOfSize(1<<20, 99))
	w.Clock.Quiesce()

	m := newTestModel(w, srcID, dstID)
	eng := New(w, planner.New(m), rule)
	n, err := eng.Backfill()
	if err != nil || n != 1 {
		t.Fatalf("scheduled %d (%v), want 1 (stale keep/a only)", n, err)
	}
	w.Clock.Quiesce()
	obj, err := w.Region(dstID).Obj.Get("dst", "keep/a")
	if err != nil || obj.ETag != res.ETag {
		t.Fatalf("stale object not refreshed: %v", err)
	}
	if _, err := w.Region(dstID).Obj.Get("dst", "skip/b"); err == nil {
		t.Fatal("out-of-prefix object backfilled")
	}
}
