package engine

import (
	"container/heap"
	"sync"
	"time"

	"repro/internal/objstore"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// DelayRecord is one source write's measured replication delay: the time
// from PUT completion in the source bucket until that version *or a newer
// one* was retrievable in the destination — the paper's delay metric (§8).
type DelayRecord struct {
	Key       string
	Seq       uint64
	Size      int64
	EventTime time.Time
	DoneTime  time.Time
	Delay     time.Duration
}

// trackerShards is the pending-state fan-out. Power of two so the key
// hash folds with a mask; 16 keeps the fixed per-poll cost (one heap peek
// per shard) negligible while bounding each shard's map to 1/16 of the
// backlog.
const trackerShards = 16

// Tracker resolves replication delays. Every source event registers here
// when the notification arrives; completions resolve all registered events
// of the key whose version is not newer than the replicated one, so
// SLO-bounded batching and lock-coalesced versions are measured correctly.
//
// Pending state is sharded by key hash, and each shard keeps a min-heap
// on event time with lazy deletion, so the watermark queries the burn-rate
// evaluator polls every round (OldestPending, OverdueCount) cost one heap
// peek / bounded heap walk per shard instead of a scan over every pending
// event in the fleet.
type Tracker struct {
	shards [trackerShards]trackerShard

	// mu guards the resolved-record log and the instrument wiring; the
	// per-shard locks guard pending state. Records still append in global
	// resolve order, so exported delay series are unchanged by sharding.
	mu      sync.Mutex
	records []DelayRecord

	delayHist *telemetry.Histogram // optional; nil no-ops

	// Lag watermark instruments (all optional): lagHist is the
	// per-destination replication-lag histogram child, backlog mirrors the
	// pending-event depth (aggregate + labelled child), and oldestMS holds
	// the age of the oldest unreplicated event in milliseconds, refreshed
	// by SampleWatermarks on the virtual clock.
	lagHist  *telemetry.Histogram
	backlog  telemetry.MirrorGauge
	oldestMS *telemetry.Gauge
}

type trackerShard struct {
	mu       sync.Mutex
	pending  map[string][]pendingEvent
	resolved map[string]uint64 // per-key high-water mark of resolved versions
	n        int               // live pending events in this shard

	// byTime orders the shard's pending events by (at, key, seq) — a total
	// order, so heap contents are a pure function of the event sequence.
	// Resolution deletes lazily: entries whose (key, seq) is no longer in
	// pending are skipped on peek and swept out by rebuilds once the dead
	// outnumber the live.
	byTime evHeap
	dead   int
}

type pendingEvent struct {
	seq  uint64
	size int64
	at   time.Time
}

// heapEv is one pending event's heap entry.
type heapEv struct {
	at  time.Time
	key string
	seq uint64
}

type evHeap []heapEv

func (h evHeap) Len() int { return len(h) }
func (h evHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].seq < h[j].seq
}
func (h evHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *evHeap) Push(x any)   { *h = append(*h, x.(heapEv)) }
func (h *evHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	t := &Tracker{}
	for i := range t.shards {
		t.shards[i].pending = make(map[string][]pendingEvent)
		t.shards[i].resolved = make(map[string]uint64)
	}
	return t
}

// shard routes a key to its pending shard (FNV-1a, inlined to avoid the
// hash.Hash allocation on every notification).
func (t *Tracker) shard(key string) *trackerShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &t.shards[h&(trackerShards-1)]
}

// alive reports whether the heap entry still refers to a pending event.
// Caller holds the shard lock; per-key slices hold the few unresolved
// versions of one object, so the scan is constant-time in practice.
func (s *trackerShard) alive(ev heapEv) bool {
	for _, p := range s.pending[ev.key] {
		if p.seq == ev.seq {
			return true
		}
	}
	return false
}

// pruneTop pops dead entries off the heap until the min is live (or the
// heap is empty). Caller holds the shard lock.
func (s *trackerShard) pruneTop() {
	for len(s.byTime) > 0 && !s.alive(s.byTime[0]) {
		heap.Pop(&s.byTime)
		s.dead--
	}
}

// sweep rebuilds the heap from the pending map once dead entries
// outnumber live ones, bounding heap size at 2x the live backlog. Caller
// holds the shard lock.
func (s *trackerShard) sweep() {
	if s.dead <= s.n {
		return
	}
	s.byTime = s.byTime[:0]
	for key, evs := range s.pending {
		for _, p := range evs {
			s.byTime = append(s.byTime, heapEv{at: p.at, key: key, seq: p.seq})
		}
	}
	heap.Init(&s.byTime)
	s.dead = 0
}

// SetTelemetry feeds every resolved delay into hist (the paper's
// replication-delay metric, aggregated run-wide).
func (t *Tracker) SetTelemetry(hist *telemetry.Histogram) {
	t.mu.Lock()
	t.delayHist = hist
	t.mu.Unlock()
}

// SetWatermarks wires the RTC-style lag watermark instruments: lag is
// the per-destination replication-lag histogram (each resolved event's
// observed→durable time), backlog the pending-depth gauge pair, and
// oldestMS the oldest-unreplicated-age gauge SampleWatermarks refreshes.
func (t *Tracker) SetWatermarks(lag *telemetry.Histogram, backlog telemetry.MirrorGauge, oldestMS *telemetry.Gauge) {
	t.mu.Lock()
	t.lagHist = lag
	t.backlog = backlog
	t.oldestMS = oldestMS
	t.mu.Unlock()
}

// OnSource registers a source-bucket event awaiting replication. It
// returns false — and registers nothing — for duplicate deliveries:
// either the same (key, version) is already pending, or the version was
// already resolved (a notification re-delivered after the engine
// converged). Callers skip dispatch on false; this is the version-level
// dedupe that keeps at-least-once notification delivery from causing
// duplicate replication work.
func (t *Tracker) OnSource(ev objstore.Event) bool {
	s := t.shard(ev.Key)
	s.mu.Lock()
	if ev.Seq <= s.resolved[ev.Key] {
		s.mu.Unlock()
		return false
	}
	for _, p := range s.pending[ev.Key] {
		if p.seq == ev.Seq {
			s.mu.Unlock()
			return false
		}
	}
	s.pending[ev.Key] = append(s.pending[ev.Key], pendingEvent{seq: ev.Seq, size: ev.Size, at: ev.Time})
	heap.Push(&s.byTime, heapEv{at: ev.Time, key: ev.Key, seq: ev.Seq})
	s.n++
	s.mu.Unlock()
	t.backlog.Add(1)
	return true
}

// Resolve marks every pending event of key with version <= seq as
// replicated at time done, recording their delays.
func (t *Tracker) Resolve(key string, seq uint64, done time.Time) {
	t.ResolveSpan(key, seq, done, nil)
}

// ResolveSpan is Resolve with the task span of the completion: each
// resolved delay is nominated as an exemplar for the delay and lag
// histograms, linking the bucket to the completing task's trace if that
// trace survives retention. A nil span resolves without exemplars.
func (t *Tracker) ResolveSpan(key string, seq uint64, done time.Time, sp *telemetry.Span) {
	s := t.shard(key)
	s.mu.Lock()
	if seq > s.resolved[key] {
		s.resolved[key] = seq
	}
	evs := s.pending[key]
	var hits []pendingEvent
	remaining := evs[:0]
	for _, ev := range evs {
		if ev.seq <= seq {
			hits = append(hits, ev)
		} else {
			remaining = append(remaining, ev)
		}
	}
	if len(hits) > 0 {
		if len(remaining) == 0 {
			delete(s.pending, key)
		} else {
			s.pending[key] = remaining
		}
		s.n -= len(hits)
		s.dead += len(hits)
		s.sweep()
	}
	s.mu.Unlock()
	if len(hits) == 0 {
		return
	}

	t.mu.Lock()
	for _, ev := range hits {
		d := done.Sub(ev.at)
		t.records = append(t.records, DelayRecord{
			Key:       key,
			Seq:       ev.seq,
			Size:      ev.size,
			EventTime: ev.at,
			DoneTime:  done,
			Delay:     d,
		})
		secs := simclock.ToSeconds(d)
		t.delayHist.Observe(secs)
		t.lagHist.Observe(secs)
		sp.Exemplar(t.delayHist, secs)
		sp.Exemplar(t.lagHist, secs)
		t.backlog.Add(-1)
	}
	t.mu.Unlock()
}

// Records returns a copy of the resolved delay records.
func (t *Tracker) Records() []DelayRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]DelayRecord(nil), t.records...)
}

// DelaysSeconds returns the resolved delays in seconds.
func (t *Tracker) DelaysSeconds() []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]float64, len(t.records))
	for i, r := range t.records {
		out[i] = r.Delay.Seconds()
	}
	return out
}

// PendingFor reports whether any event for key awaits resolution.
func (t *Tracker) PendingFor(key string) bool {
	s := t.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending[key]) > 0
}

// PendingCount reports events that have not been resolved yet.
func (t *Tracker) PendingCount() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += s.n
		s.mu.Unlock()
	}
	return n
}

// OldestPending returns the age at `now` of the oldest unreplicated
// source event, or 0 when nothing is pending — the watermark behind the
// oldest-unreplicated-age gauge. One pruned heap peek per shard.
func (t *Tracker) OldestPending(now time.Time) time.Duration {
	var oldest time.Duration
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.pruneTop()
		if len(s.byTime) > 0 {
			if age := now.Sub(s.byTime[0].at); age > oldest {
				oldest = age
			}
		}
		s.mu.Unlock()
	}
	return oldest
}

// SampleWatermarks refreshes the oldest-unreplicated-age gauge at the
// given virtual instant and returns the sampled age. Drivers call it at
// their natural poll points (the virtual clock only advances while
// actors sleep, so the tracker cannot self-schedule a sampling timer).
func (t *Tracker) SampleWatermarks(now time.Time) time.Duration {
	age := t.OldestPending(now)
	t.oldestMS.Set(age.Milliseconds())
	return age
}

// OverdueCount reports how many pending events have waited longer than
// target at `now` — the burn-rate evaluator's in-flight "bad" events,
// which catches fault windows where nothing resolves at all. The heap
// property bounds the walk: a subtree is pruned as soon as its root is
// younger than the threshold, so cost scales with the answer (plus any
// not-yet-swept dead entries), not the backlog.
func (t *Tracker) OverdueCount(now time.Time, target time.Duration) int {
	cut := now.Add(-target)
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += s.overdueFrom(0, cut)
		s.mu.Unlock()
	}
	return n
}

// overdueFrom counts live heap entries strictly older than cut in the
// subtree rooted at i. Dead entries still carry a valid lower bound for
// their subtree, so they prune correctly; they just do not count. Caller
// holds the shard lock.
func (s *trackerShard) overdueFrom(i int, cut time.Time) int {
	if i >= len(s.byTime) || !s.byTime[i].at.Before(cut) {
		return 0
	}
	n := 0
	if s.alive(s.byTime[i]) {
		n++
	}
	return n + s.overdueFrom(2*i+1, cut) + s.overdueFrom(2*i+2, cut)
}

// ResolvedStats counts delay records resolved at or after cut, and how
// many of them exceeded the lag target. Records resolve in nondecreasing
// virtual time, so the scan walks back from the tail.
func (t *Tracker) ResolvedStats(cut time.Time, target time.Duration) (total, bad int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.records) - 1; i >= 0; i-- {
		r := t.records[i]
		if r.DoneTime.Before(cut) {
			break
		}
		total++
		if r.Delay > target {
			bad++
		}
	}
	return total, bad
}

// BacklogDepth returns the current pending-event depth.
func (t *Tracker) BacklogDepth() int {
	return t.PendingCount()
}
