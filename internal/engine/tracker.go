package engine

import (
	"sync"
	"time"

	"repro/internal/objstore"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// DelayRecord is one source write's measured replication delay: the time
// from PUT completion in the source bucket until that version *or a newer
// one* was retrievable in the destination — the paper's delay metric (§8).
type DelayRecord struct {
	Key       string
	Seq       uint64
	Size      int64
	EventTime time.Time
	DoneTime  time.Time
	Delay     time.Duration
}

// Tracker resolves replication delays. Every source event registers here
// when the notification arrives; completions resolve all registered events
// of the key whose version is not newer than the replicated one, so
// SLO-bounded batching and lock-coalesced versions are measured correctly.
type Tracker struct {
	mu       sync.Mutex
	pending  map[string][]pendingEvent
	resolved map[string]uint64 // per-key high-water mark of resolved versions
	records  []DelayRecord
	pendingN int // total pending events (backlog depth)

	delayHist *telemetry.Histogram // optional; nil no-ops

	// Lag watermark instruments (all optional): lagHist is the
	// per-destination replication-lag histogram child, backlog mirrors the
	// pending-event depth (aggregate + labelled child), and oldestMS holds
	// the age of the oldest unreplicated event in milliseconds, refreshed
	// by SampleWatermarks on the virtual clock.
	lagHist  *telemetry.Histogram
	backlog  telemetry.MirrorGauge
	oldestMS *telemetry.Gauge
}

type pendingEvent struct {
	seq  uint64
	size int64
	at   time.Time
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		pending:  make(map[string][]pendingEvent),
		resolved: make(map[string]uint64),
	}
}

// SetTelemetry feeds every resolved delay into hist (the paper's
// replication-delay metric, aggregated run-wide).
func (t *Tracker) SetTelemetry(hist *telemetry.Histogram) {
	t.mu.Lock()
	t.delayHist = hist
	t.mu.Unlock()
}

// SetWatermarks wires the RTC-style lag watermark instruments: lag is
// the per-destination replication-lag histogram (each resolved event's
// observed→durable time), backlog the pending-depth gauge pair, and
// oldestMS the oldest-unreplicated-age gauge SampleWatermarks refreshes.
func (t *Tracker) SetWatermarks(lag *telemetry.Histogram, backlog telemetry.MirrorGauge, oldestMS *telemetry.Gauge) {
	t.mu.Lock()
	t.lagHist = lag
	t.backlog = backlog
	t.oldestMS = oldestMS
	t.mu.Unlock()
}

// OnSource registers a source-bucket event awaiting replication. It
// returns false — and registers nothing — for duplicate deliveries:
// either the same (key, version) is already pending, or the version was
// already resolved (a notification re-delivered after the engine
// converged). Callers skip dispatch on false; this is the version-level
// dedupe that keeps at-least-once notification delivery from causing
// duplicate replication work.
func (t *Tracker) OnSource(ev objstore.Event) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ev.Seq <= t.resolved[ev.Key] {
		return false
	}
	for _, p := range t.pending[ev.Key] {
		if p.seq == ev.Seq {
			return false
		}
	}
	t.pending[ev.Key] = append(t.pending[ev.Key], pendingEvent{seq: ev.Seq, size: ev.Size, at: ev.Time})
	t.pendingN++
	t.backlog.Add(1)
	return true
}

// Resolve marks every pending event of key with version <= seq as
// replicated at time done, recording their delays.
func (t *Tracker) Resolve(key string, seq uint64, done time.Time) {
	t.ResolveSpan(key, seq, done, nil)
}

// ResolveSpan is Resolve with the task span of the completion: each
// resolved delay is nominated as an exemplar for the delay and lag
// histograms, linking the bucket to the completing task's trace if that
// trace survives retention. A nil span resolves without exemplars.
func (t *Tracker) ResolveSpan(key string, seq uint64, done time.Time, sp *telemetry.Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if seq > t.resolved[key] {
		t.resolved[key] = seq
	}
	evs := t.pending[key]
	remaining := evs[:0]
	for _, ev := range evs {
		if ev.seq <= seq {
			d := done.Sub(ev.at)
			t.records = append(t.records, DelayRecord{
				Key:       key,
				Seq:       ev.seq,
				Size:      ev.size,
				EventTime: ev.at,
				DoneTime:  done,
				Delay:     d,
			})
			secs := simclock.ToSeconds(d)
			t.delayHist.Observe(secs)
			t.lagHist.Observe(secs)
			sp.Exemplar(t.delayHist, secs)
			sp.Exemplar(t.lagHist, secs)
			t.pendingN--
			t.backlog.Add(-1)
		} else {
			remaining = append(remaining, ev)
		}
	}
	if len(remaining) == 0 {
		delete(t.pending, key)
	} else {
		t.pending[key] = append([]pendingEvent(nil), remaining...)
	}
}

// Records returns a copy of the resolved delay records.
func (t *Tracker) Records() []DelayRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]DelayRecord(nil), t.records...)
}

// DelaysSeconds returns the resolved delays in seconds.
func (t *Tracker) DelaysSeconds() []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]float64, len(t.records))
	for i, r := range t.records {
		out[i] = r.Delay.Seconds()
	}
	return out
}

// PendingFor reports whether any event for key awaits resolution.
func (t *Tracker) PendingFor(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pending[key]) > 0
}

// PendingCount reports events that have not been resolved yet.
func (t *Tracker) PendingCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, evs := range t.pending {
		n += len(evs)
	}
	return n
}

// OldestPending returns the age at `now` of the oldest unreplicated
// source event, or 0 when nothing is pending — the watermark behind the
// oldest-unreplicated-age gauge.
func (t *Tracker) OldestPending(now time.Time) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.oldestPendingLocked(now)
}

func (t *Tracker) oldestPendingLocked(now time.Time) time.Duration {
	var oldest time.Duration
	for _, evs := range t.pending {
		for _, ev := range evs {
			if age := now.Sub(ev.at); age > oldest {
				oldest = age
			}
		}
	}
	return oldest
}

// SampleWatermarks refreshes the oldest-unreplicated-age gauge at the
// given virtual instant and returns the sampled age. Drivers call it at
// their natural poll points (the virtual clock only advances while
// actors sleep, so the tracker cannot self-schedule a sampling timer).
func (t *Tracker) SampleWatermarks(now time.Time) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	age := t.oldestPendingLocked(now)
	t.oldestMS.Set(age.Milliseconds())
	return age
}

// OverdueCount reports how many pending events have waited longer than
// target at `now` — the burn-rate evaluator's in-flight "bad" events,
// which catches fault windows where nothing resolves at all.
func (t *Tracker) OverdueCount(now time.Time, target time.Duration) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, evs := range t.pending {
		for _, ev := range evs {
			if now.Sub(ev.at) > target {
				n++
			}
		}
	}
	return n
}

// ResolvedStats counts delay records resolved at or after cut, and how
// many of them exceeded the lag target. Records resolve in nondecreasing
// virtual time, so the scan walks back from the tail.
func (t *Tracker) ResolvedStats(cut time.Time, target time.Duration) (total, bad int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.records) - 1; i >= 0; i-- {
		r := t.records[i]
		if r.DoneTime.Before(cut) {
			break
		}
		total++
		if r.Delay > target {
			bad++
		}
	}
	return total, bad
}

// BacklogDepth returns the current pending-event depth.
func (t *Tracker) BacklogDepth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pendingN
}
