package engine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/objstore"
	"repro/internal/simrand"
)

// TestRandomizedConvergence drives randomized operation schedules —
// overwrites, deletes, bursts, hot keys, mixed sizes — against the engine
// and asserts the core invariant of §5.2: after quiescing, the destination
// bucket equals the source bucket exactly, every source event is resolved,
// and nothing leaks to the dead-letter queue (no faults are injected here).
func TestRandomizedConvergence(t *testing.T) {
	for _, seed := range []string{"alpha", "beta", "gamma"} {
		seed := seed
		t.Run(seed, func(t *testing.T) {
			f := newFixture(t, nil)
			rng := simrand.New("convergence", seed)
			src := f.w.Region(srcID).Obj

			const keys = 6
			const ops = 60
			f.w.Clock.Go(func() {
				for i := 0; i < ops; i++ {
					key := fmt.Sprintf("k-%d", rng.Intn(keys))
					switch {
					case rng.Float64() < 0.15:
						if err := src.Delete("src", key); err != nil {
							t.Error(err)
						}
					default:
						// Sizes from tiny to large enough for distributed
						// replication; hot bursts come from zero gaps below.
						size := int64(1) << (10 + rng.Intn(18)) // 1KB..128MB
						if _, err := src.Put("src", key, objstore.BlobOfSize(size, uint64(i)+1)); err != nil {
							t.Error(err)
						}
					}
					// Mostly spread out, sometimes back-to-back (lock races).
					if rng.Float64() < 0.6 {
						f.w.Clock.Sleep(time.Duration(rng.Intn(4000)) * time.Millisecond)
					}
				}
			})
			f.w.Clock.Quiesce()

			if got := len(f.eng.DLQ()); got != 0 {
				t.Fatalf("dead-letter queue has %d events without injected faults", got)
			}
			if got := f.eng.Tracker.PendingCount(); got != 0 {
				t.Fatalf("%d source events never resolved", got)
			}
			// Destination must equal source, key for key.
			srcKeys := src.Keys("src")
			dstKeys := f.w.Region(dstID).Obj.Keys("dst")
			if len(srcKeys) != len(dstKeys) {
				t.Fatalf("key sets differ: src=%v dst=%v", srcKeys, dstKeys)
			}
			for _, key := range srcKeys {
				want, err := src.Head("src", key)
				if err != nil {
					t.Fatal(err)
				}
				got, err := f.w.Region(dstID).Obj.Head("dst", key)
				if err != nil {
					t.Fatalf("dst missing %s: %v", key, err)
				}
				if got.ETag != want.ETag {
					t.Fatalf("%s: dst etag %s != src %s", key, got.ETag, want.ETag)
				}
			}
		})
	}
}

// TestRandomizedConvergenceUnderFaults repeats the randomized schedule
// with transient request failures on both sides. DLQ entries are allowed
// (permanently unlucky versions), but any key whose latest source version
// is NOT in the DLQ must converge, and nothing may be internally
// inconsistent at the destination.
func TestRandomizedConvergenceUnderFaults(t *testing.T) {
	f := newFixture(t, nil)
	f.w.Region(srcID).Obj.SetFailureRate(0.03)
	f.w.Region(dstID).Obj.SetFailureRate(0.03)
	rng := simrand.New("convergence-faults")
	src := f.w.Region(srcID).Obj

	putRetry := func(key string, size int64, seed uint64) {
		for attempt := 0; attempt < 12; attempt++ {
			if _, err := src.Put("src", key, objstore.BlobOfSize(size, seed)); err == nil {
				return
			}
		}
		t.Fatalf("workload writer could not put %s", key)
	}
	f.w.Clock.Go(func() {
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("k-%d", rng.Intn(5))
			putRetry(key, int64(1)<<(10+rng.Intn(16)), uint64(i)+1)
			f.w.Clock.Sleep(time.Duration(rng.Intn(3000)) * time.Millisecond)
		}
	})
	f.w.Clock.Quiesce()
	f.w.Region(srcID).Obj.SetFailureRate(0)
	f.w.Region(dstID).Obj.SetFailureRate(0)

	deadKeys := map[string]bool{}
	for _, ev := range f.eng.DLQ() {
		deadKeys[ev.Key] = true
	}
	for _, key := range src.Keys("src") {
		want, _ := src.Head("src", key)
		got, err := f.w.Region(dstID).Obj.Head("dst", key)
		if err != nil {
			if !deadKeys[key] {
				t.Fatalf("%s missing at dst without a DLQ record", key)
			}
			continue
		}
		obj, _ := f.w.Region(dstID).Obj.Get("dst", key)
		if obj.ETag != obj.Blob.ETag() {
			t.Fatalf("%s internally inconsistent at dst", key)
		}
		if got.ETag != want.ETag && !deadKeys[key] {
			t.Fatalf("%s stale at dst without a DLQ record", key)
		}
	}
}
