package engine

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cloud"
	"repro/internal/faas"
	"repro/internal/kvstore"
)

// Crash-recovery layer: durable task checkpoints, lease-stamped part-pool
// claims with epoch fencing, and orphaned-MPU garbage collection. The
// paper's §6 posture is "stateless functions + at-least-once retries",
// which re-runs a crashed task from scratch; the records here make the
// retry *incremental* instead — it re-attaches to the existing multipart
// upload, reclaims the crashed instances' part claims, and redoes only
// the parts whose delivery was never counted.

const (
	// poolTable holds one record per distributed task: the claim cursor,
	// the completed-part bitmap, the reclaimed-part free list, the fencing
	// epoch, and one lease attribute per outstanding claim.
	poolTable = "areplica-tasks"
	// poolLease is how long a part claim belongs to the instance that took
	// it; past it, a janitor pass may return the part to the pool.
	poolLease = 2 * time.Minute
	// recordTTL self-expires recovery records a crash orphaned beyond
	// reach (e.g. a task whose key never sees another event), DynamoDB-TTL
	// style; live tasks finish orders of magnitude sooner.
	recordTTL = 6 * time.Hour
)

// leaseAttr names the lease attribute of one part claim.
func leaseAttr(idx int64) string { return "lease-" + strconv.FormatInt(idx, 10) }

// encodeIdxs renders a part-index list as a flat attribute value.
func encodeIdxs(idxs []int64) string {
	if len(idxs) == 0 {
		return ""
	}
	parts := make([]string, len(idxs))
	for i, v := range idxs {
		parts[i] = strconv.FormatInt(v, 10)
	}
	return strings.Join(parts, ",")
}

// decodeIdxs parses encodeIdxs output; malformed entries are dropped.
func decodeIdxs(s string) []int64 {
	if s == "" {
		return nil
	}
	var out []int64
	for _, f := range strings.Split(s, ",") {
		if v, err := strconv.ParseInt(f, 10, 64); err == nil {
			out = append(out, v)
		}
	}
	return out
}

// pool is a handle on one distributed task's part-pool record. Every
// operation is a single atomic KV update (one metered write, like the
// counter increments it replaces), so the two-KV-accesses-per-part cost
// model of Algorithm 1 is unchanged. The handle carries the fencing epoch
// it was opened under: operations from an older epoch — a zombie
// instance whose claims were reclaimed — are rejected without effect.
type pool struct {
	kv    *kvstore.Store
	id    string
	total int64
	epoch int64
}

// newPool returns a handle for a fresh task at epoch 1 (create writes the
// record) or for re-attachment (attach bumps the record's epoch).
func newPool(kv *kvstore.Store, id string, total int64) *pool {
	return &pool{kv: kv, id: id, total: total, epoch: 1}
}

// create writes the task record: claim cursor, completion bitmap and
// fencing epoch (Algorithm 1's init_replication + create_part_pool).
func (p *pool) create(etag string) {
	p.kv.PutWithTTL(poolTable, p.id, kvstore.Item{
		"etag": etag, "total": p.total, "next": int64(0), "done": int64(0),
		"epoch": p.epoch, "bitmap": strings.Repeat("0", int(p.total)), "reclaimed": "",
	}, recordTTL)
}

// destroy retires the task record.
func (p *pool) destroy() { p.kv.Delete(poolTable, p.id) }

// claim takes up to b parts out of the pool for owner — reclaimed parts
// first, then fresh cursor positions — stamping each with a lease. It
// reports the parts remaining in the pool afterwards (for the claim-batch
// taper). A fenced claim (record gone, or reclaimed by a newer epoch)
// returns nothing.
func (p *pool) claim(b int64, owner string, now time.Time) (idxs []int64, remaining int64, fenced bool) {
	p.kv.Update(poolTable, p.id, func(cur kvstore.Item, exists bool) (kvstore.Item, bool) {
		if !exists {
			fenced = true
			return nil, false
		}
		if cur.Int("epoch") != p.epoch {
			fenced = true
			return cur, true
		}
		free := decodeIdxs(cur.Str("reclaimed"))
		for int64(len(idxs)) < b && len(free) > 0 {
			idxs = append(idxs, free[0])
			free = free[1:]
		}
		next, total := cur.Int("next"), cur.Int("total")
		for int64(len(idxs)) < b && next < total {
			idxs = append(idxs, next)
			next++
		}
		cur["next"] = next
		cur["reclaimed"] = encodeIdxs(free)
		lease := kvstore.Lease{Owner: owner, Epoch: p.epoch, Expires: now.Add(poolLease)}.Encode()
		for _, idx := range idxs {
			cur[leaseAttr(idx)] = lease
		}
		remaining = int64(len(free)) + total - next
		return cur, true
	})
	return idxs, remaining, fenced
}

// flush counts delivered parts: each still-unset bitmap bit flips and
// bumps the done counter; duplicate deliveries (hedges, zombies racing a
// reclaim) add nothing. closed reports that this update crossed the
// total — finish_replication falls to the caller. A stale-epoch flush is
// fenced: the zombie's parts were reclaimed and will be re-counted by
// their new owner, so counting them here would double-complete the pool.
func (p *pool) flush(idxs []int64) (done int64, closed, fenced bool) {
	p.kv.Update(poolTable, p.id, func(cur kvstore.Item, exists bool) (kvstore.Item, bool) {
		if !exists {
			fenced = true
			return nil, false
		}
		if cur.Int("epoch") != p.epoch {
			fenced = true
			return cur, true
		}
		bitmap := []byte(cur.Str("bitmap"))
		prev := cur.Int("done")
		var n int64
		for _, idx := range idxs {
			if idx >= 0 && idx < int64(len(bitmap)) && bitmap[idx] == '0' {
				bitmap[idx] = '1'
				n++
				delete(cur, leaseAttr(idx))
			}
		}
		done = prev + n
		cur["done"] = done
		cur["bitmap"] = string(bitmap)
		closed = done >= cur.Int("total") && prev < cur.Int("total")
		return cur, true
	})
	return done, closed, fenced
}

// attach re-opens the record for a resumed attempt: it bumps the fencing
// epoch (so every outstanding lease is stale and any surviving zombie is
// fenced), returns all claimed-but-uncounted parts to the pool, and
// reports the completion bitmap the resumed replicators start from.
func (p *pool) attach() (bitmap string, done, reclaimed int64, ok bool) {
	p.kv.Update(poolTable, p.id, func(cur kvstore.Item, exists bool) (kvstore.Item, bool) {
		if !exists {
			return nil, false
		}
		ok = true
		p.epoch = cur.Int("epoch") + 1
		cur["epoch"] = p.epoch
		bitmap = cur.Str("bitmap")
		done = cur.Int("done")
		wasFree := len(decodeIdxs(cur.Str("reclaimed")))
		next := min(cur.Int("next"), cur.Int("total"))
		var free []int64
		for idx := int64(0); idx < next && idx < int64(len(bitmap)); idx++ {
			if bitmap[idx] == '0' {
				free = append(free, idx)
			}
		}
		reclaimed = int64(len(free) - wasFree)
		cur["reclaimed"] = encodeIdxs(free)
		for k := range cur {
			if strings.HasPrefix(k, "lease-") {
				delete(cur, k)
			}
		}
		return cur, true
	})
	return bitmap, done, reclaimed, ok
}

// reap is the expiry-only janitor: claimed-but-uncounted parts whose
// lease lapsed (or belongs to an older epoch) return to the pool without
// disturbing live claims — unlike attach, which reclaims everything. It
// reports how many parts it returned.
func (p *pool) reap(now time.Time) (reclaimed int64) {
	p.kv.Update(poolTable, p.id, func(cur kvstore.Item, exists bool) (kvstore.Item, bool) {
		if !exists {
			return nil, false
		}
		bitmap := cur.Str("bitmap")
		free := decodeIdxs(cur.Str("reclaimed"))
		inPool := make(map[int64]bool, len(free))
		for _, idx := range free {
			inPool[idx] = true
		}
		next := min(cur.Int("next"), cur.Int("total"))
		for idx := int64(0); idx < next && idx < int64(len(bitmap)); idx++ {
			if bitmap[idx] != '0' || inPool[idx] {
				continue
			}
			l := kvstore.ParseLease(cur.Str(leaseAttr(idx)))
			if l.Epoch != cur.Int("epoch") || l.Expired(now) {
				free = append(free, idx)
				reclaimed++
				delete(cur, leaseAttr(idx))
			}
		}
		sort.Slice(free, func(i, j int) bool { return free[i] < free[j] })
		cur["reclaimed"] = encodeIdxs(free)
		return cur, true
	})
	return reclaimed
}

// taskCkpt is the durable progress record of one distributed task, written
// once per task (after create-MPU) in the source region's KV store and
// keyed by object key. The per-part progress itself lives in the pool
// record; the checkpoint is the pointer that lets a retry find it.
type taskCkpt struct {
	ETag     string
	MPU      string
	Task     string
	Loc      cloud.RegionID
	PartSize int64
	Parts    int64
}

// ckptStore reads and writes task checkpoints for one rule.
type ckptStore struct {
	kv    *kvstore.Store
	table string
}

func newCkptStore(kv *kvstore.Store, ruleID string) *ckptStore {
	return &ckptStore{kv: kv, table: "areplica-ckpt:" + ruleID}
}

func (c *ckptStore) write(key string, ck taskCkpt) {
	c.kv.PutWithTTL(c.table, key, kvstore.Item{
		"etag": ck.ETag, "mpu": ck.MPU, "task": ck.Task, "loc": string(ck.Loc),
		"part_size": ck.PartSize, "parts": ck.Parts,
	}, recordTTL)
}

func (c *ckptStore) read(key string) (taskCkpt, bool) {
	it, ok := c.kv.Get(c.table, key)
	if !ok {
		return taskCkpt{}, false
	}
	return taskCkpt{
		ETag: it.Str("etag"), MPU: it.Str("mpu"), Task: it.Str("task"),
		Loc: cloud.RegionID(it.Str("loc")), PartSize: it.Int("part_size"), Parts: it.Int("parts"),
	}, true
}

func (c *ckptStore) clear(key string) { c.kv.Delete(c.table, key) }

// ckptRef is the engine's in-memory pointer to a key's recovery records,
// so abandonment paths (DLQ park, validation abort, success via another
// path) can release them without a KV read.
type ckptRef struct {
	mpu  string
	task string
	loc  cloud.RegionID
}

// cacheCkpt remembers a key's recovery records.
func (e *Engine) cacheCkpt(key string, ref ckptRef) {
	e.mu.Lock()
	e.ckpts[key] = ref
	e.mu.Unlock()
}

// dropCkptRecords deletes a key's pool record and checkpoint (and the
// in-memory pointer); the MPU's fate is the caller's decision.
func (e *Engine) dropCkptRecords(key string, task string, loc cloud.RegionID) {
	e.mu.Lock()
	delete(e.ckpts, key)
	e.mu.Unlock()
	e.W.Region(loc).KV.Delete(poolTable, task)
	e.ckpt.clear(key)
}

// releaseTask scraps whatever recoverable state a key's last distributed
// attempt left behind: the in-progress MPU (a metered abort), the pool
// record and the checkpoint. Call it when the task can never resume —
// final DLQ park, or success via a path that didn't consume the
// checkpoint (single-function degrade, dedupe, changelog, delete). A key
// with no cached records is a no-op.
func (e *Engine) releaseTask(key string) {
	e.mu.Lock()
	ref, ok := e.ckpts[key]
	e.mu.Unlock()
	if !ok {
		return
	}
	// Abort before dropping records: aborting an already-gone upload
	// succeeds silently, and a transiently failed abort falls to GC.
	_ = e.W.Region(e.Rule.Dst).Obj.AbortMultipart(ref.mpu)
	e.mpusAborted.Inc()
	e.dropCkptRecords(key, ref.task, ref.loc)
}

// maybeCrash consults the armed chaos profile's crash point: when step is
// armed, the calling instance is killed on the spot — Alive turns false,
// and the handler's own boundary checks abandon the work exactly as a real
// instance disappearing would.
func (e *Engine) maybeCrash(ctx *faas.Ctx, step string) {
	if e.W.Chaos.CrashPoint(step) {
		ctx.Kill()
		ctx.Span.Set("crash_point", step)
	}
}

// GCOrphanedMPUs enumerates the destination bucket's in-progress multipart
// uploads created by this rule and aborts the orphans: uploads older than
// grace with no checkpoint pointing at them, or whose task already
// converged via another path. Uploads a live checkpoint still references
// stay untouched — they are a resumed attempt's working state. Enumeration
// and aborts are metered requests, like the lifecycle rules real buckets
// run. It returns how many uploads were aborted and the part bytes
// reclaimed.
func (e *Engine) GCOrphanedMPUs(grace time.Duration) (aborted int, bytes int64) {
	dst := e.W.Region(e.Rule.Dst)
	now := e.W.Clock.Now()
	// Stream the upload listing page by page: GC decisions are per-upload,
	// so there is no reason to hold the whole enumeration in memory.
	sc := dst.Obj.ScanMultiparts(e.Rule.DstBucket)
	for in, ok := sc.Next(); ok; in, ok = sc.Next() {
		if in.Origin != e.origin() || now.Sub(in.Created) < grace {
			// Another rule's work, or young enough that its checkpoint may
			// not be written yet (the create-MPU → checkpoint window).
			continue
		}
		if ck, ok := e.ckpt.read(in.Key); ok && ck.MPU == in.ID {
			cur, err := dst.Obj.Head(e.Rule.DstBucket, in.Key)
			if err != nil || cur.ETag != ck.ETag {
				continue // resumable: the next attempt re-attaches here
			}
			// The destination already holds the checkpointed version: the
			// task completed via another path and its cleanup was lost.
			e.dropCkptRecords(in.Key, ck.Task, ck.Loc)
		}
		if err := dst.Obj.AbortMultipart(in.ID); err != nil {
			continue // transient; the next cadence retries
		}
		aborted++
		bytes += in.Bytes
		e.gcMPUs.Inc()
		e.gcBytes.Add(in.Bytes)
	}
	return aborted, bytes
}
