package engine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/objstore"
)

// Wall-clock benchmarks for the distributed data plane: virtual time is
// free, so these measure the simulator's own CPU and allocation cost per
// replicated object — the goroutine churn of the double-buffered lanes,
// the part-ledger bookkeeping, and the span traffic they emit.

func benchDistributed(b *testing.B, mutate func(*Rule)) {
	f := newFixture(b, func(r *Rule) {
		r.ForceN = 16
		r.ForceLoc = srcID
		if mutate != nil {
			mutate(r)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.put(b, fmt.Sprintf("obj-%d", i), 128<<20, uint64(i)+1)
		f.w.Clock.Quiesce()
	}
}

func BenchmarkDistributedPipelined(b *testing.B) {
	benchDistributed(b, nil)
}

func BenchmarkDistributedSerialBaseline(b *testing.B) {
	benchDistributed(b, func(r *Rule) {
		r.DisableDoubleBuffer = true
		r.ClaimBatch = 1
		r.HedgeBudget = -1
		r.DisableAdaptiveParts = true
	})
}

// benchTrackerWatermarks measures the lag-watermark sampling path with a
// large standing backlog: OldestPending walks only each shard's heap top
// (pruning resolved entries lazily), so sampling must stay flat as the
// pending set grows — the 10k vs 100k pair exposes any rescan.
func benchTrackerWatermarks(b *testing.B, pending int) {
	tr := NewTracker()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < pending; i++ {
		tr.OnSource(objstore.Event{
			Type: objstore.EventPut,
			Key:  fmt.Sprintf("k-%07d", i),
			Seq:  1,
			Size: 1,
			Time: base.Add(time.Duration(i) * time.Millisecond),
		})
	}
	now := base.Add(time.Duration(pending)*time.Millisecond + time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SampleWatermarks(now)
		tr.OverdueCount(now, 30*time.Second)
	}
}

func BenchmarkTrackerWatermarksPending10k(b *testing.B)  { benchTrackerWatermarks(b, 10_000) }
func BenchmarkTrackerWatermarksPending100k(b *testing.B) { benchTrackerWatermarks(b, 100_000) }
