package engine

import (
	"fmt"
	"testing"
)

// Wall-clock benchmarks for the distributed data plane: virtual time is
// free, so these measure the simulator's own CPU and allocation cost per
// replicated object — the goroutine churn of the double-buffered lanes,
// the part-ledger bookkeeping, and the span traffic they emit.

func benchDistributed(b *testing.B, mutate func(*Rule)) {
	f := newFixture(b, func(r *Rule) {
		r.ForceN = 16
		r.ForceLoc = srcID
		if mutate != nil {
			mutate(r)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.put(b, fmt.Sprintf("obj-%d", i), 128<<20, uint64(i)+1)
		f.w.Clock.Quiesce()
	}
}

func BenchmarkDistributedPipelined(b *testing.B) {
	benchDistributed(b, nil)
}

func BenchmarkDistributedSerialBaseline(b *testing.B) {
	benchDistributed(b, func(r *Rule) {
		r.DisableDoubleBuffer = true
		r.ClaimBatch = 1
		r.HedgeBudget = -1
		r.DisableAdaptiveParts = true
	})
}
