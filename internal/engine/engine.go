// Package engine implements AReplica's replication engine (§5.1-5.2): the
// serverless workflow of notification → orchestrator → replicator
// functions, with decentralized part-granularity scheduling (Algorithm 1),
// the object-granularity replication lock (Algorithm 2), and optimistic
// validation with ETags. Slow instances naturally replicate fewer parts
// because every part is claimed from a shared pool in the location
// region's KV store — two KV accesses per part, as the paper costs it.
package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cloud"
	"repro/internal/faas"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/planner"
	"repro/internal/retry"
	"repro/internal/simclock"
	"repro/internal/simrand"
	"repro/internal/telemetry"
	"repro/internal/world"
)

// SchedulingMode selects how data parts are distributed to replicators.
type SchedulingMode int

// Scheduling modes.
const (
	// PartPool is decentralized part-granularity scheduling: replicators
	// claim parts from a shared pool as they become available (Algorithm 1).
	PartPool SchedulingMode = iota
	// FairDispatch statically assigns each replicator an equal contiguous
	// range of parts, the strawman of Figure 12 used in the Figure 17
	// ablation.
	FairDispatch
)

// OriginPrefix tags destination writes made by any AReplica engine. Events
// carrying it are never re-replicated, which breaks the ping-pong loop of
// bidirectional (active-active) rule pairs, mirroring how S3 replication
// skips replica-created objects.
const OriginPrefix = "areplica/"

func (m SchedulingMode) String() string {
	if m == FairDispatch {
		return "fair"
	}
	return "part-pool"
}

// Rule configures replication of one bucket pair.
type Rule struct {
	Src, Dst             cloud.RegionID
	SrcBucket, DstBucket string

	// SLO is the replication-delay objective measured from the source PUT;
	// zero requests the fastest plan for every object.
	SLO time.Duration
	// Percentile is the model percentile plans must satisfy (default 0.99).
	Percentile float64
	// PartSize is the distributed-replication part size (default 8 MB).
	// With adaptive part sizing enabled the planner overrides it per
	// object; it remains the fallback for unprofiled paths, ForceN with
	// adaptive sizing off, and the single-function chunk loop.
	PartSize int64
	// Scheduling selects PartPool (default) or FairDispatch.
	Scheduling SchedulingMode

	// DisableDoubleBuffer turns off the pipelined data plane: each
	// replicator falls back to serializing part i's download and upload
	// instead of overlapping part i+1's download with part i's upload.
	DisableDoubleBuffer bool
	// ClaimBatch is how many parts a replicator claims (and acknowledges)
	// per part-pool KV increment. 0 takes planner.DefaultClaimBatch; 1
	// restores the per-part claims of the unbatched data plane.
	ClaimBatch int
	// HedgeBudget bounds how many in-flight parts an idle replicator may
	// speculatively duplicate once the pool is exhausted (idempotent
	// part uploads make duplicates safe). 0 takes the default of 4; a
	// negative value disables hedging. FairDispatch never hedges.
	HedgeBudget int
	// DisableAdaptiveParts pins distributed transfers to PartSize
	// instead of letting the planner pick a per-object part size.
	DisableAdaptiveParts bool
	// MaxRetries bounds optimistic-validation retries before an event goes
	// to the dead-letter queue (default 3). It seeds Retry.MaxAttempts
	// (attempts = MaxRetries + 1) when Retry is unset.
	MaxRetries int

	// Retry is the task-level retry policy: attempts, exponential backoff
	// and jitter between them, all consuming virtual time. Unset fields
	// fill from retry.TaskDefault (with MaxAttempts from MaxRetries).
	Retry retry.Policy
	// RequestRetry is the per-request budget a cloud SDK spends on one API
	// call before surfacing the error (default retry.RequestDefault).
	RequestRetry retry.Policy
	// TaskTimeout, when positive, is a deadline propagated through one
	// event's whole replication: no new attempt or request retry starts
	// past it. Zero means no deadline.
	TaskTimeout time.Duration

	// BreakerThreshold is the consecutive infrastructure failures of the
	// distributed path that trip the per-destination circuit breaker
	// (default 3); while open, plans degrade to the single-function path.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before a
	// half-open probe (default 1 minute).
	BreakerCooldown time.Duration

	// RedriveMax caps automatic DLQ redrives per event (default 2; -1
	// disables automatic redrive); an event re-enters the pipeline
	// RedriveDelay after dead-lettering until the cap, then parks in the
	// DLQ for manual RedriveDLQ.
	RedriveMax int
	// RedriveDelay is the wait before an automatic redrive (default 30s).
	RedriveDelay time.Duration

	// LockLease bounds how long a crashed orchestrator can wedge a key's
	// replication lock (default 15 minutes); past it the KV TTL frees the
	// lock and the next redrive proceeds. Release is fenced by holder
	// token, so an expired holder's late release is a no-op.
	LockLease time.Duration

	// KeyPrefix, when non-empty, scopes the rule to keys with the prefix
	// (as in S3 replication rule filters); other keys are ignored.
	KeyPrefix string

	// AcceptOrigins lists replica-write origin tags (see OriginFor) whose
	// events this rule treats as source writes. Chained topologies
	// (A→B→C) set the B→C rule's AcceptOrigins to the A→B rule's origin,
	// so B's applied writes feed C without a notification loop: every
	// other engine-originated event — the rule's own writes included — is
	// still skipped, and the destination-ETag dedupe terminates any
	// residual cycle a mis-declared topology could create.
	AcceptOrigins []string

	// ForceN and ForceLoc, when set, bypass the planner and pin the
	// parallelism and execution region. Ablation experiments (Figures 8,
	// 17, 18-19) use them to hold the strategy fixed.
	ForceN   int
	ForceLoc cloud.RegionID
}

// WithDefaults fills unset fields with the paper's defaults.
func (r Rule) WithDefaults() Rule {
	if r.Percentile <= 0 || r.Percentile >= 1 {
		r.Percentile = 0.99
	}
	if r.PartSize <= 0 {
		r.PartSize = model.DefaultChunk
	}
	if r.MaxRetries <= 0 {
		r.MaxRetries = 3
	}
	def := retry.TaskDefault()
	def.MaxAttempts = r.MaxRetries + 1
	r.Retry = r.Retry.Merge(def)
	r.RequestRetry = r.RequestRetry.Merge(retry.RequestDefault())
	if r.BreakerThreshold <= 0 {
		r.BreakerThreshold = 3
	}
	if r.BreakerCooldown <= 0 {
		r.BreakerCooldown = time.Minute
	}
	if r.RedriveMax < 0 {
		r.RedriveMax = 0
	} else if r.RedriveMax == 0 {
		r.RedriveMax = 2
	}
	if r.RedriveDelay <= 0 {
		r.RedriveDelay = 30 * time.Second
	}
	if r.ClaimBatch <= 0 {
		r.ClaimBatch = planner.DefaultClaimBatch
	}
	// A negative HedgeBudget (disabled) is kept as-is so WithDefaults is
	// idempotent: mapping it to 0 would turn into the default of 4 on a
	// second application.
	if r.HedgeBudget == 0 {
		r.HedgeBudget = 4
	}
	if r.LockLease <= 0 {
		r.LockLease = 15 * time.Minute
	}
	return r
}

// InstanceStat records one replicator instance's contribution to a
// distributed task (Figure 17's per-instance data).
type InstanceStat struct {
	ID     string
	Chunks int
	Busy   time.Duration
}

// TaskResult summarizes one finished replication task.
type TaskResult struct {
	Key       string
	ETag      string
	Size      int64
	Plan      planner.Plan
	Start     time.Time // orchestration start (lock held)
	End       time.Time // destination object retrievable
	OK        bool
	Changelog bool   // satisfied by changelog propagation, no data moved
	Reason    string // failure reason when OK is false
	Retries   int
	Instances []InstanceStat
}

// ExecSeconds is the measured replication time T_rep of the task.
func (t TaskResult) ExecSeconds() float64 { return t.End.Sub(t.Start).Seconds() }

// Engine replicates objects for one Rule on a simulated world.
type Engine struct {
	W       *world.World
	Planner *planner.Planner
	Rule    Rule
	Tracker *Tracker

	// TryChangelog, when set, is consulted before planning a full
	// replication; returning true means the version was propagated via its
	// changelog (§5.4) and no data transfer is needed. sp is the attempt's
	// "changelog" span (nil when tracing is off) for child annotations.
	TryChangelog func(sp *telemetry.Span, key, etag string) bool
	// OnTaskDone, when set, observes every finished task (the logger hooks
	// in here).
	OnTaskDone func(TaskResult)

	lock    *replLock
	ruleID  string
	taskSeq atomic.Int64
	breaker *breaker
	ckpt    *ckptStore
	// dispatchGate, when set (SetDispatchGate, before traffic), admits
	// notification dispatches through the fleet scheduler.
	dispatchGate func(ev objstore.Event, run func(done func()))

	// Instruments dual-write: the unlabelled aggregate keeps its
	// historical name for existing readers, while the {rule,dest}-labelled
	// family child gives the fleet-level per-rule breakdown.
	tasksOK         telemetry.MirrorCounter
	tasksFailed     telemetry.MirrorCounter
	tasksChangelog  telemetry.MirrorCounter
	tasksDLQ        telemetry.MirrorCounter
	tasksDeduped    telemetry.MirrorCounter
	eventsDeduped   telemetry.MirrorCounter
	retries         telemetry.MirrorCounter
	partsHedged     telemetry.MirrorCounter
	breakerDegraded telemetry.MirrorCounter
	dlqRedriven     telemetry.MirrorCounter
	resumedTasks    telemetry.MirrorCounter
	partsResumed    telemetry.MirrorCounter
	partsReclaimed  telemetry.MirrorCounter
	partsFenced     telemetry.MirrorCounter
	mpusAborted     telemetry.MirrorCounter
	locksRecovered  telemetry.MirrorCounter
	gcMPUs          telemetry.MirrorCounter
	gcBytes         telemetry.MirrorCounter
	dlqDepth        telemetry.MirrorGauge
	taskHist        telemetry.MirrorHistogram
	lagHist         *telemetry.Histogram // per-destination lag family child
	dims            []telemetry.Label    // {rule,dest}, reused on exemplars

	mu       sync.Mutex
	dlq      []DLQEntry
	redrives map[string]int     // key@seq -> automatic redrives consumed
	traceSeq map[string]int     // per-version dispatch count, for trace IDs
	ckpts    map[string]ckptRef // key -> live recovery records (MPU, pool)
}

// DLQEntry is one event that exhausted its retries and automatic
// redrives.
type DLQEntry struct {
	Event    objstore.Event
	Redrives int       // automatic redrives consumed before parking here
	At       time.Time // when the event was finally dead-lettered
}

// New returns an Engine for rule. The replication lock lives in the source
// region's KV store.
func New(w *world.World, pl *planner.Planner, rule Rule) *Engine {
	rule = rule.WithDefaults()
	ruleID := strings.TrimPrefix(OriginFor(rule.Src, rule.SrcBucket, rule.Dst, rule.DstBucket), OriginPrefix)
	dims := []telemetry.Label{
		telemetry.L("rule", ruleID),
		telemetry.L("dest", string(rule.Dst)),
	}
	m := w.Metrics
	counter := func(name string) telemetry.MirrorCounter {
		return m.CounterVec(name).Mirror(m.Counter(name), dims...)
	}
	e := &Engine{
		W:        w,
		Planner:  pl,
		Rule:     rule,
		Tracker:  NewTracker(),
		ruleID:   ruleID,
		lock:     newReplLock(w.Region(rule.Src).KV, ruleID, rule.LockLease, w.Clock.Now),
		breaker:  newBreaker(w.Clock, rule.BreakerThreshold, rule.BreakerCooldown, w.Metrics, dims...),
		ckpt:     newCkptStore(w.Region(rule.Src).KV, ruleID),
		redrives: make(map[string]int),
		traceSeq: make(map[string]int),
		ckpts:    make(map[string]ckptRef),

		tasksOK:         counter("engine.tasks.ok"),
		tasksFailed:     counter("engine.tasks.failed"),
		tasksChangelog:  counter("engine.tasks.changelog"),
		tasksDLQ:        counter("engine.tasks.dlq"),
		tasksDeduped:    counter("engine.tasks.deduped"),
		eventsDeduped:   counter("engine.events.deduped"),
		retries:         counter("engine.retries"),
		partsHedged:     counter("engine.parts.hedged"),
		breakerDegraded: counter("engine.breaker.degraded"),
		dlqRedriven:     counter("engine.dlq.redriven"),
		resumedTasks:    counter("engine.recovery.resumed"),
		partsResumed:    counter("engine.recovery.parts_resumed"),
		partsReclaimed:  counter("engine.recovery.parts_reclaimed"),
		partsFenced:     counter("engine.recovery.parts_fenced"),
		mpusAborted:     counter("engine.recovery.mpus_aborted"),
		locksRecovered:  counter("engine.recovery.locks_recovered"),
		gcMPUs:          counter("engine.gc.mpus_aborted"),
		gcBytes:         counter("engine.gc.bytes_reclaimed"),
		dlqDepth:        m.GaugeVec("engine.dlq.depth").Mirror(m.Gauge("engine.dlq.depth"), dims...),
		taskHist:        m.HistogramVec("engine.task.seconds").Mirror(m.Histogram("engine.task.seconds"), dims...),
		lagHist:         m.HistogramVec("engine.lag.seconds").With(dims...),
		dims:            dims,
	}
	e.Tracker.SetTelemetry(m.Histogram("engine.delay.seconds"))
	e.Tracker.SetWatermarks(
		e.lagHist,
		m.GaugeVec("engine.lag.backlog").Mirror(m.Gauge("engine.lag.backlog"), dims...),
		m.GaugeVec("engine.lag.oldest_age_ms").With(dims...),
	)
	return e
}

// LagHistogram returns the per-destination replication-lag histogram
// child (the engine.lag.seconds{rule,dest} family member), the streaming
// p50/p99 surface behind the health table.
func (e *Engine) LagHistogram() *telemetry.Histogram { return e.lagHist }

// DLQ returns the events that exhausted their retries and redrives.
func (e *Engine) DLQ() []objstore.Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]objstore.Event, len(e.dlq))
	for i, d := range e.dlq {
		out[i] = d.Event
	}
	return out
}

// DLQEntries returns the dead-letter queue with redrive accounting.
func (e *Engine) DLQEntries() []DLQEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]DLQEntry(nil), e.dlq...)
}

// RedriveDLQ drains the dead-letter queue and re-dispatches every parked
// event with a fresh automatic-redrive budget, returning how many it
// re-enqueued — the operator's "redrive" button on a real queue.
func (e *Engine) RedriveDLQ() int {
	e.mu.Lock()
	parked := e.dlq
	e.dlq = nil
	for _, d := range parked {
		delete(e.redrives, eventID(d.Event))
	}
	e.dlqDepth.Set(0)
	e.mu.Unlock()
	for _, d := range parked {
		e.dlqRedriven.Inc()
		e.dispatch(d.Event, "redrive")
	}
	return len(parked)
}

// eventID identifies one source version for redrive accounting.
func eventID(ev objstore.Event) string {
	return fmt.Sprintf("%s@%d", ev.Key, ev.Seq)
}

// RepairOutcome classifies what Repair did with one divergent key.
type RepairOutcome string

// Repair outcomes.
const (
	// RepairDispatched: a synthetic event entered the normal replication path.
	RepairDispatched RepairOutcome = "dispatched"
	// RepairRedriven: the key was parked in the DLQ and its entries were
	// redriven instead of enqueueing a duplicate task.
	RepairRedriven RepairOutcome = "redriven"
	// RepairInflight: a task for this version is already pending, so the
	// repair deduped against it.
	RepairInflight RepairOutcome = "inflight"
)

// Repair enqueues one anti-entropy repair through the normal replication
// path — retries, breaker and DLQ included — deduplicating against work
// already in flight. A key parked in the DLQ is redriven with a fresh
// automatic-redrive budget rather than double-enqueued: the parked task's
// Tracker entry is still pending, so a fresh event for the same version
// would be deduped forever. Synthetic orphan deletes carry no source
// sequence and bypass the tracker; destination deletes are idempotent.
func (e *Engine) Repair(ev objstore.Event) RepairOutcome {
	if n := e.redriveKey(ev.Key); n > 0 {
		return RepairRedriven
	}
	if ev.Type != objstore.EventDelete && !e.Tracker.OnSource(ev) {
		if e.Tracker.PendingFor(ev.Key) {
			// A task for this key is genuinely in flight; let it finish and
			// re-check next round.
			e.eventsDeduped.Inc()
			return RepairInflight
		}
		// The version is below the tracker's resolved high-water mark but
		// the destination diverged anyway (replica loss or overwrite after
		// a successful replication): force re-replication past the dedupe.
	}
	e.dispatch(ev, "repair")
	return RepairDispatched
}

// redriveKey drains the DLQ entries parked for one key and re-dispatches
// them — the scrubber's targeted version of RedriveDLQ.
func (e *Engine) redriveKey(key string) int {
	e.mu.Lock()
	var parked, kept []DLQEntry
	for _, d := range e.dlq {
		if d.Event.Key == key {
			parked = append(parked, d)
			delete(e.redrives, eventID(d.Event))
		} else {
			kept = append(kept, d)
		}
	}
	e.dlq = kept
	e.dlqDepth.Set(int64(len(e.dlq)))
	e.mu.Unlock()
	for _, d := range parked {
		e.dlqRedriven.Inc()
		e.dispatch(d.Event, "redrive")
	}
	return len(parked)
}

// deadLetter handles an event that exhausted its task attempts: it is
// re-enqueued after RedriveDelay while the automatic redrive budget
// lasts (the platform retry of an async invocation), then parked in the
// DLQ. Capped re-enqueue keeps poison events from looping forever.
// sp is the task span of the attempt that exhausted its retries; it is
// stamped with a dlq attr so the trace retention policy keeps the tree.
func (e *Engine) deadLetter(sp *telemetry.Span, ev objstore.Event) {
	sp.Set("dlq", true)
	id := eventID(ev)
	e.mu.Lock()
	n := e.redrives[id]
	if n < e.Rule.RedriveMax {
		e.redrives[id] = n + 1
		e.mu.Unlock()
		e.dlqRedriven.Inc()
		e.W.Clock.Delay(e.Rule.RedriveDelay, func() { e.dispatch(ev, "redrive") })
		return
	}
	delete(e.redrives, id)
	e.dlq = append(e.dlq, DLQEntry{Event: ev, Redrives: n, At: e.W.Clock.Now()})
	e.dlqDepth.Set(int64(len(e.dlq)))
	e.mu.Unlock()
	e.tasksDLQ.Inc()
	// Final park: no retry will resume this task, so its in-progress MPU
	// and recovery records must not linger until GC.
	e.releaseTask(ev.Key)
}

// HandleEvent is the notification entry point: it registers the event for
// delay measurement and dispatches an orchestrator invocation. Wire it to
// the source bucket via objstore.Subscribe (or through the batcher).
// Events outside the rule's key prefix, events originated by a
// replication engine (replica writes in an active-active pair), and
// duplicate deliveries of an already-seen (key, version) — bucket
// notifications are at-least-once — are ignored.
func (e *Engine) HandleEvent(ev objstore.Event) {
	if !e.Matches(ev.Key) || !e.AcceptsOrigin(ev.Origin) {
		return
	}
	if !e.Tracker.OnSource(ev) {
		e.eventsDeduped.Inc()
		return
	}
	if gate := e.dispatchGate; gate != nil {
		// The event is registered (queue wait counts as replication lag);
		// the fleet scheduler decides when the orchestration launches.
		gate(ev, func(done func()) { e.dispatchDone(ev, "", done) })
		return
	}
	e.Dispatch(ev)
}

// AcceptsOrigin reports whether an event origin counts as a source write
// for this rule: anything not engine-originated, plus the explicitly
// whitelisted upstream origins of a chained topology. The rule's own
// origin is never accepted.
func (e *Engine) AcceptsOrigin(origin string) bool {
	if !strings.HasPrefix(origin, OriginPrefix) {
		return true
	}
	if origin == e.origin() {
		return false
	}
	for _, ok := range e.Rule.AcceptOrigins {
		if origin == ok {
			return true
		}
	}
	return false
}

// SetDispatchGate routes notification-driven dispatches through an
// external admission gate (the fleet scheduler): the gate receives each
// deduplicated event and a run closure; run launches the orchestration
// and its done callback (may be nil) fires when the orchestrator
// invocation returns. Retries, redrives, anti-entropy repairs and lock
// recovery bypass the gate — they are already paced by their own policies.
// Install before traffic subscribes; the engine reads the gate unlocked.
func (e *Engine) SetDispatchGate(gate func(ev objstore.Event, run func(done func()))) {
	e.dispatchGate = gate
}

// origin returns the tag this engine stamps on its destination writes.
func (e *Engine) origin() string { return OriginPrefix + e.ruleID }

// OriginFor returns the origin tag an engine replicating src/srcBucket →
// dst/dstBucket stamps on destination writes. Chained fleet topologies
// whitelist it via Rule.AcceptOrigins.
func OriginFor(src cloud.RegionID, srcBucket string, dst cloud.RegionID, dstBucket string) string {
	return OriginPrefix + fmt.Sprintf("%s/%s->%s/%s", src, srcBucket, dst, dstBucket)
}

// RuleID returns the engine's stable rule identifier
// ("src/bucket->dst/bucket"), used for trace IDs and per-rule KV tables.
func (e *Engine) RuleID() string { return e.ruleID }

// Matches reports whether a key falls under this rule's prefix filter.
func (e *Engine) Matches(key string) bool {
	return e.Rule.KeyPrefix == "" || strings.HasPrefix(key, e.Rule.KeyPrefix)
}

// Backfill walks the source bucket and dispatches replication for every
// object that is missing or stale at the destination — the initial sync a
// freshly deployed rule needs so that notifications alone keep the pair
// converged afterwards. It returns how many objects were scheduled.
// Delays for backfilled objects are measured from the backfill itself.
func (e *Engine) Backfill() (int, error) {
	src := e.W.Region(e.Rule.Src)
	dst := e.W.Region(e.Rule.Dst)
	metas, err := src.Obj.List(e.Rule.SrcBucket)
	if err != nil {
		return 0, fmt.Errorf("engine: backfill list: %w", err)
	}
	scheduled := 0
	for _, m := range metas {
		if !e.Matches(m.Key) {
			continue
		}
		if cur, err := dst.Obj.Head(e.Rule.DstBucket, m.Key); err == nil && cur.ETag == m.ETag {
			continue // already converged
		}
		ev := objstore.Event{
			Type: objstore.EventPut, Bucket: e.Rule.SrcBucket, Key: m.Key,
			Size: m.Size, ETag: m.ETag, Seq: m.Seq, Time: e.W.Clock.Now(),
		}
		if !e.Tracker.OnSource(ev) {
			e.eventsDeduped.Inc()
			continue
		}
		e.Dispatch(ev)
		scheduled++
	}
	return scheduled, nil
}

// Dispatch invokes the orchestrator function for ev without registering it
// for delay measurement (the batcher registers events itself and delays
// dispatch).
func (e *Engine) Dispatch(ev objstore.Event) {
	e.dispatch(ev, "")
}

// dispatch is Dispatch with a cause tag for re-dispatched work: "redrive"
// (DLQ), "repair" (anti-entropy) or "lock-recovery" (orphaned-lock
// probe). The cause lands on the task's root span, where the trace
// retention policy reads it as an anomaly signal — a redriven or repaired
// task is always worth keeping.
func (e *Engine) dispatch(ev objstore.Event, cause string) {
	e.dispatchDone(ev, cause, nil)
}

// dispatchDone is dispatch with a completion callback for gated
// dispatches: done (may be nil) fires when the orchestrator invocation
// returns — crashed instances included, since the handler itself returns
// normally — so the fleet scheduler can free the lane slot.
func (e *Engine) dispatchDone(ev objstore.Event, cause string, done func()) {
	src := e.W.Region(e.Rule.Src)
	root := e.startTaskTrace(ev)
	if cause != "" {
		root.Set("cause", cause)
	}
	// The notification span covers source-operation completion → dispatch
	// (the platform's delivery delay T_n plus any batching hold).
	root.ChildAt("notify", ev.Time).EndAt(e.W.Clock.Now())
	src.Fn.InvokeSpan(root, 1, func(ctx *faas.Ctx) {
		defer root.End()
		if done != nil {
			defer done()
		}
		e.orchestrate(ctx, ev)
	})
}

// startTaskTrace opens a root span for one dispatched event, anchored at
// the source operation's completion so notification delay is part of the
// waterfall. Trace IDs derive from the task's identity (rule, key,
// version) plus a per-version dispatch counter, so identical seeded runs
// export identical traces.
func (e *Engine) startTaskTrace(ev objstore.Event) *telemetry.Span {
	if !e.W.Tracer.Enabled() {
		return nil
	}
	id := fmt.Sprintf("%s %s@%d", e.ruleID, ev.Key, ev.Seq)
	e.mu.Lock()
	n := e.traceSeq[id]
	e.traceSeq[id]++
	e.mu.Unlock()
	if n > 0 {
		id = fmt.Sprintf("%s redispatch-%d", id, n)
	}
	return e.W.Tracer.StartTraceAt(id, "task", ev.Time).
		Set("key", ev.Key).Set("etag", ev.ETag).
		Set("size", ev.Size).Set("type", string(ev.Type))
}

// orchestrate runs inside the orchestrator function: acquire the object's
// replication lock, replicate (with retries), then release and chase any
// version that arrived while the lock was held.
func (e *Engine) orchestrate(ctx *faas.Ctx, ev objstore.Event) {
	lsp := ctx.Span.Child("kv:lock")
	token, acquired, wait := e.lock.acquire(ev.Key, ev.ETag, ev.Seq)
	lsp.Set("acquired", acquired)
	lsp.End()
	if !acquired {
		// Another orchestrator holds the lock; on release it observes our
		// version as pending and re-triggers. But a crashed holder never
		// releases — its lock (and the pending record with it) silently
		// leases out — so probe just past the lease expiry and re-dispatch
		// unless the key converged in the meantime.
		e.W.Clock.Delay(wait+time.Second, func() { e.recoverPending(ev) })
		return
	}
	replicatedSeq := e.replicateHeld(ctx, ev)
	if !ctx.Alive() {
		// The orchestrator crashed while holding the lock: a crashed
		// instance cannot run cleanup, so the lock stays taken until its
		// lease expires — which is exactly when the redrive retries the key.
		return
	}
	usp := ctx.Span.Child("kv:unlock")
	_, pendingSeq, retrigger := e.lock.release(ev.Key, token, replicatedSeq)
	usp.End()
	if !retrigger {
		return
	}
	// A newer version arrived while we held the lock (its orchestrator
	// lost the lock race and recorded itself as pending). Re-drive
	// replication for the current head.
	src := e.W.Region(e.Rule.Src)
	head, err := src.Obj.Head(e.Rule.SrcBucket, ev.Key)
	if errors.Is(err, objstore.ErrNoSuchKey) {
		// The newest pending operation was a DELETE whose orchestrator
		// already gave up on the lock; mirror it now. The synthetic event
		// carries the pending sequence so the tracker resolves the
		// original DELETE's delay record.
		e.Dispatch(objstore.Event{
			Type: objstore.EventDelete, Bucket: ev.Bucket, Key: ev.Key,
			Seq: pendingSeq, Time: e.W.Clock.Now(),
		})
		return
	}
	if err != nil || head.Seq <= replicatedSeq {
		return
	}
	e.Dispatch(objstore.Event{
		Type: objstore.EventPut, Bucket: ev.Bucket, Key: ev.Key,
		Size: head.Size, ETag: head.ETag, Seq: head.Seq, Time: head.Created,
	})
}

// recoverPending fires after a contended lock's lease has expired: if the
// holder released normally it re-triggered the pending version and the key
// has (or is about to) converge, so the probe is a no-op; if the holder
// crashed, the pending record died with its leased-out lock and this is
// the only path that still knows about the version. Re-dispatching is
// idempotent — the dedupe Head resolves an already-replicated version, and
// a still-held lock just records pending again and arms a fresh probe.
func (e *Engine) recoverPending(ev objstore.Event) {
	src := e.W.Region(e.Rule.Src)
	head, err := src.Obj.Head(e.Rule.SrcBucket, ev.Key)
	if err != nil || head.Seq > ev.Seq {
		// Key deleted or superseded: the newer operation's own
		// orchestration (and its watchdog, if contended) covers the key.
		return
	}
	dst := e.W.Region(e.Rule.Dst)
	if cur, err := dst.Obj.Head(e.Rule.DstBucket, ev.Key); err == nil && cur.ETag == head.ETag {
		return // converged while we waited
	}
	e.locksRecovered.Inc()
	e.dispatch(ev, "lock-recovery")
}

// request runs one cloud API call under the rule's per-request retry
// budget — the quick, tightly-bounded retries of a real SDK. Only
// ErrUnavailable-class transient faults are retried; anything else
// (missing keys, vanished uploads, failed preconditions) surfaces
// immediately. Each backoff wait becomes a "req-backoff" child of sp so
// request-level retry stalls are attributable on the critical path.
func (e *Engine) request(sp *telemetry.Span, rng *rand.Rand, deadline time.Time, fn func() error) error {
	clock := e.W.Clock
	onWait := func(retry int, wait time.Duration) {
		start := clock.Now()
		sp.ChildAt("req-backoff", start).
			Set(telemetry.CatAttr, string(telemetry.CatBackoff)).
			Set("n", int64(retry)).
			EndAt(start.Add(wait))
	}
	return retry.DoObserved(clock, rng, e.Rule.RequestRetry, deadline, onWait, func(int) error {
		err := fn()
		if err != nil && !errors.Is(err, objstore.ErrUnavailable) {
			return retry.Permanent(err)
		}
		return err
	})
}

// replicateHeld performs the replication while the lock is held and
// returns the sequence number of the version it made durable at the
// destination (0 on failure).
func (e *Engine) replicateHeld(ctx *faas.Ctx, ev objstore.Event) uint64 {
	src := e.W.Region(e.Rule.Src)
	dst := e.W.Region(e.Rule.Dst)
	clock := e.W.Clock
	rng := simrand.New("engine-retry", e.ruleID, ev.Key, fmt.Sprint(ev.Seq))
	var deadline time.Time
	if e.Rule.TaskTimeout > 0 {
		deadline = clock.Now().Add(e.Rule.TaskTimeout)
	}

	if ev.Type == objstore.EventDelete {
		dsp := ctx.Span.Child("dst-delete")
		err := e.request(dsp, rng, deadline, func() error {
			return dst.Obj.DeleteWithOrigin(e.Rule.DstBucket, ev.Key, e.origin())
		})
		dsp.End()
		if err != nil {
			e.deadLetter(ctx.Span, ev)
			return 0
		}
		// The key's newest version is a DELETE; any checkpointed upload of
		// an older version is now abandoned work.
		e.releaseTask(ev.Key)
		e.Tracker.ResolveSpan(ev.Key, ev.Seq, clock.Now(), ctx.Span)
		return ev.Seq
	}

	// Dedupe by ETag+version before doing any work: a duplicate
	// notification or a redrive racing an earlier completion finds the
	// destination already holding this exact version. Resolving without
	// writing is what keeps at-least-once delivery from ever producing a
	// duplicate final write. The destination's current ETag is also
	// remembered: under the per-key lock nothing else writes this key at
	// the destination, so any later attempt whose content matches it can
	// skip its write (see transferWhole and the head chase below) — that
	// closes the reordered-notification race where a stale event arrives
	// after its successor has already landed and would otherwise re-copy
	// the successor's content.
	var dstETag string
	if cur, err := dst.Obj.Head(e.Rule.DstBucket, ev.Key); err == nil {
		dstETag = cur.ETag
		if cur.ETag == ev.ETag && ev.ETag != "" {
			ctx.Span.Set("deduped", true)
			e.tasksDeduped.Inc()
			// A redrive after an after-complete-mpu crash lands here: the write
			// is durable, only the acknowledgment was lost. Scrap the recovery
			// records the crashed attempt left behind.
			e.releaseTask(ev.Key)
			e.Tracker.ResolveSpan(ev.Key, ev.Seq, clock.Now(), ctx.Span)
			return ev.Seq
		}
	}

	key := ev.Key
	etag, seq, size, evTime := ev.ETag, ev.Seq, ev.Size, ev.Time
	for attempt := 0; attempt < e.Rule.Retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			// Exponential backoff with seeded jitter, consuming virtual
			// time — instantaneous retries would understate convergence
			// time under faults and hammer a struggling destination.
			bsp := ctx.Span.Child("backoff").Set("n", int64(attempt))
			clock.Sleep(e.Rule.Retry.Backoff(attempt-1, rng))
			bsp.End()
			e.retries.Inc()
		}
		if !ctx.Alive() {
			// The orchestrator instance crashed; the DLQ redrive (the
			// platform's async-invocation retry) picks the event up again.
			break
		}
		if !deadline.IsZero() && clock.Now().After(deadline) {
			ctx.Span.Set("deadline_exceeded", true)
			break
		}
		start := clock.Now()
		att := ctx.Span.Child("attempt").Set("n", int64(attempt))
		if e.TryChangelog != nil {
			cl := att.Child("changelog")
			hit := e.TryChangelog(cl, key, etag)
			cl.Set("hit", hit)
			cl.End()
			if hit {
				att.End()
				end := clock.Now()
				e.releaseTask(key)
				e.Tracker.ResolveSpan(key, seq, end, ctx.Span)
				e.report(ctx.Span, TaskResult{Key: key, ETag: etag, Size: size, Start: start, End: end,
					OK: true, Changelog: true, Retries: attempt})
				return seq
			}
		}

		var plan planner.Plan
		if e.Rule.ForceN > 0 {
			loc := e.Rule.ForceLoc
			if loc == "" {
				loc = e.Rule.Src
			}
			plan = planner.Plan{N: e.Rule.ForceN, Loc: loc}
			if plan.N > 1 && !e.Rule.DisableAdaptiveParts {
				plan.PartSize = e.Planner.PartSizeFor(e.Rule.Src, e.Rule.Dst, loc, size, plan.N)
			}
		} else {
			var remaining time.Duration
			if e.Rule.SLO > 0 {
				remaining = e.Rule.SLO - clock.Since(evTime)
			}
			var err error
			plan, err = e.Planner.PlanWith(e.Rule.Src, e.Rule.Dst, size, remaining, e.Rule.Percentile, e.PlanOpts())
			if err != nil {
				att.Set("error", err.Error())
				att.End()
				break
			}
		}
		att.Set("plan_n", int64(plan.N)).Set("plan_loc", string(plan.Loc)).Set("plan_local", plan.Local)

		out := e.execute(ctx, att, key, etag, dstETag, size, plan)
		att.End()
		if out.ok {
			// The destination write is durable; what remains is local
			// acknowledgment (tracker resolution, lock release). A crash in
			// this window loses only the ack — the redrive finds the
			// destination already converged and resolves via the dedupe
			// path, never writing twice.
			e.maybeCrash(ctx, "before-ack")
			if !ctx.Alive() {
				break
			}
			// Single-function transfers may have replicated a *newer*
			// snapshot than the event's version (Figure 13's workflow);
			// resolve up to what actually landed.
			doneSeq := seq
			if out.seq > doneSeq {
				doneSeq = out.seq
			}
			e.releaseTask(key)
			e.Tracker.ResolveSpan(key, doneSeq, out.doneAt, ctx.Span)
			e.report(ctx.Span, TaskResult{Key: key, ETag: out.etag, Size: size, Plan: plan,
				Start: start, End: out.doneAt, OK: true, Retries: attempt, Instances: out.insts})
			return doneSeq
		}
		e.report(ctx.Span, TaskResult{Key: key, ETag: etag, Size: size, Plan: plan,
			Start: start, End: out.doneAt, OK: false, Reason: out.reason, Retries: attempt, Instances: out.insts})

		// Optimistic validation failed (the source version changed
		// mid-flight) or a request hit a transient fault. Chase the
		// current head and try again.
		var head objstore.Meta
		err := e.request(ctx.Span, rng, deadline, func() error {
			var herr error
			head, herr = src.Obj.Head(e.Rule.SrcBucket, key)
			return herr
		})
		switch {
		case errors.Is(err, objstore.ErrNoSuchKey), errors.Is(err, objstore.ErrNoSuchBucket):
			return 0 // deleted concurrently; the DELETE event converges us
		case err != nil:
			continue // transient fault: burn a retry, keep the same version
		}
		if head.ETag != "" && head.ETag == dstETag {
			// The chased head is the version the destination already held
			// when this task started — the event was stale and its
			// successor has landed. Writing it again would be a duplicate
			// final write; resolve up to the head instead.
			ctx.Span.Set("deduped", true)
			e.tasksDeduped.Inc()
			e.releaseTask(key)
			e.Tracker.ResolveSpan(key, head.Seq, clock.Now(), ctx.Span)
			return head.Seq
		}
		etag, seq, size, evTime = head.ETag, head.Seq, head.Size, head.Created
	}
	e.deadLetter(ctx.Span, ev)
	return 0
}

// report accounts one finished attempt. sp is the task span: successful
// durations are nominated as exemplars for the task-latency histograms,
// attached only if the trace survives retention.
func (e *Engine) report(sp *telemetry.Span, t TaskResult) {
	if t.OK {
		e.tasksOK.Inc()
		if t.Changelog {
			e.tasksChangelog.Inc()
		}
		secs := simclock.ToSeconds(t.End.Sub(t.Start))
		e.taskHist.Observe(secs)
		sp.Exemplar(e.taskHist.Agg, secs, e.dims...)
		sp.Exemplar(e.taskHist.Child, secs)
	} else {
		e.tasksFailed.Inc()
	}
	if e.OnTaskDone != nil {
		e.OnTaskDone(t)
	}
}

// execResult is the outcome of one replication attempt.
type execResult struct {
	ok         bool
	seq        uint64 // sequence of the version made durable (single-fn paths)
	etag       string // its ETag
	reason     string // failure reason when !ok
	validation bool   // failed optimistic validation (not an infra fault)
	doneAt     time.Time
	insts      []InstanceStat
}

// execute runs one replication attempt under the chosen plan. sp is the
// attempt's span; child spans attach to it. When the per-destination
// circuit breaker is open, distributed plans degrade to a single
// replicator function at the planned location — fewer requests per
// object, so storms that starve the multipart pipeline are ridden out on
// the simpler path.
func (e *Engine) execute(ctx *faas.Ctx, sp *telemetry.Span, key, etag, dstETag string, size int64, plan planner.Plan) execResult {
	clock := e.W.Clock
	if plan.N > 1 && !e.breaker.allow() {
		sp.Set("degraded", true)
		e.breakerDegraded.Inc()
		plan.N = 1
	}
	switch {
	case plan.Local:
		start := clock.Now()
		out := e.transferWhole(ctx, sp, key, dstETag)
		out.insts = []InstanceStat{{ID: ctx.Instance.ID, Chunks: int(e.chunks(size)), Busy: clock.Since(start)}}
		out.doneAt = clock.Now()
		return out
	case plan.N == 1:
		loc := e.W.Region(plan.Loc)
		var out execResult
		group := clock.NewGroup(1)
		loc.Fn.InvokeSpan(sp, 1, func(rctx *faas.Ctx) {
			defer group.Done()
			start := clock.Now()
			out = e.transferWhole(rctx, rctx.Span, key, dstETag)
			out.insts = []InstanceStat{{ID: rctx.Instance.ID, Chunks: int(e.chunks(size)), Busy: clock.Since(start)}}
		})
		group.Wait()
		out.doneAt = clock.Now()
		return out
	default:
		out := e.distributed(ctx, sp, key, etag, size, plan)
		if out.ok {
			e.breaker.success()
		} else if !out.validation {
			// Validation aborts are correct behaviour, not destination
			// trouble; only infrastructure failures feed the breaker.
			e.breaker.failure()
		}
		return out
	}
}

// PlanOpts is the planner configuration matching the rule's data plane,
// so predictions and cost estimates price what the engine will execute.
func (e *Engine) PlanOpts() planner.PlanOpts {
	opts := planner.PlanOpts{
		NoPipeline: e.Rule.DisableDoubleBuffer,
		ClaimBatch: e.Rule.ClaimBatch,
	}
	if e.Rule.DisableAdaptiveParts {
		opts.FixedPartSize = e.Rule.PartSize
	}
	return opts
}

func (e *Engine) chunks(size int64) int64 { return chunksOf(size, e.Rule.PartSize) }

func chunksOf(size, partSize int64) int64 {
	if size <= 0 {
		return 1
	}
	return (size + partSize - 1) / partSize
}

// transferWhole replicates the object's *current* version with the
// calling function instance, chunk by chunk (a single data stream in
// practice; chunked so per-chunk bandwidth draws match the profiler's C
// parameter). The GET is an atomic snapshot, so no optimistic validation
// is needed on this path: the engine replicates whatever version it read,
// exactly as in the paper's Figure 13 workflow, and reports its sequence.
func (e *Engine) transferWhole(ctx *faas.Ctx, sp *telemetry.Span, key, dstETag string) execResult {
	src := e.W.Region(e.Rule.Src)
	dst := e.W.Region(e.Rule.Dst)

	reqRNG := simrand.New("engine-single-req", ctx.Instance.ID, key)
	gsp := sp.Child("src-get")
	var obj objstore.Object
	err := e.request(gsp, reqRNG, time.Time{}, func() error {
		var gerr error
		obj, gerr = src.Obj.Get(e.Rule.SrcBucket, key)
		return gerr
	})
	gsp.End()
	if err != nil {
		return execResult{reason: "source read: " + err.Error()}
	}
	if obj.ETag != "" && obj.ETag == dstETag {
		// The snapshot just read is the version the destination already
		// holds (a stale notification that arrived after its successor
		// landed, or a redrive racing a completed transfer). Skip the
		// write: the key is converged at this version, and putting it
		// again would be a duplicate final write.
		sp.Set("deduped", true)
		e.tasksDeduped.Inc()
		return execResult{ok: true, seq: obj.Seq, etag: obj.ETag}
	}
	rng := simrand.New("engine-single", ctx.Instance.ID, key, obj.ETag)
	ssp := sp.Child("setup")
	e.W.SetupSleep(src.Region, dst.Region, rng)
	ssp.End()
	downScale := ctx.BandwidthScaleFor(src.Region.Provider)
	upScale := ctx.BandwidthScaleFor(dst.Region.Provider)
	for i, off := 0, int64(0); off < obj.Size; i, off = i+1, off+e.Rule.PartSize {
		if !ctx.Alive() {
			return execResult{reason: "instance crashed mid-transfer"}
		}
		n := min(e.Rule.PartSize, obj.Size-off)
		csp := sp.Child(fmt.Sprintf("chunk-%d", i)).Set("bytes", n)
		e.W.MoveBytesSpan(csp, "leg-down", src.Region, ctx.Region, ctx.Region.Provider, n, downScale, rng)
		e.W.MoveBytesSpan(csp, "leg-up", ctx.Region, dst.Region, ctx.Region.Provider, n, upScale, rng)
		csp.End()
	}
	if !ctx.Alive() {
		return execResult{reason: "instance crashed mid-transfer"}
	}
	psp := sp.Child("dst-put")
	err = e.request(psp, reqRNG, time.Time{}, func() error {
		_, perr := dst.Obj.PutWithOrigin(e.Rule.DstBucket, key, obj.Blob, e.origin())
		return perr
	})
	psp.End()
	if err != nil {
		return execResult{reason: "destination write: " + err.Error()}
	}
	return execResult{ok: true, seq: obj.Seq, etag: obj.ETag}
}

// Per-part phases of the hedging ledger.
const (
	partPool    uint8 = iota // still in the pool, unclaimed
	partClaimed              // claimed by an instance, upload not yet counted
	partCounted              // counted toward the task's done total
)

// distState is the shared state of one distributed replication task.
type distState struct {
	key, etag string
	size      int64
	parts     int64
	partSize  int64
	taskID    string
	mpu       string
	// resumedDone is how many parts the resumed attempt inherited as
	// already counted (zero for a fresh task).
	resumedDone int64

	aborted    atomic.Bool
	completed  atomic.Bool
	validation atomic.Bool // aborted by optimistic validation, not infra

	mu     sync.Mutex
	reason string
	doneAt time.Time

	// Hedging ledger, under mu: which parts are claimed-but-uncounted,
	// who claimed them, and which have already been hedged. The KV pool
	// counters stay authoritative for completion; this ledger only steers
	// speculation (never at itself, never twice at the same part).
	phase  []uint8
	owner  []string
	hedged map[int64]bool
	hedges int
}

// markClaimed records that inst took part idx out of the pool.
func (ds *distState) markClaimed(idx int64, inst string) {
	ds.mu.Lock()
	if ds.phase[idx] == partPool {
		ds.phase[idx] = partClaimed
		ds.owner[idx] = inst
	}
	ds.mu.Unlock()
}

// acquireDone reports whether the caller is the first to deliver part
// idx; only that delivery may count toward the KV done total. Duplicate
// hedged uploads land idempotently in the MPU but must not double-count.
func (ds *distState) acquireDone(idx int64) bool {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.phase[idx] == partCounted {
		return false
	}
	ds.phase[idx] = partCounted
	return true
}

// hedgePick selects the claimed-but-uncounted part a speculative
// duplicate rescues the most: the highest-indexed unhedged part of the
// owner with the most uncounted claims (the furthest-behind straggler,
// which works its claims lowest-first, so its last part is the one it
// reaches latest). Each pick consumes hedge budget.
func (ds *distState) hedgePick(inst string, budget int) (int64, bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.hedges >= budget {
		return 0, false
	}
	behind := make(map[string]int)
	for idx := int64(0); idx < ds.parts; idx++ {
		if ds.phase[idx] == partClaimed && ds.owner[idx] != inst {
			behind[ds.owner[idx]]++
		}
	}
	pick, most := int64(-1), 0
	for idx := int64(0); idx < ds.parts; idx++ {
		if ds.phase[idx] != partClaimed || ds.owner[idx] == inst || ds.hedged[idx] {
			continue
		}
		// >= prefers the highest index within the laggiest owner's claims.
		if n := behind[ds.owner[idx]]; n >= most {
			pick, most = idx, n
		}
	}
	if pick < 0 {
		return 0, false
	}
	ds.hedged[pick] = true
	ds.hedges++
	return pick, true
}

// abort marks the task failed with a reason (first reason wins).
func (ds *distState) abort(reason string) {
	ds.mu.Lock()
	if ds.reason == "" {
		ds.reason = reason
	}
	ds.mu.Unlock()
	ds.aborted.Store(true)
}

// abortValidation is abort for optimistic-validation failures; the
// circuit breaker ignores these (the source changing mid-flight is
// correct behaviour, not destination trouble).
func (ds *distState) abortValidation(reason string) {
	ds.validation.Store(true)
	ds.abort(reason)
}

// distributed replicates a large object with plan.N replicator functions
// at plan.Loc using the part pool (or fair dispatch, for the ablation).
// Unlike the single-function path, parts are pinned to the task's ETag and
// any mid-flight change aborts the task (Figure 14's correctness rule).
//
// Part-pool tasks are checkpointed: a durable record in the source
// region's KV store points at the task's MPU and part pool, so a retry
// after a crash re-attaches to the existing upload and redoes only the
// parts whose delivery was never counted, instead of starting over.
func (e *Engine) distributed(ctx *faas.Ctx, sp *telemetry.Span, key, etag string, size int64, plan planner.Plan) execResult {
	src := e.W.Region(e.Rule.Src)
	dst := e.W.Region(e.Rule.Dst)
	loc := e.W.Region(plan.Loc)
	clock := e.W.Clock

	partSize := plan.PartSize
	if partSize <= 0 {
		partSize = e.Rule.PartSize
	}
	ds := &distState{
		key: key, etag: etag, size: size,
		parts:    chunksOf(size, partSize),
		partSize: partSize,
	}
	ds.phase = make([]uint8, ds.parts)
	ds.owner = make([]string, ds.parts)
	ds.hedged = make(map[int64]bool)
	// Fair dispatch keeps the strawman's semantics — a failed attempt
	// starts over — so only part-pool tasks checkpoint and resume.
	useCkpt := e.Rule.Scheduling == PartPool
	// The request stream keys on task identity (rule, key, version) rather
	// than task sequence, so a resumed attempt draws deterministically
	// regardless of how many task ids preceded it.
	reqRNG := simrand.New("engine-dist-req", e.ruleID, key, etag)

	var p *pool
	if useCkpt {
		if ck, ok := e.ckpt.read(key); ok {
			p = e.resumeTask(ctx, sp, ds, ck, dst, loc, plan, reqRNG)
			if ds.completed.Load() || ds.aborted.Load() {
				// Resume settled the task without replicators: either every
				// part was already delivered (only assembly remained, or the
				// crash lost just the acknowledgment) or re-assembly failed.
				return e.distEpilogue(ctx, sp, ds, dst, plan.Loc, useCkpt, nil)
			}
			if p != nil && ds.resumedDone >= ds.parts {
				e.completeTask(ctx, sp, ds, dst, reqRNG)
				return e.distEpilogue(ctx, sp, ds, dst, plan.Loc, useCkpt, nil)
			}
		}
	}
	if p == nil {
		// Task ids embed the rule identity: several rules may share the
		// location region's database, and their part pools must not collide.
		ds.taskID = fmt.Sprintf("%s#task-%d", e.ruleID, e.taskSeq.Add(1))
		p = newPool(loc.KV, ds.taskID, ds.parts)
		// init_replication + create_part_pool (Algorithm 1, lines 2-4): the
		// task record with its claim cursor, completion bitmap and epoch.
		isp := sp.Child("kv:init-pool").Set("parts", ds.parts).Set("part_bytes", partSize)
		p.create(etag)
		isp.End()
		msp := sp.Child("mpu-create")
		var mpu string
		err := e.request(msp, reqRNG, time.Time{}, func() error {
			var cerr error
			mpu, cerr = dst.Obj.CreateMultipartWithOrigin(e.Rule.DstBucket, key, e.origin())
			return cerr
		})
		msp.End()
		if err != nil {
			p.destroy()
			return execResult{reason: "create multipart: " + err.Error(), doneAt: clock.Now()}
		}
		ds.mpu = mpu
		// The MPU exists but nothing durable points at it yet: a crash here
		// leaks it, and only the orphan GC can reclaim it.
		e.maybeCrash(ctx, "after-create-mpu")
		if !ctx.Alive() {
			return execResult{reason: "orchestrator crashed after mpu-create", doneAt: clock.Now()}
		}
		if useCkpt {
			csp := sp.Child("kv:checkpoint")
			e.ckpt.write(key, taskCkpt{
				ETag: etag, MPU: mpu, Task: ds.taskID, Loc: plan.Loc,
				PartSize: partSize, Parts: ds.parts,
			})
			csp.End()
			e.cacheCkpt(key, ckptRef{mpu: mpu, task: ds.taskID, loc: plan.Loc})
			// From here on a retry finds the checkpoint and resumes; the
			// MPU can no longer leak past the recovery records' TTL.
			e.maybeCrash(ctx, "after-checkpoint")
			if !ctx.Alive() {
				return execResult{reason: "orchestrator crashed after checkpoint", doneAt: clock.Now()}
			}
		}
	}

	var instMu sync.Mutex
	var insts []InstanceStat
	var fairNext atomic.Int64
	group := clock.NewGroup(plan.N)
	loc.Fn.InvokeSpan(sp, plan.N, func(rctx *faas.Ctx) {
		defer group.Done()
		idx := int(fairNext.Add(1) - 1)
		stat := e.replicator(rctx, ds, p, src, dst, loc, idx, plan.N)
		instMu.Lock()
		insts = append(insts, stat)
		instMu.Unlock()
	})
	group.Wait()
	return e.distEpilogue(ctx, sp, ds, dst, plan.Loc, useCkpt, insts)
}

// resumeTask re-attaches a retried task to the MPU and part pool its
// checkpoint records, priming ds with the completed-part bitmap. It
// returns nil when the checkpointed state is unusable (stale version,
// vanished records) — the caller then starts fresh — and may settle ds
// directly when the previous attempt had already made the object durable.
func (e *Engine) resumeTask(ctx *faas.Ctx, sp *telemetry.Span, ds *distState, ck taskCkpt, dst, loc *world.Services, plan planner.Plan, reqRNG *rand.Rand) *pool {
	if ck.ETag != ds.etag || ck.Parts != ds.parts || ck.PartSize != ds.partSize || ck.Loc != plan.Loc {
		// Checkpoint for a different version or plan shape: its partial
		// upload can never assemble into what this attempt replicates.
		_ = dst.Obj.AbortMultipart(ck.MPU)
		e.mpusAborted.Inc()
		e.dropCkptRecords(ds.key, ck.Task, ck.Loc)
		return nil
	}
	hsp := sp.Child("mpu-head")
	err := e.request(hsp, reqRNG, time.Time{}, func() error {
		_, herr := dst.Obj.HeadMultipart(ck.MPU)
		return herr
	})
	hsp.End()
	if errors.Is(err, objstore.ErrNoSuchUpload) {
		// The upload is gone: completed (the crash lost only the
		// acknowledgment) or aborted by GC. The destination object decides.
		if cur, herr := dst.Obj.Head(e.Rule.DstBucket, ds.key); herr == nil && cur.ETag == ds.etag {
			sp.Set("resumed_converged", true)
			e.resumedTasks.Inc()
			e.dropCkptRecords(ds.key, ck.Task, ck.Loc)
			ds.mu.Lock()
			ds.doneAt = e.W.Clock.Now()
			ds.mu.Unlock()
			ds.completed.Store(true)
			return nil
		}
		e.dropCkptRecords(ds.key, ck.Task, ck.Loc)
		return nil
	}
	if err != nil {
		ds.abort("head multipart: " + err.Error())
		return nil
	}
	ds.taskID, ds.mpu = ck.Task, ck.MPU
	p := newPool(loc.KV, ck.Task, ds.parts)
	bitmap, done, reclaimed, ok := p.attach()
	if !ok || int64(len(bitmap)) != ds.parts {
		// The pool record expired or predates the bitmap schema; without a
		// trustworthy completion record the upload cannot be resumed.
		_ = dst.Obj.AbortMultipart(ck.MPU)
		e.mpusAborted.Inc()
		e.dropCkptRecords(ds.key, ck.Task, ck.Loc)
		ds.taskID, ds.mpu = "", ""
		return nil
	}
	for idx := int64(0); idx < ds.parts; idx++ {
		if bitmap[idx] == '1' {
			ds.phase[idx] = partCounted
		}
	}
	ds.resumedDone = done
	sp.Set("resumed", true).Set("parts_resumed", done).Set("parts_reclaimed", reclaimed)
	e.resumedTasks.Inc()
	e.partsResumed.Add(done)
	e.partsReclaimed.Add(reclaimed)
	e.cacheCkpt(ds.key, ckptRef{mpu: ck.MPU, task: ck.Task, loc: ck.Loc})
	return p
}

// distEpilogue settles one distributed attempt: scrap or keep the task's
// MPU and recovery records depending on how it ended, and shape the
// execResult. A crashed orchestrator keeps everything — crashed code
// cannot run cleanup, which is precisely what the checkpoint is for.
func (e *Engine) distEpilogue(ctx *faas.Ctx, sp *telemetry.Span, ds *distState, dst *world.Services, locID cloud.RegionID, useCkpt bool, insts []InstanceStat) execResult {
	clock := e.W.Clock
	reason := func() string {
		ds.mu.Lock()
		defer ds.mu.Unlock()
		if ds.reason == "" {
			return "no replicator completed the task"
		}
		return ds.reason
	}
	if !ctx.Alive() {
		return execResult{reason: reason(), validation: ds.validation.Load(), doneAt: clock.Now(), insts: insts}
	}
	if !ds.completed.Load() {
		if !useCkpt || ds.validation.Load() {
			// Validation aborts can never resume (the pinned version is
			// gone), and fair dispatch never checkpoints: abort the upload
			// and scrap the records.
			asp := sp.Child("mpu-abort")
			_ = dst.Obj.AbortMultipart(ds.mpu)
			asp.End()
			e.mpusAborted.Inc()
			if useCkpt {
				e.dropCkptRecords(ds.key, ds.taskID, locID)
			} else {
				e.W.Region(locID).KV.Delete(poolTable, ds.taskID)
			}
		}
		// Otherwise keep the MPU, pool and checkpoint: the next attempt
		// (in-process retry or platform redrive) resumes from them.
		return execResult{reason: reason(), validation: ds.validation.Load(), doneAt: clock.Now(), insts: insts}
	}
	if ds.taskID != "" {
		if useCkpt {
			e.dropCkptRecords(ds.key, ds.taskID, locID)
		} else {
			e.W.Region(locID).KV.Delete(poolTable, ds.taskID)
		}
	}
	ds.mu.Lock()
	doneAt := ds.doneAt
	ds.mu.Unlock()
	return execResult{ok: true, etag: ds.etag, doneAt: doneAt, insts: insts}
}

// fetched is one part that finished its download stage and awaits its
// upload stage. Its part span stays open across the stage boundary.
type fetched struct {
	idx    int64
	length int64
	blob   objstore.Blob
	psp    *telemetry.Span
	hedged bool
}

// replicator is the body of one replicator function (Algorithm 1, lines
// 7-13), rebuilt as a pipelined data plane: parts are claimed from the
// pool in batches of ClaimBatch (one KV increment each), part i+1's
// download overlaps part i's upload on a concurrent sub-lane (double
// buffering), completion updates are batched symmetrically, and once the
// pool drains an idle instance hedges stragglers' in-flight parts —
// idempotent part uploads make the duplicates safe. The instance whose
// completion update closes the counter concludes the task.
func (e *Engine) replicator(ctx *faas.Ctx, ds *distState, p *pool, src, dst, loc *world.Services, fairIdx, n int) InstanceStat {
	clock := e.W.Clock
	// The concurrent download lane must not share a rand.Rand with the
	// upload stage: two independent streams keep each stage's draws
	// deterministic regardless of interleaving.
	upRNG := simrand.New("engine-dist", ds.taskID, ctx.Instance.ID)
	downRNG := simrand.New("engine-dist-down", ds.taskID, ctx.Instance.ID)
	start := clock.Now()
	stat := InstanceStat{ID: ctx.Instance.ID}

	ssp := ctx.Span.Child("setup")
	e.W.SetupSleep(src.Region, dst.Region, upRNG)
	ssp.End()

	// Fair dispatch: a fixed contiguous range per instance.
	per := (ds.parts + int64(n) - 1) / int64(n)
	fairLo := int64(fairIdx) * per
	fairHi := min(fairLo+per, ds.parts)
	fairNext := fairLo

	batch := max(e.Rule.ClaimBatch, 1)
	var claimed []int64 // parts claimed by the last pool update, not yet fetched
	poolRem := ds.parts // parts remaining in the pool at the last claim

	claim := func(fctx *faas.Ctx) int64 {
		if e.Rule.Scheduling == FairDispatch {
			if fairNext >= fairHi {
				return ds.parts // range exhausted
			}
			idx := fairNext
			fairNext++
			ds.markClaimed(idx, ctx.Instance.ID)
			return idx
		}
		if len(claimed) == 0 {
			// get_part_from_pool, amortized: one KV update claims up to
			// batch parts (reclaimed parts first) and stamps each with this
			// instance's lease. The batch tapers with the pool (guided
			// self-scheduling): full-sized while at least two rounds per
			// instance remain, down to single parts near exhaustion, so
			// slow instances are not stuck with a large final batch the
			// fast ones could have drained part by part.
			b := int64(batch)
			if poolRem < 2*int64(n)*b {
				b = max(poolRem/(2*int64(n)), 1)
			}
			csp := fctx.Span.Child("kv:claim").Set("batch", b)
			idxs, rem, fenced := p.claim(b, ctx.Instance.ID, clock.Now())
			csp.End()
			// The claim is leased but no part is delivered yet: a crash
			// here strands the claims until attach (or the janitor)
			// returns them to the pool.
			e.maybeCrash(fctx, "after-claim")
			if fenced {
				// A newer attempt reclaimed this task: this instance is a
				// zombie and must stop producing work.
				return ds.parts
			}
			poolRem = rem
			for _, idx := range idxs {
				ds.markClaimed(idx, ctx.Instance.ID)
				claimed = append(claimed, idx)
			}
			if len(claimed) == 0 {
				return ds.parts // pool exhausted
			}
		}
		idx := claimed[0]
		claimed = claimed[1:]
		return idx
	}

	// fetch runs a part's download stage: ranged GET (with optimistic
	// validation) and the src→loc leg. Hedged fetches that hit a fault
	// are abandoned rather than aborting the task — the part's owner
	// still holds the claim.
	fetch := func(fctx *faas.Ctx, rng *rand.Rand, idx int64, hedged bool) *fetched {
		off := idx * ds.partSize
		length := min(ds.partSize, ds.size-off)
		psp := ctx.Span.Child(fmt.Sprintf("part-%d", idx)).Set("bytes", length)
		legDown := "leg-down"
		gsp := psp.Child("get-range")
		if hedged {
			psp.Set("hedged", true)
			legDown = "hedge-leg-down"
			gsp.Set(telemetry.CatAttr, string(telemetry.CatHedge))
		}
		var blob objstore.Blob
		var cur string
		err := e.request(gsp, rng, time.Time{}, func() error {
			var gerr error
			blob, cur, gerr = src.Obj.GetRange(e.Rule.SrcBucket, ds.key, off, length)
			return gerr
		})
		gsp.End()
		if err != nil {
			if hedged {
				psp.Set("abandoned", true)
				psp.End()
				return nil
			}
			// A transient fault outlived the request budget: infrastructure
			// failure, distinct from validation.
			ds.abort(fmt.Sprintf("part %d read: %s", idx, err))
			psp.Set("aborted", true)
			psp.End()
			return nil
		}
		if cur != ds.etag {
			// Optimistic validation: the object changed mid-replication
			// (Figure 14); abort the whole task.
			ds.abortValidation(fmt.Sprintf("optimistic validation: part %d sees a different source version", idx))
			psp.Set("aborted", true)
			psp.End()
			return nil
		}
		e.W.MoveBytesSpan(psp, legDown, src.Region, fctx.Region, fctx.Region.Provider, length, fctx.BandwidthScaleFor(src.Region.Provider), rng)
		return &fetched{idx: idx, length: length, blob: blob, psp: psp, hedged: hedged}
	}

	// Completion updates are batched like claims: pendingIdxs holds
	// delivered parts whose bitmap bits are not yet set in the pool.
	var pendingIdxs []int64
	flush := func(sp *telemetry.Span) {
		if len(pendingIdxs) == 0 || !ctx.Alive() {
			return
		}
		idxs := pendingIdxs
		pendingIdxs = nil
		dsp := sp.Child("kv:done").Set("batch", int64(len(idxs)))
		_, closed, fenced := p.flush(idxs)
		dsp.End()
		if fenced {
			// A newer attempt reclaimed these parts and will deliver them
			// itself; counting them here would double-complete the pool.
			e.partsFenced.Add(int64(len(idxs)))
			return
		}
		// The parts are durably counted but this instance hasn't acted on
		// it yet; a crash here redoes nothing — the bits are set.
		e.maybeCrash(ctx, "after-flush")
		if closed {
			// This update closed the bitmap: finish_replication
			// (Algorithm 1, line 13) falls to this instance.
			e.completeTask(ctx, sp, ds, dst, upRNG)
		}
	}

	// upload runs a part's upload stage: the loc→dst leg, the idempotent
	// part upload, and the (batched) completion update.
	upload := func(f *fetched) {
		if f == nil {
			return
		}
		if ds.completed.Load() {
			// A hedge (or the owner) already delivered every outstanding
			// part and the MPU is complete; don't move bytes for nothing.
			f.psp.Set("dropped", true)
			f.psp.End()
			return
		}
		legUp := "leg-up"
		if f.hedged {
			legUp = "hedge-leg-up"
		}
		e.W.MoveBytesSpan(f.psp, legUp, ctx.Region, dst.Region, ctx.Region.Provider, f.length, ctx.BandwidthScaleFor(dst.Region.Provider), upRNG)
		if !ctx.Alive() {
			// The instance crashed mid-part; its claim never completes, so
			// the attempt fails and the engine's task retry takes over
			// (unless a hedge rescues the part first).
			f.psp.Set("crashed", true)
			f.psp.End()
			return
		}
		usp := f.psp.Child("upload-part")
		if f.hedged {
			usp.Set(telemetry.CatAttr, string(telemetry.CatHedge))
		}
		err := e.request(usp, upRNG, time.Time{}, func() error {
			_, uerr := dst.Obj.UploadPart(ds.mpu, int(f.idx)+1, f.blob)
			return uerr
		})
		usp.End()
		if err != nil {
			// Losing the upload race against MPU completion (the part's
			// duplicate delivered it) is not a failure of the attempt.
			if f.hedged || ds.completed.Load() {
				f.psp.Set("abandoned", true)
				f.psp.End()
				return
			}
			ds.abort("upload part: " + err.Error())
			f.psp.End()
			return
		}
		// The part upload is durable in the MPU, but its bitmap bit is not
		// set: a crash in this window redoes exactly this part (the resumed
		// attempt reclaims the claim and re-uploads idempotently).
		e.maybeCrash(ctx, fmt.Sprintf("after-part-%d", f.idx))
		if !ctx.Alive() {
			f.psp.Set("crashed", true)
			f.psp.End()
			return
		}
		stat.Chunks++
		// Only the first delivery of a part counts toward the done
		// total; a duplicate (hedge vs. owner) lands idempotently in the
		// MPU without double-counting.
		if ds.acquireDone(f.idx) {
			pendingIdxs = append(pendingIdxs, f.idx)
			if len(pendingIdxs) >= batch {
				flush(f.psp)
			}
		}
		f.psp.End()
	}

	// next claims and downloads the following part (nil when the pool is
	// exhausted, the task is settled, or this instance crashed).
	next := func(fctx *faas.Ctx, rng *rand.Rand) *fetched {
		if ds.aborted.Load() || ds.completed.Load() || !fctx.Alive() {
			return nil
		}
		idx := claim(fctx)
		if idx >= ds.parts || !fctx.Alive() {
			return nil
		}
		return fetch(fctx, rng, idx, false)
	}

	// Steady state: with double buffering, part i+1's download stage runs
	// on a concurrent sub-lane while part i's upload stage runs here, so
	// each additional part costs max(down, up) instead of down+up.
	pipelined := !e.Rule.DisableDoubleBuffer
	cur := next(ctx, downRNG)
	for cur != nil {
		if ds.aborted.Load() || !ctx.Alive() {
			cur.psp.Set("dropped", true)
			cur.psp.End()
			break
		}
		var nxt *fetched
		if pipelined {
			lane := ctx.Go("prefetch", func(sub *faas.Ctx) {
				nxt = next(sub, downRNG)
			})
			upload(cur)
			lane.Wait()
		} else {
			upload(cur)
			nxt = next(ctx, downRNG)
		}
		cur = nxt
	}

	// Tail: push out any batched completion counts, then — pool drained
	// but the task still open — speculatively duplicate stragglers'
	// in-flight parts instead of idling, bounded by the hedge budget.
	// Fair dispatch never hedges: its ranges are fixed by construction.
	flush(ctx.Span)
	if e.Rule.Scheduling != FairDispatch && e.Rule.HedgeBudget > 0 {
		for !ds.aborted.Load() && !ds.completed.Load() && ctx.Alive() {
			hsp := ctx.Span.Child("kv:hedge").Set(telemetry.CatAttr, string(telemetry.CatHedge))
			item, ok := loc.KV.Get(poolTable, ds.taskID)
			hsp.End()
			if !ok {
				break
			}
			done, _ := item["done"].(int64)
			if done >= ds.parts {
				break
			}
			idx, ok := ds.hedgePick(ctx.Instance.ID, e.Rule.HedgeBudget)
			if !ok {
				break
			}
			e.partsHedged.Inc()
			upload(fetch(ctx, downRNG, idx, true))
			flush(ctx.Span)
		}
	}

	stat.Busy = clock.Since(start)
	return stat
}

// completeTask assembles the destination object once every part is
// delivered and validates the result against the task's pinned version.
func (e *Engine) completeTask(ctx *faas.Ctx, sp *telemetry.Span, ds *distState, dst *world.Services, rng *rand.Rand) {
	clock := e.W.Clock
	// A crash before the complete call leaves every part durable and the
	// MPU open: the resumed attempt re-attaches and only re-assembles.
	e.maybeCrash(ctx, "before-complete-mpu")
	if !ctx.Alive() {
		return
	}
	fsp := sp.Child("mpu-complete")
	var res objstore.PutResult
	err := e.request(fsp, rng, time.Time{}, func() error {
		var ferr error
		res, ferr = dst.Obj.CompleteMultipart(ds.mpu)
		return ferr
	})
	fsp.End()
	// A crash after the complete call loses only the acknowledgment: the
	// destination object is durable, and the retry's dedupe (or the resume
	// path's vanished-MPU probe) resolves without a second final write.
	e.maybeCrash(ctx, "after-complete-mpu")
	if err != nil {
		ds.abort("complete multipart: " + err.Error())
		return
	}
	if res.ETag != ds.etag {
		ds.abortValidation("assembled object does not match the source version")
		return
	}
	if !ctx.Alive() {
		return
	}
	ds.mu.Lock()
	ds.doneAt = clock.Now()
	ds.mu.Unlock()
	ds.completed.Store(true)
}
