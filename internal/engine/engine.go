// Package engine implements AReplica's replication engine (§5.1-5.2): the
// serverless workflow of notification → orchestrator → replicator
// functions, with decentralized part-granularity scheduling (Algorithm 1),
// the object-granularity replication lock (Algorithm 2), and optimistic
// validation with ETags. Slow instances naturally replicate fewer parts
// because every part is claimed from a shared pool in the location
// region's KV store — two KV accesses per part, as the paper costs it.
package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cloud"
	"repro/internal/faas"
	"repro/internal/kvstore"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/planner"
	"repro/internal/simclock"
	"repro/internal/simrand"
	"repro/internal/telemetry"
	"repro/internal/world"
)

// SchedulingMode selects how data parts are distributed to replicators.
type SchedulingMode int

// Scheduling modes.
const (
	// PartPool is decentralized part-granularity scheduling: replicators
	// claim parts from a shared pool as they become available (Algorithm 1).
	PartPool SchedulingMode = iota
	// FairDispatch statically assigns each replicator an equal contiguous
	// range of parts, the strawman of Figure 12 used in the Figure 17
	// ablation.
	FairDispatch
)

// OriginPrefix tags destination writes made by any AReplica engine. Events
// carrying it are never re-replicated, which breaks the ping-pong loop of
// bidirectional (active-active) rule pairs, mirroring how S3 replication
// skips replica-created objects.
const OriginPrefix = "areplica/"

func (m SchedulingMode) String() string {
	if m == FairDispatch {
		return "fair"
	}
	return "part-pool"
}

// Rule configures replication of one bucket pair.
type Rule struct {
	Src, Dst             cloud.RegionID
	SrcBucket, DstBucket string

	// SLO is the replication-delay objective measured from the source PUT;
	// zero requests the fastest plan for every object.
	SLO time.Duration
	// Percentile is the model percentile plans must satisfy (default 0.99).
	Percentile float64
	// PartSize is the distributed-replication part size (default 8 MB).
	PartSize int64
	// Scheduling selects PartPool (default) or FairDispatch.
	Scheduling SchedulingMode
	// MaxRetries bounds optimistic-validation retries before an event goes
	// to the dead-letter queue (default 3).
	MaxRetries int

	// KeyPrefix, when non-empty, scopes the rule to keys with the prefix
	// (as in S3 replication rule filters); other keys are ignored.
	KeyPrefix string

	// ForceN and ForceLoc, when set, bypass the planner and pin the
	// parallelism and execution region. Ablation experiments (Figures 8,
	// 17, 18-19) use them to hold the strategy fixed.
	ForceN   int
	ForceLoc cloud.RegionID
}

// WithDefaults fills unset fields with the paper's defaults.
func (r Rule) WithDefaults() Rule {
	if r.Percentile <= 0 || r.Percentile >= 1 {
		r.Percentile = 0.99
	}
	if r.PartSize <= 0 {
		r.PartSize = model.DefaultChunk
	}
	if r.MaxRetries <= 0 {
		r.MaxRetries = 3
	}
	return r
}

// InstanceStat records one replicator instance's contribution to a
// distributed task (Figure 17's per-instance data).
type InstanceStat struct {
	ID     string
	Chunks int
	Busy   time.Duration
}

// TaskResult summarizes one finished replication task.
type TaskResult struct {
	Key       string
	ETag      string
	Size      int64
	Plan      planner.Plan
	Start     time.Time // orchestration start (lock held)
	End       time.Time // destination object retrievable
	OK        bool
	Changelog bool   // satisfied by changelog propagation, no data moved
	Reason    string // failure reason when OK is false
	Retries   int
	Instances []InstanceStat
}

// ExecSeconds is the measured replication time T_rep of the task.
func (t TaskResult) ExecSeconds() float64 { return t.End.Sub(t.Start).Seconds() }

// Engine replicates objects for one Rule on a simulated world.
type Engine struct {
	W       *world.World
	Planner *planner.Planner
	Rule    Rule
	Tracker *Tracker

	// TryChangelog, when set, is consulted before planning a full
	// replication; returning true means the version was propagated via its
	// changelog (§5.4) and no data transfer is needed. sp is the attempt's
	// "changelog" span (nil when tracing is off) for child annotations.
	TryChangelog func(sp *telemetry.Span, key, etag string) bool
	// OnTaskDone, when set, observes every finished task (the logger hooks
	// in here).
	OnTaskDone func(TaskResult)

	lock    *replLock
	ruleID  string
	taskSeq atomic.Int64

	tasksOK        *telemetry.Counter
	tasksFailed    *telemetry.Counter
	tasksChangelog *telemetry.Counter
	tasksDLQ       *telemetry.Counter
	taskHist       *telemetry.Histogram

	mu       sync.Mutex
	dlq      []objstore.Event
	traceSeq map[string]int // per-version dispatch count, for trace IDs
}

// New returns an Engine for rule. The replication lock lives in the source
// region's KV store.
func New(w *world.World, pl *planner.Planner, rule Rule) *Engine {
	rule = rule.WithDefaults()
	ruleID := fmt.Sprintf("%s/%s->%s/%s", rule.Src, rule.SrcBucket, rule.Dst, rule.DstBucket)
	e := &Engine{
		W:        w,
		Planner:  pl,
		Rule:     rule,
		Tracker:  NewTracker(),
		ruleID:   ruleID,
		lock:     newReplLock(w.Region(rule.Src).KV, ruleID),
		traceSeq: make(map[string]int),

		tasksOK:        w.Metrics.Counter("engine.tasks.ok"),
		tasksFailed:    w.Metrics.Counter("engine.tasks.failed"),
		tasksChangelog: w.Metrics.Counter("engine.tasks.changelog"),
		tasksDLQ:       w.Metrics.Counter("engine.tasks.dlq"),
		taskHist:       w.Metrics.Histogram("engine.task.seconds"),
	}
	e.Tracker.SetTelemetry(w.Metrics.Histogram("engine.delay.seconds"))
	return e
}

// DLQ returns the events that exhausted their retries.
func (e *Engine) DLQ() []objstore.Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]objstore.Event(nil), e.dlq...)
}

// HandleEvent is the notification entry point: it registers the event for
// delay measurement and dispatches an orchestrator invocation. Wire it to
// the source bucket via objstore.Subscribe (or through the batcher).
// Events outside the rule's key prefix, and events originated by a
// replication engine (replica writes in an active-active pair), are
// ignored.
func (e *Engine) HandleEvent(ev objstore.Event) {
	if !e.Matches(ev.Key) || strings.HasPrefix(ev.Origin, OriginPrefix) {
		return
	}
	e.Tracker.OnSource(ev)
	e.Dispatch(ev)
}

// origin returns the tag this engine stamps on its destination writes.
func (e *Engine) origin() string { return OriginPrefix + e.ruleID }

// Matches reports whether a key falls under this rule's prefix filter.
func (e *Engine) Matches(key string) bool {
	return e.Rule.KeyPrefix == "" || strings.HasPrefix(key, e.Rule.KeyPrefix)
}

// Backfill walks the source bucket and dispatches replication for every
// object that is missing or stale at the destination — the initial sync a
// freshly deployed rule needs so that notifications alone keep the pair
// converged afterwards. It returns how many objects were scheduled.
// Delays for backfilled objects are measured from the backfill itself.
func (e *Engine) Backfill() (int, error) {
	src := e.W.Region(e.Rule.Src)
	dst := e.W.Region(e.Rule.Dst)
	metas, err := src.Obj.List(e.Rule.SrcBucket)
	if err != nil {
		return 0, fmt.Errorf("engine: backfill list: %w", err)
	}
	scheduled := 0
	for _, m := range metas {
		if !e.Matches(m.Key) {
			continue
		}
		if cur, err := dst.Obj.Head(e.Rule.DstBucket, m.Key); err == nil && cur.ETag == m.ETag {
			continue // already converged
		}
		ev := objstore.Event{
			Type: objstore.EventPut, Bucket: e.Rule.SrcBucket, Key: m.Key,
			Size: m.Size, ETag: m.ETag, Seq: m.Seq, Time: e.W.Clock.Now(),
		}
		e.Tracker.OnSource(ev)
		e.Dispatch(ev)
		scheduled++
	}
	return scheduled, nil
}

// Dispatch invokes the orchestrator function for ev without registering it
// for delay measurement (the batcher registers events itself and delays
// dispatch).
func (e *Engine) Dispatch(ev objstore.Event) {
	src := e.W.Region(e.Rule.Src)
	root := e.startTaskTrace(ev)
	// The notification span covers source-operation completion → dispatch
	// (the platform's delivery delay T_n plus any batching hold).
	root.ChildAt("notify", ev.Time).EndAt(e.W.Clock.Now())
	src.Fn.InvokeSpan(root, 1, func(ctx *faas.Ctx) {
		defer root.End()
		e.orchestrate(ctx, ev)
	})
}

// startTaskTrace opens a root span for one dispatched event, anchored at
// the source operation's completion so notification delay is part of the
// waterfall. Trace IDs derive from the task's identity (rule, key,
// version) plus a per-version dispatch counter, so identical seeded runs
// export identical traces.
func (e *Engine) startTaskTrace(ev objstore.Event) *telemetry.Span {
	if !e.W.Tracer.Enabled() {
		return nil
	}
	id := fmt.Sprintf("%s %s@%d", e.ruleID, ev.Key, ev.Seq)
	e.mu.Lock()
	n := e.traceSeq[id]
	e.traceSeq[id]++
	e.mu.Unlock()
	if n > 0 {
		id = fmt.Sprintf("%s redispatch-%d", id, n)
	}
	return e.W.Tracer.StartTraceAt(id, "task", ev.Time).
		Set("key", ev.Key).Set("etag", ev.ETag).
		Set("size", ev.Size).Set("type", string(ev.Type))
}

// orchestrate runs inside the orchestrator function: acquire the object's
// replication lock, replicate (with retries), then release and chase any
// version that arrived while the lock was held.
func (e *Engine) orchestrate(ctx *faas.Ctx, ev objstore.Event) {
	lsp := ctx.Span.Child("kv:lock")
	acquired := e.lock.acquire(ev.Key, ev.ETag, ev.Seq)
	lsp.Set("acquired", acquired)
	lsp.End()
	if !acquired {
		// Another orchestrator holds the lock; it will observe our version
		// as pending on release and re-trigger.
		return
	}
	replicatedSeq := e.replicateHeld(ctx, ev)
	usp := ctx.Span.Child("kv:unlock")
	_, pendingSeq, retrigger := e.lock.release(ev.Key, replicatedSeq)
	usp.End()
	if !retrigger {
		return
	}
	// A newer version arrived while we held the lock (its orchestrator
	// lost the lock race and recorded itself as pending). Re-drive
	// replication for the current head.
	src := e.W.Region(e.Rule.Src)
	head, err := src.Obj.Head(e.Rule.SrcBucket, ev.Key)
	if errors.Is(err, objstore.ErrNoSuchKey) {
		// The newest pending operation was a DELETE whose orchestrator
		// already gave up on the lock; mirror it now. The synthetic event
		// carries the pending sequence so the tracker resolves the
		// original DELETE's delay record.
		e.Dispatch(objstore.Event{
			Type: objstore.EventDelete, Bucket: ev.Bucket, Key: ev.Key,
			Seq: pendingSeq, Time: e.W.Clock.Now(),
		})
		return
	}
	if err != nil || head.Seq <= replicatedSeq {
		return
	}
	e.Dispatch(objstore.Event{
		Type: objstore.EventPut, Bucket: ev.Bucket, Key: ev.Key,
		Size: head.Size, ETag: head.ETag, Seq: head.Seq, Time: head.Created,
	})
}

// replicateHeld performs the replication while the lock is held and
// returns the sequence number of the version it made durable at the
// destination (0 on failure).
func (e *Engine) replicateHeld(ctx *faas.Ctx, ev objstore.Event) uint64 {
	src := e.W.Region(e.Rule.Src)
	dst := e.W.Region(e.Rule.Dst)
	clock := e.W.Clock

	if ev.Type == objstore.EventDelete {
		dsp := ctx.Span.Child("dst-delete")
		err := dst.Obj.DeleteWithOrigin(e.Rule.DstBucket, ev.Key, e.origin())
		dsp.End()
		if err != nil {
			return 0
		}
		e.Tracker.Resolve(ev.Key, ev.Seq, clock.Now())
		return ev.Seq
	}

	key := ev.Key
	etag, seq, size, evTime := ev.ETag, ev.Seq, ev.Size, ev.Time
	for attempt := 0; attempt <= e.Rule.MaxRetries; attempt++ {
		start := clock.Now()
		att := ctx.Span.Child("attempt").Set("n", int64(attempt))
		if e.TryChangelog != nil {
			cl := att.Child("changelog")
			hit := e.TryChangelog(cl, key, etag)
			cl.Set("hit", hit)
			cl.End()
			if hit {
				att.End()
				end := clock.Now()
				e.Tracker.Resolve(key, seq, end)
				e.report(TaskResult{Key: key, ETag: etag, Size: size, Start: start, End: end,
					OK: true, Changelog: true, Retries: attempt})
				return seq
			}
		}

		var plan planner.Plan
		if e.Rule.ForceN > 0 {
			loc := e.Rule.ForceLoc
			if loc == "" {
				loc = e.Rule.Src
			}
			plan = planner.Plan{N: e.Rule.ForceN, Loc: loc}
		} else {
			var remaining time.Duration
			if e.Rule.SLO > 0 {
				remaining = e.Rule.SLO - clock.Since(evTime)
			}
			var err error
			plan, err = e.Planner.Plan(e.Rule.Src, e.Rule.Dst, size, remaining, e.Rule.Percentile)
			if err != nil {
				att.Set("error", err.Error())
				att.End()
				break
			}
		}
		att.Set("plan_n", int64(plan.N)).Set("plan_loc", string(plan.Loc)).Set("plan_local", plan.Local)

		out := e.execute(ctx, att, key, etag, size, plan)
		att.End()
		if out.ok {
			// Single-function transfers may have replicated a *newer*
			// snapshot than the event's version (Figure 13's workflow);
			// resolve up to what actually landed.
			doneSeq := seq
			if out.seq > doneSeq {
				doneSeq = out.seq
			}
			e.Tracker.Resolve(key, doneSeq, out.doneAt)
			e.report(TaskResult{Key: key, ETag: out.etag, Size: size, Plan: plan,
				Start: start, End: out.doneAt, OK: true, Retries: attempt, Instances: out.insts})
			return doneSeq
		}
		e.report(TaskResult{Key: key, ETag: etag, Size: size, Plan: plan,
			Start: start, End: out.doneAt, OK: false, Reason: out.reason, Retries: attempt, Instances: out.insts})

		// Optimistic validation failed (the source version changed
		// mid-flight) or a request hit a transient fault. Chase the
		// current head and try again.
		head, err := src.Obj.Head(e.Rule.SrcBucket, key)
		switch {
		case errors.Is(err, objstore.ErrNoSuchKey), errors.Is(err, objstore.ErrNoSuchBucket):
			return 0 // deleted concurrently; the DELETE event converges us
		case err != nil:
			continue // transient fault: burn a retry, keep the same version
		}
		etag, seq, size, evTime = head.ETag, head.Seq, head.Size, head.Created
	}
	e.mu.Lock()
	e.dlq = append(e.dlq, ev)
	e.mu.Unlock()
	e.tasksDLQ.Inc()
	return 0
}

func (e *Engine) report(t TaskResult) {
	if t.OK {
		e.tasksOK.Inc()
		if t.Changelog {
			e.tasksChangelog.Inc()
		}
		e.taskHist.Observe(simclock.ToSeconds(t.End.Sub(t.Start)))
	} else {
		e.tasksFailed.Inc()
	}
	if e.OnTaskDone != nil {
		e.OnTaskDone(t)
	}
}

// execResult is the outcome of one replication attempt.
type execResult struct {
	ok     bool
	seq    uint64 // sequence of the version made durable (single-fn paths)
	etag   string // its ETag
	reason string // failure reason when !ok
	doneAt time.Time
	insts  []InstanceStat
}

// execute runs one replication attempt under the chosen plan. sp is the
// attempt's span; child spans attach to it.
func (e *Engine) execute(ctx *faas.Ctx, sp *telemetry.Span, key, etag string, size int64, plan planner.Plan) execResult {
	clock := e.W.Clock
	switch {
	case plan.Local:
		start := clock.Now()
		out := e.transferWhole(ctx, sp, key)
		out.insts = []InstanceStat{{ID: ctx.Instance.ID, Chunks: int(e.chunks(size)), Busy: clock.Since(start)}}
		out.doneAt = clock.Now()
		return out
	case plan.N == 1:
		loc := e.W.Region(plan.Loc)
		var out execResult
		group := clock.NewGroup(1)
		loc.Fn.InvokeSpan(sp, 1, func(rctx *faas.Ctx) {
			defer group.Done()
			start := clock.Now()
			out = e.transferWhole(rctx, rctx.Span, key)
			out.insts = []InstanceStat{{ID: rctx.Instance.ID, Chunks: int(e.chunks(size)), Busy: clock.Since(start)}}
		})
		group.Wait()
		out.doneAt = clock.Now()
		return out
	default:
		return e.distributed(sp, key, etag, size, plan)
	}
}

func (e *Engine) chunks(size int64) int64 {
	if size <= 0 {
		return 1
	}
	return (size + e.Rule.PartSize - 1) / e.Rule.PartSize
}

// transferWhole replicates the object's *current* version with the
// calling function instance, chunk by chunk (a single data stream in
// practice; chunked so per-chunk bandwidth draws match the profiler's C
// parameter). The GET is an atomic snapshot, so no optimistic validation
// is needed on this path: the engine replicates whatever version it read,
// exactly as in the paper's Figure 13 workflow, and reports its sequence.
func (e *Engine) transferWhole(ctx *faas.Ctx, sp *telemetry.Span, key string) execResult {
	src := e.W.Region(e.Rule.Src)
	dst := e.W.Region(e.Rule.Dst)

	gsp := sp.Child("src-get")
	obj, err := src.Obj.Get(e.Rule.SrcBucket, key)
	gsp.End()
	if err != nil {
		return execResult{reason: "source read: " + err.Error()}
	}
	rng := simrand.New("engine-single", ctx.Instance.ID, key, obj.ETag)
	ssp := sp.Child("setup")
	e.W.SetupSleep(src.Region, dst.Region, rng)
	ssp.End()
	downScale := ctx.BandwidthScaleFor(src.Region.Provider)
	upScale := ctx.BandwidthScaleFor(dst.Region.Provider)
	for i, off := 0, int64(0); off < obj.Size; i, off = i+1, off+e.Rule.PartSize {
		n := min64(e.Rule.PartSize, obj.Size-off)
		csp := sp.Child(fmt.Sprintf("chunk-%d", i)).Set("bytes", n)
		e.W.MoveBytesSpan(csp, "leg-down", src.Region, ctx.Region, ctx.Region.Provider, n, downScale, rng)
		e.W.MoveBytesSpan(csp, "leg-up", ctx.Region, dst.Region, ctx.Region.Provider, n, upScale, rng)
		csp.End()
	}
	psp := sp.Child("dst-put")
	_, err = dst.Obj.PutWithOrigin(e.Rule.DstBucket, key, obj.Blob, e.origin())
	psp.End()
	if err != nil {
		return execResult{reason: "destination write: " + err.Error()}
	}
	return execResult{ok: true, seq: obj.Seq, etag: obj.ETag}
}

// distState is the shared state of one distributed replication task.
type distState struct {
	key, etag string
	size      int64
	parts     int64
	taskID    string
	mpu       string

	aborted   atomic.Bool
	completed atomic.Bool

	mu     sync.Mutex
	reason string
	doneAt time.Time
}

// abort marks the task failed with a reason (first reason wins).
func (ds *distState) abort(reason string) {
	ds.mu.Lock()
	if ds.reason == "" {
		ds.reason = reason
	}
	ds.mu.Unlock()
	ds.aborted.Store(true)
}

// distributed replicates a large object with plan.N replicator functions
// at plan.Loc using the part pool (or fair dispatch, for the ablation).
// Unlike the single-function path, parts are pinned to the task's ETag and
// any mid-flight change aborts the task (Figure 14's correctness rule).
func (e *Engine) distributed(sp *telemetry.Span, key, etag string, size int64, plan planner.Plan) execResult {
	src := e.W.Region(e.Rule.Src)
	dst := e.W.Region(e.Rule.Dst)
	loc := e.W.Region(plan.Loc)
	clock := e.W.Clock

	ds := &distState{
		key: key, etag: etag, size: size,
		parts: e.chunks(size),
		// Task ids embed the rule identity: several rules may share the
		// location region's database, and their part pools must not collide.
		taskID: fmt.Sprintf("%s#task-%d", e.ruleID, e.taskSeq.Add(1)),
	}
	// init_replication + create_part_pool (Algorithm 1, lines 2-4): the
	// task record with its claim and completion counters.
	isp := sp.Child("kv:init-pool").Set("parts", ds.parts)
	loc.KV.Put("areplica-tasks", ds.taskID, kvstore.Item{
		"etag": etag, "total": ds.parts, "next": int64(0), "done": int64(0),
	})
	isp.End()
	msp := sp.Child("mpu-create")
	mpu, err := dst.Obj.CreateMultipartWithOrigin(e.Rule.DstBucket, key, e.origin())
	msp.End()
	if err != nil {
		return execResult{reason: "create multipart: " + err.Error(), doneAt: clock.Now()}
	}
	ds.mpu = mpu

	var instMu sync.Mutex
	var insts []InstanceStat
	var fairNext atomic.Int64
	group := clock.NewGroup(plan.N)
	loc.Fn.InvokeSpan(sp, plan.N, func(rctx *faas.Ctx) {
		defer group.Done()
		idx := int(fairNext.Add(1) - 1)
		stat := e.replicator(rctx, ds, src, dst, loc, idx, plan.N)
		instMu.Lock()
		insts = append(insts, stat)
		instMu.Unlock()
	})
	group.Wait()

	if !ds.completed.Load() {
		asp := sp.Child("mpu-abort")
		dst.Obj.AbortMultipart(mpu)
		asp.End()
		ds.mu.Lock()
		reason := ds.reason
		ds.mu.Unlock()
		if reason == "" {
			reason = "no replicator completed the task"
		}
		return execResult{reason: reason, doneAt: clock.Now(), insts: insts}
	}
	ds.mu.Lock()
	doneAt := ds.doneAt
	ds.mu.Unlock()
	return execResult{ok: true, etag: etag, doneAt: doneAt, insts: insts}
}

// replicator is the body of one replicator function (Algorithm 1, lines
// 7-13): claim a part, download it from the source, upload it to the
// destination, update completion; the instance that delivers the last part
// concludes the task.
func (e *Engine) replicator(ctx *faas.Ctx, ds *distState, src, dst, loc *world.Services, fairIdx, n int) InstanceStat {
	clock := e.W.Clock
	rng := simrand.New("engine-dist", ds.taskID, ctx.Instance.ID)
	start := clock.Now()
	stat := InstanceStat{ID: ctx.Instance.ID}

	ssp := ctx.Span.Child("setup")
	e.W.SetupSleep(src.Region, dst.Region, rng)
	ssp.End()

	// Fair dispatch: a fixed contiguous range per instance.
	per := (ds.parts + int64(n) - 1) / int64(n)
	fairLo := int64(fairIdx) * per
	fairHi := min64(fairLo+per, ds.parts)
	fairNext := fairLo

	claim := func() int64 {
		if e.Rule.Scheduling == FairDispatch {
			if fairNext >= fairHi {
				return ds.parts // exhausted
			}
			idx := fairNext
			fairNext++
			return idx
		}
		// get_part_from_pool: one KV access to claim.
		csp := ctx.Span.Child("kv:claim")
		idx := loc.KV.Increment("areplica-tasks", ds.taskID, "next", 1) - 1
		csp.End()
		return idx
	}

	for !ds.aborted.Load() {
		idx := claim()
		if idx >= ds.parts {
			break
		}
		off := idx * e.Rule.PartSize
		length := min64(e.Rule.PartSize, ds.size-off)
		psp := ctx.Span.Child(fmt.Sprintf("part-%d", idx)).Set("bytes", length)

		gsp := psp.Child("get-range")
		blob, cur, err := src.Obj.GetRange(e.Rule.SrcBucket, ds.key, off, length)
		gsp.End()
		if err != nil || cur != ds.etag {
			// Optimistic validation: the object changed mid-replication
			// (Figure 14); abort the whole task.
			ds.abort(fmt.Sprintf("optimistic validation: part %d sees a different source version", idx))
			psp.Set("aborted", true)
			psp.End()
			break
		}
		e.W.MoveBytesSpan(psp, "leg-down", src.Region, ctx.Region, ctx.Region.Provider, length, ctx.BandwidthScaleFor(src.Region.Provider), rng)
		e.W.MoveBytesSpan(psp, "leg-up", ctx.Region, dst.Region, ctx.Region.Provider, length, ctx.BandwidthScaleFor(dst.Region.Provider), rng)
		usp := psp.Child("upload-part")
		_, err = dst.Obj.UploadPart(ds.mpu, int(idx)+1, blob)
		usp.End()
		if err != nil {
			ds.abort("upload part: " + err.Error())
			psp.End()
			break
		}
		stat.Chunks++
		// Second KV access: update the part's completion.
		dsp := psp.Child("kv:done")
		done := loc.KV.Increment("areplica-tasks", ds.taskID, "done", 1)
		dsp.End()
		if done == ds.parts {
			// finish_replication (Algorithm 1, line 13).
			fsp := psp.Child("mpu-complete")
			res, err := dst.Obj.CompleteMultipart(ds.mpu)
			fsp.End()
			if err != nil {
				ds.abort("complete multipart: " + err.Error())
			} else if res.ETag != ds.etag {
				ds.abort("assembled object does not match the source version")
			} else {
				ds.mu.Lock()
				ds.doneAt = clock.Now()
				ds.mu.Unlock()
				ds.completed.Store(true)
			}
		}
		psp.End()
	}
	stat.Busy = clock.Since(start)
	return stat
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
