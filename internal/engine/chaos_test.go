package engine

import (
	"fmt"
	"testing"

	"repro/internal/objstore"
)

// TestSurvivesTransientStorageFaults injects "503 Slow Down"-class
// failures into both object stores and verifies the engine's retry path
// (§6: idempotent PUTs + auto-retry) still converges every object.
func TestSurvivesTransientStorageFaults(t *testing.T) {
	f := newFixture(t, nil)
	f.w.Region(srcID).Obj.SetFailureRate(0.05)
	f.w.Region(dstID).Obj.SetFailureRate(0.05)

	// The workload writer retries its own PUTs, as any SDK client would.
	putRetry := func(key string, seed uint64) string {
		for attempt := 0; ; attempt++ {
			res, err := f.w.Region(srcID).Obj.Put(f.eng.Rule.SrcBucket, key,
				objstore.BlobOfSize(4<<20, seed))
			if err == nil {
				return res.ETag
			}
			if attempt > 10 {
				t.Fatalf("put %s never succeeded: %v", key, err)
			}
		}
	}
	want := map[string]string{}
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("obj-%02d", i)
		want[key] = putRetry(key, uint64(i)+1)
	}
	f.w.Clock.Quiesce()

	// Disable injection before auditing so the audit reads reliably.
	f.w.Region(srcID).Obj.SetFailureRate(0)
	f.w.Region(dstID).Obj.SetFailureRate(0)

	var missing int
	for key, etag := range want {
		obj, err := f.dstObject(t, key)
		if err != nil || obj.ETag != etag {
			missing++
		}
	}
	// A 5% per-request failure rate with up-to-3 task retries should lose
	// almost nothing; allow a stray DLQ entry but require near-total
	// convergence.
	if missing > 1 {
		t.Fatalf("%d of %d objects failed to converge under faults (dlq %d)",
			missing, len(want), len(f.eng.DLQ()))
	}
	if failures := f.w.Region(srcID).Obj.Stats().Failures + f.w.Region(dstID).Obj.Stats().Failures; failures == 0 {
		t.Fatal("no faults were actually injected; the test proved nothing")
	}
}

// TestPermanentFaultsLandInDLQ verifies that an unrecoverable destination
// keeps the engine from spinning: after MaxRetries the event moves to the
// dead-letter queue, matching the paper's §6 behaviour.
func TestPermanentFaultsLandInDLQ(t *testing.T) {
	f := newFixture(t, nil)
	f.w.Region(dstID).Obj.SetFailureRate(1.0) // destination hard down
	f.put(t, "doomed", 2<<20, 1)
	f.w.Clock.Quiesce()

	dlq := f.eng.DLQ()
	if len(dlq) != 1 || dlq[0].Key != "doomed" {
		t.Fatalf("dlq = %+v, want the doomed event", dlq)
	}
	// Recovery: destination heals, a fresh version replicates fine.
	f.w.Region(dstID).Obj.SetFailureRate(0)
	res := f.put(t, "doomed", 2<<20, 2)
	f.w.Clock.Quiesce()
	obj, err := f.dstObject(t, "doomed")
	if err != nil || obj.ETag != res.ETag {
		t.Fatalf("post-recovery replication failed: %v", err)
	}
}

// TestFaultsDoNotCorruptAssemblies stresses distributed replication under
// faults: whatever lands at the destination must be internally consistent
// (never assembled from mixed or partial parts).
func TestFaultsDoNotCorruptAssemblies(t *testing.T) {
	f := newFixture(t, func(r *Rule) {
		r.Src, r.Dst = "azure:eastus", "gcp:asia-northeast1"
		r.ForceN = 16
		r.ForceLoc = "azure:eastus"
	})
	f.w.Region(f.eng.Rule.Dst).Obj.SetFailureRate(0.03)
	var last objstore.PutResult
	for i := 0; i < 4; i++ {
		last = f.put(t, "big", 256<<20, uint64(i)+1)
		f.w.Clock.Quiesce()
	}
	f.w.Region(f.eng.Rule.Dst).Obj.SetFailureRate(0)
	obj, err := f.dstObject(t, "big")
	if err != nil {
		// Every attempt may legitimately have died in the DLQ; but if the
		// object exists it must be a complete, single version.
		if len(f.eng.DLQ()) == 0 {
			t.Fatalf("object missing without DLQ entries: %v", err)
		}
		return
	}
	if obj.ETag != obj.Blob.ETag() {
		t.Fatal("destination object internally inconsistent")
	}
	if obj.ETag != last.ETag && len(f.eng.DLQ()) == 0 {
		t.Fatal("stale version at destination without a DLQ record")
	}
}
