package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/objstore"
	"repro/internal/world"
)

// TestSurvivesTransientStorageFaults injects "503 Slow Down"-class
// failures into both object stores and verifies the engine's retry path
// (§6: idempotent PUTs + auto-retry) still converges every object.
func TestSurvivesTransientStorageFaults(t *testing.T) {
	f := newFixture(t, nil)
	f.w.Region(srcID).Obj.SetFailureRate(0.05)
	f.w.Region(dstID).Obj.SetFailureRate(0.05)

	// The workload writer retries its own PUTs, as any SDK client would.
	putRetry := func(key string, seed uint64) string {
		for attempt := 0; ; attempt++ {
			res, err := f.w.Region(srcID).Obj.Put(f.eng.Rule.SrcBucket, key,
				objstore.BlobOfSize(4<<20, seed))
			if err == nil {
				return res.ETag
			}
			if attempt > 10 {
				t.Fatalf("put %s never succeeded: %v", key, err)
			}
		}
	}
	want := map[string]string{}
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("obj-%02d", i)
		want[key] = putRetry(key, uint64(i)+1)
	}
	f.w.Clock.Quiesce()

	// Disable injection before auditing so the audit reads reliably.
	f.w.Region(srcID).Obj.SetFailureRate(0)
	f.w.Region(dstID).Obj.SetFailureRate(0)

	var missing int
	for key, etag := range want {
		obj, err := f.dstObject(t, key)
		if err != nil || obj.ETag != etag {
			missing++
		}
	}
	// A 5% per-request failure rate with up-to-3 task retries should lose
	// almost nothing; allow a stray DLQ entry but require near-total
	// convergence.
	if missing > 1 {
		t.Fatalf("%d of %d objects failed to converge under faults (dlq %d)",
			missing, len(want), len(f.eng.DLQ()))
	}
	if failures := f.w.Region(srcID).Obj.Stats().Failures + f.w.Region(dstID).Obj.Stats().Failures; failures == 0 {
		t.Fatal("no faults were actually injected; the test proved nothing")
	}
}

// TestPermanentFaultsLandInDLQ verifies that an unrecoverable destination
// keeps the engine from spinning: after MaxRetries the event moves to the
// dead-letter queue, matching the paper's §6 behaviour.
func TestPermanentFaultsLandInDLQ(t *testing.T) {
	f := newFixture(t, nil)
	f.w.Region(dstID).Obj.SetFailureRate(1.0) // destination hard down
	f.put(t, "doomed", 2<<20, 1)
	f.w.Clock.Quiesce()

	dlq := f.eng.DLQ()
	if len(dlq) != 1 || dlq[0].Key != "doomed" {
		t.Fatalf("dlq = %+v, want the doomed event", dlq)
	}
	// Recovery: destination heals, a fresh version replicates fine.
	f.w.Region(dstID).Obj.SetFailureRate(0)
	res := f.put(t, "doomed", 2<<20, 2)
	f.w.Clock.Quiesce()
	obj, err := f.dstObject(t, "doomed")
	if err != nil || obj.ETag != res.ETag {
		t.Fatalf("post-recovery replication failed: %v", err)
	}
}

// TestFaultsDoNotCorruptAssemblies stresses distributed replication under
// faults: whatever lands at the destination must be internally consistent
// (never assembled from mixed or partial parts).
func TestFaultsDoNotCorruptAssemblies(t *testing.T) {
	f := newFixture(t, func(r *Rule) {
		r.Src, r.Dst = "azure:eastus", "gcp:asia-northeast1"
		r.ForceN = 16
		r.ForceLoc = "azure:eastus"
	})
	f.w.Region(f.eng.Rule.Dst).Obj.SetFailureRate(0.03)
	var last objstore.PutResult
	for i := 0; i < 4; i++ {
		last = f.put(t, "big", 256<<20, uint64(i)+1)
		f.w.Clock.Quiesce()
	}
	f.w.Region(f.eng.Rule.Dst).Obj.SetFailureRate(0)
	obj, err := f.dstObject(t, "big")
	if err != nil {
		// Every attempt may legitimately have died in the DLQ; but if the
		// object exists it must be a complete, single version.
		if len(f.eng.DLQ()) == 0 {
			t.Fatalf("object missing without DLQ entries: %v", err)
		}
		return
	}
	if obj.ETag != obj.Blob.ETag() {
		t.Fatal("destination object internally inconsistent")
	}
	if obj.ETag != last.ETag && len(f.eng.DLQ()) == 0 {
		t.Fatal("stale version at destination without a DLQ record")
	}
}

// dupWriteCounter counts duplicate *final writes* at a destination
// bucket: a distinct PUT (new store sequence number) that writes content
// identical to the version already current there. Notification chaos may
// deliver the same event twice; deduping on Seq keeps those from counting.
type dupWriteCounter struct {
	mu       sync.Mutex
	dups     int
	writes   map[string]int
	lastSeq  map[string]uint64
	lastETag map[string]string
}

func watchDupWrites(t *testing.T, w *world.World, region cloud.RegionID, bucket string) *dupWriteCounter {
	t.Helper()
	c := &dupWriteCounter{writes: map[string]int{}, lastSeq: map[string]uint64{}, lastETag: map[string]string{}}
	err := w.Region(region).Obj.Subscribe(bucket, func(ev objstore.Event) {
		if ev.Type != objstore.EventPut {
			return
		}
		c.mu.Lock()
		if ev.Seq > c.lastSeq[ev.Key] {
			c.writes[ev.Key]++
			if ev.ETag != "" && c.lastETag[ev.Key] == ev.ETag {
				c.dups++
			}
			c.lastSeq[ev.Key] = ev.Seq
			c.lastETag[ev.Key] = ev.ETag
		}
		c.mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func (c *dupWriteCounter) duplicates() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dups
}

// TestFaultRetriesConsumeVirtualClock verifies the satellite requirement
// that retry waits are simulated time, not instantaneous loops: an
// unreachable destination makes the task burn its backoff schedule and
// its redrive delays on the virtual clock.
func TestFaultRetriesConsumeVirtualClock(t *testing.T) {
	f := newFixture(t, nil)
	f.w.Region(dstID).Obj.SetFailureRate(1.0)
	start := f.w.Clock.Now()
	f.put(t, "stuck", 1<<20, 1)
	f.w.Clock.Quiesce()

	if got := f.w.Metrics.Counter("engine.retries").Value(); got < 3 {
		t.Fatalf("engine.retries = %d, want >= 3 (MaxRetries backoffs per dispatch)", got)
	}
	// Three dispatches (original + 2 automatic redrives), each with 3
	// backoffs of >= 250ms, plus two 30s redrive delays: well over a
	// virtual minute must have elapsed.
	if elapsed := f.w.Clock.Now().Sub(start); elapsed < time.Minute {
		t.Fatalf("only %v of virtual time elapsed; retries/redrives did not consume the clock", elapsed)
	}
	if len(f.eng.DLQEntries()) != 1 {
		t.Fatalf("DLQ = %+v, want the stuck event parked", f.eng.DLQEntries())
	}
}

// TestFaultDLQAutomaticRedriveRecovers: the destination heals while the
// event waits out a redrive delay; the automatic redrive converges it
// without operator action.
func TestFaultDLQAutomaticRedriveRecovers(t *testing.T) {
	f := newFixture(t, nil)
	f.w.Region(dstID).Obj.SetFailureRate(1.0)
	// Heal mid-redrive: after the first redrive fails (~t=32s) but before
	// the second fires (~t=63s).
	f.w.Clock.Delay(45*time.Second, func() {
		f.w.Region(dstID).Obj.SetFailureRate(0)
	})
	res := f.put(t, "heals", 1<<20, 1)
	f.w.Clock.Quiesce()

	obj, err := f.dstObject(t, "heals")
	if err != nil || obj.ETag != res.ETag {
		t.Fatalf("object did not converge after the destination healed: %v", err)
	}
	if len(f.eng.DLQ()) != 0 {
		t.Fatalf("DLQ = %+v, want empty after automatic redrive", f.eng.DLQ())
	}
	if got := f.w.Metrics.Counter("engine.dlq.redriven").Value(); got < 1 {
		t.Fatal("no automatic redrive was recorded")
	}
}

// TestFaultDLQRedriveCappedThenManual: a poison event stops being
// re-enqueued after RedriveMax automatic redrives, and the operator's
// RedriveDLQ button recovers it once the destination heals.
func TestFaultDLQRedriveCappedThenManual(t *testing.T) {
	f := newFixture(t, nil)
	f.w.Region(dstID).Obj.SetFailureRate(1.0)
	res := f.put(t, "poison", 1<<20, 1)
	f.w.Clock.Quiesce()

	entries := f.eng.DLQEntries()
	if len(entries) != 1 || entries[0].Event.Key != "poison" {
		t.Fatalf("DLQ = %+v, want the poison event parked", entries)
	}
	if entries[0].Redrives != 2 {
		t.Fatalf("automatic redrives = %d, want the default cap of 2", entries[0].Redrives)
	}
	if got := f.w.Metrics.Counter("engine.tasks.dlq").Value(); got != 1 {
		t.Fatalf("engine.tasks.dlq = %d, want 1", got)
	}

	f.w.Region(dstID).Obj.SetFailureRate(0)
	if n := f.eng.RedriveDLQ(); n != 1 {
		t.Fatalf("RedriveDLQ = %d, want 1", n)
	}
	f.w.Clock.Quiesce()
	obj, err := f.dstObject(t, "poison")
	if err != nil || obj.ETag != res.ETag {
		t.Fatalf("manual redrive did not converge the event: %v", err)
	}
	if len(f.eng.DLQ()) != 0 {
		t.Fatal("DLQ not empty after manual redrive")
	}
}

// TestChaosNotificationLossConvergesViaBackfill: lost notifications leave
// objects unreplicated (the engine cannot retry what it never saw); the
// reconciliation backfill converges them.
func TestChaosNotificationLossConvergesViaBackfill(t *testing.T) {
	f := newFixture(t, nil)
	f.w.SetChaos(chaos.Profile{Name: "loss", NotifyLossRate: 1})

	want := map[string]string{}
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("lost-%d", i)
		want[key] = f.put(t, key, 1<<20, uint64(i)+1).ETag
	}
	f.w.Clock.Quiesce()
	for key := range want {
		if _, err := f.dstObject(t, key); err == nil {
			t.Fatalf("%s replicated although every notification was dropped", key)
		}
	}
	if got := f.w.Metrics.Counter("chaos.injected.notify_loss").Value(); got < 4 {
		t.Fatalf("chaos.injected.notify_loss = %d, want >= 4", got)
	}

	f.w.SetChaos(chaos.Profile{})
	n, err := f.eng.Backfill()
	if err != nil || n != 4 {
		t.Fatalf("Backfill = %d, %v, want 4 scheduled", n, err)
	}
	f.w.Clock.Quiesce()
	for key, etag := range want {
		obj, err := f.dstObject(t, key)
		if err != nil || obj.ETag != etag {
			t.Fatalf("%s did not converge via backfill: %v", key, err)
		}
	}
}

// TestChaosNotificationDuplicationDeduped: at-least-once delivery with
// aggressive duplication must not cause duplicate replication work, and
// must never produce a duplicate final write at the destination.
func TestChaosNotificationDuplicationDeduped(t *testing.T) {
	f := newFixture(t, nil)
	dup := watchDupWrites(t, f.w, dstID, f.eng.Rule.DstBucket)
	f.w.SetChaos(chaos.Profile{Name: "dup", NotifyDupRate: 1, NotifyDelayMax: 3 * time.Second})

	want := map[string]string{}
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("twice-%d", i)
		want[key] = f.put(t, key, 1<<20, uint64(i)+1).ETag
		f.w.Clock.Sleep(time.Second)
	}
	f.w.Clock.Quiesce()

	for key, etag := range want {
		obj, err := f.dstObject(t, key)
		if err != nil || obj.ETag != etag {
			t.Fatalf("%s did not converge: %v", key, err)
		}
	}
	if got := dup.duplicates(); got != 0 {
		t.Fatalf("%d duplicate final writes at the destination, want 0", got)
	}
	deduped := f.w.Metrics.Counter("engine.events.deduped").Value() +
		f.w.Metrics.Counter("engine.tasks.deduped").Value()
	if deduped < 6 {
		t.Fatalf("dedupe counters = %d, want >= 6 (every duplicate delivery rejected)", deduped)
	}
}

// TestChaosMixedProfileAcceptance is the issue's acceptance scenario: 5%
// object-store faults, 2% FaaS instance crashes, and one 30-second
// inter-region partition. The hardened engine must converge >= 99% of
// source writes with zero duplicate final writes.
func TestChaosMixedProfileAcceptance(t *testing.T) {
	f := newFixture(t, nil)
	dup := watchDupWrites(t, f.w, dstID, f.eng.Rule.DstBucket)
	prof, err := chaos.Parse("mixed")
	if err != nil {
		t.Fatal(err)
	}
	f.w.SetChaos(prof)

	// The workload writer retries its PUTs like any SDK client; sizes span
	// the single-function and distributed paths, and the 2s spacing walks
	// the workload through the 20s..50s partition window.
	sizes := []int64{1 << 20, 4 << 20, 24 << 20}
	want := map[string]string{}
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("mix-%02d", i)
		blob := objstore.BlobOfSize(sizes[i%len(sizes)], uint64(i)+1)
		for attempt := 0; ; attempt++ {
			res, err := f.w.Region(srcID).Obj.Put(f.eng.Rule.SrcBucket, key, blob)
			if err == nil {
				want[key] = res.ETag
				break
			}
			if attempt > 10 {
				t.Fatalf("source put %s never succeeded: %v", key, err)
			}
			f.w.Clock.Sleep(200 * time.Millisecond)
		}
		f.w.Clock.Sleep(2 * time.Second)
	}
	f.w.Clock.Quiesce()

	f.w.SetChaos(chaos.Profile{}) // audit without injection
	converged := 0
	for key, etag := range want {
		if obj, err := f.dstObject(t, key); err == nil && obj.ETag == etag {
			converged++
		}
	}
	if pct := 100 * float64(converged) / float64(len(want)); pct < 99 {
		t.Fatalf("convergence %.1f%% (%d/%d, dlq %d), want >= 99%%",
			pct, converged, len(want), len(f.eng.DLQ()))
	}
	if got := dup.duplicates(); got != 0 {
		t.Fatalf("%d duplicate final writes under the mixed profile, want 0", got)
	}
	if got := f.w.Metrics.Counter("chaos.injected").Value(); got == 0 {
		t.Fatal("no faults were actually injected; the test proved nothing")
	}
}
