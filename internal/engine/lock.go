package engine

import (
	"sync/atomic"
	"time"

	"repro/internal/kvstore"
)

// replLock is the object-granularity replication lock of Algorithm 2,
// backed by a conditional-write KV table. It serializes replication tasks
// per object key and records the newest version that arrived while the
// lock was held, so the holder can re-trigger replication for it on
// release — preventing the concurrent-PUT race of Figure 13 without
// enabling versioning.
type replLock struct {
	kv    *kvstore.Store
	table string
	// lease bounds how long a crashed holder can wedge a key: every
	// acquire/pending write refreshes it, and an expired lock reads as
	// free (the KV store's TTL, §6's fault-tolerance posture).
	lease time.Duration
	now   func() time.Time
	// tokens mints per-acquisition holder identities so a release is
	// fenced to its own acquisition: a crashed holder's late release
	// cannot drop a lock the TTL already handed to a second acquirer.
	tokens atomic.Int64
}

// newReplLock scopes the lock table by rule identity: replication of the
// same source object toward *different* destinations is independent (a
// fan-out deployment must not serialize across rules), while tasks within
// one rule serialize per key.
func newReplLock(kv *kvstore.Store, ruleID string, lease time.Duration, now func() time.Time) *replLock {
	if lease <= 0 {
		lease = 15 * time.Minute
	}
	return &replLock{kv: kv, table: "areplica-locks:" + ruleID, lease: lease, now: now}
}

// acquire attempts to take the lock for key on behalf of a replication of
// (etag, seq), returning a fencing token identifying this acquisition. On
// failure the version is recorded as pending if it is newer than what the
// holder already knows about, and wait reports how long until the current
// holder's lease expires — the earliest moment a crashed holder's lock can
// be gone, which the caller uses to schedule a recovery probe. The whole
// operation is one conditional KV write.
func (l *replLock) acquire(key, etag string, seq uint64) (token int64, acquired bool, wait time.Duration) {
	token = l.tokens.Add(1)
	wait = l.lease
	l.kv.UpdateTTL(l.table, key, func(cur kvstore.Item, exists bool) (kvstore.Item, bool, time.Duration) {
		if !exists {
			acquired = true
			return kvstore.Item{
				"holder": token, "pending_etag": "", "pending_seq": int64(0),
				"expires": l.now().Add(l.lease).UnixNano(),
			}, true, l.lease
		}
		if exp := cur.Int("expires"); exp > 0 {
			if rem := time.Unix(0, exp).Sub(l.now()); rem > 0 && rem < wait {
				wait = rem
			}
		}
		if cur.Int("pending_seq") < int64(seq) {
			cur["pending_seq"] = int64(seq)
			cur["pending_etag"] = etag
		}
		// Recording a pending version must not refresh the holder's lease:
		// contenders arriving on a crashed holder's key would otherwise
		// keep its lock alive forever.
		return cur, true, 0
	})
	return token, acquired, wait
}

// release drops the lock and returns the pending version recorded while it
// was held, if that version is newer than the one just replicated
// (replicatedSeq); the caller must re-trigger replication for it. The
// delete is fenced on the holder token: if the lease expired and another
// orchestrator took the lock, this release is a zombie write and must not
// free (or observe pending state of) the new holder's lock.
func (l *replLock) release(key string, token int64, replicatedSeq uint64) (pendingETag string, pendingSeq uint64, retrigger bool) {
	held := false
	l.kv.Update(l.table, key, func(cur kvstore.Item, exists bool) (kvstore.Item, bool) {
		if !exists {
			return nil, false // lease already expired with no new holder
		}
		if cur.Int("holder") != token {
			return cur, true // fenced: someone else holds it now
		}
		held = true
		pendingETag = cur.Str("pending_etag")
		pendingSeq = uint64(cur.Int("pending_seq"))
		return nil, false // delete: lock released
	})
	if !held {
		return "", 0, false
	}
	return pendingETag, pendingSeq, pendingSeq > replicatedSeq
}
