package engine

import (
	"time"

	"repro/internal/kvstore"
)

// replLock is the object-granularity replication lock of Algorithm 2,
// backed by a conditional-write KV table. It serializes replication tasks
// per object key and records the newest version that arrived while the
// lock was held, so the holder can re-trigger replication for it on
// release — preventing the concurrent-PUT race of Figure 13 without
// enabling versioning.
type replLock struct {
	kv    *kvstore.Store
	table string
	// lease bounds how long a crashed holder can wedge a key: every
	// acquire/pending write refreshes it, and an expired lock reads as
	// free (the KV store's TTL, §6's fault-tolerance posture).
	lease time.Duration
}

// newReplLock scopes the lock table by rule identity: replication of the
// same source object toward *different* destinations is independent (a
// fan-out deployment must not serialize across rules), while tasks within
// one rule serialize per key.
func newReplLock(kv *kvstore.Store, ruleID string) *replLock {
	return &replLock{kv: kv, table: "areplica-locks:" + ruleID, lease: 15 * time.Minute}
}

// acquire attempts to take the lock for key on behalf of a replication of
// (etag, seq). On failure the version is recorded as pending if it is
// newer than what the holder already knows about. The whole operation is
// one conditional KV write.
func (l *replLock) acquire(key, etag string, seq uint64) bool {
	acquired := false
	l.kv.UpdateWithTTL(l.table, key, l.lease, func(cur kvstore.Item, exists bool) (kvstore.Item, bool) {
		if !exists {
			acquired = true
			return kvstore.Item{"held": true, "pending_etag": "", "pending_seq": int64(0)}, true
		}
		if cur.Int("pending_seq") < int64(seq) {
			cur["pending_seq"] = int64(seq)
			cur["pending_etag"] = etag
		}
		return cur, true
	})
	return acquired
}

// release drops the lock and returns the pending version recorded while it
// was held, if that version is newer than the one just replicated
// (replicatedSeq). The caller must re-trigger replication for it.
func (l *replLock) release(key string, replicatedSeq uint64) (pendingETag string, pendingSeq uint64, retrigger bool) {
	l.kv.Update(l.table, key, func(cur kvstore.Item, exists bool) (kvstore.Item, bool) {
		if exists {
			pendingETag = cur.Str("pending_etag")
			pendingSeq = uint64(cur.Int("pending_seq"))
		}
		return nil, false // delete: lock released
	})
	return pendingETag, pendingSeq, pendingSeq > replicatedSeq
}
