package engine

import (
	"sync"
	"time"

	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// breaker is a per-destination circuit breaker over the distributed
// replication path. Consecutive infrastructure failures of the part pool
// (transient request faults, vanished multipart uploads, crashed
// replicators — but NOT optimistic-validation aborts, which are correct
// behaviour) trip it open; while open, the engine degrades to the
// single-function path, which touches far fewer requests per object and
// so rides out storms that starve the multipart pipeline. After a
// cooldown the breaker half-opens: the next distributed attempt probes
// the path, re-opening on failure and closing on success.
type breaker struct {
	clock     *simclock.Clock
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	halfOpen  bool

	opens     telemetry.MirrorCounter // engine.breaker_open
	openGauge telemetry.MirrorGauge   // engine.breaker.is_open
}

func newBreaker(clock *simclock.Clock, threshold int, cooldown time.Duration, reg *telemetry.Registry, dims ...telemetry.Label) *breaker {
	return &breaker{
		clock:     clock,
		threshold: threshold,
		cooldown:  cooldown,
		opens:     reg.CounterVec("engine.breaker_open").Mirror(reg.Counter("engine.breaker_open"), dims...),
		openGauge: reg.GaugeVec("engine.breaker.is_open").Mirror(reg.Gauge("engine.breaker.is_open"), dims...),
	}
}

// allow reports whether the distributed path may be attempted. While the
// cooldown runs it returns false; the first call after the cooldown is
// the half-open probe.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true
	}
	if b.clock.Now().Before(b.openUntil) {
		return false
	}
	b.halfOpen = true
	return true
}

// success records a successful distributed attempt and closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	b.fails = 0
	b.openUntil = time.Time{}
	b.halfOpen = false
	b.openGauge.Set(0)
	b.mu.Unlock()
}

// failure records an infrastructure failure of the distributed path,
// opening the breaker at the threshold (immediately when half-open).
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.halfOpen || b.fails >= b.threshold {
		b.openUntil = b.clock.Now().Add(b.cooldown)
		b.halfOpen = false
		b.fails = 0
		b.opens.Inc()
		b.openGauge.Set(1)
	}
}
