package engine

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cloud"
)

// pipelinePair is the high-variance path the hedging tests replicate
// over: Figure 17's setup, where per-instance bandwidth spread creates
// the straggler tails hedged parts exist to cut.
func pipelineFixture(t *testing.T, mutate func(*Rule)) *fixture {
	t.Helper()
	return newFixture(t, func(r *Rule) {
		r.Src, r.Dst = cloud.RegionID("azure:eastus"), cloud.RegionID("gcp:asia-northeast1")
		r.ForceN = 16
		r.ForceLoc = "azure:eastus"
		if mutate != nil {
			mutate(r)
		}
	})
}

// TestHedgedRunsDeterministic: hedging races idle replicators against
// stragglers on real goroutines, so it is the part of the pipeline most
// at risk of nondeterminism. Two identically-seeded runs must produce
// byte-identical metrics.
func TestHedgedRunsDeterministic(t *testing.T) {
	run := func() []byte {
		f := pipelineFixture(t, nil)
		for i := 0; i < 2; i++ {
			f.put(t, "model.bin", 256<<20, uint64(i)+1)
			f.w.Clock.Quiesce()
		}
		if f.w.Metrics.Counter("engine.parts.hedged").Value() == 0 {
			t.Fatal("no part was hedged; the run does not exercise the hedge tail")
		}
		var buf bytes.Buffer
		if err := f.w.Metrics.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("two identically-seeded hedged runs diverge:\n--- a\n%s\n--- b\n%s", a, b)
	}
}

// TestHedgingSafeUnderChaos: with instances crashing mid-part and legs
// degrading, speculative duplicates must stay invisible — every source
// write converges exactly once at the destination, with zero duplicate
// final writes (idempotent part uploads + first-delivery-wins counting).
func TestHedgingSafeUnderChaos(t *testing.T) {
	f := pipelineFixture(t, nil)
	dup := watchDupWrites(t, f.w, f.eng.Rule.Dst, f.eng.Rule.DstBucket)
	f.w.SetChaos(chaos.Profile{
		Name:             "hedge-crashy",
		FnCrashRate:      0.02,
		FnCrashMax:       20 * time.Second,
		NetDegradeRate:   0.10,
		NetDegradeFactor: 4,
	})

	want := map[string]string{}
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("big-%d", i)
		want[key] = f.put(t, key, 96<<20, uint64(i)+1).ETag
		f.w.Clock.Quiesce()
	}

	f.w.SetChaos(chaos.Profile{}) // audit without injection
	for key, etag := range want {
		obj, err := f.dstObject(t, key)
		if err != nil || obj.ETag != etag {
			t.Fatalf("%s did not converge under chaos with hedging on: %v (dlq %d)",
				key, err, len(f.eng.DLQ()))
		}
	}
	if got := dup.duplicates(); got != 0 {
		t.Fatalf("%d duplicate final writes with hedging under chaos, want 0", got)
	}
	if f.w.Metrics.Counter("engine.parts.hedged").Value() == 0 {
		t.Fatal("no part was hedged; the test proved nothing")
	}
	if f.w.Metrics.Counter("chaos.injected").Value() == 0 {
		t.Fatal("no faults were actually injected; the test proved nothing")
	}
}

// TestFairDispatchPipelinedNeverHedges: fair dispatch's fixed ranges
// compose with the double-buffered lanes, but leave nothing to hedge —
// every part has exactly one owner by construction.
func TestFairDispatchPipelinedNeverHedges(t *testing.T) {
	var results []TaskResult
	f := pipelineFixture(t, func(r *Rule) {
		r.Scheduling = FairDispatch
	})
	f.eng.OnTaskDone = func(r TaskResult) { results = append(results, r) }
	res := f.put(t, "fair.bin", 128<<20, 3)
	f.w.Clock.Quiesce()

	obj, err := f.dstObject(t, "fair.bin")
	if err != nil || obj.ETag != res.ETag {
		t.Fatalf("fair-dispatch pipelined replication failed: %v", err)
	}
	if got := f.w.Metrics.Counter("engine.parts.hedged").Value(); got != 0 {
		t.Fatalf("engine.parts.hedged = %d under fair dispatch, want 0", got)
	}
	if len(results) != 1 {
		t.Fatalf("got %d task results", len(results))
	}
	total := 0
	for _, st := range results[0].Instances {
		total += st.Chunks
	}
	ps := results[0].Plan.PartSize
	if ps <= 0 {
		ps = f.eng.Rule.PartSize
	}
	if want := int((int64(128<<20) + ps - 1) / ps); total != want {
		t.Fatalf("fair dispatch uploaded %d parts, want exactly %d (no duplicates)", total, want)
	}
}
