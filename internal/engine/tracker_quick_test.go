package engine

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/objstore"
)

// Property: for any interleaving of registrations and resolutions, (a) a
// resolution covers exactly the registered events with seq <= its seq, (b)
// delays are never negative when resolutions happen after event times, and
// (c) replaying the same schedule yields the same records.
func TestTrackerResolutionProperty(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	f := func(seed int64, nEvents, nResolves uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ne := int(nEvents%40) + 1
		nr := int(nResolves%10) + 1

		run := func() ([]DelayRecord, int) {
			tr := NewTracker()
			seq := uint64(0)
			registered := map[string][]uint64{}
			for i := 0; i < ne; i++ {
				seq++
				key := string(rune('a' + rng.Intn(3)))
				tr.OnSource(objstore.Event{
					Key: key, Seq: seq,
					Time: base.Add(time.Duration(i) * time.Second),
				})
				registered[key] = append(registered[key], seq)
			}
			for i := 0; i < nr; i++ {
				key := string(rune('a' + rng.Intn(3)))
				upTo := uint64(rng.Intn(ne + 2))
				tr.Resolve(key, upTo, base.Add(time.Duration(ne+i)*time.Second))
			}
			return tr.Records(), tr.PendingCount()
		}

		recs, pending := run()
		// (a) accounting: records + pending == registered.
		if len(recs)+pending != ne {
			return false
		}
		// (b) non-negative delays (resolutions are after all event times).
		for _, r := range recs {
			if r.Delay < 0 {
				return false
			}
		}
		// (c) determinism: same seed => same outcome.
		rng = rand.New(rand.NewSource(seed))
		recs2, pending2 := run()
		if len(recs2) != len(recs) || pending2 != pending {
			return false
		}
		for i := range recs {
			if recs[i] != recs2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a resolution never covers an event with a larger sequence.
func TestTrackerNeverResolvesNewer(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	f := func(evSeq, resolveSeq uint16) bool {
		tr := NewTracker()
		tr.OnSource(objstore.Event{Key: "k", Seq: uint64(evSeq) + 1, Time: base})
		tr.Resolve("k", uint64(resolveSeq), base.Add(time.Second))
		resolved := len(tr.Records()) == 1
		shouldResolve := uint64(resolveSeq) >= uint64(evSeq)+1
		return resolved == shouldResolve
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
