// Package profiler implements AReplica's offline performance profiler
// (§4, §5.3): when a new platform or region is onboarded, it runs
// instrumented invocations and transfers against the (simulated) clouds
// and fits the model's parameters — I, D, P per execution region; S, C,
// C' per (src, dst, loc) path; and the notification delay T_n per source
// region — as Normal distributions over the collected samples.
//
// The profiler measures the exact sequences the engine executes, so the
// fitted model predicts the engine rather than an idealization of it.
package profiler

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/faas"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/simrand"
	"repro/internal/stats"
	"repro/internal/world"
)

// Profiler collects performance samples from a world.
type Profiler struct {
	W *world.World
	// Rounds is the number of samples per parameter (default 12).
	Rounds int
	// ChunksPerRound is how many chunk transfers each path round times.
	ChunksPerRound int
	// PartSize is the chunk size c being profiled.
	PartSize int64
}

// New returns a Profiler with the default sampling effort.
func New(w *world.World) *Profiler {
	return &Profiler{W: w, Rounds: 12, ChunksPerRound: 4, PartSize: model.DefaultChunk}
}

// ProfileLoc measures the function-startup parameters of one region.
func (p *Profiler) ProfileLoc(loc cloud.RegionID) model.LocParams {
	svc := p.W.Region(loc)
	clock := p.W.Clock
	root := p.W.Tracer.StartTrace("profile "+string(loc), "profile-loc")
	defer root.End()

	// I: the caller-side async invocation API latency.
	var iSamples []float64
	for r := 0; r < p.Rounds; r++ {
		group := clock.NewGroup(1)
		t0 := clock.Now()
		svc.Fn.InvokeSpan(root, 1, func(*faas.Ctx) { group.Done() })
		iSamples = append(iSamples, clock.Since(t0).Seconds())
		group.Wait()
	}
	iDist := stats.FitNormal(iSamples)

	// D: cold-start readiness of a single invocation, net of I.
	var dSamples []float64
	for r := 0; r < p.Rounds; r++ {
		svc.Fn.FlushWarm()
		group := clock.NewGroup(1)
		t0 := clock.Now()
		var ready time.Duration
		svc.Fn.InvokeSpan(root, 1, func(*faas.Ctx) {
			ready = clock.Since(t0)
			group.Done()
		})
		group.Wait()
		d := ready.Seconds() - iDist.Mu
		if d < 0.001 {
			d = 0.001
		}
		dSamples = append(dSamples, d)
	}
	dDist := stats.FitNormal(dSamples)

	// P: scheduler postponement when a wave of cold instances scales out.
	const wave = 8
	var pSamples []float64
	for r := 0; r < p.Rounds; r++ {
		svc.Fn.FlushWarm()
		group := clock.NewGroup(wave)
		var mu sync.Mutex
		var maxReady time.Duration
		t0 := clock.Now()
		svc.Fn.InvokeSpan(root, wave, func(*faas.Ctx) {
			mu.Lock()
			if d := clock.Since(t0); d > maxReady {
				maxReady = d
			}
			mu.Unlock()
			group.Done()
		})
		group.Wait()
		v := maxReady.Seconds() - float64(wave)*iDist.Mu - dDist.Mu
		if v < 0 {
			v = 0
		}
		pSamples = append(pSamples, v)
	}

	return model.LocParams{I: iDist, D: dDist, P: stats.FitNormal(pSamples)}
}

// profileBuckets ensures the scratch buckets exist and returns their names.
func (p *Profiler) profileBuckets(src, dst *world.Services) (string, string) {
	sb := "areplica-profile-" + string(src.Region.ID())
	db := "areplica-profile-" + string(dst.Region.ID())
	// Ignore "already exists": re-profiling reuses the scratch buckets.
	_ = src.Obj.CreateBucket(sb, false)
	if dst != src {
		_ = dst.Obj.CreateBucket(db, false)
	}
	return sb, db
}

// ProfilePath measures S, C and C' of one (src, dst, loc) path by running
// instrumented replicator rounds at loc: each round cold-starts a fresh
// instance (sampling inter-instance variability), pays the client setup,
// and times chunk transfers both without (C) and with (C') the part-pool
// KV accesses.
func (p *Profiler) ProfilePath(src, dst, loc cloud.RegionID) model.PathParams {
	srcSvc := p.W.Region(src)
	dstSvc := p.W.Region(dst)
	locSvc := p.W.Region(loc)
	clock := p.W.Clock
	root := p.W.Tracer.StartTrace(fmt.Sprintf("profile %s->%s@%s", src, dst, loc), "profile-path")
	defer root.End()

	sb, db := p.profileBuckets(srcSvc, dstSvc)
	size := int64(p.ChunksPerRound) * p.PartSize
	seed := simrand.Seed("profile-obj", string(src), string(dst), string(loc))
	key := fmt.Sprintf("probe-%s-%s", dst, loc)
	if _, err := srcSvc.Obj.Put(sb, key, objstore.BlobOfSize(size, uint64(seed))); err != nil {
		panic(fmt.Sprintf("profiler: seeding probe object: %v", err))
	}

	var mu sync.Mutex
	var sSamples []float64
	var cGroups, cpGroups [][]float64         // one group per instance (round)
	var cpDownGroups, cpUpGroups [][]float64  // C' split at the leg boundary

	for r := 0; r < p.Rounds; r++ {
		r := r
		locSvc.Fn.FlushWarm() // fresh instance per round: new multiplier
		group := clock.NewGroup(1)
		locSvc.Fn.InvokeSpan(root, 1, func(ctx *faas.Ctx) {
			defer group.Done()
			rng := simrand.NewIndexed(r, "profiler", string(src), string(dst), string(loc))
			downScale := ctx.BandwidthScaleFor(srcSvc.Region.Provider)
			upScale := ctx.BandwidthScaleFor(dstSvc.Region.Provider)

			// S: client setup plus the whole-object request round-trips.
			t0 := clock.Now()
			p.W.SetupSleep(srcSvc.Region, dstSvc.Region, rng)
			_, _, err := srcSvc.Obj.GetRange(sb, key, 0, size)
			s := clock.Since(t0).Seconds()
			if err != nil {
				return
			}

			// C: per-chunk time in single-function mode (two legs).
			var cs []float64
			for i := 0; i < p.ChunksPerRound; i++ {
				t1 := clock.Now()
				p.W.MoveBytes(srcSvc.Region, ctx.Region, ctx.Region.Provider, p.PartSize, downScale, rng)
				p.W.MoveBytes(ctx.Region, dstSvc.Region, ctx.Region.Provider, p.PartSize, upScale, rng)
				cs = append(cs, clock.Since(t1).Seconds())
			}

			// C': per-chunk time under the part pool — claim, ranged GET,
			// two legs, part upload, completion update.
			taskKey := fmt.Sprintf("probe-task-%s-%s-%d", dst, loc, r)
			mpu, err := dstSvc.Obj.CreateMultipart(db, taskKey)
			if err != nil {
				return
			}
			// The midpoint between the two legs splits each C' sample
			// into its download stage (claim + ranged GET + src→loc leg)
			// and upload stage (loc→dst leg + part upload + completion),
			// fitting the pipelined data plane's max(down, up) prediction.
			var cps, downs, ups []float64
			for i := 0; i < p.ChunksPerRound; i++ {
				t1 := clock.Now()
				idx := locSvc.KV.Increment("areplica-profile", taskKey, "next", 1) - 1
				off := (idx % int64(p.ChunksPerRound)) * p.PartSize
				blob, _, err := srcSvc.Obj.GetRange(sb, key, off, p.PartSize)
				if err != nil {
					return
				}
				p.W.MoveBytes(srcSvc.Region, ctx.Region, ctx.Region.Provider, p.PartSize, downScale, rng)
				tMid := clock.Now()
				p.W.MoveBytes(ctx.Region, dstSvc.Region, ctx.Region.Provider, p.PartSize, upScale, rng)
				if _, err := dstSvc.Obj.UploadPart(mpu, i+1, blob); err != nil {
					return
				}
				locSvc.KV.Increment("areplica-profile", taskKey, "done", 1)
				cps = append(cps, clock.Since(t1).Seconds())
				downs = append(downs, tMid.Sub(t1).Seconds())
				ups = append(ups, clock.Since(tMid).Seconds())
			}
			dstSvc.Obj.AbortMultipart(mpu)

			mu.Lock()
			sSamples = append(sSamples, s)
			cGroups = append(cGroups, cs)
			cpGroups = append(cpGroups, cps)
			cpDownGroups = append(cpDownGroups, downs)
			cpUpGroups = append(cpUpGroups, ups)
			mu.Unlock()
		})
		group.Wait()
	}

	if len(sSamples) == 0 {
		panic("profiler: no path samples collected")
	}
	return model.PathParams{
		S:      stats.FitNormal(sSamples),
		C:      model.FitChunkTime(cGroups),
		Cp:     model.FitChunkTime(cpGroups),
		CpDown: model.FitChunkTime(cpDownGroups),
		CpUp:   model.FitChunkTime(cpUpGroups),
	}
}

// ProfileNotify measures the notification delivery delay T_n of a source
// region by putting probe objects into an instrumented bucket.
func (p *Profiler) ProfileNotify(src cloud.RegionID) stats.Normal {
	svc := p.W.Region(src)
	clock := p.W.Clock
	root := p.W.Tracer.StartTrace("profile notify "+string(src), "profile-notify")
	defer root.End()
	bucketName := "areplica-profile-notify-" + string(src)
	_ = svc.Obj.CreateBucket(bucketName, false)

	var mu sync.Mutex
	deliveries := make(map[string]time.Time)
	if err := svc.Obj.Subscribe(bucketName, func(ev objstore.Event) {
		mu.Lock()
		deliveries[ev.ETag] = clock.Now()
		mu.Unlock()
	}); err != nil {
		panic(fmt.Sprintf("profiler: subscribing: %v", err))
	}

	var samples []float64
	for r := 0; r < p.Rounds; r++ {
		res, err := svc.Obj.Put(bucketName, "probe", objstore.BlobOfSize(1024, uint64(r)+1))
		if err != nil {
			panic(fmt.Sprintf("profiler: probe put: %v", err))
		}
		putDone := clock.Now()
		// Wait for this probe's delivery.
		for {
			mu.Lock()
			at, ok := deliveries[res.ETag]
			mu.Unlock()
			if ok {
				samples = append(samples, at.Sub(putDone).Seconds())
				break
			}
			clock.Sleep(10 * time.Millisecond)
		}
	}
	return stats.FitNormal(samples)
}

// FitRule profiles everything a replication rule needs — both execution
// regions, both path variants, and the source's notification delay — and
// installs the results into m. Already-profiled regions and paths are
// skipped, so fitting many rules shares work.
func (p *Profiler) FitRule(m *model.Model, src, dst cloud.RegionID) {
	p.FitRuleWithRelays(m, src, dst, nil)
}

// FitRuleWithRelays is FitRule plus profiling of optional overlay relay
// regions (§6's extension): each relay gets startup parameters and a
// (src, dst, relay) path fit.
func (p *Profiler) FitRuleWithRelays(m *model.Model, src, dst cloud.RegionID, relays []cloud.RegionID) {
	locs := append([]cloud.RegionID{src, dst}, relays...)
	for _, loc := range locs {
		if _, ok := m.Loc(loc); !ok {
			m.SetLoc(loc, p.ProfileLoc(loc))
		}
		key := model.PathKey{Src: src, Dst: dst, Loc: loc}
		if _, ok := m.Path(key); !ok {
			m.SetPath(key, p.ProfilePath(src, dst, loc))
		}
	}
	if m.Notify(src).Mu == 0 {
		m.SetNotify(src, p.ProfileNotify(src))
	}
}
