package profiler

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/world"
)

const (
	src = cloud.RegionID("aws:us-east-1")
	dst = cloud.RegionID("azure:eastus")
)

func newProfiler() *Profiler {
	p := New(world.New())
	p.Rounds = 8
	p.ChunksPerRound = 3
	return p
}

func TestProfileLocShapes(t *testing.T) {
	p := newProfiler()
	lp := p.ProfileLoc(src)
	// I: milliseconds; D: sub-second cold start; P: small on AWS.
	if lp.I.Mu < 0.001 || lp.I.Mu > 0.05 {
		t.Errorf("I = %v", lp.I)
	}
	if lp.D.Mu < 0.05 || lp.D.Mu > 2 {
		t.Errorf("D = %v", lp.D)
	}
	if lp.P.Mu < 0 || lp.P.Mu > 2 {
		t.Errorf("P on AWS = %v, expected small", lp.P)
	}
	// GCP's 5-second scheduler rounds show up in P.
	gp := p.ProfileLoc("gcp:us-east1")
	if gp.P.Mu <= lp.P.Mu {
		t.Errorf("GCP P (%v) should exceed AWS P (%v)", gp.P.Mu, lp.P.Mu)
	}
}

func TestProfilePathShapes(t *testing.T) {
	p := newProfiler()
	pp := p.ProfilePath(src, dst, src)
	if pp.S.Mu < 0.05 || pp.S.Mu > 3 {
		t.Errorf("S = %v", pp.S)
	}
	// An 8 MB chunk over a few-hundred-Mbps path: tenths of a second.
	if pp.C.Mu < 0.02 || pp.C.Mu > 2 {
		t.Errorf("C = %+v", pp.C)
	}
	// Pool scheduling adds KV and request overhead: C' > C.
	if pp.Cp.Mu <= pp.C.Mu {
		t.Errorf("C' (%v) should exceed C (%v)", pp.Cp.Mu, pp.C.Mu)
	}
	// Both variance components must be populated on a cross-cloud path.
	if pp.C.Between <= 0 || pp.C.Within <= 0 {
		t.Errorf("variance split missing: %+v", pp.C)
	}
}

func TestProfilePathExecutionSidesDiffer(t *testing.T) {
	p := newProfiler()
	atSrc := p.ProfilePath(src, dst, src)
	atDst := p.ProfilePath(src, dst, dst)
	// The Azure side is slower on this pair (netsim exec factors).
	if atDst.C.Mu <= atSrc.C.Mu {
		t.Errorf("dst-side C (%v) should exceed src-side C (%v)", atDst.C.Mu, atSrc.C.Mu)
	}
}

func TestProfileNotifyMatchesPlatform(t *testing.T) {
	p := newProfiler()
	n := p.ProfileNotify(src)
	// Calibrated AWS notification delay is ~0.35 s.
	if n.Mu < 0.1 || n.Mu > 1.0 {
		t.Errorf("notify delay = %v", n)
	}
}

func TestFitRuleFillsModelAndSkipsRepeats(t *testing.T) {
	p := newProfiler()
	m := model.New()
	p.FitRule(m, src, dst)
	if _, ok := m.Loc(src); !ok {
		t.Fatal("src loc not profiled")
	}
	if _, ok := m.Loc(dst); !ok {
		t.Fatal("dst loc not profiled")
	}
	for _, loc := range []cloud.RegionID{src, dst} {
		if _, ok := m.Path(model.PathKey{Src: src, Dst: dst, Loc: loc}); !ok {
			t.Fatalf("path at %s not profiled", loc)
		}
	}
	if m.Notify(src).Mu == 0 {
		t.Fatal("notify not profiled")
	}
	// Re-fitting is a cheap no-op (virtual time does not advance).
	before := p.W.Clock.Now()
	p.FitRule(m, src, dst)
	if !p.W.Clock.Now().Equal(before) {
		t.Fatal("second FitRule re-profiled")
	}
	// A second rule sharing the source only profiles the new pieces.
	p.FitRule(m, src, "gcp:us-east1")
	if _, ok := m.Path(model.PathKey{Src: src, Dst: "gcp:us-east1", Loc: src}); !ok {
		t.Fatal("new path not profiled")
	}
}

func TestProfiledModelPlansSanely(t *testing.T) {
	// End-to-end: profile, then check the model's single-function 1 GB
	// estimate lands in a plausible band for this path.
	p := newProfiler()
	m := model.New()
	p.FitRule(m, src, dst)
	d, err := m.ReplTime(src, dst, src, 1<<30, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if mean := d.Mean(); mean < 5 || mean > 60 {
		t.Errorf("1GB single-function estimate = %v s", mean)
	}
	d32, err := m.ReplTime(src, dst, src, 1<<30, 32, false)
	if err != nil {
		t.Fatal(err)
	}
	if d32.Mean() >= d.Mean() {
		t.Error("32 functions should be predicted faster than 1")
	}
}
