package batching

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/objstore"
	"repro/internal/simclock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// harness simulates a source object's metadata and collects dispatches.
type harness struct {
	clock *simclock.Clock
	mu    sync.Mutex
	heads map[string]objstore.Meta
	out   []objstore.Event
}

func newHarness() *harness {
	return &harness{clock: simclock.New(epoch), heads: make(map[string]objstore.Meta)}
}

func (h *harness) setHead(key string, seq uint64, etag string, at time.Time) {
	h.mu.Lock()
	h.heads[key] = objstore.Meta{Key: key, Size: 100 << 20, ETag: etag, Seq: seq, Created: at}
	h.mu.Unlock()
}

func (h *harness) head(key string) (objstore.Meta, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.heads[key]
	if !ok {
		return objstore.Meta{}, errors.New("gone")
	}
	return m, nil
}

func (h *harness) dispatch(ev objstore.Event) {
	h.mu.Lock()
	h.out = append(h.out, ev)
	h.mu.Unlock()
}

func (h *harness) dispatched() []objstore.Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]objstore.Event(nil), h.out...)
}

func (h *harness) batcher(slo time.Duration, est time.Duration) *Batcher {
	return New(h.clock, slo, time.Second,
		func(int64) time.Duration { return est },
		h.head, h.dispatch)
}

func (h *harness) putEvent(key string, seq uint64, etag string) objstore.Event {
	now := h.clock.Now()
	h.setHead(key, seq, etag, now)
	return objstore.Event{Type: objstore.EventPut, Bucket: "b", Key: key,
		Size: 100 << 20, ETag: etag, Seq: seq, Time: now}
}

func TestNoSlackDispatchesImmediately(t *testing.T) {
	h := newHarness()
	// SLO 10s, estimate 9.5s: 9.5 + 1 > 10 → immediate.
	b := h.batcher(10*time.Second, 9500*time.Millisecond)
	b.Submit(h.putEvent("k", 1, "e1"))
	if got := h.dispatched(); len(got) != 1 || got[0].ETag != "e1" {
		t.Fatalf("dispatched = %v", got)
	}
	st := b.Stats()
	if st.Immediate != 1 || st.Delayed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	h.clock.Quiesce()
}

func TestSlackDelaysTowardDeadline(t *testing.T) {
	h := newHarness()
	// SLO 30s, estimate 5s: fire at ~24s.
	b := h.batcher(30*time.Second, 5*time.Second)
	b.Submit(h.putEvent("k", 1, "e1"))
	if len(h.dispatched()) != 0 {
		t.Fatal("should not dispatch immediately")
	}
	h.clock.Quiesce()
	got := h.dispatched()
	if len(got) != 1 {
		t.Fatalf("dispatched = %v", got)
	}
	fired := h.clock.Now().Sub(epoch)
	if fired < 20*time.Second || fired > 29*time.Second {
		t.Fatalf("timer fired at +%v, want ~24s", fired)
	}
	_ = b
}

func TestUpdatesCoalesceIntoNewest(t *testing.T) {
	h := newHarness()
	b := h.batcher(30*time.Second, 2*time.Second)
	// Ten updates, one per second; all within one SLO window.
	for i := 1; i <= 10; i++ {
		b.Submit(h.putEvent("k", uint64(i), etagN(i)))
		h.clock.Sleep(time.Second)
	}
	h.clock.Quiesce()
	got := h.dispatched()
	if len(got) == 0 {
		t.Fatal("nothing dispatched")
	}
	// Far fewer dispatches than updates, and the last dispatch carries the
	// newest version.
	if len(got) >= 10 {
		t.Fatalf("dispatched %d of 10 updates; batching saved nothing", len(got))
	}
	if last := got[len(got)-1]; last.Seq != 10 {
		t.Fatalf("last dispatch seq = %d, want 10", last.Seq)
	}
	if st := b.Stats(); st.Coalesced == 0 {
		t.Fatalf("no coalescing recorded: %+v", st)
	}
}

func TestDeadlinesRespected(t *testing.T) {
	// Every dispatch must happen within SLO - estimate of its event time
	// (so replication can still finish inside the SLO).
	h := newHarness()
	slo, est := 30*time.Second, 3*time.Second
	b := h.batcher(slo, est)
	var submitted []objstore.Event
	for i := 1; i <= 5; i++ {
		ev := h.putEvent("k", uint64(i), etagN(i))
		submitted = append(submitted, ev)
		b.Submit(ev)
		h.clock.Sleep(4 * time.Second)
	}
	h.clock.Quiesce()
	for _, ev := range submitted {
		deadline := ev.Time.Add(slo)
		covered := false
		for _, d := range h.dispatched() {
			// A dispatch covers ev if it is the same or a newer version and
			// left enough budget before ev's deadline.
			dispatchBy := deadline.Add(-est)
			if d.Seq >= ev.Seq && !d.Time.After(dispatchBy) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("event seq %d not covered before its deadline", ev.Seq)
		}
	}
}

func TestDeletePassesThrough(t *testing.T) {
	h := newHarness()
	b := h.batcher(time.Minute, time.Second)
	b.Submit(objstore.Event{Type: objstore.EventDelete, Key: "k", Seq: 3, Time: h.clock.Now()})
	if got := h.dispatched(); len(got) != 1 || got[0].Type != objstore.EventDelete {
		t.Fatalf("dispatched = %v", got)
	}
	h.clock.Quiesce()
}

func TestZeroSLOPassesThrough(t *testing.T) {
	h := newHarness()
	b := h.batcher(0, time.Second)
	b.Submit(h.putEvent("k", 1, "e1"))
	if len(h.dispatched()) != 1 {
		t.Fatal("zero SLO must not delay")
	}
	h.clock.Quiesce()
	_ = b
}

func TestDeletedObjectTimerSkips(t *testing.T) {
	h := newHarness()
	b := h.batcher(30*time.Second, time.Second)
	b.Submit(h.putEvent("k", 1, "e1"))
	// Object removed before the timer fires.
	h.mu.Lock()
	delete(h.heads, "k")
	h.mu.Unlock()
	h.clock.Quiesce()
	if got := h.dispatched(); len(got) != 0 {
		t.Fatalf("deleted object should not dispatch: %v", got)
	}
	_ = b
}

func etagN(i int) string {
	return string(rune('a' + i))
}
