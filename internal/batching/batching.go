// Package batching implements SLO-bounded batching (§5.4, Algorithm 4).
// When the SLO leaves slack beyond the estimated replication time, the
// batcher delays an object's replication toward its deadline so that rapid
// successive updates collapse into a single transfer of the newest
// version; versions superseded before their timers fire are skipped
// entirely. Cost then stays nearly flat as update frequency grows
// (Figure 22) while the SLO still holds.
package batching

import (
	"sync"
	"time"

	"repro/internal/objstore"
	"repro/internal/simclock"
)

// EstimateFn predicts the replication time of an object of the given size
// (the planner's fastest-plan estimate, T_rep in Algorithm 4).
type EstimateFn func(size int64) time.Duration

// HeadFn fetches the current metadata of a source object.
type HeadFn func(key string) (objstore.Meta, error)

// DispatchFn hands an event to the replication engine.
type DispatchFn func(ev objstore.Event)

// DelayFn schedules fn after d — in production a cloud-managed serverless
// workflow Wait state (§7), so delayed tasks survive function restarts.
type DelayFn func(d time.Duration, fn func())

// Stats counts batcher outcomes.
type Stats struct {
	Submitted  int64 // events received
	Immediate  int64 // dispatched with no slack
	Delayed    int64 // timers armed
	Coalesced  int64 // versions superseded before their timer fired
	Dispatched int64 // events actually sent to the engine
}

// Batcher delays replication toward the SLO deadline.
type Batcher struct {
	clock    *simclock.Clock
	slo      time.Duration
	epsilon  time.Duration
	estimate EstimateFn
	head     HeadFn
	dispatch DispatchFn

	delay DelayFn

	mu         sync.Mutex
	dispatched map[string]uint64 // per key: newest seq handed to the engine
	stats      Stats
}

// New returns a Batcher. epsilon is the safety margin subtracted from the
// deadline (default 1s when zero).
func New(clock *simclock.Clock, slo time.Duration, epsilon time.Duration, estimate EstimateFn, head HeadFn, dispatch DispatchFn) *Batcher {
	if epsilon <= 0 {
		epsilon = time.Second
	}
	return &Batcher{
		clock:      clock,
		slo:        slo,
		epsilon:    epsilon,
		estimate:   estimate,
		head:       head,
		dispatch:   dispatch,
		delay:      clock.Delay,
		dispatched: make(map[string]uint64),
	}
}

// SetDelayer replaces the timer backend (core wires the region's
// serverless workflow service here so Wait states are billed).
func (b *Batcher) SetDelayer(d DelayFn) { b.delay = d }

// Stats returns a snapshot of the batcher's counters.
func (b *Batcher) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Submit receives a source-bucket notification. DELETE events pass through
// immediately; PUT events are delayed toward their deadline when the SLO
// allows.
func (b *Batcher) Submit(ev objstore.Event) {
	b.mu.Lock()
	b.stats.Submitted++
	b.mu.Unlock()

	if ev.Type == objstore.EventDelete || b.slo <= 0 {
		b.fire(ev)
		return
	}
	deadline := ev.Time.Add(b.slo)
	est := b.estimate(ev.Size)
	now := b.clock.Now()
	if now.Add(est + b.epsilon).After(deadline) {
		// No slack: replicate immediately (Algorithm 4's deadline branch).
		b.mu.Lock()
		b.stats.Immediate++
		b.mu.Unlock()
		b.fire(ev)
		return
	}
	b.mu.Lock()
	b.stats.Delayed++
	b.mu.Unlock()
	b.delay(deadline.Sub(now)-est-b.epsilon, func() { b.timerFired(ev) })
}

// timerFired re-examines a delayed version: if a newer version has already
// been dispatched it is skipped; otherwise the *latest* source version is
// replicated, covering this one.
func (b *Batcher) timerFired(ev objstore.Event) {
	b.mu.Lock()
	covered := b.dispatched[ev.Key] >= ev.Seq
	if covered {
		b.stats.Coalesced++
	}
	b.mu.Unlock()
	if covered {
		return
	}
	meta, err := b.head(ev.Key)
	if err != nil {
		// The object was deleted; the DELETE event converges the replica.
		return
	}
	if meta.Seq > ev.Seq {
		// Replicate the newest version; our version rides along (its delay
		// is resolved when the newer version lands).
		b.mu.Lock()
		b.stats.Coalesced++
		b.mu.Unlock()
	}
	b.fire(objstore.Event{
		Type: objstore.EventPut, Bucket: ev.Bucket, Key: meta.Key,
		Size: meta.Size, ETag: meta.ETag, Seq: meta.Seq, Time: meta.Created,
	})
}

func (b *Batcher) fire(ev objstore.Event) {
	b.mu.Lock()
	if b.dispatched[ev.Key] >= ev.Seq && ev.Type == objstore.EventPut {
		// Already covered by a newer dispatch that raced us.
		b.stats.Coalesced++
		b.mu.Unlock()
		return
	}
	if ev.Seq > b.dispatched[ev.Key] {
		b.dispatched[ev.Key] = ev.Seq
	}
	b.stats.Dispatched++
	b.mu.Unlock()
	b.dispatch(ev)
}
