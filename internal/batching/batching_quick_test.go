package batching

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/objstore"
)

// Property: whatever the update pattern, every submitted PUT is covered by
// a dispatch of an equal-or-newer version that leaves at least the
// estimated replication time before the event's deadline; and the batcher
// never dispatches more events than it was given.
func TestBatcherDeadlineProperty(t *testing.T) {
	f := func(seed int64, nRaw, sloRaw, estRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 1
		slo := time.Duration(int(sloRaw%50)+8) * time.Second
		est := time.Duration(int(estRaw%5)+1) * time.Second

		h := newHarness()
		type dispatched struct {
			ev objstore.Event
			at time.Time
		}
		var outMu sync.Mutex
		var out []dispatched
		b := New(h.clock, slo, time.Second,
			func(int64) time.Duration { return est },
			h.head, func(ev objstore.Event) {
				outMu.Lock()
				out = append(out, dispatched{ev: ev, at: h.clock.Now()})
				outMu.Unlock()
			})

		var submitted []objstore.Event
		for i := 1; i <= n; i++ {
			key := string(rune('a' + rng.Intn(2)))
			// Advance by a random gap, then submit a new version.
			h.clock.Sleep(time.Duration(rng.Intn(9000)) * time.Millisecond)
			now := h.clock.Now()
			h.setHead(key, uint64(i), etagN(i), now)
			ev := objstore.Event{Type: objstore.EventPut, Key: key,
				Size: 100 << 20, ETag: etagN(i), Seq: uint64(i), Time: now}
			submitted = append(submitted, ev)
			b.Submit(ev)
		}
		h.clock.Quiesce()

		if len(out) > len(submitted) {
			return false
		}
		for _, ev := range submitted {
			deadline := ev.Time.Add(slo)
			covered := false
			for _, d := range out {
				if d.ev.Key == ev.Key && d.ev.Seq >= ev.Seq && !d.at.After(deadline.Add(-est)) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
