package faas

import (
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// armChaos wires a profile into a fresh AWS platform.
func armChaos(t *testing.T, p chaos.Profile) (*simclock.Clock, *Platform, *telemetry.Registry) {
	t.Helper()
	clk, plat, _ := newPlatform(t, cloud.AWS)
	reg := telemetry.NewRegistry()
	plat.SetTelemetry(reg)
	plat.SetChaos(chaos.NewInjector(clk, p, reg))
	return clk, plat, reg
}

// TestChaosCrashStopsProgress: a rate-1 crash profile makes every
// instance stop making progress partway through; handlers observe it via
// ctx.Alive() and the crash is counted.
func TestChaosCrashStopsProgress(t *testing.T) {
	clk, plat, reg := armChaos(t, chaos.Profile{
		Name: "t", FnCrashRate: 1, FnCrashMax: 5 * time.Second,
	})

	var mu sync.Mutex
	aliveAtStart, aliveAtEnd := 0, 0
	plat.Invoke(4, func(ctx *Ctx) {
		mu.Lock()
		if ctx.Alive() {
			aliveAtStart++
		}
		mu.Unlock()
		ctx.Clock.Sleep(10 * time.Second) // sleep past any possible crash instant
		mu.Lock()
		if ctx.Alive() {
			aliveAtEnd++
		}
		mu.Unlock()
	})
	clk.Quiesce()

	if aliveAtStart != 4 {
		t.Fatalf("%d of 4 instances alive at start, want all (crash comes later)", aliveAtStart)
	}
	if aliveAtEnd != 0 {
		t.Fatalf("%d instances still alive after the crash instant, want 0", aliveAtEnd)
	}
	if got := plat.Stats().Crashes; got != 4 {
		t.Fatalf("Stats().Crashes = %d, want 4", got)
	}
	if got := reg.Counter("faas.crashes").Value(); got != 4 {
		t.Fatalf("faas.crashes = %d, want 4", got)
	}
}

// TestChaosCrashedInstancesNotWarmPooled: a crashed instance must never
// be reused warm — the next invocation cold-starts.
func TestChaosCrashedInstancesNotWarmPooled(t *testing.T) {
	clk, plat, _ := armChaos(t, chaos.Profile{
		Name: "t", FnCrashRate: 1, FnCrashMax: time.Second,
	})
	plat.Invoke(1, func(ctx *Ctx) { ctx.Clock.Sleep(2 * time.Second) })
	clk.Quiesce()

	plat.SetChaos(nil) // heal; only pooling behaviour is under test now
	plat.Invoke(1, func(ctx *Ctx) {})
	clk.Quiesce()
	if st := plat.Stats(); st.ColdStarts != 2 || st.WarmStarts != 0 {
		t.Fatalf("stats = %+v, want 2 cold starts and no warm reuse of the crashed instance", st)
	}
}

// TestChaosColdStormReclaimsWarmInstances: with a storm raging, a warm
// instance is reclaimed under the invoker and the invocation cold-starts.
func TestChaosColdStormReclaimsWarmInstances(t *testing.T) {
	clk, plat, _ := newPlatform(t, cloud.AWS)
	plat.Invoke(1, func(ctx *Ctx) {})
	clk.Quiesce()
	if st := plat.Stats(); st.ColdStarts != 1 || st.WarmStarts != 0 {
		t.Fatalf("warmup stats = %+v", st)
	}

	plat.SetChaos(chaos.NewInjector(clk, chaos.Profile{Name: "t", FnColdStormRate: 1}, nil))
	plat.Invoke(1, func(ctx *Ctx) {})
	clk.Quiesce()
	if st := plat.Stats(); st.ColdStarts != 2 || st.WarmStarts != 0 {
		t.Fatalf("stats = %+v, want the storm to force a second cold start", st)
	}
}

// TestChaosStragglerCollapsesBandwidth: straggler instances keep a
// collapsed bandwidth multiplier for their lifetime.
func TestChaosStragglerCollapsesBandwidth(t *testing.T) {
	clk, plat, _ := armChaos(t, chaos.Profile{
		Name: "t", FnStragglerRate: 1, FnStragglerFactor: 0.2,
	})
	var straggler float64
	plat.Invoke(1, func(ctx *Ctx) { straggler = ctx.Instance.BwMult })
	clk.Quiesce()

	clk2, plat2, _ := newPlatform(t, cloud.AWS)
	var healthy float64
	plat2.Invoke(1, func(ctx *Ctx) { healthy = ctx.Instance.BwMult })
	clk2.Quiesce()

	if straggler >= healthy*0.5 {
		t.Fatalf("straggler multiplier %.3f vs healthy %.3f; collapse factor not applied", straggler, healthy)
	}
}
