package faas

import "repro/internal/simclock"

// Lane is a concurrent sub-lane of one function instance: a second
// stream of work running inside the same execution, started with Ctx.Go
// and joined with Wait. The engine's double-buffered data plane uses a
// lane to overlap the next part's download with the current part's
// upload.
type Lane struct {
	done *simclock.Group
}

// Go runs fn as a concurrent sub-lane of the instance on the virtual
// clock. The sub-context shares the instance (and therefore its
// bandwidth multiplier and crash fate), configuration and start time;
// only the trace span differs — it forks onto its own lane under name so
// overlapped work renders and attributes as concurrent.
//
// The handler must Wait for every lane it started before returning:
// execution is billed by the handler's wall duration, and a lane must
// not outlive the instance it runs in.
func (c *Ctx) Go(name string, fn func(sub *Ctx)) *Lane {
	sub := &Ctx{
		Instance: c.Instance,
		Region:   c.Region,
		Config:   c.Config,
		Started:  c.Started,
		Clock:    c.Clock,
		Span:     c.Span.Fork(name),
		crashAt:  c.crashAt,
		hasCrash: c.hasCrash,
	}
	l := &Lane{done: c.Clock.NewGroup(1)}
	c.Clock.GoCall(func() {
		defer l.done.Done()
		defer sub.Span.End()
		fn(sub)
	})
	return l
}

// Wait blocks the calling actor until the lane's function has returned.
func (l *Lane) Wait() { l.done.Wait() }
