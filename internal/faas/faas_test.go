package faas

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/simclock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newPlatform(t *testing.T, provider cloud.Provider) (*simclock.Clock, *Platform, *pricing.Meter) {
	t.Helper()
	var region cloud.Region
	switch provider {
	case cloud.AWS:
		region = cloud.MustLookup("aws:us-east-1")
	case cloud.Azure:
		region = cloud.MustLookup("azure:eastus")
	default:
		region = cloud.MustLookup("gcp:us-east1")
	}
	clk := simclock.New(epoch)
	meter := pricing.NewMeter()
	p := New(clk, region, netsim.New(), meter, DefaultConfig(provider))
	return clk, p, meter
}

func TestInvokeRunsAllHandlers(t *testing.T) {
	clk, p, _ := newPlatform(t, cloud.AWS)
	var ran atomic.Int32
	p.Invoke(10, func(ctx *Ctx) {
		ran.Add(1)
		ctx.Clock.Sleep(time.Second)
	})
	clk.Quiesce()
	if ran.Load() != 10 {
		t.Fatalf("ran %d of 10", ran.Load())
	}
	if st := p.Stats(); st.Invocations != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInvokePaysSerialAPILatency(t *testing.T) {
	clk, p, _ := newPlatform(t, cloud.AWS)
	start := clk.Now()
	p.Invoke(50, func(ctx *Ctx) {})
	callerDone := clk.Since(start)
	clk.Quiesce()
	// I ~ 8ms per call, so 50 calls should cost the caller roughly 0.4 s.
	if callerDone < 150*time.Millisecond || callerDone > 2*time.Second {
		t.Fatalf("caller paid %v for 50 invokes, want ~0.4s", callerDone)
	}
}

func TestColdThenWarmStarts(t *testing.T) {
	clk, p, _ := newPlatform(t, cloud.AWS)
	var first, second time.Duration
	start := clk.Now()
	done := clk.NewEvent()
	p.Invoke(1, func(ctx *Ctx) { first = ctx.Clock.Since(start); done.Trigger() })
	done.Wait()
	clk.Quiesce()

	start2 := clk.Now()
	done2 := clk.NewEvent()
	p.Invoke(1, func(ctx *Ctx) { second = ctx.Clock.Since(start2); done2.Trigger() })
	done2.Wait()
	clk.Quiesce()

	if second >= first {
		t.Fatalf("warm start (%v) should beat cold start (%v)", second, first)
	}
	st := p.Stats()
	if st.ColdStarts != 1 || st.WarmStarts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWarmInstanceKeepsItsMultiplier(t *testing.T) {
	clk, p, _ := newPlatform(t, cloud.Azure)
	var mu sync.Mutex
	mults := map[string][]float64{}
	for i := 0; i < 3; i++ {
		p.Invoke(1, func(ctx *Ctx) {
			mu.Lock()
			mults[ctx.Instance.ID] = append(mults[ctx.Instance.ID], ctx.Instance.BwMult)
			mu.Unlock()
		})
		clk.Quiesce()
	}
	if len(mults) != 1 {
		t.Fatalf("expected one reused instance, got %d: %v", len(mults), mults)
	}
	for _, ms := range mults {
		for _, m := range ms[1:] {
			if m != ms[0] {
				t.Fatal("multiplier changed across warm reuses")
			}
		}
	}
}

func TestWarmPoolExpiry(t *testing.T) {
	clk, p, _ := newPlatform(t, cloud.AWS)
	p.Invoke(1, func(ctx *Ctx) {})
	clk.Quiesce()
	clk.Sleep(p.Config().KeepWarm + time.Minute)
	p.Invoke(1, func(ctx *Ctx) {})
	clk.Quiesce()
	st := p.Stats()
	if st.ColdStarts != 2 || st.WarmStarts != 0 {
		t.Fatalf("expired warm instance should not be reused: %+v", st)
	}
}

func TestInstanceMultipliersVary(t *testing.T) {
	clk, p, _ := newPlatform(t, cloud.Azure)
	var mu sync.Mutex
	var mults []float64
	p.Invoke(64, func(ctx *Ctx) {
		mu.Lock()
		mults = append(mults, ctx.Instance.BwMult)
		mu.Unlock()
		ctx.Clock.Sleep(time.Second) // hold instances so all 64 are distinct
	})
	clk.Quiesce()
	lo, hi := mults[0], mults[0]
	for _, m := range mults {
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if hi/lo < 1.5 {
		t.Fatalf("instance spread %.2fx too tight for Azure", hi/lo)
	}
}

func TestSchedulerPostponementOnGCP(t *testing.T) {
	// Average first-instance readiness over several fresh platforms: GCP
	// (5s scheduler rounds) must be visibly slower to scale out than AWS.
	avgStart := func(provider cloud.Provider) time.Duration {
		var total time.Duration
		const rounds = 10
		for r := 0; r < rounds; r++ {
			clk := simclock.New(epoch.Add(time.Duration(r) * time.Hour))
			region := cloud.MustLookup("aws:us-east-1")
			if provider == cloud.GCP {
				region = cloud.MustLookup("gcp:us-east1")
			}
			p := New(clk, region, netsim.New(), pricing.NewMeter(), DefaultConfig(provider))
			start := clk.Now()
			var mu sync.Mutex
			var maxReady time.Duration
			p.Invoke(8, func(ctx *Ctx) {
				mu.Lock()
				if d := ctx.Clock.Since(start); d > maxReady {
					maxReady = d
				}
				mu.Unlock()
			})
			clk.Quiesce()
			total += maxReady
		}
		return total / rounds
	}
	aws, gcp := avgStart(cloud.AWS), avgStart(cloud.GCP)
	if gcp <= aws {
		t.Fatalf("GCP scale-out (%v) should be slower than AWS (%v)", gcp, aws)
	}
}

func TestConcurrencyLimitThrottles(t *testing.T) {
	clk, p, _ := newPlatform(t, cloud.AWS)
	cfg := DefaultConfig(cloud.AWS)
	cfg.MaxConcurrency = 4
	p = New(clk, cloud.MustLookup("aws:us-east-1"), netsim.New(), pricing.NewMeter(), cfg)
	var concurrent, peak atomic.Int32
	p.Invoke(16, func(ctx *Ctx) {
		c := concurrent.Add(1)
		for {
			old := peak.Load()
			if c <= old || peak.CompareAndSwap(old, c) {
				break
			}
		}
		ctx.Clock.Sleep(time.Second)
		concurrent.Add(-1)
	})
	clk.Quiesce()
	if peak.Load() > 4 {
		t.Fatalf("peak concurrency %d exceeded limit 4", peak.Load())
	}
	if st := p.Stats(); st.MaxConcurrent > 4 {
		t.Fatalf("stats peak %d exceeded limit", st.MaxConcurrent)
	}
}

func TestBillingPerGBSecond(t *testing.T) {
	clk, p, m := newPlatform(t, cloud.AWS)
	p.Invoke(1, func(ctx *Ctx) { ctx.Clock.Sleep(10 * time.Second) })
	clk.Quiesce()
	got := m.Item("fn:compute")
	want := pricing.FnComputeCost(cloud.AWS, 1.0, 10*time.Second) // 1 GB config
	if got < want*0.99 || got > want*1.2 {
		t.Fatalf("compute cost %v, want about %v", got, want)
	}
	if m.Item("fn:invoke") != pricing.BookFor(cloud.AWS).FnInvocation {
		t.Fatalf("invoke fee = %v", m.Item("fn:invoke"))
	}
}

func TestExecLimitTimeout(t *testing.T) {
	clk, p, m := newPlatform(t, cloud.AWS)
	p.Invoke(1, func(ctx *Ctx) { ctx.Clock.Sleep(20 * time.Minute) }) // over the 15 min cap
	clk.Quiesce()
	if st := p.Stats(); st.Timeouts != 1 {
		t.Fatalf("timeouts = %d", st.Timeouts)
	}
	capCost := pricing.FnComputeCost(cloud.AWS, 1.0, 15*time.Minute)
	if got := m.Item("fn:compute"); got > capCost*1.01 {
		t.Fatalf("billed %v beyond the execution cap %v", got, capCost)
	}
}

func TestInvokeLocalRunsInline(t *testing.T) {
	clk, p, _ := newPlatform(t, cloud.AWS)
	var ran bool
	p.InvokeLocal(func(ctx *Ctx) {
		ran = true
		ctx.Clock.Sleep(time.Second)
	})
	// InvokeLocal is synchronous: the handler already ran.
	if !ran {
		t.Fatal("handler did not run inline")
	}
	clk.Quiesce()
}

func TestBandwidthScaleCombinesConfigAndInstance(t *testing.T) {
	clk, _, _ := newPlatform(t, cloud.AWS)
	cfg := DefaultConfig(cloud.AWS)
	cfg.MemMB = 512 // half the sweet spot
	p := New(clk, cloud.MustLookup("aws:us-east-1"), netsim.New(), pricing.NewMeter(), cfg)
	var scale, mult float64
	p.Invoke(1, func(ctx *Ctx) { scale, mult = ctx.BandwidthScale(), ctx.Instance.BwMult })
	clk.Quiesce()
	if want := mult * 0.5; scale < want*0.99 || scale > want*1.01 {
		t.Fatalf("scale = %v, want %v (mult %v x 0.5)", scale, want, mult)
	}
}
