// Package faas simulates a serverless function platform (AWS Lambda,
// Azure Functions, Google Cloud Run Functions) on the virtual clock. It
// models the paper's function-startup decomposition (§5.3):
//
//	T_func = I·n + D + P
//
// where I is the per-call async invocation API latency paid serially by
// the invoker, D is instance startup delay (skipped on warm starts), and P
// is the platform scheduler's postponement when new instances must be
// added (Cloud Run's scheduler runs in ~5 s rounds; Azure behaves
// similarly). Each instance carries a persistent bandwidth multiplier
// drawn from the platform's lognormal (netsim), producing the >2x
// inter-instance spread of Figure 9. Execution is billed per GB-second
// plus a per-invocation fee.
package faas

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/netsim"
	"repro/internal/pricing"
	"repro/internal/simclock"
	"repro/internal/simrand"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Config describes a deployed function's runtime characteristics.
type Config struct {
	MemMB          int           // configured memory
	VCPU           float64       // configured vCPUs (GCP only; 0 = platform default)
	InvokeLatency  stats.Normal  // I: async invoke API call, seconds
	ColdStart      stats.Normal  // D: instance startup, seconds
	SchedulerRound time.Duration // P granularity; 0 means no postponement
	ExecLimit      time.Duration // hard execution time limit
	MaxConcurrency int           // account-level concurrent instance limit
	KeepWarm       time.Duration // idle window before an instance is reaped
}

// DefaultConfig returns the calibrated configuration the paper's
// evaluation uses for each platform (§8 Setup).
func DefaultConfig(p cloud.Provider) Config {
	switch p {
	case cloud.AWS:
		return Config{
			MemMB:          1024,
			InvokeLatency:  stats.N(0.008, 0.002),
			ColdStart:      stats.N(0.25, 0.08),
			SchedulerRound: 0,
			ExecLimit:      15 * time.Minute,
			MaxConcurrency: 1000,
			KeepWarm:       10 * time.Minute,
		}
	case cloud.Azure:
		return Config{
			MemMB:          2048,
			InvokeLatency:  stats.N(0.012, 0.004),
			ColdStart:      stats.N(0.60, 0.20),
			SchedulerRound: 5 * time.Second,
			ExecLimit:      10 * time.Minute,
			MaxConcurrency: 1000,
			KeepWarm:       10 * time.Minute,
		}
	case cloud.GCP:
		return Config{
			MemMB:          1024,
			VCPU:           1,
			InvokeLatency:  stats.N(0.010, 0.003),
			ColdStart:      stats.N(0.45, 0.15),
			SchedulerRound: 5 * time.Second,
			ExecLimit:      60 * time.Minute,
			MaxConcurrency: 1000,
			KeepWarm:       15 * time.Minute,
		}
	}
	return Config{MemMB: 1024, InvokeLatency: stats.N(0.01, 0.003), ColdStart: stats.N(0.4, 0.1),
		ExecLimit: 15 * time.Minute, MaxConcurrency: 1000, KeepWarm: 10 * time.Minute}
}

// Stats is a snapshot of platform activity counters.
type Stats struct {
	Invocations   int64
	ColdStarts    int64
	WarmStarts    int64
	Timeouts      int64
	Crashes       int64 // instances that stopped mid-execution (chaos)
	MaxConcurrent int
}

// Instance is one function instance. Its bandwidth multiplier persists
// across warm reuses, so a slow instance stays slow (Figure 9).
type Instance struct {
	ID     string
	BwMult float64

	idleSince time.Time
}

// Ctx is the execution context handed to a function handler.
type Ctx struct {
	Instance *Instance
	Region   cloud.Region
	Config   Config
	Started  time.Time
	Clock    *simclock.Clock
	// Span is the instance's execution span when the invocation carried
	// trace context (nil otherwise; all Span methods no-op on nil).
	Span *telemetry.Span

	// crashAt, when hasCrash is set, is the virtual instant this instance
	// stops making progress (chaos instance crash). Handlers poll Alive at
	// loop boundaries; the platform refuses to warm-pool a crashed instance.
	crashAt  time.Time
	hasCrash bool
}

// Alive reports whether the instance is still making progress. A handler
// that observes false must abandon its work and return — the real-world
// analogue is the instance simply ceasing to exist mid-execution, with the
// platform's retry (or the caller's) picking up the pieces.
func (c *Ctx) Alive() bool {
	return !c.hasCrash || c.Clock.Now().Before(c.crashAt)
}

// Kill crashes the instance at the current virtual instant: Alive turns
// false immediately, billing stops here, and the instance never returns to
// the warm pool. Crash-point injection uses it to stop an instance at an
// exact step of a handler's state machine, where the probabilistic FnCrash
// draw could only land nearby.
func (c *Ctx) Kill() {
	if c.hasCrash && c.crashAt.Before(c.Clock.Now()) {
		return // already dead at an earlier instant
	}
	c.hasCrash = true
	c.crashAt = c.Clock.Now()
}

// BandwidthScale returns the instance's end-to-end bandwidth factor:
// per-instance multiplier times the configuration scale.
func (c *Ctx) BandwidthScale() float64 {
	return c.Instance.BwMult * netsim.ConfigScale(c.Region.Provider, c.Config.MemMB, c.Config.VCPU)
}

// BandwidthScaleFor is BandwidthScale with the per-instance path factor
// toward a remote provider folded in; use it for a specific transfer leg.
func (c *Ctx) BandwidthScaleFor(remote cloud.Provider) float64 {
	return c.BandwidthScale() * netsim.PathInstanceFactor(c.Instance.ID, c.Region.Provider, remote)
}

// Platform is one region's function service.
type Platform struct {
	clock  *simclock.Clock
	region cloud.Region
	meter  *pricing.Meter
	net    *netsim.Net
	cfg    Config

	mu      sync.Mutex
	rng     *rand.Rand
	chaos   *chaos.Injector
	quota   Quota
	warm    []*Instance
	running int
	nextID  int

	invocations   telemetry.Counter
	coldStarts    telemetry.Counter
	warmStarts    telemetry.Counter
	timeouts      telemetry.Counter
	crashes       telemetry.Counter
	maxConcurrent telemetry.Gauge

	// Optional run-wide registry instruments (zero values no-op until
	// SetTelemetry). Counters, the running gauge and the exec histogram
	// dual-write a {provider,region}-labelled family child next to the
	// historical cross-region aggregate.
	regInvocations telemetry.MirrorCounter
	regColdStarts  telemetry.MirrorCounter
	regWarmStarts  telemetry.MirrorCounter
	regTimeouts    telemetry.MirrorCounter
	regCrashes     telemetry.MirrorCounter
	regRunning     telemetry.MirrorGauge
	invokeHist     *telemetry.Histogram
	startupHist    *telemetry.Histogram
	postponeHist   *telemetry.Histogram
	execHist       telemetry.MirrorHistogram
}

// New returns a Platform in region with the given configuration, billing
// to meter and drawing instance multipliers from net.
func New(clock *simclock.Clock, region cloud.Region, net *netsim.Net, meter *pricing.Meter, cfg Config) *Platform {
	return &Platform{
		clock:  clock,
		region: region,
		meter:  meter,
		net:    net,
		cfg:    cfg,
		rng:    simrand.New("faas", string(region.ID())),
	}
}

// Region returns the platform's region.
func (p *Platform) Region() cloud.Region { return p.region }

// Config returns the platform's function configuration.
func (p *Platform) Config() Config { return p.cfg }

// FlushWarm discards all warm instances, forcing the next invocations to
// cold-start. The profiler uses it to sample cold-start delays.
func (p *Platform) FlushWarm() {
	p.mu.Lock()
	p.warm = nil
	p.mu.Unlock()
}

// Stats returns a snapshot of activity counters.
func (p *Platform) Stats() Stats {
	return Stats{
		Invocations:   p.invocations.Value(),
		ColdStarts:    p.coldStarts.Value(),
		WarmStarts:    p.warmStarts.Value(),
		Timeouts:      p.timeouts.Value(),
		Crashes:       p.crashes.Value(),
		MaxConcurrent: int(p.maxConcurrent.Value()),
	}
}

// SetChaos points the platform at an armed chaos injector (nil disables).
func (p *Platform) SetChaos(ij *chaos.Injector) {
	p.mu.Lock()
	p.chaos = ij
	p.mu.Unlock()
}

// Quota is an account-level admission gate shared across platforms — the
// fleet control plane's per-(provider,region) concurrency ledger. Acquire
// blocks (in virtual time) until the shared account grants an instance
// slot; Release returns it. The gate sits outside the platform's own
// MaxConcurrency bound, and the slot is released even when the instance
// crashes mid-run.
type Quota interface {
	Acquire()
	Release()
}

// SetQuota installs a shared account-concurrency gate (nil removes it).
func (p *Platform) SetQuota(q Quota) {
	p.mu.Lock()
	p.quota = q
	p.mu.Unlock()
}

// quotaGate returns the installed gate (nil-safe).
func (p *Platform) quotaGate() Quota {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quota
}

// injector returns the armed injector (nil-safe).
func (p *Platform) injector() *chaos.Injector {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.chaos
}

// SetTelemetry mirrors the platform's activity into run-wide registry
// instruments (counters aggregate across regions; histograms collect the
// paper's I, D and P latency components plus execution time).
func (p *Platform) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	dims := []telemetry.Label{
		telemetry.L("provider", string(p.region.Provider)),
		telemetry.L("region", string(p.region.ID())),
	}
	counter := func(name string) telemetry.MirrorCounter {
		return reg.CounterVec(name).Mirror(reg.Counter(name), dims...)
	}
	p.regInvocations = counter("faas.invocations")
	p.regColdStarts = counter("faas.cold_starts")
	p.regWarmStarts = counter("faas.warm_starts")
	p.regTimeouts = counter("faas.timeouts")
	p.regCrashes = counter("faas.crashes")
	p.regRunning = reg.GaugeVec("faas.running").Mirror(reg.Gauge("faas.running"), dims...)
	p.invokeHist = reg.Histogram("faas.invoke.seconds")
	p.startupHist = reg.Histogram("faas.startup.seconds")
	p.postponeHist = reg.Histogram("faas.postpone.seconds")
	p.execHist = reg.HistogramVec("faas.exec.seconds").Mirror(reg.Histogram("faas.exec.seconds"), dims...)
}

// draw samples d with the platform's private rng, clamped at lo.
func (p *Platform) draw(d stats.Normal, lo float64) float64 {
	p.mu.Lock()
	v := d.Sample(p.rng)
	p.mu.Unlock()
	if v < lo {
		v = lo
	}
	return v
}

// acquire reserves capacity and returns a warm instance, or a fresh cold
// one. It blocks (in virtual time) while the account concurrency limit is
// saturated.
func (p *Platform) acquire() (inst *Instance, cold bool) {
	// Shared account gate first: the fleet-level ledger admits before the
	// platform's own concurrency bound is consulted, so one rule's burst
	// queues here for everyone sharing the (provider,region) lane.
	if q := p.quotaGate(); q != nil {
		q.Acquire()
	}
	for {
		p.mu.Lock()
		if p.running < p.cfg.MaxConcurrency {
			p.running++
			p.regRunning.Add(1)
			p.maxConcurrent.SetMax(int64(p.running))
			now := p.clock.Now()
			// Reap expired warm instances, then reuse the freshest.
			live := p.warm[:0]
			for _, w := range p.warm {
				if now.Sub(w.idleSince) <= p.cfg.KeepWarm {
					live = append(live, w)
				}
			}
			p.warm = live
			if n := len(p.warm); n > 0 {
				inst = p.warm[n-1]
				p.warm = p.warm[:n-1]
				// Cold-start storm: the platform reclaimed the warm instance
				// under us, so this invocation cold-starts after all.
				if p.chaos.FnColdStorm(string(p.region.ID())) {
					inst = nil
				} else {
					p.mu.Unlock()
					p.warmStarts.Inc()
					p.regWarmStarts.Inc()
					return inst, false
				}
			}
			p.nextID++
			id := fmt.Sprintf("%s/fn-%d", p.region.ID(), p.nextID)
			mult := p.net.InstanceMultiplier(p.region.Provider).Sample(p.rng)
			// Straggler: a fraction of fresh instances land on degraded hosts
			// whose bandwidth collapses for their entire lifetime.
			mult *= p.chaos.FnStraggler(string(p.region.ID()))
			p.mu.Unlock()
			p.coldStarts.Inc()
			p.regColdStarts.Inc()
			return &Instance{ID: id, BwMult: mult}, true
		}
		p.mu.Unlock()
		p.clock.Sleep(50 * time.Millisecond) // throttled: retry as capacity frees
	}
}

func (p *Platform) release(inst *Instance) {
	p.mu.Lock()
	p.running--
	p.regRunning.Add(-1)
	inst.idleSince = p.clock.Now()
	p.warm = append(p.warm, inst)
	p.mu.Unlock()
	if q := p.quotaGate(); q != nil {
		q.Release()
	}
}

// Invoke launches n asynchronous executions of handler. The caller (an
// orchestrator actor) pays the serial invocation API latency I per call;
// each execution then starts after its startup delay and runs as its own
// actor. Invoke returns after the API calls complete, not after the
// executions finish.
//
// When the wave needs cold instances on a platform with a scheduler round,
// one postponement P ~ U(0, round) is drawn for the wave, matching the
// batching behaviour of Cloud Run's (and Azure's) instance scheduler.
func (p *Platform) Invoke(n int, handler func(*Ctx)) {
	p.InvokeSpan(nil, n, handler)
}

// InvokeSpan is Invoke with trace context: each invocation API call
// becomes an "invoke" child of parent (annotated with the drawn I), and
// each execution runs on its own lane as an "fn:<instance>" span with
// "queued" (concurrency throttling) and "startup" (D + P, broken out as
// annotations) children. A nil parent traces nothing.
func (p *Platform) InvokeSpan(parent *telemetry.Span, n int, handler func(*Ctx)) {
	if n <= 0 {
		return
	}
	book := pricing.BookFor(p.region.Provider)

	// One scheduler postponement per invocation wave, applied to cold starts.
	var postpone time.Duration
	if p.cfg.SchedulerRound > 0 {
		p.mu.Lock()
		needCold := len(p.warm) < n
		if needCold {
			postpone = simclock.Scale(p.cfg.SchedulerRound, p.rng.Float64())
		}
		p.mu.Unlock()
	}

	for i := 0; i < n; i++ {
		iv := parent.Child("invoke")
		iSec := p.draw(p.cfg.InvokeLatency, 0.001)
		p.clock.Sleep(simclock.Seconds(iSec))
		iv.Set("i_s", iSec)
		iv.End()
		p.invokeHist.Observe(iSec)
		p.meter.Add("fn:invoke", book.FnInvocation)
		p.invocations.Inc()
		p.regInvocations.Inc()
		p.clock.GoCall(func() {
			launched := p.clock.Now()
			inst, cold := p.acquire()
			acquired := p.clock.Now()
			var startup float64
			if cold {
				startup = p.draw(p.cfg.ColdStart, 0.02)
				p.clock.Sleep(simclock.Seconds(startup) + postpone)
				p.startupHist.Observe(startup)
				p.postponeHist.Observe(postpone.Seconds())
			}
			sp := parent.ForkAt("fn:"+inst.ID, launched)
			if acquired.After(launched) {
				sp.ChildAt("queued", launched).EndAt(acquired)
			}
			if cold {
				sp.ChildAt("startup", acquired).
					Set("d_s", startup).
					SetSeconds("p_s", postpone).
					EndAt(p.clock.Now())
			}
			sp.Set("cold", cold)
			p.run(inst, handler, book, sp)
		})
	}
}

// InvokeLocal runs handler inline on the caller's actor, modelling an
// orchestrator that handles small work itself (T_func = 0 in the paper's
// model). It still occupies an instance slot and bills execution time.
func (p *Platform) InvokeLocal(handler func(*Ctx)) {
	p.InvokeLocalSpan(nil, handler)
}

// InvokeLocalSpan is InvokeLocal with trace context; the execution span
// stays on the parent's lane because it runs on the caller's actor.
func (p *Platform) InvokeLocalSpan(parent *telemetry.Span, handler func(*Ctx)) {
	book := pricing.BookFor(p.region.Provider)
	p.invocations.Inc()
	p.regInvocations.Inc()
	p.meter.Add("fn:invoke", book.FnInvocation)
	launched := p.clock.Now()
	inst, cold := p.acquire()
	if cold {
		// A local handler runs inside an already-running function; the cold
		// path only happens on the first use, and is cheap.
		d := p.draw(p.cfg.ColdStart, 0.02)
		p.clock.Sleep(simclock.Seconds(d))
		p.startupHist.Observe(d)
	}
	sp := parent.ChildAt("fn:"+inst.ID, launched)
	sp.Set("cold", cold)
	p.run(inst, handler, book, sp)
}

// run executes handler on inst, enforcing the execution limit and billing.
// Chaos may have doomed the instance to crash partway through: the crash
// instant is drawn up front, the handler observes it through Ctx.Alive,
// and a crashed instance is billed only up to the crash and never returns
// to the warm pool.
func (p *Platform) run(inst *Instance, handler func(*Ctx), book pricing.Book, sp *telemetry.Span) {
	start := p.clock.Now()
	ctx := &Ctx{Instance: inst, Region: p.region, Config: p.cfg, Started: start, Clock: p.clock, Span: sp}
	if after, crashed := p.injector().FnCrash(string(p.region.ID())); crashed {
		ctx.hasCrash = true
		ctx.crashAt = start.Add(after)
	}
	handler(ctx)
	dur := p.clock.Since(start)
	crashed := ctx.hasCrash && !p.clock.Now().Before(ctx.crashAt)
	if crashed {
		if d := ctx.crashAt.Sub(start); d < dur {
			dur = d
		}
		p.crashes.Inc()
		p.regCrashes.Inc()
		sp.Set("crashed", true)
	}
	if dur > p.cfg.ExecLimit {
		// The simulator cannot preempt a handler; account the overrun as a
		// timeout and bill only up to the limit, as the platform would.
		p.timeouts.Inc()
		p.regTimeouts.Inc()
		sp.Set("timeout", true)
		dur = p.cfg.ExecLimit
	}
	p.execHist.Observe(dur.Seconds())
	p.meter.Add("fn:compute", pricing.FnComputeCost(p.region.Provider, float64(p.cfg.MemMB)/1024, dur))
	if crashed {
		// The instance is gone; free its concurrency slot but do not warm-pool it.
		p.mu.Lock()
		p.running--
		p.regRunning.Add(-1)
		p.mu.Unlock()
		// The shared account slot frees too — a crashed instance must not
		// leak fleet quota, or the lane's ledger drifts toward deadlock.
		if q := p.quotaGate(); q != nil {
			q.Release()
		}
	} else {
		p.release(inst)
	}
	sp.SetSeconds("exec_s", dur)
	sp.End()
}
