package fleet

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simclock"
)

// benchSchedulerPump measures one fleet admission cycle: every rule has
// queued work, the lane pump drains it batch by batch (heap-ordered
// admissions), and the done callbacks re-arm the pump until the backlog
// is gone. The indexed priority heap is what keeps a pump round O(admits
// × log rules) instead of O(rules) per admission — the 100 vs 1000 pair
// exposes the scaling.
func benchSchedulerPump(b *testing.B, nRules int) {
	const perRule = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clk := simclock.New(time.Unix(0, 0))
		s := NewScheduler(clk, nil, nil, SchedConfig{LaneSlots: 64})
		lane := LaneID{Provider: "aws", Region: "us-east-1"}
		for r := 0; r < nRules; r++ {
			id := fmt.Sprintf("rule-%04d", r)
			if err := s.Register(id, "dst", lane, 1+float64(r%3), r%2); err != nil {
				b.Fatal(err)
			}
		}
		var ran atomic.Int64
		for n := 0; n < perRule; n++ {
			for r := 0; r < nRules; r++ {
				s.Submit(fmt.Sprintf("rule-%04d", r), func(done func()) {
					ran.Add(1)
					if done != nil {
						done()
					}
				})
			}
		}
		clk.Quiesce()
		if got := ran.Load(); got != int64(nRules*perRule) {
			b.Fatalf("ran %d dispatches, want %d", got, nRules*perRule)
		}
	}
}

func BenchmarkSchedulerPumpRules100(b *testing.B)  { benchSchedulerPump(b, 100) }
func BenchmarkSchedulerPumpRules1000(b *testing.B) { benchSchedulerPump(b, 1000) }
