package fleet

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/objstore"
	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// SchedConfig tunes the cross-rule dispatch scheduler.
type SchedConfig struct {
	// LaneSlots bounds concurrent gated orchestrations per source lane —
	// the knob that turns one rule's burst into visible queueing for its
	// lane-mates instead of a platform-wide pile-up. Default 16.
	LaneSlots int
	// BatchWindow is how long a lane coalesces newly arrived notifications
	// before one pump round admits them together (cross-rule batching).
	// Default 20ms.
	BatchWindow time.Duration
	// StarveAfter is the queue wait past which an event counts its rule as
	// starved (once per event). Default 30s.
	StarveAfter time.Duration
}

func (c SchedConfig) withDefaults() SchedConfig {
	if c.LaneSlots <= 0 {
		c.LaneSlots = 16
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 20 * time.Millisecond
	}
	if c.StarveAfter <= 0 {
		c.StarveAfter = 30 * time.Second
	}
	return c
}

// quotaRetry paces pump retries while the lane's fn quota is saturated.
const quotaRetry = 50 * time.Millisecond

// Scheduler is the fleet's cross-rule dispatch plane. Each rule routes its
// deduplicated source notifications here (via the engine's dispatch gate);
// pump rounds admit them per source lane by priority class, then fair
// share (lowest vruntime = admissions weighted by 1/weight), bounded by
// LaneSlots. Admissions sharing a pump round form one cross-rule batch.
type Scheduler struct {
	clock  *simclock.Clock
	reg    *telemetry.Registry
	ledger *Ledger // may be nil: no quota attribution
	cfg    SchedConfig

	mu    sync.Mutex
	rules map[string]*schedRule
	lanes map[LaneID]*schedLane
}

type pendingDispatch struct {
	at  time.Time
	run func(done func())
}

type schedRule struct {
	id       string
	lane     *schedLane
	weight   float64
	priority int
	vruntime float64
	queue    []pendingDispatch
	// starvedPrefix counts queue entries already marked starved. The queue
	// is FIFO with non-decreasing arrival times, so marked entries always
	// form a prefix and starvation scans resume where the last one stopped.
	starvedPrefix int
	maxQueue      int
	heapIdx       int // position in lane.eligible, -1 when not queued

	admitted     int64
	deferred     int64
	starvedCount int64
	quotaWaited  int64

	admits     telemetry.MirrorCounter
	defers     telemetry.MirrorCounter
	starved    telemetry.MirrorCounter
	quotaWaits telemetry.MirrorCounter
	waitHist   telemetry.MirrorHistogram
}

type schedLane struct {
	id       LaneID
	inflight int
	armed    bool
	// eligible is the persistent admission heap: exactly the rules with
	// queued work, ordered by (priority desc, vruntime asc, rule ID asc).
	// The ID tiebreak makes the order total, so the admitted sequence is a
	// pure function of submissions — heap layout cannot leak into results.
	eligible ruleHeap
	nBatches int64 // non-empty pump rounds on this lane

	batches   telemetry.MirrorCounter
	batchSize telemetry.MirrorHistogram
}

// ruleHeap implements container/heap over rules with queued work. Rules
// track their index so membership updates are O(log n) instead of a
// per-round O(n log n) rebuild of the eligibility set.
type ruleHeap []*schedRule

func (h ruleHeap) Len() int { return len(h) }
func (h ruleHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	if a.vruntime != b.vruntime {
		return a.vruntime < b.vruntime
	}
	return a.id < b.id
}
func (h ruleHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *ruleHeap) Push(x any) {
	r := x.(*schedRule)
	r.heapIdx = len(*h)
	*h = append(*h, r)
}
func (h *ruleHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	r.heapIdx = -1
	*h = old[:n-1]
	return r
}

// NewScheduler returns a Scheduler on clock, attributing quota waits via
// ledger (may be nil) and instrumenting into reg (may be nil).
func NewScheduler(clock *simclock.Clock, reg *telemetry.Registry, ledger *Ledger, cfg SchedConfig) *Scheduler {
	return &Scheduler{
		clock: clock, reg: reg, ledger: ledger, cfg: cfg.withDefaults(),
		rules: make(map[string]*schedRule),
		lanes: make(map[LaneID]*schedLane),
	}
}

// Register admits a rule into the fleet: dispatches submitted under ruleID
// are scheduled on the given source lane with the given fair-share weight
// (default 1) and priority class (higher admits first). Registering the
// same rule twice is a topology error.
func (s *Scheduler) Register(ruleID, dest string, lane LaneID, weight float64, priority int) error {
	if ruleID == "" {
		return fmt.Errorf("fleet: register: empty rule ID")
	}
	if weight <= 0 {
		weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.rules[ruleID]; dup {
		return fmt.Errorf("fleet: rule %q already registered", ruleID)
	}
	ln := s.lanes[lane]
	if ln == nil {
		ln = &schedLane{id: lane}
		if m := s.reg; m != nil {
			dims := lane.labels()
			ln.batches = m.CounterVec("fleet.batch.count").Mirror(m.Counter("fleet.batch.count"), dims...)
			ln.batchSize = m.HistogramVec("fleet.batch.size").Mirror(m.Histogram("fleet.batch.size"), dims...)
		}
		s.lanes[lane] = ln
	}
	r := &schedRule{id: ruleID, lane: ln, weight: weight, priority: priority, heapIdx: -1}
	if m := s.reg; m != nil {
		dims := []telemetry.Label{telemetry.L("rule", ruleID), telemetry.L("dest", dest)}
		counter := func(name string) telemetry.MirrorCounter {
			return m.CounterVec(name).Mirror(m.Counter(name), dims...)
		}
		r.admits = counter("fleet.sched.admits")
		r.defers = counter("fleet.sched.defers")
		r.starved = counter("fleet.sched.starved")
		r.quotaWaits = counter("fleet.quota.waits")
		r.waitHist = m.HistogramVec("fleet.sched.wait.seconds").Mirror(m.Histogram("fleet.sched.wait.seconds"), dims...)
	}
	s.rules[ruleID] = r
	return nil
}

// Gate returns a dispatch gate (core.Options.DispatchGate shape) routing
// one rule's notifications through the scheduler.
func (s *Scheduler) Gate(ruleID string) func(objstore.Event, func(done func())) {
	return func(_ objstore.Event, run func(done func())) { s.Submit(ruleID, run) }
}

// Submit queues one deduplicated notification for the rule and arms the
// lane's batch-window pump. Unregistered rules run immediately (the gate
// stays safe if wiring and registration ever disagree).
func (s *Scheduler) Submit(ruleID string, run func(done func())) {
	s.mu.Lock()
	r := s.rules[ruleID]
	if r == nil {
		s.mu.Unlock()
		run(nil)
		return
	}
	r.queue = append(r.queue, pendingDispatch{at: s.clock.Now(), run: run})
	if len(r.queue) > r.maxQueue {
		r.maxQueue = len(r.queue)
	}
	if r.heapIdx < 0 {
		heap.Push(&r.lane.eligible, r)
	}
	s.arm(r.lane, s.cfg.BatchWindow)
	s.mu.Unlock()
}

// arm schedules a pump for the lane after delay unless one is already
// pending. Caller holds mu.
func (s *Scheduler) arm(ln *schedLane, delay time.Duration) {
	if ln.armed {
		return
	}
	ln.armed = true
	s.clock.Delay(delay, func() { s.pump(ln) })
}

// pump is one admission round for a lane: mark starvation, admit queued
// dispatches (priority desc, vruntime asc, rule ID asc) until the lane's
// slots — or its fn quota — run out, then launch the admitted batch.
func (s *Scheduler) pump(ln *schedLane) {
	s.mu.Lock()
	ln.armed = false
	now := s.clock.Now()
	// Starvation marking touches only rules with queued work (heap members)
	// and, per queue, resumes past the already-marked prefix and stops at
	// the first entry younger than the threshold — FIFO order means nothing
	// beyond it can be starved either.
	for _, r := range ln.eligible {
		for r.starvedPrefix < len(r.queue) && now.Sub(r.queue[r.starvedPrefix].at) > s.cfg.StarveAfter {
			r.starvedPrefix++
			r.starvedCount++
			r.starved.Inc()
		}
	}

	var batch []pendingDispatch
	quotaGated := false
	for ln.inflight < s.cfg.LaneSlots && len(ln.eligible) > 0 {
		// Re-selecting the head each iteration keeps fair share exact as
		// vruntimes move; a head admission is one O(log n) sift.
		r := ln.eligible[0]
		if s.ledger != nil && s.ledger.Saturated(ln.id) {
			// Admitting now would just park inside the platform's quota
			// wait; defer and attribute the wait to the rule that lost out.
			r.quotaWaited++
			r.quotaWaits.Inc()
			quotaGated = true
			break
		}
		it := r.queue[0]
		r.queue = r.queue[1:]
		if r.starvedPrefix > 0 {
			r.starvedPrefix--
		}
		r.vruntime += 1 / r.weight
		r.admitted++
		r.admits.Inc()
		r.waitHist.Observe(now.Sub(it.at).Seconds())
		ln.inflight++
		batch = append(batch, it)
		if len(r.queue) == 0 {
			heap.Pop(&ln.eligible)
		} else {
			heap.Fix(&ln.eligible, 0)
		}
	}
	if len(batch) > 0 {
		ln.nBatches++
		ln.batches.Inc()
		ln.batchSize.Observe(float64(len(batch)))
	}
	for _, r := range ln.eligible {
		r.deferred++
		r.defers.Inc()
	}
	// Quota-gated with free slots: nothing of ours is inflight to trigger
	// a done-side re-arm, so poll until the lane's quota drains.
	if quotaGated && ln.inflight < s.cfg.LaneSlots {
		s.arm(ln, quotaRetry)
	}
	s.mu.Unlock()

	for i := range batch {
		run := batch[i].run
		s.clock.Go(func() {
			run(func() { s.onDone(ln) })
		})
	}
}

// onDone returns a lane slot and re-arms the pump if work is queued. The
// heap's membership invariant (rules with queued work, exactly) makes the
// check O(1) instead of a scan over every registered rule.
func (s *Scheduler) onDone(ln *schedLane) {
	s.mu.Lock()
	ln.inflight--
	if len(ln.eligible) > 0 {
		s.arm(ln, s.cfg.BatchWindow)
	}
	s.mu.Unlock()
}

// RuleStats is one rule's scheduling account.
type RuleStats struct {
	Rule       string
	Admits     int64
	Defers     int64
	Starved    int64
	QuotaWaits int64
	Queued     int
	MaxQueue   int
}

// RuleStats snapshots every registered rule, sorted by rule ID.
func (s *Scheduler) RuleStats() []RuleStats {
	s.mu.Lock()
	out := make([]RuleStats, 0, len(s.rules))
	for _, r := range s.rules {
		out = append(out, RuleStats{
			Rule: r.id, Admits: r.admitted, Defers: r.deferred,
			Starved: r.starvedCount, QuotaWaits: r.quotaWaited,
			Queued: len(r.queue), MaxQueue: r.maxQueue,
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Rule < out[j].Rule })
	return out
}

// BatchStats aggregates cross-rule batching over all lanes.
type BatchStats struct {
	Batches  int64
	Admitted int64
	MeanSize float64
}

// BatchStats totals pump-round batching across the fleet.
func (s *Scheduler) BatchStats() BatchStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st BatchStats
	for _, ln := range s.lanes {
		// The mirror's Value() is the fleet-wide aggregate; the lane's own
		// plain counter avoids multiplying it by the number of lanes.
		st.Batches += ln.nBatches
	}
	for _, r := range s.rules {
		st.Admitted += r.admitted
	}
	if st.Batches > 0 {
		st.MeanSize = float64(st.Admitted) / float64(st.Batches)
	}
	return st
}
