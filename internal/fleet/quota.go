// Package fleet is the multi-rule control plane above the single-rule
// replication engine (ROADMAP item 1): rule admission, fair-share +
// priority scheduling of dispatch across rules, and shared
// per-(provider,region) quota ledgers for FaaS concurrency and KV
// throughput. One rule's burst drains a lane other rules share, so
// back-pressure and starvation are visible fleet-wide instead of each
// rule seeing a private cloud — the multi-tenant serverless contention
// CloudSimSC argues makes simulations predictive.
//
// Everything runs on the virtual clock and is deterministic: waiters are
// admitted in FIFO ticket order, token buckets refill in virtual time,
// and all instruments dual-write labelled family children next to
// unlabelled aggregates, so same-seed runs are byte-identical.
package fleet

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/simclock"
	"repro/internal/telemetry"
)

// LaneID identifies one (provider, region) capacity lane. All rules whose
// functions or KV tables live in the lane compete for its quotas.
type LaneID struct {
	Provider string
	Region   string
}

func (id LaneID) String() string { return id.Provider + "/" + id.Region }

func (id LaneID) labels() []telemetry.Label {
	return []telemetry.Label{
		telemetry.L("provider", id.Provider),
		telemetry.L("region", id.Region),
	}
}

// QuotaConfig caps each lane of a Ledger. Zero values leave the
// corresponding quota unenforced.
type QuotaConfig struct {
	// FaaSConcurrency is the fleet-level cap on concurrently running
	// function instances per lane — the account limit the whole fleet
	// shares below the platform's own MaxConcurrency.
	FaaSConcurrency int
	// KVOpsPerSec is the lane's shared KV throughput budget, modelled as
	// a virtual-time token bucket with one second of burst capacity.
	KVOpsPerSec float64
	// StallGuard bounds how long a saturated lane may go without a single
	// release before the head waiter is force-admitted (counted in
	// fleet.quota.fn.forced). It breaks cross-lane hold-and-wait cycles a
	// pathological topology could otherwise wedge on; the default is two
	// virtual minutes.
	StallGuard time.Duration
}

const quotaPoll = 50 * time.Millisecond

// Ledger tracks shared fleet quotas per lane. A nil *Ledger admits
// everything immediately.
type Ledger struct {
	clock *simclock.Clock
	reg   *telemetry.Registry
	cfg   QuotaConfig

	mu    sync.Mutex
	lanes map[LaneID]*lane
}

type lane struct {
	id  LaneID
	cap int

	inflight    int
	maxInflight int
	forcedCount int64
	nextTicket  uint64
	served      uint64
	lastRelease time.Time

	// KV token bucket: ops reserve a token and sleep off any debt, so
	// arrival order fixes the wait sequence deterministically.
	kvTokens float64
	kvLast   time.Time

	fnWaits    telemetry.MirrorCounter
	fnForced   telemetry.MirrorCounter
	fnInflight telemetry.MirrorGauge
	fnWaitHist telemetry.MirrorHistogram
	kvWaits    telemetry.MirrorCounter
	kvWaitHist telemetry.MirrorHistogram
}

// NewLedger returns a Ledger enforcing cfg on every lane, instrumented
// into reg (nil reg disables telemetry, not enforcement).
func NewLedger(clock *simclock.Clock, reg *telemetry.Registry, cfg QuotaConfig) *Ledger {
	if cfg.StallGuard <= 0 {
		cfg.StallGuard = 2 * time.Minute
	}
	return &Ledger{clock: clock, reg: reg, cfg: cfg, lanes: make(map[LaneID]*lane)}
}

// Config returns the ledger's per-lane caps.
func (l *Ledger) Config() QuotaConfig { return l.cfg }

// lane returns (lazily creating) the lane's state. Caller must not hold mu.
func (l *Ledger) lane(id LaneID) *lane {
	l.mu.Lock()
	defer l.mu.Unlock()
	if ln, ok := l.lanes[id]; ok {
		return ln
	}
	ln := &lane{
		id:       id,
		cap:      l.cfg.FaaSConcurrency,
		kvTokens: l.cfg.KVOpsPerSec, // one second of burst
		kvLast:   l.clock.Now(),
	}
	if m := l.reg; m != nil {
		dims := id.labels()
		counter := func(name string) telemetry.MirrorCounter {
			return m.CounterVec(name).Mirror(m.Counter(name), dims...)
		}
		ln.fnWaits = counter("fleet.quota.fn.waits")
		ln.fnForced = counter("fleet.quota.fn.forced")
		ln.fnInflight = m.GaugeVec("fleet.quota.fn.inflight").Mirror(m.Gauge("fleet.quota.fn.inflight"), dims...)
		ln.fnWaitHist = m.HistogramVec("fleet.quota.fn.wait.seconds").Mirror(m.Histogram("fleet.quota.fn.wait.seconds"), dims...)
		ln.kvWaits = counter("fleet.quota.kv.waits")
		ln.kvWaitHist = m.HistogramVec("fleet.quota.kv.wait.seconds").Mirror(m.Histogram("fleet.quota.kv.wait.seconds"), dims...)
	}
	l.lanes[id] = ln
	return ln
}

// Acquire blocks (in virtual time) until the lane grants one function
// instance slot. Waiters are served in FIFO ticket order, so a burst from
// one rule queues behind nothing and everything later queues behind it —
// the shared-account contention the fleet scheduler steers around.
func (l *Ledger) Acquire(id LaneID) {
	if l == nil || l.cfg.FaaSConcurrency <= 0 {
		return
	}
	ln := l.lane(id)
	start := l.clock.Now()
	waited := false
	l.mu.Lock()
	ticket := ln.nextTicket
	ln.nextTicket++
	for {
		if ln.served == ticket {
			if ln.inflight < ln.cap {
				break
			}
			// Saturated with no release for the whole guard window: force
			// the head through so cross-lane hold-and-wait cannot wedge the
			// simulation. A healthy fleet never takes this path.
			stuckSince := ln.lastRelease
			if start.After(stuckSince) {
				stuckSince = start
			}
			if l.clock.Now().Sub(stuckSince) > l.cfg.StallGuard {
				ln.forcedCount++
				ln.fnForced.Inc()
				break
			}
		}
		if !waited {
			waited = true
			ln.fnWaits.Inc()
		}
		l.mu.Unlock()
		l.clock.Sleep(quotaPoll)
		l.mu.Lock()
	}
	ln.served++
	ln.inflight++
	if ln.inflight > ln.maxInflight {
		ln.maxInflight = ln.inflight
	}
	ln.fnInflight.Add(1)
	l.mu.Unlock()
	if waited {
		ln.fnWaitHist.Observe(l.clock.Since(start).Seconds())
	}
}

// Release returns one function instance slot to the lane.
func (l *Ledger) Release(id LaneID) {
	if l == nil || l.cfg.FaaSConcurrency <= 0 {
		return
	}
	ln := l.lane(id)
	l.mu.Lock()
	ln.inflight--
	ln.lastRelease = l.clock.Now()
	ln.fnInflight.Add(-1)
	l.mu.Unlock()
}

// Saturated reports whether the lane's function quota is currently fully
// admitted — the scheduler consults it to attribute quota waits to the
// rule it would otherwise admit.
func (l *Ledger) Saturated(id LaneID) bool {
	if l == nil || l.cfg.FaaSConcurrency <= 0 {
		return false
	}
	ln := l.lane(id)
	l.mu.Lock()
	defer l.mu.Unlock()
	return ln.inflight >= ln.cap
}

// WaitKV charges one KV operation against the lane's throughput budget,
// sleeping off any token debt in virtual time.
func (l *Ledger) WaitKV(id LaneID) {
	if l == nil || l.cfg.KVOpsPerSec <= 0 {
		return
	}
	ln := l.lane(id)
	rate := l.cfg.KVOpsPerSec
	l.mu.Lock()
	now := l.clock.Now()
	ln.kvTokens += now.Sub(ln.kvLast).Seconds() * rate
	if ln.kvTokens > rate {
		ln.kvTokens = rate // burst capacity: one second of budget
	}
	ln.kvLast = now
	ln.kvTokens--
	debt := -ln.kvTokens
	l.mu.Unlock()
	if debt <= 0 {
		return
	}
	wait := simclock.Seconds(debt / rate)
	ln.kvWaits.Inc()
	ln.kvWaitHist.Observe(wait.Seconds())
	l.clock.Sleep(wait)
}

// LaneStats is one lane's quota accounting snapshot.
type LaneStats struct {
	Lane        LaneID
	Cap         int
	Inflight    int
	MaxInflight int
	Forced      int64
	// UtilizationPct is the lane's concurrency high-water mark as a
	// percentage of its cap (0 when the lane is uncapped).
	UtilizationPct float64
}

// Stats snapshots every lane the ledger has seen, sorted by lane ID.
func (l *Ledger) Stats() []LaneStats {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]LaneStats, 0, len(l.lanes))
	for _, ln := range l.lanes {
		st := LaneStats{
			Lane: ln.id, Cap: ln.cap,
			Inflight: ln.inflight, MaxInflight: ln.maxInflight,
			Forced: ln.forcedCount,
		}
		if ln.cap > 0 {
			st.UtilizationPct = 100 * float64(ln.maxInflight) / float64(ln.cap)
		}
		out = append(out, st)
	}
	l.mu.Unlock()
	// Sort on the struct fields: Lane.String() inside the comparator would
	// allocate a fresh key per comparison, O(n log n) garbage per snapshot.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Lane, out[j].Lane
		if a.Provider != b.Provider {
			return a.Provider < b.Provider
		}
		return a.Region < b.Region
	})
	return out
}

// FnGate adapts one lane of the ledger to the faas.Quota interface.
type FnGate struct {
	l  *Ledger
	id LaneID
}

// FnGate returns the lane's function-concurrency gate, for
// faas.Platform.SetQuota.
func (l *Ledger) FnGate(id LaneID) *FnGate { return &FnGate{l: l, id: id} }

// Acquire implements faas.Quota.
func (g *FnGate) Acquire() { g.l.Acquire(g.id) }

// Release implements faas.Quota.
func (g *FnGate) Release() { g.l.Release(g.id) }

// KVGate adapts one lane of the ledger to the kvstore.Quota interface.
type KVGate struct {
	l  *Ledger
	id LaneID
}

// KVGate returns the lane's KV-throughput gate, for kvstore.Store.SetQuota.
func (l *Ledger) KVGate(id LaneID) *KVGate { return &KVGate{l: l, id: id} }

// WaitOp implements kvstore.Quota.
func (g *KVGate) WaitOp(write bool) { g.l.WaitKV(g.id) }

// String implements fmt.Stringer for LaneStats (debug output).
func (s LaneStats) String() string {
	return fmt.Sprintf("%s cap=%d max=%d util=%.0f%%", s.Lane, s.Cap, s.MaxInflight, s.UtilizationPct)
}
