package experiments

import (
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sync"
	"time"

	areplica "repro"
	"repro/internal/cloud"
	"repro/internal/objstore"
	"repro/internal/simclock"
	"repro/internal/trace"
)

// FleetDayConfig configures the fleet-day replay: a thousand-rule
// topology replaying a full virtual day of the bursty IBM-COS-like
// trace, sized so fan-out amplification yields on the order of a million
// replicated objects. The scenario is the simulator's hot-path gate —
// its sim_rate row is how CI notices the event loop, scheduler, tracker
// or planner getting slower.
type FleetDayConfig struct {
	// Rules is the total rule count (default 1000; Quick trims to 120).
	// Three quarters of the fleet is 16-way fan-out groups — the
	// amplification that turns a quarter-million trace ops into a million
	// replica writes — plus two 3-hop chains, one 3-region mesh, and
	// direct rules filling the remainder.
	Rules int
	// Day is the trace's virtual span (default 24h; Quick 90 min).
	Day time.Duration
	// Ops is the approximate trace operation count (default 260000;
	// Quick 6000). The generator's bursts make the realized count drift
	// a few percent.
	Ops   int
	Quick bool

	// FaaSConcurrency and KVOpsPerSec are the shared per-lane quotas
	// (defaults 256 and 20000 — wide enough that the day's bursts queue
	// briefly instead of dead-lettering).
	FaaSConcurrency int
	KVOpsPerSec     float64
	// MaxObjectBytes clamps trace object sizes (default 4 MB): every
	// transfer takes the inline local plan, keeping the scenario a
	// control-plane and event-loop stress, not a data-plane one.
	MaxObjectBytes int64

	// MeasureRates populates the wall-clock-derived fields (SimRate,
	// RuleSimRate, AllocsPerObject). Off for byte-identical determinism
	// runs, exactly like BenchConfig.MeasureSimRate.
	MeasureRates bool
}

func (c FleetDayConfig) withDefaults() FleetDayConfig {
	if c.Rules <= 0 {
		c.Rules = 1000
		if c.Quick {
			c.Rules = 120
		}
	}
	if c.Day <= 0 {
		c.Day = 24 * time.Hour
		if c.Quick {
			c.Day = 90 * time.Minute
		}
	}
	if c.Ops <= 0 {
		c.Ops = 260000
		if c.Quick {
			c.Ops = 6000
		}
	}
	if c.FaaSConcurrency <= 0 {
		c.FaaSConcurrency = 256
	}
	if c.KVOpsPerSec <= 0 {
		c.KVOpsPerSec = 20000
	}
	if c.MaxObjectBytes <= 0 {
		c.MaxObjectBytes = 4 * MB
	}
	return c
}

// FleetDayResult is the fleet-day replay's outcome. Everything except
// the three wall-clock-derived rate fields is deterministic for a given
// configuration.
type FleetDayResult struct {
	Rules   int
	Entries int
	Ops     int

	// ReplicatedObjects counts replica writes landed on destination
	// buckets (origin-tagged puts) — the scenario's "million objects".
	ReplicatedObjects int64
	ConvergencePct    float64
	Audited           int
	Diverged          int
	Pending           int
	DLQ               int
	Redriven          int
	DupFinalWrites    int

	Admits  int64
	Defers  int64
	Starved int64
	Batches int64
	CostUSD float64

	// VirtualHours is the simulated span the replay covered (the trace
	// day plus the drain tail).
	VirtualHours float64
	// SimRate is simulated-seconds advanced per wall-second over the
	// replay window; RuleSimRate multiplies it by the rule count (the
	// fleet does Rules× the per-rule work in the same virtual span), the
	// figure the ≥50k interactivity gate is expressed against.
	// AllocsPerObject is heap allocations per replicated object over the
	// same window. All three are zero unless MeasureRates was set.
	SimRate         float64
	RuleSimRate     float64
	AllocsPerObject float64
}

// fleetDayTopology builds the thousand-rule mix: 16-way fan-out groups
// on three quarters of the budget (sources cycling the three east
// regions, the first group weight-2 — the hot tenant), two 3-hop chains,
// one 3-region mesh (priority 1), and direct rules over the ordered
// region pairs filling the rest.
func fleetDayTopology(n int) ([]areplica.FleetRule, []fleetEntry, error) {
	regions := []string{string(AWSEast), string(AzureEast), string(GCPEast)}
	var rules []areplica.FleetRule
	var entries []fleetEntry

	const fanWidth = 16
	fanGroups := (n * 3 / 4) / fanWidth
	if fanGroups < 1 {
		fanGroups = 1
	}
	for g := 0; g < fanGroups; g++ {
		src := regions[g%3]
		bucket := fmt.Sprintf("day-fan-%03d", g)
		var dsts []areplica.FleetDst
		for i := 0; i < fanWidth; i++ {
			// Destinations alternate the two non-source regions.
			dsts = append(dsts, areplica.FleetDst{
				Region: regions[(g+1+i%2)%3],
				Bucket: fmt.Sprintf("%s-dst-%02d", bucket, i),
			})
		}
		fan, err := areplica.FanOut(src, bucket, dsts...)
		if err != nil {
			return nil, nil, err
		}
		if g == 0 {
			for i := range fan {
				fan[i].Weight = 2
			}
		}
		rules = append(rules, fan...)
		entries = append(entries, fleetEntry{region: src, bucket: bucket})
	}

	for ci, order := range [][]string{
		{regions[0], regions[1], regions[2]},
		{regions[1], regions[2], regions[0]},
	} {
		bucket := fmt.Sprintf("day-chain-%c", 'a'+ci)
		hops := make([]areplica.FleetHop, len(order))
		for i, r := range order {
			hops[i] = areplica.FleetHop{Region: r, Bucket: bucket}
		}
		chain, err := areplica.Chain(hops...)
		if err != nil {
			return nil, nil, err
		}
		rules = append(rules, chain...)
		entries = append(entries, fleetEntry{region: order[0], bucket: bucket})
	}

	mesh, err := areplica.FullMesh("day-mesh", regions...)
	if err != nil {
		return nil, nil, err
	}
	for i := range mesh {
		mesh[i].Priority = 1
	}
	rules = append(rules, mesh...)
	for i, r := range regions {
		entries = append(entries, fleetEntry{region: r, bucket: "day-mesh", prefix: fmt.Sprintf("site%d/", i)})
	}

	type pair struct{ src, dst string }
	var pairs []pair
	for _, s := range regions {
		for _, d := range regions {
			if s != d {
				pairs = append(pairs, pair{s, d})
			}
		}
	}
	for i := 0; len(rules) < n; i++ {
		p := pairs[i%len(pairs)]
		bucket := fmt.Sprintf("day-dir-%03d", i)
		rules = append(rules, areplica.FleetRule{
			SrcRegion: p.src, SrcBucket: bucket,
			DstRegion: p.dst, DstBucket: bucket + "-replica",
		})
		entries = append(entries, fleetEntry{region: p.src, bucket: bucket})
	}
	return rules, entries, nil
}

// dayWatcher counts replica writes and duplicate final writes on one
// destination bucket. Unlike dupWatcher it stores one compact entry per
// key (sequence plus an FNV digest of the ETag) — at a million replica
// writes the string-keyed double map would dominate the heap.
type dayWatcher struct {
	mu   sync.Mutex
	puts int64
	dups int
	last map[string]dayVer
}

type dayVer struct {
	seq  uint64
	etag uint64
}

func etagHash(etag string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(etag))
	return h.Sum64()
}

func (w *dayWatcher) observe(ev objstore.Event) {
	if ev.Type != objstore.EventPut {
		return
	}
	w.mu.Lock()
	if ev.Origin != "" {
		w.puts++
	}
	cur := w.last[ev.Key]
	if ev.Seq > cur.seq {
		h := etagHash(ev.ETag)
		if ev.ETag != "" && cur.etag == h {
			w.dups++
		}
		w.last[ev.Key] = dayVer{seq: ev.Seq, etag: h}
	}
	w.mu.Unlock()
}

// quantizeSize rounds a trace object size up to the next power of two
// (floor 64 KB, clamped to max). Plans depend on size, so quantizing to
// a handful of distinct sizes turns the planner's fastest-plan memo into
// a near-perfect cache across a million admissions without changing the
// workload's character.
func quantizeSize(size, max int64) int64 {
	q := int64(64 * 1024)
	for q < size && q < max {
		q <<= 1
	}
	if q > max {
		q = max
	}
	return q
}

// RunFleetDay deploys the thousand-rule topology and replays a virtual
// day of the bursty trace across all entry points, measuring replay
// throughput alongside the usual convergence and exactly-once bars.
func RunFleetDay(cfg FleetDayConfig) (*FleetDayResult, error) {
	cfg = cfg.withDefaults()
	rules, entries, err := fleetDayTopology(cfg.Rules)
	if err != nil {
		return nil, err
	}

	sim := areplica.NewSim()
	fl, err := sim.DeployFleet(rules, areplica.FleetOptions{
		FaaSConcurrency: cfg.FaaSConcurrency,
		KVOpsPerSec:     cfg.KVOpsPerSec,
		LaneSlots:       64,
		ProfileRounds:   profileRounds(true),
	})
	if err != nil {
		return nil, err
	}

	var watchers []*dayWatcher
	seen := make(map[string]bool)
	for _, r := range rules {
		id := r.DstRegion + "/" + r.DstBucket
		if seen[id] {
			continue
		}
		seen[id] = true
		w := &dayWatcher{last: make(map[string]dayVer)}
		rid, err := cloud.ParseRegionID(r.DstRegion)
		if err != nil {
			return nil, err
		}
		if err := sim.World().Region(rid).Obj.Subscribe(r.DstBucket, w.observe); err != nil {
			return nil, err
		}
		watchers = append(watchers, w)
	}

	tcfg := trace.DefaultConfig(cfg.Day, float64(cfg.Ops)/cfg.Day.Minutes())
	tcfg.Seed = "fleet-day"
	tcfg.Keys = cfg.Ops / 8
	if tcfg.Keys < 1000 {
		tcfg.Keys = 1000
	}
	ops := trace.Generate(tcfg)
	for i := range ops {
		ops[i].Size = quantizeSize(ops[i].Size, cfg.MaxObjectBytes)
	}

	costBefore := sim.CostTotal()
	var memBefore runtime.MemStats
	if cfg.MeasureRates {
		runtime.ReadMemStats(&memBefore)
	}
	virtStart := sim.Now()
	wallStart := time.Now()
	trace.Replay(sim.World().Clock, ops, func(op trace.Op) {
		e := entries[keyShard(op.Key, len(entries))]
		key := e.prefix + op.Key
		if op.Type == trace.OpDelete {
			_ = sim.DeleteObject(e.region, e.bucket, key)
			return
		}
		if _, err := sim.PutObject(e.region, e.bucket, key, op.Size); err != nil {
			panic(err)
		}
	})
	sim.Wait()
	redriven := 0
	for i := 0; i < 3 && fl.DLQTotal() > 0; i++ {
		redriven += fl.RedriveAll()
		sim.Wait()
	}
	wallSecs := time.Since(wallStart).Seconds()
	virtSecs := simclock.ToSeconds(sim.Now().Sub(virtStart))
	fl.PollMonitors()

	res := &FleetDayResult{
		Rules:        fl.Size(),
		Entries:      len(entries),
		Ops:          len(ops),
		Pending:      fl.PendingTotal(),
		DLQ:          fl.DLQTotal(),
		Redriven:     redriven,
		CostUSD:      sim.CostTotal() - costBefore,
		VirtualHours: virtSecs / 3600,
	}
	for _, w := range watchers {
		w.mu.Lock()
		res.ReplicatedObjects += w.puts
		res.DupFinalWrites += w.dups
		w.mu.Unlock()
	}
	if cfg.MeasureRates && wallSecs > 0 {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		res.SimRate = virtSecs / wallSecs
		res.RuleSimRate = res.SimRate * float64(res.Rules)
		if res.ReplicatedObjects > 0 {
			res.AllocsPerObject = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(res.ReplicatedObjects)
		}
	}

	div, audited, err := fl.Diverged()
	if err != nil {
		return nil, err
	}
	res.Audited, res.Diverged = audited, div
	if audited > 0 {
		res.ConvergencePct = 100 * float64(audited-div) / float64(audited)
	}

	for _, st := range fl.SchedStats() {
		res.Admits += st.Admits
		res.Defers += st.Defers
		res.Starved += st.Starved
	}
	res.Batches = fl.BatchStats().Batches
	return res, nil
}

// Print writes the replay summary.
func (r *FleetDayResult) Print(w io.Writer) {
	fprintf(w, "Fleet day: %d rules, %d entry points, %d trace ops over %.1f virtual hours\n",
		r.Rules, r.Entries, r.Ops, r.VirtualHours)
	fprintf(w, "  %d replicated objects; convergence %.2f%% (%d/%d audited, %d pending, %d DLQ, %d redriven), %d duplicate final writes\n",
		r.ReplicatedObjects, r.ConvergencePct, r.Audited-r.Diverged, r.Audited, r.Pending, r.DLQ, r.Redriven, r.DupFinalWrites)
	fprintf(w, "  scheduler: %d admits, %d defers, %d starvation marks, %d batches; cost $%.4f\n",
		r.Admits, r.Defers, r.Starved, r.Batches, r.CostUSD)
	if r.SimRate > 0 {
		fprintf(w, "  throughput: %.0f sim-s/wall-s (%.0f rule-sim-s/wall-s), %.0f allocs/object\n",
			r.SimRate, r.RuleSimRate, r.AllocsPerObject)
	}
}
