package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/baselines"
	"repro/internal/changelog"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
)

// Fig21Row is one object size's COPY replication measurements.
type Fig21Row struct {
	SizeBytes int64

	SkyplaneS, SkyplaneCost         float64
	S3RTCS, S3RTCCost               float64
	AReplicaFullS, AReplicaFullCost float64
	AReplicaLogS, AReplicaLogCost   float64
}

// Fig21Result reproduces Figure 21: time and cost of replicating an
// object that was created by a COPY of an already-replicated object,
// aws:us-east-1 -> aws:us-east-2. AReplica-log propagates only the
// changelog, eliminating the cross-region transfer entirely.
type Fig21Result struct {
	Rows []Fig21Row
}

// RunFig21 measures the four systems at 100 MB - 100 GB (quick: two sizes).
func RunFig21(quick bool) *Fig21Result {
	sizes := []int64{100 * MB, 1 * GB, 10 * GB, 100 * GB}
	if quick {
		sizes = []int64{100 * MB, 1 * GB}
	}
	src, dst := cloud.RegionID("aws:us-east-1"), cloud.RegionID("aws:us-east-2")
	res := &Fig21Result{}
	for si, size := range sizes {
		row := Fig21Row{SizeBytes: size}

		// --- Skyplane: full copy every time. ---
		{
			w := newWorld("fig21")
			mustCreate(w, src, "src", false)
			mustCreate(w, dst, "dst", false)
			sky := baselines.NewSkyplane(w, src, dst, "src", "dst", 1, 0)
			putObject(w, src, "src", "copy.bin", size, si)
			start := w.Clock.Now()
			row.SkyplaneCost = costDelta(w, func() {
				if _, err := sky.ReplicateMeasured("copy.bin", size); err != nil {
					panic(err)
				}
			})
			row.SkyplaneS = w.Clock.Since(start).Seconds()
		}

		// --- S3 RTC: full copy through the managed service. ---
		{
			w := newWorld("fig21")
			mustCreate(w, src, "src", true)
			mustCreate(w, dst, "dst", true)
			rtc, err := baselines.NewS3RTC(w, src, dst, "src", "dst")
			if err != nil {
				panic(err)
			}
			if err := w.Region(src).Obj.Subscribe("src", rtc.HandleEvent); err != nil {
				panic(err)
			}
			row.S3RTCCost = costDelta(w, func() {
				putObject(w, src, "src", "copy.bin", size, si)
			})
			row.S3RTCS = lastDelaySeconds(rtc.Tracker)
		}

		// --- AReplica, full vs changelog. ---
		for _, withLog := range []bool{false, true} {
			w := newWorld("fig21")
			m := model.New()
			mustCreate(w, src, "src", false)
			mustCreate(w, dst, "dst", false)
			svc := deployService(w, m, engine.Rule{
				Src: src, Dst: dst, SrcBucket: "src", DstBucket: "dst", SLO: 0,
			}, core.Options{
				ProfileRounds:   profileRounds(quick),
				EnableChangelog: withLog,
			})
			// Seed the base object and let it replicate normally.
			base := putObject(w, src, "src", "base.bin", size, si)
			w.Clock.Quiesce()

			// The COPY at the source, optionally hinted.
			srcObj := w.Region(src).Obj
			cost := costDelta(w, func() {
				copied, err := srcObj.Copy("src", "base.bin", "src", "copy.bin", "")
				if err != nil {
					panic(err)
				}
				if withLog {
					err := svc.RegisterChangelog(changelog.Log{
						Key: "copy.bin", ETag: copied.ETag, Op: changelog.OpCopy,
						Sources: []changelog.Source{{Key: "base.bin", ETag: base.ETag}},
					})
					if err != nil {
						panic(err)
					}
				}
			})
			delay := lastDelaySeconds(svc.Engine.Tracker)
			if withLog {
				row.AReplicaLogS, row.AReplicaLogCost = delay, cost
			} else {
				row.AReplicaFullS, row.AReplicaFullCost = delay, cost
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Print writes the two panels as rows.
func (r *Fig21Result) Print(w io.Writer) {
	fprintf(w, "COPY operation replication aws:us-east-1 -> aws:us-east-2 (Figure 21)\n")
	fprintf(w, "%-8s | %18s | %18s | %18s | %18s\n", "size",
		"Skyplane s/$", "S3RTC s/$", "AReplica-full s/$", "AReplica-log s/$")
	for _, row := range r.Rows {
		fprintf(w, "%-8s | %8.1f/%-9.4f | %8.1f/%-9.4f | %8.1f/%-9.4f | %8.1f/%-9.4f\n",
			fmtSize(row.SizeBytes),
			row.SkyplaneS, row.SkyplaneCost,
			row.S3RTCS, row.S3RTCCost,
			row.AReplicaFullS, row.AReplicaFullCost,
			row.AReplicaLogS, row.AReplicaLogCost)
	}
}

// Fig22Point is one update-frequency measurement.
type Fig22Point struct {
	UpdatesPerMin int

	// SLO attainment as a fraction of versions replicated within the SLO,
	// and replication cost per minute of workload.
	AttainmentBatched   float64
	AttainmentUnbatched float64
	CostPerMinBatched   float64
	CostPerMinUnbatched float64
	TransfersBatched    int
	TransfersUnbatched  int
}

// Fig22Result reproduces Figure 22: SLO-bounded batching under rapid
// updates of a 100 MB object with a 30-second SLO.
type Fig22Result struct {
	SLO    time.Duration
	Points []Fig22Point
}

// RunFig22 updates one object at 5-100 updates/minute for several minutes
// with and without batching.
func RunFig22(quick bool) *Fig22Result {
	freqs := []int{5, 10, 50, 100}
	minutes := 10
	if quick {
		freqs = []int{5, 50}
		minutes = 3
	}
	const slo = 30 * time.Second
	src, dst := cloud.RegionID("aws:us-east-1"), cloud.RegionID("aws:us-east-2")
	res := &Fig22Result{SLO: slo}

	for _, freq := range freqs {
		pt := Fig22Point{UpdatesPerMin: freq}
		for _, batched := range []bool{true, false} {
			w := newWorld("fig22")
			m := model.New()
			mustCreate(w, src, "src", false)
			mustCreate(w, dst, "dst", false)
			transfers := 0
			svc := deployService(w, m, engine.Rule{
				Src: src, Dst: dst, SrcBucket: "src", DstBucket: "dst",
				SLO: slo,
			}, core.Options{
				ProfileRounds:  profileRounds(quick),
				EnableBatching: batched,
				OnTaskDone: func(r engine.TaskResult) {
					if r.OK {
						transfers++
					}
				},
			})
			interval := time.Minute / time.Duration(freq)
			total := freq * minutes
			cost := costDelta(w, func() {
				for i := 0; i < total; i++ {
					putObject(w, src, "src", "hot.bin", 100*MB, i)
					w.Clock.Sleep(interval)
				}
			})
			recs := svc.Engine.Tracker.Records()
			within := 0
			for _, rec := range recs {
				if rec.Delay <= slo {
					within++
				}
			}
			attain := float64(within) / float64(total)
			if batched {
				pt.AttainmentBatched = attain
				pt.CostPerMinBatched = cost / float64(minutes)
				pt.TransfersBatched = transfers
			} else {
				pt.AttainmentUnbatched = attain
				pt.CostPerMinUnbatched = cost / float64(minutes)
				pt.TransfersUnbatched = transfers
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// Print writes attainment and cost per frequency.
func (r *Fig22Result) Print(w io.Writer) {
	fprintf(w, "SLO-bounded batching, 100MB object, %s SLO (Figure 22)\n", r.SLO)
	fprintf(w, "%10s | %22s | %24s | %18s\n", "updates/m",
		"attainment w/ vs w/o", "cost $/min w/ vs w/o", "transfers w/ vs w/o")
	for _, p := range r.Points {
		fprintf(w, "%10d | %9.1f%% vs %7.1f%% | %10.4f vs %9.4f | %7d vs %8d\n",
			p.UpdatesPerMin,
			100*p.AttainmentBatched, 100*p.AttainmentUnbatched,
			p.CostPerMinBatched, p.CostPerMinUnbatched,
			p.TransfersBatched, p.TransfersUnbatched)
	}
}

// PartSizeRow is one part-size measurement of the ablation bench behind
// the paper's 8 MB choice (§5.1).
type PartSizeRow struct {
	PartSize int64
	MeanS    float64
	CostUSD  float64
}

// PartSizeResult sweeps the part size for a fixed distributed replication,
// exposing the trade-off the paper describes: small parts balance better
// but pay more per-part overhead; large parts are efficient but let a slow
// instance hold the task hostage.
type PartSizeResult struct {
	Rows []PartSizeRow
}

// RunPartSizeAblation replicates a 1 GB object over the high-variance
// Azure->GCP path with 32 instances at several part sizes.
func RunPartSizeAblation(quick bool) *PartSizeResult {
	sizes := []int64{1 * MB, 4 * MB, 8 * MB, 32 * MB, 128 * MB}
	rounds := 4
	if quick {
		sizes = []int64{4 * MB, 8 * MB, 64 * MB}
		rounds = 2
	}
	src, dst := cloud.RegionID("azure:eastus"), cloud.RegionID("gcp:asia-northeast1")
	res := &PartSizeResult{}
	for _, ps := range sizes {
		w := newWorld("partsize")
		mustCreate(w, src, "src", false)
		mustCreate(w, dst, "dst", false)
		var sumS float64
		tasks := 0
		deployService(w, model.New(), engine.Rule{
			Src: src, Dst: dst, SrcBucket: "src", DstBucket: "dst",
			ForceN: 32, ForceLoc: src, PartSize: ps,
		}, core.Options{OnTaskDone: func(r engine.TaskResult) {
			sumS += r.ExecSeconds()
			tasks++
		}})
		var cost float64
		for r := 0; r < rounds; r++ {
			cost += costDelta(w, func() {
				putObject(w, src, "src", "obj", 1*GB, r)
			})
		}
		res.Rows = append(res.Rows, PartSizeRow{
			PartSize: ps,
			MeanS:    sumS / float64(tasks),
			CostUSD:  cost / float64(rounds),
		})
	}
	return res
}

// Print writes the sweep.
func (r *PartSizeResult) Print(w io.Writer) {
	fprintf(w, "Part-size ablation, 1GB azure:eastus -> gcp:asia-northeast1, 32 fns\n")
	fprintf(w, "%10s %12s %12s\n", "part", "mean s", "cost $")
	for _, row := range r.Rows {
		fprintf(w, "%10s %12.2f %12.4f\n", fmt.Sprintf("%dMB", row.PartSize/MB), row.MeanS, row.CostUSD)
	}
}
