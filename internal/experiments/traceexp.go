package experiments

import (
	"io"
	"time"

	"repro/internal/baselines"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/simrand"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/world"
)

// Fig2Result reproduces Figure 2: the PUT request size distribution of
// an IBM-COS-like trace, by request count and by capacity.
type Fig2Result struct {
	Labels      []string
	CountPct    []float64
	CapacityPct []float64
	TotalPuts   int64
}

// RunFig2 generates a day-long trace and buckets its PUT sizes.
func RunFig2(quick bool) *Fig2Result {
	dur := 24 * time.Hour
	if quick {
		dur = 2 * time.Hour
	}
	ops := trace.Generate(trace.DefaultConfig(dur, 600))
	labels, counts, capacity := trace.SizeHistogram(ops)
	var totalC, totalB int64
	for i := range labels {
		totalC += counts[i]
		totalB += capacity[i]
	}
	res := &Fig2Result{Labels: labels, TotalPuts: totalC}
	for i := range labels {
		res.CountPct = append(res.CountPct, 100*float64(counts[i])/float64(totalC))
		res.CapacityPct = append(res.CapacityPct, 100*float64(capacity[i])/float64(totalB))
	}
	return res
}

// Print writes the histogram.
func (r *Fig2Result) Print(w io.Writer) {
	fprintf(w, "PUT request size distribution, %d PUTs (Figure 2)\n", r.TotalPuts)
	fprintf(w, "%-10s %10s %10s\n", "bucket", "count%", "capacity%")
	for i, l := range r.Labels {
		fprintf(w, "%-10s %10.2f %10.2f\n", l, r.CountPct[i], r.CapacityPct[i])
	}
}

// Fig3Result reproduces Figure 3: per-minute write throughput over a
// multi-day trace.
type Fig3Result struct {
	MBps []float64
}

// RunFig3 generates a week-long (quick: day-long) trace and derives its
// throughput series.
func RunFig3(quick bool) *Fig3Result {
	days := 7
	if quick {
		days = 1
	}
	ops := trace.Generate(trace.DefaultConfig(time.Duration(days)*24*time.Hour, 400))
	return &Fig3Result{MBps: trace.ThroughputSeries(ops)}
}

// Print summarizes the series (min/mean/max and variation).
func (r *Fig3Result) Print(w io.Writer) {
	lo, hi := r.MBps[0], r.MBps[0]
	var sum float64
	for _, v := range r.MBps {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		sum += v
	}
	fprintf(w, "Write throughput over %d minutes (Figure 3)\n", len(r.MBps))
	fprintf(w, "  min %.1f MB/s, mean %.1f MB/s, max %.1f MB/s (%.1fx swing)\n",
		lo, sum/float64(len(r.MBps)), hi, hi/(lo+0.01))
}

// Fig5Policy is one VM shutdown policy's trace-replay outcome.
type Fig5Policy struct {
	IdleTimeout time.Duration
	P50S        float64
	P99S        float64
	MaxS        float64
	VMCost      float64
}

// Fig5Result reproduces Figure 5: Skyplane under a dynamic workload with
// different keep-alive policies.
type Fig5Result struct {
	Ops      int
	Policies []Fig5Policy
}

// RunFig5 replays a moderate-tenant trace against Skyplane with 5 min,
// 1 min and 20 s idle shutdown.
func RunFig5(quick bool) *Fig5Result {
	dur := 60 * time.Minute
	rate := 3.0 // a moderate tenant: a few requests per minute
	if quick {
		dur = 20 * time.Minute
	}
	cfg := trace.DefaultConfig(dur, rate)
	cfg.DeleteFraction = 0
	ops := trace.Generate(cfg)
	// Clip giant objects: the moderate tenant of Figure 5 moves small data.
	for i := range ops {
		if ops[i].Size > 256*MB {
			ops[i].Size = 256 * MB
		}
	}

	res := &Fig5Result{Ops: len(ops)}
	for _, idle := range []time.Duration{5 * time.Minute, time.Minute, 20 * time.Second} {
		w := newWorld("fig5")
		src, dst := cloud.RegionID("aws:us-east-1"), cloud.RegionID("aws:us-east-2")
		mustCreate(w, src, "src", false)
		mustCreate(w, dst, "dst", false)
		sky := baselines.NewSkyplane(w, src, dst, "src", "dst", 1, idle)
		if err := w.Region(src).Obj.Subscribe("src", sky.HandleEvent); err != nil {
			panic(err)
		}
		vmBefore := w.Meter.Item("vm:compute")
		trace.Replay(w.Clock, ops, func(op trace.Op) {
			applyTraceOp(w, src, "src", op)
		})
		w.Clock.Quiesce()
		sky.Shutdown()
		w.Clock.Quiesce()
		delays := sky.Tracker.DelaysSeconds()
		res.Policies = append(res.Policies, Fig5Policy{
			IdleTimeout: idle,
			P50S:        stats.Percentile(delays, 50),
			P99S:        stats.Percentile(delays, 99),
			MaxS:        stats.Percentile(delays, 100),
			VMCost:      w.Meter.Item("vm:compute") - vmBefore,
		})
	}
	return res
}

// applyTraceOp issues one trace operation against a bucket.
func applyTraceOp(w *world.World, region cloud.RegionID, bucket string, op trace.Op) {
	if op.Type == trace.OpDelete {
		// Deleting a never-written key is a no-op, as in the real service.
		_ = w.Region(region).Obj.Delete(bucket, op.Key)
		return
	}
	seed := uint64(simrand.Seed("trace-op", op.Key, op.At.String()))
	if _, err := w.Region(region).Obj.Put(bucket, op.Key, objstore.BlobOfSize(op.Size, seed)); err != nil {
		panic(err)
	}
}

// Print writes the per-policy outcome.
func (r *Fig5Result) Print(w io.Writer) {
	fprintf(w, "Skyplane on a dynamic workload, %d ops (Figure 5)\n", r.Ops)
	fprintf(w, "%12s %10s %10s %10s %12s\n", "idle", "p50(s)", "p99(s)", "max(s)", "VM cost ($)")
	for _, p := range r.Policies {
		fprintf(w, "%12s %10.1f %10.1f %10.1f %12.3f\n", p.IdleTimeout, p.P50S, p.P99S, p.MaxS, p.VMCost)
	}
}

// Fig23Result reproduces Figure 23: per-minute p99.99 replication delay on
// a busy production-like trace, AReplica vs S3 RTC.
type Fig23Result struct {
	Ops              int
	AReplicaP9999    []float64
	S3RTCP9999       []float64
	AReplicaOverall  float64
	S3RTCOverall     float64
	AReplicaResolved int
	S3RTCResolved    int
}

// RunFig23 replays a busy one-hour trace from aws:us-east-1 to us-east-2
// against both systems. The request rate is scaled down from the paper's
// replay (which used 512 driver clients) but keeps its burstiness.
func RunFig23(quick bool) *Fig23Result {
	dur := 60 * time.Minute
	rate := 600.0
	if quick {
		dur = 10 * time.Minute
		rate = 200
	}
	cfg := trace.DefaultConfig(dur, rate)
	ops := trace.Generate(cfg)
	src, dst := cloud.RegionID("aws:us-east-1"), cloud.RegionID("aws:us-east-2")
	res := &Fig23Result{Ops: len(ops)}

	// --- AReplica ---
	{
		w := newWorld("fig23")
		m := model.New()
		mustCreate(w, src, "src", false)
		mustCreate(w, dst, "dst", false)
		svc := deployService(w, m, engine.Rule{
			Src: src, Dst: dst, SrcBucket: "src", DstBucket: "dst",
			SLO: 10 * time.Second, Percentile: 0.99,
		}, core.Options{ProfileRounds: profileRounds(quick)})
		start := w.Clock.Now()
		trace.Replay(w.Clock, ops, func(op trace.Op) { applyTraceOp(w, src, "src", op) })
		w.Clock.Quiesce()
		times, delays := recordSeries(svc.Engine.Tracker)
		res.AReplicaP9999 = trace.WindowedPercentile(times, delays, start, time.Minute, 99.99)
		res.AReplicaOverall = stats.Percentile(delays, 99.99)
		res.AReplicaResolved = len(delays)
	}

	// --- S3 RTC ---
	{
		w := newWorld("fig23")
		mustCreate(w, src, "src", true)
		mustCreate(w, dst, "dst", true)
		rtc, err := baselines.NewS3RTC(w, src, dst, "src", "dst")
		if err != nil {
			panic(err)
		}
		// The managed service's capacity sits just under the trace's burst
		// peak, so sustained bursts queue briefly — the >30 s p99.99 spikes
		// of the paper's Figure 23 — without collapsing.
		if quick {
			rtc.SetCapacity(15, 120)
		} else {
			rtc.SetCapacity(50, 300)
		}
		if err := w.Region(src).Obj.Subscribe("src", rtc.HandleEvent); err != nil {
			panic(err)
		}
		start := w.Clock.Now()
		trace.Replay(w.Clock, ops, func(op trace.Op) { applyTraceOp(w, src, "src", op) })
		w.Clock.Quiesce()
		times, delays := recordSeries(rtc.Tracker)
		res.S3RTCP9999 = trace.WindowedPercentile(times, delays, start, time.Minute, 99.99)
		res.S3RTCOverall = stats.Percentile(delays, 99.99)
		res.S3RTCResolved = len(delays)
	}
	return res
}

// recordSeries extracts (event time, delay seconds) pairs from a tracker.
func recordSeries(tr *engine.Tracker) ([]time.Time, []float64) {
	recs := tr.Records()
	times := make([]time.Time, len(recs))
	delays := make([]float64, len(recs))
	for i, r := range recs {
		times[i] = r.EventTime
		delays[i] = r.Delay.Seconds()
	}
	return times, delays
}

// Print writes the per-minute series and overall tail.
func (r *Fig23Result) Print(w io.Writer) {
	fprintf(w, "Production trace p99.99 replication delay (Figure 23), %d ops\n", r.Ops)
	fprintf(w, "  overall p99.99: AReplica %.1fs (%d resolved) vs S3RTC %.1fs (%d resolved)\n",
		r.AReplicaOverall, r.AReplicaResolved, r.S3RTCOverall, r.S3RTCResolved)
	fprintf(w, "  per-minute p99.99 (s):\n   min  AReplica  S3RTC\n")
	n := len(r.AReplicaP9999)
	if len(r.S3RTCP9999) < n {
		n = len(r.S3RTCP9999)
	}
	for i := 0; i < n; i++ {
		fprintf(w, "  %4d %9.1f %7.1f\n", i, r.AReplicaP9999[i], r.S3RTCP9999[i])
	}
}
