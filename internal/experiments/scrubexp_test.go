package experiments

import (
	"bytes"
	"testing"
)

// TestScrubSweepAcceptance checks the sweep's core claims: without scrub
// the lossy profile leaves residual divergence, and every scrubbed cadence
// converges fully with zero residual divergence and zero duplicate final
// writes while actually paying for digest traffic.
func TestScrubSweepAcceptance(t *testing.T) {
	res, err := RunScrub(ScrubConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatalf("expected baseline + >= 2 cadences, got %d rows", len(res.Points))
	}
	base := res.Points[0]
	if base.Cadence != "off" {
		t.Fatalf("first row should be the no-scrub baseline, got %q", base.Cadence)
	}
	if base.ResidualDivergence == 0 {
		t.Fatal("lossy baseline left no divergence; the sweep proved nothing")
	}
	for _, p := range res.Points[1:] {
		if p.ConvergencePct != 100 || p.ResidualDivergence != 0 {
			t.Fatalf("cadence %s: converged %.1f%%, residual %d — scrub did not close the gap",
				p.Cadence, p.ConvergencePct, p.ResidualDivergence)
		}
		if p.DupFinalWrites != 0 {
			t.Fatalf("cadence %s produced %d duplicate final writes, want 0", p.Cadence, p.DupFinalWrites)
		}
		if p.Rounds == 0 || p.DigestBytes == 0 {
			t.Fatalf("cadence %s ran %d rounds / %d digest bytes; scrubbing did not happen",
				p.Cadence, p.Rounds, p.DigestBytes)
		}
		if p.RepairsDispatched+p.RepairsRedriven == 0 {
			t.Fatalf("cadence %s repaired nothing yet converged; audit is broken", p.Cadence)
		}
	}
	tables := res.CSV()
	if len(tables) != 1 || tables[0].Name != "scrub_cadence" || len(tables[0].Rows) != len(res.Points) {
		t.Fatalf("CSV export malformed: %+v", tables)
	}
}

// TestScrubSweepDeterministic pins byte-identical reruns — the property the
// regression harness (benchreport) depends on.
func TestScrubSweepDeterministic(t *testing.T) {
	run := func() string {
		res, err := RunScrub(ScrubConfig{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.Print(&buf)
		return buf.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identically-seeded scrub sweeps differ:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
}
