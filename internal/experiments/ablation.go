package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/stats"
)

// Fig8Bar is one bar of Figure 8: a path executed on one platform's
// functions.
type Fig8Bar struct {
	Label    string
	Src, Dst cloud.RegionID
	Exec     cloud.RegionID
	MeanMBps float64
	StdMBps  float64
}

// Fig8Result reproduces Figure 8: replication speed of a 1 GB object
// between AWS us-east-1, Azure eastus and GCP us-east1, grouped by where
// the functions run.
type Fig8Result struct {
	Bars []Fig8Bar
}

// RunFig8 replicates a 1 GB object over every ordered pair of the three
// evaluation regions with 16 functions pinned to each side in turn.
func RunFig8(quick bool) *Fig8Result {
	rounds := 5
	if quick {
		rounds = 2
	}
	regions := []cloud.RegionID{"aws:us-east-1", "azure:eastus", "gcp:us-east1"}
	short := map[cloud.RegionID]string{
		"aws:us-east-1": "AWS", "azure:eastus": "Azure", "gcp:us-east1": "GCP",
	}
	res := &Fig8Result{}
	for _, src := range regions {
		for _, dst := range regions {
			if src == dst {
				continue
			}
			for _, exec := range []cloud.RegionID{src, dst} {
				speeds := replicationSpeeds(src, dst, exec, 1*GB, 16, rounds)
				fit := stats.FitNormal(speeds)
				res.Bars = append(res.Bars, Fig8Bar{
					Label: fmt.Sprintf("%s2%s@%s", short[src], short[dst], short[exec]),
					Src:   src, Dst: dst, Exec: exec,
					MeanMBps: fit.Mu, StdMBps: fit.Sigma,
				})
			}
		}
	}
	return res
}

// replicationSpeeds runs `rounds` forced-plan replications and returns the
// achieved end-to-end speeds in MiB/s.
func replicationSpeeds(src, dst, exec cloud.RegionID, size int64, n, rounds int) []float64 {
	w := newWorld("fig8")
	mustCreate(w, src, "src", false)
	mustCreate(w, dst, "dst", false)
	var mu sync.Mutex
	var speeds []float64
	svc := deployService(w, model.New(), engine.Rule{
		Src: src, Dst: dst, SrcBucket: "src", DstBucket: "dst",
		ForceN: n, ForceLoc: exec,
	}, core.Options{OnTaskDone: func(r engine.TaskResult) {
		mu.Lock()
		speeds = append(speeds, float64(r.Size)/(1<<20)/r.ExecSeconds())
		mu.Unlock()
	}})
	_ = svc
	for r := 0; r < rounds; r++ {
		// Fresh instances each round: measured spread must reflect the
		// instance population, not one warm set.
		w.Region(exec).Fn.FlushWarm()
		putObject(w, src, "src", "obj", size, r)
		w.Clock.Quiesce()
	}
	return speeds
}

// Print writes the bars.
func (r *Fig8Result) Print(w io.Writer) {
	fprintf(w, "Asymmetric behaviour of cloud functions, 1GB x 16 fns (Figure 8, MiB/s)\n")
	for _, b := range r.Bars {
		fprintf(w, "  %-18s %8.1f +- %6.1f\n", b.Label, b.MeanMBps, b.StdMBps)
	}
}

// Fig12Result reproduces Figure 12's illustrative example: two replicators
// at 4 and 2 parts/second sharing 8 parts.
type Fig12Result struct {
	EqualSeconds   float64 // fixed 4/4 split
	OptimalSeconds float64 // oracle 5/3 split
	PoolSeconds    float64 // decentralized pool (simulated)
}

// RunFig12 computes the static splits analytically and simulates the
// decentralized pool with deterministic per-part service times.
func RunFig12() *Fig12Result {
	const parts = 8
	rate1, rate2 := 4.0, 2.0
	res := &Fig12Result{
		EqualSeconds:   max(4/rate1, 4/rate2),
		OptimalSeconds: max(5/rate1, 3/rate2),
	}
	// Pool simulation: each replicator claims the next part when free.
	var t1, t2 float64
	claimed := 0
	for claimed < parts {
		if t1 <= t2 {
			t1 += 1 / rate1
		} else {
			t2 += 1 / rate2
		}
		claimed++
	}
	res.PoolSeconds = max(t1, t2)
	return res
}

// Print writes the three execution times.
func (r *Fig12Result) Print(w io.Writer) {
	fprintf(w, "Distribution of 8 parts over replicators at 4 and 2 parts/s (Figure 12)\n")
	fprintf(w, "  equal split (4/4):   %.2fs\n", r.EqualSeconds)
	fprintf(w, "  optimal split (5/3): %.2fs\n", r.OptimalSeconds)
	fprintf(w, "  decentralized pool:  %.2fs\n", r.PoolSeconds)
}

// Fig17Instance is one replicator's contribution in the scheduling
// ablation.
type Fig17Instance struct {
	BusySeconds float64
	Chunks      int
}

// Fig17Result reproduces Figure 17: per-instance execution time and chunk
// counts under fair dispatch versus the decentralized part pool.
type Fig17Result struct {
	Fair []Fig17Instance
	Pool []Fig17Instance

	FairTaskSeconds float64
	PoolTaskSeconds float64
}

// RunFig17 replicates a 1 GB object from Azure eastus to GCP
// asia-northeast1 with 32 instances under both scheduling modes.
func RunFig17(quick bool) *Fig17Result {
	rounds := 3
	if quick {
		rounds = 1
	}
	run := func(mode engine.SchedulingMode) ([]Fig17Instance, float64) {
		w := newWorld("fig17")
		src, dst := cloud.RegionID("azure:eastus"), cloud.RegionID("gcp:asia-northeast1")
		mustCreate(w, src, "src", false)
		mustCreate(w, dst, "dst", false)
		var mu sync.Mutex
		var insts []Fig17Instance
		var taskSecs []float64
		deployService(w, model.New(), engine.Rule{
			Src: src, Dst: dst, SrcBucket: "src", DstBucket: "dst",
			ForceN: 32, ForceLoc: src, Scheduling: mode,
		}, core.Options{OnTaskDone: func(r engine.TaskResult) {
			mu.Lock()
			for _, st := range r.Instances {
				insts = append(insts, Fig17Instance{BusySeconds: st.Busy.Seconds(), Chunks: st.Chunks})
			}
			taskSecs = append(taskSecs, r.ExecSeconds())
			mu.Unlock()
		}})
		for r := 0; r < rounds; r++ {
			putObject(w, src, "src", "obj", 1*GB, r)
			w.Clock.Quiesce()
		}
		return insts, stats.Mean(taskSecs)
	}
	res := &Fig17Result{}
	res.Fair, res.FairTaskSeconds = run(engine.FairDispatch)
	res.Pool, res.PoolTaskSeconds = run(engine.PartPool)
	return res
}

// Print writes the distributions' summary statistics.
func (r *Fig17Result) Print(w io.Writer) {
	summarize := func(name string, insts []Fig17Instance, task float64) {
		var busy []float64
		minC, maxC := 1<<30, 0
		for _, in := range insts {
			busy = append(busy, in.BusySeconds)
			if in.Chunks < minC {
				minC = in.Chunks
			}
			if in.Chunks > maxC {
				maxC = in.Chunks
			}
		}
		fprintf(w, "  %-14s exec time p0/p50/p100 = %.1f/%.1f/%.1f s, chunks %d-%d, task %.1fs\n",
			name, stats.Percentile(busy, 0), stats.Percentile(busy, 50), stats.Percentile(busy, 100),
			minC, maxC, task)
	}
	fprintf(w, "Scheduling ablation: 1GB azure:eastus -> gcp:asia-northeast1, 32 fns (Figure 17)\n")
	summarize("fair", r.Fair, r.FairTaskSeconds)
	summarize("part-pool", r.Pool, r.PoolTaskSeconds)
}

// ModelAccuracyResult reproduces Figures 18-19: measured replication times
// against the model's predicted distribution for one path at n=1 and n=32.
type ModelAccuracyResult struct {
	Src, Dst cloud.RegionID

	ActualN1  []float64
	ActualN32 []float64

	PredictedN1Mean, PredictedN1Std   float64
	PredictedN32Mean, PredictedN32Std float64

	PredictedN1P90, PredictedN32P90 float64
}

// RunModelAccuracy profiles a path, then replicates a 1 GB object
// repeatedly with 1 and 32 source-side functions, comparing against the
// model (100 runs; fewer in quick mode).
func RunModelAccuracy(src, dst cloud.RegionID, quick bool) *ModelAccuracyResult {
	runs := 100
	if quick {
		runs = 30
	}
	res := &ModelAccuracyResult{Src: src, Dst: dst}

	w := newWorld("modelacc")
	m := model.New()
	mustCreate(w, src, "src", false)
	mustCreate(w, dst, "dst", false)
	// Profile via a throwaway deployment on separate buckets so the
	// measured runs use forced plans against the same world.
	mustCreate(w, src, "profile-src", false)
	mustCreate(w, dst, "profile-dst", false)
	// Model accuracy is sensitive to profiling noise; use full effort even
	// in quick mode.
	deployService(w, m, engine.Rule{
		Src: src, Dst: dst, SrcBucket: "profile-src", DstBucket: "profile-dst",
	}, core.Options{ProfileRounds: 16})

	for _, n := range []int{1, 32} {
		var mu sync.Mutex
		var actual []float64
		bucketSrc := fmt.Sprintf("acc-src-%d", n)
		bucketDst := fmt.Sprintf("acc-dst-%d", n)
		mustCreate(w, src, bucketSrc, false)
		mustCreate(w, dst, bucketDst, false)
		deployService(w, m, engine.Rule{
			Src: src, Dst: dst, SrcBucket: bucketSrc, DstBucket: bucketDst,
			ForceN: n, ForceLoc: src,
		}, core.Options{OnTaskDone: func(r engine.TaskResult) {
			mu.Lock()
			actual = append(actual, r.ExecSeconds())
			mu.Unlock()
		}})
		for r := 0; r < runs; r++ {
			w.Region(src).Fn.FlushWarm() // sample a fresh instance set per run
			putObject(w, src, bucketSrc, "obj", 1*GB, r)
			w.Clock.Quiesce()
		}
		d, err := m.ReplTime(src, dst, src, 1*GB, n, false)
		if err != nil {
			panic(err)
		}
		if n == 1 {
			res.ActualN1 = actual
			res.PredictedN1Mean, res.PredictedN1Std, res.PredictedN1P90 = d.Mean(), d.Std(), d.Quantile(0.9)
		} else {
			res.ActualN32 = actual
			res.PredictedN32Mean, res.PredictedN32Std, res.PredictedN32P90 = d.Mean(), d.Std(), d.Quantile(0.9)
		}
	}
	return res
}

// Print compares measured and predicted moments.
func (r *ModelAccuracyResult) Print(w io.Writer) {
	fprintf(w, "Model accuracy for 1GB %s -> %s (Figures 18-19)\n", r.Src, r.Dst)
	line := func(n int, actual []float64, pm, ps, p90 float64) {
		fprintf(w, "  n=%-3d measured %6.2f +- %5.2f s | predicted %6.2f +- %5.2f s (p90 %.2f)\n",
			n, stats.Mean(actual), stats.StdDev(actual), pm, ps, p90)
	}
	line(1, r.ActualN1, r.PredictedN1Mean, r.PredictedN1Std, r.PredictedN1P90)
	line(32, r.ActualN32, r.PredictedN32Mean, r.PredictedN32Std, r.PredictedN32P90)
}

// Table4Entry is one cell of Table 4.
type Table4Entry struct {
	Src, Dst                  cloud.RegionID
	PredMean, PredStd         float64
	MeasuredMean, MeasuredStd float64
}

// Table4Result reproduces Table 4: predicted vs measured replication time
// (mean +- std) for six region pairs with 32 function instances.
type Table4Result struct {
	Entries []Table4Entry
}

// RunTable4 evaluates the model across the paper's three-region matrix.
func RunTable4(quick bool) *Table4Result {
	runs := 20
	if quick {
		runs = 8
	}
	regions := []cloud.RegionID{"aws:us-east-1", "azure:westus2", "gcp:europe-west6"}
	res := &Table4Result{}
	for _, src := range regions {
		for _, dst := range regions {
			if src == dst {
				continue
			}
			w := newWorld("table4")
			m := model.New()
			mustCreate(w, src, "p-src", false)
			mustCreate(w, dst, "p-dst", false)
			// Like Figures 18-19, the predicted spread is sensitive to the
			// number of instances the profiler sampled; use full effort.
			deployService(w, m, engine.Rule{
				Src: src, Dst: dst, SrcBucket: "p-src", DstBucket: "p-dst",
			}, core.Options{ProfileRounds: 16})

			var mu sync.Mutex
			var actual []float64
			mustCreate(w, src, "src", false)
			mustCreate(w, dst, "dst", false)
			deployService(w, m, engine.Rule{
				Src: src, Dst: dst, SrcBucket: "src", DstBucket: "dst",
				ForceN: 32, ForceLoc: src,
			}, core.Options{OnTaskDone: func(r engine.TaskResult) {
				mu.Lock()
				actual = append(actual, r.ExecSeconds())
				mu.Unlock()
			}})
			for r := 0; r < runs; r++ {
				w.Region(src).Fn.FlushWarm() // fresh instance set per run
				putObject(w, src, "src", "obj", 1*GB, r)
				w.Clock.Quiesce()
			}
			d, err := m.ReplTime(src, dst, src, 1*GB, 32, false)
			if err != nil {
				panic(err)
			}
			res.Entries = append(res.Entries, Table4Entry{
				Src: src, Dst: dst,
				PredMean: d.Mean(), PredStd: d.Std(),
				MeasuredMean: stats.Mean(actual), MeasuredStd: stats.StdDev(actual),
			})
		}
	}
	return res
}

// Print writes the predicted-vs-measured matrix.
func (t *Table4Result) Print(w io.Writer) {
	fprintf(w, "Predicted vs measured replication time, 1GB x 32 fns (Table 4, seconds)\n")
	fprintf(w, "%-22s %-22s %18s %18s\n", "src", "dst", "predicted", "measured")
	for _, e := range t.Entries {
		fprintf(w, "%-22s %-22s %9.2f+-%-7.2f %9.2f+-%-7.2f\n",
			e.Src, e.Dst, e.PredMean, e.PredStd, e.MeasuredMean, e.MeasuredStd)
	}
}

// Fig20Row is one destination's replication time under the three
// execution-side policies.
type Fig20Row struct {
	Dst                    cloud.RegionID
	SrcSideS, DstSideS     float64
	DynamicS               float64
	DynamicChoseSourceSide bool
}

// Fig20Result reproduces Figure 20: static source side vs static
// destination side vs AReplica's dynamic selection, 128 MB single
// function.
type Fig20Result struct {
	Src  cloud.RegionID
	Rows []Fig20Row
}

// RunFig20 measures the three policies from one source region.
func RunFig20(src cloud.RegionID, dests []cloud.RegionID, quick bool) *Fig20Result {
	rounds := 5
	if quick {
		rounds = 2
	}
	res := &Fig20Result{Src: src}
	for _, dst := range dests {
		row := Fig20Row{Dst: dst}
		// Static sides: forced single function.
		row.SrcSideS = stats.Mean(replicationTimes(src, dst, 128*MB, 1, src, rounds))
		row.DstSideS = stats.Mean(replicationTimes(src, dst, 128*MB, 1, dst, rounds))

		// Dynamic: a relaxed SLO that still keeps the planner at a single
		// function, profiled per pair.
		w := newWorld("fig20")
		m := model.New()
		mustCreate(w, src, "src", false)
		mustCreate(w, dst, "dst", false)
		var mu sync.Mutex
		var times []float64
		var choseSrc bool
		deployService(w, m, engine.Rule{
			Src: src, Dst: dst, SrcBucket: "src", DstBucket: "dst",
			SLO: 2 * time.Minute,
		}, core.Options{
			ProfileRounds: profileRounds(quick),
			OnTaskDone: func(r engine.TaskResult) {
				mu.Lock()
				times = append(times, r.ExecSeconds())
				choseSrc = r.Plan.Loc == src
				mu.Unlock()
			},
		})
		for r := 0; r < rounds; r++ {
			putObject(w, src, "src", "obj", 128*MB, r)
			w.Clock.Quiesce()
		}
		row.DynamicS = stats.Mean(times)
		row.DynamicChoseSourceSide = choseSrc
		res.Rows = append(res.Rows, row)
	}
	return res
}

// replicationTimes measures forced-plan replication times.
func replicationTimes(src, dst cloud.RegionID, size int64, n int, loc cloud.RegionID, rounds int) []float64 {
	w := newWorld("repltime")
	mustCreate(w, src, "src", false)
	mustCreate(w, dst, "dst", false)
	var mu sync.Mutex
	var times []float64
	deployService(w, model.New(), engine.Rule{
		Src: src, Dst: dst, SrcBucket: "src", DstBucket: "dst",
		ForceN: n, ForceLoc: loc,
	}, core.Options{OnTaskDone: func(r engine.TaskResult) {
		mu.Lock()
		times = append(times, r.ExecSeconds())
		mu.Unlock()
	}})
	for r := 0; r < rounds; r++ {
		w.Region(loc).Fn.FlushWarm() // fresh instance per round
		putObject(w, src, "src", "obj", size, r)
		w.Clock.Quiesce()
	}
	return times
}

// Print writes the per-destination comparison.
func (r *Fig20Result) Print(w io.Writer) {
	fprintf(w, "Dynamic region selection from %s, 128MB single function (Figure 20, seconds)\n", r.Src)
	fprintf(w, "%-24s %10s %10s %10s %s\n", "destination", "src-side", "dst-side", "dynamic", "chosen")
	for _, row := range r.Rows {
		side := "dst"
		if row.DynamicChoseSourceSide {
			side = "src"
		}
		fprintf(w, "%-24s %10.1f %10.1f %10.1f %s\n", row.Dst, row.SrcSideS, row.DstSideS, row.DynamicS, side)
	}
}
