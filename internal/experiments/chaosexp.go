package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fleetobs"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/simrand"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/world"
)

// faultLagTarget is the per-event replication-lag objective the fault
// matrix monitors against. Calibrated between the clean baseline (every
// "none" delay stays under ~1.3s, so the baseline row never alerts) and
// the degraded-transfer profiles, whose 24-64MB objects blow past it.
const faultLagTarget = 2 * time.Second

// FaultMatrixConfig configures the chaos fault-matrix experiment.
type FaultMatrixConfig struct {
	// Profiles are chaos profile specs ("mixed", "storage-flaky@7"); empty
	// runs every built-in profile. "none" is always included (and run
	// first) as the cost baseline.
	Profiles []string
	// Objects is the number of source writes per scenario (default 40;
	// quick mode 16).
	Objects int
	Quick   bool
	// Events, when non-nil, collects every scenario's SLO alert events;
	// each scenario's events are scoped by its profile spec.
	Events *fleetobs.EventLog
	// LagTarget overrides the monitored per-event lag objective
	// (default faultLagTarget).
	LagTarget time.Duration
}

// FaultScenario is one row of the fault matrix: a chaos profile's impact
// on convergence, delay, and cost.
type FaultScenario struct {
	Profile        string
	Objects        int // source objects written
	Converged      int // destination holds the final source version
	ConvergencePct float64
	P50S, P99S     float64 // replication delay percentiles (seconds)
	DupFinalWrites int     // duplicate destination writes of an already-current version
	// ResidualDivergence counts keys still divergent after recovery: source
	// versions missing or stale at the destination plus destination orphans
	// — what an anti-entropy pass (experiments.RunScrub) would repair.
	ResidualDivergence int
	DLQ                int // events still parked in the DLQ after recovery
	// LagP99S is the streaming per-destination replication-lag p99 from
	// the engine.lag.seconds watermark histogram (unlike P99S it is
	// labelled {rule,dest} and feeds the same family the SLO monitor
	// reads), BacklogMax the high-water pending-event depth, and
	// OldestAgeMaxS the peak oldest-unreplicated-object age the monitor
	// sampled — nonzero whenever a fault window stalls replication.
	LagP99S       float64
	BacklogMax    int64
	OldestAgeMaxS float64
	// SLOAlerts counts burn-rate/DLQ/divergence alert transitions the
	// fleetobs monitor emitted (recoveries excluded).
	SLOAlerts       int
	Injected        int64 // chaos decisions that injected a fault
	Retries         int64 // engine task-level retries
	BreakerOpens    int64 // circuit-breaker open transitions
	Redrives        int64 // automatic + manual DLQ redrives
	CostUSD         float64
	CostOverheadPct float64 // vs the "none" baseline row
}

// FaultMatrixResult is the full fault matrix (ISSUE: scenario ×
// convergence %, p99, cost overhead).
type FaultMatrixResult struct {
	Scenarios []FaultScenario
}

// RunFaultMatrix replays an identical write workload under each chaos
// profile and measures how far the hardened engine converges, how much
// the injected faults delay replication, and what the retries cost.
// Everything is deterministic per profile seed: the same spec list yields
// byte-identical Print output.
func RunFaultMatrix(cfg FaultMatrixConfig) (*FaultMatrixResult, error) {
	specs := cfg.Profiles
	if len(specs) == 0 {
		specs = chaos.Names()
	}
	// The "none" baseline always runs first so overheads have a reference.
	ordered := []string{"none"}
	for _, s := range specs {
		if s != "none" {
			ordered = append(ordered, s)
		}
	}
	objects := cfg.Objects
	if objects <= 0 {
		objects = 40
		if cfg.Quick {
			objects = 16
		}
	}
	target := cfg.LagTarget
	if target <= 0 {
		target = faultLagTarget
	}

	res := &FaultMatrixResult{}
	var baseCost float64
	for i, spec := range ordered {
		prof, err := chaos.Parse(spec)
		if err != nil {
			return nil, err
		}
		cfg.Events.SetScope(spec)
		sc, err := runFaultScenario(prof, spec, objects, cfg.Quick, cfg.Events, target)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			baseCost = sc.CostUSD
		}
		if baseCost > 0 {
			sc.CostOverheadPct = (sc.CostUSD/baseCost - 1) * 100
		}
		res.Scenarios = append(res.Scenarios, sc)
	}
	return res, nil
}

// runFaultScenario runs one profile's scenario on a fresh world.
func runFaultScenario(prof chaos.Profile, spec string, objects int, quick bool, log *fleetobs.EventLog, lagTarget time.Duration) (FaultScenario, error) {
	w := newWorld("chaos-" + strings.ReplaceAll(spec, "@", "-"))
	src, dst := AWSEast, AzureEast
	srcBucket, dstBucket := "chaos-src", "chaos-dst"
	mustCreate(w, src, srcBucket, true)
	mustCreate(w, dst, dstBucket, true)

	svc := deployService(w, model.New(), engine.Rule{
		Src: src, Dst: dst, SrcBucket: srcBucket, DstBucket: dstBucket,
	}, core.Options{
		ProfileRounds: profileRounds(quick),
		EnableMonitor: true,
		MonitorSLO:    fleetobs.SLO{LagTarget: lagTarget},
		Events:        log,
	})

	// Count duplicate final writes at the destination: a *distinct* PUT
	// (new sequence number) whose ETag matches the version already current
	// there replicated the same content twice — exactly what the dedupe
	// layers must prevent. Deduping on Seq matters because notification
	// chaos also duplicates deliveries to this subscriber; those are the
	// same write seen twice, not a duplicate write.
	var dupMu sync.Mutex
	dups := 0
	lastSeq := map[string]uint64{}
	lastETag := map[string]string{}
	if err := w.Region(dst).Obj.Subscribe(dstBucket, func(ev objstore.Event) {
		if ev.Type != objstore.EventPut {
			return
		}
		dupMu.Lock()
		if ev.Seq > lastSeq[ev.Key] {
			if ev.ETag != "" && lastETag[ev.Key] == ev.ETag {
				dups++
			}
			lastSeq[ev.Key] = ev.Seq
			lastETag[ev.Key] = ev.ETag
		}
		dupMu.Unlock()
	}); err != nil {
		return FaultScenario{}, err
	}

	// Arm chaos only after deployment so profiling fits a clean model;
	// partition windows are anchored here.
	w.SetChaos(prof)

	// Identical workload per scenario: writes spread over ~80s of virtual
	// time (2s apart) so the built-in partition window (20s..50s after
	// arming) lands mid-workload, with sizes spanning the single-function
	// and distributed paths.
	sizes := []int64{512 * 1024, 4 * MB, 24 * MB, 64 * MB}
	cost := costDelta(w, func() {
		for i := 0; i < objects; i++ {
			key := fmt.Sprintf("obj-%03d", i)
			putObjectRetrying(w, src, srcBucket, key, sizes[i%len(sizes)], i)
			// Poll at a 1s scrape cadence between writes: burn rates must
			// re-evaluate even in fault windows where nothing completes, and
			// the oldest-age watermark only samples at poll instants — a 2s
			// stride would always land after the in-flight event resolved.
			for tick := 0; tick < 2; tick++ {
				w.Clock.Sleep(time.Second)
				svc.Monitor.Poll()
			}
		}
		w.Clock.Quiesce()
		svc.Monitor.Poll()

		// Recovery: reconciliation backfill sweeps (the periodic job that
		// catches dropped notifications) and one operator DLQ redrive, all
		// still under chaos.
		for pass := 0; pass < 3; pass++ {
			n, err := svc.Engine.Backfill()
			w.Clock.Quiesce()
			if err == nil && n == 0 {
				break
			}
		}
		if svc.Engine.RedriveDLQ() > 0 {
			w.Clock.Quiesce()
		}
	})

	// Disarm for verification so the convergence audit itself cannot fail.
	w.SetChaos(chaos.Profile{})

	metas, err := w.Region(src).Obj.List(srcBucket)
	if err != nil {
		return FaultScenario{}, err
	}
	converged := 0
	for _, m := range metas {
		if cur, err := w.Region(dst).Obj.Head(dstBucket, m.Key); err == nil && cur.ETag == m.ETag {
			converged++
		}
	}
	pct := 100.0
	if len(metas) > 0 {
		pct = 100 * float64(converged) / float64(len(metas))
	}

	delays := svc.Engine.Tracker.DelaysSeconds()
	dupMu.Lock()
	dupFinal := dups
	dupMu.Unlock()
	// Watermarks: the backlog high-water comes from the mirrored gauge's
	// aggregate (raised on every pending add, not just at poll points);
	// the oldest-age peak from the monitor's labelled child gauge, which
	// SampleWatermarks refreshes each poll.
	dims := []telemetry.Label{
		telemetry.L("rule", svc.Engine.RuleID()),
		telemetry.L("dest", string(dst)),
	}
	oldestMS := w.Metrics.GaugeVec("engine.lag.oldest_age_ms").With(dims...)
	return FaultScenario{
		Profile:            spec,
		Objects:            len(metas),
		Converged:          converged,
		ConvergencePct:     pct,
		P50S:               stats.Percentile(delays, 50),
		P99S:               stats.Percentile(delays, 99),
		DupFinalWrites:     dupFinal,
		ResidualDivergence: auditDivergence(w, svc),
		DLQ:                len(svc.Engine.DLQ()),
		LagP99S:            svc.Engine.LagHistogram().Quantile(0.99),
		BacklogMax:         w.Metrics.Gauge("engine.lag.backlog").Max(),
		OldestAgeMaxS:      float64(oldestMS.Max()) / 1000,
		SLOAlerts:          svc.Monitor.AlertCount(),
		Injected:           w.Metrics.Counter("chaos.injected").Value(),
		Retries:            w.Metrics.Counter("engine.retries").Value(),
		BreakerOpens:       w.Metrics.Counter("engine.breaker_open").Value(),
		Redrives:           w.Metrics.Counter("engine.dlq.redriven").Value(),
		CostUSD:            cost,
	}, nil
}

// putObjectRetrying is putObject with an application-side retry loop:
// under chaos the source PUT itself can be refused, and a real client
// retries. Returns whether the write eventually succeeded.
func putObjectRetrying(w *world.World, region cloud.RegionID, bucket, key string, size int64, salt int) bool {
	seed := uint64(simrand.Seed("exp-obj", string(region), bucket, key, fmt.Sprint(salt)))
	blob := objstore.BlobOfSize(size, seed)
	for attempt := 0; attempt < 8; attempt++ {
		if attempt > 0 {
			w.Clock.Sleep(250 * time.Millisecond << uint(attempt-1))
		}
		if _, err := w.Region(region).Obj.Put(bucket, key, blob); err == nil {
			return true
		}
	}
	return false
}

// Print writes the fault matrix in the evaluation's table style.
func (r *FaultMatrixResult) Print(out io.Writer) {
	fprintf(out, "Fault matrix: chaos profile x convergence/delay/cost (hardened engine)\n")
	fprintf(out, "%-16s %9s %6s %8s %8s %5s %8s %4s %9s %8s %8s %8s %10s %9s %8s %7s %8s %6s\n",
		"profile", "converged", "pct", "p50_s", "p99_s", "dup", "residual", "dlq",
		"injected", "retries", "breaker", "redrive", "cost_usd", "overhead",
		"lag_p99", "blg_max", "oldest_s", "alerts")
	for _, s := range r.Scenarios {
		fprintf(out, "%-16s %5d/%-3d %5.1f%% %8.2f %8.2f %5d %8d %4d %9d %8d %8d %8d %10.4f %8.1f%% %8.2f %7d %8.2f %6d\n",
			s.Profile, s.Converged, s.Objects, s.ConvergencePct, s.P50S, s.P99S,
			s.DupFinalWrites, s.ResidualDivergence, s.DLQ, s.Injected, s.Retries,
			s.BreakerOpens, s.Redrives, s.CostUSD, s.CostOverheadPct,
			s.LagP99S, s.BacklogMax, s.OldestAgeMaxS, s.SLOAlerts)
	}
}

// CSV exports the fault matrix.
func (r *FaultMatrixResult) CSV() []CSVTable {
	t := CSVTable{
		Name: "fault_matrix",
		Header: []string{"profile", "objects", "converged", "convergence_pct",
			"p50_s", "p99_s", "dup_final_writes", "residual_divergence", "dlq",
			"injected", "retries", "breaker_opens", "redrives", "cost_usd",
			"cost_overhead_pct", "lag_p99_s", "backlog_max", "oldest_age_max_s",
			"slo_alerts"},
	}
	for _, s := range r.Scenarios {
		t.Rows = append(t.Rows, []string{
			s.Profile, fmt.Sprint(s.Objects), fmt.Sprint(s.Converged), f64(s.ConvergencePct),
			f64(s.P50S), f64(s.P99S), fmt.Sprint(s.DupFinalWrites),
			fmt.Sprint(s.ResidualDivergence), fmt.Sprint(s.DLQ),
			fmt.Sprint(s.Injected), fmt.Sprint(s.Retries), fmt.Sprint(s.BreakerOpens),
			fmt.Sprint(s.Redrives), f64(s.CostUSD), f64(s.CostOverheadPct),
			f64(s.LagP99S), fmt.Sprint(s.BacklogMax), f64(s.OldestAgeMaxS),
			fmt.Sprint(s.SLOAlerts),
		})
	}
	return []CSVTable{t}
}
