package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// CSVTable is a plottable dataset extracted from an experiment result.
type CSVTable struct {
	Name   string // file stem, e.g. "fig23_p9999"
	Header []string
	Rows   [][]string
}

// WriteDir writes the table as <dir>/<name>.csv.
func (t CSVTable) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, t.Name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func f64(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// CSV exports the table's cells as rows.
func (t *TableResult) CSV() []CSVTable {
	out := CSVTable{
		Name:   "table_" + string(t.Source),
		Header: []string{"size_bytes", "dest", "system", "delay_s", "cost_usd"},
	}
	add := func(si, di int, system string, c Cell) {
		if !c.Valid {
			return
		}
		out.Rows = append(out.Rows, []string{
			strconv.FormatInt(t.Sizes[si], 10), string(t.Dests[di]), system,
			f64(c.DelayS), f64(c.CostUSD),
		})
	}
	for si := range t.Sizes {
		for di := range t.Dests {
			add(si, di, "areplica", t.AReplica[si][di])
			add(si, di, "skyplane", t.Skyplane[si][di])
			add(si, di, t.PropName, t.Prop[si][di])
		}
	}
	return []CSVTable{out}
}

// CSV exports Figure 2's histogram.
func (r *Fig2Result) CSV() []CSVTable {
	t := CSVTable{Name: "fig2_put_sizes", Header: []string{"bucket", "count_pct", "capacity_pct"}}
	for i, l := range r.Labels {
		t.Rows = append(t.Rows, []string{l, f64(r.CountPct[i]), f64(r.CapacityPct[i])})
	}
	return []CSVTable{t}
}

// CSV exports Figure 3's throughput series.
func (r *Fig3Result) CSV() []CSVTable {
	t := CSVTable{Name: "fig3_throughput", Header: []string{"minute", "mb_per_s"}}
	for i, v := range r.MBps {
		t.Rows = append(t.Rows, []string{strconv.Itoa(i), f64(v)})
	}
	return []CSVTable{t}
}

// CSV exports Figure 7's scaling series.
func (r *Fig7Result) CSV() []CSVTable {
	t := CSVTable{Name: "fig7_scaling", Header: []string{"link", "functions", "aggregate_mibps"}}
	for _, s := range r.Series {
		for i, n := range s.Counts {
			t.Rows = append(t.Rows, []string{s.Label, strconv.Itoa(n), f64(s.MBps[i])})
		}
	}
	return []CSVTable{t}
}

// CSV exports Figure 8's bars.
func (r *Fig8Result) CSV() []CSVTable {
	t := CSVTable{Name: "fig8_asymmetry", Header: []string{"label", "mean_mibps", "std_mibps"}}
	for _, b := range r.Bars {
		t.Rows = append(t.Rows, []string{b.Label, f64(b.MeanMBps), f64(b.StdMBps)})
	}
	return []CSVTable{t}
}

// CSV exports Figure 9's per-instance time series.
func (r *Fig9Result) CSV() []CSVTable {
	t := CSVTable{Name: "fig9_instances", Header: []string{"instance", "at_s", "mibps"}}
	for id, samples := range r.Instances {
		for _, s := range samples {
			t.Rows = append(t.Rows, []string{id, f64(s.AtSeconds), f64(s.MBps)})
		}
	}
	return []CSVTable{t}
}

// CSV exports Figure 17's per-instance distributions.
func (r *Fig17Result) CSV() []CSVTable {
	t := CSVTable{Name: "fig17_scheduling", Header: []string{"mode", "busy_s", "chunks"}}
	for _, in := range r.Fair {
		t.Rows = append(t.Rows, []string{"fair", f64(in.BusySeconds), strconv.Itoa(in.Chunks)})
	}
	for _, in := range r.Pool {
		t.Rows = append(t.Rows, []string{"pool", f64(in.BusySeconds), strconv.Itoa(in.Chunks)})
	}
	return []CSVTable{t}
}

// CSV exports the measured samples of Figures 18-19.
func (r *ModelAccuracyResult) CSV() []CSVTable {
	name := fmt.Sprintf("fig18_19_%s_to_%s", r.Src, r.Dst)
	t := CSVTable{Name: name, Header: []string{"n", "actual_s"}}
	for _, v := range r.ActualN1 {
		t.Rows = append(t.Rows, []string{"1", f64(v)})
	}
	for _, v := range r.ActualN32 {
		t.Rows = append(t.Rows, []string{"32", f64(v)})
	}
	return []CSVTable{t}
}

// CSV exports Figure 23's per-minute series.
func (r *Fig23Result) CSV() []CSVTable {
	t := CSVTable{Name: "fig23_p9999", Header: []string{"minute", "areplica_s", "s3rtc_s"}}
	n := len(r.AReplicaP9999)
	if len(r.S3RTCP9999) < n {
		n = len(r.S3RTCP9999)
	}
	for i := 0; i < n; i++ {
		t.Rows = append(t.Rows, []string{strconv.Itoa(i), f64(r.AReplicaP9999[i]), f64(r.S3RTCP9999[i])})
	}
	return []CSVTable{t}
}

// CSV exports Figure 22's batching points.
func (r *Fig22Result) CSV() []CSVTable {
	t := CSVTable{Name: "fig22_batching", Header: []string{
		"updates_per_min", "attain_batched", "attain_unbatched", "cost_min_batched", "cost_min_unbatched"}}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(p.UpdatesPerMin),
			f64(p.AttainmentBatched), f64(p.AttainmentUnbatched),
			f64(p.CostPerMinBatched), f64(p.CostPerMinUnbatched),
		})
	}
	return []CSVTable{t}
}

// CSVExporter is implemented by results that can emit plottable datasets.
type CSVExporter interface {
	CSV() []CSVTable
}

// ExportCSV writes every table of an exporter into dir.
func ExportCSV(dir string, results ...CSVExporter) error {
	for _, r := range results {
		for _, t := range r.CSV() {
			if err := t.WriteDir(dir); err != nil {
				return err
			}
		}
	}
	return nil
}

// CSV exports Figure 16's bulk rows.
func (b *BulkResult) CSV() []CSVTable {
	t := CSVTable{Name: "fig16_bulk", Header: []string{
		"src", "dst", "areplica_s", "areplica_cost", "areplica_n", "skyplane_s", "skyplane_cost"}}
	for _, p := range b.Pairs {
		t.Rows = append(t.Rows, []string{
			string(p.Src), string(p.Dst),
			f64(p.AReplicaS), f64(p.AReplicaCost), strconv.Itoa(p.AReplicaN),
			f64(p.SkyplaneS), f64(p.SkyplaneCost),
		})
	}
	return []CSVTable{t}
}

// CSV exports Figure 20's per-destination rows.
func (r *Fig20Result) CSV() []CSVTable {
	t := CSVTable{Name: "fig20_from_" + string(r.Src), Header: []string{
		"dst", "src_side_s", "dst_side_s", "dynamic_s", "dynamic_chose"}}
	for _, row := range r.Rows {
		chose := "dst"
		if row.DynamicChoseSourceSide {
			chose = "src"
		}
		t.Rows = append(t.Rows, []string{
			string(row.Dst), f64(row.SrcSideS), f64(row.DstSideS), f64(row.DynamicS), chose,
		})
	}
	return []CSVTable{t}
}

// CSV exports Figure 21's COPY rows.
func (r *Fig21Result) CSV() []CSVTable {
	t := CSVTable{Name: "fig21_copy", Header: []string{
		"size_bytes", "skyplane_s", "skyplane_cost", "s3rtc_s", "s3rtc_cost",
		"areplica_full_s", "areplica_full_cost", "areplica_log_s", "areplica_log_cost"}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			strconv.FormatInt(row.SizeBytes, 10),
			f64(row.SkyplaneS), f64(row.SkyplaneCost),
			f64(row.S3RTCS), f64(row.S3RTCCost),
			f64(row.AReplicaFullS), f64(row.AReplicaFullCost),
			f64(row.AReplicaLogS), f64(row.AReplicaLogCost),
		})
	}
	return []CSVTable{t}
}
