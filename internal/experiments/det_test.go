package experiments

import (
	"math"
	"testing"
)

// TestRunToRunDeterminism pins the simulator's reproducibility contract:
// identical runs produce bit-identical delays (every random draw is seeded
// by entity identity, and virtual time is scheduling-independent), and
// costs equal to within floating-point accumulation order.
func TestRunToRunDeterminism(t *testing.T) {
	a := RunTable(TableConfig{Source: AWSEast, Quick: true})
	b := RunTable(TableConfig{Source: AWSEast, Quick: true})
	for si := range a.Sizes {
		for di := range a.Dests {
			ca, cb := a.AReplica[si][di], b.AReplica[si][di]
			if ca.DelayS != cb.DelayS {
				t.Errorf("cell %d/%d delay differs: %v vs %v", si, di, ca.DelayS, cb.DelayS)
			}
			if math.Abs(ca.CostUSD-cb.CostUSD) > 1e-9*math.Max(ca.CostUSD, 1e-9) {
				t.Errorf("cell %d/%d cost differs beyond round-off: %v vs %v", si, di, ca.CostUSD, cb.CostUSD)
			}
			sa, sb := a.Skyplane[si][di], b.Skyplane[si][di]
			if sa.DelayS != sb.DelayS {
				t.Errorf("cell %d/%d skyplane delay differs", si, di)
			}
		}
	}
}
