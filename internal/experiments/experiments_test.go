package experiments

import (
	"io"
	"strings"
	"testing"

	"repro/internal/cloud"
)

// These tests run every experiment in quick mode and assert the paper's
// qualitative claims — who wins, by roughly what factor — rather than
// absolute numbers.

func TestTable1ShapeAWS(t *testing.T) {
	res := RunTable(TableConfig{Source: AWSEast, Quick: true})
	for si := range res.Sizes {
		for di := range res.Dests {
			a := res.AReplica[si][di]
			s := res.Skyplane[si][di]
			if !a.Valid || !s.Valid {
				t.Fatalf("missing cell %d/%d", si, di)
			}
			// AReplica beats Skyplane by a large factor on delay.
			if a.DelayS >= s.DelayS/2 {
				t.Errorf("size %s dest %s: AReplica %.1fs vs Skyplane %.1fs",
					fmtSize(res.Sizes[si]), res.Dests[di], a.DelayS, s.DelayS)
			}
			// And costs far less.
			if a.CostUSD >= s.CostUSD {
				t.Errorf("size %s dest %s: AReplica cost %.5f vs Skyplane %.5f",
					fmtSize(res.Sizes[si]), res.Dests[di], a.CostUSD, s.CostUSD)
			}
			if red := res.DelayReduction(si, di); red < 0.5 {
				t.Errorf("delay reduction %.2f below the paper's 61%%-99%% band", red)
			}
		}
	}
	// S3 RTC exists for the AWS destinations and sits between the two.
	for si := range res.Sizes {
		for di := range res.Dests {
			p := res.Prop[si][di]
			if !p.Valid {
				continue
			}
			if p.DelayS < 10 || p.DelayS > 40 {
				t.Errorf("S3RTC delay %.1fs out of its 15-26s band", p.DelayS)
			}
		}
	}
	res.Print(io.Discard)
}

func TestTable2ShapeAzure(t *testing.T) {
	res := RunTable(TableConfig{Source: AzureEast, Quick: true})
	for si := range res.Sizes {
		for di := range res.Dests {
			if red := res.DelayReduction(si, di); red < 0.5 {
				t.Errorf("delay reduction %.2f below the paper's band (dest %s)", red, res.Dests[di])
			}
		}
	}
	res.Print(io.Discard)
}

func TestFig4SkyplaneBreakdown(t *testing.T) {
	res := RunFig4()
	bd := res.Breakdown
	// Paper: only ~2% of time is data transfer; >99% of cost is VMs.
	if frac := float64(bd.Transfer) / float64(bd.Total()); frac > 0.10 {
		t.Errorf("transfer fraction %.2f, want tiny", frac)
	}
	if bd.Provisioning.Seconds() < 20 || bd.Container.Seconds() < 15 {
		t.Errorf("startup too fast: %+v", bd)
	}
	var total float64
	for _, v := range res.Costs {
		total += v
	}
	if vmFrac := res.Costs["vm:compute"] / total; vmFrac < 0.95 {
		t.Errorf("VM cost fraction %.3f, want >0.95", vmFrac)
	}
	res.Print(io.Discard)
}

func TestFig5KeepAlivePolicies(t *testing.T) {
	res := RunFig5(true)
	if len(res.Policies) != 3 {
		t.Fatalf("policies = %d", len(res.Policies))
	}
	// Max delay reaches minutes when provisioning hits the critical path.
	for _, p := range res.Policies {
		if p.MaxS < 60 {
			t.Errorf("idle %v: max %.0fs, expected minutes-scale spikes", p.IdleTimeout, p.MaxS)
		}
	}
	// Aggressive shutdown saves only modest VM cost versus keep-alive
	// (paper: <30% saving for the 20s policy vs 5min).
	fiveMin, twentySec := res.Policies[0].VMCost, res.Policies[2].VMCost
	if twentySec >= fiveMin {
		t.Errorf("20s policy (%v) should cost less than 5min (%v)", twentySec, fiveMin)
	}
	res.Print(io.Discard)
}

func TestFig6SweetSpot(t *testing.T) {
	res := RunFig6(true)
	aws := res.Panels["aws:us-east-1"]
	if len(aws) == 0 {
		t.Fatal("no AWS panel")
	}
	// Find the same remote at low and sweet-spot memory: bandwidth grows,
	// then flattens beyond the sweet spot.
	byMem := map[int]float64{}
	for _, p := range aws {
		if p.Remote == "aws:ca-central-1" {
			byMem[p.MemMB] = p.DownloadMBps
		}
	}
	if !(byMem[128] < byMem[1024]) {
		t.Errorf("bandwidth should grow with memory: %v", byMem)
	}
	if byMem[8192] > byMem[1024]*1.25 {
		t.Errorf("beyond the sweet spot should be flat: 1024=%v 8192=%v", byMem[1024], byMem[8192])
	}
	res.Print(io.Discard)
}

func TestFig7NearLinearScaling(t *testing.T) {
	res := RunFig7(true)
	for _, s := range res.Series {
		base := s.MBps[0] / float64(s.Counts[0])
		last := s.MBps[len(s.MBps)-1] / float64(s.Counts[len(s.Counts)-1])
		if last < base*0.7 || last > base*1.4 {
			t.Errorf("%s: per-fn bandwidth drifted %v -> %v", s.Label, base, last)
		}
	}
	res.Print(io.Discard)
}

func TestFig8AsymmetricExecution(t *testing.T) {
	res := RunFig8(true)
	byLabel := map[string]Fig8Bar{}
	for _, b := range res.Bars {
		byLabel[b.Label] = b
	}
	// Running on AWS functions beats running on Azure functions for the
	// same AWS<->Azure pair (the paper's core asymmetry finding).
	if byLabel["AWS2Azure@AWS"].MeanMBps <= byLabel["AWS2Azure@Azure"].MeanMBps {
		t.Errorf("AWS-side should be faster: %+v vs %+v",
			byLabel["AWS2Azure@AWS"], byLabel["AWS2Azure@Azure"])
	}
	if len(res.Bars) != 12 {
		t.Fatalf("bars = %d, want 12", len(res.Bars))
	}
	res.Print(io.Discard)
}

func TestFig9InstanceSpread(t *testing.T) {
	res := RunFig9()
	if len(res.Instances) != 5 {
		t.Fatalf("instances = %d", len(res.Instances))
	}
	var means []float64
	for _, samples := range res.Instances {
		var sum float64
		for _, s := range samples {
			sum += s.MBps
		}
		means = append(means, sum/float64(len(samples)))
	}
	lo, hi := means[0], means[0]
	for _, m := range means {
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if hi/lo < 1.2 {
		t.Errorf("instance spread %.2fx too tight", hi/lo)
	}
	res.Print(io.Discard)
}

func TestFig12Example(t *testing.T) {
	res := RunFig12()
	if res.EqualSeconds != 2.0 {
		t.Errorf("equal = %v, want 2.0", res.EqualSeconds)
	}
	if res.OptimalSeconds != 1.5 {
		t.Errorf("optimal = %v, want 1.5", res.OptimalSeconds)
	}
	if res.PoolSeconds > res.EqualSeconds || res.PoolSeconds < res.OptimalSeconds-0.01 {
		t.Errorf("pool = %v, want between optimal and equal", res.PoolSeconds)
	}
	res.Print(io.Discard)
}

func TestFig17PoolBeatsFair(t *testing.T) {
	res := RunFig17(true)
	if res.PoolTaskSeconds >= res.FairTaskSeconds {
		t.Errorf("pool task %.1fs should beat fair %.1fs", res.PoolTaskSeconds, res.FairTaskSeconds)
	}
	// Under the pool, chunk counts vary across instances; under fair they
	// are (nearly) equal.
	minmax := func(insts []Fig17Instance) (int, int) {
		mn, mx := 1<<30, 0
		for _, in := range insts {
			if in.Chunks < mn {
				mn = in.Chunks
			}
			if in.Chunks > mx {
				mx = in.Chunks
			}
		}
		return mn, mx
	}
	fMin, fMax := minmax(res.Fair)
	pMin, pMax := minmax(res.Pool)
	if fMax-fMin > 1 {
		t.Errorf("fair dispatch should assign equal chunks, got %d-%d", fMin, fMax)
	}
	if pMax-pMin < 2 {
		t.Errorf("pool should let fast instances take more chunks, got %d-%d", pMin, pMax)
	}
	res.Print(io.Discard)
}

func TestModelAccuracyOverestimatesButTracks(t *testing.T) {
	res := RunModelAccuracy("aws:us-east-1", "azure:eastus", true)
	// The paper's model "tends to overestimate" but tracks relative
	// behaviour: predicted mean within a 0.6x-2.5x band of measured.
	checkBand := func(name string, actual []float64, pred float64) {
		var sum float64
		for _, a := range actual {
			sum += a
		}
		meas := sum / float64(len(actual))
		if pred < meas*0.6 || pred > meas*2.5 {
			t.Errorf("%s: predicted %.2f vs measured %.2f", name, pred, meas)
		}
	}
	checkBand("n=1", res.ActualN1, res.PredictedN1Mean)
	checkBand("n=32", res.ActualN32, res.PredictedN32Mean)
	res.Print(io.Discard)
}

func TestTable4PredictionsTrack(t *testing.T) {
	res := RunTable4(true)
	if len(res.Entries) != 6 {
		t.Fatalf("entries = %d", len(res.Entries))
	}
	for _, e := range res.Entries {
		if e.PredMean < e.MeasuredMean*0.6 || e.PredMean > e.MeasuredMean*3 {
			t.Errorf("%s->%s: predicted %.2f vs measured %.2f", e.Src, e.Dst, e.PredMean, e.MeasuredMean)
		}
	}
	res.Print(io.Discard)
}

func TestFig20DynamicPicksGoodSide(t *testing.T) {
	res := RunFig20("azure:southeastasia",
		[]cloud.RegionID{"gcp:europe-west6", "gcp:us-east1", "gcp:asia-northeast1"}, true)
	for _, row := range res.Rows {
		better := row.SrcSideS
		if row.DstSideS < better {
			better = row.DstSideS
		}
		worse := row.SrcSideS
		if row.DstSideS > worse {
			worse = row.DstSideS
		}
		// Dynamic should be near the better static side, never near the
		// worse one when the gap is large.
		if worse > 1.5*better && row.DynamicS > (better+worse)/2 {
			t.Errorf("dest %s: dynamic %.1fs vs sides %.1f/%.1f", row.Dst, row.DynamicS, row.SrcSideS, row.DstSideS)
		}
	}
	res.Print(io.Discard)
}

func TestFig21ChangelogNearZeroCost(t *testing.T) {
	res := RunFig21(true)
	for _, row := range res.Rows {
		// Changelog propagation is orders of magnitude cheaper than any
		// full transfer.
		if row.AReplicaLogCost > row.AReplicaFullCost/20 {
			t.Errorf("size %s: log cost %.5f vs full %.5f", fmtSize(row.SizeBytes), row.AReplicaLogCost, row.AReplicaFullCost)
		}
		if row.AReplicaLogCost > row.SkyplaneCost/100 {
			t.Errorf("size %s: log cost %.5f vs skyplane %.5f", fmtSize(row.SizeBytes), row.AReplicaLogCost, row.SkyplaneCost)
		}
		// And fast.
		if row.AReplicaLogS > row.S3RTCS {
			t.Errorf("size %s: log delay %.1fs vs rtc %.1fs", fmtSize(row.SizeBytes), row.AReplicaLogS, row.S3RTCS)
		}
	}
	res.Print(io.Discard)
}

func TestFig22BatchingFlattensCost(t *testing.T) {
	res := RunFig22(true)
	if len(res.Points) < 2 {
		t.Fatal("need at least two frequencies")
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	// Without batching, cost grows with update frequency; with batching it
	// stays nearly flat.
	unbatchedGrowth := last.CostPerMinUnbatched / first.CostPerMinUnbatched
	batchedGrowth := last.CostPerMinBatched / first.CostPerMinBatched
	if unbatchedGrowth < 3 {
		t.Errorf("unbatched cost should grow with frequency: %.1fx", unbatchedGrowth)
	}
	if batchedGrowth > unbatchedGrowth/2 {
		t.Errorf("batched growth %.1fx should be far flatter than unbatched %.1fx", batchedGrowth, unbatchedGrowth)
	}
	// SLO attainment with batching stays high.
	for _, p := range res.Points {
		if p.AttainmentBatched < 0.9 {
			t.Errorf("freq %d: batched attainment %.2f", p.UpdatesPerMin, p.AttainmentBatched)
		}
	}
	res.Print(io.Discard)
}

func TestFig16BulkShape(t *testing.T) {
	res := RunFig16(true)
	for _, p := range res.Pairs {
		// AReplica finishes the bulk object several times faster.
		if p.AReplicaS >= p.SkyplaneS {
			t.Errorf("%s->%s: AReplica %.0fs vs Skyplane %.0fs", p.Src, p.Dst, p.AReplicaS, p.SkyplaneS)
		}
		// Cost parity-ish: egress dominates for bulk objects, so neither
		// side wins by an order of magnitude.
		if p.AReplicaCost > p.SkyplaneCost*1.5 {
			t.Errorf("%s->%s: AReplica cost %.2f vs Skyplane %.2f", p.Src, p.Dst, p.AReplicaCost, p.SkyplaneCost)
		}
	}
	res.Print(io.Discard)
}

func TestFig23TailShape(t *testing.T) {
	res := RunFig23(true)
	if res.AReplicaResolved == 0 || res.S3RTCResolved == 0 {
		t.Fatal("no resolved records")
	}
	// The paper's headline: AReplica p99.99 stays below 10s; S3 RTC sits
	// near 20s and spikes past 30s under bursts.
	if res.AReplicaOverall >= res.S3RTCOverall {
		t.Errorf("AReplica p99.99 %.1fs should beat S3RTC %.1fs", res.AReplicaOverall, res.S3RTCOverall)
	}
	if res.AReplicaOverall > 15 {
		t.Errorf("AReplica p99.99 = %.1fs, want near the paper's <10s", res.AReplicaOverall)
	}
	res.Print(io.Discard)
}

func TestFig2And3TraceShapes(t *testing.T) {
	f2 := RunFig2(true)
	var le1MB float64
	for i, l := range f2.Labels {
		if strings.HasSuffix(l, "1M") || i <= 4 {
			le1MB += f2.CountPct[i]
		}
	}
	if le1MB < 70 || le1MB > 90 {
		t.Errorf("count%% at or below 1MB = %.1f, want ~80", le1MB)
	}
	f2.Print(io.Discard)

	f3 := RunFig3(true)
	if len(f3.MBps) < 60 {
		t.Fatalf("series = %d minutes", len(f3.MBps))
	}
	f3.Print(io.Discard)
}

func TestPartSizeAblationTradeoff(t *testing.T) {
	res := RunPartSizeAblation(true)
	if len(res.Rows) < 3 {
		t.Fatal("need at least three part sizes")
	}
	// The largest part size should be slower than the 8MB middle ground
	// (scheduling inflexibility), reproducing the paper's reasoning.
	var eight, biggest PartSizeRow
	for _, row := range res.Rows {
		if row.PartSize == 8*MB {
			eight = row
		}
	}
	biggest = res.Rows[len(res.Rows)-1]
	if eight.PartSize == 0 {
		eight = res.Rows[len(res.Rows)/2]
	}
	if biggest.MeanS <= eight.MeanS {
		t.Errorf("giant parts (%.1fs) should be slower than 8MB parts (%.1fs)", biggest.MeanS, eight.MeanS)
	}
	res.Print(io.Discard)
}

func TestOverlayRelayTradeoff(t *testing.T) {
	res := RunOverlayAblation(true)
	// The relay's shorter legs should win on this trans-continental path...
	if !res.RelayChosen {
		t.Fatalf("planner never chose the relay: %+v", res)
	}
	if res.RelayS >= res.DirectS {
		t.Errorf("relay (%v s) should beat direct (%v s)", res.RelayS, res.DirectS)
	}
	// ...while paying for the second cross-region hop.
	if res.RelayCost <= res.DirectCost*1.3 {
		t.Errorf("relay cost %v should clearly exceed direct %v", res.RelayCost, res.DirectCost)
	}
	res.Print(io.Discard)
}
