package experiments

import (
	"reflect"
	"testing"
	"time"
)

// fleetTestConfig is a trimmed hundred-rule scenario sized for unit
// tests: the full topology mix, fewer direct rules, a short trace.
func fleetTestConfig() FleetConfig {
	return FleetConfig{
		Rules:      24,
		Duration:   2 * time.Minute,
		RatePerMin: 90,
		Quick:      true,
	}
}

// TestRunFleetConverges drives the mixed topology end to end: every
// audited key converges, nothing is left pending or dead-lettered, no
// duplicate final writes land, and the stall guard stays cold.
func TestRunFleetConverges(t *testing.T) {
	res, err := RunFleet(fleetTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules != 24 {
		t.Errorf("Rules = %d, want 24", res.Rules)
	}
	if res.ConvergencePct != 100 {
		t.Errorf("ConvergencePct = %.2f, want 100 (%d/%d diverged, %d pending)",
			res.ConvergencePct, res.Diverged, res.Audited, res.Pending)
	}
	if res.Pending != 0 || res.DLQ != 0 {
		t.Errorf("Pending = %d, DLQ = %d, want 0, 0", res.Pending, res.DLQ)
	}
	if res.DupFinalWrites != 0 {
		t.Errorf("DupFinalWrites = %d, want 0", res.DupFinalWrites)
	}
	if res.Forced != 0 {
		t.Errorf("Forced quota admissions = %d, want 0", res.Forced)
	}
	if res.Admits == 0 {
		t.Error("scheduler admitted nothing")
	}
	if len(res.PerRule) != res.Rules {
		t.Errorf("PerRule rows = %d, want %d", len(res.PerRule), res.Rules)
	}
}

// TestRunFleetDeterministic reruns the same configuration and requires
// an identical result — the fleet-hundred-rules bench row is gated on
// byte-identical reports.
func TestRunFleetDeterministic(t *testing.T) {
	a, err := RunFleet(fleetTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(fleetTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed fleet runs differ:\n%+v\nvs\n%+v", a, b)
	}
}
