package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"
)

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	f2 := RunFig2(true)
	f7 := RunFig7(true)
	if err := ExportCSV(dir, f2, f7); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2_put_sizes", "fig7_scaling"} {
		f, err := os.Open(filepath.Join(dir, name+".csv"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) < 3 {
			t.Fatalf("%s: only %d rows", name, len(rows))
		}
		for i, r := range rows {
			if len(r) != len(rows[0]) {
				t.Fatalf("%s row %d: ragged (%d vs %d cols)", name, i, len(r), len(rows[0]))
			}
		}
	}
}

// staticExporter is a canned CSVExporter for error-path tests.
type staticExporter []CSVTable

func (s staticExporter) CSV() []CSVTable { return s }

// flagExporter records whether ExportCSV ever asked it for tables.
type flagExporter struct{ called bool }

func (f *flagExporter) CSV() []CSVTable { f.called = true; return nil }

func TestExportCSVErrorPaths(t *testing.T) {
	tbl := CSVTable{Name: "x", Header: []string{"a"}, Rows: [][]string{{"1"}}}

	t.Run("dir is a file", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "not-a-dir")
		if err := os.WriteFile(path, []byte("occupied"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := ExportCSV(path, staticExporter{tbl}); err == nil {
			t.Fatal("ExportCSV into a plain file succeeded, want error")
		}
	})

	t.Run("unwritable dir", func(t *testing.T) {
		if os.Getuid() == 0 {
			t.Skip("root ignores directory permissions")
		}
		dir := filepath.Join(t.TempDir(), "ro")
		if err := os.MkdirAll(dir, 0o555); err != nil {
			t.Fatal(err)
		}
		if err := ExportCSV(dir, staticExporter{tbl}); err == nil {
			t.Fatal("ExportCSV into an unwritable dir succeeded, want error")
		}
	})

	t.Run("name escapes into missing dir", func(t *testing.T) {
		bad := CSVTable{Name: filepath.Join("missing-sub", "deep", "x"), Header: []string{"a"}}
		dir := t.TempDir()
		if err := ExportCSV(dir, staticExporter{bad}); err == nil {
			t.Fatal("ExportCSV with a nested missing path succeeded, want error")
		}
	})

	t.Run("first error stops the export", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "blocker")
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		second := &flagExporter{}
		// First exporter fails (target is a plain file); the second must
		// never be asked for its tables.
		if err := ExportCSV(path, staticExporter{tbl}, second); err == nil {
			t.Fatal("want error from first exporter")
		}
		if second.called {
			t.Fatal("export continued past the first error")
		}
	})

	t.Run("no exporters is a no-op", func(t *testing.T) {
		if err := ExportCSV(filepath.Join(t.TempDir(), "never-created")); err != nil {
			t.Fatalf("ExportCSV with no exporters: %v", err)
		}
	})
}

func TestCSVTableShapes(t *testing.T) {
	res := RunTable(TableConfig{Source: AWSEast, Quick: true})
	tables := res.CSV()
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	tb := tables[0]
	// 2 sizes x 3 dests x (areplica + skyplane + rtc-on-aws-dests).
	if len(tb.Rows) < 12 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if len(r) != len(tb.Header) {
			t.Fatal("ragged row")
		}
	}
}
