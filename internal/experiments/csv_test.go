package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"
)

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	f2 := RunFig2(true)
	f7 := RunFig7(true)
	if err := ExportCSV(dir, f2, f7); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2_put_sizes", "fig7_scaling"} {
		f, err := os.Open(filepath.Join(dir, name+".csv"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) < 3 {
			t.Fatalf("%s: only %d rows", name, len(rows))
		}
		for i, r := range rows {
			if len(r) != len(rows[0]) {
				t.Fatalf("%s row %d: ragged (%d vs %d cols)", name, i, len(r), len(rows[0]))
			}
		}
	}
}

func TestCSVTableShapes(t *testing.T) {
	res := RunTable(TableConfig{Source: AWSEast, Quick: true})
	tables := res.CSV()
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	tb := tables[0]
	// 2 sizes x 3 dests x (areplica + skyplane + rtc-on-aws-dests).
	if len(tb.Rows) < 12 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if len(r) != len(tb.Header) {
			t.Fatal("ragged row")
		}
	}
}
