package experiments

import (
	"bytes"
	"testing"
)

// TestCrashSweepRecovery is the issue's acceptance check at the experiment
// level: every enumerated crash point must converge with zero duplicate
// final writes and zero leftover in-progress MPUs, the crash must actually
// fire exactly once, and a resumed task must redo far less than a full
// restart would.
func TestCrashSweepRecovery(t *testing.T) {
	res, err := RunCrashSweep(CrashSweepConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(CrashPoints()) {
		t.Fatalf("swept %d points, want %d", len(res.Points), len(CrashPoints()))
	}
	if res.BaselineBytes < crashSweepSize {
		t.Fatalf("baseline moved %d bytes, want >= object size %d", res.BaselineBytes, int64(crashSweepSize))
	}
	for _, p := range res.Points {
		if p.Crashes != 1 {
			t.Errorf("%s: injected %d crashes, want exactly 1", p.Point, p.Crashes)
		}
		if !p.Converged {
			t.Errorf("%s: destination did not converge", p.Point)
		}
		if p.DupFinalWrites != 0 {
			t.Errorf("%s: %d duplicate final writes, want 0", p.Point, p.DupFinalWrites)
		}
		if p.MPUsLeft != 0 {
			t.Errorf("%s: %d in-progress MPUs survived GC, want 0", p.Point, p.MPUsLeft)
		}
		// The recovery-cost bound: a checkpointed resume must redo much
		// less than the whole object. Half the object is a generous bar —
		// observed values are around one part (or one attempt's worth for
		// pre-transfer crashes); a from-scratch restart would double it.
		if p.RedoneBytes >= crashSweepSize/2 {
			t.Errorf("%s: redid %d bytes (%.1f parts) — resume is not bounding rework",
				p.Point, p.RedoneBytes, p.RedoneParts)
		}
		if p.RedoneBytes < 0 {
			t.Errorf("%s: negative redone bytes %d — measurement is broken", p.Point, p.RedoneBytes)
		}
	}
	// Replicator-side crashes (claim/part/flush) must recover through the
	// checkpoint path, inheriting already-delivered parts rather than
	// restarting; tally across the sweep so a single point's flake-free
	// zero (e.g. a crash before any part landed) doesn't fail it.
	var resumed, partsIn int64
	for _, p := range res.Points {
		resumed += p.Resumed
		partsIn += p.PartsResumed
	}
	if resumed == 0 {
		t.Error("no crash point exercised checkpointed resume")
	}
	if partsIn == 0 {
		t.Error("no resumed task inherited delivered parts from its checkpoint")
	}
	tables := res.CSV()
	if len(tables) != 1 || tables[0].Name != "crash_sweep" || len(tables[0].Rows) != len(res.Points) {
		t.Fatalf("CSV export malformed: %+v", tables)
	}
}

// TestCrashSweepDeterministic: two identically-seeded sweeps are
// byte-identical — the CI invariant that makes the crash schedule a
// reproducible artifact rather than a flake source.
func TestCrashSweepDeterministic(t *testing.T) {
	run := func() (*CrashSweepResult, string) {
		res, err := RunCrashSweep(CrashSweepConfig{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.Print(&buf)
		return res, buf.String()
	}
	a, atext := run()
	b, btext := run()
	if atext != btext {
		t.Fatalf("identically-seeded crash sweeps differ:\n--- run 1\n%s--- run 2\n%s", atext, btext)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}
