// Package experiments regenerates every table and figure of the paper's
// evaluation (§8) on the simulated three-cloud world. Each experiment
// returns a typed result whose Print method emits the same rows/series
// the paper reports; cmd/benchtab and the root bench suite both drive
// these functions.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/objstore"
	"repro/internal/simrand"
	"repro/internal/world"
)

// Sizes used throughout the evaluation.
const (
	MB = int64(1) << 20
	GB = int64(1) << 30
)

// The three source regions of Tables 1-3.
var (
	AWSEast   = cloud.RegionID("aws:us-east-1")
	AzureEast = cloud.RegionID("azure:eastus")
	GCPEast   = cloud.RegionID("gcp:us-east1")
)

// destinationsFor returns the nine destination regions used for a table
// source, matching the paper's columns.
func destinationsFor(src cloud.RegionID) []cloud.RegionID {
	switch src {
	case AWSEast:
		return []cloud.RegionID{
			"aws:ca-central-1", "aws:eu-west-1", "aws:ap-northeast-1",
			"azure:eastus", "azure:uksouth", "azure:southeastasia",
			"gcp:us-east1", "gcp:europe-west6", "gcp:asia-northeast1",
		}
	case AzureEast:
		return []cloud.RegionID{
			"aws:us-east-1", "aws:eu-west-1", "aws:ap-northeast-1",
			"azure:westus2", "azure:uksouth", "azure:southeastasia",
			"gcp:us-east1", "gcp:europe-west6", "gcp:asia-northeast1",
		}
	case GCPEast:
		return []cloud.RegionID{
			"aws:us-east-1", "aws:eu-west-1", "aws:ap-northeast-1",
			"azure:eastus", "azure:uksouth", "azure:southeastasia",
			"gcp:us-west1", "gcp:europe-west6", "gcp:asia-northeast1",
		}
	}
	panic("experiments: unknown table source " + string(src))
}

// TraceDir, when non-empty (benchtab -tracedir), makes every experiment
// world record telemetry; FlushTelemetry then writes one Chrome trace and
// one metrics dump per world into the directory.
var TraceDir string

var (
	telemetryMu     sync.Mutex
	telemetryWorlds []labeledWorld
)

type labeledWorld struct {
	label string
	w     *world.World
}

// newWorld creates an experiment world. When TraceDir is set the world's
// tracer is enabled and the world is queued for FlushTelemetry; label
// names the experiment in the exported file names.
func newWorld(label string) *world.World {
	w := world.New()
	if TraceDir == "" {
		return w
	}
	w.Tracer.Enable()
	telemetryMu.Lock()
	telemetryWorlds = append(telemetryWorlds, labeledWorld{label, w})
	telemetryMu.Unlock()
	return w
}

// FlushTelemetry writes the queued worlds' traces and metrics into
// TraceDir as <label>-<n>.trace.json / <label>-<n>.metrics.txt and clears
// the queue. It is a no-op when TraceDir is unset.
func FlushTelemetry() error {
	if TraceDir == "" {
		return nil
	}
	telemetryMu.Lock()
	worlds := telemetryWorlds
	telemetryWorlds = nil
	telemetryMu.Unlock()
	if len(worlds) == 0 {
		return nil
	}
	if err := os.MkdirAll(TraceDir, 0o755); err != nil {
		return err
	}
	for i, lw := range worlds {
		base := fmt.Sprintf("%s-%02d", lw.label, i)
		if err := writeTo(filepath.Join(TraceDir, base+".trace.json"), lw.w.Tracer.WriteChromeTrace); err != nil {
			return err
		}
		if err := writeTo(filepath.Join(TraceDir, base+".metrics.txt"), lw.w.Metrics.WriteText); err != nil {
			return err
		}
	}
	return nil
}

func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// mustCreate creates a bucket or panics (experiment setup).
func mustCreate(w *world.World, region cloud.RegionID, bucket string, versioned bool) {
	if err := w.Region(region).Obj.CreateBucket(bucket, versioned); err != nil {
		panic(err)
	}
}

// putObject writes a synthetic object and returns its metadata. The seed
// derives from the key and salt so repeated rounds write distinct content.
func putObject(w *world.World, region cloud.RegionID, bucket, key string, size int64, salt int) objstore.PutResult {
	seed := uint64(simrand.Seed("exp-obj", string(region), bucket, key, fmt.Sprint(salt)))
	res, err := w.Region(region).Obj.Put(bucket, key, objstore.BlobOfSize(size, seed))
	if err != nil {
		panic(err)
	}
	return res
}

// deployService deploys an AReplica rule with shared-model profiling.
func deployService(w *world.World, m *model.Model, rule engine.Rule, opts core.Options) *core.Service {
	opts.Rule = rule
	opts.Model = m
	svc, err := core.Deploy(w, opts)
	if err != nil {
		panic(err)
	}
	return svc
}

// lastDelaySeconds returns the delay of the most recent resolved record.
func lastDelaySeconds(tr *engine.Tracker) float64 {
	recs := tr.Records()
	if len(recs) == 0 {
		return -1
	}
	return recs[len(recs)-1].Delay.Seconds()
}

// costDelta runs fn (plus a quiesce) and returns the total dollars accrued.
func costDelta(w *world.World, fn func()) float64 {
	before := w.Meter.Total()
	fn()
	w.Clock.Quiesce()
	return w.Meter.Total() - before
}

// fmtSize renders a byte count the way the paper labels its rows.
func fmtSize(size int64) string {
	switch {
	case size >= GB:
		return fmt.Sprintf("%dGB", size/GB)
	case size >= MB:
		return fmt.Sprintf("%dMB", size/MB)
	default:
		return fmt.Sprintf("%dB", size)
	}
}

// fprintf writes formatted output, ignoring errors (report printing).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}

// seconds formats a duration in seconds with one decimal.
func seconds(d time.Duration) string { return fmt.Sprintf("%.1f", d.Seconds()) }
