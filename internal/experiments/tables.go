package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/baselines"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/objstore"
)

// Cell is one table entry: mean replication delay and per-object cost.
type Cell struct {
	DelayS  float64
	CostUSD float64
	Valid   bool
}

// TableResult reproduces one of Tables 1-3: replication delay and cost
// from one source region to nine destinations at three object sizes, for
// AReplica, Skyplane, and the applicable proprietary service.
type TableResult struct {
	Source   cloud.RegionID
	Dests    []cloud.RegionID
	Sizes    []int64
	PropName string // "S3RTC", "AZRep", or "" when no proprietary baseline

	// Indexed [sizeIdx][destIdx].
	AReplica [][]Cell
	Skyplane [][]Cell
	Prop     [][]Cell
}

// TableConfig parameterizes a table run.
type TableConfig struct {
	Source cloud.RegionID
	Sizes  []int64
	Rounds int // measurements averaged per cell
	Quick  bool
}

func (c *TableConfig) defaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int64{1 * MB, 128 * MB, 1 * GB}
		if c.Quick {
			c.Sizes = []int64{1 * MB, 128 * MB}
		}
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
		if c.Quick {
			c.Rounds = 1
		}
	}
}

// RunTable regenerates one of Tables 1-3.
func RunTable(cfg TableConfig) *TableResult {
	cfg.defaults()
	w := newWorld("table")
	m := model.New()
	dests := destinationsFor(cfg.Source)
	if cfg.Quick {
		dests = dests[:3]
	}

	res := &TableResult{Source: cfg.Source, Dests: dests, Sizes: cfg.Sizes}
	switch cloud.MustLookup(cfg.Source).Provider {
	case cloud.AWS:
		res.PropName = "S3RTC"
	case cloud.Azure:
		res.PropName = "AZRep"
	}
	res.AReplica = newGrid(len(cfg.Sizes), len(dests))
	res.Skyplane = newGrid(len(cfg.Sizes), len(dests))
	res.Prop = newGrid(len(cfg.Sizes), len(dests))

	for di, dst := range dests {
		srcB := fmt.Sprintf("tbl-src-%d", di)
		dstB := fmt.Sprintf("tbl-dst-%d", di)
		mustCreate(w, cfg.Source, srcB, false)
		mustCreate(w, dst, dstB, false)
		svc := deployService(w, m, engine.Rule{
			Src: cfg.Source, Dst: dst, SrcBucket: srcB, DstBucket: dstB,
			SLO: 0, // fastest plan, as in §8.1
		}, core.Options{ProfileRounds: profileRounds(cfg.Quick)})

		skySrcB := fmt.Sprintf("sky-src-%d", di)
		skyDstB := fmt.Sprintf("sky-dst-%d", di)
		mustCreate(w, cfg.Source, skySrcB, false)
		mustCreate(w, dst, skyDstB, false)
		sky := baselines.NewSkyplane(w, cfg.Source, dst, skySrcB, skyDstB, 1, 0)
		if err := w.Region(cfg.Source).Obj.Subscribe(skySrcB, sky.HandleEvent); err != nil {
			panic(err)
		}

		var propHandle func(sizeIdx, round int) (float64, float64)
		srcProv := cloud.MustLookup(cfg.Source).Provider
		dstProv := cloud.MustLookup(dst).Provider
		if srcProv == dstProv && (srcProv == cloud.AWS || srcProv == cloud.Azure) {
			propSrcB := fmt.Sprintf("prop-src-%d", di)
			propDstB := fmt.Sprintf("prop-dst-%d", di)
			mustCreate(w, cfg.Source, propSrcB, true) // versioning required
			mustCreate(w, dst, propDstB, true)
			var handler func(ev objstore.Event)
			var lastDelay func() float64
			if srcProv == cloud.AWS {
				rtc, err := baselines.NewS3RTC(w, cfg.Source, dst, propSrcB, propDstB)
				if err != nil {
					panic(err)
				}
				handler = rtc.HandleEvent
				lastDelay = func() float64 { return lastDelaySeconds(rtc.Tracker) }
			} else {
				az, err := baselines.NewAZRep(w, cfg.Source, dst, propSrcB, propDstB)
				if err != nil {
					panic(err)
				}
				handler = az.HandleEvent
				lastDelay = func() float64 { return lastDelaySeconds(az.Tracker) }
			}
			if err := w.Region(cfg.Source).Obj.Subscribe(propSrcB, handler); err != nil {
				panic(err)
			}
			propHandle = func(sizeIdx, round int) (float64, float64) {
				size := cfg.Sizes[sizeIdx]
				cost := costDelta(w, func() {
					putObject(w, cfg.Source, propSrcB, fmt.Sprintf("o-%d", sizeIdx), size, round)
				})
				return lastDelay(), cost
			}
		}

		for si, size := range cfg.Sizes {
			var aDelay, aCost, sDelay, sCost, pDelay, pCost float64
			for r := 0; r < cfg.Rounds; r++ {
				key := fmt.Sprintf("o-%d", si)
				aCost += costDelta(w, func() {
					putObject(w, cfg.Source, srcB, key, size, r)
				})
				aDelay += lastDelaySeconds(svc.Engine.Tracker)

				sCost += costDelta(w, func() {
					putObject(w, cfg.Source, skySrcB, key, size, r)
				})
				sDelay += lastDelaySeconds(sky.Tracker)

				if propHandle != nil {
					d, c := propHandle(si, r)
					pDelay += d
					pCost += c
				}
			}
			k := float64(cfg.Rounds)
			res.AReplica[si][di] = Cell{DelayS: aDelay / k, CostUSD: aCost / k, Valid: true}
			res.Skyplane[si][di] = Cell{DelayS: sDelay / k, CostUSD: sCost / k, Valid: true}
			if propHandle != nil {
				res.Prop[si][di] = Cell{DelayS: pDelay / k, CostUSD: pCost / k, Valid: true}
			}
		}
	}
	return res
}

// Print writes the table in the paper's layout.
func (t *TableResult) Print(w io.Writer) {
	fprintf(w, "Replication delay and cost from %s (delay s / cost 1e-4$)\n", t.Source)
	fprintf(w, "%-8s %-10s", "Size", "System")
	for _, d := range t.Dests {
		fprintf(w, " %22s", d)
	}
	fprintf(w, "\n")
	row := func(name string, cells []Cell) {
		fprintf(w, "%-8s %-10s", "", name)
		for _, c := range cells {
			if !c.Valid {
				fprintf(w, " %22s", "N/A")
			} else {
				fprintf(w, " %10.1f/%-11.1f", c.DelayS, c.CostUSD*1e4)
			}
		}
		fprintf(w, "\n")
	}
	for si, size := range t.Sizes {
		fprintf(w, "---- %s ----\n", fmtSize(size))
		row("AReplica", t.AReplica[si])
		row("Skyplane", t.Skyplane[si])
		if t.PropName != "" {
			row(t.PropName, t.Prop[si])
		}
		// The paper's delta row: delay reduction vs the best baseline.
		fprintf(w, "%-8s %-10s", "", "delta")
		for di := range t.Dests {
			best := t.Skyplane[si][di].DelayS
			if t.Prop[si][di].Valid && t.Prop[si][di].DelayS < best {
				best = t.Prop[si][di].DelayS
			}
			if best <= 0 {
				fprintf(w, " %22s", "-")
				continue
			}
			fprintf(w, " %21.1f%%", 100*(t.AReplica[si][di].DelayS-best)/best)
		}
		fprintf(w, "\n")
	}
}

// DelayReduction returns AReplica's delay reduction versus the best
// baseline for a cell, as a fraction (0.9 = 90% faster).
func (t *TableResult) DelayReduction(sizeIdx, destIdx int) float64 {
	best := t.Skyplane[sizeIdx][destIdx].DelayS
	if t.Prop[sizeIdx][destIdx].Valid && t.Prop[sizeIdx][destIdx].DelayS < best {
		best = t.Prop[sizeIdx][destIdx].DelayS
	}
	if best <= 0 || math.IsNaN(best) {
		return 0
	}
	return 1 - t.AReplica[sizeIdx][destIdx].DelayS/best
}

func newGrid(rows, cols int) [][]Cell {
	g := make([][]Cell, rows)
	for i := range g {
		g[i] = make([]Cell, cols)
	}
	return g
}

func profileRounds(quick bool) int {
	if quick {
		return 6
	}
	return 12
}

// BulkPair is one row of Figure 16: 100 GB bulk replication.
type BulkPair struct {
	Src, Dst cloud.RegionID

	AReplicaS    float64
	AReplicaCost float64
	AReplicaN    int
	SkyplaneS    float64
	SkyplaneCost float64
}

// BulkResult reproduces Figure 16.
type BulkResult struct {
	SizeBytes int64
	Pairs     []BulkPair
}

// RunFig16 measures bulk replication of one large object (100 GB; 10 GB in
// quick mode) for representative region pairs, AReplica vs Skyplane with
// eight VMs per region.
func RunFig16(quick bool) *BulkResult {
	size := 100 * GB
	if quick {
		size = 10 * GB
	}
	pairs := [][2]cloud.RegionID{
		{"aws:us-east-1", "aws:ca-central-1"},
		{"aws:us-east-1", "azure:eastus"},
		{"aws:us-east-1", "gcp:asia-northeast1"},
		{"azure:eastus", "aws:ap-northeast-1"},
		{"gcp:us-east1", "azure:uksouth"},
		{"gcp:us-east1", "gcp:asia-northeast1"},
	}
	if quick {
		pairs = pairs[:2]
	}
	res := &BulkResult{SizeBytes: size}
	for pi, pr := range pairs {
		w := newWorld("fig16")
		m := model.New()
		src, dst := pr[0], pr[1]
		srcB, dstB := "bulk-src", "bulk-dst"
		mustCreate(w, src, srcB, false)
		mustCreate(w, dst, dstB, false)

		var planN int
		svc := deployService(w, m, engine.Rule{
			Src: src, Dst: dst, SrcBucket: srcB, DstBucket: dstB, SLO: 0,
		}, core.Options{
			ProfileRounds: profileRounds(quick),
			OnTaskDone:    func(r engine.TaskResult) { planN = r.Plan.N },
		})
		_ = svc

		var aDelay float64
		aCost := costDelta(w, func() {
			putObject(w, src, srcB, "bulk.bin", size, pi)
		})
		aDelay = lastDelaySeconds(svc.Engine.Tracker)

		skySrcB, skyDstB := "sky-bulk-src", "sky-bulk-dst"
		mustCreate(w, src, skySrcB, false)
		mustCreate(w, dst, skyDstB, false)
		sky := baselines.NewSkyplane(w, src, dst, skySrcB, skyDstB, 8, time.Minute)
		putObject(w, src, skySrcB, "bulk.bin", size, pi)
		var skyDur time.Duration
		skyCost := costDelta(w, func() {
			var err error
			skyDur, err = sky.ReplicateBulk("bulk.bin", size)
			if err != nil {
				panic(err)
			}
			sky.Shutdown()
		})

		res.Pairs = append(res.Pairs, BulkPair{
			Src: src, Dst: dst,
			AReplicaS: aDelay, AReplicaCost: aCost, AReplicaN: planN,
			SkyplaneS: skyDur.Seconds(), SkyplaneCost: skyCost,
		})
	}
	return res
}

// Print writes Figure 16's two panels as rows.
func (b *BulkResult) Print(w io.Writer) {
	fprintf(w, "Bulk replication of a %s object (Figure 16)\n", fmtSize(b.SizeBytes))
	fprintf(w, "%-24s %-24s %14s %12s %10s %14s %12s\n",
		"Source", "Destination", "AReplica(s)", "cost($)", "n(fns)", "Skyplane(s)", "cost($)")
	for _, p := range b.Pairs {
		fprintf(w, "%-24s %-24s %14.1f %12.3f %10d %14.1f %12.3f\n",
			p.Src, p.Dst, p.AReplicaS, p.AReplicaCost, p.AReplicaN, p.SkyplaneS, p.SkyplaneCost)
	}
}
