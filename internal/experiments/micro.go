package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/baselines"
	"repro/internal/cloud"
	"repro/internal/faas"
	"repro/internal/netsim"
	"repro/internal/simrand"
)

// Fig4Result reproduces Figure 4: the time and cost breakdown of Skyplane
// replicating a 10 MB object from AWS us-east-1 to us-east-2.
type Fig4Result struct {
	Breakdown baselines.Breakdown
	Costs     map[string]float64 // vm:compute, net:egress, obj:*
}

// RunFig4 measures one cold Skyplane transfer.
func RunFig4() *Fig4Result {
	w := newWorld("fig4")
	src, dst := cloud.RegionID("aws:us-east-1"), cloud.RegionID("aws:us-east-2")
	mustCreate(w, src, "src", false)
	mustCreate(w, dst, "dst", false)
	sky := baselines.NewSkyplane(w, src, dst, "src", "dst", 1, 0)
	putObject(w, src, "src", "obj", 10*MB, 0)

	before := w.Meter.Breakdown()
	bd, err := sky.ReplicateMeasured("obj", 10*MB)
	if err != nil {
		panic(err)
	}
	w.Clock.Quiesce()
	after := w.Meter.Breakdown()
	costs := make(map[string]float64)
	for k, v := range after {
		if d := v - before[k]; d > 0 {
			costs[k] = d
		}
	}
	return &Fig4Result{Breakdown: bd, Costs: costs}
}

// Print writes the two breakdown panels.
func (r *Fig4Result) Print(w io.Writer) {
	total := r.Breakdown.Total()
	fprintf(w, "Skyplane 10MB aws:us-east-1 -> aws:us-east-2 (Figure 4)\n")
	fprintf(w, "(a) Time: total %.2fs\n", total.Seconds())
	fprintf(w, "    VM provisioning    %6.2fs (%4.1f%%)\n", r.Breakdown.Provisioning.Seconds(), 100*float64(r.Breakdown.Provisioning)/float64(total))
	fprintf(w, "    Container startup  %6.2fs (%4.1f%%)\n", r.Breakdown.Container.Seconds(), 100*float64(r.Breakdown.Container)/float64(total))
	fprintf(w, "    Data transfer      %6.2fs (%4.1f%%)\n", r.Breakdown.Transfer.Seconds(), 100*float64(r.Breakdown.Transfer)/float64(total))
	fprintf(w, "    Others             %6.2fs (%4.1f%%)\n", r.Breakdown.Others.Seconds(), 100*float64(r.Breakdown.Others)/float64(total))
	var sum float64
	for _, v := range r.Costs {
		sum += v
	}
	fprintf(w, "(b) Cost: total $%.6f\n", sum)
	fprintf(w, "    VM                 $%.6f\n", r.Costs["vm:compute"])
	fprintf(w, "    Data transfer      $%.6f\n", r.Costs["net:egress"])
	fprintf(w, "    Storage requests   $%.6f\n", r.Costs["obj:put"]+r.Costs["obj:get"])
}

// Fig6Point is one configuration's measured bandwidth on one link.
type Fig6Point struct {
	MemMB        int
	VCPU         float64
	Remote       cloud.RegionID
	DownloadMBps float64
	UploadMBps   float64
}

// Fig6Result reproduces Figure 6: download/upload bandwidth versus
// function configuration for each platform.
type Fig6Result struct {
	Panels map[cloud.RegionID][]Fig6Point // keyed by execution region
}

// RunFig6 sweeps function configurations on the three platforms' east-US
// regions against representative remote regions.
func RunFig6(quick bool) *Fig6Result {
	res := &Fig6Result{Panels: make(map[cloud.RegionID][]Fig6Point)}
	rounds := 5
	if quick {
		rounds = 2
	}
	type sweep struct {
		exec    cloud.RegionID
		mems    []int
		cpus    []float64
		remotes []cloud.RegionID
	}
	sweeps := []sweep{
		{exec: "aws:us-east-1", mems: []int{128, 256, 512, 1024, 2048, 4096, 8192},
			remotes: []cloud.RegionID{"aws:ca-central-1", "azure:uksouth", "gcp:us-east1"}},
		{exec: "azure:eastus", mems: []int{2048, 4096},
			remotes: []cloud.RegionID{"aws:us-east-1", "azure:uksouth", "gcp:us-east1"}},
		{exec: "gcp:us-east1", mems: []int{1024}, cpus: []float64{1, 2, 4, 8},
			remotes: []cloud.RegionID{"aws:us-east-1", "azure:uksouth", "gcp:us-west1"}},
	}
	for _, sw := range sweeps {
		cpus := sw.cpus
		if cpus == nil {
			cpus = []float64{0}
		}
		for _, mem := range sw.mems {
			for _, cpu := range cpus {
				for _, remote := range sw.remotes {
					down, up := measureLinkBandwidth(sw.exec, remote, mem, cpu, rounds)
					res.Panels[sw.exec] = append(res.Panels[sw.exec], Fig6Point{
						MemMB: mem, VCPU: cpu, Remote: remote,
						DownloadMBps: down, UploadMBps: up,
					})
				}
			}
		}
	}
	return res
}

// measureLinkBandwidth runs single-function transfers of 64 MB each way
// between exec and remote under a specific configuration and returns the
// mean achieved MiB/s.
func measureLinkBandwidth(exec, remote cloud.RegionID, memMB int, vcpu float64, rounds int) (down, up float64) {
	w := newWorld("fig6")
	execRegion := cloud.MustLookup(exec)
	cfg := faas.DefaultConfig(execRegion.Provider)
	cfg.MemMB = memMB
	if vcpu > 0 {
		cfg.VCPU = vcpu
	}
	w.SetFnConfig(exec, cfg)
	svc := w.Region(exec)
	remoteRegion := cloud.MustLookup(remote)
	const bytes = 64 * MB

	var mu sync.Mutex
	var downSum, upSum float64
	for r := 0; r < rounds; r++ {
		r := r
		svc.Fn.FlushWarm()
		group := w.Clock.NewGroup(1)
		svc.Fn.Invoke(1, func(ctx *faas.Ctx) {
			defer group.Done()
			rng := simrand.NewIndexed(r, "fig6", string(exec), string(remote), fmt.Sprint(memMB, vcpu))
			scale := ctx.BandwidthScaleFor(remoteRegion.Provider)
			d := w.MoveBytes(remoteRegion, execRegion, execRegion.Provider, bytes, scale, rng)
			u := w.MoveBytes(execRegion, remoteRegion, execRegion.Provider, bytes, scale, rng)
			mu.Lock()
			downSum += float64(bytes) / netsim.MiB / d.Seconds()
			upSum += float64(bytes) / netsim.MiB / u.Seconds()
			mu.Unlock()
		})
		group.Wait()
	}
	w.Clock.Quiesce()
	return downSum / float64(rounds), upSum / float64(rounds)
}

// Print writes Figure 6's panels as MiB/s tables.
func (r *Fig6Result) Print(w io.Writer) {
	fprintf(w, "Bandwidth vs function configuration (Figure 6, MiB/s)\n")
	for _, exec := range []cloud.RegionID{"aws:us-east-1", "azure:eastus", "gcp:us-east1"} {
		fprintf(w, "-- executing on %s --\n", exec)
		fprintf(w, "%8s %5s %-22s %10s %10s\n", "mem(MB)", "vcpu", "remote", "down", "up")
		for _, p := range r.Panels[exec] {
			fprintf(w, "%8d %5.0f %-22s %10.1f %10.1f\n", p.MemMB, p.VCPU, p.Remote, p.DownloadMBps, p.UploadMBps)
		}
	}
}

// Fig7Series is aggregate bandwidth versus function count for one link.
type Fig7Series struct {
	Label  string
	Counts []int
	MBps   []float64
}

// Fig7Result reproduces Figure 7: near-linear aggregate bandwidth scaling.
type Fig7Result struct {
	Series []Fig7Series
}

// RunFig7 measures aggregate bandwidth for fast and slow links on each
// platform as the function count grows 1..64.
func RunFig7(quick bool) *Fig7Result {
	counts := []int{1, 2, 4, 8, 16, 32, 64}
	if quick {
		counts = []int{1, 4, 16}
	}
	links := []struct {
		label        string
		exec, remote cloud.RegionID
		upload       bool
	}{
		{"AWS download (ca-central-1)", "aws:us-east-1", "aws:ca-central-1", false},
		{"AWS upload (ap-northeast-1)", "aws:us-east-1", "aws:ap-northeast-1", true},
		{"Azure download (uksouth)", "azure:eastus", "azure:uksouth", false},
		{"Azure upload (southeastasia)", "azure:eastus", "azure:southeastasia", true},
		{"GCP download (us-west1)", "gcp:us-east1", "gcp:us-west1", false},
		{"GCP upload (asia-northeast1)", "gcp:us-east1", "gcp:asia-northeast1", true},
	}
	res := &Fig7Result{}
	for _, link := range links {
		series := Fig7Series{Label: link.label, Counts: counts}
		for _, n := range counts {
			series.MBps = append(series.MBps, aggregateBandwidth(link.exec, link.remote, link.upload, n))
		}
		res.Series = append(res.Series, series)
	}
	return res
}

// aggregateBandwidth runs n concurrent single-leg transfers and sums the
// per-instance achieved bandwidth.
func aggregateBandwidth(exec, remote cloud.RegionID, upload bool, n int) float64 {
	w := newWorld("fig7")
	execRegion := cloud.MustLookup(exec)
	remoteRegion := cloud.MustLookup(remote)
	svc := w.Region(exec)
	const bytes = 64 * MB

	var mu sync.Mutex
	var agg float64
	group := w.Clock.NewGroup(n)
	idx := 0
	svc.Fn.Invoke(n, func(ctx *faas.Ctx) {
		defer group.Done()
		mu.Lock()
		i := idx
		idx++
		mu.Unlock()
		rng := simrand.NewIndexed(i, "fig7", string(exec), string(remote), fmt.Sprint(upload, n))
		from, to := remoteRegion, execRegion
		if upload {
			from, to = execRegion, remoteRegion
		}
		d := w.MoveBytes(from, to, execRegion.Provider, bytes, ctx.BandwidthScaleFor(remoteRegion.Provider), rng)
		mu.Lock()
		agg += float64(bytes) / netsim.MiB / d.Seconds()
		mu.Unlock()
	})
	group.Wait()
	w.Clock.Quiesce()
	return agg
}

// Print writes the scaling series.
func (r *Fig7Result) Print(w io.Writer) {
	fprintf(w, "Aggregate bandwidth vs number of functions (Figure 7, MiB/s)\n")
	for _, s := range r.Series {
		fprintf(w, "%-32s", s.Label)
		for i, n := range s.Counts {
			fprintf(w, "  n=%d:%.0f", n, s.MBps[i])
		}
		fprintf(w, "\n")
	}
}

// Fig9Sample is one timed transfer by one instance.
type Fig9Sample struct {
	AtSeconds float64
	MBps      float64
}

// Fig9Result reproduces Figure 9: per-instance bandwidth over time for
// five concurrently running instances on the same path.
type Fig9Result struct {
	Instances map[string][]Fig9Sample
}

// RunFig9 runs five instances repeatedly transferring chunks from AWS
// us-east-1 to Azure eastus for a minute.
func RunFig9() *Fig9Result {
	w := newWorld("fig9")
	exec := cloud.MustLookup("aws:us-east-1")
	remote := cloud.MustLookup("azure:eastus")
	svc := w.Region("aws:us-east-1")
	res := &Fig9Result{Instances: make(map[string][]Fig9Sample)}
	var mu sync.Mutex

	const chunk = 64 * MB
	start := w.Clock.Now()
	group := w.Clock.NewGroup(5)
	svc.Fn.Invoke(5, func(ctx *faas.Ctx) {
		defer group.Done()
		rng := simrand.New("fig9", ctx.Instance.ID)
		for w.Clock.Since(start) < time.Minute {
			d := w.MoveBytes(exec, remote, exec.Provider, chunk, ctx.BandwidthScaleFor(remote.Provider), rng)
			mu.Lock()
			res.Instances[ctx.Instance.ID] = append(res.Instances[ctx.Instance.ID], Fig9Sample{
				AtSeconds: w.Clock.Since(start).Seconds(),
				MBps:      float64(chunk) / netsim.MiB / d.Seconds(),
			})
			mu.Unlock()
		}
	})
	group.Wait()
	w.Clock.Quiesce()
	return res
}

// Print writes per-instance mean bandwidth and the spread across
// instances.
func (r *Fig9Result) Print(w io.Writer) {
	fprintf(w, "Per-instance bandwidth, aws:us-east-1 -> azure:eastus (Figure 9, MiB/s)\n")
	lo, hi := 1e18, 0.0
	for id, samples := range r.Instances {
		var sum float64
		for _, s := range samples {
			sum += s.MBps
		}
		mean := sum / float64(len(samples))
		if mean < lo {
			lo = mean
		}
		if mean > hi {
			hi = mean
		}
		fprintf(w, "  %-28s mean %7.1f over %d transfers\n", id, mean, len(samples))
	}
	fprintf(w, "  spread: slowest %.1f vs fastest %.1f (%.1fx)\n", lo, hi, hi/lo)
}
