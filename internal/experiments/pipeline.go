package experiments

import (
	"fmt"
	"io"
	"strconv"
	"sync"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/stats"
)

// PipelineRow is one configuration of the pipelined-data-plane ablation:
// a knob set applied to the distributed path, with the replication-time
// distribution and per-object KV/cost footprint it produces.
type PipelineRow struct {
	Label string

	P50S          float64
	P99S          float64
	KVOpsPerObj   float64
	HedgedParts   int64
	PartSizeBytes int64 // part size the first task ran with (0 = rule default)
	CostPerObjUSD float64
}

// PipelineResult is the ablation of the pipelined data plane: the PR-4
// baseline (serial transfer, per-part claims, no hedging, fixed 8 MB
// parts), each optimisation enabled alone, and the full pipeline.
type PipelineResult struct {
	Src, Dst  cloud.RegionID
	SizeBytes int64
	Objects   int
	N         int
	Rows      []PipelineRow
}

// RunPipeline ablates the distributed data plane's four optimisations —
// double-buffered transfer, batched pool claims, hedged tail parts, and
// adaptive part sizing — on a large-object trans-Pacific path where
// per-instance bandwidth variability makes stragglers and per-part KV
// round-trips expensive. Each configuration replays the same workload on
// a fresh world so rows are directly comparable and deterministic.
func RunPipeline(quick bool) *PipelineResult {
	// 768 MB over 16 instances is ~6 fixed-size parts per instance: deep
	// enough for double-buffering's steady state and for batched claims
	// to stay load-balanced, with a real straggler tail to hedge.
	const n = 16
	size := int64(768 * MB)
	// Even the quick variant keeps 8 samples: p99 of fewer is the max of a
	// handful of draws, and the full-vs-baseline comparison becomes a coin
	// flip on one straggler draw.
	objects := 12
	if quick {
		objects = 8
	}
	src, dst := AWSEast, cloud.RegionID("gcp:asia-northeast1")
	res := &PipelineResult{Src: src, Dst: dst, SizeBytes: size, Objects: objects, N: n}

	// The baseline pins PR-4 behavior: serial download-then-upload, one KV
	// claim per part, hedging off, fixed Rule.PartSize parts.
	baseline := engine.Rule{
		DisableDoubleBuffer: true, ClaimBatch: 1, HedgeBudget: -1, DisableAdaptiveParts: true,
	}
	configs := []struct {
		label string
		mod   func(*engine.Rule)
	}{
		{"baseline", func(r *engine.Rule) {}},
		{"+doublebuf", func(r *engine.Rule) { r.DisableDoubleBuffer = false }},
		{"+claimbatch4", func(r *engine.Rule) { r.ClaimBatch = 4 }},
		{"+hedge", func(r *engine.Rule) { r.HedgeBudget = 4 }},
		{"+adaptive", func(r *engine.Rule) { r.DisableAdaptiveParts = false }},
		{"full", func(r *engine.Rule) {
			*r = engine.Rule{} // all four knobs at their defaults
		}},
	}
	for _, cfg := range configs {
		rule := baseline
		cfg.mod(&rule)
		res.Rows = append(res.Rows, runPipelineConfig(cfg.label, src, dst, size, objects, n, rule))
	}
	return res
}

// runPipelineConfig replays the workload under one knob set on a fresh
// world. ForceN skips deploy-time profiling, but adaptive part sizing
// needs a fitted model, so the path is profiled via a throwaway
// deployment on separate buckets first (the RunModelAccuracy pattern).
func runPipelineConfig(label string, src, dst cloud.RegionID, size int64, objects, n int, knobs engine.Rule) PipelineRow {
	// Every config runs on an identically-seeded world: same chaos, netsim
	// and instance-bandwidth draws, so rows form a paired comparison and
	// differences are attributable to the knobs rather than draw luck.
	w := newWorld("pipeline")
	_ = label
	m := model.New()
	mustCreate(w, src, "src", false)
	mustCreate(w, dst, "dst", false)
	mustCreate(w, src, "profile-src", false)
	mustCreate(w, dst, "profile-dst", false)
	deployService(w, m, engine.Rule{
		Src: src, Dst: dst, SrcBucket: "profile-src", DstBucket: "profile-dst",
	}, core.Options{ProfileRounds: 16})

	var mu sync.Mutex
	var execs []float64
	var partSize int64
	rule := knobs
	rule.Src, rule.Dst = src, dst
	rule.SrcBucket, rule.DstBucket = "src", "dst"
	rule.ForceN, rule.ForceLoc = n, src
	deployService(w, m, rule, core.Options{OnTaskDone: func(r engine.TaskResult) {
		mu.Lock()
		execs = append(execs, r.ExecSeconds())
		if partSize == 0 {
			partSize = r.Plan.PartSize
		}
		mu.Unlock()
	}})

	reads := w.Metrics.Counter("kvstore.reads")
	writes := w.Metrics.Counter("kvstore.writes")
	hedged := w.Metrics.Counter("engine.parts.hedged")
	kvBase := reads.Value() + writes.Value()
	hedgeBase := hedged.Value()
	cost := costDelta(w, func() {
		for i := 0; i < objects; i++ {
			w.Region(src).Fn.FlushWarm() // sample a fresh instance set per object
			putObject(w, src, "src", "obj", size, i)
			w.Clock.Quiesce()
		}
	})
	if len(execs) != objects {
		panic(fmt.Sprintf("pipeline %s: resolved %d of %d objects", label, len(execs), objects))
	}
	return PipelineRow{
		Label:         label,
		P50S:          stats.Percentile(execs, 50),
		P99S:          stats.Percentile(execs, 99),
		KVOpsPerObj:   float64(reads.Value()+writes.Value()-kvBase) / float64(objects),
		HedgedParts:   hedged.Value() - hedgeBase,
		PartSizeBytes: partSize,
		CostPerObjUSD: cost / float64(objects),
	}
}

// Print writes the ablation in the evaluation's table style.
func (r *PipelineResult) Print(w io.Writer) {
	fprintf(w, "Pipelined data plane ablation: %s %s -> %s, %d fns, %d objects\n",
		fmtSize(r.SizeBytes), r.Src, r.Dst, r.N, r.Objects)
	fprintf(w, "  %-14s %8s %8s %10s %7s %9s %12s\n",
		"config", "p50_s", "p99_s", "kv_ops/obj", "hedged", "part_mb", "cost/obj")
	for _, row := range r.Rows {
		fprintf(w, "  %-14s %8.2f %8.2f %10.1f %7d %9.1f %12.6f\n",
			row.Label, row.P50S, row.P99S, row.KVOpsPerObj, row.HedgedParts,
			float64(row.PartSizeBytes)/(1<<20), row.CostPerObjUSD)
	}
}

// CSV exports the ablation rows.
func (r *PipelineResult) CSV() []CSVTable {
	t := CSVTable{Name: "pipeline_ablation", Header: []string{
		"config", "p50_s", "p99_s", "kv_ops_per_obj", "hedged_parts", "part_bytes", "cost_per_obj_usd"}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Label, f64(row.P50S), f64(row.P99S), f64(row.KVOpsPerObj),
			strconv.FormatInt(row.HedgedParts, 10), strconv.FormatInt(row.PartSizeBytes, 10),
			f64(row.CostPerObjUSD),
		})
	}
	return []CSVTable{t}
}
