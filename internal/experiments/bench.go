package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fleetobs"
	"repro/internal/model"
	"repro/internal/simclock"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// BenchSchema identifies the BENCH_*.json format; Compare refuses to
// diff reports of different schemas.
const BenchSchema = "areplica-bench/v1"

// BenchConfig configures the canonical regression suite.
type BenchConfig struct {
	// Quick trims the workloads (fewer objects, a two-profile fault
	// matrix) to CI size; the full suite runs the same scenarios longer
	// plus every chaos profile.
	Quick bool
	// SampleInterval is the virtual-time series sampling interval
	// (default 5 s).
	SampleInterval time.Duration
	// Scrub adds the anti-entropy cadence sweep (experiments.RunScrub) to
	// the report, guarding the scrubber's convergence and digest-traffic
	// characteristics against regressions.
	Scrub bool
	// Events, when non-nil, collects the fault matrix's SLO alert events
	// (scoped by profile) for export alongside the report.
	Events *fleetobs.EventLog
	// MeasureSimRate records each scenario's simulated-seconds per
	// wall-second throughput (sim_rate). Off by default: the value is
	// wall-clock dependent, so determinism checks that cmp two reports
	// byte-for-byte must leave it disabled.
	MeasureSimRate bool
	// Fleet adds the fleet-hundred-rules control-plane scenario
	// (experiments.RunFleet) to the report, gating multi-rule fairness,
	// shared-quota utilization and exactly-once convergence.
	Fleet bool
}

// BenchCategory is one critical-path category's aggregate share of a
// scenario's end-to-end replication time.
type BenchCategory struct {
	Category string  `json:"category"`
	Seconds  float64 `json:"seconds"`
	Fraction float64 `json:"fraction"`
}

// BenchExperiment is one replication scenario's measurements.
type BenchExperiment struct {
	Name       string `json:"name"`
	Src        string `json:"src"`
	Dst        string `json:"dst"`
	Objects    int    `json:"objects"`
	BytesTotal int64  `json:"bytes_total"`

	P50S    float64 `json:"p50_s"`
	P99S    float64 `json:"p99_s"`
	CostUSD float64 `json:"cost_usd"`
	// KVOps is the coordination footprint: KV reads plus writes issued
	// while replicating the scenario's objects (claim batching keeps it
	// sublinear in part count).
	KVOps int64 `json:"kv_ops"`

	// Dominant is the critical-path category holding the largest share
	// of the summed task durations; Categories is the full ranked
	// attribution (fractions sum to 1) and DegradedS the critical-path
	// seconds spent on breaker-degraded attempts.
	Dominant   string             `json:"dominant"`
	Categories []BenchCategory    `json:"categories"`
	DegradedS  float64            `json:"degraded_s"`
	Series     []telemetry.Digest `json:"series"`

	// SpansRetained is the telemetry layer's self-overhead gate: how many
	// spans the tracer held after the scenario's workload (deterministic —
	// instrumentation growing chattier shows up here before it shows up as
	// memory). SimRate is simulated-seconds advanced per wall-clock second
	// (ROADMAP item 2's replay-throughput metric); wall-clock dependent,
	// only populated under BenchConfig.MeasureSimRate.
	SpansRetained int64   `json:"spans_retained"`
	SimRate       float64 `json:"sim_rate,omitempty"`
}

// BenchFault is one chaos fault-matrix row's regression-relevant subset.
// LagP99S is the streaming watermark-histogram p99 (the labelled
// engine.lag.seconds family the SLO monitor reads), BacklogMax the
// pending-event high-water mark, and SLOAlerts the number of burn-rate/
// DLQ/divergence alert transitions the fleetobs monitor emitted — all
// deterministic per profile seed, so alerts appearing on a previously
// quiet profile is a regression, not noise.
type BenchFault struct {
	Profile         string  `json:"profile"`
	ConvergencePct  float64 `json:"convergence_pct"`
	P50S            float64 `json:"p50_s"`
	P99S            float64 `json:"p99_s"`
	DLQ             int     `json:"dlq"`
	CostOverheadPct float64 `json:"cost_overhead_pct"`
	LagP99S         float64 `json:"lag_p99_s"`
	BacklogMax      int64   `json:"backlog_max"`
	SLOAlerts       int     `json:"slo_alerts"`
}

// BenchCrash is one crash-point sweep row's regression-relevant subset.
// Converged, DupFinalWrites and MPUsLeft are hard bars (recovery must stay
// total, duplicate-free, and leak-free); RedoneBytes and ExtraKVOps pin the
// cost of recovery — checkpointed resume redoing only the in-flight part,
// not the whole object.
type BenchCrash struct {
	Point          string  `json:"point"`
	Converged      bool    `json:"converged"`
	DupFinalWrites int     `json:"dup_final_writes"`
	Resumed        int64   `json:"resumed"`
	PartsResumed   int64   `json:"parts_resumed"`
	RedoneBytes    int64   `json:"redone_bytes"`
	RedoneParts    float64 `json:"redone_parts"`
	ExtraKVOps     int64   `json:"extra_kv_ops"`
	GCAborted      int     `json:"gc_aborted"`
	MPUsLeft       int     `json:"mpus_left"`
}

// BenchScrub is one anti-entropy sweep row's regression-relevant subset
// (BenchConfig.Scrub). The "off" row pins the baseline divergence the
// lossy workload produces; cadence rows pin full convergence and the
// digest traffic paid for it.
type BenchScrub struct {
	Cadence            string  `json:"cadence"`
	ConvergencePct     float64 `json:"convergence_pct"`
	ResidualDivergence int     `json:"residual_divergence"`
	Rounds             int64   `json:"rounds"`
	DigestBytes        int64   `json:"digest_bytes"`
	DupFinalWrites     int     `json:"dup_final_writes"`
	ScrubCostUSD       float64 `json:"scrub_cost_usd"`
}

// BenchFleet is the fleet control-plane scenario's regression-relevant
// subset (BenchConfig.Fleet). Convergence, duplicate final writes, DLQ
// depth and starvation marks are hard bars (the runs are deterministic);
// the lag-p99 spread and max gate fairness, quota utilization guards
// against the scheduler under-using paid-for capacity, and cost pins the
// control plane's dollar overhead.
type BenchFleet struct {
	Name           string  `json:"name"`
	Rules          int     `json:"rules"`
	Ops            int     `json:"ops"`
	ConvergencePct float64 `json:"convergence_pct"`
	DupFinalWrites int     `json:"dup_final_writes"`
	DLQ            int     `json:"dlq"`
	Starved        int64   `json:"starved"`
	Admits         int64   `json:"admits"`
	Defers         int64   `json:"defers"`
	QuotaWaits     int64   `json:"quota_waits"`
	Batches        int64   `json:"batches"`
	BatchMeanSize  float64 `json:"batch_mean_size"`
	QuotaUtilPct   float64 `json:"quota_util_pct"`
	LagP99MaxS     float64 `json:"lag_p99_max_s"`
	LagP99SpreadS  float64 `json:"lag_p99_spread_s"`
	CostUSD        float64 `json:"cost_usd"`
}

// BenchFleetDay is the fleet-day replay's regression row
// (experiments.RunFleetDay, emitted alongside BenchFleet under
// BenchConfig.Fleet). Convergence, duplicate final writes and DLQ depth
// are hard bars; replicated objects must not shrink (the amplification
// fabric is part of the scenario); the rate fields — populated only when
// the run measured wall clock — gate the simulator's own speed: sim_rate
// halving is an event-loop collapse, rule_sim_rate under 50k means a
// full-scale fleet day no longer replays at interactive wall clock, and
// allocs/object creeping up is the allocation discipline eroding.
type BenchFleetDay struct {
	Name              string  `json:"name"`
	Rules             int     `json:"rules"`
	Entries           int     `json:"entries"`
	Ops               int     `json:"ops"`
	ReplicatedObjects int64   `json:"replicated_objects"`
	ConvergencePct    float64 `json:"convergence_pct"`
	DupFinalWrites    int     `json:"dup_final_writes"`
	DLQ               int     `json:"dlq"`
	Pending           int     `json:"pending"`
	Starved           int64   `json:"starved"`
	VirtualHours      float64 `json:"virtual_hours"`
	CostUSD           float64 `json:"cost_usd"`
	SimRate           float64 `json:"sim_rate,omitempty"`
	RuleSimRate       float64 `json:"rule_sim_rate,omitempty"`
	AllocsPerObject   float64 `json:"allocs_per_object,omitempty"`
}

// BenchReport is the BENCH_*.json document: the canonical quick suite's
// delay/cost/attribution measurements, deterministic for a given
// configuration (two identically-configured runs are byte-identical).
type BenchReport struct {
	Schema      string            `json:"schema"`
	Suite       string            `json:"suite"` // "quick" or "full"
	Experiments []BenchExperiment `json:"experiments"`
	FaultMatrix []BenchFault      `json:"fault_matrix"`
	CrashSweep  []BenchCrash      `json:"crash_sweep,omitempty"`
	Scrub       []BenchScrub      `json:"scrub,omitempty"`
	Fleet       []BenchFleet      `json:"fleet,omitempty"`
	FleetDay    []BenchFleetDay   `json:"fleet_day,omitempty"`
}

// benchScenario is one canonical replication workload.
type benchScenario struct {
	name     string
	src, dst cloud.RegionID
	sizes    []int64
	objects  int // full-suite object count; quick halves it
}

// benchScenarios are the representative slices of the paper's evaluation
// the regression suite replays: a same-continent multi-cloud mix of
// Table-1 sizes, a distributed-path transcontinental transfer (Figure
// 12's regime), and a trans-Pacific pair stressing the slowest links.
func benchScenarios() []benchScenario {
	return []benchScenario{
		{
			name: "mixed-small-aws-azure",
			src:  AWSEast, dst: AzureEast,
			sizes:   []int64{512 * 1024, 4 * MB, 16 * MB},
			objects: 12,
		},
		{
			name: "dist-large-aws-gcpeu",
			src:  AWSEast, dst: cloud.RegionID("gcp:europe-west6"),
			sizes:   []int64{96 * MB},
			objects: 6,
		},
		{
			name: "transpacific-azure-gcpjp",
			src:  AzureEast, dst: cloud.RegionID("gcp:asia-northeast1"),
			sizes:   []int64{32 * MB},
			objects: 8,
		},
		// Large-object trans-Pacific transfer exercising the pipelined
		// distributed data plane end to end: double-buffered parts,
		// batched pool claims, hedged tail parts, adaptive part sizing.
		{
			name: "pipeline-large-aws-gcpjp",
			src:  AWSEast, dst: cloud.RegionID("gcp:asia-northeast1"),
			sizes:   []int64{192 * MB},
			objects: 4,
		},
	}
}

// RunBench runs the canonical suite and assembles the report.
func RunBench(cfg BenchConfig) (*BenchReport, error) {
	interval := cfg.SampleInterval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	suite := "full"
	if cfg.Quick {
		suite = "quick"
	}
	rep := &BenchReport{Schema: BenchSchema, Suite: suite}

	for _, sc := range benchScenarios() {
		exp, err := runBenchScenario(sc, cfg.Quick, interval, cfg.MeasureSimRate)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", sc.name, err)
		}
		rep.Experiments = append(rep.Experiments, exp)
	}

	// Chaos slice: quick mode replays the three most diagnostic profiles
	// (net-degraded stresses the lag watermarks without dropping events),
	// the full suite the whole matrix.
	profiles := []string{"storage-flaky", "mixed", "net-degraded"}
	if !cfg.Quick {
		profiles = nil // all built-in profiles
	}
	fm, err := RunFaultMatrix(FaultMatrixConfig{Profiles: profiles, Quick: cfg.Quick, Events: cfg.Events})
	if err != nil {
		return nil, fmt.Errorf("bench fault matrix: %w", err)
	}
	for _, s := range fm.Scenarios {
		rep.FaultMatrix = append(rep.FaultMatrix, BenchFault{
			Profile:         s.Profile,
			ConvergencePct:  s.ConvergencePct,
			P50S:            s.P50S,
			P99S:            s.P99S,
			DLQ:             s.DLQ,
			CostOverheadPct: s.CostOverheadPct,
			LagP99S:         s.LagP99S,
			BacklogMax:      s.BacklogMax,
			SLOAlerts:       s.SLOAlerts,
		})
	}

	// Crash-point sweep: cheap (one object per point) and always on, so
	// the recovery guarantees are gated on every report.
	cs, err := RunCrashSweep(CrashSweepConfig{Quick: cfg.Quick})
	if err != nil {
		return nil, fmt.Errorf("bench crash sweep: %w", err)
	}
	for _, p := range cs.Points {
		rep.CrashSweep = append(rep.CrashSweep, BenchCrash{
			Point:          p.Point,
			Converged:      p.Converged,
			DupFinalWrites: p.DupFinalWrites,
			Resumed:        p.Resumed,
			PartsResumed:   p.PartsResumed,
			RedoneBytes:    p.RedoneBytes,
			RedoneParts:    p.RedoneParts,
			ExtraKVOps:     p.ExtraKVOps,
			GCAborted:      p.GCAborted,
			MPUsLeft:       p.MPUsLeft,
		})
	}

	if cfg.Scrub {
		sw, err := RunScrub(ScrubConfig{Quick: cfg.Quick})
		if err != nil {
			return nil, fmt.Errorf("bench scrub sweep: %w", err)
		}
		for _, p := range sw.Points {
			rep.Scrub = append(rep.Scrub, BenchScrub{
				Cadence:            p.Cadence,
				ConvergencePct:     p.ConvergencePct,
				ResidualDivergence: p.ResidualDivergence,
				Rounds:             p.Rounds,
				DigestBytes:        p.DigestBytes,
				DupFinalWrites:     p.DupFinalWrites,
				ScrubCostUSD:       p.ScrubCostUSD,
			})
		}
	}

	if cfg.Fleet {
		fr, err := RunFleet(FleetConfig{Quick: cfg.Quick})
		if err != nil {
			return nil, fmt.Errorf("bench fleet: %w", err)
		}
		rep.Fleet = append(rep.Fleet, BenchFleet{
			Name:           "fleet-hundred-rules",
			Rules:          fr.Rules,
			Ops:            fr.Ops,
			ConvergencePct: fr.ConvergencePct,
			DupFinalWrites: fr.DupFinalWrites,
			DLQ:            fr.DLQ,
			Starved:        fr.Starved,
			Admits:         fr.Admits,
			Defers:         fr.Defers,
			QuotaWaits:     fr.QuotaWaits,
			Batches:        fr.Batches,
			BatchMeanSize:  fr.BatchMeanSize,
			QuotaUtilPct:   fr.QuotaUtilPct,
			LagP99MaxS:     fr.LagP99MaxS,
			LagP99SpreadS:  fr.LagP99SpreadS,
			CostUSD:        fr.CostUSD,
		})

		fd, err := RunFleetDay(FleetDayConfig{Quick: cfg.Quick, MeasureRates: cfg.MeasureSimRate})
		if err != nil {
			return nil, fmt.Errorf("bench fleet-day: %w", err)
		}
		rep.FleetDay = append(rep.FleetDay, BenchFleetDay{
			Name:              "fleet-day",
			Rules:             fd.Rules,
			Entries:           fd.Entries,
			Ops:               fd.Ops,
			ReplicatedObjects: fd.ReplicatedObjects,
			ConvergencePct:    fd.ConvergencePct,
			DupFinalWrites:    fd.DupFinalWrites,
			DLQ:               fd.DLQ,
			Pending:           fd.Pending,
			Starved:           fd.Starved,
			VirtualHours:      fd.VirtualHours,
			CostUSD:           fd.CostUSD,
			SimRate:           fd.SimRate,
			RuleSimRate:       fd.RuleSimRate,
			AllocsPerObject:   fd.AllocsPerObject,
		})
	}
	return rep, nil
}

// runBenchScenario replays one scenario on a fresh world with tracing and
// virtual-time sampling enabled.
func runBenchScenario(sc benchScenario, quick bool, interval time.Duration, simRate bool) (BenchExperiment, error) {
	w := newWorld("bench-" + sc.name)
	srcBucket, dstBucket := "bench-src", "bench-dst"
	mustCreate(w, sc.src, srcBucket, true)
	mustCreate(w, sc.dst, dstBucket, true)

	svc := deployService(w, model.New(), engine.Rule{
		Src: sc.src, Dst: sc.dst, SrcBucket: srcBucket, DstBucket: dstBucket,
	}, core.Options{ProfileRounds: profileRounds(quick)})

	// Trace only the replication tasks: enable (and clear any profiling
	// spans) after deployment.
	w.Tracer.Enable()
	w.Tracer.Reset()

	sampler := telemetry.NewSampler(w.Clock.Now, interval)
	sampler.TrackGauge("faas.running", w.Metrics.Gauge("faas.running"))
	// Bytes relative to the scenario start: path profiling during Deploy
	// already moved data over the same counter.
	legBytes := w.Metrics.Counter("net.leg.bytes")
	base := legBytes.Value()
	sampler.Track("net.leg.bytes", func() float64 { return float64(legBytes.Value() - base) })
	sampler.TrackGauge("engine.dlq.depth", w.Metrics.Gauge("engine.dlq.depth"))
	sampler.TrackGauge("engine.breaker.is_open", w.Metrics.Gauge("engine.breaker.is_open"))
	sampler.TrackGauge("engine.lag.backlog", w.Metrics.Gauge("engine.lag.backlog"))
	sampler.Poll()

	objects := sc.objects
	if quick {
		objects = (objects + 1) / 2
	}
	kvReads := w.Metrics.Counter("kvstore.reads")
	kvWrites := w.Metrics.Counter("kvstore.writes")
	kvBase := kvReads.Value() + kvWrites.Value()
	var total int64
	virtStart := w.Clock.Now()
	wallStart := time.Now()
	cost := costDelta(w, func() {
		for i := 0; i < objects; i++ {
			size := sc.sizes[i%len(sc.sizes)]
			total += size
			putObject(w, sc.src, srcBucket, fmt.Sprintf("obj-%03d", i), size, i)
			w.Clock.Sleep(2 * time.Second)
			sampler.Poll()
		}
	})
	wallSecs := time.Since(wallStart).Seconds()
	virtSecs := simclock.ToSeconds(w.Clock.Now().Sub(virtStart))
	sampler.Poll()

	delays := svc.Engine.Tracker.DelaysSeconds()
	if len(delays) != objects {
		return BenchExperiment{}, fmt.Errorf("resolved %d of %d writes", len(delays), objects)
	}

	agg := telemetry.Aggregate(w.Tracer.CriticalPaths())
	exp := BenchExperiment{
		Name:       sc.name,
		Src:        string(sc.src),
		Dst:        string(sc.dst),
		Objects:    objects,
		BytesTotal: total,
		P50S:       stats.Percentile(delays, 50),
		P99S:       stats.Percentile(delays, 99),
		CostUSD:    cost,
		KVOps:      kvReads.Value() + kvWrites.Value() - kvBase,
		Dominant:   string(agg.Dominant()),
		DegradedS:  agg.Degraded.Seconds(),

		SpansRetained: w.Tracer.Stats().SpansRetained,
	}
	if simRate && wallSecs > 0 {
		exp.SimRate = virtSecs / wallSecs
	}
	for _, s := range agg.Shares {
		exp.Categories = append(exp.Categories, BenchCategory{
			Category: string(s.Category), Seconds: s.Seconds, Fraction: s.Fraction,
		})
	}
	for _, ser := range sampler.Series() {
		exp.Series = append(exp.Series, ser.Digest())
	}
	return exp, nil
}

// WriteJSON writes the report as deterministic indented JSON (struct
// field order, ranked slices, no timestamps).
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBenchReport parses a BENCH_*.json document.
func ReadBenchReport(rd io.Reader) (*BenchReport, error) {
	var r BenchReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// BenchTolerance bounds how much worse a metric may get before Compare
// flags a regression: relative slack plus a metric-specific absolute
// floor, so near-zero baselines don't trip on noise-scale drift.
type BenchTolerance struct {
	// Relative slack (0.25 = 25% worse allowed). Non-positive defaults
	// to 0.25.
	Relative float64
}

func (t BenchTolerance) rel() float64 {
	if t.Relative <= 0 {
		return 0.25
	}
	return t.Relative
}

// exceeds reports whether got regressed past old by more than the
// relative slack plus the absolute floor.
func (t BenchTolerance) exceeds(old, got, absFloor float64) bool {
	return got > old*(1+t.rel())+absFloor
}

// CompareBench diffs a new report against a baseline and returns one
// human-readable line per regression (empty = pass). Checked per
// experiment: p50/p99 replication delay (floor 0.05 s), dollar cost
// (floor 1e-5); per fault-matrix row: convergence (≥1 point drop),
// p99 under faults, and DLQ growth. A missing experiment/profile or a
// schema mismatch is itself a regression; new entries absent from the
// baseline pass (they have nothing to regress against).
func CompareBench(baseline, got *BenchReport, tol BenchTolerance) []string {
	var regs []string
	if baseline.Schema != got.Schema {
		return []string{fmt.Sprintf("schema mismatch: baseline %q vs new %q", baseline.Schema, got.Schema)}
	}
	if baseline.Suite != got.Suite {
		regs = append(regs, fmt.Sprintf("suite mismatch: baseline %q vs new %q", baseline.Suite, got.Suite))
	}

	newExp := make(map[string]BenchExperiment, len(got.Experiments))
	for _, e := range got.Experiments {
		newExp[e.Name] = e
	}
	for _, old := range baseline.Experiments {
		e, ok := newExp[old.Name]
		if !ok {
			regs = append(regs, fmt.Sprintf("%s: experiment missing from new report", old.Name))
			continue
		}
		if tol.exceeds(old.P50S, e.P50S, 0.05) {
			regs = append(regs, fmt.Sprintf("%s: p50 %.3fs -> %.3fs (tol %.0f%%)", old.Name, old.P50S, e.P50S, 100*tol.rel()))
		}
		if tol.exceeds(old.P99S, e.P99S, 0.05) {
			regs = append(regs, fmt.Sprintf("%s: p99 %.3fs -> %.3fs (tol %.0f%%)", old.Name, old.P99S, e.P99S, 100*tol.rel()))
		}
		if tol.exceeds(old.CostUSD, e.CostUSD, 1e-5) {
			regs = append(regs, fmt.Sprintf("%s: cost $%.6f -> $%.6f (tol %.0f%%)", old.Name, old.CostUSD, e.CostUSD, 100*tol.rel()))
		}
		// Coordination footprint: a claim-batching regression shows up as
		// KV ops growing back toward two-per-part (floor 8 = two tasks'
		// fixed orchestration writes).
		if old.KVOps > 0 && tol.exceeds(float64(old.KVOps), float64(e.KVOps), 8) {
			regs = append(regs, fmt.Sprintf("%s: kv ops %d -> %d (tol %.0f%%)", old.Name, old.KVOps, e.KVOps, 100*tol.rel()))
		}
		// Telemetry self-overhead: span volume is deterministic, so growth
		// past the slack (floor 16 = a few extra spans per task) means the
		// instrumentation got chattier; a drop to zero means tracing died.
		if old.SpansRetained > 0 {
			if e.SpansRetained == 0 {
				regs = append(regs, fmt.Sprintf("%s: spans retained %d -> 0 (tracing broken?)", old.Name, old.SpansRetained))
			} else if tol.exceeds(float64(old.SpansRetained), float64(e.SpansRetained), 16) {
				regs = append(regs, fmt.Sprintf("%s: spans retained %d -> %d (tol %.0f%%)", old.Name, old.SpansRetained, e.SpansRetained, 100*tol.rel()))
			}
		}
		// Replay throughput (simulated-seconds per wall-second): compared
		// only when both reports measured it. Wall clocks vary across
		// machines, so the gate is a factor-8 collapse, not the usual
		// relative slack — it catches "the simulator got an order of
		// magnitude slower", not scheduler jitter.
		if old.SimRate > 0 && e.SimRate > 0 && e.SimRate < old.SimRate/8 {
			regs = append(regs, fmt.Sprintf("%s: sim rate %.0fx -> %.0fx (floor %.0fx)", old.Name, old.SimRate, e.SimRate, old.SimRate/8))
		}
	}

	newFault := make(map[string]BenchFault, len(got.FaultMatrix))
	for _, f := range got.FaultMatrix {
		newFault[f.Profile] = f
	}
	for _, old := range baseline.FaultMatrix {
		f, ok := newFault[old.Profile]
		if !ok {
			regs = append(regs, fmt.Sprintf("fault %s: profile missing from new report", old.Profile))
			continue
		}
		if f.ConvergencePct < old.ConvergencePct-1.0 {
			regs = append(regs, fmt.Sprintf("fault %s: convergence %.1f%% -> %.1f%%", old.Profile, old.ConvergencePct, f.ConvergencePct))
		}
		if tol.exceeds(old.P99S, f.P99S, 0.25) {
			regs = append(regs, fmt.Sprintf("fault %s: p99 %.3fs -> %.3fs (tol %.0f%%)", old.Profile, old.P99S, f.P99S, 100*tol.rel()))
		}
		if f.DLQ > old.DLQ {
			regs = append(regs, fmt.Sprintf("fault %s: DLQ depth %d -> %d", old.Profile, old.DLQ, f.DLQ))
		}
		// Observability watermarks: the streaming lag p99 may drift by the
		// relative slack (floor 0.05 s), the backlog high-water by the
		// slack plus two events; new SLO alerts on a profile that used to
		// stay quiet (or alert less) are a hard regression — the runs are
		// deterministic, so any growth is a real behavior change.
		if tol.exceeds(old.LagP99S, f.LagP99S, 0.05) {
			regs = append(regs, fmt.Sprintf("fault %s: lag p99 %.3fs -> %.3fs (tol %.0f%%)", old.Profile, old.LagP99S, f.LagP99S, 100*tol.rel()))
		}
		if tol.exceeds(float64(old.BacklogMax), float64(f.BacklogMax), 2) {
			regs = append(regs, fmt.Sprintf("fault %s: backlog max %d -> %d (tol %.0f%%)", old.Profile, old.BacklogMax, f.BacklogMax, 100*tol.rel()))
		}
		if f.SLOAlerts > old.SLOAlerts {
			regs = append(regs, fmt.Sprintf("fault %s: SLO alerts %d -> %d", old.Profile, old.SLOAlerts, f.SLOAlerts))
		}
	}

	// Crash sweep: recovery is gated hard — a crash point that converged in
	// the baseline must still converge, duplicate final writes and leaked
	// MPUs must not grow above the baseline's (zero) counts, and the cost
	// of recovery (redone bytes, extra KV ops) may drift only by the
	// relative slack plus small floors (half a part of wide-area rework,
	// four KV operations).
	newCrash := make(map[string]BenchCrash, len(got.CrashSweep))
	for _, c := range got.CrashSweep {
		newCrash[c.Point] = c
	}
	for _, old := range baseline.CrashSweep {
		c, ok := newCrash[old.Point]
		if !ok {
			regs = append(regs, fmt.Sprintf("crash %s: point missing from new report", old.Point))
			continue
		}
		if old.Converged && !c.Converged {
			regs = append(regs, fmt.Sprintf("crash %s: no longer converges after the crash", old.Point))
		}
		if c.DupFinalWrites > old.DupFinalWrites {
			regs = append(regs, fmt.Sprintf("crash %s: duplicate final writes %d -> %d", old.Point, old.DupFinalWrites, c.DupFinalWrites))
		}
		if c.MPUsLeft > old.MPUsLeft {
			regs = append(regs, fmt.Sprintf("crash %s: leaked in-progress MPUs %d -> %d", old.Point, old.MPUsLeft, c.MPUsLeft))
		}
		if tol.exceeds(float64(old.RedoneBytes), float64(c.RedoneBytes), float64(4*1024*1024)) {
			regs = append(regs, fmt.Sprintf("crash %s: redone bytes %d -> %d (tol %.0f%%)", old.Point, old.RedoneBytes, c.RedoneBytes, 100*tol.rel()))
		}
		if tol.exceeds(float64(old.ExtraKVOps), float64(c.ExtraKVOps), 4) {
			regs = append(regs, fmt.Sprintf("crash %s: extra kv ops %d -> %d (tol %.0f%%)", old.Point, old.ExtraKVOps, c.ExtraKVOps, 100*tol.rel()))
		}
	}

	// Scrub sweep: scrubbed cadences must not converge less or leave more
	// divergence behind than the baseline run did; duplicate final writes
	// are a hard zero-tolerance bar; digest traffic may drift by the
	// relative slack plus one root exchange's floor.
	newScrub := make(map[string]BenchScrub, len(got.Scrub))
	for _, s := range got.Scrub {
		newScrub[s.Cadence] = s
	}
	for _, old := range baseline.Scrub {
		s, ok := newScrub[old.Cadence]
		if !ok {
			regs = append(regs, fmt.Sprintf("scrub %s: cadence missing from new report", old.Cadence))
			continue
		}
		if s.ConvergencePct < old.ConvergencePct-1.0 {
			regs = append(regs, fmt.Sprintf("scrub %s: convergence %.1f%% -> %.1f%%", old.Cadence, old.ConvergencePct, s.ConvergencePct))
		}
		if s.ResidualDivergence > old.ResidualDivergence {
			regs = append(regs, fmt.Sprintf("scrub %s: residual divergence %d -> %d", old.Cadence, old.ResidualDivergence, s.ResidualDivergence))
		}
		if s.DupFinalWrites > old.DupFinalWrites {
			regs = append(regs, fmt.Sprintf("scrub %s: duplicate final writes %d -> %d", old.Cadence, old.DupFinalWrites, s.DupFinalWrites))
		}
		if tol.exceeds(float64(old.DigestBytes), float64(s.DigestBytes), 64) {
			regs = append(regs, fmt.Sprintf("scrub %s: digest bytes %d -> %d (tol %.0f%%)", old.Cadence, old.DigestBytes, s.DigestBytes, 100*tol.rel()))
		}
		if tol.exceeds(old.ScrubCostUSD, s.ScrubCostUSD, 1e-5) {
			regs = append(regs, fmt.Sprintf("scrub %s: marginal cost $%.6f -> $%.6f (tol %.0f%%)", old.Cadence, old.ScrubCostUSD, s.ScrubCostUSD, 100*tol.rel()))
		}
	}

	// Fleet control plane: convergence, duplicate final writes, DLQ depth
	// and starvation marks are hard bars (deterministic runs — any growth
	// is a real behavior change); the fairness spread and lag ceiling may
	// drift by the relative slack plus a 0.25 s floor; quota utilization
	// collapsing by more than 20 points means the scheduler stopped using
	// capacity the quotas pay for; cost gets the usual dollar tolerance.
	newFleet := make(map[string]BenchFleet, len(got.Fleet))
	for _, f := range got.Fleet {
		newFleet[f.Name] = f
	}
	for _, old := range baseline.Fleet {
		f, ok := newFleet[old.Name]
		if !ok {
			regs = append(regs, fmt.Sprintf("fleet %s: scenario missing from new report", old.Name))
			continue
		}
		if f.ConvergencePct < old.ConvergencePct {
			regs = append(regs, fmt.Sprintf("fleet %s: convergence %.1f%% -> %.1f%%", old.Name, old.ConvergencePct, f.ConvergencePct))
		}
		if f.DupFinalWrites > old.DupFinalWrites {
			regs = append(regs, fmt.Sprintf("fleet %s: duplicate final writes %d -> %d", old.Name, old.DupFinalWrites, f.DupFinalWrites))
		}
		if f.DLQ > old.DLQ {
			regs = append(regs, fmt.Sprintf("fleet %s: DLQ depth %d -> %d", old.Name, old.DLQ, f.DLQ))
		}
		if f.Starved > old.Starved {
			regs = append(regs, fmt.Sprintf("fleet %s: starvation marks %d -> %d", old.Name, old.Starved, f.Starved))
		}
		if tol.exceeds(old.LagP99SpreadS, f.LagP99SpreadS, 0.25) {
			regs = append(regs, fmt.Sprintf("fleet %s: lag p99 spread %.3fs -> %.3fs (tol %.0f%%)", old.Name, old.LagP99SpreadS, f.LagP99SpreadS, 100*tol.rel()))
		}
		if tol.exceeds(old.LagP99MaxS, f.LagP99MaxS, 0.25) {
			regs = append(regs, fmt.Sprintf("fleet %s: lag p99 max %.3fs -> %.3fs (tol %.0f%%)", old.Name, old.LagP99MaxS, f.LagP99MaxS, 100*tol.rel()))
		}
		if f.QuotaUtilPct < old.QuotaUtilPct-20 {
			regs = append(regs, fmt.Sprintf("fleet %s: quota utilization %.1f%% -> %.1f%%", old.Name, old.QuotaUtilPct, f.QuotaUtilPct))
		}
		if tol.exceeds(old.CostUSD, f.CostUSD, 1e-5) {
			regs = append(regs, fmt.Sprintf("fleet %s: cost $%.6f -> $%.6f (tol %.0f%%)", old.Name, old.CostUSD, f.CostUSD, 100*tol.rel()))
		}
	}

	// Fleet-day replay: exactly-once and convergence are hard bars, the
	// replicated-object count must not shrink (the fan-out fabric is part
	// of the scenario), and — when both runs measured wall clock — the
	// rate fields gate the simulator's own speed. SimRate uses a halving
	// threshold rather than the usual tolerance because wall-clock noise
	// on shared runners is real but an event-loop collapse is larger
	// still; RuleSimRate 50k is the absolute interactive-replay floor
	// (a full 24h thousand-rule day in under half an hour).
	newDay := make(map[string]BenchFleetDay, len(got.FleetDay))
	for _, f := range got.FleetDay {
		newDay[f.Name] = f
	}
	for _, old := range baseline.FleetDay {
		f, ok := newDay[old.Name]
		if !ok {
			regs = append(regs, fmt.Sprintf("fleet-day %s: scenario missing from new report", old.Name))
			continue
		}
		if f.ConvergencePct < 100 {
			regs = append(regs, fmt.Sprintf("fleet-day %s: convergence %.2f%% (must be 100%%)", old.Name, f.ConvergencePct))
		}
		if f.DupFinalWrites > 0 {
			regs = append(regs, fmt.Sprintf("fleet-day %s: %d duplicate final writes (must be 0)", old.Name, f.DupFinalWrites))
		}
		if f.DLQ > 0 || f.Pending > 0 {
			regs = append(regs, fmt.Sprintf("fleet-day %s: %d DLQ / %d pending after drain (must be 0)", old.Name, f.DLQ, f.Pending))
		}
		if f.ReplicatedObjects < old.ReplicatedObjects {
			regs = append(regs, fmt.Sprintf("fleet-day %s: replicated objects %d -> %d", old.Name, old.ReplicatedObjects, f.ReplicatedObjects))
		}
		if old.SimRate > 0 && f.SimRate > 0 {
			if f.SimRate < old.SimRate/2 {
				regs = append(regs, fmt.Sprintf("fleet-day %s: sim rate collapsed %.0fx -> %.0fx", old.Name, old.SimRate, f.SimRate))
			}
			if f.RuleSimRate < 50_000 {
				regs = append(regs, fmt.Sprintf("fleet-day %s: rule-sim rate %.0f below the 50000 interactive floor", old.Name, f.RuleSimRate))
			}
		}
		if old.AllocsPerObject > 0 && f.AllocsPerObject > old.AllocsPerObject*1.5 {
			regs = append(regs, fmt.Sprintf("fleet-day %s: allocs/object %.0f -> %.0f", old.Name, old.AllocsPerObject, f.AllocsPerObject))
		}
		if tol.exceeds(old.CostUSD, f.CostUSD, 1e-5) {
			regs = append(regs, fmt.Sprintf("fleet-day %s: cost $%.6f -> $%.6f (tol %.0f%%)", old.Name, old.CostUSD, f.CostUSD, 100*tol.rel()))
		}
	}
	return regs
}

// Print renders the report as a compact human-readable summary.
func (r *BenchReport) Print(out io.Writer) {
	fprintf(out, "Bench suite: %s (%s)\n", r.Suite, r.Schema)
	fprintf(out, "%-26s %4s %10s %8s %8s %10s %7s %-10s %7s %9s\n",
		"experiment", "n", "bytes", "p50_s", "p99_s", "cost_usd", "kv_ops", "dominant", "spans", "sim_rate")
	for _, e := range r.Experiments {
		rate := "-"
		if e.SimRate > 0 {
			rate = fmt.Sprintf("%.0fx", e.SimRate)
		}
		fprintf(out, "%-26s %4d %10d %8.2f %8.2f %10.4f %7d %-10s %7d %9s\n",
			e.Name, e.Objects, e.BytesTotal, e.P50S, e.P99S, e.CostUSD, e.KVOps, e.Dominant,
			e.SpansRetained, rate)
	}
	if len(r.FaultMatrix) > 0 {
		fprintf(out, "%-26s %9s %8s %8s %4s %9s %8s %7s %6s\n",
			"fault profile", "converge", "p50_s", "p99_s", "dlq", "overhead",
			"lag_p99", "blg_max", "alerts")
		for _, f := range r.FaultMatrix {
			fprintf(out, "%-26s %8.1f%% %8.2f %8.2f %4d %8.1f%% %8.2f %7d %6d\n",
				f.Profile, f.ConvergencePct, f.P50S, f.P99S, f.DLQ, f.CostOverheadPct,
				f.LagP99S, f.BacklogMax, f.SLOAlerts)
		}
	}
	if len(r.CrashSweep) > 0 {
		fprintf(out, "%-26s %9s %4s %8s %8s %12s %7s %7s %5s\n",
			"crash point", "converged", "dup", "resumed", "parts_in",
			"redone_bytes", "kv_ovh", "gc", "left")
		for _, c := range r.CrashSweep {
			fprintf(out, "%-26s %9v %4d %8d %8d %12d %7d %7d %5d\n",
				c.Point, c.Converged, c.DupFinalWrites, c.Resumed, c.PartsResumed,
				c.RedoneBytes, c.ExtraKVOps, c.GCAborted, c.MPUsLeft)
		}
	}
	if len(r.Scrub) > 0 {
		fprintf(out, "%-26s %9s %9s %7s %10s %4s %10s\n",
			"scrub cadence", "converge", "residual", "rounds", "digest_b", "dup", "scrub_usd")
		for _, s := range r.Scrub {
			fprintf(out, "%-26s %8.1f%% %9d %7d %10d %4d %10.4f\n",
				s.Cadence, s.ConvergencePct, s.ResidualDivergence, s.Rounds,
				s.DigestBytes, s.DupFinalWrites, s.ScrubCostUSD)
		}
	}
	if len(r.Fleet) > 0 {
		fprintf(out, "%-26s %5s %9s %4s %4s %7s %8s %8s %8s %10s\n",
			"fleet scenario", "rules", "converge", "dup", "dlq", "starved",
			"util", "spread_s", "max_s", "cost_usd")
		for _, f := range r.Fleet {
			fprintf(out, "%-26s %5d %8.1f%% %4d %4d %7d %7.1f%% %8.2f %8.2f %10.4f\n",
				f.Name, f.Rules, f.ConvergencePct, f.DupFinalWrites, f.DLQ, f.Starved,
				f.QuotaUtilPct, f.LagP99SpreadS, f.LagP99MaxS, f.CostUSD)
		}
	}
	if len(r.FleetDay) > 0 {
		fprintf(out, "%-26s %5s %8s %9s %4s %4s %9s %10s %7s\n",
			"fleet-day replay", "rules", "objects", "converge", "dup", "dlq", "sim_rate", "rule_rate", "allocs")
		for _, f := range r.FleetDay {
			rate, rrate, allocs := "-", "-", "-"
			if f.SimRate > 0 {
				rate = fmt.Sprintf("%.0fx", f.SimRate)
				rrate = fmt.Sprintf("%.0f", f.RuleSimRate)
				allocs = fmt.Sprintf("%.0f", f.AllocsPerObject)
			}
			fprintf(out, "%-26s %5d %8d %8.1f%% %4d %4d %9s %10s %7s\n",
				f.Name, f.Rules, f.ReplicatedObjects, f.ConvergencePct, f.DupFinalWrites, f.DLQ,
				rate, rrate, allocs)
		}
	}
}

// CheckPartition verifies every task breakdown's category shares sum to
// the root span duration within tol seconds (the suite's structural
// invariant); it returns the first violation.
func CheckPartition(bds []*telemetry.Breakdown, tol float64) error {
	for _, b := range bds {
		var sum float64
		for _, s := range b.Shares {
			sum += s.Seconds
		}
		if math.Abs(sum-b.TotalSeconds) > tol {
			return fmt.Errorf("trace %s: category shares sum to %.12fs, root span is %.12fs",
				b.TraceID, sum, b.TotalSeconds)
		}
	}
	return nil
}
