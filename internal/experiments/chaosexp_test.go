package experiments

import (
	"bytes"
	"testing"
)

// TestFaultMatrixDeterministic is the issue's determinism check: two
// identically-seeded chaos runs must produce byte-identical fault-matrix
// tables (and CSV exports).
func TestFaultMatrixDeterministic(t *testing.T) {
	cfg := FaultMatrixConfig{Profiles: []string{"mixed@det", "storage-flaky@det"}, Objects: 8, Quick: true}
	run := func() (*FaultMatrixResult, string) {
		res, err := RunFaultMatrix(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.Print(&buf)
		return res, buf.String()
	}
	a, atext := run()
	b, btext := run()
	if atext != btext {
		t.Fatalf("identically-seeded fault matrices differ:\n--- run 1\n%s--- run 2\n%s", atext, btext)
	}
	for i := range a.Scenarios {
		if a.Scenarios[i] != b.Scenarios[i] {
			t.Fatalf("scenario %d differs: %+v vs %+v", i, a.Scenarios[i], b.Scenarios[i])
		}
	}
	// A different seed must draw a different fault schedule for at least
	// one fault-injecting profile.
	c, err := RunFaultMatrix(FaultMatrixConfig{Profiles: []string{"mixed@other", "storage-flaky@other"}, Objects: 8, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Scenarios {
		if a.Scenarios[i].Profile != "none" &&
			(a.Scenarios[i].Injected != c.Scenarios[i].Injected ||
				a.Scenarios[i].P99S != c.Scenarios[i].P99S) {
			same = false
		}
	}
	if same {
		t.Fatal("reseeded runs drew identical fault schedules")
	}
}

// TestFaultMatrixAcceptance runs the issue's acceptance scenario at the
// experiment level: the mixed profile must converge >= 99% with zero
// duplicate final writes, and the baseline must converge fully.
func TestFaultMatrixAcceptance(t *testing.T) {
	res, err := RunFaultMatrix(FaultMatrixConfig{Profiles: []string{"mixed"}, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Scenarios {
		if s.ConvergencePct < 99 {
			t.Fatalf("%s converged %.1f%% (%d/%d, dlq %d), want >= 99%%",
				s.Profile, s.ConvergencePct, s.Converged, s.Objects, s.DLQ)
		}
		if s.DupFinalWrites != 0 {
			t.Fatalf("%s produced %d duplicate final writes, want 0", s.Profile, s.DupFinalWrites)
		}
		if s.Profile == "mixed" && s.Injected == 0 {
			t.Fatal("mixed profile injected nothing; the scenario proved nothing")
		}
	}
	tables := res.CSV()
	if len(tables) != 1 || tables[0].Name != "fault_matrix" || len(tables[0].Rows) != len(res.Scenarios) {
		t.Fatalf("CSV export malformed: %+v", tables)
	}
}
