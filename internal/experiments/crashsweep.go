package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/objstore"
)

// The crash sweep's fixed workload: one 64 MB object split into eight
// 8 MB parts over four replicators, pinned so every run enumerates the
// same deterministic sequence of state-machine steps.
const (
	crashSweepSize     = 64 * MB
	crashSweepPartSize = 8 * MB
	crashSweepParts    = crashSweepSize / crashSweepPartSize
	// crashSweepLockLease shortens the replication lock's lease below the
	// 30 s redrive delay, so a crashed orchestrator's lock has expired by
	// the time the platform retry arrives — the paper's §6 recovery story
	// compressed into simulated seconds.
	crashSweepLockLease = 20 * time.Second
)

// CrashPoints enumerates the data plane's crash-injection steps in
// execution order: each names the instant *after* (or before) one durable
// transition of a distributed replication task. Two part-level points
// bracket the transfer (an early part and the final part); the remaining
// points cover task setup, claim/flush coordination, assembly, and the
// acknowledgment window.
func CrashPoints() []string {
	return []string{
		"after-create-mpu",
		"after-checkpoint",
		"after-claim",
		"after-part-2",
		fmt.Sprintf("after-part-%d", crashSweepParts-1),
		"after-flush",
		"before-complete-mpu",
		"after-complete-mpu",
		"before-ack",
	}
}

// CrashSweepConfig configures the deterministic crash-point sweep.
type CrashSweepConfig struct {
	// Quick is accepted for symmetry with the other experiments; the sweep
	// is already one object per crash point, so it changes nothing.
	Quick bool
}

// CrashPoint is one row of the sweep: the recovery outcome of crashing a
// function instance at exactly one state-machine step.
type CrashPoint struct {
	Point     string
	Crashes   int64 // chaos crash-point injections (always 1)
	Converged bool  // destination holds the source version afterwards
	// DupFinalWrites counts distinct destination PUTs of an already-current
	// version — the at-least-once hazard the dedupe layers must keep at 0.
	DupFinalWrites int
	Resumed        int64 // tasks that re-attached to a checkpointed MPU
	PartsResumed   int64 // parts inherited as already delivered
	PartsReclaimed int64 // crashed claims returned to the pool
	// RedoneBytes is the extra wide-area traffic versus the crash-free
	// baseline — the work the crash forced the system to repeat. Checkpoint
	// resume bounds it to about one part; a from-scratch restart would redo
	// the whole object.
	RedoneBytes int64
	RedoneParts float64 // RedoneBytes / part size
	// ExtraKVOps is the coordination overhead versus baseline: the
	// checkpoint write/read, the re-attach, and the retry's lock traffic.
	ExtraKVOps int64
	GCAborted  int   // orphaned MPUs the garbage collector reclaimed
	GCBytes    int64 // part bytes those uploads were holding
	MPUsLeft   int   // in-progress MPUs still open after GC (want 0)
	DelayS     float64
}

// CrashSweepResult is the full sweep plus its crash-free baseline.
type CrashSweepResult struct {
	BaselineBytes  int64   // wide-area bytes of the crash-free run
	BaselineKVOps  int64   // KV reads+writes of the crash-free run
	BaselineDelayS float64 // replication delay of the crash-free run
	Points         []CrashPoint
}

// RunCrashSweep replays an identical single-object workload once per
// crash point (plus a crash-free baseline), crashing a function instance
// at exactly that step, and measures what recovery costs: convergence,
// duplicate final writes, redone bytes, and KV overhead. Everything is
// seeded, so two runs are byte-identical.
func RunCrashSweep(cfg CrashSweepConfig) (*CrashSweepResult, error) {
	res := &CrashSweepResult{}
	base, err := runCrashScenario("")
	if err != nil {
		return nil, fmt.Errorf("crash sweep baseline: %w", err)
	}
	res.BaselineBytes = base.legBytes
	res.BaselineKVOps = base.kvOps
	res.BaselineDelayS = base.delayS
	for _, point := range CrashPoints() {
		run, err := runCrashScenario(point)
		if err != nil {
			return nil, fmt.Errorf("crash sweep %s: %w", point, err)
		}
		res.Points = append(res.Points, CrashPoint{
			Point:          point,
			Crashes:        run.crashes,
			Converged:      run.converged,
			DupFinalWrites: run.dupFinal,
			Resumed:        run.resumed,
			PartsResumed:   run.partsResumed,
			PartsReclaimed: run.partsReclaimed,
			RedoneBytes:    run.legBytes - base.legBytes,
			RedoneParts:    float64(run.legBytes-base.legBytes) / float64(crashSweepPartSize),
			ExtraKVOps:     run.kvOps - base.kvOps,
			GCAborted:      run.gcAborted,
			GCBytes:        run.gcBytes,
			MPUsLeft:       run.mpusLeft,
			DelayS:         run.delayS,
		})
	}
	return res, nil
}

// crashRun is one scenario's raw measurements.
type crashRun struct {
	converged      bool
	crashes        int64
	dupFinal       int
	resumed        int64
	partsResumed   int64
	partsReclaimed int64
	legBytes       int64
	kvOps          int64
	gcAborted      int
	gcBytes        int64
	mpusLeft       int
	delayS         float64
}

// runCrashScenario replicates one 64 MB object with a crash armed at the
// given point ("" = crash-free baseline) and audits recovery end to end.
func runCrashScenario(point string) (crashRun, error) {
	w := newWorld("crash-" + pointLabel(point))
	src, dst := AWSEast, AzureEast
	srcBucket, dstBucket := "crash-src", "crash-dst"
	mustCreate(w, src, srcBucket, true)
	mustCreate(w, dst, dstBucket, true)

	// The rule pins everything that would otherwise adapt: four
	// replicators at the source region (no profiling), fixed 8 MB parts,
	// no double buffering (crashes must land on the replicator's own
	// lane, not a prefetch sub-lane), per-part claims, and no hedging (a
	// hedge would mask the crash it sits next to).
	svc := deployService(w, model.New(), engine.Rule{
		Src: src, Dst: dst, SrcBucket: srcBucket, DstBucket: dstBucket,
		ForceN: 4, ForceLoc: src,
		PartSize:             crashSweepPartSize,
		DisableAdaptiveParts: true,
		DisableDoubleBuffer:  true,
		ClaimBatch:           1,
		HedgeBudget:          -1,
		LockLease:            crashSweepLockLease,
	}, core.Options{})

	// Duplicate-final-write audit, deduped by destination sequence (the
	// same idiom as the fault matrix): a distinct PUT whose ETag matches
	// the version already current there wrote the same content twice.
	var dupMu sync.Mutex
	dups := 0
	lastSeq := map[string]uint64{}
	lastETag := map[string]string{}
	if err := w.Region(dst).Obj.Subscribe(dstBucket, func(ev objstore.Event) {
		if ev.Type != objstore.EventPut {
			return
		}
		dupMu.Lock()
		if ev.Seq > lastSeq[ev.Key] {
			if ev.ETag != "" && lastETag[ev.Key] == ev.ETag {
				dups++
			}
			lastSeq[ev.Key] = ev.Seq
			lastETag[ev.Key] = ev.ETag
		}
		dupMu.Unlock()
	}); err != nil {
		return crashRun{}, err
	}

	if point != "" {
		w.SetChaos(chaos.Profile{Name: "crash-point", CrashPoint: point})
	}

	legBytes := w.Metrics.Counter("net.leg.bytes")
	kvReads := w.Metrics.Counter("kvstore.reads")
	kvWrites := w.Metrics.Counter("kvstore.writes")
	bytesBase := legBytes.Value()
	kvBase := kvReads.Value() + kvWrites.Value()

	res := putObject(w, src, srcBucket, "crash-obj", crashSweepSize, 1)
	// Quiesce drains everything pending in virtual time, including the
	// 30 s DLQ redrive a crashed orchestrator's task parks behind and the
	// lock lease it must outwait.
	w.Clock.Quiesce()

	run := crashRun{
		crashes:        w.Metrics.Counter("chaos.injected.crash_point").Value(),
		resumed:        w.Metrics.Counter("engine.recovery.resumed").Value(),
		partsResumed:   w.Metrics.Counter("engine.recovery.parts_resumed").Value(),
		partsReclaimed: w.Metrics.Counter("engine.recovery.parts_reclaimed").Value(),
	}

	// Disarm before auditing so the audit's own requests cannot crash.
	w.SetChaos(chaos.Profile{})

	// Orphaned-MPU GC on the anti-entropy cadence: age everything past
	// the grace, collect, then check nothing in-progress survives.
	w.Clock.Sleep(time.Minute)
	run.gcAborted, run.gcBytes = svc.Engine.GCOrphanedMPUs(30 * time.Second)
	w.Clock.Quiesce()
	if infos, err := w.Region(dst).Obj.ListMultiparts(dstBucket); err == nil {
		run.mpusLeft = len(infos)
	}

	if cur, err := w.Region(dst).Obj.Head(dstBucket, "crash-obj"); err == nil && cur.ETag == res.ETag {
		run.converged = true
	}
	dupMu.Lock()
	run.dupFinal = dups
	dupMu.Unlock()
	run.legBytes = legBytes.Value() - bytesBase
	run.kvOps = kvReads.Value() + kvWrites.Value() - kvBase
	run.delayS = lastDelaySeconds(svc.Engine.Tracker)
	return run, nil
}

func pointLabel(point string) string {
	if point == "" {
		return "baseline"
	}
	return point
}

// Print writes the sweep in the evaluation's table style.
func (r *CrashSweepResult) Print(out io.Writer) {
	fprintf(out, "Crash-point sweep: deterministic crash at each data-plane step (checkpointed resume)\n")
	fprintf(out, "baseline: %d bytes moved, %d kv ops, %.2fs delay\n",
		r.BaselineBytes, r.BaselineKVOps, r.BaselineDelayS)
	fprintf(out, "%-20s %7s %9s %4s %7s %8s %9s %12s %7s %7s %4s %8s\n",
		"crash point", "crashes", "converged", "dup", "resumed", "parts_in",
		"reclaimed", "redone_bytes", "parts", "kv_ovh", "gc", "delay_s")
	for _, p := range r.Points {
		fprintf(out, "%-20s %7d %9v %4d %7d %8d %9d %12d %7.2f %7d %4d %8.2f\n",
			p.Point, p.Crashes, p.Converged, p.DupFinalWrites, p.Resumed,
			p.PartsResumed, p.PartsReclaimed, p.RedoneBytes, p.RedoneParts,
			p.ExtraKVOps, p.GCAborted, p.DelayS)
	}
}

// CSV exports the sweep.
func (r *CrashSweepResult) CSV() []CSVTable {
	t := CSVTable{
		Name: "crash_sweep",
		Header: []string{"point", "crashes", "converged", "dup_final_writes",
			"resumed", "parts_resumed", "parts_reclaimed", "redone_bytes",
			"redone_parts", "extra_kv_ops", "gc_aborted", "gc_bytes",
			"mpus_left", "delay_s"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			p.Point, fmt.Sprint(p.Crashes), fmt.Sprint(p.Converged),
			fmt.Sprint(p.DupFinalWrites), fmt.Sprint(p.Resumed),
			fmt.Sprint(p.PartsResumed), fmt.Sprint(p.PartsReclaimed),
			fmt.Sprint(p.RedoneBytes), f64(p.RedoneParts),
			fmt.Sprint(p.ExtraKVOps), fmt.Sprint(p.GCAborted),
			fmt.Sprint(p.GCBytes), fmt.Sprint(p.MPUsLeft), f64(p.DelayS),
		})
	}
	return []CSVTable{t}
}
