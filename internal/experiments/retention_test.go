package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// retentionRun captures everything a retention-policy chaos run exports:
// the retained spans grouped by trace, the byte exports CI diffs, and the
// exemplar lines surfaced in the Prometheus text.
type retentionRun struct {
	byTrace  map[string][]*telemetry.Span
	verdicts map[string]telemetry.Verdict // root RetentionAttr per retained trace
	chrome   string
	prom     string
	stats    telemetry.TracerStats
}

// runRetentionScenario replays the canonical chaos workload (the fault
// matrix's mixed profile) with pol installed on the world's tracer.
func runRetentionScenario(t *testing.T, pol *telemetry.RetentionPolicy) retentionRun {
	t.Helper()
	w := newWorld("retention")
	src, dst := AWSEast, AzureEast
	mustCreate(w, src, "ret-src", true)
	mustCreate(w, dst, "ret-dst", true)
	svc := deployService(w, model.New(), engine.Rule{
		Src: src, Dst: dst, SrcBucket: "ret-src", DstBucket: "ret-dst",
	}, core.Options{ProfileRounds: profileRounds(true)})

	// Arm tracing after deployment (profiling traffic is not the subject)
	// and chaos after that, mirroring runFaultScenario.
	w.Tracer.SetPolicy(pol)
	w.Tracer.Enable()
	prof, err := chaos.Parse("mixed@7")
	if err != nil {
		t.Fatal(err)
	}
	w.SetChaos(prof)

	sizes := []int64{512 * 1024, 4 * MB, 24 * MB, 64 * MB}
	for i := 0; i < 24; i++ {
		putObjectRetrying(w, src, "ret-src", fmt.Sprintf("obj-%03d", i), sizes[i%len(sizes)], i)
		w.Clock.Sleep(2 * time.Second)
	}
	w.Clock.Quiesce()
	for pass := 0; pass < 3; pass++ {
		n, err := svc.Engine.Backfill()
		w.Clock.Quiesce()
		if err == nil && n == 0 {
			break
		}
	}
	if svc.Engine.RedriveDLQ() > 0 {
		w.Clock.Quiesce()
	}
	w.SetChaos(chaos.Profile{})
	w.Clock.Quiesce()

	run := retentionRun{
		byTrace:  map[string][]*telemetry.Span{},
		verdicts: map[string]telemetry.Verdict{},
		stats:    w.Tracer.Stats(),
	}
	for _, s := range w.Tracer.Spans() {
		run.byTrace[s.TraceID] = append(run.byTrace[s.TraceID], s)
		if s.Parent == "" {
			for _, a := range s.Attrs() {
				if a.Key == telemetry.RetentionAttr {
					if v, ok := a.Value.(string); ok {
						run.verdicts[s.TraceID] = telemetry.Verdict(v)
					}
				}
			}
		}
	}
	var cb, pb bytes.Buffer
	if err := w.Tracer.WriteChromeTrace(&cb); err != nil {
		t.Fatal(err)
	}
	if err := w.Metrics.WritePromText(&pb); err != nil {
		t.Fatal(err)
	}
	run.chrome, run.prom = cb.String(), pb.String()
	return run
}

// promExemplarLines extracts the exemplar-bearing lines of a Prometheus
// text export, i.e. the exemplar *set* independent of bucket counts.
func promExemplarLines(prom string) []string {
	var out []string
	for _, line := range strings.Split(prom, "\n") {
		if strings.Contains(line, "# {trace_id=") {
			out = append(out, line)
		}
	}
	return out
}

// TestRetentionChaosAcceptance is the tentpole acceptance check on the
// chaos scenario: every anomalous task is retained in full, clean traces
// are head-sampled at no more than 1-in-N, same-seed runs are
// byte-identical (spans, Chrome export, prom text with exemplars), and
// different retention seeds differ only in head-sampled traces.
func TestRetentionChaosAcceptance(t *testing.T) {
	// Every assertion here compares independent runs (keep-all ground
	// truth vs sampled vs rerun vs different retention seed). The clock's
	// single-runnable actor discipline makes same-seed runs byte-identical
	// even under race instrumentation, so nothing is skipped here.
	const headN = 4

	// Ground truth: a keep-all run classifies every trace the workload
	// produces. The simulation is tracer-independent, so the sampled runs
	// below replay the identical trace population.
	ground := runRetentionScenario(t, nil)
	groundVerdict := map[string]telemetry.Verdict{}
	anomalous, clean := 0, 0
	for id, ss := range ground.byTrace {
		v := telemetry.ClassifySpans(ss)
		groundVerdict[id] = v
		if v != "" {
			anomalous++
		} else {
			clean++
		}
	}
	if anomalous == 0 {
		t.Fatalf("chaos run produced no anomalous traces out of %d; the scenario no longer exercises retention", len(ground.byTrace))
	}
	if clean <= headN {
		t.Fatalf("only %d clean traces; too few to observe head sampling at 1-in-%d", clean, headN)
	}

	a := runRetentionScenario(t, telemetry.NewSampledPolicy(7, headN))

	// 100% of anomalous tasks fully retained: same span count as keep-all.
	for id, v := range groundVerdict {
		if v == "" {
			continue
		}
		got := len(a.byTrace[id])
		if got != len(ground.byTrace[id]) {
			t.Errorf("anomalous trace %s (%s): retained %d of %d spans", id, v, got, len(ground.byTrace[id]))
		}
	}
	// Clean traces at most 1-in-N (slow-verdict traces are not clean —
	// they are anomalies the quantile tracker surfaced).
	cleanKept := 0
	for id := range a.byTrace {
		if groundVerdict[id] == "" && a.verdicts[id] == telemetry.VerdictSample {
			cleanKept++
		}
	}
	if budget := (clean + headN - 1) / headN; cleanKept > budget {
		t.Errorf("head sampling kept %d of %d clean traces, budget ceil(%d/%d)=%d", cleanKept, clean, clean, headN, budget)
	}
	if a.stats.TreesDropped == 0 {
		t.Errorf("sampled run dropped no trees (stats %+v); retention is not engaging", a.stats)
	}

	// Same seed: byte-identical exports and identical exemplar sets.
	b := runRetentionScenario(t, telemetry.NewSampledPolicy(7, headN))
	if a.chrome != b.chrome {
		t.Errorf("same-seed Chrome exports differ (%d vs %d bytes)", len(a.chrome), len(b.chrome))
	}
	if a.prom != b.prom {
		t.Errorf("same-seed prom exports differ")
	}
	if got, want := promExemplarLines(a.prom), promExemplarLines(b.prom); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("same-seed exemplar sets differ:\n%v\nvs\n%v", got, want)
	}
	if a.stats != b.stats {
		t.Errorf("same-seed retained-span counts differ: %+v vs %+v", a.stats, b.stats)
	}

	// Every surfaced exemplar references a retained trace.
	for _, line := range promExemplarLines(a.prom) {
		rest := line[strings.Index(line, `trace_id="`)+len(`trace_id="`):]
		id := rest[:strings.IndexByte(rest, '"')]
		if _, ok := a.byTrace[id]; !ok {
			t.Errorf("exemplar references unretained trace %q: %s", id, line)
		}
	}

	// Different retention seed: the non-sampled (anomalous + slow) kept
	// set is identical; only the head-sampled subset may move.
	c := runRetentionScenario(t, telemetry.NewSampledPolicy(11, headN))
	nonSample := func(r retentionRun) map[string]int {
		out := map[string]int{}
		for id, ss := range r.byTrace {
			if r.verdicts[id] != telemetry.VerdictSample {
				out[id] = len(ss)
			}
		}
		return out
	}
	na, nc := nonSample(a), nonSample(c)
	if len(na) != len(nc) {
		t.Errorf("non-sample retained sets differ across retention seeds: %d vs %d traces", len(na), len(nc))
	}
	for id, n := range na {
		if nc[id] != n {
			t.Errorf("non-sample trace %s differs across retention seeds: %d vs %d spans", id, n, nc[id])
		}
	}
	// The head-sample counter keeps exactly every Nth clean trace, so the
	// two seeds' sample counts can differ only by the phase remainder.
	sampleCount := func(r retentionRun) int {
		n := 0
		for _, v := range r.verdicts {
			if v == telemetry.VerdictSample {
				n++
			}
		}
		return n
	}
	sa, sc := sampleCount(a), sampleCount(c)
	if d := sa - sc; d < -1 || d > 1 {
		t.Errorf("sample-kept counts %d vs %d differ by more than the seed phase allows", sa, sc)
	}
}
