package experiments

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/world"
)

// TestFanoutRulesDoNotCollide is a regression test: several replication
// rules sharing one source bucket (a fan-out deployment) must keep their
// part pools and locks separate in the shared location-region database.
// An earlier bug let their task counters collide, corrupting assemblies.
func TestFanoutRulesDoNotCollide(t *testing.T) {
	w := world.New()
	m := model.New()
	mustCreate(w, "aws:us-east-1", "models", false)
	dests := []struct{ r, b string }{
		{"aws:ap-northeast-1", "d1"}, {"azure:uksouth", "d2"}, {"gcp:us-west1", "d3"},
	}
	var svcs []*core.Service
	for _, d := range dests {
		mustCreate(w, cloud.RegionID(d.r), d.b, false)
		svcs = append(svcs, deployService(w, m, engine.Rule{
			Src: "aws:us-east-1", Dst: cloud.RegionID(d.r), SrcBucket: "models", DstBucket: d.b,
		}, core.Options{ProfileRounds: 6}))
	}
	// A large object forces overlapping distributed tasks on all rules.
	res := putObject(w, "aws:us-east-1", "models", "m.bin", 20*GB, 0)
	w.Clock.Quiesce()
	for i, s := range svcs {
		if got := len(s.Engine.DLQ()); got != 0 {
			t.Errorf("rule %d: %d events in DLQ", i, got)
		}
		if got := len(s.Engine.Tracker.Records()); got != 1 {
			t.Errorf("rule %d: %d records, want 1", i, got)
		}
		obj, err := w.Region(cloud.RegionID(dests[i].r)).Obj.Get(dests[i].b, "m.bin")
		if err != nil || obj.ETag != res.ETag {
			t.Errorf("rule %d: replica wrong: %v", i, err)
		}
	}
}
