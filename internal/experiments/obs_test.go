package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/fleetobs"
)

// TestFaultMatrixObservability is the fleet-observability acceptance
// check: a degraded-network chaos run must surface in every layer — a
// deterministic per-destination streaming lag p99, a nonzero
// oldest-unreplicated-age watermark sampled during the fault window, and
// at least one burn-rate alert in the structured JSONL log — while the
// clean baseline row stays silent. The lag target sits between the
// baseline's worst delay (~1.2s) and the degraded tail (~1.5s) so the
// throughput factor alone trips the SLO.
func TestFaultMatrixObservability(t *testing.T) {
	run := func() (*FaultMatrixResult, string) {
		log := fleetobs.NewEventLog()
		res, err := RunFaultMatrix(FaultMatrixConfig{
			Profiles:  []string{"net-degraded@1"},
			Quick:     true,
			Events:    log,
			LagTarget: 1300 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("RunFaultMatrix: %v", err)
		}
		var buf bytes.Buffer
		if err := log.WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return res, buf.String()
	}
	res, jsonl := run()

	if len(res.Scenarios) != 2 {
		t.Fatalf("want [none, net-degraded@1], got %d scenarios", len(res.Scenarios))
	}
	base, deg := res.Scenarios[0], res.Scenarios[1]

	if base.SLOAlerts != 0 {
		t.Errorf("baseline run alerted %d times; the lag target is miscalibrated", base.SLOAlerts)
	}
	if deg.LagP99S <= 0 {
		t.Errorf("degraded lag p99 = %.3fs, want > 0", deg.LagP99S)
	}
	if deg.LagP99S <= base.LagP99S {
		t.Errorf("degraded lag p99 %.3fs not above baseline %.3fs", deg.LagP99S, base.LagP99S)
	}
	if deg.BacklogMax <= 0 {
		t.Errorf("degraded backlog max = %d, want > 0", deg.BacklogMax)
	}
	if deg.OldestAgeMaxS <= 0 {
		t.Errorf("oldest-unreplicated-age watermark never rose above zero during the fault window")
	}
	if deg.SLOAlerts < 1 {
		t.Errorf("degraded run emitted %d SLO alerts, want >= 1", deg.SLOAlerts)
	}
	if !strings.Contains(jsonl, `"kind":"lag-burn"`) {
		t.Errorf("JSONL lacks a lag-burn event:\n%s", jsonl)
	}
	if !strings.Contains(jsonl, `"scope":"net-degraded@1"`) {
		t.Errorf("JSONL events not scoped by profile spec:\n%s", jsonl)
	}
	for _, line := range strings.Split(strings.TrimSpace(jsonl), "\n") {
		if line != "" && !strings.HasPrefix(line, `{"at_s":`) {
			t.Errorf("malformed JSONL line: %s", line)
		}
	}

	// Same seed, same schedule: the watermarks and the alert log must be
	// byte-for-byte reproducible.
	res2, jsonl2 := run()
	d2 := res2.Scenarios[1]
	if deg.LagP99S != d2.LagP99S || deg.BacklogMax != d2.BacklogMax ||
		deg.OldestAgeMaxS != d2.OldestAgeMaxS || deg.SLOAlerts != d2.SLOAlerts {
		t.Errorf("watermarks not deterministic: %+v vs %+v", deg, d2)
	}
	if jsonl != jsonl2 {
		t.Errorf("alert JSONL not deterministic:\n%s\nvs\n%s", jsonl, jsonl2)
	}
}
