package experiments

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/pricing"
)

// TestPipelineAblationAcceptance pins the data-plane optimisations'
// robust claims on the large-object variable-bandwidth scenario:
// double buffering strictly beats the serial baseline on both p50 and
// p99; the full pipeline — which additionally trades some scheduling
// granularity for batched claims and adaptive (coarser) parts — stays
// within a few percent of the baseline's latency percentiles while
// claim batching cuts KV operations per object by at least 40%. The
// latency-parity bound (rather than a strict win for "full") is what
// survives reseeding: with only a handful of straggler draws per
// config, a strict percentile win for the combined knob set is draw
// luck, while double buffering's overlap win and batching's KV win are
// not.
func TestPipelineAblationAcceptance(t *testing.T) {
	// The full-size (12-object) run: percentile assertions on the quick
	// variant are max-of-8 draws, too noisy to pin anything.
	res := RunPipeline(false)
	rows := make(map[string]PipelineRow, len(res.Rows))
	for _, r := range res.Rows {
		rows[r.Label] = r
	}
	base, full, batch := rows["baseline"], rows["full"], rows["+claimbatch4"]

	dbuf := rows["+doublebuf"]
	if dbuf.P50S > base.P50S || dbuf.P99S > base.P99S {
		t.Errorf("double buffering does not beat baseline: p50 %.3f vs %.3f, p99 %.3f vs %.3f",
			dbuf.P50S, base.P50S, dbuf.P99S, base.P99S)
	}
	if full.P50S > 1.05*base.P50S || full.P99S > 1.05*base.P99S {
		t.Errorf("full pipeline regresses latency beyond parity: p50 %.3f vs %.3f, p99 %.3f vs %.3f",
			full.P50S, base.P50S, full.P99S, base.P99S)
	}
	if batch.KVOpsPerObj > 0.6*base.KVOpsPerObj {
		t.Errorf("claim batching dropped KV ops/object only %.1f -> %.1f, want >= 40%%",
			base.KVOpsPerObj, batch.KVOpsPerObj)
	}
	if base.HedgedParts != 0 || rows["+claimbatch4"].HedgedParts != 0 {
		t.Errorf("hedging fired in a hedge-disabled config: %+v", res.Rows)
	}
	if full.HedgedParts == 0 {
		t.Errorf("full pipeline never hedged a straggler part")
	}
	if base.PartSizeBytes != 0 || full.PartSizeBytes <= 0 {
		t.Errorf("adaptive part sizing: baseline part %d, full part %d",
			base.PartSizeBytes, full.PartSizeBytes)
	}
}

// TestPipelineAblationDeterministic guards the double-buffered lanes and
// the hedge tail against nondeterminism: two same-seed runs — hedging,
// prefetch lanes and all — produce identical measurements.
func TestPipelineAblationDeterministic(t *testing.T) {
	a, b := RunPipeline(true), RunPipeline(true)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identically-seeded ablation runs differ:\n%+v\n%+v", a, b)
	}
}

// TestCostEstimateTracksMeteredActuals checks the planner's per-object
// cost estimate against the pricing meter's actuals for a canonical
// distributed plan: every priced component (egress on both hops, compute,
// invocations, pool init/claim/done/finish KV writes, MPU create, part
// uploads and complete) is also metered, so the two must agree within a
// modest tolerance.
func TestCostEstimateTracksMeteredActuals(t *testing.T) {
	w := newWorld("cost-estimate")
	src, dst := AWSEast, cloud.RegionID("gcp:europe-west6")
	mustCreate(w, src, "ce-src", false)
	mustCreate(w, dst, "ce-dst", false)

	var mu sync.Mutex
	var plans []planner.Plan
	deployService(w, model.New(), engine.Rule{
		Src: src, Dst: dst, SrcBucket: "ce-src", DstBucket: "ce-dst",
		// Hedging duplicates transfers the plan-time estimate does not
		// price; disable it so actuals reflect the plan alone.
		HedgeBudget: -1,
	}, core.Options{ProfileRounds: profileRounds(true), OnTaskDone: func(r engine.TaskResult) {
		mu.Lock()
		plans = append(plans, r.Plan)
		mu.Unlock()
	}})

	actual := costDelta(w, func() {
		putObject(w, src, "ce-src", "big.bin", 192*MB, 1)
	})
	if len(plans) != 1 {
		t.Fatalf("resolved %d tasks, want 1", len(plans))
	}
	plan := plans[0]
	if plan.N < 2 {
		t.Fatalf("192MB fastest plan should be distributed, got n=%d", plan.N)
	}
	// The metered window includes the source PUT that triggered
	// replication; the estimate prices replication only.
	srcRegion, err := cloud.Lookup(src)
	if err != nil {
		t.Fatal(err)
	}
	actual -= pricing.BookFor(srcRegion.Provider).ObjPut

	if plan.EstCostUSD <= 0 {
		t.Fatalf("plan carries no cost estimate: %+v", plan)
	}
	if diff := math.Abs(plan.EstCostUSD-actual) / actual; diff > 0.25 {
		t.Errorf("estimate $%.6f vs metered $%.6f: off by %.0f%%, want <= 25%%",
			plan.EstCostUSD, actual, 100*diff)
	}
}
