package experiments

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	areplica "repro"
	"repro/internal/cloud"
	"repro/internal/objstore"
	"repro/internal/trace"
)

// FleetConfig configures the hundred-rule control-plane scenario: one
// fleet deployment mixing every topology shape under shared quotas,
// driven by the bursty IBM-COS-like trace.
type FleetConfig struct {
	// Rules is the total rule count (default 100). The topology groups —
	// one 10-way fan-out, two 3-hop chains, one 3-region mesh — take 20
	// rules; the rest are direct rules over the ordered pairs of the
	// three east regions. Values below the 20-rule floor are raised.
	Rules int
	// Duration and RatePerMin shape the trace (defaults 15 min at 300
	// writes/min; Quick trims to 4 min at 150).
	Duration   time.Duration
	RatePerMin float64
	Quick      bool

	// FaaSConcurrency caps concurrently running function instances per
	// (provider,region) lane across the whole fleet (default 64).
	FaaSConcurrency int
	// KVOpsPerSec caps each lane's shared KV throughput (default 400).
	KVOpsPerSec float64
	// MaxObjectBytes clamps trace object sizes (default 4 MB) so every
	// transfer takes the inline local plan — the scenario stresses the
	// control plane's scheduling, not the distributed data plane.
	MaxObjectBytes int64
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Rules <= 0 {
		c.Rules = 100
	}
	if c.Duration <= 0 {
		c.Duration = 15 * time.Minute
		if c.Quick {
			c.Duration = 4 * time.Minute
		}
	}
	if c.RatePerMin <= 0 {
		c.RatePerMin = 300
		if c.Quick {
			c.RatePerMin = 150
		}
	}
	if c.FaaSConcurrency <= 0 {
		c.FaaSConcurrency = 64
	}
	if c.KVOpsPerSec <= 0 {
		c.KVOpsPerSec = 400
	}
	if c.MaxObjectBytes <= 0 {
		c.MaxObjectBytes = 4 * MB
	}
	return c
}

// FleetRuleRow is one rule's fairness account in a FleetResult.
type FleetRuleRow struct {
	Rule       string
	Admits     int64
	Defers     int64
	Starved    int64
	QuotaWaits int64
	MaxQueue   int
	LagP99S    float64
}

// FleetResult is the hundred-rule scenario's outcome: convergence and
// duplicate-write bars, per-rule fairness (lag p99 spread, starvation),
// shared-quota utilization, cross-rule batching, and dollar cost.
type FleetResult struct {
	Rules   int
	Entries int // distinct trace entry points (buckets accepting raw writes)
	Ops     int

	ConvergencePct float64
	Audited        int
	Diverged       int
	Pending        int
	DLQ            int
	Redriven       int
	DupFinalWrites int

	// Fairness: the spread of per-rule lag p99 across rules that resolved
	// work — a fair scheduler keeps the spread narrow even though rules
	// share lanes with a 10x-hotter fan-out source.
	LagP99MinS    float64
	LagP99MaxS    float64
	LagP99SpreadS float64
	Starved       int64

	Admits        int64
	Defers        int64
	QuotaWaits    int64
	Batches       int64
	BatchMeanSize float64

	// QuotaUtilPct is the busiest lane's concurrency high-water mark as a
	// percentage of its cap; Forced counts stall-guard escapes (must stay
	// zero — the control plane never needs the deadlock valve).
	QuotaUtilPct float64
	Forced       int64
	CostUSD      float64

	PerRule []FleetRuleRow
}

// fleetEntry is one bucket accepting raw trace writes; mesh members
// prefix their keys so every key has exactly one writing site (no
// last-writer-wins races between mesh rules).
type fleetEntry struct {
	region, bucket, prefix string
}

// fleetTopology builds the scenario's rules and entry points: a 10-way
// fan-out from aws:us-east-1 (weight 2 — the hot tenant), two 3-hop
// chains, a 3-region mesh (priority 1 — the interactive class), and
// direct rules over the ordered pairs of the three east regions until
// the total reaches n.
func fleetTopology(n int) ([]areplica.FleetRule, []fleetEntry, error) {
	regions := []string{string(AWSEast), string(AzureEast), string(GCPEast)}
	var rules []areplica.FleetRule
	var entries []fleetEntry

	// One-to-many fan-out: ten destination buckets alternating between
	// the two non-source regions.
	var dsts []areplica.FleetDst
	for i := 0; i < 10; i++ {
		dsts = append(dsts, areplica.FleetDst{
			Region: regions[1+i%2],
			Bucket: fmt.Sprintf("fan-dst-%02d", i),
		})
	}
	fan, err := areplica.FanOut(regions[0], "fan-src", dsts...)
	if err != nil {
		return nil, nil, err
	}
	for i := range fan {
		fan[i].Weight = 2
	}
	rules = append(rules, fan...)
	entries = append(entries, fleetEntry{region: regions[0], bucket: "fan-src"})

	// Two chains in opposite directions; only the head accepts raw writes.
	for ci, order := range [][]string{
		{regions[0], regions[1], regions[2]},
		{regions[1], regions[2], regions[0]},
	} {
		bucket := fmt.Sprintf("chain-%c", 'a'+ci)
		hops := make([]areplica.FleetHop, len(order))
		for i, r := range order {
			hops[i] = areplica.FleetHop{Region: r, Bucket: bucket}
		}
		chain, err := areplica.Chain(hops...)
		if err != nil {
			return nil, nil, err
		}
		rules = append(rules, chain...)
		entries = append(entries, fleetEntry{region: order[0], bucket: bucket})
	}

	// Active-active mesh over all three regions; every member writes its
	// own keyspace.
	mesh, err := areplica.FullMesh("mesh", regions...)
	if err != nil {
		return nil, nil, err
	}
	for i := range mesh {
		mesh[i].Priority = 1
	}
	rules = append(rules, mesh...)
	for i, r := range regions {
		entries = append(entries, fleetEntry{region: r, bucket: "mesh", prefix: fmt.Sprintf("site%d/", i)})
	}

	// Direct rules fill the fleet out to n, cycling the ordered region
	// pairs so all six lanes carry single-rule traffic too.
	type pair struct{ src, dst string }
	var pairs []pair
	for _, s := range regions {
		for _, d := range regions {
			if s != d {
				pairs = append(pairs, pair{s, d})
			}
		}
	}
	for i := 0; len(rules) < n; i++ {
		p := pairs[i%len(pairs)]
		bucket := fmt.Sprintf("dir-%03d", i)
		rules = append(rules, areplica.FleetRule{
			SrcRegion: p.src, SrcBucket: bucket,
			DstRegion: p.dst, DstBucket: bucket + "-replica",
		})
		entries = append(entries, fleetEntry{region: p.src, bucket: bucket})
	}
	return rules, entries, nil
}

// dupWatcher counts duplicate final writes on one destination bucket: a
// later version whose ETag equals the one already durable.
type dupWatcher struct {
	mu       sync.Mutex
	dups     int
	lastSeq  map[string]uint64
	lastETag map[string]string
}

func (w *dupWatcher) observe(ev objstore.Event) {
	if ev.Type != objstore.EventPut {
		return
	}
	w.mu.Lock()
	if ev.Seq > w.lastSeq[ev.Key] {
		if ev.ETag != "" && w.lastETag[ev.Key] == ev.ETag {
			w.dups++
		}
		w.lastSeq[ev.Key] = ev.Seq
		w.lastETag[ev.Key] = ev.ETag
	}
	w.mu.Unlock()
}

// keyShard maps a trace key to its entry point. Sharding hashes the key
// (not the op index) so every key has one stable writing site across its
// whole version history.
func keyShard(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// RunFleet deploys the hundred-rule topology under shared quotas and
// replays the bursty trace across all entry points.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	cfg = cfg.withDefaults()
	rules, entries, err := fleetTopology(cfg.Rules)
	if err != nil {
		return nil, err
	}

	sim := areplica.NewSim()
	fl, err := sim.DeployFleet(rules, areplica.FleetOptions{
		FaaSConcurrency: cfg.FaaSConcurrency,
		KVOpsPerSec:     cfg.KVOpsPerSec,
		ProfileRounds:   profileRounds(cfg.Quick),
	})
	if err != nil {
		return nil, err
	}

	// Watch every destination bucket for duplicate final writes
	// (deterministic subscription order: first rule wins per bucket).
	var watchers []*dupWatcher
	seen := make(map[string]bool)
	for _, r := range rules {
		id := r.DstRegion + "/" + r.DstBucket
		if seen[id] {
			continue
		}
		seen[id] = true
		w := &dupWatcher{lastSeq: map[string]uint64{}, lastETag: map[string]string{}}
		rid, err := cloud.ParseRegionID(r.DstRegion)
		if err != nil {
			return nil, err
		}
		if err := sim.World().Region(rid).Obj.Subscribe(r.DstBucket, w.observe); err != nil {
			return nil, err
		}
		watchers = append(watchers, w)
	}

	tcfg := trace.DefaultConfig(cfg.Duration, cfg.RatePerMin)
	tcfg.Seed = "fleet-hundred"
	ops := trace.Generate(tcfg)
	for i := range ops {
		if ops[i].Size > cfg.MaxObjectBytes {
			ops[i].Size = cfg.MaxObjectBytes
		}
	}

	costBefore := sim.CostTotal()
	trace.Replay(sim.World().Clock, ops, func(op trace.Op) {
		e := entries[keyShard(op.Key, len(entries))]
		key := e.prefix + op.Key
		if op.Type == trace.OpDelete {
			// Deleting a never-written key is a no-op, as in the real service.
			_ = sim.DeleteObject(e.region, e.bucket, key)
			return
		}
		if _, err := sim.PutObject(e.region, e.bucket, key, op.Size); err != nil {
			panic(err)
		}
	})
	sim.Wait()
	redriven := 0
	for i := 0; i < 3 && fl.DLQTotal() > 0; i++ {
		redriven += fl.RedriveAll()
		sim.Wait()
	}
	fl.PollMonitors()

	res := &FleetResult{
		Rules:    fl.Size(),
		Entries:  len(entries),
		Ops:      len(ops),
		Pending:  fl.PendingTotal(),
		DLQ:      fl.DLQTotal(),
		Redriven: redriven,
		CostUSD:  sim.CostTotal() - costBefore,
	}
	for _, w := range watchers {
		w.mu.Lock()
		res.DupFinalWrites += w.dups
		w.mu.Unlock()
	}
	div, audited, err := fl.Diverged()
	if err != nil {
		return nil, err
	}
	res.Audited, res.Diverged = audited, div
	if audited > 0 {
		res.ConvergencePct = 100 * float64(audited-div) / float64(audited)
	}

	lag := make(map[string]float64, fl.Size())
	for _, id := range fl.RuleIDs() {
		h, herr := fl.Rule(id).Health()
		if herr != nil {
			return nil, herr
		}
		lag[id] = h.LagP99S
	}
	first := true
	for _, st := range fl.SchedStats() {
		row := FleetRuleRow{
			Rule: st.Rule, Admits: st.Admits, Defers: st.Defers,
			Starved: st.Starved, QuotaWaits: st.QuotaWaits,
			MaxQueue: st.MaxQueue, LagP99S: lag[st.Rule],
		}
		res.PerRule = append(res.PerRule, row)
		res.Admits += st.Admits
		res.Defers += st.Defers
		res.Starved += st.Starved
		res.QuotaWaits += st.QuotaWaits
		// Idle rules (no resolved work, lag 0) would fake a wide spread;
		// fairness is judged over rules that replicated something.
		if row.LagP99S <= 0 {
			continue
		}
		if first || row.LagP99S < res.LagP99MinS {
			res.LagP99MinS = row.LagP99S
		}
		if first || row.LagP99S > res.LagP99MaxS {
			res.LagP99MaxS = row.LagP99S
		}
		first = false
	}
	res.LagP99SpreadS = res.LagP99MaxS - res.LagP99MinS

	for _, ls := range fl.QuotaStats() {
		if ls.UtilizationPct > res.QuotaUtilPct {
			res.QuotaUtilPct = ls.UtilizationPct
		}
		res.Forced += ls.Forced
	}
	bs := fl.BatchStats()
	res.Batches, res.BatchMeanSize = bs.Batches, bs.MeanSize
	return res, nil
}

// Print writes the scenario summary plus the ten most-contended rules;
// the full per-rule table is exported via CSV.
func (r *FleetResult) Print(w io.Writer) {
	fprintf(w, "Fleet control plane: %d rules, %d entry points, %d trace ops\n", r.Rules, r.Entries, r.Ops)
	fprintf(w, "  convergence %.1f%% (%d/%d audited keys, %d pending, %d DLQ, %d redriven), %d duplicate final writes\n",
		r.ConvergencePct, r.Audited-r.Diverged, r.Audited, r.Pending, r.DLQ, r.Redriven, r.DupFinalWrites)
	fprintf(w, "  fairness: lag p99 %.2fs..%.2fs (spread %.2fs), %d starvation marks\n",
		r.LagP99MinS, r.LagP99MaxS, r.LagP99SpreadS, r.Starved)
	fprintf(w, "  scheduler: %d admits, %d defers, %d quota waits; %d batches (mean %.1f)\n",
		r.Admits, r.Defers, r.QuotaWaits, r.Batches, r.BatchMeanSize)
	fprintf(w, "  quota: busiest lane %.1f%% of cap, %d forced admissions; cost $%.4f\n",
		r.QuotaUtilPct, r.Forced, r.CostUSD)

	rows := append([]FleetRuleRow(nil), r.PerRule...)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].MaxQueue != rows[j].MaxQueue {
			return rows[i].MaxQueue > rows[j].MaxQueue
		}
		return rows[i].Rule < rows[j].Rule
	})
	if len(rows) > 10 {
		rows = rows[:10]
	}
	fprintf(w, "  most contended rules:\n")
	fprintf(w, "  %-52s %7s %7s %7s %7s %6s %8s\n", "rule", "admits", "defers", "starve", "qwaits", "maxq", "lag_p99")
	for _, row := range rows {
		fprintf(w, "  %-52s %7d %7d %7d %7d %6d %8.2f\n",
			row.Rule, row.Admits, row.Defers, row.Starved, row.QuotaWaits, row.MaxQueue, row.LagP99S)
	}
}

// CSV exports the full per-rule fairness table (the CI artifact).
func (r *FleetResult) CSV() []CSVTable {
	t := CSVTable{Name: "fleet_fairness", Header: []string{
		"rule", "admits", "defers", "starved", "quota_waits", "max_queue", "lag_p99_s"}}
	for _, row := range r.PerRule {
		t.Rows = append(t.Rows, []string{
			row.Rule,
			strconv.FormatInt(row.Admits, 10),
			strconv.FormatInt(row.Defers, 10),
			strconv.FormatInt(row.Starved, 10),
			strconv.FormatInt(row.QuotaWaits, 10),
			strconv.Itoa(row.MaxQueue),
			f64(row.LagP99S),
		})
	}
	return []CSVTable{t}
}
